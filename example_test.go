package boss_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"boss"
)

// The basic flow: ingest documents, build the compressed index, search.
func ExampleBuilder() {
	b := boss.NewBuilder()
	b.Add("fox", "the quick brown fox jumps over the lazy dog")
	b.Add("scm", "storage class memory bridges the gap between memory and disk")
	b.Add("ndp", "near data processing moves compute next to memory")
	ix := b.Build()

	// "memory" appears twice in the scm document, once in ndp.
	hits, _ := ix.Search(`"memory"`, 10)
	for _, h := range hits {
		fmt.Println(h.Doc)
	}
	// Output:
	// scm
	// ndp
}

// Boolean expressions follow the paper's offloading-API syntax: quoted
// terms, AND/OR, round brackets; AND binds tighter than OR.
func ExampleIndex_Search() {
	b := boss.NewBuilder()
	b.Add("a", "red green blue")
	b.Add("b", "red yellow")
	b.Add("c", "green yellow")
	ix := b.Build()

	hits, _ := ix.Search(`"yellow" AND ("red" OR "green")`, 10)
	for _, h := range hits {
		fmt.Println(h.Doc)
	}
	// Output:
	// b
	// c
}

// The simulated BOSS accelerator returns the same hits as the software
// engine plus an execution profile over storage-class memory.
func ExampleIndex_Accelerator() {
	b := boss.NewBuilder()
	b.Add("x", "alpha beta gamma")
	b.Add("y", "alpha delta")
	ix := b.Build()

	acc := ix.Accelerator(boss.AccelOptions{})
	hits, stats, _ := acc.Search(`"alpha"`, 5)
	fmt.Println(len(hits), "hits")
	fmt.Println(stats.DocsEvaluated, "docs scored")
	fmt.Println(stats.HostBytes, "bytes to the host")
	// Output:
	// 2 hits
	// 2 docs scored
	// 16 bytes to the host
}

// Tokenization lowercases and splits on anything that is not a letter or
// digit.
func ExampleTokenize() {
	fmt.Println(boss.Tokenize("Compute-Express-Link (CXL) 3.0!"))
	// Output:
	// [compute express link cxl 3 0]
}

// Sharding a collection over several simulated memory nodes returns the
// same ranking as one monolithic index — shards score with global
// statistics (Figure 1(b)'s root/leaf deployment).
func ExampleShard() {
	single := boss.BuildSynthetic(boss.CCNewsLike, 0.004)
	sharded, _ := boss.Shard(boss.CCNewsLike, 0.004, 3)

	a, _ := single.Search(`"t0" OR "t3"`, 3)
	b, _, _ := sharded.Search(`"t0" OR "t3"`, 3)
	same := len(a) == len(b)
	for i := range a {
		if a[i].DocID != b[i].DocID {
			same = false
		}
	}
	fmt.Println("nodes:", sharded.Nodes(), "identical ranking:", same)
	// Output:
	// nodes: 3 identical ranking: true
}

// SearchFetch runs a query and returns the stored payloads of the
// ranked hits in one call. Payload blocks decode through the same
// decoded-block cache as posting blocks, so re-fetching a hot document
// is a zero-copy cache hit — visible in the per-class hit-rate split.
func ExampleAccelerator_SearchFetch() {
	b := boss.NewBuilder()
	b.Add("doc1", "alpha beta")
	b.Add("doc2", "alpha gamma delta")
	ix := b.Build()
	acc := ix.Accelerator(boss.AccelOptions{})

	hits, docs, _, _ := acc.SearchFetch(`"gamma"`, 10)
	fmt.Println(len(hits), "hit:", docs[0].Name, "/", docs[0].Text)

	docs, _, _ = acc.FetchDocs([]uint32{docs[0].DocID}) // hot re-fetch
	fmt.Println("re-fetched:", docs[0].Text)
	fmt.Printf("doc-cache hit rate: %.2f\n", acc.DocCacheHitRate())
	// Output:
	// 1 hit: doc2 / alpha gamma delta
	// re-fetched: alpha gamma delta
	// doc-cache hit rate: 0.50
}

// The front-door serving tier coalesces identical concurrent queries
// into one execution and sheds load once its admission queue fills:
// here two "alpha" lookups share one device pass, and a fourth request
// arriving over a full queue is refused instead of blowing the
// deadlines of the admitted ones.
func ExampleAccelerator_Serve() {
	b := boss.NewBuilder()
	b.Add("doc1", "alpha beta")
	b.Add("doc2", "alpha gamma")
	ix := b.Build()
	acc := ix.Accelerator(boss.AccelOptions{})

	// A tiny queue and a far deadline make the example deterministic:
	// nothing flushes until we ask.
	srv, _ := acc.Serve(boss.FrontConfig{MaxQueue: 2, BatchTarget: 16, Timeout: time.Hour})
	defer srv.Close()

	t1, _ := srv.Submit(boss.ServeRequest{Expr: `"alpha"`, K: 10})
	t2, _ := srv.Submit(boss.ServeRequest{Expr: `"alpha"`, K: 10}) // coalesces with t1
	t3, _ := srv.Submit(boss.ServeRequest{Expr: `"beta"`, K: 10})
	_, err := srv.Submit(boss.ServeRequest{Expr: `"gamma"`, K: 10}) // queue full
	fmt.Println("overloaded:", errors.Is(err, boss.ErrOverloaded))

	srv.Flush()
	r1, _ := t1.Wait(context.Background())
	r2, _ := t2.Wait(context.Background())
	r3, _ := t3.Wait(context.Background())
	fmt.Println("alpha hits:", len(r1.Hits), "coalesced:", r2.DedupHit)
	fmt.Println("beta hits:", len(r3.Hits))
	st := srv.Stats()
	fmt.Println("executed:", st.Executed, "dedup hits:", st.DedupHits)
	// Output:
	// overloaded: true
	// alpha hits: 2 coalesced: true
	// beta hits: 1
	// executed: 2 dedup hits: 1
}
