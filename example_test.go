package boss_test

import (
	"fmt"

	"boss"
)

// The basic flow: ingest documents, build the compressed index, search.
func ExampleBuilder() {
	b := boss.NewBuilder()
	b.Add("fox", "the quick brown fox jumps over the lazy dog")
	b.Add("scm", "storage class memory bridges the gap between memory and disk")
	b.Add("ndp", "near data processing moves compute next to memory")
	ix := b.Build()

	// "memory" appears twice in the scm document, once in ndp.
	hits, _ := ix.Search(`"memory"`, 10)
	for _, h := range hits {
		fmt.Println(h.Doc)
	}
	// Output:
	// scm
	// ndp
}

// Boolean expressions follow the paper's offloading-API syntax: quoted
// terms, AND/OR, round brackets; AND binds tighter than OR.
func ExampleIndex_Search() {
	b := boss.NewBuilder()
	b.Add("a", "red green blue")
	b.Add("b", "red yellow")
	b.Add("c", "green yellow")
	ix := b.Build()

	hits, _ := ix.Search(`"yellow" AND ("red" OR "green")`, 10)
	for _, h := range hits {
		fmt.Println(h.Doc)
	}
	// Output:
	// b
	// c
}

// The simulated BOSS accelerator returns the same hits as the software
// engine plus an execution profile over storage-class memory.
func ExampleIndex_Accelerator() {
	b := boss.NewBuilder()
	b.Add("x", "alpha beta gamma")
	b.Add("y", "alpha delta")
	ix := b.Build()

	acc := ix.Accelerator(boss.AccelOptions{})
	hits, stats, _ := acc.Search(`"alpha"`, 5)
	fmt.Println(len(hits), "hits")
	fmt.Println(stats.DocsEvaluated, "docs scored")
	fmt.Println(stats.HostBytes, "bytes to the host")
	// Output:
	// 2 hits
	// 2 docs scored
	// 16 bytes to the host
}

// Tokenization lowercases and splits on anything that is not a letter or
// digit.
func ExampleTokenize() {
	fmt.Println(boss.Tokenize("Compute-Express-Link (CXL) 3.0!"))
	// Output:
	// [compute express link cxl 3 0]
}

// Sharding a collection over several simulated memory nodes returns the
// same ranking as one monolithic index — shards score with global
// statistics (Figure 1(b)'s root/leaf deployment).
func ExampleShard() {
	single := boss.BuildSynthetic(boss.CCNewsLike, 0.004)
	sharded, _ := boss.Shard(boss.CCNewsLike, 0.004, 3)

	a, _ := single.Search(`"t0" OR "t3"`, 3)
	b, _, _ := sharded.Search(`"t0" OR "t3"`, 3)
	same := len(a) == len(b)
	for i := range a {
		if a[i].DocID != b[i].DocID {
			same = false
		}
	}
	fmt.Println("nodes:", sharded.Nodes(), "identical ranking:", same)
	// Output:
	// nodes: 3 identical ranking: true
}
