// Command bosslint runs the repository's static-analysis suite — the
// mechanical enforcement of DESIGN.md's "Enforced invariants" — over Go
// package patterns:
//
//	go run ./cmd/bosslint ./...
//	go build -o bin/bosslint ./cmd/bosslint && ./bin/bosslint ./...
//
// It prints file:line:col: [analyzer] message for every finding, in the
// suite's canonical order — (file, line, column, analyzer, message),
// independent of analyzer registration and package iteration, so
// successive runs diff cleanly in CI. The driver is self-contained (the
// repository builds offline, so it cannot use x/tools' multichecker); it
// accepts the same package patterns go vet does.
//
// Flags:
//
//	-checks a,b   run only the named analyzers (default: all)
//	-list         list analyzers and exit
//	-dir path     module directory to resolve patterns in (default: .)
//	-json         emit findings as a JSON report on stdout
//
// Exit codes:
//
//	0   clean — no findings
//	1   findings reported
//	2   usage, load, or analysis error (nothing was checked)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"boss/internal/analysis"
	"boss/internal/analysis/chargereplay"
	"boss/internal/analysis/ctxflow"
	"boss/internal/analysis/errpropagation"
	"boss/internal/analysis/goroutineleak"
	"boss/internal/analysis/hotpathalloc"
	"boss/internal/analysis/hotpathescape"
	"boss/internal/analysis/lockorder"
	"boss/internal/analysis/poolhygiene"
	"boss/internal/analysis/simdeterminism"
)

// suite is every analyzer bosslint ships, in -list order.
var suite = []*analysis.Analyzer{
	simdeterminism.Analyzer,
	hotpathalloc.Analyzer,
	poolhygiene.Analyzer,
	errpropagation.Analyzer,
	chargereplay.Analyzer,
	ctxflow.Analyzer,
	lockorder.Analyzer,
	goroutineleak.Analyzer,
	hotpathescape.Analyzer,
}

// finding is one diagnostic in the -json report.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// report is the -json document.
type report struct {
	Patterns []string       `json:"patterns"`
	Checks   []string       `json:"checks"`
	Findings []finding      `json:"findings"`
	ByCheck  map[string]int `json:"by_check"`
}

func main() {
	var (
		checks  = flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		dir     = flag.String("dir", ".", "module directory to resolve patterns in")
		jsonOut = flag.Bool("json", false, "emit findings as a JSON report on stdout")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bosslint [flags] [packages]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, `
Exit codes:
  0  clean — no findings
  1  findings reported
  2  usage, load, or analysis error (nothing was checked)
`)
	}
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	analyzers := suite
	if *checks != "" {
		byName := make(map[string]*analysis.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "bosslint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosslint: %v\n", err)
		os.Exit(2)
	}
	diags, err := prog.Run(analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosslint: %v\n", err)
		os.Exit(2)
	}

	byCheck := make(map[string]int)
	for _, a := range analyzers {
		byCheck[a.Name] = 0
	}
	fset := prog.Fset()
	if *jsonOut {
		rep := report{Patterns: patterns, Findings: []finding{}, ByCheck: byCheck}
		for _, a := range analyzers {
			rep.Checks = append(rep.Checks, a.Name)
		}
		for _, d := range diags {
			p := d.Posn(fset)
			rep.Findings = append(rep.Findings, finding{
				File: p.Filename, Line: p.Line, Col: p.Column,
				Check: d.Analyzer, Message: d.Message,
			})
			byCheck[d.Analyzer]++
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "bosslint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", d.Posn(fset), d.Analyzer, d.Message)
			byCheck[d.Analyzer]++
		}
	}
	if len(diags) > 0 {
		var parts []string
		for _, a := range analyzers {
			if n := byCheck[a.Name]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", a.Name, n))
			}
		}
		fmt.Fprintf(os.Stderr, "bosslint: %d finding(s) (%s)\n", len(diags), strings.Join(parts, ", "))
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
