// Command bosslint runs the repository's static-analysis suite — the
// mechanical enforcement of DESIGN.md's "Enforced invariants" — over Go
// package patterns:
//
//	go run ./cmd/bosslint ./...
//	go build -o bin/bosslint ./cmd/bosslint && ./bin/bosslint ./...
//
// It prints file:line:col: [analyzer] message for every finding and exits
// nonzero when there are any. The driver is self-contained (the repository
// builds offline, so it cannot use x/tools' multichecker); it accepts the
// same package patterns go vet does.
//
// Flags:
//
//	-checks a,b   run only the named analyzers (default: all)
//	-list         list analyzers and exit
//	-dir path     module directory to resolve patterns in (default: .)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"boss/internal/analysis"
	"boss/internal/analysis/errpropagation"
	"boss/internal/analysis/hotpathalloc"
	"boss/internal/analysis/poolhygiene"
	"boss/internal/analysis/simdeterminism"
)

// suite is every analyzer bosslint ships, in reporting order.
var suite = []*analysis.Analyzer{
	simdeterminism.Analyzer,
	hotpathalloc.Analyzer,
	poolhygiene.Analyzer,
	errpropagation.Analyzer,
}

func main() {
	var (
		checks = flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
		list   = flag.Bool("list", false, "list analyzers and exit")
		dir    = flag.String("dir", ".", "module directory to resolve patterns in")
	)
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	analyzers := suite
	if *checks != "" {
		byName := make(map[string]*analysis.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "bosslint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosslint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosslint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", d.Posn(pkgs[0].Fset), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bosslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
