// Command verify cross-validates every engine in the repository on a fresh
// synthetic corpus: the software engine, the IIU model, all three BOSS
// early-termination variants, the sharded cluster, and the fixed-point
// scoring path are all checked against a brute-force reference evaluator.
// It exits nonzero on any mismatch — a release gate for the models'
// correctness claims.
//
// Usage:
//
//	verify -scale 0.02 -queries 20 -seed 7
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"boss/internal/compress"
	"boss/internal/core"
	"boss/internal/corpus"
	"boss/internal/engine"
	"boss/internal/iiu"
	"boss/internal/index"
	"boss/internal/pool"
	"boss/internal/query"
	"boss/internal/topk"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.015, "corpus scale in (0,1]")
		nQueries = flag.Int("queries", 12, "queries per Table II type")
		k        = flag.Int("k", 25, "top-k depth")
		seed     = flag.Int64("seed", 1, "workload seed")
		shards   = flag.Int("shards", 3, "cluster shard count")
	)
	flag.Parse()

	fmt.Printf("generating corpus (scale %.3f) and building indexes...\n", *scale)
	c := corpus.Generate(corpus.CCNewsLike(*scale))
	hybrid := index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid})
	fixed := index.Build(c, index.BuildOptions{Scheme: compress.BP})
	cluster, err := pool.NewCluster(pool.DefaultConfig(), c, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	type system struct {
		name string
		run  func(node *query.Node) ([]topk.Entry, error)
	}
	systems := []system{
		{"engine", func(n *query.Node) ([]topk.Entry, error) {
			r, err := engine.New(hybrid).Run(n, *k)
			return r.TopK, err
		}},
		{"iiu", func(n *query.Node) ([]topk.Entry, error) {
			r, err := iiu.New(fixed).Run(n, *k)
			return r.TopK, err
		}},
		{"boss", func(n *query.Node) ([]topk.Entry, error) {
			r, err := core.New(hybrid, core.DefaultOptions()).Run(n, *k)
			return r.TopK, err
		}},
		{"boss-exhaustive", func(n *query.Node) ([]topk.Entry, error) {
			r, err := core.New(hybrid, core.ExhaustiveOptions()).Run(n, *k)
			return r.TopK, err
		}},
		{"boss-block-only", func(n *query.Node) ([]topk.Entry, error) {
			r, err := core.New(hybrid, core.BlockOnlyOptions()).Run(n, *k)
			return r.TopK, err
		}},
		{"cluster", func(n *query.Node) ([]topk.Entry, error) {
			r, err := cluster.Search(n.String(), *k)
			if err != nil {
				return nil, err
			}
			return r.TopK, nil
		}},
	}

	failures := 0
	checked := 0
	for _, qt := range corpus.AllQueryTypes() {
		for _, q := range corpus.SampleQueries(c, qt, *nQueries, *seed) {
			node := query.MustParse(q.Expr)
			want := bruteForce(c, hybrid, node, *k)
			for _, sys := range systems {
				got, err := sys.run(node)
				if err != nil {
					fmt.Printf("FAIL %-16s %s: %v\n", sys.name, q.Expr, err)
					failures++
					continue
				}
				if !agree(got, want) {
					fmt.Printf("FAIL %-16s %s: top-k differs from brute force\n", sys.name, q.Expr)
					failures++
				}
				checked++
			}
		}
	}

	fmt.Printf("\n%d system×query checks", checked)
	if failures > 0 {
		fmt.Printf(", %d FAILURES\n", failures)
		os.Exit(1)
	}
	fmt.Println(", all consistent with brute force")
}

// bruteForce evaluates the query directly over raw corpus postings.
func bruteForce(c *corpus.Corpus, idx *index.Index, node *query.Node, k int) []topk.Entry {
	scores := eval(c, idx, node)
	entries := make([]topk.Entry, 0, len(scores))
	for doc, s := range scores {
		entries = append(entries, topk.Entry{DocID: doc, Score: s})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		return entries[i].DocID < entries[j].DocID
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	return entries
}

func eval(c *corpus.Corpus, idx *index.Index, node *query.Node) map[uint32]float64 {
	switch node.Op {
	case query.OpTerm:
		pl := idx.MustList(node.Term)
		out := make(map[uint32]float64)
		for _, p := range c.Term(node.Term) {
			out[p.DocID] = idx.TermScore(pl, p.DocID, p.TF)
		}
		return out
	case query.OpAnd:
		result := eval(c, idx, node.Children[0])
		for _, child := range node.Children[1:] {
			cs := eval(c, idx, child)
			for doc := range result {
				if add, ok := cs[doc]; ok {
					result[doc] += add
				} else {
					delete(result, doc)
				}
			}
		}
		return result
	case query.OpOr:
		result := make(map[uint32]float64)
		for _, child := range node.Children {
			for doc, s := range eval(c, idx, child) {
				result[doc] += s
			}
		}
		return result
	default:
		panic("unknown op")
	}
}

// agree compares rankings, tolerating permutations of equal scores and
// float summation-order drift.
func agree(a, b []topk.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			return false
		}
		if a[i].DocID == b[i].DocID {
			continue
		}
		found := false
		for j := range b {
			if b[j].DocID == a[i].DocID && math.Abs(a[i].Score-b[j].Score) <= 1e-9 {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
