// Command poolsim runs the event-driven device simulation: a batch of
// queries flows through the command queue, query scheduler and BOSS cores
// of one memory node, contending for the node's SCM channels and the shared
// host link. It prints throughput, latency percentiles and utilization —
// the dynamic counterpart of cmd/bossbench's analytic tables.
//
// Usage:
//
//	poolsim -cores 8 -queries 64 -type Q5
//	poolsim -cores 2 -dram -k 100
package main

import (
	"flag"
	"fmt"
	"os"

	"boss/internal/compress"
	"boss/internal/core"
	"boss/internal/corpus"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/pool"
	"boss/internal/sim"
)

func main() {
	var (
		corpusName = flag.String("corpus", "clueweb", "synthetic corpus: clueweb or ccnews")
		scale      = flag.Float64("scale", 0.02, "corpus scale in (0,1]")
		cores      = flag.Int("cores", 8, "BOSS cores on the node")
		nQueries   = flag.Int("queries", 64, "queries in the batch")
		qtypeName  = flag.String("type", "mix", "query type Q1..Q6 or 'mix'")
		k          = flag.Int("k", 1000, "top-k depth")
		useDRAM    = flag.Bool("dram", false, "DRAM node instead of SCM")
		arrivalUS  = flag.Float64("gap", 0, "inter-arrival gap in microseconds (0 = all at once)")
		exhaustive = flag.Bool("exhaustive", false, "disable early termination")
	)
	flag.Parse()

	var spec corpus.Spec
	switch *corpusName {
	case "clueweb":
		spec = corpus.ClueWebLike(*scale)
	case "ccnews":
		spec = corpus.CCNewsLike(*scale)
	default:
		fmt.Fprintf(os.Stderr, "poolsim: unknown corpus %q\n", *corpusName)
		os.Exit(1)
	}

	fmt.Printf("building %s shard (scale %.3f)...\n", spec.Name, *scale)
	c := corpus.Generate(spec)
	idx := index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid})

	cfg := pool.DefaultConfig()
	cfg.Cores = *cores
	cfg.K = *k
	if *useDRAM {
		cfg.Mem = mem.DRAM()
	}
	if *exhaustive {
		cfg.Opts = core.ExhaustiveOptions()
	}
	dev := pool.New(cfg, idx)

	var queries []corpus.Query
	if *qtypeName == "mix" {
		per := *nQueries/6 + 1
		for _, qt := range corpus.AllQueryTypes() {
			queries = append(queries, corpus.SampleQueries(c, qt, per, 17)...)
		}
		queries = queries[:*nQueries]
	} else {
		var qt corpus.QueryType
		if _, err := fmt.Sscanf(*qtypeName, "Q%d", &qt); err != nil || qt < corpus.Q1 || qt > corpus.Q6 {
			fmt.Fprintf(os.Stderr, "poolsim: bad query type %q\n", *qtypeName)
			os.Exit(1)
		}
		queries = corpus.SampleQueries(c, qt, *nQueries, 17)
	}

	gap := sim.FromSeconds(*arrivalUS / 1e6)
	for i, q := range queries {
		if err := dev.Submit(q.Expr, sim.Time(i)*gap); err != nil {
			fmt.Fprintf(os.Stderr, "poolsim: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("device: %d cores over %s, link %.0f GB/s, k=%d, %d queries (%s)\n\n",
		cfg.Cores, cfg.Mem.Name, cfg.LinkGBs, cfg.K, len(queries), *qtypeName)
	fmt.Println(dev.Run())
}
