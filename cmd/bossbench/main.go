// Command bossbench regenerates the paper's tables and figures from the
// models in this repository.
//
// Usage:
//
//	bossbench -exp fig9            # one experiment
//	bossbench -exp all             # everything, in paper order
//	bossbench -list                # list experiment ids
//	bossbench -exp fig9 -full      # larger corpora/workload (slower)
//	bossbench -scale 0.05 -k 500   # custom scope
//	bossbench -wallclock           # real host QPS (serial vs batch/parallel)
//	bossbench -wallclock -json     # same, machine-readable
//	bossbench -chaos               # availability/QPS under fault injection
//	bossbench -chaos -replicas 2 -replicakill  # replica failover: copy 0 of every shard dead
//	bossbench -overload            # front-door goodput/tail-latency under overload
//	bossbench -fetch               # document fetch phase: decode GB/s cold vs cached, search+fetch QPS
//	bossbench -sparse              # Q7 sparse-dot: MaxScore pruning vs exhaustive, Q7 vs conjunctive QPS
//	bossbench -profile out         # also write out.cpu.pprof + out.heap.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"boss/internal/harness"
)

func main() {
	var (
		expID   = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		full    = flag.Bool("full", false, "use the larger FullConfig workload")
		scale   = flag.Float64("scale", 0, "override corpus scale (0 = config default)")
		perType = flag.Int("queries", 0, "override queries per type (0 = config default)")
		k       = flag.Int("k", 0, "override top-k depth (0 = config default)")
		seed    = flag.Int64("seed", 0, "override workload seed (0 = config default)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		wall    = flag.Bool("wallclock", false, "measure real host QPS (serial vs batch/parallel) instead of simulated experiments")
		chaos   = flag.Bool("chaos", false, "sweep fault-injection rates and report availability/QPS of the resilient serving path")
		over    = flag.Bool("overload", false, "sweep offered load past capacity and report front-door goodput, shedding, and tail latency")
		fetch   = flag.Bool("fetch", false, "measure the document fetch phase: decode GB/s cold vs cached, search+fetch QPS")
		sparse  = flag.Bool("sparse", false, "measure the Q7 sparse-dot family: MaxScore pruning vs exhaustive, Q7 QPS vs conjunctive baseline")
		shards  = flag.Int("shards", 4, "cluster shard count for -wallclock, -chaos, -overload, and -fetch")
		reps    = flag.Int("replicas", 1, "with -chaos, copies of every shard (replication + hedging when > 1)")
		repKill = flag.Bool("replicakill", false, "with -chaos, kill copy 0 of every shard at each point (requires -replicas >= 2)")
		jsonOut = flag.Bool("json", false, "with -wallclock, -chaos, -overload, or -fetch, emit the report as JSON")
		profile = flag.String("profile", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof covering the run")
	)
	flag.Parse()

	if *profile != "" {
		cpuFile, err := os.Create(*profile + ".cpu.pprof")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bossbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			fmt.Fprintf(os.Stderr, "bossbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = cpuFile.Close()
			heapFile, err := os.Create(*profile + ".heap.pprof")
			if err != nil {
				fmt.Fprintf(os.Stderr, "bossbench: %v\n", err)
				os.Exit(1)
			}
			defer func() { _ = heapFile.Close() }()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(heapFile); err != nil {
				fmt.Fprintf(os.Stderr, "bossbench: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := harness.QuickConfig()
	if *full {
		cfg = harness.FullConfig()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *perType > 0 {
		cfg.PerType = *perType
	}
	if *k > 0 {
		cfg.K = *k
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	ctx := harness.NewContext(cfg)

	if *over {
		rep := harness.Overload(ctx, *shards)
		rep.Created = time.Now().UTC().Format(time.RFC3339)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "bossbench: %v\n", err)
				os.Exit(1)
			}
		} else if *csv {
			t := rep.Table()
			fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
		} else {
			fmt.Println(rep.Table().String())
		}
		return
	}

	if *sparse {
		rep := harness.Sparse(ctx)
		rep.Created = time.Now().UTC().Format(time.RFC3339)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "bossbench: %v\n", err)
				os.Exit(1)
			}
		} else if *csv {
			t := rep.Table()
			fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
		} else {
			fmt.Println(rep.Table().String())
		}
		return
	}

	if *fetch {
		rep := harness.Fetch(ctx, *shards)
		rep.Created = time.Now().UTC().Format(time.RFC3339)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "bossbench: %v\n", err)
				os.Exit(1)
			}
		} else if *csv {
			t := rep.Table()
			fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
		} else {
			fmt.Println(rep.Table().String())
		}
		return
	}

	if *chaos {
		if *repKill && *reps < 2 {
			fmt.Fprintln(os.Stderr, "bossbench: -replicakill requires -replicas >= 2 (with one copy a whole-replica kill is just an outage)")
			os.Exit(1)
		}
		rep := harness.Chaos(ctx, *shards, *reps, *repKill)
		rep.Created = time.Now().UTC().Format(time.RFC3339)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "bossbench: %v\n", err)
				os.Exit(1)
			}
		} else if *csv {
			t := rep.Table()
			fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
		} else {
			fmt.Println(rep.Table().String())
		}
		return
	}

	if *wall {
		rep := harness.Wallclock(ctx, *shards)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "bossbench: %v\n", err)
				os.Exit(1)
			}
		} else if *csv {
			t := rep.Table()
			fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
		} else {
			fmt.Println(rep.Table().String())
		}
		return
	}

	run := func(e harness.Experiment) {
		for _, t := range e.Run(ctx) {
			if *csv {
				fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}

	if *expID == "all" {
		for _, e := range harness.Experiments() {
			run(e)
		}
		return
	}
	e, ok := harness.Find(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "bossbench: unknown experiment %q (use -list)\n", *expID)
		os.Exit(1)
	}
	run(e)
}
