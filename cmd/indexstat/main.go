// Command indexstat inspects an inverted index: footprint, the hybrid
// compression choice distribution, and per-scheme what-if sizes. It either
// generates a synthetic corpus or reads an index file produced with
// boss.Index.WriteTo.
//
// Usage:
//
//	indexstat -corpus ccnews -scale 0.05
//	indexstat -file my.idx
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"boss/internal/compress"
	"boss/internal/corpus"
	"boss/internal/index"
)

func main() {
	var (
		corpusName = flag.String("corpus", "clueweb", "synthetic corpus: clueweb or ccnews")
		scale      = flag.Float64("scale", 0.02, "corpus scale in (0,1]")
		file       = flag.String("file", "", "read a serialized index instead of generating one")
		whatIf     = flag.Bool("whatif", false, "also build the corpus with each single scheme (slow)")
	)
	flag.Parse()

	var idx *index.Index
	var c *corpus.Corpus
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "indexstat: %v\n", err)
			os.Exit(1)
		}
		idx, err = index.Read(f)
		closeErr := f.Close()
		if err == nil {
			err = closeErr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "indexstat: %v\n", err)
			os.Exit(1)
		}
	} else {
		var spec corpus.Spec
		switch *corpusName {
		case "clueweb":
			spec = corpus.ClueWebLike(*scale)
		case "ccnews":
			spec = corpus.CCNewsLike(*scale)
		default:
			fmt.Fprintf(os.Stderr, "indexstat: unknown corpus %q\n", *corpusName)
			os.Exit(1)
		}
		c = corpus.Generate(spec)
		idx = index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid})
	}

	st := idx.ComputeStats()
	fmt.Printf("documents:        %d\n", st.NumDocs)
	fmt.Printf("terms:            %d\n", st.NumTerms)
	fmt.Printf("postings:         %d\n", st.TotalPostings)
	fmt.Printf("payload bytes:    %d (%.2f B/posting)\n", st.PayloadBytes,
		float64(st.PayloadBytes)/float64(max64(st.TotalPostings, 1)))
	fmt.Printf("metadata bytes:   %d (19 B/block)\n", st.MetadataBytes)
	fmt.Printf("norm bytes:       %d (4 B/doc)\n", st.NormBytes)
	fmt.Printf("compression:      %.2fx over raw 8 B postings\n", st.CompressionRatio())

	fmt.Printf("\nhybrid scheme choice by posting list:\n")
	hist := idx.SchemeHistogram()
	type kv struct {
		s compress.Scheme
		n int
	}
	var kvs []kv
	for s, n := range hist {
		kvs = append(kvs, kv{s, n})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].n > kvs[j].n })
	for _, e := range kvs {
		fmt.Printf("  %-8s %7d lists (%.1f%%)\n", e.s, e.n, 100*float64(e.n)/float64(st.NumTerms))
	}

	if *whatIf && c != nil {
		fmt.Printf("\nwhat-if payload sizes with a single scheme:\n")
		for _, s := range compress.AllSchemes() {
			if s == compress.S16 {
				// S16 cannot represent every delta stream.
				continue
			}
			alt := index.Build(c, index.BuildOptions{Scheme: s}).ComputeStats()
			fmt.Printf("  %-8s %12d bytes (%+.1f%% vs hybrid)\n", s, alt.PayloadBytes,
				100*float64(alt.PayloadBytes-st.PayloadBytes)/float64(st.PayloadBytes))
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
