// Command bossquery runs a single query expression against the software
// engine, the IIU model, and the BOSS model over one synthetic corpus, and
// prints the top-k results plus each system's simulated execution profile.
//
// Usage:
//
//	bossquery -query '"t0" AND ("t3" OR "t9")' -k 10
//	bossquery -corpus ccnews -scale 0.05 -query '"t1" OR "t2"' -cores 4
package main

import (
	"flag"
	"fmt"
	"os"

	"boss/internal/compress"
	"boss/internal/core"
	"boss/internal/corpus"
	"boss/internal/engine"
	"boss/internal/iiu"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/query"
	"boss/internal/sim"
	"boss/internal/topk"
)

func main() {
	var (
		corpusName = flag.String("corpus", "clueweb", "synthetic corpus: clueweb or ccnews")
		scale      = flag.Float64("scale", 0.02, "corpus scale in (0,1]")
		exprText   = flag.String("query", `"t0" AND ("t3" OR "t9")`, "query expression")
		k          = flag.Int("k", 10, "top-k depth")
		cores      = flag.Int("cores", 8, "accelerator core count for throughput estimates")
		useDRAM    = flag.Bool("dram", false, "use the DRAM pool configuration instead of SCM")
	)
	flag.Parse()

	var spec corpus.Spec
	switch *corpusName {
	case "clueweb":
		spec = corpus.ClueWebLike(*scale)
	case "ccnews":
		spec = corpus.CCNewsLike(*scale)
	default:
		fmt.Fprintf(os.Stderr, "bossquery: unknown corpus %q\n", *corpusName)
		os.Exit(1)
	}

	node, err := query.Parse(*exprText)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bossquery: %v\n", err)
		os.Exit(1)
	}

	sparse := node.Op == query.OpSparse

	fmt.Printf("corpus %s (scale %.3f): generating and indexing...\n", spec.Name, *scale)
	c := corpus.Generate(spec)
	// Sparse-dot (Q7) reads quantized impacts straight from the posting
	// payloads, so the ad-hoc index carries them whenever the query needs
	// them; boolean queries keep the plain build.
	hybrid := index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid, Impacts: sparse})
	fixed := index.Build(c, index.BuildOptions{Scheme: compress.BP})
	fmt.Printf("  %d docs, %d terms, %d postings, footprint %.1f MB\n\n",
		spec.NumDocs, spec.NumTerms, c.TotalPostings, float64(hybrid.TotalBytes)/1e6)

	dev := mem.SCM()
	hostDev := mem.HostSCM()
	if *useDRAM {
		dev = mem.DRAM()
		hostDev = mem.HostDRAM()
	}

	type outcome struct {
		name string
		topk []topk.Entry
		m    *perf.Metrics
		dev  mem.Config
		link float64
	}
	var outcomes []outcome

	if res, err := engine.New(hybrid).Run(node, *k); err != nil {
		fmt.Fprintf(os.Stderr, "engine: %v\n", err)
		os.Exit(1)
	} else {
		outcomes = append(outcomes, outcome{"Lucene-like engine", res.TopK, res.M, hostDev, 0})
	}
	// The IIU model predates the sparse-dot family; its hardware walks
	// boolean DNF plans only, so Q7 skips it rather than faking a result.
	if !sparse {
		if res, err := iiu.New(fixed).Run(node, *k); err != nil {
			fmt.Fprintf(os.Stderr, "iiu: %v\n", err)
			os.Exit(1)
		} else {
			outcomes = append(outcomes, outcome{"IIU", res.TopK, res.M, dev, mem.DefaultLinkGBs})
		}
	}
	acc := core.New(hybrid, core.DefaultOptions())
	if res, err := acc.Run(node, *k); err != nil {
		fmt.Fprintf(os.Stderr, "boss: %v\n", err)
		os.Exit(1)
	} else {
		outcomes = append(outcomes, outcome{"BOSS", res.TopK, res.M, dev, mem.DefaultLinkGBs})
	}

	fmt.Printf("query: %s  (top-%d)\n\n", node, *k)
	fmt.Printf("top results (from BOSS):\n")
	boss := outcomes[len(outcomes)-1]
	for i, e := range boss.topk {
		fmt.Printf("  %2d. doc%-8d score %.4f\n", i+1, e.DocID, e.Score)
	}

	if sparse {
		// Show the MaxScore partition at the converged top-k threshold:
		// which term lists stayed essential (drive candidates) and which
		// were demoted to probe-only once the heap filled.
		threshold := 0.0
		if len(boss.topk) >= *k {
			threshold = boss.topk[len(boss.topk)-1].Score
		}
		plan, err := acc.PlanSparse(node.Terms(), threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bossquery: plan: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nsparse plan (threshold %.4f):\n", threshold)
		fmt.Printf("  %-12s %12s %12s  %s\n", "term", "max-impact", "cum-bound", "role")
		for i, ti := range plan.Terms {
			role := "non-essential"
			if i >= plan.Essential {
				role = "essential"
			}
			fmt.Printf("  %-12s %12.4f %12.4f  %s\n", ti.Term, ti.MaxImpact, ti.Prefix, role)
		}
		fmt.Printf("  %d essential / %d non-essential of %d lists\n",
			len(plan.Terms)-plan.Essential, plan.Essential, len(plan.Terms))
	}

	fmt.Printf("\n%-20s %12s %12s %12s %10s %10s %10s\n",
		"system", "latency", "qps@cores", "device B", "host B", "docs", "blocks")
	for _, o := range outcomes {
		lat := o.m.Latency(o.dev)
		qps := o.m.Throughput(*cores, o.dev, o.link)
		fmt.Printf("%-20s %10.1fus %12.0f %12d %10d %10d %10d\n",
			o.name, sim.Seconds(lat)*1e6, qps, o.m.DeviceBytes(), o.m.HostBytes,
			o.m.DocsEvaluated, o.m.BlocksFetched)
	}

	// Cross-check: the accelerators must agree with the engine.
	ref := outcomes[0].topk
	for _, o := range outcomes[1:] {
		if len(o.topk) != len(ref) {
			fmt.Printf("\nWARNING: %s returned %d results, engine %d\n", o.name, len(o.topk), len(ref))
		}
	}
	fmt.Printf("\nall systems returned %d results; engines verified against each other in tests\n", len(ref))
}
