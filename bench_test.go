package boss

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates its experiment through the harness on a small
// deterministic workload and reports the experiment's key quantity as a
// custom metric, so `go test -bench=.` both times the models and prints the
// reproduced numbers. `go run ./cmd/bossbench -exp <id>` prints the full
// tables.

import (
	"math"
	"strconv"
	"sync"
	"testing"

	"boss/internal/corpus"
	"boss/internal/harness"
)

// benchCfg is small enough for -bench runs while preserving the shapes.
var benchCfg = harness.Config{Scale: 0.012, PerType: 4, K: 50, Seed: 42}

var (
	benchCtxOnce sync.Once
	benchCtx     *harness.Context
)

// sharedCtx builds the corpora/indexes once across benchmarks.
func sharedCtx() *harness.Context {
	benchCtxOnce.Do(func() {
		benchCtx = harness.NewContext(benchCfg)
		// Force both setups (and their metric caches) to exist so the
		// timed loops measure experiment evaluation, not corpus building.
		benchCtx.ClueWeb()
		benchCtx.CCNews()
	})
	return benchCtx
}

// runExperiment executes one experiment b.N times and returns the last
// tables produced.
func runExperiment(b *testing.B, id string) []*harness.Table {
	b.Helper()
	ctx := sharedCtx()
	exp, ok := harness.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var tables []*harness.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables = exp.Run(ctx)
	}
	b.StopTimer()
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		b.Fatalf("experiment %s produced no output", id)
	}
	return tables
}

// cell parses a numeric table cell.
func cell(b *testing.B, t *harness.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q not numeric", row, col, t.Rows[row][col])
	}
	return v
}

func BenchmarkFig3Compression(b *testing.B) {
	tables := runExperiment(b, "fig3")
	// Report the hybrid ratio on the clueweb-like corpus (second-to-last
	// column of the last rows).
	t := tables[0]
	last := t.Rows[len(t.Rows)-2]
	v, err := strconv.ParseFloat(last[len(last)-2], 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, "hybrid-ratio")
}

func BenchmarkTable1Methodology(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2QueryTypes(b *testing.B)  { runExperiment(b, "table2") }

// throughputGeomean extracts the 8-core BOSS geomean from a fig9/fig10
// table layout.
func throughputGeomean(b *testing.B, t *harness.Table) float64 {
	vals := make([]float64, 0, len(t.Rows))
	lastCol := len(t.Header) - 1 // BOSS-8c
	for r := range t.Rows {
		vals = append(vals, cell(b, t, r, lastCol))
	}
	sum := 0.0
	for _, v := range vals {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

func BenchmarkFig9ThroughputClueWeb(b *testing.B) {
	t := runExperiment(b, "fig9")[0]
	b.ReportMetric(throughputGeomean(b, t), "boss8c-speedup")
}

func BenchmarkFig10ThroughputCCNews(b *testing.B) {
	t := runExperiment(b, "fig10")[0]
	b.ReportMetric(throughputGeomean(b, t), "boss8c-speedup")
}

func BenchmarkFig11BandwidthClueWeb(b *testing.B) {
	t := runExperiment(b, "fig11")[0]
	b.ReportMetric(cell(b, t, 0, len(t.Header)-1), "boss8c-GBs")
}

func BenchmarkFig12BandwidthCCNews(b *testing.B) {
	t := runExperiment(b, "fig12")[0]
	b.ReportMetric(cell(b, t, 0, len(t.Header)-1), "boss8c-GBs")
}

func BenchmarkFig13SingleCore(b *testing.B) {
	t := runExperiment(b, "fig13")[0]
	b.ReportMetric(cell(b, t, 0, 4), "bossQ1-vs-lucene1c")
}

func BenchmarkFig14EvaluatedDocs(b *testing.B) {
	t := runExperiment(b, "fig14")[0]
	// BOSS column of the Q5 row: fraction of IIU's evaluated docs.
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "bossQ5-docs-vs-iiu")
}

func BenchmarkFig15MemoryAccesses(b *testing.B) {
	t := runExperiment(b, "fig15")[0]
	// BOSS total column of the first query type (last column).
	b.ReportMetric(cell(b, t, 1, len(t.Header)-1), "bossQ1-accesses-vs-iiu")
}

func BenchmarkFig16DRAMvsSCM(b *testing.B) {
	t := runExperiment(b, "fig16")[0]
	b.ReportMetric(cell(b, t, 0, 3), "iiuQ1-dram-speedup")
}

func BenchmarkTable3AreaPower(b *testing.B) { runExperiment(b, "table3") }

func BenchmarkFig17Energy(b *testing.B) {
	t := runExperiment(b, "fig17")[0]
	b.ReportMetric(cell(b, t, 0, 3), "Q1-energy-ratio")
}

func BenchmarkHeadline(b *testing.B) {
	t := runExperiment(b, "headline")[0]
	b.ReportMetric(cell(b, t, 0, 1), "clueweb-geomean-speedup")
}

func BenchmarkScaleout(b *testing.B) {
	t := runExperiment(b, "scaleout")[0]
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "8node-hwtopk-qps")
}

func BenchmarkAblationET(b *testing.B)       { runExperiment(b, "ablation-et") }
func BenchmarkAblationPipeline(b *testing.B) { runExperiment(b, "ablation-pipeline") }
func BenchmarkAblationTopK(b *testing.B)     { runExperiment(b, "ablation-topk") }
func BenchmarkAblationHybrid(b *testing.B)   { runExperiment(b, "ablation-hybrid") }
func BenchmarkAblationBaseline(b *testing.B) { runExperiment(b, "ablation-baseline") }

// BenchmarkQueryLatency times raw model execution (not experiment
// assembly): one Q5 union on each system.
func BenchmarkQueryLatency(b *testing.B) {
	ctx := sharedCtx()
	s := ctx.ClueWeb()
	q := s.Workload[corpus.Q5][0]
	for _, sys := range []harness.System{harness.Lucene, harness.IIU, harness.BOSS} {
		sys := sys
		b.Run(string(sys), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.RunQuery(sys, q)
			}
		})
	}
}
