// Newssearch: a CC-News-scale scenario. Builds a synthetic news corpus with
// realistic posting statistics, runs a mixed query workload on both the
// software engine and the BOSS accelerator model, and reports what early
// termination and the hardware top-k module save — the paper's Section V
// story at example scale.
package main

import (
	"fmt"
	"log"

	"boss"
)

func main() {
	fmt.Println("building a CC-News-like synthetic corpus (this takes a moment)...")
	ix := boss.BuildSynthetic(boss.CCNewsLike, 0.02)
	fmt.Printf("corpus: %d docs, %d terms, %.1f MB footprint\n\n",
		ix.NumDocs(), ix.NumTerms(), float64(ix.FootprintBytes())/1e6)

	// A small workload over common news terms ("t<rank>" by frequency).
	queries := []string{
		`"` + ix.CommonTerm(0) + `"`,
		`"` + ix.CommonTerm(1) + `" AND "` + ix.CommonTerm(4) + `"`,
		`"` + ix.CommonTerm(2) + `" OR "` + ix.CommonTerm(7) + `"`,
		`"` + ix.CommonTerm(0) + `" OR "` + ix.CommonTerm(3) + `" OR "` + ix.CommonTerm(5) + `" OR "` + ix.CommonTerm(9) + `"`,
		`"` + ix.CommonTerm(1) + `" AND ("` + ix.CommonTerm(6) + `" OR "` + ix.CommonTerm(8) + `")`,
	}

	full := ix.Accelerator(boss.AccelOptions{})
	exhaustive := ix.Accelerator(boss.AccelOptions{DisableBlockET: true, DisableWAND: true})

	fmt.Printf("%-58s %12s %12s %9s\n", "query", "BOSS lat", "exhaustive", "docs saved")
	for _, q := range queries {
		hits, st, err := full.Search(q, 100)
		if err != nil {
			log.Fatal(err)
		}
		exHits, exSt, err := exhaustive.Search(q, 100)
		if err != nil {
			log.Fatal(err)
		}
		if len(hits) != len(exHits) {
			log.Fatalf("early termination changed the result count on %s", q)
		}
		saved := 0.0
		if exSt.DocsEvaluated > 0 {
			saved = 100 * (1 - float64(st.DocsEvaluated)/float64(exSt.DocsEvaluated))
		}
		fmt.Printf("%-58s %12v %12v %8.1f%%\n", q, st.SimulatedLatency, exSt.SimulatedLatency, saved)
	}

	// Host-interconnect savings of the hardware top-k module: only k
	// results ever cross the link, regardless of how many docs matched.
	q := queries[3]
	_, st, err := full.Search(q, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwide union %s:\n", q)
	fmt.Printf("  matched docs scored:     %d\n", st.DocsEvaluated)
	fmt.Printf("  bytes over host link:    %d (k=1000 entries only)\n", st.HostBytes)
	fmt.Printf("  device bytes:            %d\n", st.DeviceBytes)
	fmt.Printf("  8-core throughput:       %.0f queries/s\n", st.ThroughputQPS)
}
