// Compressionlab: the Figure 3 workflow. Generates the paper's seven
// synthetic integer streams, compresses each with every scheme, prints the
// ratio matrix with the per-stream winner, and then demonstrates the
// programmable decompression module: the same hardware datapath is
// reconfigured — via the paper's Figure 8 configuration language — to decode
// every scheme, and its output is checked against the software codecs.
package main

import (
	"fmt"
	"log"
	"strings"

	"boss/internal/compress"
	"boss/internal/corpus"
	"boss/internal/decomp"
)

const streamLen = 100_000

func main() {
	schemes := []compress.Scheme{
		compress.BP, compress.VB, compress.PFD, compress.OptPFD,
		compress.S16, compress.S8b,
	}

	fmt.Println("compression ratio by stream (higher is better, * marks the winner):")
	fmt.Printf("%-16s", "stream")
	for _, s := range schemes {
		fmt.Printf("%9s", s)
	}
	fmt.Println()

	for _, kind := range corpus.AllStreamKinds() {
		stream := corpus.GenerateStream(kind, streamLen, 1)
		fmt.Printf("%-16s", kind)
		best, bestRatio := -1, 0.0
		ratios := make([]float64, len(schemes))
		for i, s := range schemes {
			if !compress.ForScheme(s).Supports(stream) {
				ratios[i] = -1
				continue
			}
			size := compress.EncodedSize(s, stream)
			ratios[i] = compress.CompressionRatio(len(stream), size)
			if ratios[i] > bestRatio {
				best, bestRatio = i, ratios[i]
			}
		}
		for i, r := range ratios {
			if r < 0 {
				fmt.Printf("%9s", "n/a")
				continue
			}
			mark := " "
			if i == best {
				mark = "*"
			}
			fmt.Printf("%8.2f%s", r, mark)
		}
		fmt.Println()
	}

	// The programmable decompression module: print the paper's Figure 8
	// configuration for VariableByte, then reconfigure one module per
	// scheme and decode a block through the 4-stage hardware datapath.
	fmt.Println("\nFigure 8 configuration file for VariableByte:")
	for _, line := range strings.Split(strings.TrimSpace(decomp.ConfigText(compress.VB)), "\n") {
		fmt.Println("   ", line)
	}

	fmt.Println("\nreconfiguring the module per scheme and decoding one block each:")
	deltas := corpus.GenerateStream(corpus.ZipfStream, 128, 9)
	for _, s := range schemes {
		codec := compress.ForScheme(s)
		if !codec.Supports(deltas) {
			fmt.Printf("  %-8s not applicable to this stream\n", s)
			continue
		}
		payload := codec.Encode(nil, deltas)
		mod := decomp.NewModuleFor(s)
		out, used, cycles, err := mod.Decode(payload, len(deltas), 0, false)
		if err != nil {
			log.Fatalf("%s: %v", s, err)
		}
		soft, _ := codec.Decode(nil, payload, len(deltas))
		for i := range soft {
			if out[i] != soft[i] {
				log.Fatalf("%s: hardware datapath diverged from software codec", s)
			}
		}
		fmt.Printf("  %-8s %4d bytes -> 128 values in %4d cycles (%.2f values/cycle), bit-exact\n",
			s, used, cycles, 128/float64(cycles))
	}
}
