// Quickstart: index a handful of documents, search them with boolean BM25
// queries, then run the same query on the simulated BOSS accelerator and
// look at its execution profile.
package main

import (
	"fmt"
	"log"

	"boss"
)

func main() {
	b := boss.NewBuilder()
	b.Add("moby", "call me ishmael some years ago never mind how long precisely")
	b.Add("pride", "it is a truth universally acknowledged that a single man in possession of a good fortune")
	b.Add("kafka", "as gregor samsa awoke one morning from uneasy dreams he found himself transformed")
	b.Add("1984", "it was a bright cold day in april and the clocks were striking thirteen")
	b.Add("tale", "it was the best of times it was the worst of times it was the age of wisdom")
	ix := b.Build()

	fmt.Printf("indexed %d documents, %d terms, footprint %d bytes\n\n",
		ix.NumDocs(), ix.NumTerms(), ix.FootprintBytes())

	// A mixed boolean query in the paper's offloading-API syntax.
	expr := `"it" AND ("times" OR "thirteen")`
	hits, err := ix.Search(expr, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("software engine, query %s:\n", expr)
	for i, h := range hits {
		fmt.Printf("  %d. %-6s score %.3f\n", i+1, h.Doc, h.Score)
	}

	// The same query on the simulated BOSS accelerator sitting next to
	// storage-class memory.
	acc := ix.Accelerator(boss.AccelOptions{})
	ahits, stats, err := acc.Search(expr, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBOSS accelerator (same results guaranteed):\n")
	for i, h := range ahits {
		fmt.Printf("  %d. %-6s score %.3f\n", i+1, h.Doc, h.Score)
	}
	fmt.Printf("\nsimulated execution:\n")
	fmt.Printf("  latency         %v\n", stats.SimulatedLatency)
	fmt.Printf("  device traffic  %d bytes\n", stats.DeviceBytes)
	fmt.Printf("  host traffic    %d bytes (top-k only)\n", stats.HostBytes)
	fmt.Printf("  docs scored     %d\n", stats.DocsEvaluated)
	fmt.Printf("  blocks fetched  %d, skipped %d\n", stats.BlocksFetched, stats.BlocksSkipped)
}
