// Pooledscaling: the paper's motivating deployment — many SCM memory nodes
// behind one shared host interconnect, each holding an index shard with a
// BOSS device in its memory controller. This example sweeps the node count
// and shows why near-data processing plus the hardware top-k module keep
// the shared link from becoming the bottleneck, while a host-side-top-k
// design saturates it almost immediately.
package main

import (
	"fmt"
	"log"

	"boss"
	"boss/internal/mem"
)

func main() {
	fmt.Println("building one shard (each pool node holds an identical-statistics shard)...")
	shard := boss.BuildSynthetic(boss.ClueWebLike, 0.02)
	fmt.Printf("shard: %d docs, %.1f MB footprint\n\n", shard.NumDocs(), float64(shard.FootprintBytes())/1e6)

	expr := `"` + shard.CommonTerm(0) + `" OR "` + shard.CommonTerm(2) + `" OR "` + shard.CommonTerm(5) + `"`
	const k = 1000

	// Per-node profile with the hardware top-k module...
	_, hw, err := shard.Accelerator(boss.AccelOptions{}).Search(expr, k)
	if err != nil {
		log.Fatal(err)
	}
	// ...and with top-k selection ablated to the host: every scored doc
	// crosses the link. (The public API ships the ablations that change
	// result-correctness; for the host-topk what-if we derive link traffic
	// from the docs the accelerator scored.)
	hostBytesHW := float64(hw.HostBytes)
	hostBytesSW := float64(hw.DocsEvaluated * 8)

	nodeQPS := hw.ThroughputQPS // one node's ceiling (8 cores, local SCM)
	linkBytesPerSec := mem.DefaultLinkGBs * 1e9

	fmt.Printf("query: %s (k=%d)\n", expr, k)
	fmt.Printf("per-node throughput ceiling: %.0f queries/s\n", nodeQPS)
	fmt.Printf("link budget: %.0f GB/s shared by all nodes\n\n", mem.DefaultLinkGBs)

	fmt.Printf("%6s | %24s | %24s\n", "nodes", "hardware top-k (QPS)", "host-side top-k (QPS)")
	for _, nodes := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		aggregate := float64(nodes) * nodeQPS
		hwQPS := minf(aggregate, linkBytesPerSec/hostBytesHW)
		swQPS := minf(aggregate, linkBytesPerSec/hostBytesSW)
		mark := ""
		if swQPS < aggregate {
			mark = "  <- link-bound"
		}
		fmt.Printf("%6d | %24.0f | %21.0f%s\n", nodes, hwQPS, swQPS, mark)
	}

	maxHW := linkBytesPerSec / hostBytesHW / nodeQPS
	maxSW := linkBytesPerSec / hostBytesSW / nodeQPS
	fmt.Printf("\nnodes sustainable at full speed: %.0f with hardware top-k, %.1f with host-side top-k\n",
		maxHW, maxSW)
	fmt.Println("(this is Section III-A: the top-k list is a tiny fraction of the scored set,")
	fmt.Println(" so the pool can scale out without the shared interconnect throttling it)")
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
