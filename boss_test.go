package boss

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// sampleIndex builds a small hand-written document collection.
func sampleIndex(t testing.TB) *Index {
	t.Helper()
	b := NewBuilder()
	b.Add("pets", "the quick brown fox jumps over the lazy dog")
	b.Add("news", "storage class memory changes the economics of search")
	b.Add("paper", "a bandwidth optimized search accelerator for storage class memory")
	b.Add("misc", "the dog days of summer bring lazy afternoons")
	b.Add("tech", "near data processing accelerators filter memory traffic")
	return b.Build()
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! 42 foo-bar")
	want := []string{"hello", "world", "42", "foo", "bar"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	if len(Tokenize("")) != 0 {
		t.Fatal("empty text should produce no tokens")
	}
}

func TestBuildAndSearch(t *testing.T) {
	ix := sampleIndex(t)
	if ix.NumDocs() != 5 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if !ix.HasTerm("memory") || ix.HasTerm("nonexistent") {
		t.Fatal("HasTerm wrong")
	}

	hits, err := ix.Search(`"lazy"`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("'lazy' hits = %v", hits)
	}
	names := map[string]bool{hits[0].Doc: true, hits[1].Doc: true}
	if !names["pets"] || !names["misc"] {
		t.Fatalf("'lazy' should hit pets and misc: %v", hits)
	}
}

func TestSearchBooleanOperators(t *testing.T) {
	ix := sampleIndex(t)
	// AND: both terms must appear.
	hits, err := ix.Search(`"storage" AND "search"`, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Doc != "news" && h.Doc != "paper" {
			t.Fatalf("unexpected AND hit %v", h)
		}
	}
	if len(hits) != 2 {
		t.Fatalf("AND hits = %v", hits)
	}
	// Mixed query.
	hits, err = ix.Search(`"memory" AND ("accelerator" OR "economics")`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("mixed hits = %v", hits)
	}
}

func TestSearchErrors(t *testing.T) {
	ix := sampleIndex(t)
	if _, err := ix.Search(`not quoted`, 5); err == nil {
		t.Fatal("malformed expression should error")
	}
	if _, err := ix.Search(`"absentterm"`, 5); err == nil {
		t.Fatal("unknown term should error")
	}
}

func TestScoresRankRareTermsHigher(t *testing.T) {
	ix := sampleIndex(t)
	// "accelerator" appears in one doc; "the" in several. A doc matching
	// the rare term should outrank one matching only the common term.
	hits, err := ix.Search(`"accelerator" OR "the"`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].Doc != "paper" {
		t.Fatalf("rare-term doc should rank first: %v", hits)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted by score")
		}
	}
}

func TestAcceleratorMatchesEngine(t *testing.T) {
	ix := sampleIndex(t)
	acc := ix.Accelerator(AccelOptions{})
	for _, expr := range []string{
		`"memory"`,
		`"storage" AND "search"`,
		`"lazy" OR "memory"`,
		`"memory" AND ("accelerator" OR "economics")`,
	} {
		want, err := ix.Search(expr, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := acc.Search(expr, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: accelerator hits differ\n got %v\nwant %v", expr, got, want)
		}
		if stats.SimulatedLatency <= 0 {
			t.Fatalf("%s: no simulated latency", expr)
		}
		if stats.DocsEvaluated <= 0 || stats.BlocksFetched <= 0 {
			t.Fatalf("%s: empty stats %+v", expr, stats)
		}
		if stats.ThroughputQPS <= 0 {
			t.Fatalf("%s: no throughput", expr)
		}
	}
}

func TestAcceleratorOptionVariants(t *testing.T) {
	ix := BuildSynthetic(CCNewsLike, 0.005)
	expr := `"t0" OR "t1"`
	base, bs, err := ix.Accelerator(AccelOptions{}).Search(expr, 10)
	if err != nil {
		t.Fatal(err)
	}
	exh, es, err := ix.Accelerator(AccelOptions{DisableBlockET: true, DisableWAND: true}).Search(expr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(exh) {
		t.Fatal("ET changed result count")
	}
	for i := range base {
		if base[i].DocID != exh[i].DocID {
			t.Fatal("ET changed results")
		}
	}
	if es.DocsEvaluated < bs.DocsEvaluated {
		t.Fatal("exhaustive should evaluate at least as many docs")
	}
	// DRAM run must be at least as fast.
	_, ds, err := ix.Accelerator(AccelOptions{DRAM: true}).Search(expr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ds.SimulatedLatency > bs.SimulatedLatency {
		t.Fatal("DRAM latency should not exceed SCM latency")
	}
	// Fixed-point scoring completes and returns the same number of hits.
	fp, _, err := ix.Accelerator(AccelOptions{FixedPoint: true}).Search(expr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != len(base) {
		t.Fatal("fixed-point hit count differs")
	}
}

func TestBuildSynthetic(t *testing.T) {
	ix := BuildSynthetic(ClueWebLike, 0.002)
	if ix.NumDocs() == 0 || ix.NumTerms() == 0 {
		t.Fatal("synthetic index empty")
	}
	if ix.CommonTerm(0) != "t0" {
		t.Fatal("CommonTerm(0) != t0")
	}
	if ix.FootprintBytes() == 0 {
		t.Fatal("no footprint")
	}
	hits, err := ix.Search(`"t0"`, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 {
		t.Fatalf("top-5 on t0 returned %d hits", len(hits))
	}
	if !strings.HasPrefix(hits[0].Doc, "doc") {
		t.Fatalf("synthetic doc name %q", hits[0].Doc)
	}
}

func TestCommonTermPanicsOnUserIndex(t *testing.T) {
	ix := sampleIndex(t)
	defer func() {
		if recover() == nil {
			t.Fatal("CommonTerm on user index should panic")
		}
	}()
	ix.CommonTerm(0)
}

func TestIndexSerializationRoundTrip(t *testing.T) {
	ix := sampleIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.Search(`"memory"`, 10)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := got.Search(`"memory"`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != len(want) {
		t.Fatal("hit count differs after round trip")
	}
	for i := range hits {
		if hits[i].DocID != want[i].DocID {
			t.Fatal("results differ after round trip")
		}
	}
}

func TestEmptyBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build on empty builder should panic")
		}
	}()
	NewBuilder().Build()
}

func TestSetBM25(t *testing.T) {
	b := NewBuilder()
	b.SetBM25(2.0, 0.5)
	b.Add("a", "x y z y")
	b.Add("b", "x")
	ix := b.Build()
	hits, err := ix.Search(`"y"`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Doc != "a" {
		t.Fatalf("hits = %v", hits)
	}
}

func TestShardedIndexMatchesSingleNode(t *testing.T) {
	single := BuildSynthetic(CCNewsLike, 0.006)
	sharded, err := Shard(CCNewsLike, 0.006, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Nodes() != 4 {
		t.Fatalf("nodes = %d", sharded.Nodes())
	}
	for _, expr := range []string{
		`"t0"`,
		`"t1" AND "t3"`,
		`"t0" OR "t2" OR "t5"`,
		`"t1" AND ("t4" OR "t6")`,
	} {
		want, err := single.Search(expr, 20)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := sharded.Search(expr, 20)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d hits vs %d", expr, len(got), len(want))
		}
		for i := range got {
			if got[i].DocID != want[i].DocID {
				t.Fatalf("%s: hit %d differs (%d vs %d)", expr, i, got[i].DocID, want[i].DocID)
			}
		}
		if stats.DocsEvaluated == 0 {
			t.Fatalf("%s: no aggregate stats", expr)
		}
	}
}

func TestShardedIndexErrors(t *testing.T) {
	sharded, err := Shard(CCNewsLike, 0.004, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sharded.Search(`"missing"`, 5); err == nil {
		t.Fatal("unknown term should error")
	}
	if _, err := Shard(SyntheticKind(99), 0.004, 2); err == nil {
		t.Fatal("unknown corpus kind should error")
	}
	if _, err := Shard(CCNewsLike, 0.004, 0); err == nil {
		t.Fatal("zero nodes should error")
	}
}

func TestShardedIndexSearchCtx(t *testing.T) {
	sharded, err := Shard(CCNewsLike, 0.006, 4)
	if err != nil {
		t.Fatal(err)
	}
	expr := `"t1" AND "t3"`
	want, _, err := sharded.Search(expr, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sharded.SearchCtx(context.Background(), expr, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 0 {
		t.Fatalf("clean SearchCtx degraded mask = %b", res.Degraded)
	}
	if len(res.Hits) != len(want) {
		t.Fatalf("%d hits vs %d", len(res.Hits), len(want))
	}
	for i := range want {
		if res.Hits[i].DocID != want[i].DocID {
			t.Fatalf("hit %d differs (%d vs %d)", i, res.Hits[i].DocID, want[i].DocID)
		}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	items := sharded.SearchBatchCtx(cancelled, []string{expr, expr}, 20)
	for i, it := range items {
		if !errors.Is(it.Err, context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, it.Err)
		}
	}
}

func TestShardedIndexInjectFaults(t *testing.T) {
	sharded, err := Shard(CCNewsLike, 0.006, 4)
	if err != nil {
		t.Fatal(err)
	}
	sharded.InjectFaults(FaultConfig{Seed: 42, DeadNodes: []int{1}})
	res, err := sharded.SearchCtx(context.Background(), `"t0" OR "t2"`, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 1<<1 {
		t.Fatalf("degraded mask = %b, want node 1 only", res.Degraded)
	}
	// Clearing the plan restores full availability.
	sharded.InjectFaults(FaultConfig{})
	res, err = sharded.SearchCtx(context.Background(), `"t0" OR "t2"`, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 0 {
		t.Fatalf("degraded mask after clearing plan = %b", res.Degraded)
	}
}

func TestShardReplicatedFailsOver(t *testing.T) {
	single, err := Shard(CCNewsLike, 0.006, 4)
	if err != nil {
		t.Fatal(err)
	}
	expr := `"t1" AND "t3"`
	want, _, err := single.Search(expr, 20)
	if err != nil {
		t.Fatal(err)
	}

	repl, err := ShardReplicated(CCNewsLike, 0.006, 4, ReplicaOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := repl.SearchCtx(context.Background(), expr, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Hits, want) {
		t.Fatalf("replicated hits diverge from single-copy:\n%v\n%v", res.Hits, want)
	}
	if len(res.ServedBy) != 4 {
		t.Fatalf("ServedBy = %v, want 4 entries", res.ServedBy)
	}

	// Kill copy 0 of every node: the deployment must fail over to copy 1
	// on every shard with no degraded bits (this exercises the facade
	// arming retries for replicated deployments — without retries a query
	// routed to a dead copy degrades instead of rotating).
	repl.InjectFaults(FaultConfig{Seed: 42, DeadReplicas: []NodeReplica{
		{Node: 0, Replica: 0}, {Node: 1, Replica: 0}, {Node: 2, Replica: 0}, {Node: 3, Replica: 0},
	}})
	res, err = repl.SearchCtx(context.Background(), expr, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 0 {
		t.Fatalf("degraded mask with surviving copies = %b, want 0", res.Degraded)
	}
	for si, ri := range res.ServedBy {
		if ri != 1 {
			t.Fatalf("node %d served by copy %d, want 1", si, ri)
		}
	}
	if !reflect.DeepEqual(res.Hits, want) {
		t.Fatalf("failover hits diverge from single-copy")
	}

	// The single-copy control with every node dead has nothing to fail
	// over to.
	single.InjectFaults(FaultConfig{Seed: 42, DeadNodes: []int{0, 1, 2, 3}})
	if _, err := single.SearchCtx(context.Background(), expr, 20); err == nil {
		t.Fatal("single-copy all-dead search unexpectedly succeeded")
	}
}
