// Package boss is a library reproduction of "BOSS: Bandwidth-Optimized
// Search Accelerator for Storage-Class Memory" (ISCA 2021). It provides a
// full-text inverted-index engine — document ingestion, hybrid posting-list
// compression, BM25 ranking, boolean queries — together with
// transaction-level models of the paper's hardware: the BOSS near-data
// accelerator, the IIU baseline accelerator, and an SCM/DRAM memory-pool
// substrate. The internal packages hold the substrates; this package is the
// stable facade a downstream user works with.
//
// Quick start:
//
//	b := boss.NewBuilder()
//	b.Add("doc1", "the quick brown fox")
//	b.Add("doc2", "the lazy dog")
//	ix := b.Build()
//	hits, _ := ix.Search(`"quick" OR "lazy"`, 10)
//
// To see how the same query behaves on the paper's accelerator over
// storage-class memory:
//
//	acc := ix.Accelerator(boss.AccelOptions{})
//	hits, stats, _ := acc.Search(`"quick" OR "lazy"`, 10)
//	fmt.Println(stats.SimulatedLatency, stats.DeviceBytes)
package boss

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
	"unicode"

	"boss/internal/cache"
	"boss/internal/compress"
	"boss/internal/core"
	"boss/internal/corpus"
	"boss/internal/docstore"
	"boss/internal/engine"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/pool"
	"boss/internal/query"
	"boss/internal/score"
	"boss/internal/sim"
	"boss/internal/topk"
)

// Builder accumulates documents and produces an Index. Documents are
// tokenized by lowercasing and splitting on non-alphanumeric runes.
type Builder struct {
	names   []string
	texts   []string // raw document text, packed into the document store
	termTFs []map[string]uint32
	params  score.Params
	impacts bool
}

// NewBuilder returns an empty index builder with the paper's BM25
// parameters (k1 = 1.2, b = 0.75).
func NewBuilder() *Builder {
	return &Builder{params: score.DefaultParams()}
}

// SetBM25 overrides the ranking parameters.
func (b *Builder) SetBM25(k1, bParam float64) {
	b.params = score.Params{K1: k1, B: bParam}
}

// EnableImpacts makes Build quantize each posting's BM25 contribution
// into the posting blocks (one byte per posting), which the sparse-dot
// query family — SPARSE("a", "b", ...) — reads instead of recomputing
// BM25. Boolean queries are unaffected; without this, SPARSE queries
// fail with an error naming the missing build option.
func (b *Builder) EnableImpacts() { b.impacts = true }

// Add ingests one document. name identifies the document in search results;
// docIDs are assigned in insertion order.
func (b *Builder) Add(name, text string) {
	tf := make(map[string]uint32)
	for _, tok := range Tokenize(text) {
		tf[tok]++
	}
	b.names = append(b.names, name)
	b.texts = append(b.texts, text)
	b.termTFs = append(b.termTFs, tf)
}

// Len reports the number of documents added so far.
func (b *Builder) Len() int { return len(b.names) }

// Tokenize splits text into lowercase alphanumeric terms.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Build compresses the accumulated documents into a searchable index using
// the paper's hybrid per-list compression selection.
func (b *Builder) Build() *Index {
	if len(b.names) == 0 {
		panic("boss: Build on an empty Builder")
	}
	// Assemble posting lists in term order.
	byTerm := make(map[string][]corpus.Posting)
	docLens := make([]uint32, len(b.names))
	for doc, tfs := range b.termTFs {
		for term, tf := range tfs {
			byTerm[term] = append(byTerm[term], corpus.Posting{DocID: uint32(doc), TF: tf})
			docLens[doc] += tf
		}
	}
	terms := make([]string, 0, len(byTerm))
	for t := range byTerm {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	c := &corpus.Corpus{
		Spec:    corpus.Spec{Name: "user", NumDocs: len(b.names), NumTerms: len(terms)},
		DocLens: docLens,
	}
	var total uint64
	for _, l := range docLens {
		total += uint64(l)
	}
	c.AvgDocLen = float64(total) / float64(len(docLens))
	if c.AvgDocLen == 0 {
		c.AvgDocLen = 1
	}
	for _, t := range terms {
		ps := byTerm[t]
		sort.Slice(ps, func(i, j int) bool { return ps[i].DocID < ps[j].DocID })
		c.Terms = append(c.Terms, corpus.TermPostings{Term: t, Postings: ps})
		c.TotalPostings += int64(len(ps))
	}
	// Pack the raw documents into the block-compressed store that serves
	// the fetch phase; user-built indexes return the exact ingested text.
	db := docstore.NewBuilder("name", "text")
	for i, name := range b.names {
		if err := db.AddStrings(name, b.texts[i]); err != nil {
			panic(err) // unreachable: arity is fixed above
		}
	}
	return &Index{
		idx:   index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid, Params: b.params, Impacts: b.impacts}),
		names: b.names,
		docs:  db.Build(),
	}
}

// Index is a searchable, compressed inverted index.
type Index struct {
	idx   *index.Index
	names []string // docID -> user-facing name; nil for synthetic corpora

	// Fetch-phase document store: packed eagerly from the ingested text by
	// Builder.Build, synthesized lazily from the retained sampler
	// statistics for synthetic corpora, and absent for deserialized
	// indexes (fetching then fails with ErrNoDocStore).
	docs     *docstore.Store
	spec     *corpus.Spec // non-nil only for synthetic corpora
	docLens  []uint32
	docsOnce sync.Once
	docsErr  error
}

// ErrNoDocStore reports a document fetch against an index without a
// document store (indexes read back with ReadIndex carry postings only).
var ErrNoDocStore = errors.New("boss: index has no document store")

// ensureDocs returns the index's document store, synthesizing it on
// first use for synthetic corpora.
func (ix *Index) ensureDocs() (*docstore.Store, error) {
	ix.docsOnce.Do(func() {
		if ix.docs != nil {
			return // packed eagerly by Builder.Build
		}
		if ix.spec == nil {
			ix.docsErr = ErrNoDocStore
			return
		}
		db := docstore.NewBuilder("name", "text")
		var name, text []byte
		for id := 0; id < ix.idx.NumDocs; id++ {
			name = corpus.DocName(name[:0], uint32(id))
			text = corpus.DocText(ix.spec.Seed, uint32(id), ix.docLens[id], ix.spec.NumTerms, text[:0])
			if err := db.Add(name, text); err != nil {
				ix.docsErr = err
				return
			}
		}
		ix.docs = db.Build()
	})
	return ix.docs, ix.docsErr
}

// Hit is one search result.
type Hit struct {
	// Doc is the document name given to Builder.Add (or "doc<N>" for
	// synthetic corpora).
	Doc string
	// DocID is the internal identifier.
	DocID uint32
	// Score is the BM25 query score.
	Score float64
}

func (ix *Index) docName(id uint32) string {
	if ix.names != nil && int(id) < len(ix.names) {
		return ix.names[id]
	}
	return fmt.Sprintf("doc%d", id)
}

func (ix *Index) hits(entries []topk.Entry) []Hit {
	out := make([]Hit, len(entries))
	for i, e := range entries {
		out[i] = Hit{Doc: ix.docName(e.DocID), DocID: e.DocID, Score: e.Score}
	}
	return out
}

// NumDocs reports the number of indexed documents.
func (ix *Index) NumDocs() int { return ix.idx.NumDocs }

// NumTerms reports the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.idx.Lists) }

// HasTerm reports whether the term is indexed (after tokenization rules).
func (ix *Index) HasTerm(term string) bool { return ix.idx.List(term) != nil }

// FootprintBytes reports the simulated memory footprint of the index
// (compressed payloads + block metadata + per-document scoring metadata).
func (ix *Index) FootprintBytes() uint64 { return ix.idx.TotalBytes }

// Search runs a boolean query expression (`"a" AND ("b" OR "c")`) on the
// software engine and returns the top-k hits.
func (ix *Index) Search(expr string, k int) ([]Hit, error) {
	node, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	res, err := engine.New(ix.idx).Run(node, k)
	if err != nil {
		return nil, err
	}
	return ix.hits(res.TopK), nil
}

// BatchItem is one query's outcome in a batch search. A nil Err with empty
// Hits means the query genuinely matched nothing.
type BatchItem struct {
	// Hits is the query's top-k result list.
	Hits []Hit
	// Stats carries simulated-device statistics on accelerator paths (nil
	// on the software-engine path).
	Stats *SimStats
	// Err reports why this query failed (parse error, unknown term, ...).
	Err error
	// Degraded, on the resilient sharded paths (SearchBatchCtx), is a
	// bitmask of memory nodes whose shard results are missing from Hits;
	// zero means the result is complete. Always zero elsewhere.
	Degraded uint64
}

// SearchBatch runs many queries concurrently on the software engine (one
// worker per CPU) and returns one item per query, in input order. Results
// are identical to calling Search per query.
func (ix *Index) SearchBatch(exprs []string, k int) []BatchItem {
	items := make([]BatchItem, len(exprs))
	nodes := make([]*query.Node, 0, len(exprs))
	slots := make([]int, 0, len(exprs))
	for i, expr := range exprs {
		node, err := query.Parse(expr)
		if err != nil {
			items[i].Err = err
			continue
		}
		nodes = append(nodes, node)
		slots = append(slots, i)
	}
	br := engine.New(ix.idx).RunBatch(nodes, k, 0)
	for j, i := range slots {
		if err := br.Errs[j]; err != nil {
			items[i].Err = err
			continue
		}
		items[i].Hits = ix.hits(br.Results[j].TopK)
	}
	return items
}

// WriteTo serializes the index (document names are not serialized; a
// re-read index reports synthetic names).
func (ix *Index) WriteTo(w io.Writer) (int64, error) { return ix.idx.WriteTo(w) }

// ReadIndex deserializes an index written with WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	idx, err := index.Read(r)
	if err != nil {
		return nil, err
	}
	return &Index{idx: idx}, nil
}

// AccelOptions configures the simulated BOSS accelerator.
type AccelOptions struct {
	// DisableBlockET turns off the block-fetch module's score-estimation
	// skipping (the BOSS-exhaustive/block ablations).
	DisableBlockET bool
	// DisableWAND turns off the union module's document-level skipping.
	DisableWAND bool
	// FixedPoint scores in Q16.16 like the synthesized hardware.
	FixedPoint bool
	// DRAM runs the accelerator against the DRAM pool configuration
	// instead of SCM (the paper's Figure 16 comparison).
	DRAM bool
	// Cores sets the device's core count for throughput estimates
	// (default 8, as in the paper).
	Cores int
	// CacheBytes budgets the host-side decoded-block cache that serves
	// repeated queries from this handle (0 = 64 MiB default, negative
	// disables). The cache changes wall-clock speed only: simulated stats
	// and hits are byte-identical with it on, off, or resized.
	CacheBytes int64
}

// Accelerator is a handle to the simulated BOSS device over one index.
type Accelerator struct {
	acc   *core.Accelerator
	ix    *Index
	dev   mem.Config
	cores int

	fetchOnce sync.Once
	fetchErr  error
	fetch     *core.FetchEngine
}

// Accelerator returns a simulated BOSS device over the index.
func (ix *Index) Accelerator(opts AccelOptions) *Accelerator {
	co := core.Options{
		BlockET:    !opts.DisableBlockET,
		DocET:      !opts.DisableWAND,
		FixedPoint: opts.FixedPoint,
	}
	dev := mem.SCM()
	if opts.DRAM {
		dev = mem.DRAM()
	}
	cores := opts.Cores
	if cores <= 0 {
		cores = 8
	}
	cb := opts.CacheBytes
	if cb == 0 {
		cb = pool.DefaultCacheBytes
	}
	return &Accelerator{acc: core.NewCached(ix.idx, co, cache.New(cb)), ix: ix, dev: dev, cores: cores}
}

// CacheHitRate reports the fraction of block fetches this handle served
// from its decoded-block cache (0 when the cache is disabled or cold).
// The cache is shared by both client classes — decoded posting blocks
// (search) and decoded document blocks (fetch) — and this rate spans
// both; PostingCacheHitRate and DocCacheHitRate report the split.
func (a *Accelerator) CacheHitRate() float64 { return a.acc.Cache().Stats().HitRate() }

// PostingCacheHitRate reports the decoded-block cache hit rate of the
// search phase's posting-block fetches alone.
func (a *Accelerator) PostingCacheHitRate() float64 {
	return a.acc.Cache().Stats().PostingHitRate()
}

// DocCacheHitRate reports the decoded-block cache hit rate of the fetch
// phase's document-block fetches alone.
func (a *Accelerator) DocCacheHitRate() float64 {
	return a.acc.Cache().Stats().DocHitRate()
}

// fetchEngine lazily wires the accelerator's fetch engine over the
// index's document store, sharing this handle's decoded-block cache.
func (a *Accelerator) fetchEngine() (*core.FetchEngine, error) {
	a.fetchOnce.Do(func() {
		ds, err := a.ix.ensureDocs()
		if err != nil {
			a.fetchErr = err
			return
		}
		a.fetch = core.NewFetchEngine(ds, a.acc.Cache())
	})
	return a.fetch, a.fetchErr
}

// Doc is one fetched document payload.
type Doc struct {
	// DocID is the internal identifier.
	DocID uint32
	// Name is the document name given to Builder.Add ("doc<N>" for
	// synthetic corpora).
	Name string
	// Text is the document body: the exact ingested text for user-built
	// indexes, the deterministic synthetic payload otherwise. Empty for
	// documents a degraded sharded fetch could not serve.
	Text string
}

// FetchDocs fetches document payloads by docID, charging the simulated
// device for the document-store block loads and decodes exactly as
// Search charges posting-block work. Repeated fetches of co-located
// documents hit the handle's decoded-block cache, which changes
// wall-clock speed only: the returned stats are byte-identical with the
// cache on, off, or resized.
func (a *Accelerator) FetchDocs(ids []uint32) ([]Doc, *SimStats, error) {
	eng, err := a.fetchEngine()
	if err != nil {
		return nil, nil, err
	}
	m := perf.NewMetrics()
	docs, err := fetchDocsInto(eng, ids, m)
	if err != nil {
		return nil, nil, err
	}
	return docs, simStats(m, a.dev, a.cores), nil
}

// fetchDocsInto runs the fetch loop shared by FetchDocs and SearchFetch,
// accumulating simulated charges into m.
func fetchDocsInto(eng *core.FetchEngine, ids []uint32, m *perf.Metrics) ([]Doc, error) {
	var buf core.DocBuf
	defer buf.Release()
	docs := make([]Doc, len(ids))
	for i, id := range ids {
		if err := eng.FetchInto(nil, id, m, &buf); err != nil {
			return nil, err
		}
		docs[i] = Doc{DocID: id, Name: string(buf.Fields[0]), Text: string(buf.Fields[1])}
	}
	return docs, nil
}

// SearchFetch executes a query and fetches the top-k hits' documents in
// one call: the paper's full serving path, where ranking ends at scored
// docIDs and the response returns the documents themselves. The returned
// stats cover both phases — posting traffic plus document-store traffic —
// on one simulated device.
func (a *Accelerator) SearchFetch(expr string, k int) ([]Hit, []Doc, *SimStats, error) {
	node, err := query.Parse(expr)
	if err != nil {
		return nil, nil, nil, err
	}
	eng, err := a.fetchEngine()
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := a.acc.Run(node, k)
	if err != nil {
		return nil, nil, nil, err
	}
	ids := make([]uint32, len(res.TopK))
	for i, e := range res.TopK {
		ids[i] = e.DocID
	}
	docs, err := fetchDocsInto(eng, ids, res.M)
	if err != nil {
		return nil, nil, nil, err
	}
	return a.ix.hits(res.TopK), docs, simStats(res.M, a.dev, a.cores), nil
}

// SimStats summarizes one simulated query execution.
type SimStats struct {
	// SimulatedLatency is the single-core query latency on the device.
	SimulatedLatency time.Duration
	// ThroughputQPS is the device throughput at the configured core count
	// (bounded by compute, device bandwidth, and the host link).
	ThroughputQPS float64
	// DeviceBytes is the SCM/DRAM traffic the query generated.
	DeviceBytes int64
	// HostBytes crossed the shared interconnect (k results × 8 B).
	HostBytes int64
	// DocsEvaluated is the number of documents actually scored.
	DocsEvaluated int64
	// BlocksFetched and BlocksSkipped count posting blocks loaded vs
	// skipped by early termination / overlap checking.
	BlocksFetched int64
	BlocksSkipped int64
	// DocsFetched is the number of documents returned by the fetch phase
	// (zero on search-only paths).
	DocsFetched int64
}

func simStats(m *perf.Metrics, dev mem.Config, cores int) *SimStats {
	return &SimStats{
		SimulatedLatency: time.Duration(m.Latency(dev)/sim.Nanosecond) * time.Nanosecond,
		ThroughputQPS:    m.Throughput(cores, dev, mem.DefaultLinkGBs),
		DeviceBytes:      m.DeviceBytes(),
		HostBytes:        m.HostBytes,
		DocsEvaluated:    m.DocsEvaluated,
		BlocksFetched:    m.BlocksFetched,
		BlocksSkipped:    m.BlocksSkipped,
		DocsFetched:      m.DocsFetched,
	}
}

// Search executes a query on the simulated accelerator, returning the
// top-k hits and the execution's simulated statistics.
func (a *Accelerator) Search(expr string, k int) ([]Hit, *SimStats, error) {
	node, err := query.Parse(expr)
	if err != nil {
		return nil, nil, err
	}
	res, err := a.acc.Run(node, k)
	if err != nil {
		return nil, nil, err
	}
	return a.ix.hits(res.TopK), simStats(res.M, a.dev, a.cores), nil
}

// SearchBatch runs many queries concurrently on the simulated accelerator
// (one worker per CPU) and returns one item per query, in input order, each
// with its own simulated statistics. Results are identical to calling
// Search per query: the device model is stateless.
func (a *Accelerator) SearchBatch(exprs []string, k int) []BatchItem {
	items := make([]BatchItem, len(exprs))
	nodes := make([]*query.Node, 0, len(exprs))
	slots := make([]int, 0, len(exprs))
	for i, expr := range exprs {
		node, err := query.Parse(expr)
		if err != nil {
			items[i].Err = err
			continue
		}
		nodes = append(nodes, node)
		slots = append(slots, i)
	}
	br := a.acc.RunBatch(nodes, k, 0)
	for j, i := range slots {
		if err := br.Errs[j]; err != nil {
			items[i].Err = err
			continue
		}
		res := br.Results[j]
		items[i].Hits = a.ix.hits(res.TopK)
		items[i].Stats = simStats(res.M, a.dev, a.cores)
	}
	return items
}

// SyntheticKind selects a built-in synthetic corpus profile.
type SyntheticKind int

// Synthetic corpus profiles mimicking the paper's datasets.
const (
	ClueWebLike SyntheticKind = iota
	CCNewsLike
)

// BuildSynthetic generates a synthetic corpus with realistic posting-list
// statistics (Zipf document frequencies, clustered docIDs) and indexes it
// with hybrid compression. scale in (0, 1] controls size; see
// internal/corpus for the profiles. Terms are named "t<rank>" by descending
// document frequency.
func BuildSynthetic(kind SyntheticKind, scale float64) *Index {
	var spec corpus.Spec
	switch kind {
	case ClueWebLike:
		spec = corpus.ClueWebLike(scale)
	case CCNewsLike:
		spec = corpus.CCNewsLike(scale)
	default:
		panic("boss: unknown synthetic corpus kind")
	}
	c := corpus.Generate(spec)
	return &Index{
		idx: index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid}),
		// Retained so the fetch phase can synthesize the document store
		// lazily: payloads depend only on (Seed, docID, DocLens).
		spec:    &spec,
		docLens: c.DocLens,
	}
}

// CommonTerm returns the term at the given document-frequency rank of a
// synthetic index ("t0" is the most common). It panics on user-built
// indexes where ranks are not defined.
func (ix *Index) CommonTerm(rank int) string {
	term := fmt.Sprintf("t%d", rank)
	if ix.idx.List(term) == nil {
		panic(fmt.Sprintf("boss: no term at rank %d (synthetic indexes only)", rank))
	}
	return term
}

// ShardedIndex is the paper's pooled-memory deployment (Figure 1(b)): the
// collection partitioned into docID-interval shards, one per memory node,
// each with its own simulated BOSS device. Queries fan out to every node
// and the per-node top-k lists are merged; because shards score with
// collection-global statistics, results are identical to a single index's.
type ShardedIndex struct {
	cluster *pool.Cluster
	names   []string
}

// Shard builds a sharded deployment of a synthetic corpus over the given
// number of memory nodes. An unknown corpus kind or an invalid shard
// count (nodes <= 0, or more nodes than documents) returns an error.
func Shard(kind SyntheticKind, scale float64, nodes int) (*ShardedIndex, error) {
	return ShardReplicated(kind, scale, nodes, ReplicaOptions{})
}

// ReplicaOptions configures shard replication for ShardReplicated. The
// zero value means single-copy shards with hedging off — exactly Shard.
type ReplicaOptions struct {
	// Replicas is the number of independently-faultable copies of every
	// shard (0 or 1 = single copy).
	Replicas int
	// HedgeCutoff, when positive, arms hedged requests: a backup attempt
	// fires on another replica when the primary has not answered within
	// the cutoff. Requires Replicas > 1 to have any effect.
	HedgeCutoff time.Duration
}

// ShardReplicated is Shard with R-way shard replication: every memory
// node's shard exists as opt.Replicas independently-faultable copies,
// queries route to copies deterministically with open-breaker copies
// skipped, and retries rotate across copies (so even a permanent media
// error on one copy is served from another). With opt.HedgeCutoff set,
// tail-latency stragglers are hedged onto a second copy.
func ShardReplicated(kind SyntheticKind, scale float64, nodes int, opt ReplicaOptions) (*ShardedIndex, error) {
	var spec corpus.Spec
	switch kind {
	case ClueWebLike:
		spec = corpus.ClueWebLike(scale)
	case CCNewsLike:
		spec = corpus.CCNewsLike(scale)
	default:
		return nil, fmt.Errorf("boss: unknown synthetic corpus kind %d", kind)
	}
	c := corpus.Generate(spec)
	cfg := pool.DefaultConfig()
	if opt.Replicas > 0 {
		cfg.Replicas = opt.Replicas
	}
	if opt.Replicas > 1 {
		// Replication without retries cannot fail over: a query whose
		// deterministic draw lands on a dead copy would degrade instead
		// of rotating onto a survivor. Single-copy deployments keep the
		// zero-valued (retry-free) resilience Shard always had.
		cfg.Resilience = pool.DefaultResilience()
	}
	if opt.HedgeCutoff > 0 {
		cfg.Resilience.HedgeEnabled = true
		cfg.Resilience.HedgeCutoff = opt.HedgeCutoff
	}
	cl, err := pool.NewCluster(cfg, c, nodes)
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{cluster: cl}, nil
}

// Nodes reports how many memory nodes hold shards.
func (s *ShardedIndex) Nodes() int { return s.cluster.Shards() }

// Replicas reports how many copies of each shard the deployment holds.
func (s *ShardedIndex) Replicas() int { return s.cluster.Replicas() }

// CacheHitRate reports the fraction of block fetches the cluster served
// from its cross-query decoded-block cache, across both client classes
// (decoded posting blocks and decoded document blocks).
func (s *ShardedIndex) CacheHitRate() float64 { return s.cluster.CacheStats().HitRate() }

// DocCacheHitRate reports the cluster cache's hit rate for the fetch
// phase's document blocks alone.
func (s *ShardedIndex) DocCacheHitRate() float64 { return s.cluster.CacheStats().DocHitRate() }

// Search fans the query out to every node and merges the results. The
// returned stats aggregate all nodes' work; HostBytes is the total result
// traffic over the shared interconnect (per-node top-k lists).
func (s *ShardedIndex) Search(expr string, k int) ([]Hit, *SimStats, error) {
	res, err := s.cluster.Search(expr, k)
	if err != nil {
		return nil, nil, err
	}
	agg := perf.NewMetrics()
	for _, m := range res.PerShard {
		if m != nil {
			agg.Merge(m)
		}
	}
	hits := make([]Hit, len(res.TopK))
	for i, e := range res.TopK {
		hits[i] = Hit{Doc: fmt.Sprintf("doc%d", e.DocID), DocID: e.DocID, Score: e.Score}
	}
	return hits, simStats(agg, mem.SCM(), 8), nil
}

// SearchBatch pipelines many queries across the pooled-memory cluster: each
// host worker owns one in-flight query and sweeps it across the nodes, so
// different queries occupy different nodes concurrently. Items preserve
// input order and match Search query for query.
func (s *ShardedIndex) SearchBatch(exprs []string, k int) []BatchItem {
	br := s.cluster.SearchBatch(exprs, k)
	items := make([]BatchItem, len(exprs))
	for i := range exprs {
		if err := br.Errs[i]; err != nil {
			items[i].Err = err
			continue
		}
		res := br.Results[i]
		agg := perf.NewMetrics()
		for _, m := range res.PerShard {
			if m != nil {
				agg.Merge(m)
			}
		}
		items[i].Hits = make([]Hit, len(res.TopK))
		for j, e := range res.TopK {
			items[i].Hits[j] = Hit{Doc: fmt.Sprintf("doc%d", e.DocID), DocID: e.DocID, Score: e.Score}
		}
		items[i].Stats = simStats(agg, mem.SCM(), 8)
	}
	return items
}

// FaultConfig describes deterministic fault injection across a sharded
// deployment: every probabilistic decision derives from Seed, so a run
// is exactly reproducible. The zero value injects nothing.
type FaultConfig struct {
	// Seed drives every fault draw.
	Seed int64
	// TransientRate is the per-access probability of a retryable read
	// error in [0, 1).
	TransientRate float64
	// UncorrectableRate is the per-access probability of a permanent
	// media error in [0, 1).
	UncorrectableRate float64
	// DeadNodes lists memory nodes that never answer. On a replicated
	// deployment a dead node takes down every replica of its shard; to
	// kill a single copy, use DeadReplicas.
	DeadNodes []int
	// DeadReplicas kills individual shard copies on a replicated
	// deployment, leaving the node's other copies serving.
	DeadReplicas []NodeReplica
}

// NodeReplica names one shard copy: replica Replica of the shard on
// memory node Node.
type NodeReplica struct {
	Node    int
	Replica int
}

// InjectFaults applies a fault configuration to the deployment's memory
// nodes (the zero value restores pristine devices). Setup-time only: not
// safe concurrently with searches.
func (s *ShardedIndex) InjectFaults(fc FaultConfig) {
	var dead []int
	r := s.cluster.Replicas()
	for _, n := range fc.DeadNodes {
		for ri := 0; ri < r; ri++ {
			dead = append(dead, s.cluster.ReplicaDevice(n, ri))
		}
	}
	for _, nr := range fc.DeadReplicas {
		dead = append(dead, s.cluster.ReplicaDevice(nr.Node, nr.Replica))
	}
	s.cluster.SetFaultPlan(&mem.FaultPlan{
		Seed:              fc.Seed,
		TransientRate:     fc.TransientRate,
		UncorrectableRate: fc.UncorrectableRate,
		DeadDevices:       dead,
	})
}

// ShardedResult is a resilient sharded query's outcome: the merged hits,
// aggregate statistics over the surviving nodes, and a bitmask of nodes
// whose shard results are missing (zero = complete).
type ShardedResult struct {
	Hits     []Hit
	Stats    *SimStats
	Degraded uint64
	// Docs holds fetched document payloads on the fetch paths
	// (SearchFetchCtx: one per Hit, in rank order; FetchDocsCtx: one per
	// requested docID). Documents a degraded node could not serve are
	// zero-valued apart from their position. Nil on search-only paths.
	Docs []Doc
	// Hedged counts shard attempts that fired a hedged backup, and
	// HedgeWins how many of those backups beat the primary. Always zero
	// on single-copy or hedging-off deployments.
	Hedged    int
	HedgeWins int
	// ServedBy names the replica that served each node's shard (-1 for a
	// degraded node). Nil on single-copy deployments.
	ServedBy []int
}

// shardedResult converts a cluster result into the facade form.
func shardedResult(res *pool.ClusterResult, withDocs bool) *ShardedResult {
	agg := perf.NewMetrics()
	for _, m := range res.PerShard {
		if m != nil {
			agg.Merge(m)
		}
	}
	out := &ShardedResult{
		Hits:      make([]Hit, len(res.TopK)),
		Stats:     simStats(agg, mem.SCM(), 8),
		Degraded:  res.Degraded,
		Hedged:    res.Hedged,
		HedgeWins: res.HedgeWins,
		ServedBy:  res.ServedBy,
	}
	for i, e := range res.TopK {
		out.Hits[i] = Hit{Doc: fmt.Sprintf("doc%d", e.DocID), DocID: e.DocID, Score: e.Score}
	}
	if withDocs {
		out.Docs = docsFromFetched(res.Docs)
	}
	return out
}

// docsFromFetched converts pool-layer fetched payloads (already copied
// at the cluster boundary) into facade Docs. A degraded fetch leaves a
// document's Fields empty; the Doc keeps its id with empty payloads.
func docsFromFetched(fds []pool.FetchedDoc) []Doc {
	if fds == nil {
		return nil
	}
	out := make([]Doc, len(fds))
	for i, f := range fds {
		out[i] = Doc{DocID: f.DocID}
		if len(f.Fields) == 2 {
			out[i].Name = string(f.Fields[0])
			out[i].Text = string(f.Fields[1])
		}
	}
	return out
}

// SearchFetchCtx is SearchCtx plus the fetch phase: the merged top-k
// hits' documents come back in Docs, fetched from the nodes that hold
// them with the same deadlines, retries, and circuit breaking as the
// search fan-out. Nodes that fail either phase appear in Degraded; a
// degraded fetch leaves its documents zero-valued rather than failing
// the query.
func (s *ShardedIndex) SearchFetchCtx(ctx context.Context, expr string, k int) (*ShardedResult, error) {
	res, err := s.cluster.SearchFetchCtx(ctx, expr, k)
	if err != nil {
		return nil, err
	}
	return shardedResult(res, true), nil
}

// FetchDocsCtx fetches document payloads by docID across the deployment:
// each document is served by the memory node holding its shard. The
// result's Hits are empty; Docs holds one entry per requested id, in
// input order.
func (s *ShardedIndex) FetchDocsCtx(ctx context.Context, ids []uint32) (*ShardedResult, error) {
	res, err := s.cluster.FetchBatch(ctx, ids)
	if err != nil {
		return nil, err
	}
	return shardedResult(res, true), nil
}

// SearchCtx is Search with deadlines, bounded retry, per-node circuit
// breaking, and graceful degradation: when a node fails permanently its
// shard is dropped from the merge and flagged in Degraded rather than
// failing the query. The error is non-nil only when the context dies,
// the query is invalid, or every node fails.
func (s *ShardedIndex) SearchCtx(ctx context.Context, expr string, k int) (*ShardedResult, error) {
	res, err := s.cluster.SearchCtx(ctx, expr, k)
	if err != nil {
		return nil, err
	}
	return shardedResult(res, false), nil
}

// SearchBatchCtx is SearchBatch with per-query resilience: node failures
// degrade individual results (see BatchItem.Degraded) instead of
// failing them, and cancelling the context fails the remaining queries
// promptly.
func (s *ShardedIndex) SearchBatchCtx(ctx context.Context, exprs []string, k int) []BatchItem {
	br := s.cluster.SearchBatchCtx(ctx, exprs, k)
	items := make([]BatchItem, len(exprs))
	for i := range exprs {
		if err := br.Errs[i]; err != nil {
			items[i].Err = err
			continue
		}
		res := br.Results[i]
		agg := perf.NewMetrics()
		for _, m := range res.PerShard {
			if m != nil {
				agg.Merge(m)
			}
		}
		items[i].Degraded = res.Degraded
		items[i].Hits = make([]Hit, len(res.TopK))
		for j, e := range res.TopK {
			items[i].Hits[j] = Hit{Doc: fmt.Sprintf("doc%d", e.DocID), DocID: e.DocID, Score: e.Score}
		}
		items[i].Stats = simStats(agg, mem.SCM(), 8)
	}
	return items
}
