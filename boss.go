// Package boss is a library reproduction of "BOSS: Bandwidth-Optimized
// Search Accelerator for Storage-Class Memory" (ISCA 2021). It provides a
// full-text inverted-index engine — document ingestion, hybrid posting-list
// compression, BM25 ranking, boolean queries — together with
// transaction-level models of the paper's hardware: the BOSS near-data
// accelerator, the IIU baseline accelerator, and an SCM/DRAM memory-pool
// substrate. The internal packages hold the substrates; this package is the
// stable facade a downstream user works with.
//
// Quick start:
//
//	b := boss.NewBuilder()
//	b.Add("doc1", "the quick brown fox")
//	b.Add("doc2", "the lazy dog")
//	ix := b.Build()
//	hits, _ := ix.Search(`"quick" OR "lazy"`, 10)
//
// To see how the same query behaves on the paper's accelerator over
// storage-class memory:
//
//	acc := ix.Accelerator(boss.AccelOptions{})
//	hits, stats, _ := acc.Search(`"quick" OR "lazy"`, 10)
//	fmt.Println(stats.SimulatedLatency, stats.DeviceBytes)
package boss

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
	"unicode"

	"boss/internal/cache"
	"boss/internal/compress"
	"boss/internal/core"
	"boss/internal/corpus"
	"boss/internal/engine"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/pool"
	"boss/internal/query"
	"boss/internal/score"
	"boss/internal/sim"
	"boss/internal/topk"
)

// Builder accumulates documents and produces an Index. Documents are
// tokenized by lowercasing and splitting on non-alphanumeric runes.
type Builder struct {
	names   []string
	termTFs []map[string]uint32
	params  score.Params
}

// NewBuilder returns an empty index builder with the paper's BM25
// parameters (k1 = 1.2, b = 0.75).
func NewBuilder() *Builder {
	return &Builder{params: score.DefaultParams()}
}

// SetBM25 overrides the ranking parameters.
func (b *Builder) SetBM25(k1, bParam float64) {
	b.params = score.Params{K1: k1, B: bParam}
}

// Add ingests one document. name identifies the document in search results;
// docIDs are assigned in insertion order.
func (b *Builder) Add(name, text string) {
	tf := make(map[string]uint32)
	for _, tok := range Tokenize(text) {
		tf[tok]++
	}
	b.names = append(b.names, name)
	b.termTFs = append(b.termTFs, tf)
}

// Len reports the number of documents added so far.
func (b *Builder) Len() int { return len(b.names) }

// Tokenize splits text into lowercase alphanumeric terms.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Build compresses the accumulated documents into a searchable index using
// the paper's hybrid per-list compression selection.
func (b *Builder) Build() *Index {
	if len(b.names) == 0 {
		panic("boss: Build on an empty Builder")
	}
	// Assemble posting lists in term order.
	byTerm := make(map[string][]corpus.Posting)
	docLens := make([]uint32, len(b.names))
	for doc, tfs := range b.termTFs {
		for term, tf := range tfs {
			byTerm[term] = append(byTerm[term], corpus.Posting{DocID: uint32(doc), TF: tf})
			docLens[doc] += tf
		}
	}
	terms := make([]string, 0, len(byTerm))
	for t := range byTerm {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	c := &corpus.Corpus{
		Spec:    corpus.Spec{Name: "user", NumDocs: len(b.names), NumTerms: len(terms)},
		DocLens: docLens,
	}
	var total uint64
	for _, l := range docLens {
		total += uint64(l)
	}
	c.AvgDocLen = float64(total) / float64(len(docLens))
	if c.AvgDocLen == 0 {
		c.AvgDocLen = 1
	}
	for _, t := range terms {
		ps := byTerm[t]
		sort.Slice(ps, func(i, j int) bool { return ps[i].DocID < ps[j].DocID })
		c.Terms = append(c.Terms, corpus.TermPostings{Term: t, Postings: ps})
		c.TotalPostings += int64(len(ps))
	}
	return &Index{
		idx:   index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid, Params: b.params}),
		names: b.names,
	}
}

// Index is a searchable, compressed inverted index.
type Index struct {
	idx   *index.Index
	names []string // docID -> user-facing name; nil for synthetic corpora
}

// Hit is one search result.
type Hit struct {
	// Doc is the document name given to Builder.Add (or "doc<N>" for
	// synthetic corpora).
	Doc string
	// DocID is the internal identifier.
	DocID uint32
	// Score is the BM25 query score.
	Score float64
}

func (ix *Index) docName(id uint32) string {
	if ix.names != nil && int(id) < len(ix.names) {
		return ix.names[id]
	}
	return fmt.Sprintf("doc%d", id)
}

func (ix *Index) hits(entries []topk.Entry) []Hit {
	out := make([]Hit, len(entries))
	for i, e := range entries {
		out[i] = Hit{Doc: ix.docName(e.DocID), DocID: e.DocID, Score: e.Score}
	}
	return out
}

// NumDocs reports the number of indexed documents.
func (ix *Index) NumDocs() int { return ix.idx.NumDocs }

// NumTerms reports the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.idx.Lists) }

// HasTerm reports whether the term is indexed (after tokenization rules).
func (ix *Index) HasTerm(term string) bool { return ix.idx.List(term) != nil }

// FootprintBytes reports the simulated memory footprint of the index
// (compressed payloads + block metadata + per-document scoring metadata).
func (ix *Index) FootprintBytes() uint64 { return ix.idx.TotalBytes }

// Search runs a boolean query expression (`"a" AND ("b" OR "c")`) on the
// software engine and returns the top-k hits.
func (ix *Index) Search(expr string, k int) ([]Hit, error) {
	node, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	res, err := engine.New(ix.idx).Run(node, k)
	if err != nil {
		return nil, err
	}
	return ix.hits(res.TopK), nil
}

// BatchItem is one query's outcome in a batch search. A nil Err with empty
// Hits means the query genuinely matched nothing.
type BatchItem struct {
	// Hits is the query's top-k result list.
	Hits []Hit
	// Stats carries simulated-device statistics on accelerator paths (nil
	// on the software-engine path).
	Stats *SimStats
	// Err reports why this query failed (parse error, unknown term, ...).
	Err error
	// Degraded, on the resilient sharded paths (SearchBatchCtx), is a
	// bitmask of memory nodes whose shard results are missing from Hits;
	// zero means the result is complete. Always zero elsewhere.
	Degraded uint64
}

// SearchBatch runs many queries concurrently on the software engine (one
// worker per CPU) and returns one item per query, in input order. Results
// are identical to calling Search per query.
func (ix *Index) SearchBatch(exprs []string, k int) []BatchItem {
	items := make([]BatchItem, len(exprs))
	nodes := make([]*query.Node, 0, len(exprs))
	slots := make([]int, 0, len(exprs))
	for i, expr := range exprs {
		node, err := query.Parse(expr)
		if err != nil {
			items[i].Err = err
			continue
		}
		nodes = append(nodes, node)
		slots = append(slots, i)
	}
	br := engine.New(ix.idx).RunBatch(nodes, k, 0)
	for j, i := range slots {
		if err := br.Errs[j]; err != nil {
			items[i].Err = err
			continue
		}
		items[i].Hits = ix.hits(br.Results[j].TopK)
	}
	return items
}

// WriteTo serializes the index (document names are not serialized; a
// re-read index reports synthetic names).
func (ix *Index) WriteTo(w io.Writer) (int64, error) { return ix.idx.WriteTo(w) }

// ReadIndex deserializes an index written with WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	idx, err := index.Read(r)
	if err != nil {
		return nil, err
	}
	return &Index{idx: idx}, nil
}

// AccelOptions configures the simulated BOSS accelerator.
type AccelOptions struct {
	// DisableBlockET turns off the block-fetch module's score-estimation
	// skipping (the BOSS-exhaustive/block ablations).
	DisableBlockET bool
	// DisableWAND turns off the union module's document-level skipping.
	DisableWAND bool
	// FixedPoint scores in Q16.16 like the synthesized hardware.
	FixedPoint bool
	// DRAM runs the accelerator against the DRAM pool configuration
	// instead of SCM (the paper's Figure 16 comparison).
	DRAM bool
	// Cores sets the device's core count for throughput estimates
	// (default 8, as in the paper).
	Cores int
	// CacheBytes budgets the host-side decoded-block cache that serves
	// repeated queries from this handle (0 = 64 MiB default, negative
	// disables). The cache changes wall-clock speed only: simulated stats
	// and hits are byte-identical with it on, off, or resized.
	CacheBytes int64
}

// Accelerator is a handle to the simulated BOSS device over one index.
type Accelerator struct {
	acc   *core.Accelerator
	ix    *Index
	dev   mem.Config
	cores int
}

// Accelerator returns a simulated BOSS device over the index.
func (ix *Index) Accelerator(opts AccelOptions) *Accelerator {
	co := core.Options{
		BlockET:    !opts.DisableBlockET,
		DocET:      !opts.DisableWAND,
		FixedPoint: opts.FixedPoint,
	}
	dev := mem.SCM()
	if opts.DRAM {
		dev = mem.DRAM()
	}
	cores := opts.Cores
	if cores <= 0 {
		cores = 8
	}
	cb := opts.CacheBytes
	if cb == 0 {
		cb = pool.DefaultCacheBytes
	}
	return &Accelerator{acc: core.NewCached(ix.idx, co, cache.New(cb)), ix: ix, dev: dev, cores: cores}
}

// CacheHitRate reports the fraction of block fetches this handle served
// from its decoded-block cache (0 when the cache is disabled or cold).
func (a *Accelerator) CacheHitRate() float64 { return a.acc.Cache().Stats().HitRate() }

// SimStats summarizes one simulated query execution.
type SimStats struct {
	// SimulatedLatency is the single-core query latency on the device.
	SimulatedLatency time.Duration
	// ThroughputQPS is the device throughput at the configured core count
	// (bounded by compute, device bandwidth, and the host link).
	ThroughputQPS float64
	// DeviceBytes is the SCM/DRAM traffic the query generated.
	DeviceBytes int64
	// HostBytes crossed the shared interconnect (k results × 8 B).
	HostBytes int64
	// DocsEvaluated is the number of documents actually scored.
	DocsEvaluated int64
	// BlocksFetched and BlocksSkipped count posting blocks loaded vs
	// skipped by early termination / overlap checking.
	BlocksFetched int64
	BlocksSkipped int64
}

func simStats(m *perf.Metrics, dev mem.Config, cores int) *SimStats {
	return &SimStats{
		SimulatedLatency: time.Duration(m.Latency(dev)/sim.Nanosecond) * time.Nanosecond,
		ThroughputQPS:    m.Throughput(cores, dev, mem.DefaultLinkGBs),
		DeviceBytes:      m.DeviceBytes(),
		HostBytes:        m.HostBytes,
		DocsEvaluated:    m.DocsEvaluated,
		BlocksFetched:    m.BlocksFetched,
		BlocksSkipped:    m.BlocksSkipped,
	}
}

// Search executes a query on the simulated accelerator, returning the
// top-k hits and the execution's simulated statistics.
func (a *Accelerator) Search(expr string, k int) ([]Hit, *SimStats, error) {
	node, err := query.Parse(expr)
	if err != nil {
		return nil, nil, err
	}
	res, err := a.acc.Run(node, k)
	if err != nil {
		return nil, nil, err
	}
	return a.ix.hits(res.TopK), simStats(res.M, a.dev, a.cores), nil
}

// SearchBatch runs many queries concurrently on the simulated accelerator
// (one worker per CPU) and returns one item per query, in input order, each
// with its own simulated statistics. Results are identical to calling
// Search per query: the device model is stateless.
func (a *Accelerator) SearchBatch(exprs []string, k int) []BatchItem {
	items := make([]BatchItem, len(exprs))
	nodes := make([]*query.Node, 0, len(exprs))
	slots := make([]int, 0, len(exprs))
	for i, expr := range exprs {
		node, err := query.Parse(expr)
		if err != nil {
			items[i].Err = err
			continue
		}
		nodes = append(nodes, node)
		slots = append(slots, i)
	}
	br := a.acc.RunBatch(nodes, k, 0)
	for j, i := range slots {
		if err := br.Errs[j]; err != nil {
			items[i].Err = err
			continue
		}
		res := br.Results[j]
		items[i].Hits = a.ix.hits(res.TopK)
		items[i].Stats = simStats(res.M, a.dev, a.cores)
	}
	return items
}

// SyntheticKind selects a built-in synthetic corpus profile.
type SyntheticKind int

// Synthetic corpus profiles mimicking the paper's datasets.
const (
	ClueWebLike SyntheticKind = iota
	CCNewsLike
)

// BuildSynthetic generates a synthetic corpus with realistic posting-list
// statistics (Zipf document frequencies, clustered docIDs) and indexes it
// with hybrid compression. scale in (0, 1] controls size; see
// internal/corpus for the profiles. Terms are named "t<rank>" by descending
// document frequency.
func BuildSynthetic(kind SyntheticKind, scale float64) *Index {
	var spec corpus.Spec
	switch kind {
	case ClueWebLike:
		spec = corpus.ClueWebLike(scale)
	case CCNewsLike:
		spec = corpus.CCNewsLike(scale)
	default:
		panic("boss: unknown synthetic corpus kind")
	}
	c := corpus.Generate(spec)
	return &Index{idx: index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid})}
}

// CommonTerm returns the term at the given document-frequency rank of a
// synthetic index ("t0" is the most common). It panics on user-built
// indexes where ranks are not defined.
func (ix *Index) CommonTerm(rank int) string {
	term := fmt.Sprintf("t%d", rank)
	if ix.idx.List(term) == nil {
		panic(fmt.Sprintf("boss: no term at rank %d (synthetic indexes only)", rank))
	}
	return term
}

// ShardedIndex is the paper's pooled-memory deployment (Figure 1(b)): the
// collection partitioned into docID-interval shards, one per memory node,
// each with its own simulated BOSS device. Queries fan out to every node
// and the per-node top-k lists are merged; because shards score with
// collection-global statistics, results are identical to a single index's.
type ShardedIndex struct {
	cluster *pool.Cluster
	names   []string
}

// Shard builds a sharded deployment of a synthetic corpus over the given
// number of memory nodes. An unknown corpus kind or an invalid shard
// count (nodes <= 0, or more nodes than documents) returns an error.
func Shard(kind SyntheticKind, scale float64, nodes int) (*ShardedIndex, error) {
	var spec corpus.Spec
	switch kind {
	case ClueWebLike:
		spec = corpus.ClueWebLike(scale)
	case CCNewsLike:
		spec = corpus.CCNewsLike(scale)
	default:
		return nil, fmt.Errorf("boss: unknown synthetic corpus kind %d", kind)
	}
	c := corpus.Generate(spec)
	cl, err := pool.NewCluster(pool.DefaultConfig(), c, nodes)
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{cluster: cl}, nil
}

// Nodes reports how many memory nodes hold shards.
func (s *ShardedIndex) Nodes() int { return s.cluster.Shards() }

// CacheHitRate reports the fraction of block fetches the cluster served
// from its cross-query decoded-block cache.
func (s *ShardedIndex) CacheHitRate() float64 { return s.cluster.CacheStats().HitRate() }

// Search fans the query out to every node and merges the results. The
// returned stats aggregate all nodes' work; HostBytes is the total result
// traffic over the shared interconnect (per-node top-k lists).
func (s *ShardedIndex) Search(expr string, k int) ([]Hit, *SimStats, error) {
	res, err := s.cluster.Search(expr, k)
	if err != nil {
		return nil, nil, err
	}
	agg := perf.NewMetrics()
	for _, m := range res.PerShard {
		if m != nil {
			agg.Merge(m)
		}
	}
	hits := make([]Hit, len(res.TopK))
	for i, e := range res.TopK {
		hits[i] = Hit{Doc: fmt.Sprintf("doc%d", e.DocID), DocID: e.DocID, Score: e.Score}
	}
	return hits, simStats(agg, mem.SCM(), 8), nil
}

// SearchBatch pipelines many queries across the pooled-memory cluster: each
// host worker owns one in-flight query and sweeps it across the nodes, so
// different queries occupy different nodes concurrently. Items preserve
// input order and match Search query for query.
func (s *ShardedIndex) SearchBatch(exprs []string, k int) []BatchItem {
	br := s.cluster.SearchBatch(exprs, k)
	items := make([]BatchItem, len(exprs))
	for i := range exprs {
		if err := br.Errs[i]; err != nil {
			items[i].Err = err
			continue
		}
		res := br.Results[i]
		agg := perf.NewMetrics()
		for _, m := range res.PerShard {
			if m != nil {
				agg.Merge(m)
			}
		}
		items[i].Hits = make([]Hit, len(res.TopK))
		for j, e := range res.TopK {
			items[i].Hits[j] = Hit{Doc: fmt.Sprintf("doc%d", e.DocID), DocID: e.DocID, Score: e.Score}
		}
		items[i].Stats = simStats(agg, mem.SCM(), 8)
	}
	return items
}

// FaultConfig describes deterministic fault injection across a sharded
// deployment: every probabilistic decision derives from Seed, so a run
// is exactly reproducible. The zero value injects nothing.
type FaultConfig struct {
	// Seed drives every fault draw.
	Seed int64
	// TransientRate is the per-access probability of a retryable read
	// error in [0, 1).
	TransientRate float64
	// UncorrectableRate is the per-access probability of a permanent
	// media error in [0, 1).
	UncorrectableRate float64
	// DeadNodes lists memory nodes that never answer.
	DeadNodes []int
}

// InjectFaults applies a fault configuration to the deployment's memory
// nodes (the zero value restores pristine devices). Setup-time only: not
// safe concurrently with searches.
func (s *ShardedIndex) InjectFaults(fc FaultConfig) {
	s.cluster.SetFaultPlan(&mem.FaultPlan{
		Seed:              fc.Seed,
		TransientRate:     fc.TransientRate,
		UncorrectableRate: fc.UncorrectableRate,
		DeadDevices:       fc.DeadNodes,
	})
}

// ShardedResult is a resilient sharded query's outcome: the merged hits,
// aggregate statistics over the surviving nodes, and a bitmask of nodes
// whose shard results are missing (zero = complete).
type ShardedResult struct {
	Hits     []Hit
	Stats    *SimStats
	Degraded uint64
}

// SearchCtx is Search with deadlines, bounded retry, per-node circuit
// breaking, and graceful degradation: when a node fails permanently its
// shard is dropped from the merge and flagged in Degraded rather than
// failing the query. The error is non-nil only when the context dies,
// the query is invalid, or every node fails.
func (s *ShardedIndex) SearchCtx(ctx context.Context, expr string, k int) (*ShardedResult, error) {
	res, err := s.cluster.SearchCtx(ctx, expr, k)
	if err != nil {
		return nil, err
	}
	agg := perf.NewMetrics()
	for _, m := range res.PerShard {
		if m != nil {
			agg.Merge(m)
		}
	}
	out := &ShardedResult{
		Hits:     make([]Hit, len(res.TopK)),
		Stats:    simStats(agg, mem.SCM(), 8),
		Degraded: res.Degraded,
	}
	for i, e := range res.TopK {
		out.Hits[i] = Hit{Doc: fmt.Sprintf("doc%d", e.DocID), DocID: e.DocID, Score: e.Score}
	}
	return out, nil
}

// SearchBatchCtx is SearchBatch with per-query resilience: node failures
// degrade individual results (see BatchItem.Degraded) instead of
// failing them, and cancelling the context fails the remaining queries
// promptly.
func (s *ShardedIndex) SearchBatchCtx(ctx context.Context, exprs []string, k int) []BatchItem {
	br := s.cluster.SearchBatchCtx(ctx, exprs, k)
	items := make([]BatchItem, len(exprs))
	for i := range exprs {
		if err := br.Errs[i]; err != nil {
			items[i].Err = err
			continue
		}
		res := br.Results[i]
		agg := perf.NewMetrics()
		for _, m := range res.PerShard {
			if m != nil {
				agg.Merge(m)
			}
		}
		items[i].Degraded = res.Degraded
		items[i].Hits = make([]Hit, len(res.TopK))
		for j, e := range res.TopK {
			items[i].Hits[j] = Hit{Doc: fmt.Sprintf("doc%d", e.DocID), DocID: e.DocID, Score: e.Score}
		}
		items[i].Stats = simStats(agg, mem.SCM(), 8)
	}
	return items
}
