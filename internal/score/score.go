// Package score implements Okapi BM25 scoring as used by BOSS: a float64
// reference implementation, the per-document precomputation the paper stores
// as index metadata (so that a term score costs one divide, one multiply and
// one add at query time), and the Q16.16 fixed-point arithmetic the hardware
// scoring module uses.
package score

import "math"

// Params holds the BM25 free parameters.
type Params struct {
	K1 float64 // term-frequency saturation, usually in [1.2, 2.0]
	B  float64 // length normalization, usually 0.75
}

// DefaultParams returns the parameters used throughout the paper's
// evaluation (k1 = 1.2, b = 0.75).
func DefaultParams() Params { return Params{K1: 1.2, B: 0.75} }

// IDF computes the BM25 inverse document frequency of a term appearing in n
// of N documents: ln((N - n + 0.5)/(n + 0.5) + 1).
func IDF(totalDocs, docFreq int) float64 {
	n := float64(docFreq)
	N := float64(totalDocs)
	return math.Log((N-n+0.5)/(n+0.5) + 1)
}

// DocNorm computes the per-document invariant sub-expression
// k1 * (1 - b + b*|D|/avgdl). BOSS precomputes this at indexing time and
// stores it as 4 bytes of per-document metadata.
func (p Params) DocNorm(docLen uint32, avgDocLen float64) float64 {
	return p.K1 * (1 - p.B + p.B*float64(docLen)/avgDocLen)
}

// TermScore computes one term's BM25 contribution from the precomputed
// parts: idf * tf*(k1+1) / (tf + norm). This is the paper's 3-operation
// runtime form.
func (p Params) TermScore(idf float64, tf uint32, norm float64) float64 {
	f := float64(tf)
	return idf * (f * (p.K1 + 1)) / (f + norm)
}

// MaxTermScore computes the largest possible contribution of a term for any
// document: the limit of TermScore as tf grows with the smallest norm. Used
// as a conservative upper bound when a true per-list maximum is not yet
// known.
func (p Params) MaxTermScore(idf float64) float64 {
	return idf * (p.K1 + 1)
}

// Fixed is a Q16.16 signed fixed-point value, the representation used by
// BOSS's hardware scoring and top-k modules. BM25 scores for realistic
// corpora stay well below 2^15, so Q16.16 has ample headroom.
type Fixed int32

// One is the fixed-point representation of 1.0.
const One Fixed = 1 << 16

// ToFixed converts a float64 to Q16.16, rounding to nearest.
func ToFixed(f float64) Fixed {
	return Fixed(math.Round(f * 65536))
}

// Float converts a Q16.16 value back to float64.
func (x Fixed) Float() float64 { return float64(x) / 65536 }

// Mul multiplies two Q16.16 values, saturating on overflow.
func (x Fixed) Mul(y Fixed) Fixed {
	p := (int64(x) * int64(y)) >> 16
	if p > math.MaxInt32 {
		return Fixed(math.MaxInt32)
	}
	if p < math.MinInt32 {
		return Fixed(math.MinInt32)
	}
	return Fixed(p)
}

// Div divides x by y in Q16.16. Division by zero or quotient overflow
// saturates, mirroring a hardware divider's saturation behavior.
func (x Fixed) Div(y Fixed) Fixed {
	if y == 0 {
		return Fixed(math.MaxInt32)
	}
	q := (int64(x) << 16) / int64(y)
	if q > math.MaxInt32 {
		return Fixed(math.MaxInt32)
	}
	if q < math.MinInt32 {
		return Fixed(math.MinInt32)
	}
	return Fixed(q)
}

// FixedTermScore computes a term score entirely in Q16.16, as the hardware
// scoring module does: one divide, one multiply (plus the constant-folded
// tf*(k1+1) term), matching TermScore to within fixed-point rounding.
func (p Params) FixedTermScore(idf Fixed, tf uint32, norm Fixed) Fixed {
	f := Fixed(tf) * One // exact: tf is a small integer
	num := f.Mul(ToFixed(p.K1 + 1))
	den := f + norm
	return idf.Mul(num.Div(den))
}

// Impact quantization (the Q7 "sparse-dot" family). Each posting list
// quantizes its term scores onto an 8-bit grid scaled to the list's own
// maximum: code = round(s * 255 / listMax). The dequantization step
// listMax/255 is stored once per list as a Q16.16 value, so reading a
// posting's impact at query time is a single integer multiply — no
// per-posting float math, exactly as an impact-ordered accelerator would
// read precomputed quantized weights from the payload.

// ImpactStep returns the per-list dequantization step listMax/255 in
// Q16.16. Lists with any positive score get a positive step (the step is
// clamped up to the smallest representable increment), so a stored code
// of 0 is unambiguous: it only ever means "impact quantized to zero".
func ImpactStep(listMax float64) Fixed {
	if listMax <= 0 {
		return 0
	}
	step := ToFixed(listMax / 255)
	if step == 0 {
		step = 1
	}
	return step
}

// QuantizeImpact maps a term score onto the list's 8-bit impact grid,
// rounding to nearest and clamping to [0, 255].
func QuantizeImpact(s, listMax float64) uint8 {
	if listMax <= 0 || s <= 0 {
		return 0
	}
	q := math.Round(s * 255 / listMax)
	if q > 255 {
		return 255
	}
	return uint8(q)
}

// Impact dequantizes an 8-bit impact code: code * step, computed in
// 64-bit and saturated like the other Q16.16 operations. With step ≤
// MaxInt32 and code ≤ 255 the product fits easily, so saturation only
// guards corrupted inputs.
func Impact(code uint8, step Fixed) Fixed {
	p := int64(code) * int64(step)
	if p > math.MaxInt32 {
		return Fixed(math.MaxInt32)
	}
	return Fixed(p)
}
