// Package score implements Okapi BM25 scoring as used by BOSS: a float64
// reference implementation, the per-document precomputation the paper stores
// as index metadata (so that a term score costs one divide, one multiply and
// one add at query time), and the Q16.16 fixed-point arithmetic the hardware
// scoring module uses.
package score

import "math"

// Params holds the BM25 free parameters.
type Params struct {
	K1 float64 // term-frequency saturation, usually in [1.2, 2.0]
	B  float64 // length normalization, usually 0.75
}

// DefaultParams returns the parameters used throughout the paper's
// evaluation (k1 = 1.2, b = 0.75).
func DefaultParams() Params { return Params{K1: 1.2, B: 0.75} }

// IDF computes the BM25 inverse document frequency of a term appearing in n
// of N documents: ln((N - n + 0.5)/(n + 0.5) + 1).
func IDF(totalDocs, docFreq int) float64 {
	n := float64(docFreq)
	N := float64(totalDocs)
	return math.Log((N-n+0.5)/(n+0.5) + 1)
}

// DocNorm computes the per-document invariant sub-expression
// k1 * (1 - b + b*|D|/avgdl). BOSS precomputes this at indexing time and
// stores it as 4 bytes of per-document metadata.
func (p Params) DocNorm(docLen uint32, avgDocLen float64) float64 {
	return p.K1 * (1 - p.B + p.B*float64(docLen)/avgDocLen)
}

// TermScore computes one term's BM25 contribution from the precomputed
// parts: idf * tf*(k1+1) / (tf + norm). This is the paper's 3-operation
// runtime form.
func (p Params) TermScore(idf float64, tf uint32, norm float64) float64 {
	f := float64(tf)
	return idf * (f * (p.K1 + 1)) / (f + norm)
}

// MaxTermScore computes the largest possible contribution of a term for any
// document: the limit of TermScore as tf grows with the smallest norm. Used
// as a conservative upper bound when a true per-list maximum is not yet
// known.
func (p Params) MaxTermScore(idf float64) float64 {
	return idf * (p.K1 + 1)
}

// Fixed is a Q16.16 signed fixed-point value, the representation used by
// BOSS's hardware scoring and top-k modules. BM25 scores for realistic
// corpora stay well below 2^15, so Q16.16 has ample headroom.
type Fixed int32

// One is the fixed-point representation of 1.0.
const One Fixed = 1 << 16

// ToFixed converts a float64 to Q16.16, rounding to nearest.
func ToFixed(f float64) Fixed {
	return Fixed(math.Round(f * 65536))
}

// Float converts a Q16.16 value back to float64.
func (x Fixed) Float() float64 { return float64(x) / 65536 }

// Mul multiplies two Q16.16 values, saturating on overflow.
func (x Fixed) Mul(y Fixed) Fixed {
	p := (int64(x) * int64(y)) >> 16
	if p > math.MaxInt32 {
		return Fixed(math.MaxInt32)
	}
	if p < math.MinInt32 {
		return Fixed(math.MinInt32)
	}
	return Fixed(p)
}

// Div divides x by y in Q16.16. Division by zero or quotient overflow
// saturates, mirroring a hardware divider's saturation behavior.
func (x Fixed) Div(y Fixed) Fixed {
	if y == 0 {
		return Fixed(math.MaxInt32)
	}
	q := (int64(x) << 16) / int64(y)
	if q > math.MaxInt32 {
		return Fixed(math.MaxInt32)
	}
	if q < math.MinInt32 {
		return Fixed(math.MinInt32)
	}
	return Fixed(q)
}

// FixedTermScore computes a term score entirely in Q16.16, as the hardware
// scoring module does: one divide, one multiply (plus the constant-folded
// tf*(k1+1) term), matching TermScore to within fixed-point rounding.
func (p Params) FixedTermScore(idf Fixed, tf uint32, norm Fixed) Fixed {
	f := Fixed(tf) * One // exact: tf is a small integer
	num := f.Mul(ToFixed(p.K1 + 1))
	den := f + norm
	return idf.Mul(num.Div(den))
}
