package score

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIDF(t *testing.T) {
	// A term in half the documents: ln((N/2+0.5)/(N/2+0.5)+1) = ln 2.
	got := IDF(1000, 500)
	if math.Abs(got-math.Log(2)) > 1e-9 {
		t.Fatalf("IDF(1000,500) = %v, want ln 2", got)
	}
	// Rarer terms have higher IDF.
	if IDF(1000, 1) <= IDF(1000, 100) {
		t.Fatal("IDF must decrease with document frequency")
	}
	// IDF is always positive with the +1 smoothing.
	if IDF(10, 10) <= 0 {
		t.Fatal("smoothed IDF must stay positive even for ubiquitous terms")
	}
}

func TestDocNorm(t *testing.T) {
	p := DefaultParams()
	// An average-length document: norm = k1 exactly.
	if got := p.DocNorm(100, 100); math.Abs(got-p.K1) > 1e-12 {
		t.Fatalf("norm of avg-length doc = %v, want k1=%v", got, p.K1)
	}
	// Longer documents get a larger norm (more penalty).
	if p.DocNorm(200, 100) <= p.DocNorm(50, 100) {
		t.Fatal("norm must grow with document length")
	}
}

func TestTermScoreMatchesClosedForm(t *testing.T) {
	p := DefaultParams()
	N, df := 100000, 250
	docLen, avgdl := uint32(120), 95.0
	tf := uint32(3)

	idf := IDF(N, df)
	norm := p.DocNorm(docLen, avgdl)
	got := p.TermScore(idf, tf, norm)

	f := float64(tf)
	want := idf * (f * (p.K1 + 1)) / (f + p.K1*(1-p.B+p.B*float64(docLen)/avgdl))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TermScore = %v, want %v", got, want)
	}
}

func TestTermScoreSaturatesWithTF(t *testing.T) {
	p := DefaultParams()
	idf := 2.0
	norm := p.DocNorm(100, 100)
	prev := 0.0
	for tf := uint32(1); tf <= 64; tf *= 2 {
		s := p.TermScore(idf, tf, norm)
		if s <= prev {
			t.Fatalf("score must increase with tf (tf=%d)", tf)
		}
		prev = s
	}
	if prev >= p.MaxTermScore(idf) {
		t.Fatalf("score %v must stay below the saturation bound %v", prev, p.MaxTermScore(idf))
	}
}

func TestMaxTermScoreIsUpperBound(t *testing.T) {
	p := DefaultParams()
	f := func(tfSeed uint8, lenSeed uint16) bool {
		tf := uint32(tfSeed) + 1
		docLen := uint32(lenSeed) + 1
		idf := 1.5
		norm := p.DocNorm(docLen, 100)
		return p.TermScore(idf, tf, norm) <= p.MaxTermScore(idf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedConversions(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, 3.14159, 123.456, -42.25}
	for _, f := range cases {
		x := ToFixed(f)
		if math.Abs(x.Float()-f) > 1.0/65536 {
			t.Errorf("round trip of %v = %v", f, x.Float())
		}
	}
	if One.Float() != 1.0 {
		t.Fatal("One != 1.0")
	}
}

func TestFixedMulDiv(t *testing.T) {
	a, b := ToFixed(3.5), ToFixed(2.0)
	if got := a.Mul(b).Float(); math.Abs(got-7.0) > 1e-3 {
		t.Fatalf("3.5*2 = %v", got)
	}
	if got := a.Div(b).Float(); math.Abs(got-1.75) > 1e-3 {
		t.Fatalf("3.5/2 = %v", got)
	}
	// Division by zero saturates rather than panicking (hardware behavior).
	if got := a.Div(0); got != Fixed(math.MaxInt32) {
		t.Fatalf("div by zero = %v, want saturation", got)
	}
}

func TestFixedSaturation(t *testing.T) {
	big := ToFixed(30000)
	if got := big.Div(Fixed(1)); got != Fixed(math.MaxInt32) {
		t.Fatalf("overflowing quotient = %v, want positive saturation", got)
	}
	if got := big.Div(Fixed(-1)); got != Fixed(math.MinInt32) {
		t.Fatalf("overflowing negative quotient = %v, want negative saturation", got)
	}
	if got := big.Mul(big); got != Fixed(math.MaxInt32) {
		t.Fatalf("overflowing product = %v, want positive saturation", got)
	}
	if got := big.Mul(-big); got != Fixed(math.MinInt32) {
		t.Fatalf("overflowing negative product = %v, want negative saturation", got)
	}
}

func TestFixedMulDivProperty(t *testing.T) {
	f := func(aSeed, bSeed int16) bool {
		a := Fixed(aSeed) * 97
		b := Fixed(bSeed)
		// Keep |b| large enough that the quotient stays in range; tiny
		// divisors saturate (covered by TestFixedSaturation).
		if b > -256 && b < 256 {
			return true
		}
		// (a/b)*b should be within rounding distance of a.
		got := a.Div(b).Mul(b)
		diff := int64(got) - int64(a)
		if diff < 0 {
			diff = -diff
		}
		// Each operation can lose up to 1 ulp scaled by |b|.
		bound := int64(b)
		if bound < 0 {
			bound = -bound
		}
		return diff <= bound+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedTermScoreMatchesFloat(t *testing.T) {
	p := DefaultParams()
	for _, tc := range []struct {
		idf  float64
		tf   uint32
		norm float64
	}{
		{2.5, 1, 1.2}, {0.3, 10, 0.9}, {8.0, 3, 2.4}, {14.0, 64, 0.31},
	} {
		want := p.TermScore(tc.idf, tc.tf, tc.norm)
		got := p.FixedTermScore(ToFixed(tc.idf), tc.tf, ToFixed(tc.norm)).Float()
		if math.Abs(got-want) > 0.01*math.Max(want, 1) {
			t.Errorf("fixed term score (idf=%v tf=%d norm=%v) = %v, want %v",
				tc.idf, tc.tf, tc.norm, got, want)
		}
	}
}

func TestFixedTermScoreMonotonicInTF(t *testing.T) {
	p := DefaultParams()
	idf := ToFixed(3.0)
	norm := ToFixed(1.1)
	prev := Fixed(-1)
	for tf := uint32(1); tf < 40; tf++ {
		s := p.FixedTermScore(idf, tf, norm)
		if s < prev {
			t.Fatalf("fixed score decreased at tf=%d", tf)
		}
		prev = s
	}
}
