// Package decomp models BOSS's programmable decompression module
// (Section IV-C/IV-D): a four-stage datapath where stage 1 extracts payload
// tokens from the serialized bitstream, stage 2 is a programmable netlist of
// primitive units (shift/mask/add/mux wired by a configuration file in the
// style of the paper's Figure 8), stage 3 patches exception values, and
// stage 4 applies delta decoding. The module decodes every scheme in
// internal/compress bit-exactly, and counts datapath cycles for the timing
// model.
package decomp

import (
	"fmt"
	"strconv"
	"strings"
)

// opKind is a stage-2 primitive unit.
type opKind int

const (
	opNone opKind = iota // plain signal copy
	opSHR
	opSHL
	opAND
	opOR
	opXOR
	opADD
	opSUB
	opMUX
)

var opNames = map[string]opKind{
	"SHR": opSHR, "SHL": opSHL, "AND": opAND, "OR": opOR,
	"XOR": opXOR, "ADD": opADD, "SUB": opSUB, "MUX": opMUX,
}

// operand is a reference to a signal, the Input port, a register, or a
// literal.
type operand struct {
	literal uint64
	name    string // empty for literals; "Input" for the stage input port
	isLit   bool
}

// assignment is one `dest := OP(a, b)` statement.
type assignment struct {
	dest string
	op   opKind
	args []operand
}

// register is declared with RegInit(name, init, resetSignal).
type register struct {
	name  string
	init  uint64
	reset string // signal that, when nonzero, resets the register
}

// Netlist is a parsed stage-2 program: an ordered list of combinational
// assignments plus register declarations. The special destinations "Output"
// and "Output.valid" drive the stage's output port, and assigning to a
// register name sets its next value.
type Netlist struct {
	regs    []register
	assigns []assignment
}

// netState is the mutable evaluation state of the reference interpreter.
// The decode hot path does not use it: NewModule compiles the netlist to a
// slot-indexed program (compile.go) and the interpreter survives as the
// specification that FuzzCompiledNetlist checks the compiler against.
type netState struct {
	nl       *Netlist
	regVals  map[string]uint64
	wires    map[string]uint64
	nextReg  map[string]uint64
	regNames map[string]bool
}

func newNetState(nl *Netlist) *netState {
	s := &netState{
		nl:       nl,
		regVals:  make(map[string]uint64, len(nl.regs)),
		wires:    make(map[string]uint64),
		nextReg:  make(map[string]uint64, len(nl.regs)),
		regNames: make(map[string]bool, len(nl.regs)),
	}
	for _, r := range nl.regs {
		s.regNames[r.name] = true
	}
	s.reset()
	return s
}

// reset restores every register to its declared init value.
func (s *netState) reset() {
	for _, r := range s.nl.regs {
		s.regVals[r.name] = r.init
	}
}

func (s *netState) isReg(name string) bool { return s.regNames[name] }

func (s *netState) value(o operand, input uint64) (uint64, error) {
	if o.isLit {
		return o.literal, nil
	}
	if o.name == "Input" {
		return input, nil
	}
	if s.isReg(o.name) {
		return s.regVals[o.name], nil
	}
	v, ok := s.wires[o.name]
	if !ok {
		return 0, fmt.Errorf("decomp: wire %q read before assignment", o.name)
	}
	return v, nil
}

// step evaluates one cycle of the netlist against input, returning the
// output value and whether it is valid this cycle.
func (s *netState) step(input uint64) (out uint64, valid bool, err error) {
	clear(s.wires)
	nextReg := s.nextReg
	clear(nextReg)
	for _, a := range s.nl.assigns {
		var vals [3]uint64
		for i, arg := range a.args {
			vals[i], err = s.value(arg, input)
			if err != nil {
				return 0, false, err
			}
		}
		var v uint64
		switch a.op {
		case opNone:
			v = vals[0]
		case opSHR:
			v = vals[0] >> (vals[1] & 63)
		case opSHL:
			v = vals[0] << (vals[1] & 63)
		case opAND:
			v = vals[0] & vals[1]
		case opOR:
			v = vals[0] | vals[1]
		case opXOR:
			v = vals[0] ^ vals[1]
		case opADD:
			v = vals[0] + vals[1]
		case opSUB:
			v = vals[0] - vals[1]
		case opMUX:
			if vals[0] != 0 {
				v = vals[1]
			} else {
				v = vals[2]
			}
		}
		if s.isReg(a.dest) {
			nextReg[a.dest] = v
		} else {
			s.wires[a.dest] = v
		}
	}
	// Latch registers: reset wins over the assigned next value.
	for _, r := range s.nl.regs {
		resetVal, ok := s.wires[r.reset]
		if ok && resetVal != 0 {
			s.regVals[r.name] = r.init
			continue
		}
		if nv, ok := nextReg[r.name]; ok {
			s.regVals[r.name] = nv
		}
	}
	out = s.wires["Output"]
	valid = s.wires["Output.valid"] != 0
	return out, valid, nil
}

// Run feeds each token through the netlist in order, collecting the values
// emitted on Output while Output.valid is high. It returns at most max
// values (max < 0 means unlimited) along with the number of cycles
// consumed.
func (nl *Netlist) Run(tokens []uint64, max int) (values []uint64, cycles int, err error) {
	return nl.runInto(newNetState(nl), nil, tokens, max)
}

// runInto is Run with caller-owned scratch: s is reset and reused, and
// values accumulate into dst.
func (nl *Netlist) runInto(s *netState, dst []uint64, tokens []uint64, max int) (values []uint64, cycles int, err error) {
	s.reset()
	values = dst
	for _, tok := range tokens {
		cycles++
		out, valid, err := s.step(tok)
		if err != nil {
			return nil, cycles, err
		}
		if valid {
			values = append(values, out)
			if max >= 0 && len(values) >= max {
				break
			}
		}
	}
	return values, cycles, nil
}

// --- netlist text parsing ---

// parseOperand parses a literal (decimal or 0x hex) or signal name.
func parseOperand(s string) (operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return operand{}, fmt.Errorf("decomp: empty operand")
	}
	if c := s[0]; c >= '0' && c <= '9' {
		v, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			return operand{}, fmt.Errorf("decomp: bad literal %q: %w", s, err)
		}
		return operand{isLit: true, literal: v}, nil
	}
	return operand{name: s}, nil
}

// parseAssignment parses `dest := expr` where expr is `OP(a, b[, c])`, a
// signal name, or a literal.
func parseAssignment(line string) (assignment, error) {
	parts := strings.SplitN(line, ":=", 2)
	if len(parts) != 2 {
		return assignment{}, fmt.Errorf("decomp: expected ':=' in %q", line)
	}
	dest := strings.TrimSpace(parts[0])
	expr := strings.TrimSpace(parts[1])
	if dest == "" {
		return assignment{}, fmt.Errorf("decomp: empty destination in %q", line)
	}
	if open := strings.IndexByte(expr, '('); open >= 0 {
		opName := strings.TrimSpace(expr[:open])
		op, ok := opNames[opName]
		if !ok {
			return assignment{}, fmt.Errorf("decomp: unknown primitive %q", opName)
		}
		if !strings.HasSuffix(expr, ")") {
			return assignment{}, fmt.Errorf("decomp: missing ')' in %q", line)
		}
		argText := expr[open+1 : len(expr)-1]
		rawArgs := strings.Split(argText, ",")
		wantArgs := 2
		if op == opMUX {
			wantArgs = 3
		}
		if len(rawArgs) != wantArgs {
			return assignment{}, fmt.Errorf("decomp: %s takes %d args, got %d in %q", opName, wantArgs, len(rawArgs), line)
		}
		a := assignment{dest: dest, op: op}
		for _, ra := range rawArgs {
			arg, err := parseOperand(ra)
			if err != nil {
				return assignment{}, err
			}
			a.args = append(a.args, arg)
		}
		return a, nil
	}
	arg, err := parseOperand(expr)
	if err != nil {
		return assignment{}, err
	}
	return assignment{dest: dest, op: opNone, args: []operand{arg}}, nil
}

// parseRegInit parses `RegInit( Name, init, resetSignal )`.
func parseRegInit(line string) (register, error) {
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(line), ")") {
		return register{}, fmt.Errorf("decomp: malformed RegInit %q", line)
	}
	inner := strings.TrimSpace(line)
	inner = inner[open+1 : len(inner)-1]
	parts := strings.Split(inner, ",")
	if len(parts) != 3 {
		return register{}, fmt.Errorf("decomp: RegInit takes 3 args in %q", line)
	}
	init, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 0, 64)
	if err != nil {
		return register{}, fmt.Errorf("decomp: bad RegInit init in %q: %w", line, err)
	}
	return register{
		name:  strings.TrimSpace(parts[0]),
		init:  init,
		reset: strings.TrimSpace(parts[2]),
	}, nil
}
