package decomp

import (
	"fmt"
	"strconv"
	"strings"

	"boss/internal/compress"
)

// ExtractorKind selects which stage-1 extractor unit a configuration
// enables.
type ExtractorKind int

// Stage-1 extractor units (Figure 6's "Extractor[0..2]").
const (
	ExtractFixedWidth ExtractorKind = iota // bit fields at a header-encoded width
	ExtractByte                            // one byte per cycle (VariableByte)
	ExtractSelector                        // selector-tagged words (Simple16/Simple8b)
)

// Config is a parsed decompression-module configuration: which extractor
// stage 1 uses and how, the stage-2 netlist, and the stage-3/4 switches.
type Config struct {
	// Extractor selects the stage-1 unit.
	Extractor ExtractorKind
	// HeaderLength is the bit length of the per-block width header consumed
	// by the fixed-width extractor (8 for the BP layout).
	HeaderLength int
	// PFDHeader enables PForDelta framing in the fixed-width extractor:
	// the (b, exception count, exception positions) header is parsed and
	// exceptions are forwarded to stage 3.
	PFDHeader bool
	// SelectorTable names the field-width table for the selector extractor
	// ("s16" or "s8b").
	SelectorTable string
	// Netlist is the stage-2 program.
	Netlist *Netlist
	// UseExceptions enables stage 3 (exception patching).
	UseExceptions bool
	// UseDelta enables stage 4 (delta accumulation) by default.
	UseDelta bool
}

// ParseConfig parses a configuration file in the paper's Figure 8 syntax:
// `//`-comments, `Extractor[i].key = value` extractor settings,
// `RegInit(...)` and `name := OP(...)` netlist statements, and scalar
// parameter assignments (`UseDelta = 1`, chained `A = B = 0` accepted).
func ParseConfig(src string) (*Config, error) {
	cfg := &Config{Netlist: &Netlist{}}
	extractorUse := map[int]bool{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		err := cfg.parseLine(line, extractorUse)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	// Resolve which extractor is in use.
	n := 0
	for k, used := range extractorUse {
		if used {
			cfg.Extractor = ExtractorKind(k)
			n++
		}
	}
	if n != 1 {
		return nil, fmt.Errorf("decomp: exactly one extractor must be enabled, got %d", n)
	}
	if cfg.Extractor == ExtractSelector && cfg.SelectorTable == "" {
		return nil, fmt.Errorf("decomp: selector extractor requires a table")
	}
	if len(cfg.Netlist.assigns) == 0 {
		return nil, fmt.Errorf("decomp: stage 2 netlist is empty")
	}
	return cfg, nil
}

func (cfg *Config) parseLine(line string, extractorUse map[int]bool) error {
	switch {
	case strings.HasPrefix(line, "RegInit"):
		reg, err := parseRegInit(line)
		if err != nil {
			return err
		}
		cfg.Netlist.regs = append(cfg.Netlist.regs, reg)
		return nil
	case strings.Contains(line, ":="):
		a, err := parseAssignment(line)
		if err != nil {
			return err
		}
		cfg.Netlist.assigns = append(cfg.Netlist.assigns, a)
		return nil
	case strings.HasPrefix(line, "Extractor["):
		return cfg.parseExtractorLine(line, extractorUse)
	case strings.Contains(line, "="):
		return cfg.parseScalarLine(line)
	default:
		return fmt.Errorf("decomp: cannot parse %q", line)
	}
}

func (cfg *Config) parseExtractorLine(line string, extractorUse map[int]bool) error {
	// Extractor[i].key = value
	open := strings.IndexByte(line, '[')
	closeB := strings.IndexByte(line, ']')
	if open < 0 || closeB < open+1 || closeB+1 >= len(line) || line[closeB+1] != '.' {
		return fmt.Errorf("decomp: malformed extractor line %q", line)
	}
	idx, err := strconv.Atoi(line[open+1 : closeB])
	if err != nil || idx < 0 || idx > 2 {
		return fmt.Errorf("decomp: bad extractor index in %q", line)
	}
	kv := strings.SplitN(line[closeB+2:], "=", 2)
	if len(kv) != 2 {
		return fmt.Errorf("decomp: expected key = value in %q", line)
	}
	key := strings.TrimSpace(kv[0])
	val := strings.TrimSpace(kv[1])
	switch key {
	case "use":
		b, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("decomp: bad use value %q", val)
		}
		extractorUse[idx] = b != 0
	case "headerLength":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("decomp: bad headerLength %q", val)
		}
		cfg.HeaderLength = n
	case "pfdHeader":
		cfg.PFDHeader = val != "0"
	case "table":
		cfg.SelectorTable = val
	default:
		return fmt.Errorf("decomp: unknown extractor key %q", key)
	}
	return nil
}

func (cfg *Config) parseScalarLine(line string) error {
	// Possibly chained: A = B = 0. The final element is the value; all
	// earlier elements are keys.
	parts := strings.Split(line, "=")
	valText := strings.TrimSpace(parts[len(parts)-1])
	val, err := strconv.ParseInt(valText, 0, 64)
	if err != nil {
		return fmt.Errorf("decomp: bad scalar value %q", valText)
	}
	for _, rawKey := range parts[:len(parts)-1] {
		key := strings.TrimSpace(rawKey)
		switch key {
		case "UseDelta":
			cfg.UseDelta = val != 0
		case "UseExceptions":
			cfg.UseExceptions = val != 0
		case "ExceptionValue", "ExceptionIndex":
			// The paper's VB example writes `ExceptionValue =
			// ExceptionIndex = 0` to disable stage 3.
			if val != 0 {
				cfg.UseExceptions = true
			}
		default:
			return fmt.Errorf("decomp: unknown parameter %q", key)
		}
	}
	return nil
}

// identityNetlist is the stage-2 program for schemes whose payloads need no
// per-token manipulation (extraction already yields final values).
const identityNetlist = `
Output := Input
Output.valid := 1
`

// ConfigText returns the canonical configuration-file text for a scheme, in
// the Figure 8 language. ParseConfig(ConfigText(s)) yields a module that
// decodes payloads produced by compress.ForScheme(s) bit-exactly.
func ConfigText(s compress.Scheme) string {
	switch s {
	case compress.BP:
		return `
// Stage 1: fixed bit-width fields behind a 1-byte width header
Extractor[0].use = 1
Extractor[1].use = 0
Extractor[2].use = 0
Extractor[0].headerLength = 8
// Stage 2: payloads are final values
` + identityNetlist + `
// Stage 3
ExceptionValue = ExceptionIndex = 0
// Stage 4
UseDelta = 1
`
	case compress.VB:
		// This is the paper's Figure 8 program.
		return `
// Stage 1: byte stream
Extractor[0].use = 0
Extractor[1].use = 1
Extractor[2].use = 0
Extractor[1].headerLength = 0
// Stage 2: accumulate 7-bit groups; MSB terminates a value
RegInit( Reg, 0, reset )
reset := SHR(Input, 0x7)
wire1 := AND(Input, 0x7F)
wire2 := SHL(Reg, 7)
wire3 := ADD(wire1, wire2)
Reg := wire3
Output := wire3
Output.valid := SHR(Input, 0x7)
// Stage 3
ExceptionValue = ExceptionIndex = 0
// Stage 4
UseDelta = 1
`
	case compress.PFD, compress.OptPFD:
		return `
// Stage 1: PForDelta framing (b, exception count, positions)
Extractor[0].use = 1
Extractor[1].use = 0
Extractor[2].use = 0
Extractor[0].pfdHeader = 1
// Stage 2: low bits are final values (exceptions patched in stage 3)
` + identityNetlist + `
// Stage 3: patch exception values at their recorded positions
UseExceptions = 1
// Stage 4
UseDelta = 1
`
	case compress.S16:
		return `
// Stage 1: 32-bit words with 4-bit mode selectors
Extractor[0].use = 0
Extractor[1].use = 0
Extractor[2].use = 1
Extractor[2].table = s16
// Stage 2
` + identityNetlist + `
// Stage 3
ExceptionValue = ExceptionIndex = 0
// Stage 4
UseDelta = 1
`
	case compress.S8b:
		return `
// Stage 1: 64-bit words with 4-bit selectors
Extractor[0].use = 0
Extractor[1].use = 0
Extractor[2].use = 1
Extractor[2].table = s8b
// Stage 2
` + identityNetlist + `
// Stage 3
ExceptionValue = ExceptionIndex = 0
// Stage 4
UseDelta = 1
`
	default:
		panic("decomp: no config for scheme " + s.String())
	}
}

// ConfigFor parses the canonical configuration for a scheme.
func ConfigFor(s compress.Scheme) *Config {
	cfg, err := ParseConfig(ConfigText(s))
	if err != nil {
		panic("decomp: built-in config failed to parse: " + err.Error())
	}
	return cfg
}
