package decomp

import (
	"math/rand"
	"reflect"
	"testing"

	"boss/internal/compress"
)

// diffNetlist runs the same tokens through the interpreter and the compiled
// program and fails on any divergence in values, cycles, or errors.
func diffNetlist(t *testing.T, nl *Netlist, tokens []uint64, max int) {
	t.Helper()
	iv, ic, ierr := nl.Run(tokens, max)
	p := compile(nl)
	cv, cc, cerr := p.run(newProgState(p), nil, tokens, max)
	if (ierr == nil) != (cerr == nil) {
		t.Fatalf("error divergence: interpreter=%v compiled=%v", ierr, cerr)
	}
	if ierr != nil {
		if ierr.Error() != cerr.Error() {
			t.Fatalf("error message divergence:\n interpreter: %v\n compiled:    %v", ierr, cerr)
		}
	} else if !reflect.DeepEqual(iv, cv) {
		t.Fatalf("value divergence:\n interpreter: %v\n compiled:    %v", iv, cv)
	}
	if ic != cc {
		t.Fatalf("cycle divergence: interpreter=%d compiled=%d", ic, cc)
	}
}

func TestCompiledMatchesInterpreterBuiltins(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, s := range compress.AllSchemes() {
		cfg := ConfigFor(s)
		for trial := 0; trial < 20; trial++ {
			tokens := make([]uint64, rng.Intn(64))
			for i := range tokens {
				tokens[i] = uint64(rng.Intn(256))
			}
			diffNetlist(t, cfg.Netlist, tokens, rng.Intn(10)-1)
		}
	}
}

func TestCompiledMatchesInterpreterCornerCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"undefined wire", `
Extractor[1].use = 1
Output := nonexistent
Output.valid := 1
`},
		{"wire read before later assignment", `
Extractor[1].use = 1
Output := late
late := AND(Input, 1)
Output.valid := 1
`},
		{"output driven as register", `
Extractor[1].use = 1
RegInit( Output, 7, never )
Output := Input
Output.valid := 1
`},
		{"duplicate register declaration", `
Extractor[1].use = 1
RegInit( R, 1, rst )
RegInit( R, 2, rst2 )
rst := AND(Input, 1)
rst2 := SHR(Input, 1)
R := ADD(R, Input)
Output := R
Output.valid := 1
`},
		{"register named Input shadowed by port", `
Extractor[1].use = 1
RegInit( Input, 5, never )
never := AND(Input, 0)
Output := Input
Output.valid := 1
`},
		{"reset names a register", `
Extractor[1].use = 1
RegInit( A, 3, B )
RegInit( B, 0, nothing )
nothing := AND(Input, 0)
A := ADD(A, Input)
B := Input
Output := A
Output.valid := 1
`},
		{"valid never driven", `
Extractor[1].use = 1
Output := Input
`},
		{"multiple writes same wire", `
Extractor[1].use = 1
w := AND(Input, 0xF)
w := SHL(w, 1)
Output := w
Output.valid := 1
`},
		{"mux with wire operands", `
Extractor[1].use = 1
cond := SHR(Input, 7)
low := AND(Input, 0x7F)
Output := MUX(cond, low, Input)
Output.valid := 1
`},
	}
	rng := rand.New(rand.NewSource(23))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := ParseConfig(tc.src)
			if err != nil {
				t.Fatalf("config does not parse: %v", err)
			}
			diffNetlist(t, cfg.Netlist, nil, -1)
			for trial := 0; trial < 10; trial++ {
				tokens := make([]uint64, 1+rng.Intn(32))
				for i := range tokens {
					tokens[i] = rng.Uint64() >> uint(rng.Intn(60))
				}
				diffNetlist(t, cfg.Netlist, tokens, rng.Intn(6)-1)
			}
		})
	}
}

func TestCompiledStaticErrorOnlyWithTokens(t *testing.T) {
	// The interpreter reports a read-before-assignment on the first
	// evaluated cycle; with no tokens there is no cycle and no error. The
	// compiled program must reproduce both sides.
	cfg, err := ParseConfig(`
Extractor[1].use = 1
Output := nonexistent
Output.valid := 1
`)
	if err != nil {
		t.Fatal(err)
	}
	p := compile(cfg.Netlist)
	if p.staticErr == nil {
		t.Fatal("compile did not flag the undefined wire")
	}
	if _, cycles, err := p.run(newProgState(p), nil, nil, -1); err != nil || cycles != 0 {
		t.Fatalf("empty input: err=%v cycles=%d, want nil/0", err, cycles)
	}
	if _, cycles, err := p.run(newProgState(p), nil, []uint64{1, 2, 3}, -1); err == nil || cycles != 1 {
		t.Fatalf("tokens: err=%v cycles=%d, want error at cycle 1", err, cycles)
	}
}

func TestCompiledRunBytesMatchesTokenRun(t *testing.T) {
	cfg := ConfigFor(compress.VB)
	p := compile(cfg.Netlist)
	codec := compress.ForScheme(compress.VB)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(64)
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = rng.Uint32() >> uint(rng.Intn(31))
		}
		payload := codec.Encode(nil, vals)
		tokens := make([]uint64, len(payload))
		for i, b := range payload {
			tokens[i] = uint64(b)
		}
		s := newProgState(p)
		tv, tc, terr := p.run(s, nil, tokens, n)
		bv, bc, berr := p.runBytes(s, nil, payload, n)
		if terr != nil || berr != nil {
			t.Fatalf("trial %d: errors %v / %v", trial, terr, berr)
		}
		if !reflect.DeepEqual(tv, bv) || tc != bc {
			t.Fatalf("trial %d: byte feed diverged from token feed", trial)
		}
	}
}

// TestCompiledRunIsAllocFree pins the zero-alloc property of the compiled
// steady state: decoding blocks through a configured module must not
// allocate once its scratch has warmed up.
func TestCompiledRunIsAllocFree(t *testing.T) {
	for _, s := range compress.AllSchemes() {
		codec := compress.ForScheme(s)
		vals := make([]uint32, 128)
		for i := range vals {
			vals[i] = uint32(i * 37 % 1024)
		}
		vals[9] = 1 << 24 // keep a PFD exception in play
		payload := codec.Encode(nil, vals)
		mod := NewModuleFor(s)
		dst := make([]uint32, 0, len(vals))
		// Warm the scratch.
		if _, _, _, err := mod.DecodeInto(dst, payload, len(vals), 0, true); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		avg := testing.AllocsPerRun(20, func() {
			if _, _, _, err := mod.DecodeInto(dst[:0], payload, len(vals), 0, true); err != nil {
				t.Fatalf("%s: %v", s, err)
			}
		})
		if avg != 0 {
			t.Errorf("%s: DecodeInto allocates %.1f times per block, want 0", s, avg)
		}
	}
}
