package decomp

import (
	"math/rand"
	"reflect"
	"testing"
)

// The paper claims a new decompression scheme can be supported purely by
// re-composing the module's primitive units (Section III-B). This file
// demonstrates that: "Nibble" is a base-8 variable-length code that is NOT
// among the built-in schemes — each byte carries two 4-bit groups, each
// group holding 3 payload bits plus a continuation bit — and the module
// decodes it with nothing but a configuration file.
//
// Encoding of one value: split into 3-bit groups, most significant first;
// each group is emitted as a nibble `cppp` where c=0 marks continuation and
// c=1 marks the final group. Nibbles are packed two per byte, high nibble
// first; the stream is nibble-aligned per block (padded with a trailing
// zero nibble if odd — the decoder stops after n values).

// encodeNibble encodes values into the custom format.
func encodeNibble(values []uint32) []byte {
	var nibbles []byte
	for _, v := range values {
		// Collect 3-bit groups, most significant first.
		var groups []byte
		for {
			groups = append([]byte{byte(v & 0x7)}, groups...)
			v >>= 3
			if v == 0 {
				break
			}
		}
		for i, g := range groups {
			if i == len(groups)-1 {
				g |= 0x8 // stop bit
			}
			nibbles = append(nibbles, g)
		}
	}
	if len(nibbles)%2 == 1 {
		nibbles = append(nibbles, 0)
	}
	out := make([]byte, len(nibbles)/2)
	for i := range out {
		out[i] = nibbles[2*i]<<4 | nibbles[2*i+1]
	}
	return out
}

// nibbleConfig decodes the format on the programmable module. Stage 1
// feeds bytes; stage 2 splits each byte into two nibbles with a phase
// register and accumulates 3-bit groups until a stop bit.
//
// Limitation of a byte-fed datapath: it sees one byte per cycle but must
// emit up to two values per byte (two stop-nibbles can share a byte). The
// encoder above never splits a value across... actually values span bytes
// freely, so the netlist processes one *nibble* per cycle: stage 1 is
// configured to deliver the stream twice interleaved — instead, we keep it
// simple and feed nibbles as tokens by pre-splitting in the extractor
// configuration below (header length 4 selects nibble granularity in this
// test's helper).
const nibbleNetlist = `
Extractor[1].use = 1
// Each input token is one nibble: cppp.
RegInit( Acc, 0, stop )
stop := SHR(Input, 3)
payload := AND(Input, 0x7)
shifted := SHL(Acc, 3)
value := ADD(shifted, payload)
Acc := value
Output := value
Output.valid := stop
ExceptionValue = ExceptionIndex = 0
UseDelta = 0
`

// splitNibbles expands bytes into nibble tokens (what a 4-bit extractor
// lane would deliver).
func splitNibbles(payload []byte) []uint64 {
	out := make([]uint64, 0, 2*len(payload))
	for _, b := range payload {
		out = append(out, uint64(b>>4), uint64(b&0xF))
	}
	return out
}

func TestCustomNibbleSchemeViaConfig(t *testing.T) {
	cfg, err := ParseConfig(nibbleNetlist)
	if err != nil {
		t.Fatalf("custom config does not parse: %v", err)
	}

	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		values := make([]uint32, n)
		for i := range values {
			// Mix small and large values to span 1..11 groups.
			switch rng.Intn(3) {
			case 0:
				values[i] = uint32(rng.Intn(8))
			case 1:
				values[i] = uint32(rng.Intn(1 << 9))
			default:
				values[i] = rng.Uint32()
			}
		}
		payload := encodeNibble(values)
		tokens := splitNibbles(payload)
		decoded, cycles, err := cfg.Netlist.Run(tokens, n)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]uint32, n)
		for i, v := range decoded {
			got[i] = uint32(v)
		}
		if !reflect.DeepEqual(got, values) {
			t.Fatalf("trial %d: custom scheme decode mismatch\n got %v\nwant %v", trial, got[:min(8, n)], values[:min(8, n)])
		}
		if cycles <= 0 || cycles > len(tokens) {
			t.Fatalf("trial %d: cycle count %d out of range", trial, cycles)
		}
	}
}

func TestCustomSchemeSizeCanBeatVB(t *testing.T) {
	// For streams of tiny values (0..7), the nibble code uses 4 bits/value
	// vs VB's 8 — the kind of niche win that motivates programmability.
	values := make([]uint32, 1000)
	rng := rand.New(rand.NewSource(5))
	for i := range values {
		values[i] = uint32(rng.Intn(8))
	}
	nib := len(encodeNibble(values))
	if nib >= 1000 { // VB needs 1 byte per value
		t.Fatalf("nibble code (%dB) should beat VB (1000B) on tiny values", nib)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
