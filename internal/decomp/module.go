package decomp

import (
	"encoding/binary"
	"fmt"

	"boss/internal/compress"
)

// pipelineDepth is the module's four stages; a block's last value drains
// through this many extra cycles.
const pipelineDepth = 4

// extractLanes is the number of payloads stage 1 extracts per cycle for
// field-structured schemes (Figure 6 shows multiple parallel extractor
// units). The byte-serial VariableByte netlist cannot use the lanes: its
// stage-2 register carries a dependency from one byte to the next.
const extractLanes = 2

// exception is a stage-3 patch produced by the PFD extractor: value at
// position pos gets high OR-ed in (already shifted to its final position).
type exception struct {
	pos  int
	high uint64
}

// Module is one instance of the programmable decompression module,
// configured for a concrete scheme. It is not safe for concurrent use; each
// hardware decompression unit owns one instance.
type Module struct {
	cfg *Config

	// selector tables resolved at configuration time
	s16 [][]int
	s8b []compress.S8bModeInfo

	// statistics
	cycles int64
	blocks int64
	values int64

	// decode scratch, reused across blocks (a Module is single-owner, so
	// plain fields suffice; see the concurrency note above)
	state *netState
	outs  []uint64
}

// NewModule builds a module from a parsed configuration.
func NewModule(cfg *Config) (*Module, error) {
	m := &Module{cfg: cfg}
	if cfg.Extractor == ExtractSelector {
		switch cfg.SelectorTable {
		case "s16":
			m.s16 = compress.S16FieldWidths()
		case "s8b":
			m.s8b = compress.S8bModeTable()
		default:
			return nil, fmt.Errorf("decomp: unknown selector table %q", cfg.SelectorTable)
		}
	}
	return m, nil
}

// NewModuleFor builds a module from the built-in configuration of a scheme.
func NewModuleFor(s compress.Scheme) *Module {
	m, err := NewModule(ConfigFor(s))
	if err != nil {
		panic(err)
	}
	return m
}

// Cycles reports total datapath cycles consumed since creation.
func (m *Module) Cycles() int64 { return m.cycles }

// Blocks reports how many block payloads were decoded.
func (m *Module) Blocks() int64 { return m.blocks }

// Values reports how many values were produced.
func (m *Module) Values() int64 { return m.values }

// Decode runs the four-stage datapath over a block payload, producing n
// values. base and applyDelta drive stage 4 (docID streams use delta with
// the block's first docID as base; tf streams do not). It returns the
// decoded values, the number of payload bytes consumed, and the cycles the
// block occupied the datapath.
func (m *Module) Decode(payload []byte, n int, base uint32, applyDelta bool) (values []uint32, bytesConsumed int, cycles int, err error) {
	// Stage 1: extraction.
	tokens, exceptions, used, extractCycles, err := m.extract(payload, n)
	if err != nil {
		return nil, 0, 0, err
	}

	// Stage 2: programmable manipulation.
	if m.state == nil {
		m.state = newNetState(m.cfg.Netlist)
	}
	outs, netCycles, err := m.cfg.Netlist.runInto(m.state, m.outs[:0], tokens, n)
	m.outs = outs[:0]
	if err != nil {
		return nil, 0, 0, err
	}
	if len(outs) != n {
		return nil, 0, 0, fmt.Errorf("decomp: produced %d values, want %d", len(outs), n)
	}
	if m.cfg.Extractor == ExtractByte {
		// The byte extractor's consumption is known only once stage 2 has
		// terminated n values: one byte per netlist cycle.
		used = netCycles
	}

	// Stage 3: exception patching.
	if m.cfg.UseExceptions {
		for _, e := range exceptions {
			if e.pos >= len(outs) {
				return nil, 0, 0, fmt.Errorf("decomp: exception position %d out of range", e.pos)
			}
			outs[e.pos] |= e.high
		}
	}

	// Stage 4: delta accumulation.
	values = make([]uint32, n)
	if applyDelta {
		acc := uint64(base)
		for i, v := range outs {
			acc += v
			values[i] = uint32(acc)
		}
	} else {
		for i, v := range outs {
			values[i] = uint32(v)
		}
	}

	// Field-structured schemes flow through the lanes end to end (stage 2
	// is stateless for them); the byte-serial VB netlist is bound by its
	// one-byte-per-cycle register dependency.
	if m.cfg.Extractor == ExtractByte {
		cycles = netCycles
	} else {
		cycles = extractCycles
	}
	cycles += pipelineDepth
	m.cycles += int64(cycles)
	m.blocks++
	m.values += int64(n)
	return values, used, cycles, nil
}

// extract runs the configured stage-1 unit.
func (m *Module) extract(payload []byte, n int) (tokens []uint64, exceptions []exception, used, cycles int, err error) {
	switch m.cfg.Extractor {
	case ExtractFixedWidth:
		if m.cfg.PFDHeader {
			return extractPFD(payload, n)
		}
		return extractFixedWidth(payload, n, m.cfg.HeaderLength)
	case ExtractByte:
		return extractBytes(payload, n)
	case ExtractSelector:
		if m.s16 != nil {
			return extractS16(payload, n, m.s16)
		}
		return extractS8b(payload, n, m.s8b)
	default:
		return nil, nil, 0, 0, fmt.Errorf("decomp: unknown extractor")
	}
}

// extractFixedWidth handles the BP layout: a width header of headerLength
// bits (rounded up to whole bytes) followed by n packed fields.
func extractFixedWidth(payload []byte, n, headerLength int) ([]uint64, []exception, int, int, error) {
	headerBytes := (headerLength + 7) / 8
	if headerBytes < 1 {
		return nil, nil, 0, 0, fmt.Errorf("decomp: fixed-width extractor needs a width header")
	}
	if len(payload) < headerBytes {
		return nil, nil, 0, 0, fmt.Errorf("decomp: payload shorter than header")
	}
	width := int(payload[0])
	if width > 32 {
		return nil, nil, 0, 0, fmt.Errorf("decomp: width %d out of range", width)
	}
	tokens, used, err := unpackFields(payload[headerBytes:], n, width)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return tokens, nil, headerBytes + used, (n + extractLanes - 1) / extractLanes, nil
}

// extractPFD handles the PForDelta layout (see internal/compress/pfd.go):
// [b][nExc][positions][low bits][VB-coded exception highs]. The exception
// highs are pre-shifted so stage 3 only ORs them in.
func extractPFD(payload []byte, n int) ([]uint64, []exception, int, int, error) {
	if len(payload) < 2 {
		return nil, nil, 0, 0, fmt.Errorf("decomp: PFD payload too short")
	}
	b := int(payload[0])
	nExc := int(payload[1])
	pos := 2
	if len(payload) < pos+nExc {
		return nil, nil, 0, 0, fmt.Errorf("decomp: PFD exception header truncated")
	}
	excPos := payload[pos : pos+nExc]
	pos += nExc
	tokens, used, err := unpackFields(payload[pos:], n, b)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	pos += used
	exceptions := make([]exception, nExc)
	for i := 0; i < nExc; i++ {
		var hv uint64
		for {
			if pos >= len(payload) {
				return nil, nil, 0, 0, fmt.Errorf("decomp: PFD exception stream truncated")
			}
			by := payload[pos]
			pos++
			hv = hv<<7 | uint64(by&0x7F)
			if by&0x80 != 0 {
				break
			}
		}
		exceptions[i] = exception{pos: int(excPos[i]), high: hv << uint(b)}
	}
	return tokens, exceptions, pos, (n+extractLanes-1)/extractLanes + nExc, nil
}

// extractBytes feeds the raw byte stream (VariableByte). The byte count
// actually consumed is only known after stage 2 terminates values, so the
// extractor hands over the full payload; Decode trims consumption by cycle
// count (one byte per cycle).
func extractBytes(payload []byte, n int) ([]uint64, []exception, int, int, error) {
	tokens := make([]uint64, len(payload))
	for i, b := range payload {
		tokens[i] = uint64(b)
	}
	// Consumption is refined by the caller via cycle count; here report
	// the worst case so callers that ignore VB trimming stay safe.
	return tokens, nil, len(payload), len(payload), nil
}

// extractS16 walks Simple16 words, emitting fields as tokens.
func extractS16(payload []byte, n int, table [][]int) ([]uint64, []exception, int, int, error) {
	tokens := make([]uint64, 0, n)
	pos := 0
	for len(tokens) < n {
		if pos+4 > len(payload) {
			return nil, nil, 0, 0, fmt.Errorf("decomp: S16 payload truncated")
		}
		word := binary.LittleEndian.Uint32(payload[pos:])
		pos += 4
		widths := table[word>>28]
		shift := 0
		for _, w := range widths {
			if len(tokens) >= n {
				break
			}
			tokens = append(tokens, uint64((word>>uint(shift))&(1<<uint(w)-1)))
			shift += w
		}
	}
	return tokens, nil, pos, (n + extractLanes - 1) / extractLanes, nil
}

// extractS8b walks Simple8b words, emitting fields as tokens.
func extractS8b(payload []byte, n int, table []compress.S8bModeInfo) ([]uint64, []exception, int, int, error) {
	tokens := make([]uint64, 0, n)
	pos := 0
	for len(tokens) < n {
		if pos+8 > len(payload) {
			return nil, nil, 0, 0, fmt.Errorf("decomp: S8b payload truncated")
		}
		word := binary.LittleEndian.Uint64(payload[pos:])
		pos += 8
		m := table[word>>60]
		if m.Width == 0 {
			for i := 0; i < m.Count && len(tokens) < n; i++ {
				tokens = append(tokens, 0)
			}
			continue
		}
		mask := uint64(1)<<uint(m.Width) - 1
		shift := 0
		for i := 0; i < m.Count && len(tokens) < n; i++ {
			tokens = append(tokens, (word>>uint(shift))&mask)
			shift += m.Width
		}
	}
	return tokens, nil, pos, (n + extractLanes - 1) / extractLanes, nil
}

// unpackFields reads n fields of width bits from src (LSB-first bit
// stream), as uint64 tokens.
func unpackFields(src []byte, n, width int) ([]uint64, int, error) {
	if width == 0 {
		return make([]uint64, n), 0, nil
	}
	need := (n*width + 7) / 8
	if len(src) < need {
		return nil, 0, fmt.Errorf("decomp: packed fields truncated (%d < %d bytes)", len(src), need)
	}
	mask := uint64(1)<<uint(width) - 1
	tokens := make([]uint64, 0, n)
	var acc uint64
	accBits := 0
	pos := 0
	for i := 0; i < n; i++ {
		for accBits < width {
			acc |= uint64(src[pos]) << uint(accBits)
			pos++
			accBits += 8
		}
		tokens = append(tokens, acc&mask)
		acc >>= uint(width)
		accBits -= width
	}
	return tokens, pos, nil
}
