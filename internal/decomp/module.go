package decomp

import (
	"encoding/binary"
	"fmt"

	"boss/internal/compress"
)

// pipelineDepth is the module's four stages; a block's last value drains
// through this many extra cycles.
const pipelineDepth = 4

// extractLanes is the number of payloads stage 1 extracts per cycle for
// field-structured schemes (Figure 6 shows multiple parallel extractor
// units). The byte-serial VariableByte netlist cannot use the lanes: its
// stage-2 register carries a dependency from one byte to the next.
const extractLanes = 2

// exception is a stage-3 patch produced by the PFD extractor: value at
// position pos gets high OR-ed in (already shifted to its final position).
type exception struct {
	pos  int
	high uint64
}

// Module is one instance of the programmable decompression module,
// configured for a concrete scheme. It is not safe for concurrent use; each
// hardware decompression unit owns one instance.
type Module struct {
	cfg *Config

	// prog is the stage-2 netlist compiled to slot-indexed form at
	// configuration time (see compile.go). The interpreter in netlist.go
	// remains the fuzz-checked reference; the compiled program is
	// bit-identical in values, cycle counts, and errors.
	prog *program

	// selector tables resolved at configuration time
	s16 [][]int
	s8b []compress.S8bModeInfo

	// statistics
	cycles int64
	blocks int64
	values int64

	// decode scratch, reused across blocks (a Module is single-owner, so
	// plain fields suffice; see the concurrency note above)
	pstate *progState
	outs   []uint64
	tokens []uint64
	excs   []exception
}

// NewModule builds a module from a parsed configuration, compiling the
// stage-2 netlist once so decoding never interprets names again.
func NewModule(cfg *Config) (*Module, error) {
	m := &Module{cfg: cfg}
	if cfg.Extractor == ExtractSelector {
		switch cfg.SelectorTable {
		case "s16":
			m.s16 = compress.S16FieldWidths()
		case "s8b":
			m.s8b = compress.S8bModeTable()
		default:
			return nil, fmt.Errorf("decomp: unknown selector table %q", cfg.SelectorTable)
		}
	}
	m.prog = compile(cfg.Netlist)
	m.pstate = newProgState(m.prog)
	return m, nil
}

// NewModuleFor builds a module from the built-in configuration of a scheme.
func NewModuleFor(s compress.Scheme) *Module {
	m, err := NewModule(ConfigFor(s))
	if err != nil {
		panic(err)
	}
	return m
}

// Cycles reports total datapath cycles consumed since creation.
func (m *Module) Cycles() int64 { return m.cycles }

// Blocks reports how many block payloads were decoded.
func (m *Module) Blocks() int64 { return m.blocks }

// Values reports how many values were produced.
func (m *Module) Values() int64 { return m.values }

// Decode runs the four-stage datapath over a block payload, producing n
// values. base and applyDelta drive stage 4 (docID streams use delta with
// the block's first docID as base; tf streams do not). It returns the
// decoded values, the number of payload bytes consumed, and the cycles the
// block occupied the datapath.
func (m *Module) Decode(payload []byte, n int, base uint32, applyDelta bool) (values []uint32, bytesConsumed int, cycles int, err error) {
	return m.DecodeInto(nil, payload, n, base, applyDelta)
}

// DecodeInto is Decode with a caller-provided destination: the n values are
// appended to dst (which may be nil) and the extended slice returned, so
// callers that recycle buffers decode without allocating.
//
//boss:hotpath the per-block decode loop; error construction is outlined.
func (m *Module) DecodeInto(dst []uint32, payload []byte, n int, base uint32, applyDelta bool) (values []uint32, bytesConsumed int, cycles int, err error) {
	var (
		outs       []uint64
		exceptions []exception
		netCycles  int
		used       int
		extCycles  int
	)
	if m.cfg.Extractor == ExtractByte {
		// Byte-serial fast path: stages 1 and 2 fuse. Payload bytes stream
		// into the compiled netlist one per cycle and stop at the byte
		// completing value n, so the consumption is exact by construction
		// and long tail payloads never cost O(payload) per block.
		outs, netCycles, err = m.prog.runBytes(m.pstate, m.outs[:0], payload, n)
		if err != nil {
			return nil, 0, 0, err
		}
		used = netCycles
	} else {
		// Stage 1: extraction into module-owned token scratch.
		var tokens []uint64
		tokens, exceptions, used, extCycles, err = m.extract(payload, n)
		if err != nil {
			return nil, 0, 0, err
		}
		// Stage 2: the compiled netlist program.
		outs, netCycles, err = m.prog.run(m.pstate, m.outs[:0], tokens, n)
		if err != nil {
			return nil, 0, 0, err
		}
	}
	m.outs = outs
	if len(outs) != n {
		return nil, 0, 0, errValueCount(len(outs), n) //boss:escape-ok cold value-count-corrupt error path
	}

	// Stage 3: exception patching.
	if m.cfg.UseExceptions {
		for _, e := range exceptions {
			if e.pos >= len(outs) {
				return nil, 0, 0, errExceptionRange(e.pos) //boss:escape-ok cold exception-range-corrupt error path
			}
			outs[e.pos] |= e.high
		}
	}

	// Stage 4: delta accumulation, appended to the caller's buffer.
	values = dst
	if applyDelta {
		acc := uint64(base)
		for _, v := range outs {
			acc += v
			values = append(values, uint32(acc))
		}
	} else {
		for _, v := range outs {
			values = append(values, uint32(v))
		}
	}

	// Field-structured schemes flow through the lanes end to end (stage 2
	// is stateless for them); the byte-serial VB netlist is bound by its
	// one-byte-per-cycle register dependency.
	if m.cfg.Extractor == ExtractByte {
		cycles = netCycles
	} else {
		cycles = extCycles
	}
	cycles += pipelineDepth
	m.cycles += int64(cycles)
	m.blocks++
	m.values += int64(n)
	return values, used, cycles, nil
}

// errValueCount and errExceptionRange build DecodeInto's corrupt-payload
// errors. Outlined so the hot decode loop carries no fmt call
// (hotpathalloc); both fire only on malformed input.
func errValueCount(got, want int) error {
	return fmt.Errorf("decomp: produced %d values, want %d", got, want)
}

func errExceptionRange(pos int) error {
	return fmt.Errorf("decomp: exception position %d out of range", pos)
}

// extract runs the configured stage-1 unit, reusing the module's token and
// exception scratch across blocks. The byte extractor never reaches here:
// DecodeInto streams bytes straight into the compiled netlist.
func (m *Module) extract(payload []byte, n int) (tokens []uint64, exceptions []exception, used, cycles int, err error) {
	switch m.cfg.Extractor {
	case ExtractFixedWidth:
		if m.cfg.PFDHeader {
			tokens, exceptions, used, cycles, err = extractPFD(m.tokens[:0], m.excs[:0], payload, n)
			if tokens != nil {
				m.tokens = tokens[:0]
			}
			if exceptions != nil {
				m.excs = exceptions[:0]
			}
			return tokens, exceptions, used, cycles, err
		}
		tokens, used, cycles, err = extractFixedWidth(m.tokens[:0], payload, n, m.cfg.HeaderLength)
	case ExtractSelector:
		if m.s16 != nil {
			tokens, used, cycles, err = extractS16(m.tokens[:0], payload, n, m.s16)
		} else {
			tokens, used, cycles, err = extractS8b(m.tokens[:0], payload, n, m.s8b)
		}
	default:
		return nil, nil, 0, 0, fmt.Errorf("decomp: unknown extractor")
	}
	if tokens != nil {
		m.tokens = tokens[:0]
	}
	return tokens, nil, used, cycles, err
}

// extractFixedWidth handles the BP layout: a width header of headerLength
// bits (rounded up to whole bytes) followed by n packed fields.
func extractFixedWidth(dst []uint64, payload []byte, n, headerLength int) ([]uint64, int, int, error) {
	headerBytes := (headerLength + 7) / 8
	if headerBytes < 1 {
		return nil, 0, 0, fmt.Errorf("decomp: fixed-width extractor needs a width header")
	}
	if len(payload) < headerBytes {
		return nil, 0, 0, fmt.Errorf("decomp: payload shorter than header")
	}
	width := int(payload[0])
	if width > 32 {
		return nil, 0, 0, fmt.Errorf("decomp: width %d out of range", width)
	}
	tokens, used, err := unpackFields(dst, payload[headerBytes:], n, width)
	if err != nil {
		return nil, 0, 0, err
	}
	return tokens, headerBytes + used, (n + extractLanes - 1) / extractLanes, nil
}

// extractPFD handles the PForDelta layout (see internal/compress/pfd.go):
// [b][nExc][positions][low bits][VB-coded exception highs]. The exception
// highs are pre-shifted so stage 3 only ORs them in.
func extractPFD(dst []uint64, excDst []exception, payload []byte, n int) ([]uint64, []exception, int, int, error) {
	if len(payload) < 2 {
		return nil, nil, 0, 0, fmt.Errorf("decomp: PFD payload too short")
	}
	b := int(payload[0])
	nExc := int(payload[1])
	pos := 2
	if len(payload) < pos+nExc {
		return nil, nil, 0, 0, fmt.Errorf("decomp: PFD exception header truncated")
	}
	excPos := payload[pos : pos+nExc]
	pos += nExc
	tokens, used, err := unpackFields(dst, payload[pos:], n, b)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	pos += used
	exceptions := excDst
	for i := 0; i < nExc; i++ {
		var hv uint64
		for {
			if pos >= len(payload) {
				return nil, nil, 0, 0, fmt.Errorf("decomp: PFD exception stream truncated")
			}
			by := payload[pos]
			pos++
			hv = hv<<7 | uint64(by&0x7F)
			if by&0x80 != 0 {
				break
			}
		}
		exceptions = append(exceptions, exception{pos: int(excPos[i]), high: hv << uint(b)})
	}
	return tokens, exceptions, pos, (n+extractLanes-1)/extractLanes + nExc, nil
}

// extractS16 walks Simple16 words, emitting fields as tokens.
func extractS16(dst []uint64, payload []byte, n int, table [][]int) ([]uint64, int, int, error) {
	tokens := dst
	pos := 0
	for len(tokens) < n {
		if pos+4 > len(payload) {
			return nil, 0, 0, fmt.Errorf("decomp: S16 payload truncated")
		}
		word := binary.LittleEndian.Uint32(payload[pos:])
		pos += 4
		widths := table[word>>28]
		shift := 0
		for _, w := range widths {
			if len(tokens) >= n {
				break
			}
			tokens = append(tokens, uint64((word>>uint(shift))&(1<<uint(w)-1)))
			shift += w
		}
	}
	return tokens, pos, (n + extractLanes - 1) / extractLanes, nil
}

// extractS8b walks Simple8b words, emitting fields as tokens.
func extractS8b(dst []uint64, payload []byte, n int, table []compress.S8bModeInfo) ([]uint64, int, int, error) {
	tokens := dst
	pos := 0
	for len(tokens) < n {
		if pos+8 > len(payload) {
			return nil, 0, 0, fmt.Errorf("decomp: S8b payload truncated")
		}
		word := binary.LittleEndian.Uint64(payload[pos:])
		pos += 8
		m := table[word>>60]
		if m.Width == 0 {
			for i := 0; i < m.Count && len(tokens) < n; i++ {
				tokens = append(tokens, 0)
			}
			continue
		}
		mask := uint64(1)<<uint(m.Width) - 1
		shift := 0
		for i := 0; i < m.Count && len(tokens) < n; i++ {
			tokens = append(tokens, (word>>uint(shift))&mask)
			shift += m.Width
		}
	}
	return tokens, pos, (n + extractLanes - 1) / extractLanes, nil
}

// unpackFields reads n fields of width bits from src (LSB-first bit
// stream), appending uint64 tokens to dst.
func unpackFields(dst []uint64, src []byte, n, width int) ([]uint64, int, error) {
	if width == 0 {
		for i := 0; i < n; i++ {
			dst = append(dst, 0)
		}
		return dst, 0, nil
	}
	need := (n*width + 7) / 8
	if len(src) < need {
		return nil, 0, fmt.Errorf("decomp: packed fields truncated (%d < %d bytes)", len(src), need)
	}
	mask := uint64(1)<<uint(width) - 1
	tokens := dst
	var acc uint64
	accBits := 0
	pos := 0
	for i := 0; i < n; i++ {
		for accBits < width {
			acc |= uint64(src[pos]) << uint(accBits)
			pos++
			accBits += 8
		}
		tokens = append(tokens, acc&mask)
		acc >>= uint(width)
		accBits -= width
	}
	return tokens, pos, nil
}
