package decomp

import (
	"testing"

	"boss/internal/compress"
)

// FuzzParseConfig checks the configuration-language parser never panics on
// arbitrary text.
func FuzzParseConfig(f *testing.F) {
	for _, s := range compress.AllSchemes() {
		f.Add(ConfigText(s))
	}
	f.Add("Extractor[1].use = 1\nOutput := Input\nOutput.valid := 1")
	f.Add("RegInit(R, 0, x)\nx := SHR(Input, 99999999999999999999)")
	f.Add("Extractor[-1].use = 1")
	f.Add("a := MUX(b, c, d, e)")
	f.Add("= = = =")
	f.Fuzz(func(t *testing.T, src string) {
		cfg, err := ParseConfig(src)
		if err != nil {
			return
		}
		// Anything accepted must be runnable without panicking (errors are
		// acceptable: undefined wires surface at run time).
		cfg.Netlist.Run([]uint64{0, 1, 0x80, 0xFF}, 8)
	})
}

// FuzzModuleDecode checks that decoding arbitrary (often corrupt) payloads
// returns errors rather than panicking, for every scheme.
func FuzzModuleDecode(f *testing.F) {
	codec := compress.ForScheme(compress.BP)
	f.Add(uint8(0), codec.Encode(nil, []uint32{1, 2, 3}), uint8(3))
	f.Add(uint8(4), []byte{0xFF, 0x01}, uint8(10))
	f.Add(uint8(2), []byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, schemeSeed uint8, payload []byte, nSeed uint8) {
		scheme := compress.AllSchemes()[int(schemeSeed)%len(compress.AllSchemes())]
		mod := NewModuleFor(scheme)
		n := int(nSeed)%128 + 1
		// Must not panic; error or success are both acceptable.
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: Decode panicked on corrupt payload: %v", scheme, r)
			}
		}()
		mod.Decode(payload, n, 0, true)
	})
}
