package decomp

import (
	"encoding/binary"
	"reflect"
	"testing"

	"boss/internal/compress"
)

// FuzzParseConfig checks the configuration-language parser never panics on
// arbitrary text.
func FuzzParseConfig(f *testing.F) {
	for _, s := range compress.AllSchemes() {
		f.Add(ConfigText(s))
	}
	f.Add("Extractor[1].use = 1\nOutput := Input\nOutput.valid := 1")
	f.Add("RegInit(R, 0, x)\nx := SHR(Input, 99999999999999999999)")
	f.Add("Extractor[-1].use = 1")
	f.Add("a := MUX(b, c, d, e)")
	f.Add("= = = =")
	f.Fuzz(func(t *testing.T, src string) {
		cfg, err := ParseConfig(src)
		if err != nil {
			return
		}
		// Anything accepted must be runnable without panicking (errors are
		// acceptable: undefined wires surface at run time).
		cfg.Netlist.Run([]uint64{0, 1, 0x80, 0xFF}, 8)
	})
}

// FuzzCompiledNetlist is the differential check that licenses the compiled
// fast path: for any parseable netlist program and any token stream, the
// compiled program must match the interpreter in output values, cycle
// counts, and errors (including error messages). The interpreter is the
// reference semantics; a divergence here is a compiler bug by definition.
func FuzzCompiledNetlist(f *testing.F) {
	for _, s := range compress.AllSchemes() {
		f.Add(ConfigText(s), []byte{0x02, 0xAC, 0x85, 0x00, 0xFF}, int8(-1))
	}
	f.Add(nibbleNetlist, []byte{0x12, 0x9A, 0x00}, int8(3))
	f.Add("Extractor[1].use = 1\nOutput := missing\nOutput.valid := 1", []byte{1}, int8(-1))
	f.Add("Extractor[1].use = 1\nRegInit(R, 9, w)\nw := SHR(Input, 7)\nR := ADD(R, Input)\nOutput := R\nOutput.valid := w", []byte{0x80, 0x01, 0x81}, int8(1))
	f.Add("Extractor[1].use = 1\nRegInit(Output, 1, x)\nx := AND(Input, 1)\nOutput := Input\nOutput.valid := 1", []byte{3, 4}, int8(-1))
	f.Fuzz(func(t *testing.T, src string, tokenBytes []byte, maxSeed int8) {
		cfg, err := ParseConfig(src)
		if err != nil {
			return
		}
		tokens := make([]uint64, len(tokenBytes))
		for i, b := range tokenBytes {
			// Mix small byte-like tokens with wide ones so shifts and adds
			// exercise the full 64-bit datapath.
			tokens[i] = uint64(b) << (uint(i) % 33)
		}
		max := int(maxSeed)
		iv, ic, ierr := cfg.Netlist.Run(tokens, max)
		p := compile(cfg.Netlist)
		cv, cc, cerr := p.run(newProgState(p), nil, tokens, max)
		if (ierr == nil) != (cerr == nil) {
			t.Fatalf("error divergence: interpreter=%v compiled=%v", ierr, cerr)
		}
		if ierr != nil && ierr.Error() != cerr.Error() {
			t.Fatalf("error message divergence: %v vs %v", ierr, cerr)
		}
		if ierr == nil && !reflect.DeepEqual(iv, cv) {
			t.Fatalf("value divergence:\n interpreter: %v\n compiled:    %v", iv, cv)
		}
		if ic != cc {
			t.Fatalf("cycle divergence: interpreter=%d compiled=%d", ic, cc)
		}
	})
}

// FuzzDecodeRoundTrip checks encode→module-decode round trips for every
// scheme: whatever values a codec accepts must come back bit-exactly (and
// with exact byte consumption) through the hardware datapath, both into a
// fresh buffer and appended to caller scratch.
func FuzzDecodeRoundTrip(f *testing.F) {
	for i := range compress.AllSchemes() {
		vals := []uint32{0, 1, 127, 128, 300, 1 << 20, uint32(i)}
		raw := make([]byte, 4*len(vals))
		for j, v := range vals {
			binary.LittleEndian.PutUint32(raw[4*j:], v)
		}
		f.Add(uint8(i), raw, uint32(100*i))
	}
	f.Fuzz(func(t *testing.T, schemeSeed uint8, raw []byte, base uint32) {
		scheme := compress.AllSchemes()[int(schemeSeed)%len(compress.AllSchemes())]
		codec := compress.ForScheme(scheme)
		n := len(raw) / 4
		if n == 0 || n > 128 {
			return
		}
		values := make([]uint32, n)
		for i := range values {
			values[i] = binary.LittleEndian.Uint32(raw[4*i:])
			if values[i] > codec.MaxValue() {
				values[i] %= codec.MaxValue() + 1
			}
		}
		if !codec.Supports(values) {
			return
		}
		payload := codec.Encode(nil, values)
		mod := NewModuleFor(scheme)
		got, used, cycles, err := mod.Decode(payload, n, 0, false)
		if err != nil {
			t.Fatalf("%s: decode of valid payload failed: %v", scheme, err)
		}
		if !reflect.DeepEqual(got, values) {
			t.Fatalf("%s: round trip mismatch\n got %v\nwant %v", scheme, got, values)
		}
		if used != len(payload) {
			t.Fatalf("%s: consumed %d bytes, payload %d", scheme, used, len(payload))
		}
		if cycles <= 0 {
			t.Fatalf("%s: nonpositive cycle count", scheme)
		}
		// Append-into-scratch path: same values after the prefix, and the
		// delta stage must produce the same stream shifted by base.
		scratch := append(make([]uint32, 0, n+1), 0xDEAD)
		withDelta, _, _, err := mod.DecodeInto(scratch, payload, n, base, true)
		if err != nil {
			t.Fatalf("%s: DecodeInto failed: %v", scheme, err)
		}
		if withDelta[0] != 0xDEAD || len(withDelta) != n+1 {
			t.Fatalf("%s: DecodeInto disturbed the caller prefix", scheme)
		}
		acc := base
		for i, v := range values {
			acc += v
			if withDelta[i+1] != acc {
				t.Fatalf("%s: delta stage mismatch at %d", scheme, i)
			}
		}
	})
}

// FuzzModuleDecode checks that decoding arbitrary (often corrupt) payloads
// returns errors rather than panicking, for every scheme.
func FuzzModuleDecode(f *testing.F) {
	codec := compress.ForScheme(compress.BP)
	f.Add(uint8(0), codec.Encode(nil, []uint32{1, 2, 3}), uint8(3))
	f.Add(uint8(4), []byte{0xFF, 0x01}, uint8(10))
	f.Add(uint8(2), []byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, schemeSeed uint8, payload []byte, nSeed uint8) {
		scheme := compress.AllSchemes()[int(schemeSeed)%len(compress.AllSchemes())]
		mod := NewModuleFor(scheme)
		n := int(nSeed)%128 + 1
		// Must not panic; error or success are both acceptable.
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: Decode panicked on corrupt payload: %v", scheme, r)
			}
		}()
		mod.Decode(payload, n, 0, true)
	})
}
