package decomp

import "fmt"

// This file compiles a stage-2 netlist into a slot-indexed program once at
// module-configuration time. The interpreter in netlist.go evaluates the
// assignment list with string-keyed maps — two map clears plus one lookup
// per operand per assignment per cycle, which for the byte-serial
// VariableByte program means a full map-interpreter pass per payload byte.
// The compiled form resolves every signal name to an integer slot up front,
// validates wire-use-before-assignment once instead of every cycle, and
// evaluates a cycle as a linear pass over a flat op list. Compilation
// changes wall-clock time only: values, cycle counts, and errors are
// bit-identical to Netlist.Run (FuzzCompiledNetlist pins this), so every
// simulated-time figure is unchanged.

// srcKind says where a compiled operand loads from.
type srcKind uint8

const (
	srcLit   srcKind = iota // immediate literal
	srcInput                // the stage input port
	srcReg                  // register slot (previous cycle's value)
	srcWire                 // wire slot (written earlier this cycle)
)

// src is a slot-resolved operand: no names, no map lookups.
type src struct {
	kind srcKind
	slot int32
	lit  uint64
}

// compiledOp is one lowered `dest := OP(a, b[, c])` assignment.
type compiledOp struct {
	op      opKind
	a, b, c src
	dst     int32
	dstReg  bool // dst indexes nextRegs rather than wires
}

// latchStep latches one register declaration at end of cycle. There is one
// step per RegInit in declaration order, mirroring the interpreter's latch
// loop exactly (duplicate declarations of one name each latch in turn).
type latchStep struct {
	slot      int32
	resetSlot int32 // wire slot of the reset signal, -1 when never driven
	init      uint64
	hasNext   bool // some assignment drives this register
}

// program is a Netlist lowered to slot-indexed form.
type program struct {
	ops   []compiledOp
	latch []latchStep

	nRegs  int
	nWires int
	// regInit[slot] is the power-on value. When one name is declared twice
	// the last declaration wins, as in the interpreter's reset loop.
	regInit []uint64

	outSlot   int32 // wire slot of "Output", -1 when never driven as a wire
	validSlot int32 // wire slot of "Output.valid", -1 when never driven

	// staticErr records a wire-read-before-assignment found at compile
	// time. The assignment list is cycle-invariant, so the interpreter
	// raises this on whichever cycle runs first; the compiled runner
	// reproduces it on cycle 1 with the identical message.
	staticErr error
}

// compile lowers a netlist. It never rejects a program: statically invalid
// ones compile to a program that reproduces the interpreter's first-cycle
// error, keeping NewModule infallible like the interpreter path.
func compile(nl *Netlist) *program {
	p := &program{outSlot: -1, validSlot: -1}

	// Register slots: declarations of the same name share one slot.
	regSlot := make(map[string]int32, len(nl.regs))
	for _, r := range nl.regs {
		if _, ok := regSlot[r.name]; !ok {
			regSlot[r.name] = int32(len(regSlot))
		}
	}
	p.nRegs = len(regSlot)
	p.regInit = make([]uint64, p.nRegs)
	for _, r := range nl.regs {
		p.regInit[regSlot[r.name]] = r.init
	}

	// Wire slots: one per distinct non-register destination.
	wireSlot := make(map[string]int32)
	regDriven := make(map[string]bool)
	for _, a := range nl.assigns {
		if _, isReg := regSlot[a.dest]; isReg {
			regDriven[a.dest] = true
			continue
		}
		if _, ok := wireSlot[a.dest]; !ok {
			wireSlot[a.dest] = int32(len(wireSlot))
		}
	}
	p.nWires = len(wireSlot)

	// Lower assignments in program order, tracking which wires are already
	// driven so reads of not-yet-assigned wires surface now, not per cycle.
	assigned := make(map[string]bool, len(wireSlot))
	for _, a := range nl.assigns {
		op := compiledOp{op: a.op}
		for i, arg := range a.args {
			s, err := resolveSrc(arg, regSlot, wireSlot, assigned)
			if err != nil {
				p.staticErr = err
				return p
			}
			switch i {
			case 0:
				op.a = s
			case 1:
				op.b = s
			case 2:
				op.c = s
			}
		}
		if slot, isReg := regSlot[a.dest]; isReg {
			op.dst, op.dstReg = slot, true
		} else {
			op.dst = wireSlot[a.dest]
			assigned[a.dest] = true
		}
		p.ops = append(p.ops, op)
	}

	// End-of-cycle reads resolve statically: a wire is present in the
	// interpreter's map at latch time iff it is some assignment's
	// destination, because every assignment executes every cycle.
	if s, ok := wireSlot["Output"]; ok {
		p.outSlot = s
	}
	if s, ok := wireSlot["Output.valid"]; ok {
		p.validSlot = s
	}
	for _, r := range nl.regs {
		l := latchStep{
			slot:      regSlot[r.name],
			resetSlot: -1,
			init:      r.init,
			hasNext:   regDriven[r.name],
		}
		if s, ok := wireSlot[r.reset]; ok {
			l.resetSlot = s
		}
		p.latch = append(p.latch, l)
	}
	return p
}

// resolveSrc maps an operand to its slot, in the interpreter's resolution
// order: literal, the Input port, registers, then wires driven earlier in
// the cycle.
func resolveSrc(o operand, regSlot, wireSlot map[string]int32, assigned map[string]bool) (src, error) {
	if o.isLit {
		return src{kind: srcLit, lit: o.literal}, nil
	}
	if o.name == "Input" {
		return src{kind: srcInput}, nil
	}
	if slot, ok := regSlot[o.name]; ok {
		return src{kind: srcReg, slot: slot}, nil
	}
	if assigned[o.name] {
		return src{kind: srcWire, slot: wireSlot[o.name]}, nil
	}
	return src{}, fmt.Errorf("decomp: wire %q read before assignment", o.name)
}

// progState is the mutable state of a compiled program: flat slot arrays,
// reusable across blocks. Wires are never cleared between cycles — compile
// proved every wire read follows a same-cycle write, so stale values are
// unobservable.
type progState struct {
	regs     []uint64
	nextRegs []uint64
	wires    []uint64
}

func newProgState(p *program) *progState {
	return &progState{
		regs:     make([]uint64, p.nRegs),
		nextRegs: make([]uint64, p.nRegs),
		wires:    make([]uint64, p.nWires),
	}
}

// reset restores power-on register state.
func (s *progState) reset(p *program) {
	copy(s.regs, p.regInit)
}

func (s *progState) load(o src, input uint64) uint64 {
	switch o.kind {
	case srcLit:
		return o.lit
	case srcInput:
		return input
	case srcReg:
		return s.regs[o.slot]
	default:
		return s.wires[o.slot]
	}
}

// step evaluates one cycle: a linear pass over the op list, then the
// register latch (reset wins over the assigned next value), then the
// statically resolved output-port reads.
//
//boss:hotpath one call per netlist cycle — per payload byte for VariableByte.
func (p *program) step(s *progState, input uint64) (out uint64, valid bool) {
	for i := range p.ops {
		o := &p.ops[i]
		a := s.load(o.a, input)
		b := s.load(o.b, input)
		var v uint64
		switch o.op {
		case opNone:
			v = a
		case opSHR:
			v = a >> (b & 63)
		case opSHL:
			v = a << (b & 63)
		case opAND:
			v = a & b
		case opOR:
			v = a | b
		case opXOR:
			v = a ^ b
		case opADD:
			v = a + b
		case opSUB:
			v = a - b
		case opMUX:
			if a != 0 {
				v = b
			} else {
				v = s.load(o.c, input)
			}
		}
		if o.dstReg {
			s.nextRegs[o.dst] = v
		} else {
			s.wires[o.dst] = v
		}
	}
	for _, l := range p.latch {
		if l.resetSlot >= 0 && s.wires[l.resetSlot] != 0 {
			s.regs[l.slot] = l.init
			continue
		}
		if l.hasNext {
			s.regs[l.slot] = s.nextRegs[l.slot]
		}
	}
	if p.outSlot >= 0 {
		out = s.wires[p.outSlot]
	}
	valid = p.validSlot >= 0 && s.wires[p.validSlot] != 0
	return out, valid
}

// run is the compiled equivalent of Netlist.runInto: identical values,
// cycle counts, and errors, with no allocation beyond dst growth.
//
//boss:hotpath
func (p *program) run(s *progState, dst []uint64, tokens []uint64, max int) (values []uint64, cycles int, err error) {
	s.reset(p)
	values = dst
	for _, tok := range tokens {
		cycles++
		if p.staticErr != nil {
			return nil, cycles, p.staticErr
		}
		out, valid := p.step(s, tok)
		if valid {
			values = append(values, out)
			if max >= 0 && len(values) >= max {
				break
			}
		}
	}
	return values, cycles, nil
}

// runBytes is run with a byte-stream input: one token per payload byte,
// fed incrementally so evaluation stops at the byte completing value max.
// The VariableByte fast path never materializes a token slice and never
// touches payload bytes past the values it needs.
//
//boss:hotpath
func (p *program) runBytes(s *progState, dst []uint64, payload []byte, max int) (values []uint64, cycles int, err error) {
	s.reset(p)
	values = dst
	for _, tok := range payload {
		cycles++
		if p.staticErr != nil {
			return nil, cycles, p.staticErr
		}
		out, valid := p.step(s, uint64(tok))
		if valid {
			values = append(values, out)
			if max >= 0 && len(values) >= max {
				break
			}
		}
	}
	return values, cycles, nil
}
