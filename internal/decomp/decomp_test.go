package decomp

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"boss/internal/compress"
)

func TestVBNetlistMatchesFigure8(t *testing.T) {
	// Hand-run the paper's Figure 8 program on a known VB encoding.
	cfg := ConfigFor(compress.VB)
	// 300 encodes as [0x02, 0xAC] (MSG first, stop bit on the last byte).
	values, cycles, err := cfg.Netlist.Run([]uint64{0x02, 0xAC}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 1 || values[0] != 300 {
		t.Fatalf("netlist decoded %v, want [300]", values)
	}
	if cycles != 2 {
		t.Fatalf("cycles = %d, want 2 (one per byte)", cycles)
	}
}

func TestVBNetlistRegisterResets(t *testing.T) {
	cfg := ConfigFor(compress.VB)
	// Two consecutive values: 300 then 5. The register must reset between
	// them or the second value would inherit stale accumulator state.
	tokens := []uint64{0x02, 0xAC, 0x85}
	values, _, err := cfg.Netlist.Run(tokens, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(values, []uint64{300, 5}) {
		t.Fatalf("decoded %v, want [300 5]", values)
	}
}

func TestModuleDecodesAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range compress.AllSchemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			codec := compress.ForScheme(s)
			mod := NewModuleFor(s)
			for trial := 0; trial < 30; trial++ {
				n := 1 + rng.Intn(128)
				values := make([]uint32, n)
				w := uint(rng.Intn(20)) + 1
				for i := range values {
					values[i] = rng.Uint32() & (1<<w - 1)
					if values[i] > codec.MaxValue() {
						values[i] = codec.MaxValue()
					}
				}
				payload := codec.Encode(nil, values)
				got, used, cycles, err := mod.Decode(payload, n, 0, false)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !reflect.DeepEqual(got, values) {
					t.Fatalf("trial %d: module output differs from codec input\n got %v\nwant %v", trial, got, values)
				}
				if used != len(payload) {
					t.Fatalf("trial %d: consumed %d bytes, payload %d", trial, used, len(payload))
				}
				if cycles <= 0 {
					t.Fatalf("trial %d: nonpositive cycle count", trial)
				}
			}
		})
	}
}

func TestModuleDeltaStage(t *testing.T) {
	codec := compress.ForScheme(compress.BP)
	deltas := []uint32{0, 3, 1, 10}
	payload := codec.Encode(nil, deltas)
	mod := NewModuleFor(compress.BP)
	got, _, _, err := mod.Decode(payload, len(deltas), 100, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{100, 103, 104, 114}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delta stage output %v, want %v", got, want)
	}
}

func TestModuleMatchesCodecWithDelta(t *testing.T) {
	// End-to-end against the software codec on docID-style streams.
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(128)
		base := uint32(r.Intn(1 << 20))
		deltas := make([]uint32, n)
		for i := range deltas {
			deltas[i] = uint32(r.Intn(1 << 12))
		}
		scheme := compress.AllSchemes()[r.Intn(6)]
		codec := compress.ForScheme(scheme)
		payload := codec.Encode(nil, deltas)

		// Software path.
		soft, _ := codec.Decode(nil, payload, n)
		softDocs := append([]uint32(nil), soft...)
		compress.DeltaDecode(softDocs, base)

		// Hardware path.
		mod := NewModuleFor(scheme)
		hard, _, _, err := mod.Decode(payload, n, base, true)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(hard, softDocs)
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestVBConsumptionIsExact(t *testing.T) {
	// When two VB streams are concatenated (docIDs then tfs, as the index
	// lays them out), consumption of the first must be exact so the second
	// can be located.
	codec := compress.ForScheme(compress.VB)
	a := []uint32{5, 300, 70000}
	b := []uint32{1, 2, 3}
	payload := codec.Encode(nil, a)
	aLen := len(payload)
	payload = codec.Encode(payload, b)

	mod := NewModuleFor(compress.VB)
	gotA, usedA, _, err := mod.Decode(payload, len(a), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if usedA != aLen {
		t.Fatalf("VB consumed %d bytes, want %d", usedA, aLen)
	}
	if !reflect.DeepEqual(gotA, a) {
		t.Fatalf("first stream = %v", gotA)
	}
	gotB, _, _, err := mod.Decode(payload[usedA:], len(b), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotB, b) {
		t.Fatalf("second stream = %v", gotB)
	}
}

func TestModuleStatistics(t *testing.T) {
	mod := NewModuleFor(compress.BP)
	codec := compress.ForScheme(compress.BP)
	payload := codec.Encode(nil, []uint32{1, 2, 3})
	mod.Decode(payload, 3, 0, false)
	mod.Decode(payload, 3, 0, false)
	if mod.Blocks() != 2 {
		t.Fatalf("blocks = %d", mod.Blocks())
	}
	if mod.Values() != 6 {
		t.Fatalf("values = %d", mod.Values())
	}
	if mod.Cycles() <= 0 {
		t.Fatal("cycles not accumulated")
	}
}

func TestPFDExceptionsPatchedByStage3(t *testing.T) {
	codec := compress.ForScheme(compress.OptPFD)
	values := make([]uint32, 128)
	for i := range values {
		values[i] = uint32(i % 7)
	}
	values[13] = 1 << 25 // force an exception
	values[99] = 1 << 22
	payload := codec.Encode(nil, values)
	mod := NewModuleFor(compress.OptPFD)
	got, _, _, err := mod.Decode(payload, len(values), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, values) {
		t.Fatal("exception values not patched correctly")
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no extractor", "Output := Input\nOutput.valid := 1\nUseDelta = 1"},
		{"two extractors", "Extractor[0].use = 1\nExtractor[1].use = 1\nOutput := Input\nOutput.valid := 1"},
		{"selector without table", "Extractor[2].use = 1\nOutput := Input\nOutput.valid := 1"},
		{"bad op", "Extractor[1].use = 1\nw := FROB(Input, 1)\nOutput := w\nOutput.valid := 1"},
		{"bad index", "Extractor[9].use = 1\nOutput := Input\nOutput.valid := 1"},
		{"unknown param", "Extractor[1].use = 1\nOutput := Input\nOutput.valid := 1\nBogus = 1"},
		{"bad literal", "Extractor[1].use = 1\nw := AND(Input, 0xZZ)\nOutput := w\nOutput.valid := 1"},
		{"mux arity", "Extractor[1].use = 1\nw := MUX(Input, 1)\nOutput := w\nOutput.valid := 1"},
		{"unparsable", "Extractor[1].use = 1\n???\nOutput := Input\nOutput.valid := 1"},
		{"empty netlist", "Extractor[1].use = 1\nUseDelta = 1"},
	}
	for _, tc := range cases {
		if _, err := ParseConfig(tc.src); err == nil {
			t.Errorf("%s: ParseConfig accepted invalid config", tc.name)
		}
	}
}

func TestParseConfigCommentsAndChainedAssign(t *testing.T) {
	cfg, err := ParseConfig(`
// a comment
# another comment style
Extractor[1].use = 1   // trailing comment
Output := Input
Output.valid := 1
ExceptionValue = ExceptionIndex = 0
UseDelta = 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Extractor != ExtractByte || !cfg.UseDelta || cfg.UseExceptions {
		t.Fatalf("parsed config = %+v", cfg)
	}
}

func TestNetlistUndefinedWire(t *testing.T) {
	cfg, err := ParseConfig(`
Extractor[1].use = 1
Output := nonexistent
Output.valid := 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cfg.Netlist.Run([]uint64{1}, -1); err == nil {
		t.Fatal("reading an unassigned wire should error")
	}
}

func TestNetlistMux(t *testing.T) {
	cfg, err := ParseConfig(`
Extractor[1].use = 1
cond := SHR(Input, 7)
low := AND(Input, 0x7F)
Output := MUX(cond, low, Input)
Output.valid := 1
`)
	if err != nil {
		t.Fatal(err)
	}
	values, _, err := cfg.Netlist.Run([]uint64{0x85, 0x05}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(values, []uint64{0x05, 0x05}) {
		t.Fatalf("mux output = %v", values)
	}
}

func TestConfigTextParsesForAllSchemes(t *testing.T) {
	for _, s := range compress.AllSchemes() {
		text := ConfigText(s)
		if !strings.Contains(text, "Extractor[") {
			t.Errorf("%s config missing extractor section", s)
		}
		if _, err := ParseConfig(text); err != nil {
			t.Errorf("%s config does not parse: %v", s, err)
		}
	}
}

func TestDecodeErrorsOnTruncatedPayload(t *testing.T) {
	codec := compress.ForScheme(compress.BP)
	payload := codec.Encode(nil, []uint32{1000, 2000, 3000})
	mod := NewModuleFor(compress.BP)
	if _, _, _, err := mod.Decode(payload[:1], 3, 0, false); err == nil {
		t.Fatal("truncated BP payload should error")
	}
	for _, s := range []compress.Scheme{compress.S16, compress.S8b, compress.OptPFD} {
		mod := NewModuleFor(s)
		if _, _, _, err := mod.Decode([]byte{1}, 10, 0, false); err == nil {
			t.Errorf("%s: truncated payload should error", s)
		}
	}
}

// BenchmarkDecompModule times the steady-state decode path per scheme —
// one 128-value block through the compiled four-stage datapath, appending
// into caller scratch. Run with -benchmem: the compiled netlist plus
// module-owned stage scratch make the per-block figure 0 allocs/op.
func BenchmarkDecompModule(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	values := make([]uint32, 128)
	for i := range values {
		values[i] = uint32(rng.Intn(1024))
	}
	for _, s := range compress.AllSchemes() {
		codec := compress.ForScheme(s)
		payload := codec.Encode(nil, values)
		mod := NewModuleFor(s)
		dst := make([]uint32, 0, len(values))
		b.Run(s.String(), func(b *testing.B) {
			b.SetBytes(int64(4 * len(values)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := mod.DecodeInto(dst[:0], payload, len(values), 0, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
