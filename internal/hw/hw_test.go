package hw

import (
	"math"
	"testing"

	"boss/internal/sim"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol
}

func TestCoreAreaMatchesTableIII(t *testing.T) {
	if !approx(CoreArea(), 1.003, 1e-9) {
		t.Fatalf("core area = %v mm², Table III says 1.003", CoreArea())
	}
}

func TestCorePowerMatchesTableIII(t *testing.T) {
	if !approx(CorePower(), 406.64, 0.05) {
		t.Fatalf("core power = %v mW, Table III says 406.6", CorePower())
	}
}

func TestDeviceTotalsMatchTableIII(t *testing.T) {
	// Table III's rows sum to 8.23 mm² although its stated total is 8.27;
	// we reproduce the rows, so accept the row sum.
	if !approx(DeviceArea(8), 8.23, 0.05) {
		t.Fatalf("device area = %v mm², Table III rows sum to 8.23", DeviceArea(8))
	}
	if !approx(DevicePower(8), 3200, 60) {
		t.Fatalf("device power = %v mW, Table III says ~3.2 W", DevicePower(8))
	}
}

func TestDeviceScalesWithCores(t *testing.T) {
	if DeviceArea(1) >= DeviceArea(8) {
		t.Fatal("area must grow with cores")
	}
	diff := DevicePower(4) - DevicePower(2)
	if !approx(diff, 2*CorePower(), 1e-9) {
		t.Fatalf("power delta for 2 extra cores = %v, want %v", diff, 2*CorePower())
	}
}

func TestScoringModuleIsLargest(t *testing.T) {
	// The paper highlights that the scoring module dominates core area
	// (fixed-point dividers) with the top-k module second.
	var largest, second Component
	for _, c := range CoreComponents() {
		if c.AreaMM2 > largest.AreaMM2 {
			second = largest
			largest = c
		} else if c.AreaMM2 > second.AreaMM2 {
			second = c
		}
	}
	if largest.Name != "Scoring Module" {
		t.Fatalf("largest module = %s", largest.Name)
	}
	if second.Name != "Top-k Module" {
		t.Fatalf("second largest = %s", second.Name)
	}
}

func TestBOSSPowerAdvantage(t *testing.T) {
	// BOSS at 8 cores consumes ~23.3x less power than the 74.8 W CPU.
	ratio := CPUPackagePowerW / (DevicePower(8) / 1000)
	if ratio < 22 || ratio > 25 {
		t.Fatalf("power ratio = %.1f, paper says 23.3x", ratio)
	}
}

func TestEnergyArithmetic(t *testing.T) {
	// 2 W for 0.5 s = 1 J.
	if got := EnergyJ(2, 500*sim.Millisecond); !approx(got, 1, 1e-12) {
		t.Fatalf("EnergyJ = %v", got)
	}
	// Same runtime: Lucene/BOSS energy ratio equals the power ratio.
	rt := 10 * sim.Millisecond
	ratio := LuceneEnergyJ(rt) / BOSSEnergyJ(8, rt)
	if !approx(ratio, CPUPackagePowerW/(DevicePower(8)/1000), 1e-9) {
		t.Fatalf("equal-runtime energy ratio = %v", ratio)
	}
}

func TestCoreBuffersMatchSectionIVC(t *testing.T) {
	total := CoreBufferBytes()
	// The paper: "a BOSS core uses about 11KB of SRAM for on-chip buffers".
	if total < 11000 || total > 12500 {
		t.Fatalf("core SRAM = %d bytes, paper says about 11 KB", total)
	}
	for _, b := range CoreBuffers() {
		if b.Bytes <= 0 || b.Count <= 0 {
			t.Fatalf("degenerate buffer %+v", b)
		}
	}
}

func TestEnergyIncludesSpeedup(t *testing.T) {
	// If BOSS also finishes 8.1x faster, the energy gap multiplies: with
	// the paper's numbers this lands within reach of the headline 189x.
	luceneRT := sim.FromSeconds(8.1)
	bossRT := sim.FromSeconds(1.0)
	ratio := LuceneEnergyJ(luceneRT) / BOSSEnergyJ(8, bossRT)
	if ratio < 150 || ratio > 220 {
		t.Fatalf("combined energy ratio = %.0f, paper reports 189x", ratio)
	}
}
