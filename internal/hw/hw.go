// Package hw reproduces the paper's area/power/energy analysis (Table III
// and Figure 17). The per-module area and power figures come from the
// paper's Synopsys DC synthesis at TSMC 40 nm; energy is power multiplied by
// simulated runtime, exactly the arithmetic the paper applies.
package hw

import "boss/internal/sim"

// Component is one row of Table III.
type Component struct {
	Name    string
	Count   int
	AreaMM2 float64 // total over Count instances
	PowerMW float64 // total over Count instances
}

// CoreComponents returns the BOSS-core breakdown of Table III. Area and
// power are totals over the listed instance counts; they sum to one core's
// 1.003 mm² and 406.6 mW.
func CoreComponents() []Component {
	return []Component{
		{"Block Fetch Module", 1, 0.108, 10.5},
		{"Decompression Module", 4, 0.093, 43.0},
		{"Intersection Module", 1, 0.003, 0.49},
		{"Union Module", 1, 0.011, 5.55},
		{"Scoring Module", 4, 0.464, 200.0},
		{"Top-k Module", 1, 0.324, 147.1},
	}
}

// PeripheralComponents returns the device-level blocks of Table III
// (everything outside the cores).
func PeripheralComponents() []Component {
	return []Component{
		{"Command Queue", 1, 0.078, 0.078},
		{"Query Scheduler", 1, 0.001, 1.96},
		{"MAI (with TLB)", 1, 0.127, 1.20},
	}
}

// CoreArea reports one BOSS core's area in mm² (sums to the paper's
// 1.003 mm²).
func CoreArea() float64 { return sumArea(CoreComponents()) }

// CorePower reports one BOSS core's average power in mW (the paper's
// 406.6 mW).
func CorePower() float64 { return sumPower(CoreComponents()) }

// DeviceArea reports the area of a BOSS device with the given core count.
// At 8 cores this is the paper's 8.27 mm² total.
func DeviceArea(cores int) float64 {
	return float64(cores)*CoreArea() + sumArea(PeripheralComponents())
}

// DevicePower reports the average power in mW of a BOSS device with the
// given core count (the paper's 3.2 W at 8 cores).
func DevicePower(cores int) float64 {
	return float64(cores)*CorePower() + sumPower(PeripheralComponents())
}

// OnChipBuffer is one SRAM buffer inside a BOSS core (Section IV-C,
// "On-chip Buffers").
type OnChipBuffer struct {
	Name  string
	Count int
	Bytes int // total over Count instances
}

// CoreBuffers returns the per-core SRAM budget of Section IV-C; the totals
// sum to about 11 KB per core.
func CoreBuffers() []OnChipBuffer {
	return []OnChipBuffer{
		{"block fetch address/metadata", 1, 288},
		{"decompression target blocks", 4, 1024},
		{"intersection/union intermediate docIDs", 1, 192},
		{"scoring docID/tf staging", 4, 2048},
		{"top-k result buffer", 1, 8192},
	}
}

// CoreBufferBytes reports the total per-core SRAM (the paper's ~11 KB).
func CoreBufferBytes() int {
	total := 0
	for _, b := range CoreBuffers() {
		total += b.Bytes
	}
	return total
}

// CPUPackagePowerW is the measured average package power of the paper's
// host Xeon running Lucene (footnote 1: 74.8 W via Intel SoC Watch).
const CPUPackagePowerW = 74.8

// EnergyJ computes energy in joules from power in watts and a simulated
// runtime.
func EnergyJ(powerW float64, runtime sim.Duration) float64 {
	return powerW * sim.Seconds(runtime)
}

// BOSSEnergyJ computes the energy a BOSS device with the given core count
// consumes over a simulated runtime.
func BOSSEnergyJ(cores int, runtime sim.Duration) float64 {
	return EnergyJ(DevicePower(cores)/1000, runtime)
}

// LuceneEnergyJ computes the energy the host CPU consumes running Lucene
// for a simulated runtime.
func LuceneEnergyJ(runtime sim.Duration) float64 {
	return EnergyJ(CPUPackagePowerW, runtime)
}

func sumArea(cs []Component) float64 {
	var a float64
	for _, c := range cs {
		a += c.AreaMM2
	}
	return a
}

func sumPower(cs []Component) float64 {
	var p float64
	for _, c := range cs {
		p += c.PowerMW
	}
	return p
}
