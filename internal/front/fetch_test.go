package front

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFetchCoalescing: identical concurrent id lists share one flight;
// different lists do not; every waiter sees the payloads.
func TestFetchCoalescing(t *testing.T) {
	be := &fakeBackend{shards: 4}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{BatchTarget: 64, Clock: clk}, be)

	a1, err := f.Submit(Request{FetchIDs: []uint32{3, 1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := f.Submit(Request{FetchIDs: []uint32{3, 1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := f.Submit(Request{FetchIDs: []uint32{3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	f.Flush()

	for i, tk := range []*Ticket{a1, a2} {
		res := tk.Wait(context.Background())
		if res.Err != nil {
			t.Fatalf("waiter %d: %v", i, res.Err)
		}
		if len(res.Docs) != 3 || res.Docs[0].DocID != 3 || res.Docs[2].DocID != 4 {
			t.Fatalf("waiter %d docs = %+v", i, res.Docs)
		}
		if len(res.TopK) != 0 {
			t.Fatalf("waiter %d: fetch result carries a ranking", i)
		}
		if wantDedup := i > 0; res.DedupHit != wantDedup {
			t.Fatalf("waiter %d: DedupHit = %v, want %v", i, res.DedupHit, wantDedup)
		}
	}
	if res := b1.Wait(context.Background()); res.Err != nil || len(res.Docs) != 2 {
		t.Fatalf("prefix list result: %+v", res)
	}
	if sizes := be.batchSizes(); len(sizes) != 1 || sizes[0] != 2 {
		t.Fatalf("batch sizes = %v, want one batch of two flights", sizes)
	}
	m := f.Metrics()
	if m.Fetches != 3 || m.Admitted != 2 || m.DedupHits != 1 {
		t.Fatalf("metrics = %+v, want 3 fetches / 2 admitted / 1 dedup", m)
	}
}

// TestFetchSharesBatch: queries and fetches admitted together flush as
// one heterogeneous batch, and the fetch's id list reaches the backend.
func TestFetchSharesBatch(t *testing.T) {
	be := &fakeBackend{shards: 2}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{BatchTarget: 64, Clock: clk}, be)

	q, err := f.Submit(Request{Expr: `"a"`, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Submit(Request{FetchIDs: []uint32{7}})
	if err != nil {
		t.Fatal(err)
	}
	f.Flush()
	if res := q.Wait(context.Background()); res.Err != nil || len(res.TopK) != 1 {
		t.Fatalf("query result: %+v", res)
	}
	if res := d.Wait(context.Background()); res.Err != nil || len(res.Docs) != 1 || res.Docs[0].DocID != 7 {
		t.Fatalf("fetch result: %+v", res)
	}
	be.mu.Lock()
	defer be.mu.Unlock()
	if len(be.batches) != 1 || len(be.batches[0]) != 2 {
		t.Fatalf("batches = %v", be.batches)
	}
	var sawFetch bool
	for _, bq := range be.batches[0] {
		if len(bq.FetchIDs) > 0 {
			sawFetch = true
			if bq.FetchIDs[0] != 7 || bq.Expr != "" {
				t.Fatalf("fetch batch query = %+v", bq)
			}
		}
	}
	if !sawFetch {
		t.Fatal("no fetch query reached the backend")
	}
}

// TestFetchMixedRequestRejected: a request carrying both an expression
// and an id list is a caller bug, rejected before admission.
func TestFetchMixedRequestRejected(t *testing.T) {
	be := &fakeBackend{shards: 2}
	f := start(t, Config{Clock: NewFakeClock(time.Unix(0, 0))}, be)
	if _, err := f.Submit(Request{Expr: `"a"`, FetchIDs: []uint32{1}}); !errors.Is(err, ErrMixedRequest) {
		t.Fatalf("err = %v, want ErrMixedRequest", err)
	}
	if m := f.Metrics(); m.Submitted != 0 {
		t.Fatalf("rejected request counted as submitted: %+v", m)
	}
}

// TestFetchDegradedAdmission: fetches ride the same pressure ladder —
// past the watermark a fetch degrades to a shard subset and the shed
// shards show up in the result mask.
func TestFetchDegradedAdmission(t *testing.T) {
	be := &fakeBackend{shards: 4}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{BatchTarget: 64, MaxQueue: 4, DegradeWatermark: 0.25, Clock: clk}, be)

	// First admission fills to the watermark (1 of 4); the second degrades.
	t1, err := f.Submit(Request{FetchIDs: []uint32{1}})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := f.Submit(Request{FetchIDs: []uint32{2}})
	if err != nil {
		t.Fatal(err)
	}
	f.Flush()
	if res := t1.Wait(context.Background()); res.Err != nil || res.Degraded != 0 {
		t.Fatalf("pre-watermark fetch: %+v", res)
	}
	res := t2.Wait(context.Background())
	if res.Err != nil || res.Degraded == 0 {
		t.Fatalf("past-watermark fetch not degraded: %+v", res)
	}
	if len(res.Docs) != 1 {
		t.Fatalf("degraded fetch lost its doc slot: %+v", res.Docs)
	}
}

// TestFetchCanonDisjoint: fetch keys can never collide with query keys,
// so a fetch and a search never coalesce.
func TestFetchCanonDisjoint(t *testing.T) {
	if k := fetchCanon([]uint32{1, 2}); k[0] != 0 {
		t.Fatalf("fetch canon %q lacks the NUL prefix", k)
	}
	if a, b := fetchCanon([]uint32{12}), fetchCanon([]uint32{1, 2}); a == b {
		t.Fatal("distinct id lists share a canon")
	}
}
