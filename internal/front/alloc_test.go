package front

import (
	"testing"
	"time"
)

// newQuietFront builds a front that never flushes on its own during the
// measurement window: a huge batch target, a far deadline, and a fake
// clock that never advances, so the executor goroutine stays parked and
// contributes no background allocations.
func newQuietFront(t *testing.T) *Front {
	t.Helper()
	be := &fakeBackend{shards: 4}
	f, err := New(Config{
		BatchTarget: 1 << 20,
		MaxQueue:    1 << 20,
		Timeout:     time.Hour,
		Clock:       NewFakeClock(time.Unix(0, 0)),
		Tenants:     map[string]TenantConfig{"t": {Rate: 1e9, Burst: 1e9}},
	}, be)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

// TestAdmissionPathAllocs pins the zero-allocation guarantee of the
// admit path: in steady state (expression in the key cache, pooled
// flight and ticket available), Submit of a fresh flight followed by
// Cancel must not allocate.
func TestAdmissionPathAllocs(t *testing.T) {
	f := newQuietFront(t)
	req := Request{Expr: `"a" AND "b"`, K: 10, Tenant: "t"}
	// Warm the key cache, the free lists, and the map buckets.
	for i := 0; i < 8; i++ {
		tk, err := f.Submit(req)
		if err != nil {
			t.Fatalf("warmup Submit: %v", err)
		}
		tk.Cancel()
	}
	avg := testing.AllocsPerRun(1000, func() {
		tk, err := f.Submit(req)
		if err != nil {
			t.Fatal("admission failed")
		}
		tk.Cancel()
	})
	if avg != 0 {
		t.Fatalf("admission path allocates %v allocs/op, want 0", avg)
	}
}

// TestDedupAttachPathAllocs pins the zero-allocation guarantee of the
// dedup hit path: attaching to an existing in-flight twin and
// deregistering must not allocate.
func TestDedupAttachPathAllocs(t *testing.T) {
	f := newQuietFront(t)
	req := Request{Expr: `"a" AND "b"`, K: 10, Tenant: "t"}
	// Pin one flight with a waiter that never cancels, then warm the
	// ticket pool through attach/cancel cycles.
	anchor, err := f.Submit(req)
	if err != nil {
		t.Fatalf("anchor Submit: %v", err)
	}
	for i := 0; i < 8; i++ {
		tk, err := f.Submit(req)
		if err != nil {
			t.Fatalf("warmup Submit: %v", err)
		}
		if !tk.fl.pending {
			t.Fatal("anchor flight unexpectedly flushed")
		}
		tk.Cancel()
	}
	avg := testing.AllocsPerRun(1000, func() {
		tk, err := f.Submit(req)
		if err != nil {
			t.Fatal("attach failed")
		}
		tk.Cancel()
	})
	if avg != 0 {
		t.Fatalf("dedup hit path allocates %v allocs/op, want 0", avg)
	}
	f.Flush()
	if res := anchor.Wait(nil); res.Err != nil {
		t.Fatalf("anchor waiter: %v", res.Err)
	}
	if m := f.Metrics(); m.DedupHits < 1000 {
		t.Fatalf("measured loop did not hit the dedup path: %+v", m)
	}
}
