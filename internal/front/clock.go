package front

import (
	"sync"
	"time"
)

// Clock abstracts the front door's two time dependencies — reading "now"
// for deadlines and token-bucket refill, and scheduling the batch flush
// timer — so every batching and shedding decision the tier makes is a pure
// function of (config, arrival sequence, clock readings). Production uses
// the wall clock; tests drive a FakeClock and replay identical arrival
// sequences into byte-identical decision logs.
type Clock interface {
	Now() time.Time
	// AfterFunc schedules fn to run once after d, on an unspecified
	// goroutine, and returns a timer that can be retargeted.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is the retargetable flush timer handle; *time.Timer satisfies it.
type Timer interface {
	Reset(d time.Duration) bool
	Stop() bool
}

// wallClock is the production Clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) AfterFunc(d time.Duration, fn func()) Timer {
	return time.AfterFunc(d, fn)
}

// WallClock returns the production wall clock.
func WallClock() Clock { return wallClock{} }

// FakeClock is a deterministic Clock for tests: time moves only through
// Advance, which fires due timers inline on the calling goroutine in
// (deadline, registration) order. Replaying an arrival script against a
// FakeClock therefore reproduces the exact same flush/shed decisions.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	seq    int
	timers []*fakeTimer
}

// NewFakeClock returns a fake clock seeded at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake clock's current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc registers fn to fire when the clock advances past d from now.
func (c *FakeClock) AfterFunc(d time.Duration, fn func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	t := &fakeTimer{c: c, fn: fn, at: c.now.Add(d), seq: c.seq, active: true}
	c.timers = append(c.timers, t)
	return t
}

// Advance moves the clock forward by d, firing every due timer inline in
// (deadline, registration) order. Callbacks run without the clock's lock
// held, so they may read Now and retarget timers freely.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	end := c.now.Add(d)
	for {
		t := c.nextDueLocked(end)
		if t == nil {
			break
		}
		if t.at.After(c.now) {
			c.now = t.at
		}
		t.active = false
		fn := t.fn
		c.mu.Unlock()
		fn()
		c.mu.Lock()
	}
	c.now = end
	c.mu.Unlock()
}

// nextDueLocked picks the earliest active timer at or before end.
func (c *FakeClock) nextDueLocked(end time.Time) *fakeTimer {
	var best *fakeTimer
	for _, t := range c.timers {
		if !t.active || t.at.After(end) {
			continue
		}
		if best == nil || t.at.Before(best.at) || (t.at.Equal(best.at) && t.seq < best.seq) {
			best = t
		}
	}
	return best
}

type fakeTimer struct {
	c      *FakeClock
	fn     func()
	at     time.Time
	seq    int
	active bool
}

func (t *fakeTimer) Reset(d time.Duration) bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	was := t.active
	t.c.seq++
	t.at = t.c.now.Add(d)
	t.seq = t.c.seq
	t.active = true
	return was
}

func (t *fakeTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	was := t.active
	t.active = false
	return was
}
