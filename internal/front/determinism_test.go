package front

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// runScript drives one full front-door lifecycle against a fake clock:
// deadline flushes, size flushes, coalescing, token sheds, pressure
// degradation, and queue-full rejection. Completions are synchronized
// through the backend gate so every recorded decision — including the
// queue depth it was taken under — is a pure function of the script.
func runScript(t *testing.T) []byte {
	t.Helper()
	clk := NewFakeClock(time.Unix(0, 0))
	rec := &Recorder{}
	be := &fakeBackend{shards: 8, block: make(chan struct{}, 100)}
	f, err := New(Config{
		BatchTarget:      4,
		MaxQueue:         6,
		Timeout:          10 * time.Millisecond,
		FlushSlack:       2 * time.Millisecond,
		DegradeWatermark: 0.5,
		Tenants: map[string]TenantConfig{
			"a": {Rate: 100, Burst: 2},
			"b": {Rate: 1, Burst: 1},
		},
		Clock:    clk,
		Recorder: rec,
	}, be)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	var tickets []*Ticket
	submit := func(expr, tenant string, pri Priority) {
		tk, err := f.Submit(Request{Expr: expr, Tenant: tenant, Priority: pri})
		if err == nil {
			tickets = append(tickets, tk)
		}
	}
	// drain waits every outstanding ticket, emptying the system so the
	// next phase starts from a known queue depth.
	drain := func(batches int) {
		for i := 0; i < batches; i++ {
			be.block <- struct{}{}
		}
		for _, tk := range tickets {
			tk.Wait(context.Background())
		}
		tickets = tickets[:0]
	}

	// Phase 1: three arrivals coalesce to two flights; the deadline's
	// slack budget forces the flush.
	submit(`"x" AND "y"`, "a", PriNormal)
	submit(`"y" AND "x"`, "a", PriNormal) // attach
	submit(`"z"`, "b", PriNormal)
	clk.Advance(8 * time.Millisecond)
	drain(1)

	// Phase 2: the bucket for tenant b is empty (one token spent, 8 ms
	// of refill at 1/s is not a token): Low sheds, Normal degrades. The
	// two "q" degradations get different rotation masks, so they admit
	// separate flights; the fourth pending flight trips the size flush.
	submit(`"p"`, "b", PriLow)    // shed
	submit(`"q"`, "b", PriNormal) // degrade via tokens
	submit(`"q"`, "b", PriNormal) // degrade again, rotated mask
	submit(`"r"`, "a", PriNormal) // tenant a still has tokens: full
	submit(`"u"`, "a", PriHigh)   // tenant a bucket now empty: degrade; size flush
	drain(1)

	// Phase 3: fill to MaxQueue against a blocked backend, then reject.
	for _, e := range []string{`"c0"`, `"c1"`, `"c2"`, `"c3"`, `"c4"`, `"c5"`} {
		submit(e, "", PriNormal) // past the 0.5 watermark these degrade
	}
	submit(`"c6"`, "", PriNormal) // queue full: reject
	submit(`"c0"`, "", PriNormal) // attach still works at capacity
	f.Flush()
	drain(2)

	f.Close()
	return rec.Render()
}

// TestDecisionLogDeterminism replays one arrival script twice and
// requires byte-identical decision logs: every batch boundary, shed, and
// degradation lands identically run over run (and under -race).
func TestDecisionLogDeterminism(t *testing.T) {
	first := runScript(t)
	for run := 1; run < 3; run++ {
		if next := runScript(t); !bytes.Equal(first, next) {
			t.Fatalf("decision log diverged on run %d:\n--- run 0 ---\n%s--- run %d ---\n%s",
				run, first, run, next)
		}
	}
	// The script must actually exercise the whole decision surface.
	log := string(first)
	for _, kind := range []DecisionKind{
		DAdmit, DAttach, DDegradeTokens, DDegradePressure,
		DShedTokens, DRejectFull, DFlushSize, DFlushDeadline, DFlushManual,
	} {
		if !strings.Contains(log, " "+kind.String()+" ") {
			t.Errorf("script never produced a %q decision:\n%s", kind, log)
		}
	}
}

// TestBatchBoundariesDeterministic replays the script and checks the
// backend saw identical batch shapes both times.
func TestBatchBoundariesDeterministic(t *testing.T) {
	shapes := func() []int {
		clk := NewFakeClock(time.Unix(0, 0))
		be := &fakeBackend{shards: 4}
		f, err := New(Config{BatchTarget: 3, Timeout: 10 * time.Millisecond,
			FlushSlack: 2 * time.Millisecond, Clock: clk}, be)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var tickets []*Ticket
		for i, e := range []string{`"a"`, `"b"`, `"a"`, `"c"`, `"d"`, `"e"`, `"f"`} {
			tk, err := f.Submit(Request{Expr: e})
			if err != nil {
				t.Fatalf("Submit %d: %v", i, err)
			}
			tickets = append(tickets, tk)
			clk.Advance(time.Millisecond)
		}
		clk.Advance(20 * time.Millisecond)
		for _, tk := range tickets {
			tk.Wait(context.Background())
		}
		f.Close()
		return be.batchSizes()
	}
	a, b := shapes(), shapes()
	if len(a) != len(b) {
		t.Fatalf("batch counts diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("batch boundaries diverged: %v vs %v", a, b)
		}
	}
}
