package front

import (
	"context"
	"math/bits"
	"testing"
	"time"

	"boss/internal/corpus"
	"boss/internal/pool"
)

func newTestCluster(t *testing.T) *pool.Cluster {
	t.Helper()
	c := corpus.Generate(corpus.ClueWebLike(0.01))
	cl, err := pool.NewCluster(pool.DefaultConfig(), c, 4)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return cl
}

// TestClusterBackendMatchesDirectSearch verifies the front door is
// transparent: results served through admission, batching, and
// coalescing are identical to direct resilient cluster searches.
func TestClusterBackendMatchesDirectSearch(t *testing.T) {
	cl := newTestCluster(t)
	f, err := New(Config{BatchTarget: 4, Timeout: 50 * time.Millisecond}, NewClusterBackend(cl))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()

	exprs := []string{
		`"t1"`,
		`"t2" AND "t3"`,
		`"t3" AND "t2"`, // canonical twin of the previous
		`"t1" OR ("t4" AND "t5")`,
		`"t10"`,
	}
	const k = 50
	tickets := make([]*Ticket, len(exprs))
	for i, e := range exprs {
		tickets[i], err = f.Submit(Request{Expr: e, K: k})
		if err != nil {
			t.Fatalf("Submit(%q): %v", e, err)
		}
	}
	f.Flush()
	for i, e := range exprs {
		res := tickets[i].Wait(context.Background())
		if res.Err != nil {
			t.Fatalf("front search %q: %v", e, res.Err)
		}
		if res.Degraded != 0 {
			t.Fatalf("front search %q degraded: %064b", e, res.Degraded)
		}
		want, err := cl.SearchCtx(context.Background(), e, k)
		if err != nil {
			t.Fatalf("direct search %q: %v", e, err)
		}
		if len(res.TopK) != len(want.TopK) {
			t.Fatalf("%q: front returned %d hits, direct %d", e, len(res.TopK), len(want.TopK))
		}
		for j := range want.TopK {
			if res.TopK[j] != want.TopK[j] {
				t.Fatalf("%q hit %d: front %+v, direct %+v", e, j, res.TopK[j], want.TopK[j])
			}
		}
	}
	if m := f.Metrics(); m.DedupHits != 1 {
		t.Fatalf("metrics = %+v, want exactly one dedup hit", m)
	}
}

// TestClusterDegradedExecutesPartialShards verifies a degraded admission
// executes on the mask's shards only, reporting the shed shards in the
// Degraded bitmask with pool.ErrShardShed semantics (PR 5's partial-
// answer machinery), and that the partial answer is the merge of exactly
// the surviving shards.
func TestClusterDegradedExecutesPartialShards(t *testing.T) {
	cl := newTestCluster(t)
	f, err := New(Config{
		BatchTarget: 4,
		Timeout:     50 * time.Millisecond,
		// Zero-rate bucket: every admission for tenant z degrades.
		Tenants: map[string]TenantConfig{"z": {}},
	}, NewClusterBackend(cl))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()

	tk, err := f.Submit(Request{Expr: `"t1"`, K: 20, Tenant: "z"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	f.Flush()
	res := tk.Wait(context.Background())
	if res.Err != nil {
		t.Fatalf("degraded search: %v", res.Err)
	}
	if res.Degraded == 0 {
		t.Fatal("degraded admission produced a complete result")
	}
	if got, want := bits.OnesCount64(res.Degraded), 2; got != want {
		t.Fatalf("degraded shard count = %d, want %d (half of 4)", got, want)
	}
	// The partial answer must equal a direct masked execution.
	mask := (uint64(1)<<4 - 1) &^ res.Degraded
	br := cl.SearchBatchQueries(context.Background(),
		[]pool.BatchQuery{{Expr: `"t1"`, K: 20, ShardMask: mask}})
	if br.Errs[0] != nil {
		t.Fatalf("direct masked search: %v", br.Errs[0])
	}
	want := br.Results[0]
	if len(res.TopK) != len(want.TopK) {
		t.Fatalf("partial answer has %d hits, direct masked %d", len(res.TopK), len(want.TopK))
	}
	for j := range want.TopK {
		if res.TopK[j] != want.TopK[j] {
			t.Fatalf("hit %d: front %+v, masked direct %+v", j, res.TopK[j], want.TopK[j])
		}
	}
}
