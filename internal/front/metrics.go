package front

import (
	"strconv"
	"sync"
)

// Metrics counts the front door's admission, coalescing, and batching
// activity. All counters are cumulative since New.
type Metrics struct {
	// Submitted counts every Submit call that passed parsing, admitted
	// or not.
	Submitted uint64
	// Fetches counts the document-fetch requests among Submitted.
	Fetches uint64
	// Admitted counts flights created (distinct executions admitted).
	Admitted uint64
	// DedupHits counts requests that attached to an existing in-flight
	// execution instead of admitting a new one.
	DedupHits uint64
	// Degraded counts admissions downgraded to partial-shard execution
	// by token-bucket exhaustion or queue pressure.
	Degraded uint64
	// ShedTokens counts low-priority requests shed because their
	// tenant's token bucket was empty.
	ShedTokens uint64
	// RejectedFull counts requests rejected because the admission
	// queue was at capacity.
	RejectedFull uint64
	// Cancelled counts waiters that abandoned their ticket before
	// delivery.
	Cancelled uint64
	// Batches counts batches flushed to the backend; FlushSize,
	// FlushDeadline, and FlushManual break them down by trigger.
	Batches       uint64
	FlushSize     uint64
	FlushDeadline uint64
	FlushManual   uint64
	// Executed counts flights completed by the backend.
	Executed uint64
	// Hedged counts backend shard attempts that fired a hedged backup
	// replica, summed over completed flights (zero on single-copy
	// backends).
	Hedged uint64
}

// DecisionKind labels one admission/batching decision in the log.
type DecisionKind uint8

// Decision kinds, in the order the admission ladder takes them.
const (
	DAdmit           DecisionKind = iota // new flight admitted
	DAttach                              // coalesced onto an in-flight twin
	DDegradeTokens                       // degraded: tenant bucket empty
	DDegradePressure                     // degraded: queue past watermark
	DShedTokens                          // shed: bucket empty, low priority
	DRejectFull                          // rejected: queue at capacity
	DFlushSize                           // batch flushed: size target
	DFlushDeadline                       // batch flushed: deadline slack
	DFlushManual                         // batch flushed: Flush/Close
)

func (k DecisionKind) String() string {
	switch k {
	case DAdmit:
		return "admit"
	case DAttach:
		return "attach"
	case DDegradeTokens:
		return "degrade-tokens"
	case DDegradePressure:
		return "degrade-pressure"
	case DShedTokens:
		return "shed-tokens"
	case DRejectFull:
		return "reject-full"
	case DFlushSize:
		return "flush-size"
	case DFlushDeadline:
		return "flush-deadline"
	case DFlushManual:
		return "flush-manual"
	}
	return "unknown"
}

// Decision is one entry in the front door's decision log: what the
// admission ladder or the batch former decided, and the queue state it
// decided under. The sequence of decisions for a given arrival script is
// deterministic — the determinism tests replay a script twice and require
// byte-identical Render output.
type Decision struct {
	// Seq is the decision's position in the log.
	Seq int
	// Kind is what was decided.
	Kind DecisionKind
	// Tenant and Key identify the request (Key is the canonical query
	// form; empty for flush decisions).
	Tenant string
	Key    string
	// Queue is the number of flights in the system when the decision
	// was taken.
	Queue int
	// N is the batch size for flush decisions, zero otherwise.
	N int
}

// Recorder captures the decision log. Attach one via Config.Recorder in
// tests; production fronts run without one (recording allocates).
type Recorder struct {
	mu sync.Mutex
	ds []Decision
}

// record appends one decision, stamping its sequence number.
func (r *Recorder) record(d Decision) {
	r.mu.Lock()
	d.Seq = len(r.ds)
	r.ds = append(r.ds, d)
	r.mu.Unlock()
}

// Decisions snapshots the log.
func (r *Recorder) Decisions() []Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Decision(nil), r.ds...)
}

// Render serializes the log into a canonical byte form, one decision per
// line. Two runs that made identical decisions render identically.
func (r *Recorder) Render() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b []byte
	for _, d := range r.ds {
		b = strconv.AppendInt(b, int64(d.Seq), 10)
		b = append(b, ' ')
		b = append(b, d.Kind.String()...)
		b = append(b, " tenant="...)
		b = append(b, d.Tenant...)
		b = append(b, " key="...)
		b = append(b, d.Key...)
		b = append(b, " queue="...)
		b = strconv.AppendInt(b, int64(d.Queue), 10)
		b = append(b, " n="...)
		b = strconv.AppendInt(b, int64(d.N), 10)
		b = append(b, '\n')
	}
	return b
}
