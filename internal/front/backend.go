package front

import (
	"context"

	"boss/internal/pool"
	"boss/internal/topk"
)

// Out receives one query's results from a backend batch execution. The
// front door owns the out slice; backends fill entries in place so the
// flush path never allocates per-request result wrappers.
type Out struct {
	// TopK is the query's merged global ranking. The backend relinquishes
	// the slice; exactly one flight takes ownership.
	TopK []topk.Entry
	// Docs holds fetched document payloads for a FetchIDs query, aligned
	// with the id list. The backend relinquishes the slice.
	Docs []pool.FetchedDoc
	// Degraded is the bitmask of shards missing from TopK — shed by the
	// front door or failed in the backend (mirrors
	// pool.ClusterResult.Degraded). Zero means complete.
	Degraded uint64
	// Hedged counts shard attempts that fired a hedged backup replica
	// (mirrors pool.ClusterResult.Hedged; zero on single-copy backends).
	Hedged int
	// Err is the query's terminal error, if execution failed outright.
	Err error
}

// Backend executes a formed batch. Implementations must fill out[i] for
// every qs[i] before returning; out has exactly len(qs) entries.
type Backend interface {
	// Shards reports the backend's shard count, used to size degradation
	// masks. A single-device backend reports 1.
	Shards() int
	// ExecuteBatch runs every query and fills the caller-provided out
	// slice. It must not retain qs or out past the call.
	ExecuteBatch(ctx context.Context, qs []pool.BatchQuery, out []Out)
}

// ClusterBackend adapts a pool.Cluster to the Backend interface, passing
// per-query shard masks through so degraded admissions execute on a
// subset of shards.
type ClusterBackend struct {
	cl *pool.Cluster
}

// NewClusterBackend wraps a cluster for use as a front-door backend.
func NewClusterBackend(cl *pool.Cluster) *ClusterBackend {
	return &ClusterBackend{cl: cl}
}

// Shards reports the cluster's shard count.
func (b *ClusterBackend) Shards() int { return b.cl.Shards() }

// ExecuteBatch runs the batch through the cluster's resilient batch path.
func (b *ClusterBackend) ExecuteBatch(ctx context.Context, qs []pool.BatchQuery, out []Out) {
	br := b.cl.SearchBatchQueries(ctx, qs)
	for i := range qs {
		if err := br.Errs[i]; err != nil {
			out[i] = Out{Err: err}
			continue
		}
		res := br.Results[i]
		out[i] = Out{TopK: res.TopK, Docs: res.Docs, Degraded: res.Degraded, Hedged: res.Hedged}
	}
}
