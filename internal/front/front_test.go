package front

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"boss/internal/pool"
	"boss/internal/topk"
)

// fakeBackend answers every query with a fixed ranking and records the
// batches it executed. It is deterministic and allocation-free per query
// beyond what the test permits.
type fakeBackend struct {
	mu      sync.Mutex
	shards  int
	batches [][]pool.BatchQuery
	block   chan struct{} // non-nil: ExecuteBatch waits for a signal
}

func (b *fakeBackend) Shards() int { return b.shards }

func (b *fakeBackend) ExecuteBatch(ctx context.Context, qs []pool.BatchQuery, out []Out) {
	if b.block != nil {
		<-b.block
	}
	b.mu.Lock()
	cp := append([]pool.BatchQuery(nil), qs...)
	b.batches = append(b.batches, cp)
	b.mu.Unlock()
	for i, q := range qs {
		var deg uint64
		if q.ShardMask != 0 {
			bits := b.shards
			if bits > 64 {
				bits = 64
			}
			full := uint64(1)<<uint(bits) - 1
			deg = full &^ q.ShardMask
		}
		if len(q.FetchIDs) > 0 {
			docs := make([]pool.FetchedDoc, len(q.FetchIDs))
			for j, id := range q.FetchIDs {
				docs[j] = pool.FetchedDoc{DocID: id, Fields: [][]byte{[]byte("d"), {byte(id)}}}
			}
			out[i] = Out{Docs: docs, Degraded: deg}
			continue
		}
		out[i] = Out{TopK: []topk.Entry{{DocID: uint32(len(q.Expr)), Score: 1}}, Degraded: deg}
	}
}

func (b *fakeBackend) batchSizes() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	sizes := make([]int, len(b.batches))
	for i, qs := range b.batches {
		sizes[i] = len(qs)
	}
	return sizes
}

func start(t *testing.T, cfg Config, be Backend) *Front {
	t.Helper()
	f, err := New(cfg, be)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

func TestCoalescingFansOutOneExecution(t *testing.T) {
	be := &fakeBackend{shards: 4}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{BatchTarget: 64, Clock: clk}, be)

	// Equivalent expressions under DNF canonicalization must share a flight.
	exprs := []string{`"a" AND "b"`, `"b" AND "a"`, `"a" AND "b" AND "b"`}
	tickets := make([]*Ticket, len(exprs))
	for i, e := range exprs {
		tk, err := f.Submit(Request{Expr: e, K: 10})
		if err != nil {
			t.Fatalf("Submit(%q): %v", e, err)
		}
		tickets[i] = tk
	}
	f.Flush()
	for i, tk := range tickets {
		res := tk.Wait(context.Background())
		if res.Err != nil {
			t.Fatalf("waiter %d: %v", i, res.Err)
		}
		if len(res.TopK) != 1 {
			t.Fatalf("waiter %d: got %d results", i, len(res.TopK))
		}
		if wantDedup := i > 0; res.DedupHit != wantDedup {
			t.Errorf("waiter %d: DedupHit = %v, want %v", i, res.DedupHit, wantDedup)
		}
	}
	if sizes := be.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("batch sizes = %v, want one batch of one query", sizes)
	}
	m := f.Metrics()
	if m.Submitted != 3 || m.Admitted != 1 || m.DedupHits != 2 {
		t.Fatalf("metrics = %+v, want 3 submitted / 1 admitted / 2 dedup hits", m)
	}
}

func TestSizeTargetFlush(t *testing.T) {
	be := &fakeBackend{shards: 2}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{BatchTarget: 3, Clock: clk}, be)

	exprs := []string{`"a"`, `"b"`, `"c"`, `"d"`}
	tickets := make([]*Ticket, 0, len(exprs))
	for _, e := range exprs {
		tk, err := f.Submit(Request{Expr: e})
		if err != nil {
			t.Fatalf("Submit(%q): %v", e, err)
		}
		tickets = append(tickets, tk)
	}
	// The first three flushed at the size target; the fourth is pending.
	for _, tk := range tickets[:3] {
		if res := tk.Wait(context.Background()); res.Err != nil {
			t.Fatalf("size-flushed waiter: %v", res.Err)
		}
	}
	f.Flush()
	if res := tickets[3].Wait(context.Background()); res.Err != nil {
		t.Fatalf("manually flushed waiter: %v", res.Err)
	}
	if sizes := be.batchSizes(); len(sizes) != 2 || sizes[0] != 3 || sizes[1] != 1 {
		t.Fatalf("batch sizes = %v, want [3 1]", sizes)
	}
	m := f.Metrics()
	if m.FlushSize != 1 || m.FlushManual != 1 {
		t.Fatalf("flush metrics = %+v, want one size flush and one manual flush", m)
	}
}

func TestDeadlineSlackFlush(t *testing.T) {
	be := &fakeBackend{shards: 2}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{
		BatchTarget: 64,
		Timeout:     10 * time.Millisecond,
		FlushSlack:  2 * time.Millisecond,
		Clock:       clk,
	}, be)

	tk, err := f.Submit(Request{Expr: `"a"`})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Nothing flushes before deadline−slack...
	clk.Advance(7 * time.Millisecond)
	if sizes := be.batchSizes(); len(sizes) != 0 {
		t.Fatalf("premature flush: %v", sizes)
	}
	// ...and the slack point forces it.
	clk.Advance(time.Millisecond)
	if res := tk.Wait(context.Background()); res.Err != nil {
		t.Fatalf("deadline-flushed waiter: %v", res.Err)
	}
	if m := f.Metrics(); m.FlushDeadline != 1 {
		t.Fatalf("metrics = %+v, want one deadline flush", m)
	}
}

func TestUrgentAttachTightensFlushTimer(t *testing.T) {
	be := &fakeBackend{shards: 2}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{
		BatchTarget: 64,
		Timeout:     20 * time.Millisecond,
		FlushSlack:  2 * time.Millisecond,
		Clock:       clk,
	}, be)

	slow, err := f.Submit(Request{Expr: `"a"`})
	if err != nil {
		t.Fatalf("Submit slow: %v", err)
	}
	// A coalescing waiter with a much tighter deadline pulls the flush in.
	fast, err := f.Submit(Request{Expr: `"a"`, Deadline: clk.Now().Add(5 * time.Millisecond)})
	if err != nil {
		t.Fatalf("Submit fast: %v", err)
	}
	clk.Advance(3 * time.Millisecond)
	if res := fast.Wait(context.Background()); res.Err != nil || !res.DedupHit {
		t.Fatalf("fast waiter: err=%v dedup=%v", res.Err, res.DedupHit)
	}
	if res := slow.Wait(context.Background()); res.Err != nil {
		t.Fatalf("slow waiter: %v", res.Err)
	}
	if sizes := be.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("batch sizes = %v, want one coalesced batch", sizes)
	}
}

func TestOverloadRejectsWhenQueueFull(t *testing.T) {
	be := &fakeBackend{shards: 2, block: make(chan struct{})}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{BatchTarget: 1, MaxQueue: 2, DegradeWatermark: 1, Clock: clk}, be)
	defer close(be.block)

	// BatchTarget 1 flushes each admission immediately; the blocked
	// backend keeps them in-system, so the third distinct query finds
	// the queue full.
	t1, err := f.Submit(Request{Expr: `"a"`})
	if err != nil {
		t.Fatalf("Submit a: %v", err)
	}
	t2, err := f.Submit(Request{Expr: `"b"`})
	if err != nil {
		t.Fatalf("Submit b: %v", err)
	}
	if _, err := f.Submit(Request{Expr: `"c"`}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit c: err = %v, want ErrOverloaded", err)
	}
	// Coalescing onto an in-flight twin still works at capacity.
	t3, err := f.Submit(Request{Expr: `"a"`})
	if err != nil {
		t.Fatalf("Submit dup at capacity: %v", err)
	}
	be.block <- struct{}{}
	be.block <- struct{}{}
	for _, tk := range []*Ticket{t1, t2, t3} {
		if res := tk.Wait(context.Background()); res.Err != nil {
			t.Fatalf("waiter: %v", res.Err)
		}
	}
	if m := f.Metrics(); m.RejectedFull != 1 || m.DedupHits != 1 {
		t.Fatalf("metrics = %+v, want 1 rejection and 1 dedup hit", m)
	}
}

func TestTokenBucketShedsLowDegradesNormal(t *testing.T) {
	be := &fakeBackend{shards: 4}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{
		BatchTarget: 64,
		Clock:       clk,
		Tenants:     map[string]TenantConfig{"t": {Rate: 1, Burst: 1}},
	}, be)

	// First request drains the bucket.
	tk0, err := f.Submit(Request{Expr: `"a"`, Tenant: "t"})
	if err != nil {
		t.Fatalf("Submit 0: %v", err)
	}
	// Low priority with an empty bucket sheds.
	if _, err := f.Submit(Request{Expr: `"b"`, Tenant: "t", Priority: PriLow}); !errors.Is(err, ErrShed) {
		t.Fatalf("low-priority submit: err = %v, want ErrShed", err)
	}
	// Normal priority degrades to a partial-shard answer instead.
	tk1, err := f.Submit(Request{Expr: `"c"`, Tenant: "t"})
	if err != nil {
		t.Fatalf("normal-priority submit: %v", err)
	}
	// Refilled bucket admits in full again.
	clk.Advance(2 * time.Second)
	tk2, err := f.Submit(Request{Expr: `"d"`, Tenant: "t", Priority: PriLow})
	if err != nil {
		t.Fatalf("refilled submit: %v", err)
	}
	f.Flush()
	if res := tk0.Wait(context.Background()); res.Degraded != 0 {
		t.Fatalf("full admission degraded: %064b", res.Degraded)
	}
	if res := tk1.Wait(context.Background()); res.Degraded == 0 {
		t.Fatal("token-degraded admission executed in full")
	}
	if res := tk2.Wait(context.Background()); res.Degraded != 0 {
		t.Fatalf("refilled admission degraded: %064b", res.Degraded)
	}
	m := f.Metrics()
	if m.ShedTokens != 1 || m.Degraded != 1 {
		t.Fatalf("metrics = %+v, want 1 shed and 1 degraded", m)
	}
}

func TestPressureWatermarkDegradesAllButHigh(t *testing.T) {
	be := &fakeBackend{shards: 4}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{BatchTarget: 64, MaxQueue: 4, DegradeWatermark: 0.5, Clock: clk}, be)

	// Two full admissions reach the 0.5 × 4 watermark.
	ta, _ := f.Submit(Request{Expr: `"a"`})
	tb, _ := f.Submit(Request{Expr: `"b"`})
	// At the watermark, Normal degrades, High does not.
	tc, err := f.Submit(Request{Expr: `"c"`})
	if err != nil {
		t.Fatalf("Submit c: %v", err)
	}
	td, err := f.Submit(Request{Expr: `"d"`, Priority: PriHigh})
	if err != nil {
		t.Fatalf("Submit d: %v", err)
	}
	f.Flush()
	if res := ta.Wait(context.Background()); res.Degraded != 0 {
		t.Fatal("pre-watermark admission degraded")
	}
	if res := tb.Wait(context.Background()); res.Degraded != 0 {
		t.Fatal("pre-watermark admission degraded")
	}
	if res := tc.Wait(context.Background()); res.Degraded == 0 {
		t.Fatal("past-watermark Normal admission not degraded")
	}
	if res := td.Wait(context.Background()); res.Degraded != 0 {
		t.Fatal("High-priority admission degraded under pressure")
	}
}

func TestDegradeMaskRotates(t *testing.T) {
	be := &fakeBackend{shards: 4}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{
		BatchTarget: 64,
		Clock:       clk,
		// A zero-rate bucket forces every Normal admission to degrade.
		Tenants: map[string]TenantConfig{"z": {}},
	}, be)

	var masks []uint64
	for _, e := range []string{`"a"`, `"b"`, `"c"`, `"d"`} {
		tk, err := f.Submit(Request{Expr: e, Tenant: "z"})
		if err != nil {
			t.Fatalf("Submit(%q): %v", e, err)
		}
		f.Flush()
		res := tk.Wait(context.Background())
		masks = append(masks, res.Degraded)
	}
	if masks[0] == masks[1] {
		t.Fatalf("degrade masks did not rotate: %v", masks)
	}
	if masks[0] != masks[2] || masks[1] != masks[3] {
		t.Fatalf("rotation period wrong for 4 shards dropping 2: %v", masks)
	}
}

func TestSingleShardBackendCannotDegrade(t *testing.T) {
	be := &fakeBackend{shards: 1}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{
		BatchTarget: 64,
		Clock:       clk,
		Tenants:     map[string]TenantConfig{"z": {}},
	}, be)
	tk, err := f.Submit(Request{Expr: `"a"`, Tenant: "z"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	f.Flush()
	if res := tk.Wait(context.Background()); res.Degraded != 0 {
		t.Fatal("one-shard backend produced a degraded result")
	}
}

func TestCancelDeregistersWaiter(t *testing.T) {
	be := &fakeBackend{shards: 2}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{BatchTarget: 64, Clock: clk}, be)

	// Sole waiter cancelling withdraws the flight entirely.
	tk, err := f.Submit(Request{Expr: `"a"`})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res := tk.Cancel(); !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Cancel: err = %v, want context.Canceled", res.Err)
	}
	f.Flush()
	if sizes := be.batchSizes(); len(sizes) != 0 {
		t.Fatalf("withdrawn flight executed: %v", sizes)
	}

	// One of two coalesced waiters cancelling leaves the other served.
	t1, _ := f.Submit(Request{Expr: `"b"`})
	t2, _ := f.Submit(Request{Expr: `"b"`})
	t1.Cancel()
	f.Flush()
	if res := t2.Wait(context.Background()); res.Err != nil {
		t.Fatalf("surviving waiter: %v", res.Err)
	}
	if m := f.Metrics(); m.Cancelled != 2 {
		t.Fatalf("metrics = %+v, want 2 cancellations", m)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	be := &fakeBackend{shards: 2, block: make(chan struct{})}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{BatchTarget: 1, Clock: clk}, be)

	tk, err := f.Submit(Request{Expr: `"a"`})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res := tk.Wait(ctx); !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Wait under dead context: err = %v", res.Err)
	}
	close(be.block)
}

func TestSubmitAfterClose(t *testing.T) {
	be := &fakeBackend{shards: 2}
	f, err := New(Config{Clock: NewFakeClock(time.Unix(0, 0))}, be)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tk, err := f.Submit(Request{Expr: `"a"`})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	f.Close()
	// Close flushed and drained: the outstanding ticket is served.
	if res := tk.Wait(context.Background()); res.Err != nil {
		t.Fatalf("ticket across Close: %v", res.Err)
	}
	if _, err := f.Submit(Request{Expr: `"b"`}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	f.Close() // idempotent
}

func TestParseErrorSurfacesWithoutAdmission(t *testing.T) {
	be := &fakeBackend{shards: 2}
	clk := NewFakeClock(time.Unix(0, 0))
	f := start(t, Config{Clock: clk}, be)
	for i := 0; i < 2; i++ { // second hit exercises the cached negative entry
		if _, err := f.Submit(Request{Expr: `"a" AND`}); err == nil {
			t.Fatal("malformed expression admitted")
		}
	}
	if m := f.Metrics(); m.Submitted != 0 || m.Admitted != 0 {
		t.Fatalf("metrics = %+v, want nothing admitted", m)
	}
}
