// Package front is the front-door serving tier over the pooled-memory
// cluster: a bounded async admission queue feeding deadline-aware batch
// formation, singleflight deduplication of identical concurrent queries,
// and per-tenant token buckets with priority-aware load shedding that
// degrades to partial-shard answers before rejecting outright.
//
// The tier exists because the paper's device model is batch-hungry — the
// cluster's resilient batch path amortizes fan-out over many in-flight
// queries — while serving traffic arrives one request at a time. The
// front door converts the arrival stream into well-formed batches without
// letting any admitted request blow its deadline: requests accumulate
// until either the batch size target is reached or the earliest admitted
// deadline's slack budget forces a flush.
//
// Hot-path discipline: admission and dedup-attach run under one mutex
// with no allocation in steady state — waiter lists are intrusive and
// arena'd, the pending queue is an open-coded intrusive list, flights,
// tickets, and batches recycle through free lists, and the flush timer is
// a single persistent handle that is only ever Reset. Every batching and
// shedding decision is a pure function of (config, arrival sequence,
// clock readings), so tests drive a FakeClock and assert byte-identical
// decision logs across runs.
package front

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"boss/internal/pool"
	"boss/internal/query"
	"boss/internal/topk"
)

// Priority orders requests for the shedding ladder: when capacity runs
// short, Low sheds first and High degrades last. The zero value is
// Normal.
type Priority uint8

// Request priorities.
const (
	PriNormal Priority = iota
	PriLow
	PriHigh
)

// Typed admission errors.
var (
	// ErrShed reports that a low-priority request was shed because its
	// tenant's token bucket was empty. The request never executed.
	ErrShed = errors.New("front: request shed (tenant over rate)")
	// ErrOverloaded reports that the admission queue was at capacity.
	ErrOverloaded = errors.New("front: overloaded (admission queue full)")
	// ErrClosed reports a Submit after Close.
	ErrClosed = errors.New("front: closed")
	// ErrMixedRequest reports a request carrying both a query expression
	// and a document-fetch id list; a request is one or the other.
	ErrMixedRequest = errors.New("front: request carries both Expr and FetchIDs")
)

// TenantConfig is one tenant's token bucket: Rate tokens per second with
// a Burst ceiling. A request costs one token.
type TenantConfig struct {
	Rate  float64
	Burst float64
}

// Config tunes the front door. The zero value gets serving defaults.
type Config struct {
	// BatchTarget is the pending-flight count that triggers a size
	// flush (default 16).
	BatchTarget int
	// MaxQueue bounds flights in the system (pending + executing);
	// beyond it Submit returns ErrOverloaded (default 256).
	MaxQueue int
	// Timeout is the deadline budget assigned to requests that arrive
	// without one (default 10ms).
	Timeout time.Duration
	// FlushSlack is how far before the earliest admitted deadline the
	// pending batch is force-flushed (default 2ms).
	FlushSlack time.Duration
	// DegradeWatermark is the fill fraction of MaxQueue beyond which
	// non-High admissions degrade to partial-shard execution
	// (default 0.75; ≥ 1 disables pressure degradation).
	DegradeWatermark float64
	// DegradeShards is how many shards a degraded query drops
	// (default: half the backend's shards, at least one). A one-shard
	// backend cannot degrade; degraded admissions execute in full.
	DegradeShards int
	// Tenants configures per-tenant token buckets; tenants absent from
	// the map are not rate-limited.
	Tenants map[string]TenantConfig
	// Clock supplies time; nil uses the wall clock. Tests inject a
	// FakeClock to make batching decisions reproducible.
	Clock Clock
	// Recorder, when non-nil, captures the decision log (tests only:
	// recording allocates).
	Recorder *Recorder
}

// withDefaults resolves zero fields to serving defaults.
func (c Config) withDefaults() Config {
	if c.BatchTarget <= 0 {
		c.BatchTarget = 16
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Millisecond
	}
	if c.FlushSlack <= 0 {
		c.FlushSlack = 2 * time.Millisecond
	}
	if c.DegradeWatermark <= 0 {
		c.DegradeWatermark = 0.75
	}
	if c.Clock == nil {
		c.Clock = WallClock()
	}
	return c
}

// Request is one serving request: either a search (Expr) or a document
// fetch (FetchIDs), never both.
type Request struct {
	// Expr is the boolean query expression.
	Expr string
	// FetchIDs, when non-empty, makes this a document-fetch request:
	// the payloads for these docIDs are returned in Result.Docs. Fetches
	// ride the same admission ladder, dedup map, and batch former as
	// queries — concurrent identical id lists coalesce onto one
	// execution, and degraded admissions shed masked shards' documents.
	// Mutually exclusive with Expr.
	FetchIDs []uint32
	// K is the top-k depth (<= 0 uses the backend's default).
	K int
	// Tenant names the token bucket the request draws from; unknown
	// tenants are not rate-limited.
	Tenant string
	// Priority places the request on the shedding ladder.
	Priority Priority
	// Deadline is when the answer stops being useful (zero: now +
	// Config.Timeout). The batch former flushes early enough that the
	// earliest admitted deadline keeps FlushSlack of headroom.
	Deadline time.Time
}

// Result is one request's outcome.
type Result struct {
	// TopK is the merged ranking (shared by every coalesced waiter; do
	// not mutate).
	TopK []topk.Entry
	// Docs holds the fetched document payloads for a FetchIDs request,
	// aligned with the submitted id list (shared by every coalesced
	// waiter; do not mutate). Nil for search requests.
	Docs []pool.FetchedDoc
	// Degraded is the bitmask of shards missing from TopK, whether
	// shed by admission or failed in the backend. Zero means complete.
	Degraded uint64
	// Hedged counts backend shard attempts that fired a hedged backup
	// replica (zero on single-copy backends).
	Hedged int
	// DedupHit reports that this request coalesced onto another
	// in-flight execution instead of admitting its own.
	DedupHit bool
	// Err is the execution error, if any (also returned by Search).
	Err error
}

// flightKey identifies coalescible executions: same canonical DNF, same
// top-k depth, same shard mask. Requests differing only in term order,
// duplication, or distribution share a key.
type flightKey struct {
	canon string
	k     int
	mask  uint64
}

// Ticket is one waiter's handle on an admitted (or coalesced) request.
// Exactly one of Wait or Cancel must be called; both recycle the ticket.
type Ticket struct {
	f         *Front
	fl        *flight
	done      chan struct{} // cap 1, never closed; reused across leases
	res       Result
	dedup     bool
	delivered bool
	prev      *Ticket // intrusive waiter list on the flight
	next      *Ticket // doubles as the free-list link when pooled
}

// flight is one deduplicated execution: every concurrently-submitted
// request with the same flightKey attaches to the same flight, which
// executes once and fans its result out to all waiters.
type flight struct {
	key      flightKey
	expr     string   // representative expression to execute
	fetchIDs []uint32 // non-empty: a document-fetch flight (expr is empty)
	k        int
	mask     uint64
	deadline time.Time // earliest deadline among waiters
	waiters  *Ticket
	nwait    int
	pending  bool
	prev     *flight // intrusive pending queue
	next     *flight // doubles as the free-list link when pooled
}

// batch is one formed batch on its way to the backend.
type batch struct {
	qs      []pool.BatchQuery
	outs    []Out
	flights []*flight
	free    *batch
}

// keyEntry caches one expression's canonicalization so repeated
// submissions of the same expression never re-parse.
type keyEntry struct {
	canon string
	err   error
}

// bucket is one tenant's token bucket, refilled lazily off the clock.
type bucket struct {
	tokens float64
	rate   float64
	burst  float64
	last   time.Time
}

// Flush-trigger reasons.
const (
	flushSize = iota
	flushDeadline
	flushManual
)

// Front is the front-door serving tier. Construct with New; all methods
// are safe for concurrent use.
type Front struct {
	cfg       Config
	be        Backend
	clock     Clock
	rec       *Recorder
	shards    int
	dropN     int     // shards dropped per degraded admission
	watermark float64 // inSystem threshold for pressure degradation

	mu         sync.Mutex
	closed     bool
	keys       map[string]keyEntry
	flights    map[flightKey]*flight
	buckets    map[string]*bucket
	pendHead   *flight
	pendTail   *flight
	npending   int // flights in the pending queue
	inSystem   int // pending + batched-but-uncompleted flights
	timer      Timer
	timerAt    time.Time // zero: unarmed
	degradeRot int
	m          Metrics

	freeTickets *Ticket
	freeFlights *flight
	freeBatches *batch

	execCh chan *batch
	wg     sync.WaitGroup
}

// New builds a front door over the backend and starts its executor.
func New(cfg Config, be Backend) (*Front, error) {
	if be == nil {
		return nil, errors.New("front: nil backend")
	}
	cfg = cfg.withDefaults()
	f := &Front{
		cfg:     cfg,
		be:      be,
		clock:   cfg.Clock,
		rec:     cfg.Recorder,
		shards:  be.Shards(),
		keys:    make(map[string]keyEntry),
		flights: make(map[flightKey]*flight),
		buckets: make(map[string]*bucket, len(cfg.Tenants)),
		// Capacity invariant: each batch holds ≥ 1 flight and admission
		// bounds flights in the system at MaxQueue, so at most MaxQueue
		// batches can be queued — the flush path's send never blocks
		// while holding the mutex.
		execCh: make(chan *batch, cfg.MaxQueue+1),
	}
	bits := f.shards
	if bits > 64 {
		bits = 64
	}
	f.dropN = cfg.DegradeShards
	if f.dropN <= 0 {
		f.dropN = bits / 2
	}
	if f.dropN >= bits {
		f.dropN = bits - 1
	}
	f.watermark = cfg.DegradeWatermark * float64(cfg.MaxQueue)
	now := f.clock.Now()
	for name, tc := range cfg.Tenants {
		burst := tc.Burst
		if burst <= 0 {
			burst = tc.Rate
		}
		f.buckets[name] = &bucket{tokens: burst, rate: tc.Rate, burst: burst, last: now}
	}
	// One persistent timer, armed lazily; the hot path only ever Resets it.
	f.timer = f.clock.AfterFunc(time.Hour, f.onTimer)
	f.timer.Stop()
	f.wg.Add(1)
	go f.runExecutor()
	return f, nil
}

// Submit admits one request, returning a Ticket to wait on. It applies
// the full ladder in order: coalesce onto an identical in-flight twin
// (always free, bypasses admission); shed or degrade on an empty tenant
// bucket (Low sheds with ErrShed, others degrade); reject with
// ErrOverloaded at queue capacity; degrade non-High requests past the
// pressure watermark; otherwise admit a fresh flight.
//
//boss:hotpath one call per serving request; tickets, flights, and batches recycle through free lists, so steady state allocates nothing.
func (f *Front) Submit(req Request) (*Ticket, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	canon, err := f.canonRequestLocked(&req)
	if err != nil {
		f.mu.Unlock()
		return nil, err
	}
	f.m.Submitted++
	if len(req.FetchIDs) > 0 {
		f.m.Fetches++
	}
	k := req.K
	if k < 0 {
		k = 0
	}
	now := f.clock.Now()
	deadline := req.Deadline
	if deadline.IsZero() {
		deadline = now.Add(f.cfg.Timeout)
	}

	// Dedup first: attaching to a full-quality twin costs nothing, so it
	// is checked before any admission bound.
	key := flightKey{canon: canon, k: k}
	if fl := f.flights[key]; fl != nil {
		t := f.attachLocked(fl, deadline, true)
		f.recordLocked(DAttach, req.Tenant, canon, 0)
		f.mu.Unlock()
		return t, nil
	}

	// Admission ladder.
	degrade := false
	if b := f.buckets[req.Tenant]; b != nil && !takeToken(b, now) {
		if req.Priority == PriLow {
			f.m.ShedTokens++
			f.recordLocked(DShedTokens, req.Tenant, canon, 0)
			f.mu.Unlock()
			return nil, ErrShed
		}
		degrade = true
		f.recordLocked(DDegradeTokens, req.Tenant, canon, 0)
	}
	if f.inSystem >= f.cfg.MaxQueue {
		f.m.RejectedFull++
		f.recordLocked(DRejectFull, req.Tenant, canon, 0)
		f.mu.Unlock()
		return nil, ErrOverloaded
	}
	if !degrade && req.Priority != PriHigh && float64(f.inSystem) >= f.watermark {
		degrade = true
		f.recordLocked(DDegradePressure, req.Tenant, canon, 0)
	}
	var mask uint64
	if degrade {
		mask = f.degradeMaskLocked()
		if mask != 0 {
			// A degraded twin with the same rotation coalesces too.
			key.mask = mask
			if fl := f.flights[key]; fl != nil {
				t := f.attachLocked(fl, deadline, true)
				f.recordLocked(DAttach, req.Tenant, canon, 0)
				f.mu.Unlock()
				return t, nil
			}
		}
	}

	fl := f.getFlightLocked() //boss:escape-ok free-list miss inside inlined getFlightLocked
	fl.key = key
	fl.expr = req.Expr
	fl.fetchIDs = append(fl.fetchIDs[:0], req.FetchIDs...)
	fl.k = k
	fl.mask = mask
	fl.deadline = deadline
	f.flights[key] = fl
	f.pushPendingLocked(fl)
	f.m.Admitted++
	if mask != 0 {
		f.m.Degraded++
	}
	t := f.attachLocked(fl, deadline, false)
	f.recordLocked(DAdmit, req.Tenant, canon, 0)
	if f.npending >= f.cfg.BatchTarget {
		f.flushLocked(flushSize)
	} else {
		f.armTimerLocked(deadline)
	}
	f.mu.Unlock()
	return t, nil
}

// Search is Submit + Wait: it blocks until the result is delivered, the
// context dies, or admission fails.
func (f *Front) Search(ctx context.Context, req Request) (Result, error) {
	t, err := f.Submit(req)
	if err != nil {
		return Result{}, err
	}
	res := t.Wait(ctx)
	return res, res.Err
}

// Flush force-flushes the pending batch (examples and tests; production
// flushes ride the size target and the deadline timer).
func (f *Front) Flush() {
	f.mu.Lock()
	if !f.closed {
		f.flushLocked(flushManual)
	}
	f.mu.Unlock()
}

// Close flushes pending work, waits for the executor to drain, and
// rejects further Submits with ErrClosed. Waiters already holding
// tickets are all delivered.
func (f *Front) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.flushLocked(flushManual)
	f.closed = true
	f.mu.Unlock()
	close(f.execCh)
	f.wg.Wait()
	f.timer.Stop()
}

// Metrics snapshots the counters.
func (f *Front) Metrics() Metrics {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m
}

// Wait blocks until the result is delivered or ctx dies (nil ctx waits
// unconditionally). Either way the ticket is recycled; use it only once.
func (t *Ticket) Wait(ctx context.Context) Result {
	if ctx == nil {
		<-t.done
		res := t.res
		t.release()
		return res
	}
	select {
	case <-t.done:
		res := t.res
		t.release()
		return res
	case <-ctx.Done():
		return t.cancel(ctx.Err())
	}
}

// Cancel abandons the ticket without waiting. If delivery already won
// the race the delivered result is returned; otherwise the waiter is
// deregistered (the execution itself proceeds if other waiters remain,
// and is withdrawn entirely when the last pending waiter cancels) and
// the result carries context.Canceled.
func (t *Ticket) Cancel() Result {
	return t.cancel(context.Canceled)
}

// release recycles a delivered ticket.
func (t *Ticket) release() {
	f := t.f
	f.mu.Lock()
	f.putTicketLocked(t)
	f.mu.Unlock()
}

// cancel deregisters the waiter, racing against delivery under the
// front's mutex: if the flight completed first, the delivered result
// wins and cause is discarded.
func (t *Ticket) cancel(cause error) Result {
	f := t.f
	f.mu.Lock()
	if t.delivered {
		<-t.done // consume the signal so the channel pools empty
		res := t.res
		f.putTicketLocked(t)
		f.mu.Unlock()
		return res
	}
	fl := t.fl
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		fl.waiters = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	fl.nwait--
	if fl.nwait == 0 && fl.pending {
		// Last waiter gone before the batch formed: withdraw the flight.
		f.dropPendingLocked(fl)
	}
	f.m.Cancelled++
	f.putTicketLocked(t)
	f.mu.Unlock()
	return Result{Err: cause}
}

// canonLocked resolves an expression to its canonical DNF key through
// the key cache; only the first sighting of an expression parses.
//
//boss:hotpath one map probe per request in steady state.
func (f *Front) canonLocked(expr string) (string, error) {
	if e, ok := f.keys[expr]; ok {
		return e.canon, e.err
	}
	node, err := query.Parse(expr)
	if err != nil {
		f.keys[expr] = keyEntry{err: err}
		return "", err
	}
	canon := node.Canonical()
	f.keys[expr] = keyEntry{canon: canon}
	return canon, nil
}

// canonRequestLocked resolves a request to its coalescing key: the
// canonical DNF for queries, a rendered id-list key for fetches.
//
//boss:hotpath one branch plus canonLocked per search request; fetch keys are built by the outlined fetchCanon.
func (f *Front) canonRequestLocked(req *Request) (string, error) {
	if len(req.FetchIDs) == 0 {
		return f.canonLocked(req.Expr)
	}
	if req.Expr != "" {
		return "", ErrMixedRequest
	}
	return fetchCanon(req.FetchIDs), nil
}

// fetchCanon renders a fetch request's coalescing key. The leading NUL
// byte keeps fetch keys disjoint from every DNF canonicalization, so a
// fetch can never coalesce onto a query flight. Outlined from the
// zero-alloc admission path: fetch submissions pay one key allocation
// per call (id lists are poor map keys to intern), while the search
// path's steady state stays allocation-free.
func fetchCanon(ids []uint32) string {
	b := make([]byte, 0, 2+len(ids)*7)
	b = append(b, 0, 'f')
	for _, id := range ids {
		b = append(b, ':')
		b = strconv.AppendUint(b, uint64(id), 10)
	}
	return string(b)
}

// attachLocked links a ticket onto a flight's intrusive waiter list,
// tightening the flight's deadline (and the flush timer) if the new
// waiter is more urgent.
//
//boss:hotpath one call per admitted or coalesced request.
func (f *Front) attachLocked(fl *flight, deadline time.Time, dedup bool) *Ticket {
	t := f.getTicketLocked() //boss:escape-ok free-list miss inside inlined getTicketLocked
	t.fl = fl
	t.dedup = dedup
	t.prev = nil
	t.next = fl.waiters
	if fl.waiters != nil {
		fl.waiters.prev = t
	}
	fl.waiters = t
	fl.nwait++
	if dedup {
		f.m.DedupHits++
		if fl.pending && deadline.Before(fl.deadline) {
			fl.deadline = deadline
			f.armTimerLocked(deadline)
		}
	}
	return t
}

// pushPendingLocked appends a flight to the open-coded intrusive
// pending queue.
//
//boss:hotpath one call per admitted flight.
func (f *Front) pushPendingLocked(fl *flight) {
	fl.pending = true
	fl.prev = f.pendTail
	fl.next = nil
	if f.pendTail != nil {
		f.pendTail.next = fl
	} else {
		f.pendHead = fl
	}
	f.pendTail = fl
	f.npending++
	f.inSystem++
}

// dropPendingLocked withdraws a pending flight whose last waiter
// cancelled, unlinking it and recycling it.
func (f *Front) dropPendingLocked(fl *flight) {
	if fl.prev != nil {
		fl.prev.next = fl.next
	} else {
		f.pendHead = fl.next
	}
	if fl.next != nil {
		fl.next.prev = fl.prev
	} else {
		f.pendTail = fl.prev
	}
	fl.pending = false
	f.npending--
	f.inSystem--
	delete(f.flights, fl.key)
	f.putFlightLocked(fl)
}

// armTimerLocked retargets the flush timer at deadline−FlushSlack if
// that is earlier than the currently armed point.
//
//boss:hotpath one Reset per admission that tightens the deadline.
func (f *Front) armTimerLocked(deadline time.Time) {
	at := deadline.Add(-f.cfg.FlushSlack)
	if !f.timerAt.IsZero() && !at.Before(f.timerAt) {
		return
	}
	f.timerAt = at
	d := at.Sub(f.clock.Now())
	if d < 0 {
		d = 0
	}
	f.timer.Reset(d)
}

// onTimer is the flush timer's callback: ignore stale fires, re-arm
// early ones, flush otherwise.
func (f *Front) onTimer() {
	f.mu.Lock()
	if f.timerAt.IsZero() || f.closed {
		f.mu.Unlock()
		return
	}
	now := f.clock.Now()
	if now.Before(f.timerAt) {
		f.timer.Reset(f.timerAt.Sub(now))
		f.mu.Unlock()
		return
	}
	f.timerAt = time.Time{}
	if f.npending > 0 {
		f.flushLocked(flushDeadline)
	}
	f.mu.Unlock()
}

// flushLocked forms the pending flights into one batch and hands it to
// the executor. The send cannot block: see the execCh capacity invariant
// in New.
//
//boss:hotpath one call per formed batch; appends grow pooled batch scratch that amortizes to zero.
func (f *Front) flushLocked(reason int) {
	if f.npending == 0 {
		return
	}
	bt := f.getBatchLocked() //boss:escape-ok free-list miss inside inlined getBatchLocked
	for fl := f.pendHead; fl != nil; {
		next := fl.next
		fl.prev = nil
		fl.next = nil
		fl.pending = false
		bt.flights = append(bt.flights, fl)
		bt.qs = append(bt.qs, pool.BatchQuery{Expr: fl.expr, FetchIDs: fl.fetchIDs, K: fl.k, ShardMask: fl.mask})
		bt.outs = append(bt.outs, Out{})
		fl = next
	}
	f.pendHead = nil
	f.pendTail = nil
	n := f.npending
	f.npending = 0
	f.timerAt = time.Time{}
	f.m.Batches++
	switch reason {
	case flushSize:
		f.m.FlushSize++
		f.recordLocked(DFlushSize, "", "", n)
	case flushDeadline:
		f.m.FlushDeadline++
		f.recordLocked(DFlushDeadline, "", "", n)
	default:
		f.m.FlushManual++
		f.recordLocked(DFlushManual, "", "", n)
	}
	f.execCh <- bt
}

// runExecutor drains formed batches through the backend, one at a time,
// fanning each flight's result out to its waiters.
//
// flight's deadline is enforced per-ticket by the deadline watcher, not by
// cancelling the shared batch execution.
//
//boss:ctx-root the executor daemon outlives every request context; each
func (f *Front) runExecutor() {
	defer f.wg.Done()
	for bt := range f.execCh {
		f.be.ExecuteBatch(context.Background(), bt.qs, bt.outs)
		f.completeBatch(bt)
	}
}

// completeBatch delivers a finished batch and recycles it.
func (f *Front) completeBatch(bt *batch) {
	f.mu.Lock()
	for i, fl := range bt.flights {
		f.m.Hedged += uint64(bt.outs[i].Hedged)
		f.completeLocked(fl, &bt.outs[i])
		bt.flights[i] = nil
	}
	f.m.Executed += uint64(len(bt.qs))
	bt.flights = bt.flights[:0]
	bt.qs = bt.qs[:0]
	bt.outs = bt.outs[:0]
	f.putBatchLocked(bt)
	f.mu.Unlock()
}

// completeLocked fans one flight's result out to every waiter and
// recycles the flight. Each ticket's cap-1 channel receives exactly one
// signal; the channel is never closed so tickets pool cleanly.
//
//boss:hotpath one call per completed flight.
func (f *Front) completeLocked(fl *flight, out *Out) {
	delete(f.flights, fl.key)
	f.inSystem--
	for t := fl.waiters; t != nil; {
		next := t.next
		t.res.TopK = out.TopK
		t.res.Docs = out.Docs
		t.res.Degraded = out.Degraded
		t.res.Hedged = out.Hedged
		t.res.Err = out.Err
		t.res.DedupHit = t.dedup
		t.delivered = true
		t.fl = nil
		t.prev = nil
		t.next = nil
		t.done <- struct{}{}
		t = next
	}
	fl.waiters = nil
	fl.nwait = 0
	f.putFlightLocked(fl)
}

// takeToken lazily refills the bucket from elapsed clock time and takes
// one token if available.
//
//boss:hotpath one call per rate-limited admission.
func takeToken(b *bucket, now time.Time) bool {
	if b.rate > 0 {
		dt := now.Sub(b.last).Seconds()
		if dt > 0 {
			b.tokens += dt * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// degradeMaskLocked computes the next degraded shard mask: all shards
// except dropN of them, rotating which shards are dropped so degraded
// load spreads evenly. Returns zero (execute in full) when the backend
// cannot degrade.
func (f *Front) degradeMaskLocked() uint64 {
	bits := f.shards
	if bits > 64 {
		bits = 64
	}
	if bits <= 1 || f.dropN <= 0 {
		return 0
	}
	var full uint64
	if bits == 64 {
		full = ^uint64(0)
	} else {
		full = uint64(1)<<uint(bits) - 1
	}
	mask := full
	for i := 0; i < f.dropN; i++ {
		mask &^= 1 << uint((f.degradeRot+i)%bits)
	}
	f.degradeRot = (f.degradeRot + f.dropN) % bits
	return mask
}

// recordLocked appends to the decision log when a Recorder is attached
// (outlined from the hot path; nil-recorder fronts pay one branch).
func (f *Front) recordLocked(kind DecisionKind, tenant, key string, n int) {
	if f.rec == nil {
		return
	}
	f.rec.record(Decision{Kind: kind, Tenant: tenant, Key: key, Queue: f.inSystem, N: n})
}

// --- free lists ---

// getTicketLocked leases a ticket from the arena (allocating only when
// the free list is dry).
//
//boss:hotpath one call per request.
func (f *Front) getTicketLocked() *Ticket {
	t := f.freeTickets
	if t == nil {
		return &Ticket{f: f, done: make(chan struct{}, 1)} //boss:escape-ok free-list miss: tickets recycle through freeTickets
	}
	f.freeTickets = t.next
	t.next = nil
	return t
}

// putTicketLocked returns a ticket to the arena, dropping result
// references so pooled tickets do not pin slices.
//
//boss:hotpath one call per delivered or cancelled request.
func (f *Front) putTicketLocked(t *Ticket) {
	t.res = Result{}
	t.fl = nil
	t.dedup = false
	t.delivered = false
	t.prev = nil
	t.next = f.freeTickets
	f.freeTickets = t
}

// getFlightLocked leases a flight from the arena.
//
//boss:hotpath one call per admitted flight.
func (f *Front) getFlightLocked() *flight {
	fl := f.freeFlights
	if fl == nil {
		return &flight{} //boss:escape-ok free-list miss: flights recycle through freeFlights
	}
	f.freeFlights = fl.next
	fl.next = nil
	return fl
}

// putFlightLocked returns a flight to the arena.
//
//boss:hotpath one call per completed or withdrawn flight.
func (f *Front) putFlightLocked(fl *flight) {
	fl.key = flightKey{}
	fl.expr = ""
	fl.fetchIDs = fl.fetchIDs[:0]
	fl.k = 0
	fl.mask = 0
	fl.deadline = time.Time{}
	fl.waiters = nil
	fl.nwait = 0
	fl.pending = false
	fl.prev = nil
	fl.next = f.freeFlights
	f.freeFlights = fl
}

// getBatchLocked leases a batch (its slices keep their capacity across
// leases, so formation amortizes to zero allocation).
func (f *Front) getBatchLocked() *batch {
	bt := f.freeBatches
	if bt == nil {
		return &batch{}
	}
	f.freeBatches = bt.free
	bt.free = nil
	return bt
}

// putBatchLocked returns a drained batch to the arena.
func (f *Front) putBatchLocked(bt *batch) {
	bt.free = f.freeBatches
	f.freeBatches = bt
}
