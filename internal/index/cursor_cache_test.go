package index

import (
	"testing"

	"boss/internal/cache"
)

// TestCursorCachedEquivalence walks and seeks every posting list with a
// plain cursor and a cached cursor (twice, so the second pass is all hits)
// and requires identical postings at every step.
func TestCursorCachedEquivalence(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	ch := cache.New(8 << 20)

	terms := idx.Terms()
	if len(terms) > 60 {
		terms = terms[:60]
	}
	for pass := 0; pass < 2; pass++ {
		for _, term := range terms {
			pl := idx.Lists[term]
			a := NewCursor(idx, pl)
			b := NewCursorCached(idx, pl, ch)
			step := 0
			for a.Valid() {
				if !b.Valid() {
					t.Fatalf("pass %d term %s step %d: cached cursor exhausted early", pass, term, step)
				}
				if a.Doc() != b.Doc() || a.TF() != b.TF() {
					t.Fatalf("pass %d term %s step %d: (%d,%d) != cached (%d,%d)",
						pass, term, step, a.Doc(), a.TF(), b.Doc(), b.TF())
				}
				a.Next()
				b.Next()
				step++
			}
			if b.Valid() {
				t.Fatalf("pass %d term %s: cached cursor has extra postings", pass, term)
			}
			a.Release()
			b.Release()

			// Seek path: jump by strides through the list on both cursors.
			a = NewCursor(idx, pl)
			b = NewCursorCached(idx, pl, ch)
			last := pl.Blocks[len(pl.Blocks)-1].LastDoc
			for target := uint32(0); target <= last; target += last/7 + 1 {
				okA := a.SeekGEQ(target)
				okB := b.SeekGEQ(target)
				if okA != okB {
					t.Fatalf("pass %d term %s seek %d: ok %v != cached %v", pass, term, target, okA, okB)
				}
				if okA && (a.Doc() != b.Doc() || a.TF() != b.TF()) {
					t.Fatalf("pass %d term %s seek %d: (%d,%d) != cached (%d,%d)",
						pass, term, target, a.Doc(), a.TF(), b.Doc(), b.TF())
				}
			}
			a.Release()
			b.Release()
		}
	}
	st := ch.Stats()
	if st.Hits == 0 {
		t.Fatal("second pass produced no cache hits")
	}
	if st.PinnedEntries != 0 {
		t.Fatalf("%d entries still pinned after all cursors released", st.PinnedEntries)
	}
}

// TestCursorCachedNilCache checks the nil-cache constructor degrades to the
// pooled-buffer cursor.
func TestCursorCachedNilCache(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	pl := idx.Lists[idx.Terms()[0]]
	cur := NewCursorCached(idx, pl, nil)
	if cur.cache != nil || cur.buf == nil {
		t.Fatal("nil cache should produce a plain pooled-buffer cursor")
	}
	cur.Release()
}
