// Package index implements the inverted index as organized by the BOSS
// paper (Section IV-A): per-term posting lists divided into blocks of 128
// (docID, tf) postings, docIDs delta-encoded and compressed per-list with
// the best ("hybrid") scheme, and per-block metadata carrying the first and
// last docID, the block's maximum term-score, the compressed-data offset,
// and decompression parameters — 19 bytes per block. Per-document BM25
// normalizers are precomputed at build time (+4 bytes per document) so a
// term score costs three arithmetic operations at query time.
package index

import (
	"fmt"
	"hash/crc32"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"boss/internal/compress"
	"boss/internal/corpus"
	"boss/internal/score"
)

// DefaultBlockSize is the paper's block length (128 values).
const DefaultBlockSize = 128

// BlockMetaBytes is the serialized metadata size per block (Section IV-A:
// 4B first docID + 4B last docID + 4B max term-score + 4B offset + 3B of
// packed count/bit-width/exception fields).
const BlockMetaBytes = 19

// DocNormBytes is the per-document scoring metadata size (Section IV-C,
// Scoring Module).
const DocNormBytes = 4

// BlockMeta is the per-block skip/decompression record.
type BlockMeta struct {
	FirstDoc uint32  // first docID in the block (uncompressed)
	LastDoc  uint32  // last docID in the block (uncompressed)
	MaxScore float64 // maximum term-score of any posting in the block
	Offset   uint32  // byte offset of the compressed payload within the list
	Length   uint32  // byte length of the compressed payload
	Count    uint16  // number of postings in the block (≤ block size)
	// Checksum is the CRC32-C of the compressed payload, computed at
	// build time and verified on fetch so media corruption is detected
	// instead of silently scored. Zero means "unchecksummed" (lists
	// hand-built before PR 5, e.g. in tests). It is not part of the
	// paper's 19-byte metadata budget: SCM devices keep block CRCs in
	// the per-line ECC/spare area, so BlockMetaBytes is unchanged.
	Checksum uint32
	// MaxImpact is the largest 8-bit quantized impact code of any posting
	// in the block (impact-enabled lists only; see BuildOptions.Impacts).
	// The MaxScore operator skips whole blocks on it the way BlockMaxWAND
	// skips on MaxScore.
	MaxImpact uint8
}

// PostingList is one term's compressed posting list.
type PostingList struct {
	Term     string
	Scheme   compress.Scheme // concrete scheme chosen for this list
	DF       int             // document frequency
	IDF      float64         // BM25 idf, precomputed at build time
	MaxScore float64         // list-wide maximum term-score (WAND bound)
	Blocks   []BlockMeta
	Data     []byte // concatenated compressed block payloads

	// ImpactStep is the per-list Q16.16 dequantization step of the 8-bit
	// impact codes stored at each block payload's tail (listMax/255);
	// zero means the list carries no impacts. MaxImpact is the list-wide
	// maximum code, the MaxScore operator's per-term upper bound.
	ImpactStep score.Fixed
	MaxImpact  uint8

	// BaseAddr is the list's placement in the simulated memory node's
	// address space, assigned by the builder.
	BaseAddr uint64

	// codec is the Scheme's codec, resolved once at build/load time so the
	// per-block decode path skips the scheme dispatch.
	codec compress.Codec

	// id is the list's process-wide identity, used as the decoded-block
	// cache key so the cache package needs no reference to index types.
	// Assigned at build/load time; lazily for hand-constructed test lists.
	id atomic.Uint64
}

// nextListID hands out process-wide posting-list identities (0 is reserved
// for "unassigned").
var nextListID atomic.Uint64

// ID returns the list's process-unique identity for cache keying.
func (pl *PostingList) ID() uint64 {
	if id := pl.id.Load(); id != 0 {
		return id
	}
	pl.id.CompareAndSwap(0, nextListID.Add(1))
	return pl.id.Load()
}

// Codec returns the list's codec, resolving (and caching) it on first use.
// Lists built by Build or read by ReadIndex arrive with the codec set; the
// lazy path only serves hand-constructed lists in tests.
func (pl *PostingList) Codec() compress.Codec {
	if pl.codec == nil {
		pl.codec = compress.ForScheme(pl.Scheme)
	}
	return pl.codec
}

// BlockAddr reports the simulated memory address of block b's payload.
func (pl *PostingList) BlockAddr(b int) uint64 {
	return pl.BaseAddr + uint64(pl.Blocks[b].Offset)
}

// CompressedBytes reports the total payload size of the list.
func (pl *PostingList) CompressedBytes() int { return len(pl.Data) }

// MetadataBytes reports the size of the list's block metadata as laid out
// by the paper (19 B per block).
func (pl *PostingList) MetadataBytes() int { return BlockMetaBytes * len(pl.Blocks) }

// Index is a searchable inverted index over one shard.
type Index struct {
	Params    score.Params
	NumDocs   int
	AvgDocLen float64
	// DocNorms[d] is the precomputed BM25 normalizer of document d.
	DocNorms []float64
	// Lists maps term -> posting list.
	Lists map[string]*PostingList
	// NormBaseAddr is the placement of the per-document norm array in the
	// simulated address space.
	NormBaseAddr uint64
	// TotalBytes is the total simulated footprint (payloads + metadata +
	// norms).
	TotalBytes uint64

	// statsDocs and globalDF override collection statistics for sharded
	// indexes (zero/nil means use the local shard's own statistics).
	statsDocs int
	globalDF  map[string]int
}

// GlobalStats carries collection-wide statistics for sharded deployments:
// each leaf node indexes only its docID interval but must score with global
// document counts so merged top-k results rank exactly as a single index
// would (Section II-B's root/leaf architecture).
type GlobalStats struct {
	// NumDocs is the collection-wide document count.
	NumDocs int
	// AvgDocLen is the collection-wide average document length.
	AvgDocLen float64
	// DF maps each term to its collection-wide document frequency.
	DF map[string]int
}

// BuildOptions configures index construction.
type BuildOptions struct {
	// Scheme selects the compression scheme; compress.SchemeHybrid (the
	// default zero value is BP, so set explicitly) picks the best scheme
	// per posting list as the paper's hybrid approach does.
	Scheme compress.Scheme
	// BlockSize overrides the posting-block length (default 128).
	BlockSize int
	// Params are the BM25 parameters (default k1=1.2, b=0.75 if zero).
	Params score.Params
	// Global, when non-nil, supplies collection-wide statistics for IDF
	// and length normalization (sharded indexes).
	Global *GlobalStats
	// Impacts stores each posting's 8-bit quantized term score at the
	// block payload's tail (after the tf stream), plus per-block and
	// per-list max-impact metadata — the Q7 "sparse-dot" family's
	// precomputed weights. Off by default: it grows every block payload
	// by Count bytes, so only impact-serving indexes opt in.
	Impacts bool
}

// Build constructs an index from a generated corpus.
func Build(c *corpus.Corpus, opts BuildOptions) *Index {
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	if opts.BlockSize > 1<<16 {
		panic("index: block size exceeds metadata range")
	}
	if opts.Params == (score.Params{}) {
		opts.Params = score.DefaultParams()
	}
	statsDocs := c.Spec.NumDocs
	avgdl := c.AvgDocLen
	if opts.Global != nil {
		statsDocs = opts.Global.NumDocs
		avgdl = opts.Global.AvgDocLen
	}
	idx := &Index{
		Params:    opts.Params,
		NumDocs:   c.Spec.NumDocs,
		AvgDocLen: avgdl,
		statsDocs: statsDocs,
		globalDF:  nil,
		DocNorms:  make([]float64, c.Spec.NumDocs),
		Lists:     make(map[string]*PostingList, len(c.Terms)),
	}
	if opts.Global != nil {
		idx.globalDF = opts.Global.DF
	}
	for d, l := range c.DocLens {
		dl := l
		if dl == 0 {
			dl = 1 // empty docs still need a sane norm
		}
		idx.DocNorms[d] = opts.Params.DocNorm(dl, avgdl)
	}

	// Posting lists are independent once the document norms exist; build
	// them in parallel, then lay out addresses deterministically in term
	// order.
	built := make([]*PostingList, len(c.Terms))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(c.Terms) {
		workers = len(c.Terms)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				tp := &c.Terms[i]
				built[i] = buildList(idx, tp.Term, tp.Postings, opts)
			}
		}()
	}
	for i := range c.Terms {
		next <- i
	}
	close(next)
	wg.Wait()

	var addr uint64
	for i, pl := range built {
		pl.id.Store(nextListID.Add(1))
		pl.BaseAddr = addr
		addr += uint64(len(pl.Data)) + uint64(pl.MetadataBytes())
		idx.Lists[c.Terms[i].Term] = pl
	}
	idx.NormBaseAddr = addr
	idx.TotalBytes = addr + uint64(idx.NumDocs*DocNormBytes)
	return idx
}

// buildList compresses one posting list into blocks.
func buildList(idx *Index, term string, postings []corpus.Posting, opts BuildOptions) *PostingList {
	df := len(postings)
	if idx.globalDF != nil {
		if g, ok := idx.globalDF[term]; ok {
			df = g
		}
	}
	statsDocs := idx.statsDocs
	if statsDocs == 0 {
		statsDocs = idx.NumDocs
	}
	pl := &PostingList{
		Term: term,
		DF:   len(postings),
		IDF:  score.IDF(statsDocs, df),
	}

	// Hybrid selection considers the whole list's delta stream.
	scheme := opts.Scheme
	if scheme == compress.SchemeHybrid {
		deltas := make([]uint32, 0, len(postings)*2)
		prev := uint32(0)
		for _, p := range postings {
			deltas = append(deltas, p.DocID-prev, p.TF)
			prev = p.DocID
		}
		scheme, _ = compress.ChooseBest(deltas, nil)
	}
	pl.Scheme = scheme
	pl.codec = compress.ForScheme(scheme)
	codec := pl.codec

	// Impact quantization is scaled to the list-wide maximum score, so an
	// impact-enabled list needs every posting's score before the first
	// block is laid out.
	var scores []float64
	listMax := 0.0
	if opts.Impacts {
		scores = make([]float64, len(postings))
		for i, p := range postings {
			s := idx.Params.TermScore(pl.IDF, p.TF, idx.DocNorms[p.DocID])
			scores[i] = s
			if s > listMax {
				listMax = s
			}
		}
		pl.ImpactStep = score.ImpactStep(listMax)
	}

	bs := opts.BlockSize
	docBuf := make([]uint32, 0, bs)
	tfBuf := make([]uint32, 0, bs)
	for start := 0; start < len(postings); start += bs {
		end := start + bs
		if end > len(postings) {
			end = len(postings)
		}
		blk := postings[start:end]
		docBuf = docBuf[:0]
		tfBuf = tfBuf[:0]
		first := blk[0].DocID
		prev := first
		maxScore := 0.0
		for _, p := range blk {
			docBuf = append(docBuf, p.DocID-prev) // first delta is 0
			prev = p.DocID
			tfBuf = append(tfBuf, p.TF)
			s := idx.Params.TermScore(pl.IDF, p.TF, idx.DocNorms[p.DocID])
			if s > maxScore {
				maxScore = s
			}
		}
		offset := uint32(len(pl.Data))
		pl.Data = codec.Encode(pl.Data, docBuf)
		pl.Data = codec.Encode(pl.Data, tfBuf)
		// Impact codes ride at the payload tail, after the tf stream:
		// decoders extract exactly Count values per stream and ignore
		// trailing bytes, so the placement needs no codec changes, and
		// because Length (and therefore the block's simulated read and
		// its CRC) covers the tail, the existing fetch charges and
		// integrity checks extend to impacts for free.
		maxImpact := uint8(0)
		if opts.Impacts {
			for i := range blk {
				q := score.QuantizeImpact(scores[start+i], listMax)
				if q > maxImpact {
					maxImpact = q
				}
				pl.Data = append(pl.Data, q)
			}
			if maxImpact > pl.MaxImpact {
				pl.MaxImpact = maxImpact
			}
		}
		pl.Blocks = append(pl.Blocks, BlockMeta{
			FirstDoc:  first,
			LastDoc:   blk[len(blk)-1].DocID,
			MaxScore:  maxScore,
			Offset:    offset,
			Length:    uint32(len(pl.Data)) - offset,
			Count:     uint16(len(blk)),
			Checksum:  ChecksumPayload(pl.Data[offset:]),
			MaxImpact: maxImpact,
		})
		if maxScore > pl.MaxScore {
			pl.MaxScore = maxScore
		}
	}
	return pl
}

// castagnoli is the CRC32-C polynomial table used for block integrity
// (the same polynomial SCM/NVMe devices use for end-to-end protection).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumPayload computes the CRC32-C integrity checksum of a block
// payload. Allocation-free, so fetch paths may call it inline.
func ChecksumPayload(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// VerifyBlock recomputes block b's payload checksum, reporting whether
// the payload is intact. Unchecksummed blocks (Checksum == 0) always
// verify.
func (pl *PostingList) VerifyBlock(b int) bool {
	meta := pl.Blocks[b]
	if meta.Checksum == 0 {
		return true
	}
	return ChecksumPayload(pl.Data[meta.Offset:meta.Offset+meta.Length]) == meta.Checksum
}

// HasImpacts reports whether the list carries 8-bit quantized impacts
// (built with BuildOptions.Impacts).
func (pl *PostingList) HasImpacts() bool { return pl.ImpactStep != 0 }

// BlockImpacts returns block b's impact codes: the Count bytes at the
// block payload's tail, one code per posting in docID order. Only valid
// on impact-enabled lists.
//
//boss:hotpath BlockImpacts aliases the list payload; zero-copy.
func (pl *PostingList) BlockImpacts(b int) []byte {
	meta := &pl.Blocks[b]
	end := meta.Offset + meta.Length
	return pl.Data[end-uint32(meta.Count) : end]
}

// List returns the posting list for term, or nil if the term is not
// indexed.
func (idx *Index) List(term string) *PostingList { return idx.Lists[term] }

// ReplicaView returns a replica of the index for R-way replicated
// serving. The immutable built artifacts — compressed posting payloads,
// block metadata, document norms, statistics — are shared with the
// receiver, but every posting list carries a fresh process-wide
// identity. Replicas therefore key a shared decoded-block cache
// disjointly: one replica's clean decode can never mask another
// replica's fault draws, which is what makes replicas independently
// faultable while staying byte-identical in content and costing no
// rebuild.
func (idx *Index) ReplicaView() *Index {
	v := &Index{
		Params:       idx.Params,
		NumDocs:      idx.NumDocs,
		AvgDocLen:    idx.AvgDocLen,
		DocNorms:     idx.DocNorms,
		Lists:        make(map[string]*PostingList, len(idx.Lists)),
		NormBaseAddr: idx.NormBaseAddr,
		TotalBytes:   idx.TotalBytes,
		statsDocs:    idx.statsDocs,
		globalDF:     idx.globalDF,
	}
	for term, pl := range idx.Lists {
		np := &PostingList{
			Term:       pl.Term,
			Scheme:     pl.Scheme,
			DF:         pl.DF,
			IDF:        pl.IDF,
			MaxScore:   pl.MaxScore,
			Blocks:     pl.Blocks,
			Data:       pl.Data,
			ImpactStep: pl.ImpactStep,
			MaxImpact:  pl.MaxImpact,
			BaseAddr:   pl.BaseAddr,
			codec:      pl.codec,
		}
		np.id.Store(nextListID.Add(1))
		v.Lists[term] = np
	}
	return v
}

// MustList returns the posting list for term, panicking if absent.
func (idx *Index) MustList(term string) *PostingList {
	pl := idx.Lists[term]
	if pl == nil {
		panic(fmt.Sprintf("index: term %q not indexed", term))
	}
	return pl
}

// DecodeBlock decodes block b of list pl, appending docIDs and term
// frequencies to the provided buffers (which may be nil) and returning the
// extended slices.
func (idx *Index) DecodeBlock(pl *PostingList, b int, docs, tfs []uint32) ([]uint32, []uint32) {
	meta := pl.Blocks[b]
	codec := pl.Codec()
	payload := pl.Data[meta.Offset : meta.Offset+meta.Length]
	n := int(meta.Count)
	startDocs := len(docs)
	docs, used := codec.Decode(docs, payload, n)
	tfs, _ = codec.Decode(tfs, payload[used:], n)
	compress.DeltaDecode(docs[startDocs:], meta.FirstDoc)
	return docs, tfs
}

// TermScore computes the BM25 term score of (docID, tf) under list pl.
func (idx *Index) TermScore(pl *PostingList, docID, tf uint32) float64 {
	return idx.Params.TermScore(pl.IDF, tf, idx.DocNorms[docID])
}

// Terms returns all indexed terms in sorted order.
func (idx *Index) Terms() []string {
	terms := make([]string, 0, len(idx.Lists))
	for t := range idx.Lists {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// SchemeHistogram reports how many posting lists use each concrete scheme —
// the "hybrid" choice distribution (cmd/indexstat prints this).
func (idx *Index) SchemeHistogram() map[compress.Scheme]int {
	h := make(map[compress.Scheme]int)
	for _, pl := range idx.Lists {
		h[pl.Scheme]++
	}
	return h
}

// Stats summarizes the index footprint.
type Stats struct {
	NumDocs         int
	NumTerms        int
	TotalPostings   int64
	PayloadBytes    int64
	MetadataBytes   int64
	NormBytes       int64
	RawPostingBytes int64 // 8 B per posting (docID + tf uncompressed)
}

// ComputeStats walks the index and reports its footprint.
func (idx *Index) ComputeStats() Stats {
	s := Stats{
		NumDocs:   idx.NumDocs,
		NumTerms:  len(idx.Lists),
		NormBytes: int64(idx.NumDocs * DocNormBytes),
	}
	for _, pl := range idx.Lists {
		s.TotalPostings += int64(pl.DF)
		s.PayloadBytes += int64(len(pl.Data))
		s.MetadataBytes += int64(pl.MetadataBytes())
	}
	s.RawPostingBytes = s.TotalPostings * 8
	return s
}

// CompressionRatio reports raw posting bytes over compressed payload bytes.
func (s Stats) CompressionRatio() float64 {
	if s.PayloadBytes == 0 {
		return 0
	}
	return float64(s.RawPostingBytes) / float64(s.PayloadBytes)
}
