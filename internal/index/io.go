package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"boss/internal/compress"
	"boss/internal/score"
)

// Binary index format (version 2):
//
//	magic "BOSSIDX2"
//	numDocs u32 | avgDocLen f64 | k1 f64 | b f64 | numLists u32
//	per list:
//	  termLen u16 | term bytes | scheme u8 | df u32 | idf f64 |
//	  maxScore f64 | baseAddr u64 | numBlocks u32 |
//	  per block: first u32 | last u32 | maxScore f32 | offset u32 |
//	             length u32 | count u16 | checksum u32
//	  dataLen u32 | data bytes
//	normBaseAddr u64
//	docNorms: numDocs × f32
//	impact section (optional, impact-enabled indexes only):
//	  magic "BOSSIMP1"
//	  per list (term order): step i32 | listMaxImpact u8 |
//	                         per block: maxImpact u8
//	footer: magic "BOSSEND2" | crc u32 (CRC32-C of every preceding byte)
//
// The impact section sits between the norms and the footer, announced by
// its own magic: readers sniff the eight bytes after the norms and accept
// either the impact magic or the footer, so pre-impact v2 files still
// load. The per-posting impact codes themselves travel inside each block
// payload (covered by Length and the block CRC), so the section carries
// only the per-list step and the per-block/per-list maxima.
//
// The footer CRC turns every truncation or bit-flip anywhere in the file
// into a typed ErrCorrupt at load time instead of undefined behaviour at
// query time; per-block checksums additionally catch media corruption at
// fetch time after a clean load.
const (
	indexMagic  = "BOSSIDX2"
	impactMagic = "BOSSIMP1"
	footerMagic = "BOSSEND2"
)

// Structural sanity bounds: a corrupt length field must produce
// ErrCorrupt, not a multi-gigabyte allocation.
const (
	maxLists     = 1 << 26
	maxBlocks    = 1 << 26
	maxDataBytes = 1 << 30
	maxDocs      = 1 << 30
)

// ErrCorrupt reports a structurally invalid, truncated, or
// checksum-mismatched index file. All load failures wrap it, so callers
// test with errors.Is(err, index.ErrCorrupt).
var ErrCorrupt = errors.New("index: corrupt or truncated index file")

// WriteTo serializes the index. It implements io.WriterTo.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v interface{}) {
		if cw.err == nil {
			cw.err = binary.Write(cw, binary.LittleEndian, v)
		}
	}
	cw.WriteString(indexMagic)
	write(uint32(idx.NumDocs))
	write(idx.AvgDocLen)
	write(idx.Params.K1)
	write(idx.Params.B)
	write(uint32(len(idx.Lists)))
	for _, term := range idx.Terms() {
		pl := idx.Lists[term]
		write(uint16(len(term)))
		cw.WriteString(term)
		write(uint8(pl.Scheme))
		write(uint32(pl.DF))
		write(pl.IDF)
		write(pl.MaxScore)
		write(pl.BaseAddr)
		write(uint32(len(pl.Blocks)))
		for _, b := range pl.Blocks {
			write(b.FirstDoc)
			write(b.LastDoc)
			write(float32(b.MaxScore))
			write(b.Offset)
			write(b.Length)
			write(b.Count)
			write(b.Checksum)
		}
		write(uint32(len(pl.Data)))
		_, _ = cw.Write(pl.Data) // countingWriter latches the first error in cw.err
	}
	write(idx.NormBaseAddr)
	for _, n := range idx.DocNorms {
		write(float32(n))
	}
	// Impact section: emitted only when some list carries impacts, so
	// impact-free indexes serialize byte-identically to pre-impact v2.
	hasImpacts := false
	for _, pl := range idx.Lists {
		if pl.HasImpacts() {
			hasImpacts = true
			break
		}
	}
	if hasImpacts {
		cw.WriteString(impactMagic)
		for _, term := range idx.Terms() {
			pl := idx.Lists[term]
			write(int32(pl.ImpactStep))
			write(pl.MaxImpact)
			for _, b := range pl.Blocks {
				write(b.MaxImpact)
			}
		}
	}
	// Footer: seal everything written so far under a stream CRC. The
	// footer magic itself is covered by nothing (it is the seal).
	sum := cw.crc
	cw.WriteString(footerMagic)
	write(sum)
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// Read deserializes an index written by WriteTo. Any truncation, bad
// length field, or checksum mismatch yields an error wrapping
// ErrCorrupt.
func Read(r io.Reader) (*Index, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %w", ErrCorrupt, err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, magic, indexMagic)
	}
	var err error
	read := func(v interface{}) {
		if err == nil {
			err = binary.Read(cr, binary.LittleEndian, v)
		}
	}
	idx := &Index{Lists: make(map[string]*PostingList)}
	var numDocs, numLists uint32
	read(&numDocs)
	read(&idx.AvgDocLen)
	read(&idx.Params.K1)
	read(&idx.Params.B)
	read(&numLists)
	if err != nil {
		return nil, fmt.Errorf("%w: reading header: %w", ErrCorrupt, err)
	}
	if numDocs > maxDocs || numLists > maxLists {
		return nil, fmt.Errorf("%w: implausible header (docs=%d lists=%d)", ErrCorrupt, numDocs, numLists)
	}
	idx.NumDocs = int(numDocs)
	for i := uint32(0); i < numLists; i++ {
		var termLen uint16
		read(&termLen)
		if err != nil {
			return nil, fmt.Errorf("%w: list %d: %w", ErrCorrupt, i, err)
		}
		termBytes := make([]byte, termLen)
		if _, err = io.ReadFull(cr, termBytes); err != nil {
			return nil, fmt.Errorf("%w: list %d term: %w", ErrCorrupt, i, err)
		}
		pl := &PostingList{Term: string(termBytes)}
		pl.id.Store(nextListID.Add(1))
		var scheme uint8
		var df, numBlocks, dataLen uint32
		read(&scheme)
		read(&df)
		read(&pl.IDF)
		read(&pl.MaxScore)
		read(&pl.BaseAddr)
		read(&numBlocks)
		if err != nil {
			return nil, fmt.Errorf("%w: list %q header: %w", ErrCorrupt, pl.Term, err)
		}
		if numBlocks > maxBlocks {
			return nil, fmt.Errorf("%w: list %q: implausible block count %d", ErrCorrupt, pl.Term, numBlocks)
		}
		pl.Scheme = compress.Scheme(scheme)
		pl.codec = compress.ForScheme(pl.Scheme)
		pl.DF = int(df)
		pl.Blocks = make([]BlockMeta, numBlocks)
		for bi := range pl.Blocks {
			b := &pl.Blocks[bi]
			var ms float32
			read(&b.FirstDoc)
			read(&b.LastDoc)
			read(&ms)
			read(&b.Offset)
			read(&b.Length)
			read(&b.Count)
			read(&b.Checksum)
			b.MaxScore = float64(ms)
		}
		read(&dataLen)
		if err != nil {
			return nil, fmt.Errorf("%w: list %q blocks: %w", ErrCorrupt, pl.Term, err)
		}
		if dataLen > maxDataBytes {
			return nil, fmt.Errorf("%w: list %q: implausible data length %d", ErrCorrupt, pl.Term, dataLen)
		}
		pl.Data = make([]byte, dataLen)
		if _, err = io.ReadFull(cr, pl.Data); err != nil {
			return nil, fmt.Errorf("%w: list %q data: %w", ErrCorrupt, pl.Term, err)
		}
		for bi := range pl.Blocks {
			b := &pl.Blocks[bi]
			if uint64(b.Offset)+uint64(b.Length) > uint64(dataLen) {
				return nil, fmt.Errorf("%w: list %q block %d exceeds payload", ErrCorrupt, pl.Term, bi)
			}
		}
		idx.Lists[pl.Term] = pl
	}
	read(&idx.NormBaseAddr)
	idx.DocNorms = make([]float64, idx.NumDocs)
	for d := range idx.DocNorms {
		var n float32
		read(&n)
		idx.DocNorms[d] = float64(n)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: reading norms: %w", ErrCorrupt, err)
	}
	// Section sniff: the eight bytes after the norms are either the
	// optional impact section's magic or the footer's. Anything else is
	// named explicitly so a file expected to carry impacts fails with an
	// error distinguishable from an ordinary footer mismatch.
	sum := cr.crc
	sect := make([]byte, len(footerMagic))
	if _, err := io.ReadFull(cr, sect); err != nil {
		return nil, fmt.Errorf("%w: reading impact-section/footer magic: %w", ErrCorrupt, err)
	}
	if string(sect) == impactMagic {
		for _, term := range idx.Terms() {
			pl := idx.Lists[term]
			var step int32
			read(&step)
			read(&pl.MaxImpact)
			if err != nil {
				return nil, fmt.Errorf("%w: impact section: list %q header: %w", ErrCorrupt, term, err)
			}
			pl.ImpactStep = score.Fixed(step)
			for bi := range pl.Blocks {
				read(&pl.Blocks[bi].MaxImpact)
			}
			if err != nil {
				return nil, fmt.Errorf("%w: impact section: list %q block maxima: %w", ErrCorrupt, term, err)
			}
		}
		// The seal covers the impact section; the footer must follow.
		sum = cr.crc
		if _, err := io.ReadFull(cr, sect); err != nil {
			return nil, fmt.Errorf("%w: reading footer after impact section: %w", ErrCorrupt, err)
		}
	}
	if string(sect) != footerMagic {
		return nil, fmt.Errorf("%w: bad magic %q after norms: want impact section %q or footer %q (impact section missing or corrupt?)", ErrCorrupt, sect, impactMagic, footerMagic)
	}
	var sealed uint32
	if err := binary.Read(cr, binary.LittleEndian, &sealed); err != nil {
		return nil, fmt.Errorf("%w: reading footer checksum: %w", ErrCorrupt, err)
	}
	if sealed != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrCorrupt, sealed, sum)
	}
	idx.TotalBytes = idx.NormBaseAddr + uint64(idx.NumDocs*DocNormBytes)
	return idx, nil
}

// countingWriter tracks bytes written, the running stream CRC, and the
// first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	crc uint32
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	cw.err = err
	return n, err
}

func (cw *countingWriter) WriteString(s string) {
	_, _ = cw.Write([]byte(s)) // error latched in cw.err
}

// crcReader accumulates the CRC32-C of everything read through it.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, castagnoli, p[:n])
	return n, err
}

// approxEqual allows for float32 rounding introduced by serialization.
func approxEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	return diff <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
