package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"boss/internal/compress"
)

// Binary index format:
//
//	magic "BOSSIDX1"
//	numDocs u32 | avgDocLen f64 | k1 f64 | b f64 | numLists u32
//	per list:
//	  termLen u16 | term bytes | scheme u8 | df u32 | idf f64 |
//	  maxScore f64 | baseAddr u64 | numBlocks u32 |
//	  per block: first u32 | last u32 | maxScore f32 | offset u32 |
//	             length u32 | count u16
//	  dataLen u32 | data bytes
//	normBaseAddr u64
//	docNorms: numDocs × f32
const indexMagic = "BOSSIDX1"

// WriteTo serializes the index. It implements io.WriterTo.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v interface{}) {
		if cw.err == nil {
			cw.err = binary.Write(cw, binary.LittleEndian, v)
		}
	}
	cw.WriteString(indexMagic)
	write(uint32(idx.NumDocs))
	write(idx.AvgDocLen)
	write(idx.Params.K1)
	write(idx.Params.B)
	write(uint32(len(idx.Lists)))
	for _, term := range idx.Terms() {
		pl := idx.Lists[term]
		write(uint16(len(term)))
		cw.WriteString(term)
		write(uint8(pl.Scheme))
		write(uint32(pl.DF))
		write(pl.IDF)
		write(pl.MaxScore)
		write(pl.BaseAddr)
		write(uint32(len(pl.Blocks)))
		for _, b := range pl.Blocks {
			write(b.FirstDoc)
			write(b.LastDoc)
			write(float32(b.MaxScore))
			write(b.Offset)
			write(b.Length)
			write(b.Count)
		}
		write(uint32(len(pl.Data)))
		_, _ = cw.Write(pl.Data) // countingWriter latches the first error in cw.err
	}
	write(idx.NormBaseAddr)
	for _, n := range idx.DocNorms {
		write(float32(n))
	}
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// Read deserializes an index written by WriteTo.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	var err error
	read := func(v interface{}) {
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, v)
		}
	}
	idx := &Index{Lists: make(map[string]*PostingList)}
	var numDocs, numLists uint32
	read(&numDocs)
	read(&idx.AvgDocLen)
	read(&idx.Params.K1)
	read(&idx.Params.B)
	read(&numLists)
	if err != nil {
		return nil, fmt.Errorf("index: reading header: %w", err)
	}
	idx.NumDocs = int(numDocs)
	for i := uint32(0); i < numLists; i++ {
		var termLen uint16
		read(&termLen)
		if err != nil {
			return nil, fmt.Errorf("index: list %d: %w", i, err)
		}
		termBytes := make([]byte, termLen)
		if _, err = io.ReadFull(br, termBytes); err != nil {
			return nil, fmt.Errorf("index: list %d term: %w", i, err)
		}
		pl := &PostingList{Term: string(termBytes)}
		pl.id.Store(nextListID.Add(1))
		var scheme uint8
		var df, numBlocks, dataLen uint32
		read(&scheme)
		read(&df)
		read(&pl.IDF)
		read(&pl.MaxScore)
		read(&pl.BaseAddr)
		read(&numBlocks)
		if err != nil {
			return nil, fmt.Errorf("index: list %q header: %w", pl.Term, err)
		}
		pl.Scheme = compress.Scheme(scheme)
		pl.codec = compress.ForScheme(pl.Scheme)
		pl.DF = int(df)
		pl.Blocks = make([]BlockMeta, numBlocks)
		for bi := range pl.Blocks {
			b := &pl.Blocks[bi]
			var ms float32
			read(&b.FirstDoc)
			read(&b.LastDoc)
			read(&ms)
			read(&b.Offset)
			read(&b.Length)
			read(&b.Count)
			b.MaxScore = float64(ms)
		}
		read(&dataLen)
		if err != nil {
			return nil, fmt.Errorf("index: list %q blocks: %w", pl.Term, err)
		}
		pl.Data = make([]byte, dataLen)
		if _, err = io.ReadFull(br, pl.Data); err != nil {
			return nil, fmt.Errorf("index: list %q data: %w", pl.Term, err)
		}
		idx.Lists[pl.Term] = pl
	}
	read(&idx.NormBaseAddr)
	idx.DocNorms = make([]float64, idx.NumDocs)
	for d := range idx.DocNorms {
		var n float32
		read(&n)
		idx.DocNorms[d] = float64(n)
	}
	if err != nil {
		return nil, fmt.Errorf("index: reading norms: %w", err)
	}
	idx.TotalBytes = idx.NormBaseAddr + uint64(idx.NumDocs*DocNormBytes)
	return idx, nil
}

// countingWriter tracks bytes written and the first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}

func (cw *countingWriter) WriteString(s string) {
	_, _ = cw.Write([]byte(s)) // error latched in cw.err
}

// approxEqual allows for float32 rounding introduced by serialization.
func approxEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	return diff <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
