package index

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"boss/internal/compress"
	"boss/internal/corpus"
)

func serialized(t *testing.T) ([]byte, *Index) {
	t.Helper()
	idx := Build(corpus.Generate(corpus.CCNewsLike(0.003)), BuildOptions{Scheme: compress.SchemeHybrid})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes(), idx
}

func TestBlockChecksumsPopulatedAndVerify(t *testing.T) {
	data, idx := serialized(t)
	for _, term := range idx.Terms()[:20] {
		pl := idx.Lists[term]
		for b := range pl.Blocks {
			if pl.Blocks[b].Checksum == 0 {
				t.Fatalf("list %q block %d has zero checksum", term, b)
			}
			if !pl.VerifyBlock(b) {
				t.Fatalf("list %q block %d fails verification at build time", term, b)
			}
		}
	}
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for _, term := range got.Terms()[:20] {
		pl := got.Lists[term]
		for b := range pl.Blocks {
			if pl.Blocks[b].Checksum != idx.Lists[term].Blocks[b].Checksum {
				t.Fatalf("list %q block %d checksum not preserved by serialization", term, b)
			}
		}
	}
}

func TestVerifyBlockDetectsCorruption(t *testing.T) {
	_, idx := serialized(t)
	term := idx.Terms()[0]
	pl := idx.Lists[term]
	off := pl.Blocks[0].Offset
	pl.Data[off] ^= 0x40
	if pl.VerifyBlock(0) {
		t.Fatal("corrupted payload passed verification")
	}
	pl.Data[off] ^= 0x40
	if !pl.VerifyBlock(0) {
		t.Fatal("restored payload failed verification")
	}
}

// Flipping any single byte anywhere in the file must yield ErrCorrupt —
// the footer stream CRC seals regions no structural check covers.
func TestReadRejectsBitFlips(t *testing.T) {
	data, _ := serialized(t)
	for _, pos := range []int{0, 11, len(data) / 3, len(data) / 2, len(data) - 20, len(data) - 1} {
		mut := bytes.Clone(data)
		mut[pos] ^= 0x01
		_, err := Read(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("byte flip at %d/%d went undetected", pos, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("byte flip at %d: error %v does not wrap ErrCorrupt", pos, err)
		}
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	data, _ := serialized(t)
	for _, keep := range []int{0, 4, len(data) / 4, len(data) / 2, len(data) - 5, len(data) - 1} {
		_, err := Read(bytes.NewReader(data[:keep]))
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes went undetected", keep, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: error %v does not wrap ErrCorrupt", keep, err)
		}
	}
}

func TestReadRejectsImplausibleLengths(t *testing.T) {
	data, _ := serialized(t)
	// numLists lives right after magic(8) + numDocs(4) + avgDocLen(8) +
	// k1(8) + b(8) = offset 36. Blast it to the maximum.
	mut := bytes.Clone(data)
	for i := 0; i < 4; i++ {
		mut[36+i] = 0xff
	}
	_, err := Read(bytes.NewReader(mut))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("implausible list count: error %v does not wrap ErrCorrupt", err)
	}
}

// A cursor over a corrupted block must stop with a typed error rather
// than score garbage or publish it to a cache.
func TestCursorStopsOnCorruptBlock(t *testing.T) {
	_, idx := serialized(t)
	var pl *PostingList
	for _, term := range idx.Terms() {
		if len(idx.Lists[term].Blocks) >= 3 {
			pl = idx.Lists[term]
			break
		}
	}
	if pl == nil {
		t.Skip("no multi-block list in test corpus")
	}
	pl.Data[pl.Blocks[1].Offset] ^= 0xff

	cur := NewCursor(idx, pl)
	defer cur.Release()
	seen := 0
	for cur.Valid() {
		seen++
		cur.Next()
	}
	if cur.Err() == nil {
		t.Fatal("cursor consumed a corrupt block without error")
	}
	if !errors.Is(cur.Err(), ErrCorrupt) {
		t.Fatalf("cursor error %v does not wrap ErrCorrupt", cur.Err())
	}
	if want := int(pl.Blocks[0].Count); seen != want {
		t.Fatalf("cursor consumed %d postings, want exactly the %d intact ones", seen, want)
	}
}

// serializedImpacts is serialized with quantized impacts in the payloads
// and the "BOSSIMP1" section between norms and footer.
func serializedImpacts(t *testing.T) ([]byte, *Index) {
	t.Helper()
	idx := Build(corpus.Generate(corpus.CCNewsLike(0.003)),
		BuildOptions{Scheme: compress.SchemeHybrid, Impacts: true})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes(), idx
}

// TestImpactSectionRoundTrip: quantization steps, list maxima and
// per-block maxima survive serialization, and the impact bytes riding the
// block payload tails come back with them.
func TestImpactSectionRoundTrip(t *testing.T) {
	data, idx := serializedImpacts(t)
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for _, term := range idx.Terms() {
		want, have := idx.Lists[term], got.Lists[term]
		if !want.HasImpacts() {
			t.Fatalf("list %q built without impacts despite Impacts: true", term)
		}
		if have.ImpactStep != want.ImpactStep || have.MaxImpact != want.MaxImpact {
			t.Fatalf("list %q impact header not preserved: step %v/%v max %d/%d",
				term, have.ImpactStep, want.ImpactStep, have.MaxImpact, want.MaxImpact)
		}
		for b := range want.Blocks {
			if have.Blocks[b].MaxImpact != want.Blocks[b].MaxImpact {
				t.Fatalf("list %q block %d max impact not preserved", term, b)
			}
			imps := have.BlockImpacts(b)
			if len(imps) != int(have.Blocks[b].Count) {
				t.Fatalf("list %q block %d carries %d impact bytes, want %d",
					term, b, len(imps), have.Blocks[b].Count)
			}
			if !bytes.Equal(imps, want.BlockImpacts(b)) {
				t.Fatalf("list %q block %d impact bytes diverged", term, b)
			}
		}
	}
}

// TestReadOldFormatWithoutImpacts: an index serialized without impacts —
// the exact byte stream every pre-impact writer produced — still loads,
// and reports no impact capability rather than garbage steps.
func TestReadOldFormatWithoutImpacts(t *testing.T) {
	data, _ := serialized(t)
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Read of impact-free file: %v", err)
	}
	for _, term := range got.Terms() {
		if got.Lists[term].HasImpacts() {
			t.Fatalf("list %q reports impacts in an impact-free file", term)
		}
	}
}

// TestReadBadImpactMagic: corrupting the section magic must fail with
// ErrCorrupt and an error message naming the impact section, so an
// operator diffing old and new binaries knows which section to suspect.
func TestReadBadImpactMagic(t *testing.T) {
	data, _ := serializedImpacts(t)
	at := bytes.Index(data, []byte("BOSSIMP1"))
	if at < 0 {
		t.Fatal("serialized impact index carries no section magic")
	}
	mut := bytes.Clone(data)
	mut[at] ^= 0x04
	_, err := Read(bytes.NewReader(mut))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad section magic: error %v does not wrap ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "impact section") {
		t.Fatalf("error %q does not name the impact section", err)
	}
}

// TestReadRejectsImpactBitFlips extends the corrupt-file sweep into the
// impact section: flips in the per-list headers, the per-block maxima and
// the payload impact tails must all surface as ErrCorrupt.
func TestReadRejectsImpactBitFlips(t *testing.T) {
	data, _ := serializedImpacts(t)
	at := bytes.Index(data, []byte("BOSSIMP1"))
	if at < 0 {
		t.Fatal("serialized impact index carries no section magic")
	}
	// Sweep the section body (headers + maxima) and a payload tail byte.
	for _, pos := range []int{at + 8, at + 9, at + 16, (at + len(data)) / 2, len(data) - 24} {
		mut := bytes.Clone(data)
		mut[pos] ^= 0x01
		_, err := Read(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("impact-section byte flip at %d/%d went undetected", pos, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("impact-section byte flip at %d: error %v does not wrap ErrCorrupt", pos, err)
		}
	}
}
