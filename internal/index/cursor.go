package index

import (
	"fmt"
	"sync"

	"boss/internal/cache"
)

// cursorBuf is the decode scratch one cursor owns: docs/tfs slices sized to
// a block. Buffers cycle through a sync.Pool so query-rate cursor churn does
// not allocate per query (batch throughput would otherwise be GC-bound).
type cursorBuf struct {
	docs []uint32
	tfs  []uint32
}

var cursorBufPool = sync.Pool{New: func() any { return new(cursorBuf) }}

// Cursor iterates a posting list block by block, decoding lazily and using
// block metadata to skip (the software analogue of the hardware block-fetch
// path). Models charge memory traffic through the OnBlock callback, which
// fires once per block actually decoded.
//
// A Cursor is not safe for concurrent use. Callers that finish with a
// cursor should Release it so its decode buffers return to the shared pool;
// releasing is optional (an un-released cursor is just garbage-collected).
type Cursor struct {
	idx *Index
	pl  *PostingList

	// OnBlock, if non-nil, is called with the block number each time a
	// block's payload is decoded (i.e. fetched from memory).
	OnBlock func(b int)

	block int // next block to decode
	docs  []uint32
	tfs   []uint32
	pos   int
	done  bool
	buf   *cursorBuf // pooled owner of docs/tfs; nil after Release

	// cache, when non-nil, is consulted before every block decode; docs/tfs
	// then alias the pinned entry ent instead of buf (which stays nil).
	cache  *cache.Cache
	ent    *cache.Entry
	listID uint64

	// err records a block integrity failure; the cursor then reports
	// done so corrupt postings are never scored. Callers that must
	// distinguish exhaustion from corruption check Err.
	err error
}

// NewCursor returns a cursor positioned at the first posting of pl.
//
//boss:pool-escapes the pooled buffer belongs to the cursor until Release.
func NewCursor(idx *Index, pl *PostingList) *Cursor {
	buf := cursorBufPool.Get().(*cursorBuf)
	c := &Cursor{idx: idx, pl: pl, buf: buf, docs: buf.docs[:0], tfs: buf.tfs[:0]}
	c.loadNextBlock()
	return c
}

// NewCursorCached returns a cursor that consults the decoded-block cache
// before decoding. Decoded blocks live in cache-owned slabs (the cursor
// holds at most one pinned entry, released on block advance), so a cached
// cursor needs no pooled decode buffer. A nil cache degrades to NewCursor.
func NewCursorCached(idx *Index, pl *PostingList, ch *cache.Cache) *Cursor {
	if ch == nil {
		return NewCursor(idx, pl)
	}
	c := &Cursor{idx: idx, pl: pl, cache: ch, listID: pl.ID()}
	c.loadNextBlock()
	return c
}

// Release returns the cursor's decode buffers to the shared pool. The
// cursor must not be used afterwards; Release is idempotent.
func (c *Cursor) Release() {
	if c.ent != nil {
		c.cache.Release(c.ent)
		c.ent = nil
		c.docs, c.tfs = nil, nil
		c.done = true
	}
	if c.buf == nil {
		return
	}
	c.buf.docs, c.buf.tfs = c.docs[:0], c.tfs[:0]
	cursorBufPool.Put(c.buf)
	c.buf = nil
	c.docs, c.tfs = nil, nil
	c.done = true
}

// loadNextBlock decodes block c.block and advances the block pointer. Sets
// done when the list is exhausted.
func (c *Cursor) loadNextBlock() {
	if c.ent != nil {
		// Done with the previous block: unpin it for the evictor.
		c.cache.Release(c.ent)
		c.ent = nil
	}
	if c.block >= len(c.pl.Blocks) {
		c.done = true
		return
	}
	// Integrity gate: a block whose payload fails its CRC must neither
	// be scored nor published to the shared decoded-block cache.
	if !c.pl.VerifyBlock(c.block) {
		c.failBlock(c.block)
		return
	}
	// OnBlock fires on cache hits too: the simulated models charge the
	// block's memory traffic identically whether or not the host process
	// happened to have the decoded form at hand.
	if c.OnBlock != nil {
		c.OnBlock(c.block)
	}
	if c.cache != nil {
		c.loadBlockCached()
	} else {
		c.docs, c.tfs = c.idx.DecodeBlock(c.pl, c.block, c.docs[:0], c.tfs[:0])
	}
	c.block++
	c.pos = 0
}

// loadBlockCached serves the current block from the cache, decoding into a
// cache-owned slab on a miss and publishing for later queries.
//
//boss:hotpath the cross-query block reuse path of the software engine.
func (c *Cursor) loadBlockCached() {
	k := cache.Key{List: c.listID, Block: uint32(c.block)}
	if e := c.cache.Get(k); e != nil {
		c.ent = e
		c.docs, c.tfs = e.Docs(), e.Tfs()
		return
	}
	n := int(c.pl.Blocks[c.block].Count)
	e := c.cache.Reserve(n)
	docs, tfs := c.idx.DecodeBlock(c.pl, c.block, e.DocsBuf(n), e.TfsBuf(n))
	e = c.cache.Publish(k, e, docs, tfs, 0)
	c.ent = e
	c.docs, c.tfs = e.Docs(), e.Tfs()
}

// failBlock latches a corruption error and terminates iteration.
// Outlined from the block-load path (hotpath: no fmt inline).
func (c *Cursor) failBlock(b int) {
	c.err = fmt.Errorf("index: list %q block %d: checksum mismatch: %w", c.pl.Term, b, ErrCorrupt)
	c.done = true
	c.docs, c.tfs = c.docs[:0], c.tfs[:0]
	c.pos = 0
}

// Err reports the integrity failure that terminated iteration, if any.
// A cursor that ran off the end of its list returns nil.
func (c *Cursor) Err() error { return c.err }

// Valid reports whether the cursor points at a posting.
func (c *Cursor) Valid() bool { return !c.done }

// Doc returns the current docID. Only valid when Valid().
func (c *Cursor) Doc() uint32 { return c.docs[c.pos] }

// TF returns the current term frequency. Only valid when Valid().
func (c *Cursor) TF() uint32 { return c.tfs[c.pos] }

// Score returns the current posting's BM25 term score.
func (c *Cursor) Score() float64 {
	return c.idx.TermScore(c.pl, c.Doc(), c.TF())
}

// Next advances to the following posting.
//
//boss:hotpath one call per posting consumed by the software engines.
func (c *Cursor) Next() {
	if c.done {
		return
	}
	c.pos++
	if c.pos >= len(c.docs) {
		c.loadNextBlock()
	}
}

// SeekGEQ advances the cursor to the first posting with docID >= target,
// skipping whole blocks via metadata without decoding them. It reports
// whether such a posting exists.
//
//boss:hotpath the cursor-advance step of every skipping algorithm.
func (c *Cursor) SeekGEQ(target uint32) bool {
	if c.done {
		return false
	}
	// Already positioned at or past target?
	if c.docs[c.pos] >= target {
		return true
	}
	// If the target lies beyond the current block, skip via metadata.
	// c.block is the *next* block to decode; current block is c.block-1.
	if c.pl.Blocks[c.block-1].LastDoc < target {
		nb := c.findBlockGEQ(target)
		if nb < 0 {
			c.done = true
			return false
		}
		c.block = nb
		c.loadNextBlock()
		if c.done {
			return false
		}
	}
	// Scan within the block.
	for c.pos < len(c.docs) && c.docs[c.pos] < target {
		c.pos++
	}
	if c.pos >= len(c.docs) {
		// Target beyond this block's decoded span but within LastDoc range
		// cannot happen; move on defensively.
		c.loadNextBlock()
		if c.done {
			return false
		}
		return c.SeekGEQ(target)
	}
	return true
}

// findBlockGEQ returns the index of the first block whose LastDoc >= target,
// searching from the current position, or -1 if none.
func (c *Cursor) findBlockGEQ(target uint32) int {
	lo, hi := c.block, len(c.pl.Blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.pl.Blocks[mid].LastDoc < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(c.pl.Blocks) {
		return -1
	}
	return lo
}

// BlocksDecoded reports how many blocks have been decoded so far.
func (c *Cursor) BlocksDecoded() int {
	if c.done {
		return c.block
	}
	return c.block // block counts decoded blocks because it post-increments
}
