package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"boss/internal/compress"
	"boss/internal/corpus"
	"boss/internal/score"
)

func testCorpus(t testing.TB) *corpus.Corpus {
	t.Helper()
	return corpus.Generate(corpus.CCNewsLike(0.005))
}

func buildHybrid(t testing.TB, c *corpus.Corpus) *Index {
	t.Helper()
	return Build(c, BuildOptions{Scheme: compress.SchemeHybrid})
}

func TestBuildRoundTripsPostings(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	if len(idx.Lists) != len(c.Terms) {
		t.Fatalf("index has %d lists, corpus has %d terms", len(idx.Lists), len(c.Terms))
	}
	for _, tp := range c.Terms[:40] {
		pl := idx.MustList(tp.Term)
		if pl.DF != len(tp.Postings) {
			t.Fatalf("term %s: df %d != %d", tp.Term, pl.DF, len(tp.Postings))
		}
		var docs, tfs []uint32
		for b := range pl.Blocks {
			docs, tfs = idx.DecodeBlock(pl, b, docs, tfs)
		}
		if len(docs) != len(tp.Postings) {
			t.Fatalf("term %s: decoded %d postings, want %d", tp.Term, len(docs), len(tp.Postings))
		}
		for i, p := range tp.Postings {
			if docs[i] != p.DocID || tfs[i] != p.TF {
				t.Fatalf("term %s posting %d: got (%d,%d), want (%d,%d)",
					tp.Term, i, docs[i], tfs[i], p.DocID, p.TF)
			}
		}
	}
}

func TestBlockMetadataInvariants(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	for _, term := range idx.Terms() {
		pl := idx.Lists[term]
		prevLast := int64(-1)
		var expectOffset uint32
		for bi, b := range pl.Blocks {
			if int64(b.FirstDoc) <= prevLast {
				t.Fatalf("term %s block %d: first %d <= previous last %d", term, bi, b.FirstDoc, prevLast)
			}
			if b.LastDoc < b.FirstDoc {
				t.Fatalf("term %s block %d: last < first", term, bi)
			}
			if b.Offset != expectOffset {
				t.Fatalf("term %s block %d: offset %d, want %d", term, bi, b.Offset, expectOffset)
			}
			if b.Count == 0 || int(b.Count) > DefaultBlockSize {
				t.Fatalf("term %s block %d: count %d", term, bi, b.Count)
			}
			if b.MaxScore <= 0 {
				t.Fatalf("term %s block %d: non-positive max score", term, bi)
			}
			if b.MaxScore > pl.MaxScore+1e-12 {
				t.Fatalf("term %s block %d: block max exceeds list max", term, bi)
			}
			expectOffset += b.Length
			prevLast = int64(b.LastDoc)
		}
		if int(expectOffset) != len(pl.Data) {
			t.Fatalf("term %s: block lengths sum to %d, payload is %d", term, expectOffset, len(pl.Data))
		}
	}
}

func TestBlockMaxScoreIsTrueMax(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	pl := idx.MustList("t0")
	var docs, tfs []uint32
	for b := range pl.Blocks {
		docs, tfs = idx.DecodeBlock(pl, b, docs[:0], tfs[:0])
		max := 0.0
		for i := range docs {
			if s := idx.TermScore(pl, docs[i], tfs[i]); s > max {
				max = s
			}
		}
		if diff := max - pl.Blocks[b].MaxScore; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("block %d: metadata max %v, true max %v", b, pl.Blocks[b].MaxScore, max)
		}
	}
}

func TestHybridPicksDifferentSchemes(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	h := idx.SchemeHistogram()
	if len(h) < 2 {
		t.Fatalf("hybrid chose only %v; expected multiple schemes across lists", h)
	}
	total := 0
	for _, n := range h {
		total += n
	}
	if total != len(idx.Lists) {
		t.Fatalf("histogram total %d != %d lists", total, len(idx.Lists))
	}
}

func TestHybridNotWorseThanAnySingleScheme(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.003))
	hybrid := Build(c, BuildOptions{Scheme: compress.SchemeHybrid}).ComputeStats()
	for _, s := range compress.AllSchemes() {
		if s == compress.S16 {
			continue // S16 cannot represent all delta streams
		}
		single := Build(c, BuildOptions{Scheme: s}).ComputeStats()
		if hybrid.PayloadBytes > single.PayloadBytes {
			t.Fatalf("hybrid payload %d bytes exceeds %s payload %d bytes",
				hybrid.PayloadBytes, s, single.PayloadBytes)
		}
	}
}

func TestAddressesAreDisjoint(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	type region struct {
		start, end uint64
	}
	var regions []region
	for _, pl := range idx.Lists {
		regions = append(regions, region{pl.BaseAddr, pl.BaseAddr + uint64(len(pl.Data)) + uint64(pl.MetadataBytes())})
	}
	regions = append(regions, region{idx.NormBaseAddr, idx.TotalBytes})
	for i, a := range regions {
		if a.end > idx.TotalBytes {
			t.Fatalf("region %d extends past TotalBytes", i)
		}
		for j, b := range regions {
			if i == j {
				continue
			}
			if a.start < b.end && b.start < a.end {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestDocNorms(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	if len(idx.DocNorms) != c.Spec.NumDocs {
		t.Fatalf("norms length %d", len(idx.DocNorms))
	}
	p := idx.Params
	for d := 0; d < 100; d++ {
		dl := c.DocLens[d]
		if dl == 0 {
			dl = 1
		}
		want := p.DocNorm(dl, c.AvgDocLen)
		if idx.DocNorms[d] != want {
			t.Fatalf("doc %d norm %v, want %v", d, idx.DocNorms[d], want)
		}
	}
}

func TestCursorSequentialScan(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	tp := c.Terms[3]
	cur := NewCursor(idx, idx.MustList(tp.Term))
	i := 0
	for ; cur.Valid(); cur.Next() {
		if cur.Doc() != tp.Postings[i].DocID || cur.TF() != tp.Postings[i].TF {
			t.Fatalf("posting %d mismatch", i)
		}
		i++
	}
	if i != len(tp.Postings) {
		t.Fatalf("scanned %d postings, want %d", i, len(tp.Postings))
	}
}

func TestCursorSeekGEQ(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	tp := c.Terms[1]
	pl := idx.MustList(tp.Term)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		target := uint32(rng.Intn(c.Spec.NumDocs + 10))
		cur := NewCursor(idx, pl)
		ok := cur.SeekGEQ(target)
		// Reference answer by linear scan of the raw postings.
		wantIdx := -1
		for i, p := range tp.Postings {
			if p.DocID >= target {
				wantIdx = i
				break
			}
		}
		if (wantIdx >= 0) != ok {
			t.Fatalf("SeekGEQ(%d) ok=%v, want %v", target, ok, wantIdx >= 0)
		}
		if ok && cur.Doc() != tp.Postings[wantIdx].DocID {
			t.Fatalf("SeekGEQ(%d) = %d, want %d", target, cur.Doc(), tp.Postings[wantIdx].DocID)
		}
	}
}

func TestCursorSeekGEQMonotoneAdvance(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	pl := idx.MustList(c.Terms[0].Term)
	cur := NewCursor(idx, pl)
	rng := rand.New(rand.NewSource(9))
	target := uint32(0)
	for cur.Valid() {
		target += uint32(rng.Intn(1000))
		if !cur.SeekGEQ(target) {
			break
		}
		if cur.Doc() < target {
			t.Fatalf("cursor at %d after SeekGEQ(%d)", cur.Doc(), target)
		}
		target = cur.Doc() + 1
		cur.Next()
	}
}

func TestCursorSkipsBlocks(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	pl := idx.MustList(c.Terms[0].Term) // largest list, many blocks
	if len(pl.Blocks) < 8 {
		t.Skip("list too small to observe skipping")
	}
	decoded := 0
	cur := NewCursor(idx, pl)
	cur.OnBlock = func(int) { decoded++ }
	// Seek straight to the last block's first doc.
	last := pl.Blocks[len(pl.Blocks)-1]
	if !cur.SeekGEQ(last.FirstDoc) {
		t.Fatal("seek to last block failed")
	}
	if decoded > 2 {
		t.Fatalf("decoded %d blocks on a long seek; metadata skipping broken", decoded)
	}
}

func TestStats(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	s := idx.ComputeStats()
	if s.TotalPostings != c.TotalPostings {
		t.Fatalf("stats postings %d, corpus %d", s.TotalPostings, c.TotalPostings)
	}
	if s.CompressionRatio() <= 1 {
		t.Fatalf("compression ratio %v should exceed 1", s.CompressionRatio())
	}
	if s.MetadataBytes == 0 || s.NormBytes == 0 {
		t.Fatal("metadata/norm accounting missing")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	c := testCorpus(t)
	idx := buildHybrid(t, c)
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.NumDocs != idx.NumDocs || len(got.Lists) != len(idx.Lists) {
		t.Fatal("header mismatch after round trip")
	}
	if !approxEqual(got.AvgDocLen, idx.AvgDocLen) {
		t.Fatal("avgdl mismatch")
	}
	for _, term := range idx.Terms() {
		a, b := idx.Lists[term], got.Lists[term]
		if b == nil {
			t.Fatalf("term %s missing after round trip", term)
		}
		if a.DF != b.DF || a.Scheme != b.Scheme || !bytes.Equal(a.Data, b.Data) {
			t.Fatalf("term %s list mismatch", term)
		}
		if len(a.Blocks) != len(b.Blocks) {
			t.Fatalf("term %s block count mismatch", term)
		}
		for i := range a.Blocks {
			ab, bb := a.Blocks[i], b.Blocks[i]
			if ab.FirstDoc != bb.FirstDoc || ab.LastDoc != bb.LastDoc ||
				ab.Offset != bb.Offset || ab.Length != bb.Length || ab.Count != bb.Count {
				t.Fatalf("term %s block %d mismatch", term, i)
			}
			if !approxEqual(ab.MaxScore, bb.MaxScore) {
				t.Fatalf("term %s block %d max score mismatch", term, i)
			}
		}
	}
	for d := range idx.DocNorms {
		if !approxEqual(idx.DocNorms[d], got.DocNorms[d]) {
			t.Fatalf("norm %d mismatch", d)
		}
	}
	// Decoding must work identically on the deserialized index.
	pl := got.MustList("t0")
	docsA, tfsA := idx.DecodeBlock(idx.MustList("t0"), 0, nil, nil)
	docsB, tfsB := got.DecodeBlock(pl, 0, nil, nil)
	if !reflect.DeepEqual(docsA, docsB) || !reflect.DeepEqual(tfsA, tfsB) {
		t.Fatal("decode mismatch after round trip")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTANIDX"))); err == nil {
		t.Fatal("Read accepted bad magic")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("Read accepted empty input")
	}
	// Truncated valid prefix.
	c := corpus.Generate(corpus.CCNewsLike(0.002))
	idx := buildHybrid(t, c)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("Read accepted truncated index")
	}
}

func TestBuildWithExplicitParams(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.002))
	p := score.Params{K1: 2.0, B: 0.5}
	idx := Build(c, BuildOptions{Scheme: compress.VB, Params: p})
	if idx.Params != p {
		t.Fatalf("params = %+v", idx.Params)
	}
	if idx.MustList("t0").Scheme != compress.VB {
		t.Fatal("explicit scheme not honored")
	}
}

func TestMustListPanics(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.002))
	idx := buildHybrid(t, c)
	defer func() {
		if recover() == nil {
			t.Fatal("MustList on missing term should panic")
		}
	}()
	idx.MustList("definitely-not-a-term")
}

func TestSmallBlockSize(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.002))
	idx := Build(c, BuildOptions{Scheme: compress.SchemeHybrid, BlockSize: 16})
	pl := idx.MustList("t0")
	if len(pl.Blocks) < pl.DF/16 {
		t.Fatalf("blocks %d for df %d at block size 16", len(pl.Blocks), pl.DF)
	}
	var docs []uint32
	docs, _ = idx.DecodeBlock(pl, 0, docs, nil)
	if len(docs) != 16 {
		t.Fatalf("first block has %d docs", len(docs))
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	c := corpus.Generate(corpus.CCNewsLike(0.005))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(c, BuildOptions{Scheme: compress.SchemeHybrid})
	}
}

func BenchmarkCursorScan(b *testing.B) {
	c := corpus.Generate(corpus.CCNewsLike(0.005))
	idx := Build(c, BuildOptions{Scheme: compress.SchemeHybrid})
	pl := idx.MustList("t0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := NewCursor(idx, pl)
		n := 0
		for ; cur.Valid(); cur.Next() {
			n++
		}
		if n != pl.DF {
			b.Fatal("bad scan")
		}
	}
}

// TestBuildDecodeQuickProperty builds indexes from randomized posting lists
// across schemes and block sizes, checking every posting round-trips and
// SeekGEQ agrees with linear search.
func TestBuildDecodeQuickProperty(t *testing.T) {
	f := func(seed int64, blockSeed uint8, schemeSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numDocs := 64 + rng.Intn(2000)
		numTerms := 1 + rng.Intn(6)
		// 1..255: PFD stores the block's value count in one byte, so 256-
		// posting blocks are not an encodable configuration.
		blockSize := 1 + int(blockSeed)%255

		c := &corpus.Corpus{
			Spec:    corpus.Spec{Name: "prop", NumDocs: numDocs, NumTerms: numTerms},
			DocLens: make([]uint32, numDocs),
		}
		for t := 0; t < numTerms; t++ {
			df := 1 + rng.Intn(numDocs/2)
			seen := map[uint32]bool{}
			var ps []corpus.Posting
			for len(ps) < df {
				d := uint32(rng.Intn(numDocs))
				if seen[d] {
					continue
				}
				seen[d] = true
				tf := uint32(1 + rng.Intn(30))
				ps = append(ps, corpus.Posting{DocID: d, TF: tf})
				c.DocLens[d] += tf
			}
			sort.Slice(ps, func(i, j int) bool { return ps[i].DocID < ps[j].DocID })
			c.Terms = append(c.Terms, corpus.TermPostings{Term: fmt.Sprintf("t%d", t), Postings: ps})
			c.TotalPostings += int64(len(ps))
		}
		var total uint64
		for _, l := range c.DocLens {
			total += uint64(l)
		}
		c.AvgDocLen = float64(total) / float64(numDocs)
		if c.AvgDocLen == 0 {
			c.AvgDocLen = 1
		}

		schemes := append(compress.AllSchemes(), compress.SchemeHybrid)
		scheme := schemes[int(schemeSeed)%len(schemes)]
		if scheme == compress.S16 {
			scheme = compress.SchemeHybrid // S16 cannot hold arbitrary deltas alone
		}
		idx := Build(c, BuildOptions{Scheme: scheme, BlockSize: blockSize})

		for ti := range c.Terms {
			tp := &c.Terms[ti]
			pl := idx.MustList(tp.Term)
			var docs, tfs []uint32
			for b := range pl.Blocks {
				docs, tfs = idx.DecodeBlock(pl, b, docs, tfs)
			}
			if len(docs) != len(tp.Postings) {
				return false
			}
			for i, p := range tp.Postings {
				if docs[i] != p.DocID || tfs[i] != p.TF {
					return false
				}
			}
			// Spot-check SeekGEQ against linear search.
			for trial := 0; trial < 5; trial++ {
				target := uint32(rng.Intn(numDocs + 2))
				cur := NewCursor(idx, pl)
				ok := cur.SeekGEQ(target)
				wantIdx := -1
				for i, p := range tp.Postings {
					if p.DocID >= target {
						wantIdx = i
						break
					}
				}
				if (wantIdx >= 0) != ok {
					return false
				}
				if ok && cur.Doc() != tp.Postings[wantIdx].DocID {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
