package query

import "testing"

// FuzzParse checks the expression parser never panics on arbitrary input,
// and that everything it accepts round-trips stably through String().
func FuzzParse(f *testing.F) {
	seeds := []string{
		`"a"`,
		`"a" AND "b"`,
		`"a" OR ("b" AND "c")`,
		`(((("x"))))`,
		`"a" AND`,
		`""`,
		`"unterminated`,
		`AND OR ()`,
		"\"\x00\"",
		`"a" and "b" Or "c"`,
		`"a" AND ("b" OR "c") AND ("d" OR "e" OR "f")`,
		`"a" OR "a" OR "a"`,
		`  "spaced"   AND   "out"  `,
		`("a" AND "b") OR ("a" AND "b")`,
		`"üñíçødé" AND "テスト"`,
		`"a"AND"b"`,
		`)(`,
		`"a" ANDAND "b"`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		node, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := node.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("String() output %q does not reparse: %v", rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("String() not a fixed point: %q -> %q", rendered, again.String())
		}
		// DNF must terminate and produce only terms from the expression.
		terms := map[string]bool{}
		for _, term := range node.Terms() {
			terms[term] = true
		}
		for _, conj := range node.DNF() {
			if len(conj) == 0 {
				t.Fatal("empty conjunct in DNF")
			}
			for _, term := range conj {
				if !terms[term] {
					t.Fatalf("DNF invented term %q", term)
				}
			}
		}
	})
}
