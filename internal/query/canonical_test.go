package query

import "testing"

func TestCanonical(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{`"a"`, "a"},
		{`"a" AND "b"`, "a&b"},
		{`"b" AND "a"`, "a&b"},
		{`"a" AND "b" AND "b"`, "a&b"},
		{`"a" OR "b"`, "a|b"},
		{`"b" OR "a"`, "a|b"},
		{`"a" OR "a"`, "a"},
		{`"a" AND ("b" OR "c")`, "a&b|a&c"},
		{`("c" OR "b") AND "a"`, "a&b|a&c"},
		{`("a" AND "b") OR ("a" AND "c")`, "a&b|a&c"},
		// Absorption is deliberately not applied.
		{`"a" OR ("a" AND "b")`, "a|a&b"},
	}
	for _, tc := range cases {
		got := MustParse(tc.expr).Canonical()
		if got != tc.want {
			t.Errorf("Canonical(%s) = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

// TestCanonicalEquivalenceClasses verifies the coalescing property the
// front door relies on: expressions with the same DNF match semantics
// share a key, and semantically different expressions do not.
func TestCanonicalEquivalenceClasses(t *testing.T) {
	same := [][]string{
		{`"x" AND "y"`, `"y" AND "x"`, `"x" AND "y" AND "x"`},
		{`"x" OR "y" OR "z"`, `"z" OR "y" OR "x"`},
		{`"x" AND ("y" OR "z")`, `("x" AND "y") OR ("x" AND "z")`},
	}
	for gi, group := range same {
		want := MustParse(group[0]).Canonical()
		for _, e := range group[1:] {
			if got := MustParse(e).Canonical(); got != want {
				t.Errorf("group %d: Canonical(%s) = %q, want %q (same class as %s)",
					gi, e, got, want, group[0])
			}
		}
	}
	distinct := []string{`"x"`, `"y"`, `"x" AND "y"`, `"x" OR "y"`}
	seen := map[string]string{}
	for _, e := range distinct {
		key := MustParse(e).Canonical()
		if prev, dup := seen[key]; dup {
			t.Errorf("distinct expressions %s and %s share key %q", prev, e, key)
		}
		seen[key] = e
	}
}
