// Package query parses the boolean query expressions accepted by the
// paper's offloading API (Section IV-D): quoted terms combined with AND/OR
// and round brackets, e.g. `"A" AND ("B" OR "C")`. It also normalizes mixed
// queries to the disjunctive form BOSS executes ("intersections first":
// A AND (B OR C) becomes (A AND B) OR (A AND C)).
package query

import (
	"fmt"
	"sort"
	"strings"
)

// Op is a node operator.
type Op int

// Node operators.
const (
	OpTerm   Op = iota // leaf: a single query term
	OpAnd              // intersection of children
	OpOr               // union of children
	OpSparse           // sparse-dot family (Q7): sum of quantized impacts
)

// Node is a parsed query expression node. Term is set only for OpTerm;
// Children only for OpAnd/OpOr (always ≥ 2 children, same-op children are
// flattened) and OpSparse (≥ 1 term leaves). OpSparse is only ever the
// root: `SPARSE("a", "b")` is a whole query family, not a boolean
// operand, and the parser rejects it under AND/OR.
type Node struct {
	Op       Op
	Term     string
	Children []*Node
}

// Term returns a leaf node.
func Term(name string) *Node { return &Node{Op: OpTerm, Term: name} }

// Sparse returns a sparse-dot (Q7) query over the given terms.
func Sparse(terms ...string) *Node {
	children := make([]*Node, len(terms))
	for i, t := range terms {
		children[i] = Term(t)
	}
	return &Node{Op: OpSparse, Children: children}
}

// And returns the intersection of nodes, flattening nested ANDs.
func And(nodes ...*Node) *Node { return combine(OpAnd, nodes) }

// Or returns the union of nodes, flattening nested ORs.
func Or(nodes ...*Node) *Node { return combine(OpOr, nodes) }

func combine(op Op, nodes []*Node) *Node {
	var flat []*Node
	for _, n := range nodes {
		if n.Op == op {
			flat = append(flat, n.Children...)
		} else {
			flat = append(flat, n)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Node{Op: op, Children: flat}
}

// Terms returns every term in the expression, in appearance order, with
// duplicates preserved.
func (n *Node) Terms() []string {
	var out []string
	n.walk(func(m *Node) {
		if m.Op == OpTerm {
			out = append(out, m.Term)
		}
	})
	return out
}

func (n *Node) walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.walk(fn)
	}
}

// NumTerms reports the number of term occurrences.
func (n *Node) NumTerms() int { return len(n.Terms()) }

// CountTerms reports the number of term occurrences without materializing
// them (NumTerms allocates the term slice; the serving path calls this once
// per query per shard).
func (n *Node) CountTerms() int {
	c := 0
	if n.Op == OpTerm {
		c = 1
	}
	for _, child := range n.Children {
		c += child.CountTerms()
	}
	return c
}

// String renders the expression in the API syntax with minimal parentheses
// (AND binds tighter than OR).
func (n *Node) String() string {
	switch n.Op {
	case OpTerm:
		return `"` + n.Term + `"`
	case OpAnd:
		parts := make([]string, len(n.Children))
		for i, c := range n.Children {
			s := c.String()
			if c.Op == OpOr {
				s = "(" + s + ")"
			}
			parts[i] = s
		}
		return strings.Join(parts, " AND ")
	case OpOr:
		parts := make([]string, len(n.Children))
		for i, c := range n.Children {
			parts[i] = c.String()
		}
		return strings.Join(parts, " OR ")
	case OpSparse:
		parts := make([]string, len(n.Children))
		for i, c := range n.Children {
			parts[i] = `"` + c.Term + `"`
		}
		return "SPARSE(" + strings.Join(parts, ", ") + ")"
	default:
		return "?"
	}
}

// IsPureAnd reports whether the expression is a single term or a conjunction
// of terms only.
func (n *Node) IsPureAnd() bool {
	if n.Op == OpTerm {
		return true
	}
	if n.Op != OpAnd {
		return false
	}
	for _, c := range n.Children {
		if c.Op != OpTerm {
			return false
		}
	}
	return true
}

// IsPureOr reports whether the expression is a single term or a disjunction
// of terms only.
func (n *Node) IsPureOr() bool {
	if n.Op == OpTerm {
		return true
	}
	if n.Op != OpOr {
		return false
	}
	for _, c := range n.Children {
		if c.Op != OpTerm {
			return false
		}
	}
	return true
}

// DNF normalizes the expression into disjunctive normal form: a union of
// conjunctions, each a list of terms. This is exactly the paper's mixed-
// query execution order ("BOSS performs intersections first"): A AND (B OR
// C) becomes [[A B] [A C]]. A pure term yields one single-term conjunct.
func (n *Node) DNF() [][]string {
	switch n.Op {
	case OpTerm:
		return [][]string{{n.Term}}
	case OpOr:
		var out [][]string
		for _, c := range n.Children {
			out = append(out, c.DNF()...)
		}
		return out
	case OpAnd:
		// Cross product of the children's DNFs.
		out := [][]string{{}}
		for _, c := range n.Children {
			cd := c.DNF()
			next := make([][]string, 0, len(out)*len(cd))
			for _, a := range out {
				for _, b := range cd {
					conj := make([]string, 0, len(a)+len(b))
					conj = append(conj, a...)
					conj = append(conj, b...)
					next = append(next, conj)
				}
			}
			out = next
		}
		return out
	case OpSparse:
		// Sparse queries are not boolean: they have no disjunctive
		// normal form. Execution paths dispatch on OpSparse before
		// normalizing, so reaching here is a programming error.
		panic("query: sparse node has no DNF")
	default:
		panic("query: unknown op")
	}
}

// Canonical renders the expression's DNF in a canonical form usable as a
// coalescing key: terms within each conjunct are sorted and deduplicated,
// conjuncts are sorted lexicographically and deduplicated, and the result
// joins conjunct terms with '&' and conjuncts with '|'. Every expression
// with the same DNF match semantics maps to the same key — `"b" AND "a"`,
// `"a" AND "b"`, and `"a" AND "b" AND "b"` all yield `a&b` — which is what
// the front-door singleflight layer dedups concurrent identical queries on.
// (Absorption is not applied: `"a" OR ("a" AND "b")` keeps both conjuncts.
// Keys are unambiguous for tokenized terms, which never contain '&'/'|'.)
//
// Sparse queries canonicalize to '~' plus their sorted, deduplicated
// terms joined with '&'. Tokenized terms never contain '~', so sparse
// keys can never collide with boolean keys: SPARSE("b", "a") → `~a&b`,
// which the front door dedups exactly like boolean keys.
func (n *Node) Canonical() string {
	if n.Op == OpSparse {
		terms := n.Terms()
		sort.Strings(terms)
		return "~" + strings.Join(dedupSorted(terms), "&")
	}
	dnf := n.DNF()
	conjs := make([]string, 0, len(dnf))
	for _, conj := range dnf {
		terms := append([]string(nil), conj...)
		sort.Strings(terms)
		conjs = append(conjs, strings.Join(dedupSorted(terms), "&"))
	}
	sort.Strings(conjs)
	return strings.Join(dedupSorted(conjs), "|")
}

// dedupSorted compacts consecutive duplicates of a sorted slice in place.
func dedupSorted(s []string) []string {
	w := 0
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			s[w] = v
			w++
		}
	}
	return s[:w]
}

// --- parser ---

type tokenKind int

const (
	tokTerm tokenKind = iota
	tokAnd
	tokOr
	tokSparse
	tokComma
	tokLParen
	tokRParen
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t') {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	switch c := l.src[l.pos]; {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case c == '"':
		l.pos++
		termStart := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("query: unterminated quote at %d", start)
		}
		term := l.src[termStart:l.pos]
		l.pos++ // closing quote
		if term == "" {
			return token{}, fmt.Errorf("query: empty term at %d", start)
		}
		return token{kind: tokTerm, text: term, pos: start}, nil
	default:
		for l.pos < len(l.src) && isWordByte(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		switch strings.ToUpper(word) {
		case "AND":
			return token{kind: tokAnd, pos: start}, nil
		case "OR":
			return token{kind: tokOr, pos: start}, nil
		case "SPARSE":
			return token{kind: tokSparse, pos: start}, nil
		case "":
			return token{}, fmt.Errorf("query: unexpected character %q at %d", c, start)
		default:
			return token{}, fmt.Errorf("query: unexpected word %q at %d (terms must be quoted)", word, start)
		}
	}
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// Parse parses an expression in the offloading-API syntax: a boolean
// expression over quoted terms, or the sparse-dot form
// `SPARSE("a", "b", ...)` (which must be the whole query).
func Parse(src string) (*Node, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var n *Node
	var err error
	if p.tok.kind == tokSparse {
		n, err = p.parseSparse()
	} else {
		n, err = p.parseOr()
	}
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input at %d", p.tok.pos)
	}
	return n, nil
}

// parseSparse parses `SPARSE("a", "b", ...)` with the SPARSE keyword as
// the current token.
func (p *parser) parseSparse() (*Node, error) {
	if err := p.advance(); err != nil { // consume SPARSE
		return nil, err
	}
	if p.tok.kind != tokLParen {
		return nil, fmt.Errorf("query: SPARSE needs '(' at %d", p.tok.pos)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var children []*Node
	for {
		if p.tok.kind != tokTerm {
			return nil, fmt.Errorf("query: SPARSE expects a quoted term at %d", p.tok.pos)
		}
		children = append(children, Term(p.tok.text))
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokRParen {
		return nil, fmt.Errorf("query: missing ')' in SPARSE at %d", p.tok.pos)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return &Node{Op: OpSparse, Children: children}, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) *Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

func (p *parser) parseOr() (*Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	nodes := []*Node{left}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, right)
	}
	return Or(nodes...), nil
}

func (p *parser) parseAnd() (*Node, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	nodes := []*Node{left}
	for p.tok.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, right)
	}
	return And(nodes...), nil
}

func (p *parser) parsePrimary() (*Node, error) {
	switch p.tok.kind {
	case tokTerm:
		n := Term(p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("query: missing ')' at %d", p.tok.pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil
	case tokSparse:
		return nil, fmt.Errorf("query: SPARSE cannot appear under boolean operators (at %d); it must be the whole query", p.tok.pos)
	case tokEOF:
		return nil, fmt.Errorf("query: unexpected end of expression")
	default:
		return nil, fmt.Errorf("query: unexpected token at %d", p.tok.pos)
	}
}
