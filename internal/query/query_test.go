package query

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSingleTerm(t *testing.T) {
	n := MustParse(`"cat"`)
	if n.Op != OpTerm || n.Term != "cat" {
		t.Fatalf("parsed %+v", n)
	}
}

func TestParseAndOrPrecedence(t *testing.T) {
	// AND binds tighter than OR: A OR B AND C == A OR (B AND C).
	n := MustParse(`"a" OR "b" AND "c"`)
	if n.Op != OpOr || len(n.Children) != 2 {
		t.Fatalf("root = %+v", n)
	}
	if n.Children[0].Term != "a" {
		t.Fatalf("left child = %+v", n.Children[0])
	}
	right := n.Children[1]
	if right.Op != OpAnd || right.Children[0].Term != "b" || right.Children[1].Term != "c" {
		t.Fatalf("right child = %+v", right)
	}
}

func TestParseParens(t *testing.T) {
	n := MustParse(`("a" OR "b") AND "c"`)
	if n.Op != OpAnd {
		t.Fatalf("root op = %v", n.Op)
	}
	if n.Children[0].Op != OpOr {
		t.Fatalf("grouped child = %+v", n.Children[0])
	}
}

func TestParseFlattensChains(t *testing.T) {
	n := MustParse(`"a" AND "b" AND "c" AND "d"`)
	if n.Op != OpAnd || len(n.Children) != 4 {
		t.Fatalf("4-term AND should flatten: %+v", n)
	}
	n = MustParse(`"a" OR "b" OR "c" OR "d"`)
	if n.Op != OpOr || len(n.Children) != 4 {
		t.Fatalf("4-term OR should flatten: %+v", n)
	}
}

func TestParseCaseInsensitiveOperators(t *testing.T) {
	n := MustParse(`"a" and "b" oR "c"`)
	if n.Op != OpOr {
		t.Fatalf("mixed-case operators: %+v", n)
	}
}

func TestParseTermsWithSpaces(t *testing.T) {
	n := MustParse(`"new york" AND "food truck"`)
	terms := n.Terms()
	if !reflect.DeepEqual(terms, []string{"new york", "food truck"}) {
		t.Fatalf("terms = %v", terms)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`"a" AND`,
		`AND "a"`,
		`"a" "b"`,
		`("a" OR "b"`,
		`"a")`,
		`"unterminated`,
		`""`,
		`cat`,
		`"a" XOR "b"`,
		`"a" & "b"`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{
		`"a"`,
		`"a" AND "b"`,
		`"a" OR "b"`,
		`"a" AND "b" AND "c" AND "d"`,
		`"a" AND ("b" OR "c" OR "d")`,
		`("a" OR "b") AND ("c" OR "d")`,
	}
	for _, src := range cases {
		n := MustParse(src)
		rendered := n.String()
		n2 := MustParse(rendered)
		if n2.String() != rendered {
			t.Errorf("String round trip: %q -> %q -> %q", src, rendered, n2.String())
		}
	}
}

func TestPurityPredicates(t *testing.T) {
	if !MustParse(`"a" AND "b"`).IsPureAnd() {
		t.Error("pure AND not detected")
	}
	if MustParse(`"a" AND ("b" OR "c")`).IsPureAnd() {
		t.Error("mixed query wrongly pure AND")
	}
	if !MustParse(`"a" OR "b"`).IsPureOr() {
		t.Error("pure OR not detected")
	}
	if !MustParse(`"a"`).IsPureAnd() || !MustParse(`"a"`).IsPureOr() {
		t.Error("single term should be both pure AND and pure OR")
	}
}

func TestDNFQ6(t *testing.T) {
	// The paper's running example: A AND (B OR C OR D) executes as
	// (A AND B) OR (A AND C) OR (A AND D).
	n := MustParse(`"a" AND ("b" OR "c" OR "d")`)
	got := n.DNF()
	want := [][]string{{"a", "b"}, {"a", "c"}, {"a", "d"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DNF = %v, want %v", got, want)
	}
}

func TestDNFShapes(t *testing.T) {
	cases := []struct {
		src  string
		want [][]string
	}{
		{`"a"`, [][]string{{"a"}}},
		{`"a" AND "b"`, [][]string{{"a", "b"}}},
		{`"a" OR "b"`, [][]string{{"a"}, {"b"}}},
		{`("a" OR "b") AND ("c" OR "d")`,
			[][]string{{"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}}},
		{`"a" AND "b" AND "c" AND "d"`, [][]string{{"a", "b", "c", "d"}}},
	}
	for _, tc := range cases {
		got := MustParse(tc.src).DNF()
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("DNF(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestNumTerms(t *testing.T) {
	if got := MustParse(`"a" AND ("b" OR "c" OR "d")`).NumTerms(); got != 4 {
		t.Fatalf("NumTerms = %d, want 4", got)
	}
}

func TestBuilderHelpers(t *testing.T) {
	n := And(Term("a"), Or(Term("b"), Term("c")))
	if n.String() != `"a" AND ("b" OR "c")` {
		t.Fatalf("built expr = %q", n.String())
	}
	// Single-node combination collapses.
	if And(Term("x")).Op != OpTerm {
		t.Fatal("And of one node should collapse to the node")
	}
	// Nested same-op flattens.
	n = Or(Or(Term("a"), Term("b")), Term("c"))
	if len(n.Children) != 3 {
		t.Fatalf("nested OR should flatten: %+v", n)
	}
}

func TestMustParsePanicsOnError(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("MustParse should panic on invalid input")
		} else if !strings.Contains(r.(error).Error(), "query:") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	MustParse(`bogus`)
}
