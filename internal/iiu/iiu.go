// Package iiu models IIU (Heo et al., ASPLOS 2020), the state-of-the-art
// inverted-index accelerator the paper compares against, with exactly the
// behaviors Sections II-D and III attribute to it:
//
//   - binary-search-based intersection: membership tests locate candidate
//     blocks through dependent random metadata probes and load them with
//     random reads — fast on DRAM, painful on SCM;
//   - merge-based union without any pruning: every block of every term is
//     streamed and every matching document is scored;
//   - multi-term queries spill intermediate result lists to memory and
//     re-load them for the next set operation (LD/ST Inter traffic);
//   - no hardware top-k: the full scored, unsorted result list is written
//     to memory and shipped to the host (ST Result + interconnect traffic);
//     following the paper's methodology, host-side top-k selection time is
//     NOT charged;
//   - a hardware-tied compression scheme: IIU's index should be built with
//     a single fixed scheme (the harness uses Bit-Packing) rather than the
//     hybrid per-list choice BOSS supports.
//
// IIU does have full intra-query parallelism: all four decompression and
// scoring units work on any query, which is why it beats BOSS-exhaustive on
// single-term queries in Figure 13.
package iiu

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/query"
	"boss/internal/sim"
	"boss/internal/topk"
)

// Hardware parameters of the IIU model.
const (
	clockGHz          = 1.0
	decompUnits       = 4 // usable by any query (intra-query parallelism)
	scoringUnits      = 4
	probeCyclesPerHop = 6 // on-chip comparator work per binary-search hop
	resultEntryBytes  = 8 // (docID, score) pair
	interEntryBytes   = 8 // intermediate (docID, tf) pair
	// cachedMetaLevels is how many upper levels of the block-metadata
	// search tree fit in IIU's on-chip buffers; only deeper binary-search
	// hops touch memory.
	cachedMetaLevels = 8
)

func cyclesToTime(c float64) sim.Duration {
	return sim.Duration(c / clockGHz * float64(sim.Nanosecond))
}

// Accelerator is an IIU device model over one index shard.
type Accelerator struct {
	idx *index.Index
}

// New returns an IIU model. The index should be built with a single fixed
// compression scheme to reflect IIU's hardware-tied decompressor.
func New(idx *index.Index) *Accelerator {
	return &Accelerator{idx: idx}
}

// Result is the outcome of one query.
type Result struct {
	// TopK holds the final ranked results. IIU itself emits an unsorted
	// scored list; the host's selection (not charged, per the paper's
	// methodology) produces this ranking.
	TopK []topk.Entry
	M    *perf.Metrics
}

// run tracks the state of a single query execution.
type run struct {
	acc *Accelerator
	m   *perf.Metrics

	decodeCycles float64 // total across streams; divided by decompUnits
	mergeCycles  float64
	scoreCycles  float64
}

// Run executes a query, returning top-k results and work metrics.
func (a *Accelerator) Run(node *query.Node, k int) (Result, error) {
	r := &run{acc: a, m: perf.NewMetrics()}
	matches, err := r.eval(node)
	if err != nil {
		return Result{}, err
	}

	// Score every matching document (no pruning anywhere in IIU).
	sel := topk.NewHeap(k)
	for _, pm := range matches {
		s := r.scoreDoc(pm)
		sel.Insert(pm.doc, s)
	}

	// The full scored, unsorted list is stored to pool memory (Figure 15's
	// ST Result traffic) and then read back by the host over the shared
	// interconnect; host-side top-k selection time itself is not charged,
	// per the paper's methodology.
	resultBytes := int64(len(matches)) * resultEntryBytes
	r.m.AddWrite(resultBytes, mem.CatStoreResult)
	r.m.AddHost(resultBytes, mem.CatStoreResult)

	// Pipeline stages overlap; the busiest unit class bounds compute time.
	stage := math.Max(r.decodeCycles/decompUnits,
		math.Max(r.mergeCycles, r.scoreCycles/scoringUnits))
	r.m.AddCompute(cyclesToTime(stage))
	return Result{TopK: sel.Results(), M: r.m}, nil
}

// postingMatch is a matched document with the tf of every matched term.
type postingMatch struct {
	doc   uint32
	terms []termTF
}

type termTF struct {
	pl *index.PostingList
	tf uint32
}

// scoreDoc charges scoring work and norm traffic for one document and
// returns its BM25 score.
func (r *run) scoreDoc(pm postingMatch) float64 {
	r.m.DocsEvaluated++
	// One per-document scoring-metadata access; docIDs ascend, so the
	// stream is prefetch-friendly (sequential bandwidth).
	r.m.AddSeqRead(index.DocNormBytes, mem.CatLoadScore)
	var s float64
	for _, tt := range pm.terms {
		s += r.acc.idx.TermScore(tt.pl, pm.doc, tt.tf)
		r.scoreCycles++
	}
	return s
}

// eval returns the full sorted match list for a query node.
func (r *run) eval(node *query.Node) ([]postingMatch, error) {
	switch node.Op {
	case query.OpTerm:
		return r.scanTerm(node.Term)
	case query.OpOr:
		lists := make([][]postingMatch, len(node.Children))
		for i, c := range node.Children {
			l, err := r.eval(c)
			if err != nil {
				return nil, err
			}
			lists[i] = l
		}
		// The merge tree feeds scoring directly for a root union; when the
		// union is an operand of an AND, the parent materializes it.
		return r.mergeUnion(lists), nil
	case query.OpAnd:
		lists := make([][]postingMatch, 0, len(node.Children))
		// Evaluate non-term children first (they become materialized
		// intermediates), terms stay as lazy posting lists handled by the
		// binary-search intersection.
		var terms []*index.PostingList
		for _, c := range node.Children {
			if c.Op == query.OpTerm {
				pl := r.acc.idx.List(c.Term)
				if pl == nil {
					return nil, fmt.Errorf("iiu: term %q not indexed", c.Term)
				}
				terms = append(terms, pl)
				continue
			}
			l, err := r.eval(c)
			if err != nil {
				return nil, err
			}
			r.spill(len(l)) // composite operand is materialized in memory
			lists = append(lists, l)
		}
		return r.intersect(terms, lists)
	default:
		return nil, fmt.Errorf("iiu: unknown query op %d", node.Op)
	}
}

// scanTerm streams a whole posting list sequentially (union path / single
// term).
func (r *run) scanTerm(term string) ([]postingMatch, error) {
	pl := r.acc.idx.List(term)
	if pl == nil {
		return nil, fmt.Errorf("iiu: term %q not indexed", term)
	}
	out := make([]postingMatch, 0, pl.DF)
	var docs, tfs []uint32
	for b := range pl.Blocks {
		r.chargeBlockLoad(pl, b, false)
		docs, tfs = r.acc.idx.DecodeBlock(pl, b, docs[:0], tfs[:0])
		for i := range docs {
			out = append(out, postingMatch{doc: docs[i], terms: []termTF{{pl, tfs[i]}}})
		}
	}
	return out, nil
}

// chargeBlockLoad accounts one block fetch. random marks binary-search
// located loads (intersection path).
func (r *run) chargeBlockLoad(pl *index.PostingList, b int, random bool) {
	meta := pl.Blocks[b]
	size := int64(meta.Length) + index.BlockMetaBytes
	if random {
		r.m.AddRandRead(size, mem.CatLoadList, true)
	} else {
		r.m.AddSeqRead(size, mem.CatLoadList)
	}
	r.m.BlocksFetched++
	r.m.PostingsDecoded += int64(meta.Count)
	// Decode both the docID and tf streams (two values per posting) through
	// two-lane extraction: one cycle per posting.
	r.decodeCycles += float64(meta.Count)
}

// mergeUnion merges sorted match lists, concatenating term contributions
// for shared documents. One merge-tree comparison per consumed posting.
func (r *run) mergeUnion(lists [][]postingMatch) []postingMatch {
	pos := make([]int, len(lists))
	var out []postingMatch
	for {
		best := -1
		var bestDoc uint32
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if d := l[pos[i]].doc; best < 0 || d < bestDoc {
				best, bestDoc = i, d
			}
		}
		if best < 0 {
			return out
		}
		merged := postingMatch{doc: bestDoc}
		for i, l := range lists {
			if pos[i] < len(l) && l[pos[i]].doc == bestDoc {
				merged.terms = append(merged.terms, l[pos[i]].terms...)
				pos[i]++
				r.mergeCycles++
			}
		}
		out = append(out, merged)
	}
}

// spill charges a round trip of an intermediate list through memory.
func (r *run) spill(entries int) {
	bytes := int64(entries) * interEntryBytes
	r.m.AddWrite(bytes, mem.CatStoreInter)
	r.m.AddSeqRead(bytes, mem.CatLoadInter)
}

// intersect runs IIU's iterative SvS with binary-search membership testing.
// terms are raw posting lists; materialized holds already-evaluated
// composite operands (e.g. an inner union).
func (r *run) intersect(terms []*index.PostingList, materialized [][]postingMatch) ([]postingMatch, error) {
	// SvS: start from the smallest operand.
	sort.Slice(terms, func(i, j int) bool { return terms[i].DF < terms[j].DF })

	var current []postingMatch
	switch {
	case len(materialized) > 0:
		// Smallest materialized list seeds the iteration.
		sort.Slice(materialized, func(i, j int) bool {
			return len(materialized[i]) < len(materialized[j])
		})
		current = materialized[0]
		materialized = materialized[1:]
	case len(terms) > 0:
		first, err := r.scanTerm(terms[0].Term)
		if err != nil {
			return nil, err
		}
		current = first
		terms = terms[1:]
	}

	// Each pass after the first re-reads the previous pass's intermediate
	// from memory (spilled there at the end of that pass); the final pass's
	// output flows to scoring without an Inter round trip.
	passes := 0
	for _, pl := range terms {
		if passes > 0 {
			r.spill(len(current))
		}
		passes++
		current = r.probeList(current, pl)
		if len(current) == 0 {
			return current, nil
		}
	}
	for _, ml := range materialized {
		if passes > 0 {
			r.spill(len(current))
		}
		passes++
		current = r.probeMaterialized(current, ml)
		if len(current) == 0 {
			return current, nil
		}
	}
	return current, nil
}

// probeList performs membership tests of candidates against a posting list
// using block-level binary search: each new candidate block is located by
// dependent random metadata probes and loaded with a random read.
func (r *run) probeList(candidates []postingMatch, pl *index.PostingList) []postingMatch {
	var out []postingMatch
	loaded := -1
	var docs, tfs []uint32
	nBlocks := len(pl.Blocks)
	// Binary-search depth over block metadata; the top cachedMetaLevels
	// levels live on-chip, deeper hops read memory. Lookups for different
	// candidates are independent and pipeline, so the probes are
	// bandwidth-bound (random), while the block-data load that depends on
	// the search outcome pays full latency.
	hops := bits.Len(uint(nBlocks))
	memHops := hops - cachedMetaLevels
	if memHops < 0 {
		memHops = 0
	}
	for _, cand := range candidates {
		r.m.MembershipProbes++
		b := findBlock(pl, cand.doc)
		if b < 0 {
			continue
		}
		if b != loaded {
			for h := 0; h < memHops; h++ {
				r.m.AddRandRead(index.BlockMetaBytes, mem.CatLoadList, false)
			}
			r.mergeCycles += float64(hops * probeCyclesPerHop)
			r.chargeBlockLoad(pl, b, true)
			docs, tfs = r.acc.idx.DecodeBlock(pl, b, docs[:0], tfs[:0])
			loaded = b
		}
		// Binary search within the decoded block (on-chip).
		i := sort.Search(len(docs), func(i int) bool { return docs[i] >= cand.doc })
		r.mergeCycles += float64(bits.Len(uint(len(docs))))
		if i < len(docs) && docs[i] == cand.doc {
			out = append(out, postingMatch{
				doc:   cand.doc,
				terms: append(append([]termTF(nil), cand.terms...), termTF{pl, tfs[i]}),
			})
		}
	}
	return out
}

// probeMaterialized intersects candidates with an in-memory intermediate
// list (sorted): a two-pointer merge with sequential re-reads already
// charged by spill().
func (r *run) probeMaterialized(candidates []postingMatch, ml []postingMatch) []postingMatch {
	var out []postingMatch
	j := 0
	for _, cand := range candidates {
		for j < len(ml) && ml[j].doc < cand.doc {
			j++
			r.mergeCycles++
		}
		r.mergeCycles++
		if j < len(ml) && ml[j].doc == cand.doc {
			out = append(out, postingMatch{
				doc:   cand.doc,
				terms: append(append([]termTF(nil), cand.terms...), ml[j].terms...),
			})
		}
	}
	return out
}

// findBlock returns the index of the block that could contain doc, or -1.
func findBlock(pl *index.PostingList, doc uint32) int {
	i := sort.Search(len(pl.Blocks), func(i int) bool { return pl.Blocks[i].LastDoc >= doc })
	if i >= len(pl.Blocks) {
		return -1
	}
	if pl.Blocks[i].FirstDoc > doc {
		return -1 // falls in a gap between blocks
	}
	return i
}
