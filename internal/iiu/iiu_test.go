package iiu

import (
	"math"
	"testing"

	"boss/internal/compress"
	"boss/internal/corpus"
	"boss/internal/engine"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/query"
	"boss/internal/topk"
)

type fixture struct {
	c   *corpus.Corpus
	idx *index.Index
	acc *Accelerator
	eng *engine.Engine
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	idx := index.Build(c, index.BuildOptions{Scheme: compress.BP}) // IIU's fixed scheme
	return &fixture{c: c, idx: idx, acc: New(idx), eng: engine.New(idx)}
}

func sameEntries(a, b []topk.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].DocID != b[i].DocID || math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			return false
		}
	}
	return true
}

func TestIIUMatchesSoftwareEngine(t *testing.T) {
	f := newFixture(t)
	for _, qt := range corpus.AllQueryTypes() {
		for _, q := range corpus.SampleQueries(f.c, qt, 6, 77) {
			node := query.MustParse(q.Expr)
			got, err := f.acc.Run(node, 50)
			if err != nil {
				t.Fatalf("%s: %v", q.Expr, err)
			}
			want, err := f.eng.Run(node, 50)
			if err != nil {
				t.Fatal(err)
			}
			if !sameEntries(got.TopK, want.TopK) {
				t.Fatalf("%s (%s): IIU disagrees with engine", qt, q.Expr)
			}
		}
	}
}

func TestIIUUnknownTerm(t *testing.T) {
	f := newFixture(t)
	for _, expr := range []string{`"missing"`, `"t0" AND "missing"`, `"t0" OR "missing"`} {
		if _, err := f.acc.Run(query.MustParse(expr), 10); err == nil {
			t.Fatalf("%s: expected error", expr)
		}
	}
}

func TestIIUUnionReadsEverything(t *testing.T) {
	// IIU has no pruning: a union loads every block of every term and
	// scores every matching document.
	f := newFixture(t)
	a, b := f.c.Terms[2].Term, f.c.Terms[5].Term
	res, err := f.acc.Run(query.MustParse(`"`+a+`" OR "`+b+`"`), 10)
	if err != nil {
		t.Fatal(err)
	}
	wantBlocks := int64(len(f.idx.MustList(a).Blocks) + len(f.idx.MustList(b).Blocks))
	if res.M.BlocksFetched != wantBlocks {
		t.Fatalf("fetched %d blocks, exhaustive union needs %d", res.M.BlocksFetched, wantBlocks)
	}
}

func TestIIUStoresFullResultList(t *testing.T) {
	f := newFixture(t)
	term := f.c.Terms[3].Term
	res, err := f.acc.Run(query.MustParse(`"`+term+`"`), 10)
	if err != nil {
		t.Fatal(err)
	}
	df := int64(f.idx.MustList(term).DF)
	if got := res.M.Cat[mem.CatStoreResult]; got != df*resultEntryBytes {
		t.Fatalf("ST Result = %d bytes, want %d (df=%d × 8B)", got, df*resultEntryBytes, df)
	}
	if res.M.HostBytes != df*resultEntryBytes {
		t.Fatalf("host traffic = %d, want full scored list", res.M.HostBytes)
	}
	if res.M.DocsEvaluated != df {
		t.Fatalf("evaluated %d docs, want all %d", res.M.DocsEvaluated, df)
	}
}

func TestIIUIntersectionUsesRandomAccess(t *testing.T) {
	f := newFixture(t)
	a, b := f.c.Terms[1].Term, f.c.Terms[4].Term
	res, err := f.acc.Run(query.MustParse(`"`+a+`" AND "`+b+`"`), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.RandAccesses == 0 || res.M.DependentRandAccesses == 0 {
		t.Fatal("binary-search intersection must produce dependent random accesses")
	}
	if res.M.MembershipProbes == 0 {
		t.Fatal("membership probes not counted")
	}
}

func TestIIUMultiTermSpillsIntermediates(t *testing.T) {
	f := newFixture(t)
	// A 4-term AND among common terms produces nonempty intermediates.
	terms := []string{f.c.Terms[0].Term, f.c.Terms[1].Term, f.c.Terms[2].Term, f.c.Terms[3].Term}
	expr := `"` + terms[0] + `" AND "` + terms[1] + `" AND "` + terms[2] + `" AND "` + terms[3] + `"`
	res, err := f.acc.Run(query.MustParse(expr), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Cat[mem.CatStoreInter] == 0 || res.M.Cat[mem.CatLoadInter] == 0 {
		t.Fatalf("multi-term AND must spill intermediates (got ST=%d LD=%d)",
			res.M.Cat[mem.CatStoreInter], res.M.Cat[mem.CatLoadInter])
	}
	if res.M.Cat[mem.CatStoreInter] != res.M.Cat[mem.CatLoadInter] {
		t.Fatal("every spilled byte must be re-loaded exactly once")
	}
}

func TestIIUTwoTermANDDoesNotSpill(t *testing.T) {
	f := newFixture(t)
	a, b := f.c.Terms[1].Term, f.c.Terms[2].Term
	res, err := f.acc.Run(query.MustParse(`"`+a+`" AND "`+b+`"`), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Cat[mem.CatStoreInter] != 0 {
		t.Fatal("a single intersection pass has no intermediate to spill")
	}
}

func TestIIUMixedQuerySpillsUnion(t *testing.T) {
	f := newFixture(t)
	expr := `"` + f.c.Terms[0].Term + `" AND ("` + f.c.Terms[1].Term + `" OR "` + f.c.Terms[2].Term + `" OR "` + f.c.Terms[3].Term + `")`
	res, err := f.acc.Run(query.MustParse(expr), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Cat[mem.CatStoreInter] == 0 {
		t.Fatal("the inner union must be materialized to memory")
	}
}

func TestIIUBenefitsMoreFromDRAM(t *testing.T) {
	// Figure 16: IIU's random accesses make it gain more from DRAM than a
	// sequential engine would.
	f := newFixture(t)
	a, b := f.c.Terms[0].Term, f.c.Terms[6].Term
	res, err := f.acc.Run(query.MustParse(`"`+a+`" AND "`+b+`"`), 10)
	if err != nil {
		t.Fatal(err)
	}
	scm := res.M.Latency(mem.SCM())
	dram := res.M.Latency(mem.DRAM())
	if float64(scm)/float64(dram) < 1.5 {
		t.Fatalf("IIU intersection DRAM gain %.2fx, expected well above 1.5x",
			float64(scm)/float64(dram))
	}
}

func TestIIUNormLineBatching(t *testing.T) {
	f := newFixture(t)
	term := f.c.Terms[0].Term
	res, err := f.acc.Run(query.MustParse(`"`+term+`"`), 10)
	if err != nil {
		t.Fatal(err)
	}
	df := int64(f.idx.MustList(term).DF)
	loads := res.M.CatAcc[mem.CatLoadScore]
	if loads == 0 {
		t.Fatal("no norm loads charged")
	}
	if loads > df {
		t.Fatalf("norm line loads (%d) cannot exceed scored docs (%d)", loads, df)
	}
}

func TestIIUDeterministic(t *testing.T) {
	f := newFixture(t)
	node := query.MustParse(`"t1" AND ("t3" OR "t5")`)
	r1, err := f.acc.Run(node, 20)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.acc.Run(node, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(r1.TopK, r2.TopK) || r1.M.ComputeTime != r2.M.ComputeTime {
		t.Fatal("runs not deterministic")
	}
}
