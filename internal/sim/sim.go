// Package sim provides a small transaction-level discrete-event simulation
// kernel used by the memory-system and accelerator models.
//
// The kernel is deliberately simple: a virtual clock measured in picoseconds,
// an event queue, and "resources" that serialize access with a given service
// time (bandwidth servers). Models advance virtual time by requesting service
// from resources; the kernel tracks utilization so harness code can report
// bandwidth figures.
//
// All times are expressed as sim.Time (picoseconds) so that both a 1 GHz
// accelerator clock (1000 ps/cycle) and sub-nanosecond DRAM events can be
// represented exactly with integers.
package sim

import "fmt"

// Time is a point in virtual time, in picoseconds.
type Time int64

// Duration is a span of virtual time, in picoseconds.
type Duration = Time

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds converts a Duration to floating-point seconds.
func Seconds(d Duration) float64 { return float64(d) / float64(Second) }

// FromSeconds converts floating-point seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break to keep FIFO order for equal times
	fn  func()
}

// before reports whether e fires ahead of o: earlier virtual time first,
// schedule order (FIFO) among equal times.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a by-value binary min-heap of events. A typed heap keeps
// Schedule free of per-event allocations: container/heap would box each
// *event through interface{} and force one heap-allocated event per call,
// which the event-driven pool simulation pays millions of times per run.
type eventQueue []event

//boss:hotpath one call per scheduled event; millions per pool simulation.
func (q *eventQueue) push(e event) {
	h := append(*q, e)
	*q = h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

//boss:hotpath
func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the callback so the GC can collect it
	h = h[:n]
	*q = h
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h[r].before(&h[c]) {
			c = r
		}
		if !h[c].before(&h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}

// Engine is a discrete-event simulation engine. The zero value is not ready
// for use; call NewEngine.
type Engine struct {
	now   Time
	queue eventQueue
	seq   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule arranges for fn to run at time at. Scheduling in the past panics:
// that is always a model bug.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, e.now))
	}
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) {
	e.Schedule(e.now+d, fn)
}

// Run drains the event queue, advancing the clock, until no events remain.
func (e *Engine) Run() {
	for len(e.queue) > 0 {
		ev := e.queue.pop()
		e.now = ev.at
		ev.fn()
	}
}

// RunUntil drains events with timestamps <= deadline. Events beyond the
// deadline remain queued; the clock is left at the deadline or at the last
// executed event, whichever is later.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		ev := e.queue.pop()
		e.now = ev.at
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Resource is a serially-reused facility (a bus, a memory channel, a divider).
// Requests are granted in arrival order; each request occupies the resource
// for its service time. Acquire returns the time at which the request
// completes. Resources also accumulate busy time so utilization can be
// reported.
type Resource struct {
	name     string
	freeAt   Time
	busy     Duration
	requests int64
}

// NewResource returns a named resource that is free at time zero.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name reports the resource name given at construction.
func (r *Resource) Name() string { return r.name }

// Acquire requests service starting no earlier than at, occupying the
// resource for d. It returns the completion time. The request waits behind
// any earlier request still in service (FIFO).
func (r *Resource) Acquire(at Time, d Duration) Time {
	start := at
	if r.freeAt > start {
		start = r.freeAt
	}
	end := start + d
	r.freeAt = end
	r.busy += d
	r.requests++
	return end
}

// FreeAt reports when the resource next becomes free.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime reports the total service time accumulated.
func (r *Resource) BusyTime() Duration { return r.busy }

// Requests reports the number of Acquire calls.
func (r *Resource) Requests() int64 { return r.requests }

// Utilization reports busy time as a fraction of elapsed time (0 if elapsed
// is zero).
func (r *Resource) Utilization(elapsed Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(r.busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset returns the resource to its initial state.
func (r *Resource) Reset() {
	r.freeAt = 0
	r.busy = 0
	r.requests = 0
}
