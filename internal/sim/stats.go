package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Counter accumulates a named integer statistic.
type Counter struct {
	n int64
}

// Add increments the counter by v.
func (c *Counter) Add(v int64) { c.n += v }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value reports the accumulated count.
func (c *Counter) Value() int64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Stats is a bag of named counters used by models to report traffic and work
// breakdowns (e.g. bytes loaded per memory-access category).
type Stats struct {
	counters map[string]*Counter
}

// NewStats returns an empty stats bag.
func NewStats() *Stats {
	return &Stats{counters: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it at zero if
// needed.
func (s *Stats) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Add adds v to the named counter.
func (s *Stats) Add(name string, v int64) { s.Counter(name).Add(v) }

// Get reports the value of the named counter (0 if absent).
func (s *Stats) Get(name string) int64 {
	if c, ok := s.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// Names reports all counter names in sorted order.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds every counter of other into s. Counters merge in sorted name
// order: counter creation in s then happens in a run-independent order, so
// aggregation downstream of a merge can never pick up map-order
// nondeterminism (bosslint simdeterminism finding).
func (s *Stats) Merge(other *Stats) {
	for _, name := range other.Names() {
		s.Add(name, other.Get(name))
	}
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	for _, c := range s.counters {
		c.Reset()
	}
}

// String renders the stats as "name=value" pairs, sorted by name.
func (s *Stats) String() string {
	var b strings.Builder
	for i, n := range s.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, s.Get(n))
	}
	return b.String()
}
