package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineFIFOForEqualTimes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events reordered: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested scheduling wrong: %v", fired)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(20, func() { ran++ })
	e.Schedule(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("RunUntil(20) ran %d events, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %d, want 20", e.Now())
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("Run after RunUntil ran %d total, want 3", ran)
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("bus")
	end1 := r.Acquire(0, 100)
	if end1 != 100 {
		t.Fatalf("first acquire ends at %d, want 100", end1)
	}
	// Second request arrives while busy: it must queue.
	end2 := r.Acquire(50, 100)
	if end2 != 200 {
		t.Fatalf("queued acquire ends at %d, want 200", end2)
	}
	// Third arrives after the resource is free: no queueing.
	end3 := r.Acquire(500, 100)
	if end3 != 600 {
		t.Fatalf("late acquire ends at %d, want 600", end3)
	}
	if r.BusyTime() != 300 {
		t.Fatalf("busy = %d, want 300", r.BusyTime())
	}
	if r.Requests() != 3 {
		t.Fatalf("requests = %d, want 3", r.Requests())
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("chan")
	r.Acquire(0, 250)
	if got := r.Utilization(1000); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Fatalf("utilization over zero elapsed = %v, want 0", got)
	}
	// Utilization is clamped at 1 even if accounting overshoots elapsed.
	if got := r.Utilization(100); got != 1 {
		t.Fatalf("clamped utilization = %v, want 1", got)
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 10)
	r.Reset()
	if r.BusyTime() != 0 || r.Requests() != 0 || r.FreeAt() != 0 {
		t.Fatal("reset did not clear state")
	}
}

// Property: for any sequence of (arrival, service) pairs with non-decreasing
// arrivals, completion times are strictly increasing and each completion is
// >= arrival + service.
func TestResourceMonotonicProperty(t *testing.T) {
	f := func(arrivals []uint16, services []uint16) bool {
		r := NewResource("p")
		at := Time(0)
		prevEnd := Time(-1)
		n := len(arrivals)
		if len(services) < n {
			n = len(services)
		}
		for i := 0; i < n; i++ {
			at += Time(arrivals[i])
			d := Duration(services[i]) + 1
			end := r.Acquire(at, d)
			if end < at+d {
				return false
			}
			if end <= prevEnd {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	s := NewStats()
	s.Add("a", 5)
	s.Add("a", 3)
	s.Counter("b").Inc()
	if s.Get("a") != 8 || s.Get("b") != 1 {
		t.Fatalf("stats wrong: %s", s)
	}
	if s.Get("missing") != 0 {
		t.Fatal("missing counter should read zero")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}

	other := NewStats()
	other.Add("a", 2)
	other.Add("c", 7)
	s.Merge(other)
	if s.Get("a") != 10 || s.Get("c") != 7 {
		t.Fatalf("merge wrong: %s", s)
	}
	if got := s.String(); got != "a=10 b=1 c=7" {
		t.Fatalf("String() = %q", got)
	}
	s.Reset()
	if s.Get("a") != 0 || s.Get("c") != 0 {
		t.Fatal("reset did not zero counters")
	}
}

func TestTimeConversions(t *testing.T) {
	if Seconds(Second) != 1.0 {
		t.Fatal("Seconds(Second) != 1")
	}
	if FromSeconds(0.5) != 500*Millisecond {
		t.Fatalf("FromSeconds(0.5) = %d", FromSeconds(0.5))
	}
	if Seconds(FromSeconds(2.5)) != 2.5 {
		t.Fatal("round trip failed")
	}
}
