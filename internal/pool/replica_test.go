package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"boss/internal/corpus"
	"boss/internal/mem"
	"boss/internal/query"
)

// replicaTestCorpus is shared across the replica tests; generation and
// index builds dominate their runtime.
func replicaTestCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	return corpus.Generate(corpus.ClueWebLike(0.005))
}

// replicatedConfig is the tests' replicated-cluster base: R copies,
// retries armed so rotation can fail over, serial shard sweep for
// deterministic event logs.
func replicatedConfig(r int) Config {
	cfg := DefaultConfig()
	cfg.Replicas = r
	cfg.Resilience = DefaultResilience()
	cfg.Workers = 1
	return cfg
}

// TestReplicatedMatchesSingleCopy: a pristine replicated cluster must
// return byte-identical rankings to a single-copy cluster — replicas
// serve the same blocks, and the plain paths pin to replica 0.
func TestReplicatedMatchesSingleCopy(t *testing.T) {
	c := replicaTestCorpus(t)
	single, err := NewCluster(DefaultConfig(), c, 3)
	if err != nil {
		t.Fatalf("NewCluster(R=1): %v", err)
	}
	repl, err := NewCluster(replicatedConfig(3), c, 3)
	if err != nil {
		t.Fatalf("NewCluster(R=3): %v", err)
	}
	if got := repl.Replicas(); got != 3 {
		t.Fatalf("Replicas() = %d, want 3", got)
	}
	for _, expr := range []string{`"t1"`, `"t2" AND "t3"`, `"t1" OR "t5"`} {
		want, err := single.SearchCtx(context.Background(), expr, 40)
		if err != nil {
			t.Fatalf("single %q: %v", expr, err)
		}
		got, err := repl.SearchCtx(context.Background(), expr, 40)
		if err != nil {
			t.Fatalf("replicated %q: %v", expr, err)
		}
		if len(got.TopK) != len(want.TopK) {
			t.Fatalf("%q: %d vs %d hits", expr, len(got.TopK), len(want.TopK))
		}
		for i := range got.TopK {
			if got.TopK[i] != want.TopK[i] {
				t.Fatalf("%q hit %d: %+v vs %+v", expr, i, got.TopK[i], want.TopK[i])
			}
		}
		if got.ServedBy == nil {
			t.Fatalf("%q: replicated result carries no ServedBy", expr)
		}
	}
	if res, err := single.SearchCtx(context.Background(), `"t1"`, 10); err != nil || res.ServedBy != nil {
		t.Fatalf("single-copy result allocated ServedBy: %v %v", res.ServedBy, err)
	}
}

// TestReplicaSelectionDeterministic: replica routing is a pure function
// of (seed, query, shard, attempt) — two identically-configured clusters
// serving the same query stream must pick byte-identical replicas.
func TestReplicaSelectionDeterministic(t *testing.T) {
	c := replicaTestCorpus(t)
	exprs := []string{`"t1"`, `"t2"`, `"t3" AND "t4"`, `"t1" OR "t6"`, `"t5"`}
	route := func() [][]int {
		cl, err := NewCluster(replicatedConfig(3), c, 4)
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		var out [][]int
		for _, e := range exprs {
			res, err := cl.SearchCtx(context.Background(), e, 20)
			if err != nil {
				t.Fatalf("SearchCtx(%q): %v", e, err)
			}
			out = append(out, res.ServedBy)
		}
		return out
	}
	a, b := route(), route()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("replica routing diverged across identical runs:\n%v\n%v", a, b)
	}
	// The stream must actually spread across copies — a constant pick
	// would pass the determinism check while hiding a broken draw.
	seen := map[int]bool{}
	for _, q := range a {
		for _, ri := range q {
			seen[ri] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("5 queries x 4 shards landed on a single replica: %v", a)
	}
}

// TestReplicaFailoverUncorrectable: with R=2 and copy 0 of every shard
// dead, retries rotate onto the surviving copy, so queries complete
// fully served with no degradation — where the same plan on a
// single-copy cluster degrades.
func TestReplicaFailoverUncorrectable(t *testing.T) {
	c := replicaTestCorpus(t)
	cl, err := NewCluster(replicatedConfig(2), c, 3)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	plan := &mem.FaultPlan{Seed: 7}
	for si := 0; si < cl.Shards(); si++ {
		plan.DeadDevices = append(plan.DeadDevices, cl.ReplicaDevice(si, 0))
	}
	cl.SetFaultPlan(plan)
	res, err := cl.SearchCtx(context.Background(), `"t1" AND "t2"`, 30)
	if err != nil {
		t.Fatalf("SearchCtx with copy 0 dead: %v", err)
	}
	if res.Degraded != 0 {
		t.Fatalf("Degraded = %b, want 0 (copy 1 holds every shard)", res.Degraded)
	}
	for si, ri := range res.ServedBy {
		if ri != 1 {
			t.Fatalf("shard %d served by replica %d, want 1 (replica 0 is dead)", si, ri)
		}
	}

	// Control: the same outage on a single-copy cluster loses the shards.
	single, err := NewCluster(func() Config { c := DefaultConfig(); c.Resilience = DefaultResilience(); return c }(), c, 3)
	if err != nil {
		t.Fatalf("NewCluster(R=1): %v", err)
	}
	single.SetFaultPlan(&mem.FaultPlan{Seed: 7, DeadDevices: []int{0, 1, 2}})
	if _, err := single.SearchCtx(context.Background(), `"t1" AND "t2"`, 30); err == nil {
		t.Fatal("single-copy cluster with every device dead returned a result")
	}
}

// TestFetchReplicaFailover: the fetch phase rides the same rotation — a
// dead copy 0 must not cost a single document.
func TestFetchReplicaFailover(t *testing.T) {
	c := replicaTestCorpus(t)
	cl, err := NewCluster(replicatedConfig(2), c, 2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	plan := &mem.FaultPlan{Seed: 3}
	for si := 0; si < cl.Shards(); si++ {
		plan.DeadDevices = append(plan.DeadDevices, cl.ReplicaDevice(si, 0))
	}
	cl.SetFaultPlan(plan)
	ids := []uint32{0, 5, uint32(c.Spec.NumDocs - 1)}
	res, err := cl.FetchBatch(context.Background(), ids)
	if err != nil {
		t.Fatalf("FetchBatch with copy 0 dead: %v", err)
	}
	if res.Degraded != 0 {
		t.Fatalf("fetch Degraded = %b, want 0", res.Degraded)
	}
	for i, d := range res.Docs {
		if d.DocID != ids[i] || len(d.Fields) == 0 {
			t.Fatalf("doc %d came back empty: %+v", ids[i], d)
		}
	}
}

// TestFreshSharesArtifactsMatchesResults: Fresh must produce a cluster
// that answers identically to its receiver while owning fresh serving
// state, and must reject a bad config.
func TestFreshSharesArtifactsMatchesResults(t *testing.T) {
	c := replicaTestCorpus(t)
	base, err := NewCluster(DefaultConfig(), c, 3)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	fr, err := base.Fresh(replicatedConfig(2))
	if err != nil {
		t.Fatalf("Fresh: %v", err)
	}
	if fr.Replicas() != 2 {
		t.Fatalf("Fresh Replicas() = %d, want 2", fr.Replicas())
	}
	want, err := base.SearchCtx(context.Background(), `"t1" OR "t3"`, 25)
	if err != nil {
		t.Fatalf("base search: %v", err)
	}
	got, err := fr.SearchCtx(context.Background(), `"t1" OR "t3"`, 25)
	if err != nil {
		t.Fatalf("fresh search: %v", err)
	}
	if len(got.TopK) != len(want.TopK) {
		t.Fatalf("%d vs %d hits", len(got.TopK), len(want.TopK))
	}
	for i := range got.TopK {
		if got.TopK[i] != want.TopK[i] {
			t.Fatalf("hit %d: %+v vs %+v", i, got.TopK[i], want.TopK[i])
		}
	}
	bad := DefaultConfig()
	bad.Replicas = 0
	if _, err := base.Fresh(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("Fresh(zero Replicas): err = %v, want ErrBadConfig", err)
	}
}

// hedgedCluster builds a 1-shard, 2-replica cluster with hedging armed
// and a timer the test controls.
func hedgedCluster(t *testing.T, c *corpus.Corpus) *Cluster {
	t.Helper()
	cfg := replicatedConfig(2)
	cfg.Resilience.HedgeEnabled = true
	cfg.Resilience.HedgeCutoff = time.Millisecond
	cl, err := NewCluster(cfg, c, 1)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return cl
}

// neverFire is a hedge timer that never fires.
func neverFire(time.Duration) (<-chan time.Time, func() bool) {
	return make(chan time.Time), func() bool { return true }
}

// firedTimer is a hedge timer that has already fired.
func firedTimer(time.Duration) (<-chan time.Time, func() bool) {
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch, func() bool { return false }
}

// eventTrace renders a shard's event log without wall-clock fields so
// two runs can be compared byte for byte.
func eventTrace(cl *Cluster, si int) string {
	var s string
	for ri := 0; ri < cl.Replicas(); ri++ {
		for _, ev := range cl.ReplicaEvents(si, ri) {
			s += fmt.Sprintf("r%d:%s:a%d ", ev.Replica, ev.Kind, ev.Attempt)
		}
	}
	return s
}

// TestHedgePrimaryWinsBeforeCutoff: when the primary answers before the
// timer fires, no backup is spawned and the result is unhedged.
func TestHedgePrimaryWinsBeforeCutoff(t *testing.T) {
	c := replicaTestCorpus(t)
	cl := hedgedCluster(t, c)
	cl.timerFn = neverFire
	res, err := cl.SearchCtx(context.Background(), `"t1"`, 15)
	if err != nil {
		t.Fatalf("SearchCtx: %v", err)
	}
	if res.Hedged != 0 || res.HedgeWins != 0 {
		t.Fatalf("Hedged=%d HedgeWins=%d, want 0/0 (primary beat the cutoff)", res.Hedged, res.HedgeWins)
	}
	for si := 0; si < cl.Shards(); si++ {
		for _, ev := range cl.Events(si) {
			if ev.Kind == EvHedge {
				t.Fatalf("EvHedge recorded with the timer never firing: %+v", ev)
			}
		}
	}
}

// hedgePrimary computes which replica the rotation will pick as the
// attempt-0 primary for expr on shard 0 — the same pure draw
// pickReplica makes — so the tests can pin their straggler to it.
func hedgePrimary(cl *Cluster, expr string) int {
	return int(replicaDraw(uint64(cl.res.Seed), mem.StableKey(expr), 0) % uint64(cl.Replicas()))
}

// stragglerRun returns a runFn that blocks the given replica until its
// context dies (the straggling primary) and delegates every other call
// to the real attempt path (the hedged backup).
func stragglerRun(cl *Cluster, straggler int) (runFn func(context.Context, *query.Node, [][]string, int, int, int) shardOut, stalled *atomic.Int32) {
	stalled = new(atomic.Int32)
	return func(ctx context.Context, node *query.Node, dnf [][]string, si, ri, k int) shardOut {
		if ri == straggler {
			<-ctx.Done()
			stalled.Add(1)
			return shardOut{err: shardError(si, ctx.Err())}
		}
		return cl.runReplicaCtx(ctx, node, dnf, si, ri, k)
	}, stalled
}

// TestHedgeBackupWins: a straggling primary is hedged; the backup's
// result is adopted, the loser is cancelled, and — critically — the
// abandoned primary never counts against its breaker.
func TestHedgeBackupWins(t *testing.T) {
	c := replicaTestCorpus(t)
	cl := hedgedCluster(t, c)
	cl.timerFn = firedTimer
	const expr = `"t1" AND "t2"`
	run, stalled := stragglerRun(cl, hedgePrimary(cl, expr))
	cl.runFn = run

	node, dnf, err := cl.prepare(expr)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	want := cl.runReplicaCtx(context.Background(), node, dnf, 0, 0, 15)
	if want.err != nil {
		t.Fatalf("direct attempt: %v", want.err)
	}
	res, err := cl.SearchCtx(context.Background(), expr, 15)
	if err != nil {
		t.Fatalf("SearchCtx: %v", err)
	}
	if res.Hedged != 1 || res.HedgeWins != 1 {
		t.Fatalf("Hedged=%d HedgeWins=%d, want 1/1", res.Hedged, res.HedgeWins)
	}
	if len(res.TopK) != len(want.topk) {
		t.Fatalf("hedged result lost hits: %d vs %d", len(res.TopK), len(want.topk))
	}
	for i := range res.TopK {
		if res.TopK[i] != want.topk[i] {
			t.Fatalf("hedged hit %d: %+v vs %+v", i, res.TopK[i], want.topk[i])
		}
	}
	// The cancelled primary must actually have been cancelled.
	deadline := time.Now().Add(2 * time.Second)
	for stalled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("straggling primary was never cancelled")
		}
		time.Sleep(time.Millisecond)
	}
	// Loser accounting: no replica may carry a failure event — the
	// abandoned primary's outcome never reaches a breaker.
	for ri := 0; ri < cl.Replicas(); ri++ {
		for _, ev := range cl.ReplicaEvents(0, ri) {
			if ev.Kind == EvFailure || ev.Kind == EvBreakerOpen {
				t.Fatalf("hedge loser settled a breaker: %+v", ev)
			}
		}
	}
	// Exactly one EvHedge, on the backup.
	hedges := 0
	for ri := 0; ri < cl.Replicas(); ri++ {
		for _, ev := range cl.ReplicaEvents(0, ri) {
			if ev.Kind == EvHedge {
				hedges++
			}
		}
	}
	if hedges != 1 {
		t.Fatalf("EvHedge count = %d, want 1", hedges)
	}
}

// TestHedgeOrderingDeterministic: the scripted straggler scenario must
// produce a byte-identical resilience event trace across two fresh runs
// (and, under -race, with the race detector watching the hedge spawn).
func TestHedgeOrderingDeterministic(t *testing.T) {
	c := replicaTestCorpus(t)
	trace := func() string {
		cl := hedgedCluster(t, c)
		cl.timerFn = firedTimer
		run, _ := stragglerRun(cl, hedgePrimary(cl, `"t2"`))
		cl.runFn = run
		if _, err := cl.SearchCtx(context.Background(), `"t2"`, 10); err != nil {
			t.Fatalf("SearchCtx: %v", err)
		}
		// The loser's goroutine records nothing, but wait for it anyway so
		// the trace can't race a late event append.
		time.Sleep(5 * time.Millisecond)
		return eventTrace(cl, 0)
	}
	a, b := trace(), trace()
	if a != b {
		t.Fatalf("hedge event traces diverged:\n%q\n%q", a, b)
	}
	if a == "" {
		t.Fatal("hedge scenario recorded no events")
	}
}

// TestHedgeLoserGoroutineExits: the cancelled-loser path must not leak —
// after the hedged query completes and the loser is cancelled, the
// goroutine count returns to its baseline.
func TestHedgeLoserGoroutineExits(t *testing.T) {
	c := replicaTestCorpus(t)
	cl := hedgedCluster(t, c)
	cl.timerFn = firedTimer
	run, stalled := stragglerRun(cl, hedgePrimary(cl, `"t1"`))
	cl.runFn = run

	before := runtime.NumGoroutine()
	if _, err := cl.SearchCtx(context.Background(), `"t1"`, 10); err != nil {
		t.Fatalf("SearchCtx: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if stalled.Load() > 0 && runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: before=%d now=%d stalled=%d",
				before, runtime.NumGoroutine(), stalled.Load())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestHedgeRidesPrimaryWhenBackupSick: when every other copy's breaker
// rejects at hedge-fire time, the attempt rides the primary instead of
// failing, and nothing is recorded as hedged.
func TestHedgeRidesPrimaryWhenBackupSick(t *testing.T) {
	c := replicaTestCorpus(t)
	cl := hedgedCluster(t, c)
	cl.timerFn = firedTimer
	// Open every non-primary breaker by failing it past the threshold,
	// with a cooldown long enough that no half-open probe can sneak in.
	cl.res.BreakerCooldown = time.Hour
	now := time.Now()
	primary := hedgePrimary(cl, `"t1"`)
	for ri := 0; ri < cl.Replicas(); ri++ {
		if ri == primary {
			continue
		}
		st := cl.states[0][ri]
		for i := 0; i < cl.res.BreakerThreshold; i++ {
			st.failure(0, now, cl.res.BreakerThreshold, errors.New("seeded failure"))
		}
	}
	res, err := cl.SearchCtx(context.Background(), `"t1"`, 10)
	if err != nil {
		t.Fatalf("SearchCtx: %v", err)
	}
	if res.Hedged != 0 {
		t.Fatalf("Hedged = %d, want 0 (no healthy backup to hedge onto)", res.Hedged)
	}
	if len(res.TopK) == 0 {
		t.Fatal("query with sick backups returned no hits")
	}
}
