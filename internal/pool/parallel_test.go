package pool

import (
	"reflect"
	"testing"

	"boss/internal/corpus"
)

// TestClusterSearchParallelMatchesSerial pins the determinism guarantee:
// the concurrent shard fan-out must be bit-identical to visiting shards one
// at a time — top-k, per-shard metrics, and link traffic all included.
func TestClusterSearchParallelMatchesSerial(t *testing.T) {
	c, _, cl := clusterFixture(t, 5)
	for _, qt := range corpus.AllQueryTypes() {
		for _, q := range corpus.SampleQueries(c, qt, 5, 77) {
			want, err := cl.SearchSerial(q.Expr, 25)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cl.Search(q.Expr, 25)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.TopK, want.TopK) {
				t.Fatalf("%s: parallel top-k differs from serial", q.Expr)
			}
			if !reflect.DeepEqual(got.PerShard, want.PerShard) {
				t.Fatalf("%s: parallel per-shard metrics differ from serial", q.Expr)
			}
			if got.LinkBytes != want.LinkBytes {
				t.Fatalf("%s: link bytes %d != %d", q.Expr, got.LinkBytes, want.LinkBytes)
			}
		}
	}
}

// TestClusterSearchWorkerWidths exercises the explicit Workers settings,
// including the inline workers==1 path.
func TestClusterSearchWorkerWidths(t *testing.T) {
	c, _, _ := clusterFixture(t, 4)
	ref := mustCluster(t, DefaultConfig(), c, 4)
	want, err := ref.SearchSerial(`"t0" OR "t1"`, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 16} {
		cfg := DefaultConfig()
		cfg.Workers = w
		cl := mustCluster(t, cfg, c, 4)
		got, err := cl.Search(`"t0" OR "t1"`, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.TopK, want.TopK) {
			t.Fatalf("workers=%d: result differs from serial reference", w)
		}
	}
}

func TestClusterSearchBatchMatchesSearch(t *testing.T) {
	c, _, cl := clusterFixture(t, 4)
	var exprs []string
	for _, qt := range corpus.AllQueryTypes() {
		for _, q := range corpus.SampleQueries(c, qt, 3, 11) {
			exprs = append(exprs, q.Expr)
		}
	}
	br := cl.SearchBatch(exprs, 20)
	if br.Err != nil {
		t.Fatal(br.Err)
	}
	if len(br.Results) != len(exprs) || len(br.Errs) != len(exprs) {
		t.Fatal("batch result/err count mismatch")
	}
	for i, expr := range exprs {
		want, err := cl.Search(expr, 20)
		if err != nil {
			t.Fatal(err)
		}
		if br.Errs[i] != nil {
			t.Fatalf("%s: %v", expr, br.Errs[i])
		}
		if !reflect.DeepEqual(br.Results[i].TopK, want.TopK) {
			t.Fatalf("%s: batch top-k differs from Search", expr)
		}
		if !reflect.DeepEqual(br.Results[i].PerShard, want.PerShard) {
			t.Fatalf("%s: batch per-shard metrics differ from Search", expr)
		}
	}
}

func TestClusterSearchBatchErrors(t *testing.T) {
	_, _, cl := clusterFixture(t, 3)
	exprs := []string{`"t0"`, `"nosuchtermzz"`, `bad syntax`, `"t1"`}
	br := cl.SearchBatch(exprs, 10)
	if br.Err == nil {
		t.Fatal("batch containing bad queries should surface an error")
	}
	if br.Errs[0] != nil || br.Errs[3] != nil {
		t.Fatal("good queries must not be poisoned by failing neighbors")
	}
	if br.Errs[1] == nil || br.Errs[2] == nil {
		t.Fatal("both bad queries should record their own error")
	}
	if br.Err != br.Errs[1] {
		t.Fatal("Err should be the first failing query's error in input order")
	}
	if br.Results[0] == nil || br.Results[3] == nil {
		t.Fatal("good queries should still produce results")
	}
	if br.Results[1] != nil || br.Results[2] != nil {
		t.Fatal("failed queries should leave nil results")
	}

	empty := cl.SearchBatch(nil, 10)
	if empty.Err != nil || len(empty.Results) != 0 {
		t.Fatal("empty batch should succeed vacuously")
	}
}
