package pool

import (
	"math"
	"testing"

	"boss/internal/compress"
	"boss/internal/corpus"
	"boss/internal/engine"
	"boss/internal/index"
	"boss/internal/query"
	"boss/internal/topk"
)

func clusterFixture(t testing.TB, shards int) (*corpus.Corpus, *index.Index, *Cluster) {
	t.Helper()
	c := corpus.Generate(corpus.CCNewsLike(0.006))
	global := index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid})
	return c, global, mustCluster(t, DefaultConfig(), c, shards)
}

// mustCluster builds a cluster or fails the test.
func mustCluster(t testing.TB, cfg Config, c *corpus.Corpus, shards int) *Cluster {
	t.Helper()
	cl, err := NewCluster(cfg, c, shards)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func entriesEqual(a, b []topk.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].DocID != b[i].DocID || math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			return false
		}
	}
	return true
}

// TestClusterMatchesGlobalIndex is the central sharding property: a query
// fanned over docID-interval shards with global statistics must return
// exactly what one monolithic index returns.
func TestClusterMatchesGlobalIndex(t *testing.T) {
	c, global, cl := clusterFixture(t, 4)
	eng := engine.New(global)
	for _, qt := range corpus.AllQueryTypes() {
		for _, q := range corpus.SampleQueries(c, qt, 5, 333) {
			want, err := eng.Run(query.MustParse(q.Expr), 30)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cl.Search(q.Expr, 30)
			if err != nil {
				t.Fatalf("%s: %v", q.Expr, err)
			}
			if !entriesEqual(got.TopK, want.TopK) {
				t.Fatalf("%s (%s): cluster result differs from global index\n got %v\nwant %v",
					qt, q.Expr, got.TopK[:min(5, len(got.TopK))], want.TopK[:min(5, len(want.TopK))])
			}
		}
	}
}

func TestClusterShardCounts(t *testing.T) {
	_, _, cl := clusterFixture(t, 4)
	if cl.Shards() != 4 {
		t.Fatalf("shards = %d", cl.Shards())
	}
	// One shard degenerates to the single-node case.
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	one := mustCluster(t, DefaultConfig(), c, 1)
	if one.Shards() != 1 {
		t.Fatalf("single shard cluster has %d shards", one.Shards())
	}
	// More shards than documents: builder stops at populated intervals.
	tiny := &corpus.Corpus{}
	*tiny = *c
	many := mustCluster(t, DefaultConfig(), tiny, 7)
	if many.Shards() < 2 {
		t.Fatal("sharding produced too few nodes")
	}
}

func TestClusterUnknownTerm(t *testing.T) {
	_, _, cl := clusterFixture(t, 3)
	if _, err := cl.Search(`"definitelynotaterm"`, 10); err == nil {
		t.Fatal("unknown term should error")
	}
	if _, err := cl.Search(`bad syntax`, 10); err == nil {
		t.Fatal("malformed query should error")
	}
}

func TestClusterHandlesTermsMissingOnSomeShards(t *testing.T) {
	// Rare terms live on few shards; queries touching them must still
	// work and match the global index.
	c, global, cl := clusterFixture(t, 6)
	rare := c.Terms[len(c.Terms)-1].Term
	common := c.Terms[0].Term
	for _, expr := range []string{
		`"` + rare + `"`,
		`"` + common + `" AND "` + rare + `"`,
		`"` + common + `" OR "` + rare + `"`,
	} {
		want, err := engine.New(global).Run(query.MustParse(expr), 20)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.Search(expr, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !entriesEqual(got.TopK, want.TopK) {
			t.Fatalf("%s: sharded result differs from global", expr)
		}
	}
}

func TestClusterLinkTrafficIsPerShardTopK(t *testing.T) {
	_, _, cl := clusterFixture(t, 4)
	k := 15
	res, err := cl.Search(`"t0" OR "t1"`, k)
	if err != nil {
		t.Fatal(err)
	}
	// Each participating node ships at most k entries of 8 bytes.
	var active int64
	for _, m := range res.PerShard {
		if m != nil {
			active++
		}
	}
	if res.LinkBytes > active*int64(k)*8 {
		t.Fatalf("link bytes %d exceed %d shards x k x 8", res.LinkBytes, active)
	}
	if res.LinkBytes == 0 {
		t.Fatal("no link traffic recorded")
	}
}

func TestPruneForShard(t *testing.T) {
	has := map[string]struct{}{"a": {}, "b": {}}
	cases := []struct {
		expr string
		want string // "" means pruned to nothing
	}{
		{`"a"`, `"a"`},
		{`"z"`, ``},
		{`"a" AND "b"`, `"a" AND "b"`},
		{`"a" AND "z"`, ``},
		{`"a" OR "z"`, `"a"`},
		{`"z" OR "y"`, ``},
		{`"a" AND ("b" OR "z")`, `"a" AND "b"`},
		{`"z" AND ("a" OR "b")`, ``},
	}
	for _, tc := range cases {
		got := pruneForShard(query.MustParse(tc.expr), has)
		if tc.want == "" {
			if got != nil {
				t.Errorf("prune(%s) = %s, want nil", tc.expr, got)
			}
			continue
		}
		if got == nil || got.String() != tc.want {
			t.Errorf("prune(%s) = %v, want %s", tc.expr, got, tc.want)
		}
	}
}

func TestClusterGlobalStatsMatter(t *testing.T) {
	// Building shards WITHOUT global stats must (in general) change
	// scores: this guards against silently dropping the global-stats
	// plumbing.
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	perShard := (c.Spec.NumDocs + 1) / 2
	sc := shardCorpus(c, 0, uint32(perShard))
	local := index.Build(sc, index.BuildOptions{Scheme: compress.SchemeHybrid})
	gs := &index.GlobalStats{NumDocs: c.Spec.NumDocs, AvgDocLen: c.AvgDocLen, DF: map[string]int{}}
	for i := range c.Terms {
		gs.DF[c.Terms[i].Term] = len(c.Terms[i].Postings)
	}
	withGlobal := index.Build(sc, index.BuildOptions{Scheme: compress.SchemeHybrid, Global: gs})
	lpl, gpl := local.MustList("t0"), withGlobal.MustList("t0")
	if lpl.IDF == gpl.IDF {
		t.Fatal("global df should change t0's IDF on a half-collection shard")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestClusterRunBatch(t *testing.T) {
	c, _, cl := clusterFixture(t, 3)
	var exprs []string
	for _, q := range corpus.SampleQueries(c, corpus.Q3, 12, 21) {
		exprs = append(exprs, q.Expr)
	}
	cfg := DefaultConfig()
	cfg.K = 50
	rep, err := cl.RunBatch(exprs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerNode) != cl.Shards() {
		t.Fatalf("reports for %d nodes, want %d", len(rep.PerNode), cl.Shards())
	}
	if rep.QPS <= 0 {
		t.Fatal("no throughput measured")
	}
	// Sharding the work should let the pool beat a single node holding
	// everything (each shard processes ~1/3 of the postings per query).
	single := mustCluster(t, DefaultConfig(), c, 1)
	sRep, err := single.RunBatch(exprs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QPS <= sRep.QPS {
		t.Fatalf("3-node pool (%.0f qps) should beat 1 node (%.0f qps)", rep.QPS, sRep.QPS)
	}
}

func TestClusterRunBatchErrors(t *testing.T) {
	_, _, cl := clusterFixture(t, 2)
	if _, err := cl.RunBatch([]string{`bad`}, 0, DefaultConfig()); err == nil {
		t.Fatal("malformed query accepted")
	}
}
