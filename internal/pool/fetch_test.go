package pool

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"boss/internal/corpus"
	"boss/internal/mem"
)

// fetchFixture builds a small cluster and the set of all docIDs.
func fetchFixture(t testing.TB, shards int) (*corpus.Corpus, *Cluster) {
	t.Helper()
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	return c, mustCluster(t, DefaultConfig(), c, shards)
}

// expectedDoc recomputes the synthetic payload for a global docID.
func expectedDoc(c *corpus.Corpus, id uint32) (name, text []byte) {
	name = corpus.DocName(nil, id)
	text = corpus.DocText(c.Spec.Seed, id, c.DocLens[id], c.Spec.NumTerms, nil)
	return
}

func TestFetchBatchRoundTrip(t *testing.T) {
	c, cl := fetchFixture(t, 4)
	n := uint32(c.Spec.NumDocs)
	ids := []uint32{0, n - 1, n / 2, 1, n/2 + 1, n / 3, 0} // duplicates allowed
	res, err := cl.FetchBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 0 {
		t.Fatalf("pristine fetch degraded: %b", res.Degraded)
	}
	if len(res.Docs) != len(ids) {
		t.Fatalf("got %d docs for %d ids", len(res.Docs), len(ids))
	}
	fields, err := cl.DocFields()
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 || fields[0] != "name" || fields[1] != "text" {
		t.Fatalf("DocFields = %v", fields)
	}
	for i, id := range ids {
		d := res.Docs[i]
		if d.DocID != id || len(d.Fields) != 2 {
			t.Fatalf("doc %d: %+v", i, d)
		}
		name, text := expectedDoc(c, id)
		if !bytes.Equal(d.Fields[0], name) || !bytes.Equal(d.Fields[1], text) {
			t.Fatalf("doc %d (id %d): payload mismatch", i, id)
		}
	}
	if res.LinkBytes == 0 {
		t.Fatal("fetched payloads recorded no link traffic")
	}
	var charged bool
	for _, m := range res.PerShard {
		if m != nil && m.DocsFetched > 0 && m.Cat[mem.CatLoadDoc] > 0 {
			charged = true
		}
	}
	if !charged {
		t.Fatal("no shard charged CatLoadDoc traffic")
	}
	// Out-of-range id fails the call, typed as an input error.
	if _, err := cl.FetchBatch(context.Background(), []uint32{n}); err == nil {
		t.Fatal("out-of-range fetch succeeded")
	}
}

// TestFetchShardingIndependent: payload bytes must not depend on the
// shard layout — 1-shard and 5-shard clusters serve identical documents.
func TestFetchShardingIndependent(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	a := mustCluster(t, DefaultConfig(), c, 1)
	b := mustCluster(t, DefaultConfig(), c, 5)
	ids := make([]uint32, 0, 64)
	for id := uint32(0); int(id) < c.Spec.NumDocs; id += uint32(c.Spec.NumDocs/64 + 1) {
		ids = append(ids, id)
	}
	ra, err := a.FetchBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.FetchBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		for f := range ra.Docs[i].Fields {
			if !bytes.Equal(ra.Docs[i].Fields[f], rb.Docs[i].Fields[f]) {
				t.Fatalf("doc %d field %d differs across shard layouts", ids[i], f)
			}
		}
	}
}

func TestSearchFetch(t *testing.T) {
	c, cl := fetchFixture(t, 3)
	q := corpus.SampleQueries(c, corpus.Q2, 1, 7)[0]
	res, err := cl.SearchFetchCtx(context.Background(), q.Expr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) == 0 {
		t.Skip("query matched nothing")
	}
	if len(res.Docs) != len(res.TopK) {
		t.Fatalf("%d docs for %d hits", len(res.Docs), len(res.TopK))
	}
	for i, e := range res.TopK {
		if res.Docs[i].DocID != e.DocID {
			t.Fatalf("doc %d fetched id %d, hit id %d", i, res.Docs[i].DocID, e.DocID)
		}
		name, text := expectedDoc(c, e.DocID)
		if !bytes.Equal(res.Docs[i].Fields[0], name) || !bytes.Equal(res.Docs[i].Fields[1], text) {
			t.Fatalf("hit %d payload mismatch", i)
		}
	}
	// The ranking must be untouched by the fetch phase.
	plain, err := cl.SearchCtx(context.Background(), q.Expr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !entriesEqual(res.TopK, plain.TopK) {
		t.Fatal("fetch phase perturbed the ranking")
	}
}

func TestSearchFetchBatch(t *testing.T) {
	c, cl := fetchFixture(t, 3)
	qs := corpus.SampleQueries(c, corpus.Q2, 6, 11)
	exprs := make([]string, len(qs))
	for i, q := range qs {
		exprs[i] = q.Expr
	}
	br := cl.SearchFetchBatch(context.Background(), exprs, 10)
	if br.Err != nil {
		t.Fatal(br.Err)
	}
	for qi, res := range br.Results {
		if len(res.Docs) != len(res.TopK) {
			t.Fatalf("query %d: %d docs for %d hits", qi, len(res.Docs), len(res.TopK))
		}
		for i, e := range res.TopK {
			if res.Docs[i].DocID != e.DocID {
				t.Fatalf("query %d doc %d mismatch", qi, i)
			}
		}
	}
}

// TestFetchBatchQueries: document fetches ride the heterogeneous batch
// surface the front door flushes into.
func TestFetchBatchQueries(t *testing.T) {
	c, cl := fetchFixture(t, 2)
	q := corpus.SampleQueries(c, corpus.Q1, 1, 3)[0]
	br := cl.SearchBatchQueries(context.Background(), []BatchQuery{
		{Expr: q.Expr, K: 5},
		{FetchIDs: []uint32{1, 2, 3}},
		{Expr: q.Expr, FetchIDs: []uint32{1}}, // invalid: both
	})
	if br.Errs[0] != nil || br.Errs[1] != nil {
		t.Fatalf("errs: %v %v", br.Errs[0], br.Errs[1])
	}
	if len(br.Results[1].Docs) != 3 || br.Results[1].Docs[2].DocID != 3 {
		t.Fatalf("fetch query result: %+v", br.Results[1].Docs)
	}
	if !errors.Is(br.Errs[2], errExprAndFetch) {
		t.Fatalf("mixed query error = %v", br.Errs[2])
	}
	// A shard mask sheds masked shards' fetches without engaging breakers.
	masked := cl.SearchBatchQueries(context.Background(), []BatchQuery{
		{FetchIDs: []uint32{0, uint32(c.Spec.NumDocs - 1)}, ShardMask: 1},
	})
	if masked.Errs[0] != nil {
		t.Fatal(masked.Errs[0])
	}
	r := masked.Results[0]
	if r.Degraded&2 == 0 {
		t.Fatalf("masked shard not degraded: %b", r.Degraded)
	}
	if !errors.Is(r.ShardErrs[1], ErrShardShed) {
		t.Fatalf("masked shard err = %v", r.ShardErrs[1])
	}
	if r.Docs[0].DocID != 0 || len(r.Docs[0].Fields) == 0 {
		t.Fatalf("unmasked doc missing: %+v", r.Docs[0])
	}
	if len(r.Docs[1].Fields) != 0 {
		t.Fatal("masked shard still served its document")
	}
}

// TestFetchDegraded: a dead shard's documents degrade instead of failing
// the batch; a fully dead cluster fails.
func TestFetchDegraded(t *testing.T) {
	c, cl := fetchFixture(t, 2)
	cl.SetFaultPlan(&mem.FaultPlan{Seed: 1, DeadDevices: []int{1}})
	ids := []uint32{0, uint32(c.Spec.NumDocs - 1)}
	res, err := cl.FetchBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 2 {
		t.Fatalf("Degraded = %b, want shard 1", res.Degraded)
	}
	if !errors.Is(res.ShardErrs[1], mem.ErrDeviceDown) {
		t.Fatalf("shard err = %v", res.ShardErrs[1])
	}
	if len(res.Docs[0].Fields) == 0 || len(res.Docs[1].Fields) != 0 {
		t.Fatalf("degraded docs wrong: %+v", res.Docs)
	}
	// Both shards dead: the batch itself errors.
	cl.SetFaultPlan(&mem.FaultPlan{Seed: 1, DeadDevices: []int{0, 1}})
	if _, err := cl.FetchBatch(context.Background(), ids); !errors.Is(err, mem.ErrDeviceDown) {
		t.Fatalf("all-dead fetch err = %v", err)
	}
	// Restoring the plan restores service.
	cl.SetFaultPlan(nil)
	if res, err := cl.FetchBatch(context.Background(), ids); err != nil || res.Degraded != 0 {
		t.Fatalf("restored fetch: res=%+v err=%v", res, err)
	}
}

// TestFetchChargesCacheIndependent: the cluster replay invariant for the
// fetch phase — per-shard simulated charges are identical with and
// without the host-side cache.
func TestFetchChargesCacheIndependent(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	ids := make([]uint32, 0, 300)
	for i := 0; i < 300; i++ {
		ids = append(ids, uint32(i*7%c.Spec.NumDocs))
	}
	run := func(cacheBytes int64) *ClusterResult {
		cfg := DefaultConfig()
		cfg.CacheBytes = cacheBytes
		cl := mustCluster(t, cfg, c, 3)
		res, err := cl.FetchBatch(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(0)
	cached := run(64 << 20)
	for si := range plain.PerShard {
		a, b := plain.PerShard[si], cached.PerShard[si]
		if (a == nil) != (b == nil) {
			t.Fatalf("shard %d metrics presence differs", si)
		}
		if a != nil && *a != *b {
			t.Fatalf("shard %d charges diverge with cache:\nplain:  %+v\ncached: %+v", si, a, b)
		}
	}
	if plain.LinkBytes != cached.LinkBytes {
		t.Fatalf("link traffic diverges: %d vs %d", plain.LinkBytes, cached.LinkBytes)
	}
}

func TestFetchCancelled(t *testing.T) {
	_, cl := fetchFixture(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.FetchBatch(ctx, []uint32{0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
