// Package pool is the device-level, event-driven simulation of the paper's
// Figure 4 system: a memory node holding an index shard, several BOSS cores
// fed by a command queue and query scheduler, the node's SCM channels (with
// real queueing contention between cores), and the shared host
// interconnect. Where internal/perf composes per-query metrics analytically
// into a throughput roofline, this package replays each query's traffic
// through sim.Engine resources and measures throughput, latency percentiles
// and utilization directly — the two views cross-validate each other (see
// the package tests).
package pool

import (
	"errors"
	"fmt"
	"sort"

	"boss/internal/core"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/query"
	"boss/internal/sim"
)

// Config describes one simulated memory node.
type Config struct {
	// Cores is the number of BOSS cores on the node (the paper uses 8).
	Cores int
	// Mem is the node's device configuration (mem.SCM() or mem.DRAM()).
	Mem mem.Config
	// LinkGBs is the shared host-interconnect bandwidth.
	LinkGBs float64
	// K is the top-k depth used for all queries.
	K int
	// Opts configures the cores' early-termination features.
	Opts core.Options
	// Workers bounds the host-side goroutines Cluster.Search uses for its
	// shard fan-out and Cluster.SearchBatch uses to pipeline queries
	// (0 = GOMAXPROCS). It does not affect the simulated device models.
	Workers int
	// CacheBytes is the byte budget of the cluster's cross-query decoded-
	// block cache, shared by all shards' wall-clock accelerators (Search/
	// SearchSerial/SearchBatch). 0 disables the cache; negative values are
	// rejected by NewCluster with ErrBadConfig. It never touches the
	// event-driven simulated Device (RunBatch), whose modeled figures
	// must not depend on host-side caching.
	CacheBytes int64
	// Replicas is the number of independently-faultable copies of each
	// shard the cluster keeps (R-way replication). Each replica has its
	// own accelerator, fault-injection domain, circuit breaker, and
	// cache-key space; the resilient serving paths route across replicas
	// with deterministic seeded selection and skip replicas whose
	// breakers are open. 1 (the DefaultConfig value) is single-copy
	// serving, byte-identical to the pre-replication code path; values
	// below 1 are rejected by NewCluster with ErrBadConfig.
	Replicas int
	// Resilience configures the cluster's serving-path fault handling
	// (SearchCtx/SearchBatchCtx). Zero fields take DefaultResilience
	// values.
	Resilience Resilience
	// Faults, when non-empty, is the fault plan RunBatch applies to its
	// simulated devices (shard si plays device si). Nil injects nothing
	// and keeps every modeled figure byte-identical.
	Faults *mem.FaultPlan
}

// DefaultCacheBytes is the default decoded-block cache budget for wall-
// clock serving: 64 MiB comfortably holds the hot Zipf head of the
// harness corpora without approaching the index's own footprint.
const DefaultCacheBytes = 64 << 20

// DefaultConfig is the paper's node: 8 cores over SCM, one CXL-class link.
// Wall-clock serving APIs get the decoded-block cache by default.
func DefaultConfig() Config {
	return Config{
		Cores:      8,
		Mem:        mem.SCM(),
		LinkGBs:    mem.DefaultLinkGBs,
		K:          core.DefaultK,
		Opts:       core.DefaultOptions(),
		CacheBytes: DefaultCacheBytes,
		Replicas:   1,
	}
}

// Job is one query flowing through the device.
type Job struct {
	Expr   string
	node   *query.Node
	m      *perf.Metrics
	Submit sim.Time
	Start  sim.Time
	Done   sim.Time
	// Err is the typed fault that killed the job's replay, nil on
	// success. Always nil when the device has no fault injector.
	Err error
}

// Latency reports the job's queueing + execution time.
func (j *Job) Latency() sim.Duration { return j.Done - j.Submit }

// ServiceTime reports execution time excluding command-queue wait.
func (j *Job) ServiceTime() sim.Duration { return j.Done - j.Start }

// Device is one simulated memory node with its BOSS accelerator.
type Device struct {
	cfg  Config
	idx  *index.Index
	eng  *sim.Engine
	node *mem.Node
	mai  *mem.MAI
	link *mem.Link
	acc  *core.Accelerator

	// inj, when non-nil, injects faults into the replay: degraded
	// channels slow reads via the node model, and per-access fault draws
	// can fail a job with a typed error.
	inj *mem.Injector
	// ordinal numbers the device's checked accesses so fault draws are a
	// pure function of the (deterministic) replay order.
	ordinal uint64

	// command queue (Figure 4's front end)
	queue []*Job
	// per-core busy-until times; the query scheduler dispatches to the
	// first free core
	coreFree []sim.Time

	jobs []*Job
}

// New builds a device over an index shard.
func New(cfg Config, idx *index.Index) *Device {
	if cfg.Cores <= 0 {
		panic("pool: need at least one core")
	}
	node := mem.NewNode(cfg.Mem)
	return &Device{
		cfg:      cfg,
		idx:      idx,
		eng:      sim.NewEngine(),
		node:     node,
		mai:      mem.NewMAI(node),
		link:     mem.NewLink(cfg.LinkGBs),
		acc:      core.New(idx, cfg.Opts),
		coreFree: make([]sim.Time, cfg.Cores),
	}
}

// SetFault attaches a fault injector to the device's replay (nil
// restores the pristine model). Setup-time only.
func (d *Device) SetFault(inj *mem.Injector) {
	d.inj = inj
	d.node.SetFault(inj)
}

// Submit enqueues a query at the given simulated arrival time. It returns
// an error if the expression does not parse or references unknown terms.
func (d *Device) Submit(expr string, at sim.Time) error {
	node, err := query.Parse(expr)
	if err != nil {
		return err
	}
	// Pre-flight the query on the core model: this yields the work metrics
	// whose traffic the event simulation replays under contention.
	res, err := d.acc.Run(node, d.cfg.K)
	if err != nil {
		return err
	}
	j := &Job{Expr: expr, node: node, m: res.M, Submit: at}
	d.jobs = append(d.jobs, j)
	d.queue = append(d.queue, j)
	return nil
}

// chunkBytes is the unit in which sequential traffic is replayed against
// the node (one address-interleaving stripe).
const chunkBytes = 4096

// Run executes all submitted queries and returns the report. The scheduler
// dispatches queued jobs to cores as they become free; each job's memory
// traffic is replayed through the shared node channels, so cores contend
// for bandwidth exactly as the paper's cycle-level simulation has them do.
func (d *Device) Run() *Report {
	// Sort by arrival; the command queue is FIFO.
	sort.SliceStable(d.queue, func(i, j int) bool { return d.queue[i].Submit < d.queue[j].Submit })
	for _, j := range d.queue {
		coreID := d.nextFreeCore(j.Submit)
		start := maxTime(j.Submit, d.coreFree[coreID])
		j.Start = start
		j.Done = d.execute(j, start)
		d.coreFree[coreID] = j.Done
	}
	d.queue = d.queue[:0]
	return d.report()
}

// nextFreeCore picks the core that frees up earliest (ties toward lower
// index: the scheduler scans in order).
func (d *Device) nextFreeCore(at sim.Time) int {
	best := 0
	for i, f := range d.coreFree {
		if f < d.coreFree[best] {
			best = i
		}
	}
	_ = at
	return best
}

// execute replays one job's traffic against the shared node starting at
// start and returns its completion time.
func (d *Device) execute(j *Job, start sim.Time) sim.Time {
	if d.inj != nil {
		return d.executeFaulty(j, start)
	}
	m := j.m
	// Memory traffic: sequential bytes stream in stripe-sized chunks,
	// random accesses go one device line at a time, writes in chunks.
	// Addresses rotate across stripes so channel interleaving engages.
	var memDone sim.Time
	addr := uint64(j.Submit) // deterministic per-job placement seed
	issue := start
	charge := func(done sim.Time) {
		if done > memDone {
			memDone = done
		}
	}
	for remaining := m.SeqReadBytes; remaining > 0; remaining -= chunkBytes {
		size := int64(chunkBytes)
		if remaining < size {
			size = remaining
		}
		charge(d.mai.Read(issue, addr, int(size), mem.Sequential, mem.CatLoadList))
		addr += chunkBytes
	}
	if m.RandAccesses > 0 {
		per := m.RandReadBytes / m.RandAccesses
		if per <= 0 {
			per = 1
		}
		for i := int64(0); i < m.RandAccesses; i++ {
			addr = addr*6364136223846793005 + 1442695040888963407 // LCG scatter
			charge(d.mai.Read(issue, addr%(1<<41), int(per), mem.Random, mem.CatLoadList))
		}
	}
	for remaining := m.WriteBytes; remaining > 0; remaining -= chunkBytes {
		size := int64(chunkBytes)
		if remaining < size {
			size = remaining
		}
		charge(d.mai.Write(issue, addr, int(size), mem.CatStoreResult))
		addr += chunkBytes
	}

	// Results cross the shared link.
	linkDone := d.link.Transfer(issue, int(m.HostBytes), mem.CatStoreResult)
	charge(linkDone)

	// Pipeline: compute overlaps memory; serialized fetch hops and
	// dependent random accesses extend the critical path.
	computeDone := start + m.ComputeTime
	done := maxTime(computeDone, memDone)
	done += sim.Duration(m.DependentRandAccesses+m.SerialFetchHops) * d.cfg.Mem.ReadLatency
	return done
}

// replayMaxAttempts bounds the device's simulated re-reads of a
// transiently-failing access (matches the core model's fetch retry).
const replayMaxAttempts = 4

// executeFaulty is execute under an attached fault injector: reads go
// through the checked path, transient errors retry (re-charging channel
// time), and a permanent fault kills the job with a typed error. The
// pristine path never runs this code, so fault-free figures stay
// byte-identical.
func (d *Device) executeFaulty(j *Job, start sim.Time) sim.Time {
	if d.inj.Dead() {
		j.Err = mem.ErrDeviceDown
		return start
	}
	m := j.m
	var memDone sim.Time
	addr := uint64(j.Submit)
	issue := start
	charge := func(done sim.Time) {
		if done > memDone {
			memDone = done
		}
	}
	read := func(a uint64, size int, pattern mem.Pattern) bool {
		for attempt := 0; ; attempt++ {
			d.ordinal++
			done, err := d.mai.ReadChecked(issue, a, size, pattern, mem.CatLoadList, d.ordinal)
			charge(done)
			if err == nil {
				return true
			}
			if errors.Is(err, mem.ErrTransientRead) && attempt+1 < replayMaxAttempts {
				continue // re-read: the retry recharges the channel
			}
			j.Err = err
			return false
		}
	}
	ok := true
	for remaining := m.SeqReadBytes; ok && remaining > 0; remaining -= chunkBytes {
		size := int64(chunkBytes)
		if remaining < size {
			size = remaining
		}
		ok = read(addr, int(size), mem.Sequential)
		addr += chunkBytes
	}
	if ok && m.RandAccesses > 0 {
		per := m.RandReadBytes / m.RandAccesses
		if per <= 0 {
			per = 1
		}
		for i := int64(0); ok && i < m.RandAccesses; i++ {
			addr = addr*6364136223846793005 + 1442695040888963407 // LCG scatter
			ok = read(addr%(1<<41), int(per), mem.Random)
		}
	}
	if !ok {
		// The job died mid-replay: it occupied the node until the failing
		// access returned, but ships no results over the link.
		return maxTime(start+m.ComputeTime, memDone)
	}
	for remaining := m.WriteBytes; remaining > 0; remaining -= chunkBytes {
		size := int64(chunkBytes)
		if remaining < size {
			size = remaining
		}
		charge(d.mai.Write(issue, addr, int(size), mem.CatStoreResult))
		addr += chunkBytes
	}
	charge(d.link.Transfer(issue, int(m.HostBytes), mem.CatStoreResult))
	done := maxTime(start+m.ComputeTime, memDone)
	done += sim.Duration(m.DependentRandAccesses+m.SerialFetchHops) * d.cfg.Mem.ReadLatency
	return done
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// TLBStats reports the device MAI's translation counters.
func (d *Device) TLBStats() (hits, misses int64) {
	return d.mai.TLB().Hits(), d.mai.TLB().Misses()
}

// Report summarizes a Run.
type Report struct {
	Jobs        int
	Makespan    sim.Duration
	QPS         float64
	MeanLatency sim.Duration
	P50Latency  sim.Duration
	P99Latency  sim.Duration
	// NodeBandwidthGBs is the achieved device bandwidth over the makespan.
	NodeBandwidthGBs float64
	// LinkUtilization is the shared interconnect's busy fraction.
	LinkUtilization float64
	// PeakChannelUtilization is the busiest channel's utilization.
	PeakChannelUtilization float64
	// Failed counts jobs whose replay died on an injected fault;
	// Availability is the surviving fraction. Failed is always 0 (and
	// Availability 1) without a fault injector.
	Failed       int
	Availability float64
}

func (d *Device) report() *Report {
	r := &Report{Jobs: len(d.jobs)}
	if len(d.jobs) == 0 {
		return r
	}
	lats := make([]sim.Duration, 0, len(d.jobs))
	var sumLat sim.Duration
	var makespan sim.Time
	for _, j := range d.jobs {
		if j.Err != nil {
			r.Failed++
		}
		l := j.Latency()
		lats = append(lats, l)
		sumLat += l
		if j.Done > makespan {
			makespan = j.Done
		}
	}
	r.Availability = float64(len(d.jobs)-r.Failed) / float64(len(d.jobs))
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	r.Makespan = makespan
	r.MeanLatency = sumLat / sim.Duration(len(lats))
	r.P50Latency = lats[len(lats)/2]
	r.P99Latency = lats[len(lats)*99/100]
	if makespan > 0 {
		r.QPS = float64(len(d.jobs)) / sim.Seconds(makespan)
		r.NodeBandwidthGBs = d.node.Bandwidth(makespan)
		r.LinkUtilization = d.link.Utilization(makespan)
		r.PeakChannelUtilization = float64(d.node.BusyTime()) / float64(makespan)
	}
	return r
}

// String renders the report. Fault fields appear only when something
// failed, so fault-free output stays byte-identical to earlier versions.
func (r *Report) String() string {
	s := fmt.Sprintf(
		"jobs=%d makespan=%.3fms qps=%.0f latency(mean/p50/p99)=%.1f/%.1f/%.1fus node=%.2fGB/s link=%.1f%% peak-channel=%.1f%%",
		r.Jobs, sim.Seconds(r.Makespan)*1e3, r.QPS,
		sim.Seconds(r.MeanLatency)*1e6, sim.Seconds(r.P50Latency)*1e6, sim.Seconds(r.P99Latency)*1e6,
		r.NodeBandwidthGBs, 100*r.LinkUtilization, 100*r.PeakChannelUtilization)
	if r.Failed > 0 {
		s += fmt.Sprintf(" failed=%d avail=%.3f", r.Failed, r.Availability)
	}
	return s
}
