package pool

import (
	"reflect"
	"testing"

	"boss/internal/corpus"
	"boss/internal/mem"
)

// cacheTestCluster builds a small cluster and a Zipf-skewed workload that
// revisits hot terms, so cached runs actually exercise hits.
func cacheTestCluster(t *testing.T, cfg Config) (*Cluster, []string) {
	t.Helper()
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	cl := mustCluster(t, cfg, c, 3)
	var exprs []string
	for _, qt := range corpus.AllQueryTypes() {
		for _, q := range corpus.SampleZipfQueries(c, qt, 6, 0, 7) {
			exprs = append(exprs, q.Expr)
		}
	}
	return cl, exprs
}

// TestClusterCacheDeterminism is the PR's core safety property: with
// ModelDRAMCache off, enabling the decoded-block cache must not change one
// bit of any result or any simulated metric — rankings, traffic, timings —
// across repeated runs that do get cache hits.
func TestClusterCacheDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheBytes = 0 // start uncached
	cl, exprs := cacheTestCluster(t, cfg)
	k := 20

	type outcome struct {
		res []*ClusterResult
	}
	run := func() outcome {
		var o outcome
		for _, e := range exprs {
			r, err := cl.Search(e, k)
			if err != nil {
				t.Fatal(err)
			}
			o.res = append(o.res, r)
		}
		return o
	}

	base := run()

	cl.SetCacheBytes(DefaultCacheBytes)
	cold := run()
	warm := run() // second pass over the same queries: hits guaranteed

	st := cl.CacheStats()
	if st.Hits == 0 {
		t.Fatal("warm cached run recorded no cache hits; test exercises nothing")
	}

	for pass, got := range []outcome{cold, warm} {
		for qi := range exprs {
			b, g := base.res[qi], got.res[qi]
			if !reflect.DeepEqual(b.TopK, g.TopK) {
				t.Fatalf("pass %d query %d: cached TopK differs from uncached", pass, qi)
			}
			if b.LinkBytes != g.LinkBytes {
				t.Fatalf("pass %d query %d: LinkBytes %d != %d", pass, qi, g.LinkBytes, b.LinkBytes)
			}
			if len(b.PerShard) != len(g.PerShard) {
				t.Fatalf("pass %d query %d: shard count differs", pass, qi)
			}
			for si := range b.PerShard {
				if !reflect.DeepEqual(b.PerShard[si], g.PerShard[si]) {
					t.Fatalf("pass %d query %d shard %d: simulated metrics differ cached vs uncached:\n  uncached: %+v\n  cached:   %+v",
						pass, qi, si, b.PerShard[si], g.PerShard[si])
				}
			}
		}
	}
}

// TestClusterCacheBatchMatchesSearch checks SearchBatch with the default-on
// cache returns exactly what per-query Search returns.
func TestClusterCacheBatchMatchesSearch(t *testing.T) {
	cl, exprs := cacheTestCluster(t, DefaultConfig())
	k := 20
	br := cl.SearchBatch(exprs, k)
	if br.Err != nil {
		t.Fatal(br.Err)
	}
	for qi, e := range exprs {
		want, err := cl.Search(e, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.TopK, br.Results[qi].TopK) {
			t.Fatalf("query %d: batch TopK differs from Search", qi)
		}
	}
	if cl.CacheStats().Hits == 0 {
		t.Fatal("no hits across batch + repeated Search")
	}
}

// TestModelDRAMCache checks the what-if flag: modeled hits shift traffic
// from SCM sequential reads to the DRAM cache tier and drop decode work,
// so a warm query gets a strictly cheaper simulated latency.
func TestModelDRAMCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Opts.ModelDRAMCache = true
	cl, exprs := cacheTestCluster(t, cfg)
	k := 20

	coldSum := int64(0)
	for _, e := range exprs {
		r, err := cl.Search(e, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range r.PerShard {
			if m != nil {
				coldSum += m.SeqReadBytes
			}
		}
	}
	var hits, cacheBytes, warmSum int64
	for _, e := range exprs {
		r, err := cl.Search(e, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range r.PerShard {
			if m != nil {
				hits += m.CacheHits
				cacheBytes += m.CacheSeqReadBytes
				warmSum += m.SeqReadBytes
			}
		}
	}
	if hits == 0 || cacheBytes == 0 {
		t.Fatalf("warm what-if pass: hits=%d cacheBytes=%d, want both > 0", hits, cacheBytes)
	}
	if warmSum >= coldSum {
		t.Fatalf("modeled SCM traffic did not drop: warm %d >= cold %d", warmSum, coldSum)
	}
	// Sanity: DRAM-tier traffic is priced at DRAM bandwidth, which must be
	// configured faster than SCM for the what-if to mean anything.
	if mem.DRAM().SeqReadGBs <= mem.SCM().SeqReadGBs {
		t.Fatal("DRAM config not faster than SCM; what-if pricing is vacuous")
	}
}
