package pool

import (
	"testing"

	"boss/internal/compress"
	"boss/internal/core"
	"boss/internal/corpus"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/query"
	"boss/internal/sim"
)

func testIndex(t testing.TB) (*corpus.Corpus, *index.Index) {
	t.Helper()
	c := corpus.Generate(corpus.ClueWebLike(0.01))
	return c, index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid})
}

func submitBatch(t *testing.T, d *Device, c *corpus.Corpus, qt corpus.QueryType, n int) {
	t.Helper()
	queries := corpus.SampleQueries(c, qt, n, 11)
	for _, q := range queries {
		if err := d.Submit(q.Expr, 0); err != nil {
			t.Fatalf("submit %s: %v", q.Expr, err)
		}
	}
}

func TestDeviceRunsBatch(t *testing.T) {
	c, idx := testIndex(t)
	d := New(DefaultConfig(), idx)
	submitBatch(t, d, c, corpus.Q3, 24)
	r := d.Run()
	if r.Jobs != 24 {
		t.Fatalf("jobs = %d", r.Jobs)
	}
	if r.QPS <= 0 || r.Makespan <= 0 {
		t.Fatalf("degenerate report: %s", r)
	}
	if r.P99Latency < r.P50Latency || r.P50Latency <= 0 {
		t.Fatalf("latency percentiles wrong: %s", r)
	}
	if r.MeanLatency > r.Makespan {
		t.Fatal("mean latency cannot exceed makespan")
	}
}

func TestSubmitErrors(t *testing.T) {
	_, idx := testIndex(t)
	d := New(DefaultConfig(), idx)
	if err := d.Submit(`broken`, 0); err == nil {
		t.Fatal("malformed query accepted")
	}
	if err := d.Submit(`"notaterm"`, 0); err == nil {
		t.Fatal("unknown term accepted")
	}
}

func TestMoreCoresMoreThroughput(t *testing.T) {
	c, idx := testIndex(t)
	var qps [2]float64
	for i, cores := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.Cores = cores
		d := New(cfg, idx)
		submitBatch(t, d, c, corpus.Q5, 32)
		qps[i] = d.Run().QPS
	}
	if qps[1] <= qps[0]*2 {
		t.Fatalf("8 cores (%.0f qps) should well exceed 1 core (%.0f qps)", qps[1], qps[0])
	}
}

func TestEventSimAgreesWithAnalyticModel(t *testing.T) {
	// The event-driven device and the perf roofline are two views of the
	// same model; on a saturating batch they must agree within a modest
	// factor.
	c, idx := testIndex(t)
	cfg := DefaultConfig()
	cfg.K = 100
	d := New(cfg, idx)
	queries := corpus.SampleQueries(c, corpus.Q3, 40, 11)
	for _, q := range queries {
		if err := d.Submit(q.Expr, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Analytic throughput over the same workload.
	acc := core.New(idx, core.DefaultOptions())
	avg := perf.NewMetrics()
	for _, q := range queries {
		res, err := acc.Run(query.MustParse(q.Expr), cfg.K)
		if err != nil {
			t.Fatal(err)
		}
		avg.Merge(res.M)
	}
	avg.Scale(int64(len(queries)))
	analytic := avg.Throughput(cfg.Cores, cfg.Mem, cfg.LinkGBs)

	measured := d.Run().QPS
	ratio := measured / analytic
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("event sim (%.0f qps) and analytic model (%.0f qps) disagree by %.2fx",
			measured, analytic, ratio)
	}
}

func TestContentionRaisesLatency(t *testing.T) {
	// A single query on an idle device vs the same query inside a
	// saturating batch: channel queueing must show up in p99.
	c, idx := testIndex(t)
	q := corpus.SampleQueries(c, corpus.Q5, 1, 3)[0]

	solo := New(DefaultConfig(), idx)
	if err := solo.Submit(q.Expr, 0); err != nil {
		t.Fatal(err)
	}
	soloLat := solo.Run().MeanLatency

	cfg := DefaultConfig()
	cfg.Cores = 2 // few cores, deep queue
	busy := New(cfg, idx)
	for i := 0; i < 40; i++ {
		if err := busy.Submit(q.Expr, 0); err != nil {
			t.Fatal(err)
		}
	}
	busyLat := busy.Run().P99Latency
	if busyLat <= soloLat {
		t.Fatalf("p99 under load (%v) should exceed idle latency (%v)", busyLat, soloLat)
	}
}

func TestHostTopKSaturatesLink(t *testing.T) {
	// With the top-k module ablated (full result lists over the link), a
	// narrow link becomes visibly utilized; with hardware top-k it idles.
	c, idx := testIndex(t)
	mk := func(hostTopK bool) *Report {
		cfg := DefaultConfig()
		cfg.LinkGBs = 0.05 // deliberately narrow link
		cfg.K = 100
		cfg.Opts = core.DefaultOptions()
		cfg.Opts.HostTopK = hostTopK
		d := New(cfg, idx)
		submitBatch(t, d, c, corpus.Q5, 16)
		return d.Run()
	}
	hw := mk(false)
	sw := mk(true)
	if sw.LinkUtilization <= hw.LinkUtilization {
		t.Fatalf("host-side top-k link util (%.3f) should exceed hardware top-k (%.3f)",
			sw.LinkUtilization, hw.LinkUtilization)
	}
	if sw.QPS >= hw.QPS {
		t.Fatalf("host-side top-k (%.0f qps) should lose to hardware top-k (%.0f qps) on a narrow link",
			sw.QPS, hw.QPS)
	}
}

func TestDRAMNodeFasterThanSCM(t *testing.T) {
	c, idx := testIndex(t)
	run := func(cfg mem.Config) float64 {
		dc := DefaultConfig()
		dc.Mem = cfg
		d := New(dc, idx)
		submitBatch(t, d, c, corpus.Q2, 20)
		return d.Run().QPS
	}
	if dram, scm := run(mem.DRAM()), run(mem.SCM()); dram < scm {
		t.Fatalf("DRAM node (%.0f qps) should not lose to SCM (%.0f qps)", dram, scm)
	}
}

func TestStaggeredArrivals(t *testing.T) {
	c, idx := testIndex(t)
	d := New(DefaultConfig(), idx)
	queries := corpus.SampleQueries(c, corpus.Q1, 10, 5)
	gap := 50 * sim.Microsecond
	for i, q := range queries {
		if err := d.Submit(q.Expr, sim.Time(i)*gap); err != nil {
			t.Fatal(err)
		}
	}
	r := d.Run()
	// With arrivals spread out, the makespan must cover the arrival span.
	if r.Makespan < 9*gap {
		t.Fatalf("makespan %v shorter than the arrival span", r.Makespan)
	}
}

func TestEmptyRun(t *testing.T) {
	_, idx := testIndex(t)
	d := New(DefaultConfig(), idx)
	r := d.Run()
	if r.Jobs != 0 || r.QPS != 0 {
		t.Fatalf("empty run report: %s", r)
	}
}

func TestReportString(t *testing.T) {
	c, idx := testIndex(t)
	d := New(DefaultConfig(), idx)
	submitBatch(t, d, c, corpus.Q1, 4)
	s := d.Run().String()
	if len(s) == 0 || s[0] != 'j' {
		t.Fatalf("report string: %q", s)
	}
}
