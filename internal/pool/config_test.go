package pool

import (
	"context"
	"errors"
	"testing"
	"time"

	"boss/internal/corpus"
)

// TestNewClusterRejectsBadConfig audits the config validation gap: every
// nonsense field value must return ErrBadConfig from every construction
// path, never a panic and never a silently-misbehaving cluster.
func TestNewClusterRejectsBadConfig(t *testing.T) {
	c := corpus.Generate(corpus.ClueWebLike(0.005))
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative CacheBytes", func() Config { c := DefaultConfig(); c.CacheBytes = -1; return c }()},
		{"negative Cores", func() Config { c := DefaultConfig(); c.Cores = -4; return c }()},
		{"negative K", func() Config { c := DefaultConfig(); c.K = -10; return c }()},
		{"negative Workers", func() Config { c := DefaultConfig(); c.Workers = -2; return c }()},
		{"zero Replicas", func() Config { c := DefaultConfig(); c.Replicas = 0; return c }()},
		{"negative Replicas", func() Config { c := DefaultConfig(); c.Replicas = -2; return c }()},
		{"hedging without cutoff", func() Config {
			c := DefaultConfig()
			c.Replicas = 2
			c.Resilience.HedgeEnabled = true // HedgeCutoff left zero
			return c
		}()},
		{"hedging with negative cutoff", func() Config {
			c := DefaultConfig()
			c.Replicas = 2
			c.Resilience.HedgeEnabled = true
			c.Resilience.HedgeCutoff = -time.Millisecond
			return c
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewCluster(tc.cfg, c, 2); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("NewCluster(%s): err = %v, want ErrBadConfig", tc.name, err)
			}
		})
	}
	for _, shards := range []int{0, -1} {
		if _, err := NewCluster(DefaultConfig(), c, shards); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("NewCluster(shards=%d): err = %v, want ErrBadConfig", shards, err)
		}
	}
	// Replication over zero shards is as nonsensical as zero shards alone:
	// the shard-count check must fire before any replica is built.
	repl := DefaultConfig()
	repl.Replicas = 2
	if _, err := NewCluster(repl, c, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("NewCluster(replicas=2, shards=0): err = %v, want ErrBadConfig", err)
	}
}

// TestRunBatchValidatesConfig verifies the event-driven path applies the
// same validation, and resolves the zero-Cores default instead of letting
// the device constructor panic.
func TestRunBatchValidatesConfig(t *testing.T) {
	c := corpus.Generate(corpus.ClueWebLike(0.005))
	cl, err := NewCluster(DefaultConfig(), c, 2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	bad := DefaultConfig()
	bad.Cores = -1
	if _, err := cl.RunBatch([]string{`"t1"`}, 0, bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("RunBatch(negative Cores): err = %v, want ErrBadConfig", err)
	}
	zero := DefaultConfig()
	zero.Cores = 0 // "default", must not panic in pool.New
	zero.CacheBytes = 0
	rep, err := cl.RunBatch([]string{`"t1"`}, 0, zero)
	if err != nil {
		t.Fatalf("RunBatch(zero Cores): %v", err)
	}
	if rep.QPS <= 0 {
		t.Fatalf("RunBatch(zero Cores): QPS = %v, want > 0", rep.QPS)
	}
}

// TestSearchBatchQueriesMatchesHomogeneousBatch verifies the
// heterogeneous batch surface reduces to SearchBatchCtx when no masks or
// per-query depths are used.
func TestSearchBatchQueriesMatchesHomogeneousBatch(t *testing.T) {
	c := corpus.Generate(corpus.ClueWebLike(0.005))
	cl, err := NewCluster(DefaultConfig(), c, 3)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	exprs := []string{`"t1"`, `"t2" AND "t3"`, `"t1" OR "t4"`}
	const k = 25
	qs := make([]BatchQuery, len(exprs))
	for i, e := range exprs {
		qs[i] = BatchQuery{Expr: e, K: k}
	}
	het := cl.SearchBatchQueries(context.Background(), qs)
	hom := cl.SearchBatchCtx(context.Background(), exprs, k)
	for i := range exprs {
		if (het.Errs[i] == nil) != (hom.Errs[i] == nil) {
			t.Fatalf("query %d: err mismatch: %v vs %v", i, het.Errs[i], hom.Errs[i])
		}
		if het.Errs[i] != nil {
			continue
		}
		a, b := het.Results[i].TopK, hom.Results[i].TopK
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d hits", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d hit %d: %+v vs %+v", i, j, a[j], b[j])
			}
		}
	}
}

// TestSearchBatchQueriesShardMask verifies masked execution: excluded
// shards are flagged Degraded with ErrShardShed, never attempted (no
// breaker or retry events), and included shards merge normally.
func TestSearchBatchQueriesShardMask(t *testing.T) {
	c := corpus.Generate(corpus.ClueWebLike(0.005))
	cl, err := NewCluster(DefaultConfig(), c, 4)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cl.ResetEvents()
	const mask = uint64(0b0101) // shards 0 and 2 execute; 1 and 3 shed
	br := cl.SearchBatchQueries(context.Background(),
		[]BatchQuery{{Expr: `"t1"`, K: 30, ShardMask: mask}})
	if br.Errs[0] != nil {
		t.Fatalf("masked query: %v", br.Errs[0])
	}
	res := br.Results[0]
	if res.Degraded != ^mask&0b1111 {
		t.Fatalf("Degraded = %04b, want %04b", res.Degraded, ^mask&0b1111)
	}
	for _, si := range []int{1, 3} {
		if err := res.ShardErrs[si]; !errors.Is(err, ErrShardShed) {
			t.Fatalf("shard %d err = %v, want ErrShardShed", si, err)
		}
		if evs := cl.Events(si); len(evs) != 0 {
			t.Fatalf("shed shard %d recorded %d resilience events; shedding must bypass the breaker", si, len(evs))
		}
	}
	for _, si := range []int{0, 2} {
		if res.PerShard[si] == nil {
			t.Fatalf("included shard %d contributed no metrics", si)
		}
	}
	if len(res.TopK) == 0 {
		t.Fatal("masked query returned no hits")
	}
	// Zero mask means no mask: all shards execute.
	full := cl.SearchBatchQueries(context.Background(), []BatchQuery{{Expr: `"t1"`, K: 30}})
	if full.Errs[0] != nil || full.Results[0].Degraded != 0 {
		t.Fatalf("zero-mask query: err=%v degraded=%04b", full.Errs[0], full.Results[0].Degraded)
	}
}
