package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"boss/internal/cache"
	"boss/internal/compress"
	"boss/internal/core"
	"boss/internal/corpus"
	"boss/internal/docstore"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/query"
	"boss/internal/sim"
	"boss/internal/topk"
)

// Cluster is the paper's Figure 1(b)/Figure 2 deployment: the inverted
// index partitioned into disjoint docID-interval shards, one per memory
// node, each with its own BOSS device. A query fans out to every node,
// which returns only its local top-k over the shared interconnect; the root
// merges them. Shard indexes are built with collection-global statistics,
// so the merged ranking is exactly what one giant index would produce.
type Cluster struct {
	cfg     Config
	shards  []*index.Index
	offsets []uint32 // global docID of each shard's local doc 0
	// accs[si][ri] is the wall-clock accelerator of replica ri of shard
	// si. Replica 0 serves the base index; replicas 1..R-1 serve
	// index.ReplicaView copies, so every replica shares one decoded-block
	// cache budget with replica-disjoint keys and owns its own
	// fault-injection domain. The deterministic plain paths
	// (Search/SearchSerial/SearchBatch) always run replica 0 —
	// byte-identical to single-copy serving; only the resilient paths
	// route across replicas.
	accs [][]*core.Accelerator
	// present is the cluster-level term-presence set, built once so query
	// validation does not rescan every shard's dictionary per term.
	present map[string]struct{}
	// shardTerms[si] is shard si's term-presence set, built once so the
	// query path prunes with map probes instead of re-deriving a presence
	// closure from the shard dictionary on every Search.
	shardTerms []map[string]struct{}
	// cache is the cross-query decoded-block cache shared by every shard's
	// wall-clock accelerator (nil when Config.CacheBytes <= 0).
	cache *cache.Cache

	// Fetch-phase state (fetch.go). The per-shard document stores are
	// synthesized lazily on first fetch from the retained sampler
	// statistics; spec and docLens are everything the builder needs, so
	// clusters that never fetch pay nothing beyond the two retained
	// fields.
	spec     corpus.Spec
	docLens  []uint32
	docsOnce sync.Once
	docsErr  error
	docs     []*docstore.Store
	// fetchers[si][ri] is replica ri's fetch engine over a
	// docstore.ReplicaView of the shard's store (replica 0 serves the
	// base store), mirroring accs' replica layout.
	fetchers  [][]*core.FetchEngine
	faultPlan *mem.FaultPlan

	// Resilience machinery (see resilient.go): normalized policy, one
	// breaker + event log per shard replica, and injectable clock/sleep/
	// timer hooks so breaker and hedge tests run on a fake clock.
	res     Resilience
	states  [][]*shardState
	now     func() time.Time                                 //boss:wallclock serving-path breaker clock
	sleepFn func(ctx context.Context, d time.Duration) error //boss:wallclock retry backoff
	// timerFn arms the hedge-cutoff timer, returning the fire channel
	// and a stop function; tests substitute a hand-fired channel.
	timerFn func(d time.Duration) (<-chan time.Time, func() bool) //boss:wallclock hedge cutoff timer
	// runFn issues one replica attempt on the hedged path; tests
	// substitute it to script replica latencies deterministically.
	runFn func(ctx context.Context, node *query.Node, dnf [][]string, si, ri, k int) shardOut
}

// ErrBadConfig reports an invalid cluster construction request. All
// NewCluster validation failures wrap it.
var ErrBadConfig = errors.New("pool: invalid cluster configuration")

// validateConfig rejects nonsense field values that every construction
// path must refuse consistently (PR 5 fixed the zero-shard panic for
// NewCluster; this audits the remaining fields). Zero values stay legal —
// they mean "default" (Cores, K, Workers) or "disabled" (CacheBytes).
func validateConfig(cfg Config) error {
	if cfg.CacheBytes < 0 {
		return fmt.Errorf("%w: negative CacheBytes %d (use 0 to disable the cache)", ErrBadConfig, cfg.CacheBytes)
	}
	if cfg.Cores < 0 {
		return fmt.Errorf("%w: negative Cores %d", ErrBadConfig, cfg.Cores)
	}
	if cfg.K < 0 {
		return fmt.Errorf("%w: negative K %d", ErrBadConfig, cfg.K)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("%w: negative Workers %d", ErrBadConfig, cfg.Workers)
	}
	if cfg.Replicas < 1 {
		return fmt.Errorf("%w: Replicas %d (every shard needs at least one copy; DefaultConfig sets 1)", ErrBadConfig, cfg.Replicas)
	}
	if cfg.Resilience.HedgeEnabled && cfg.Resilience.HedgeCutoff <= 0 {
		return fmt.Errorf("%w: hedging enabled with non-positive HedgeCutoff %v", ErrBadConfig, cfg.Resilience.HedgeCutoff)
	}
	return nil
}

// NewCluster partitions the corpus into `shards` docID intervals and builds
// one globally-consistent index per node. Invalid requests — a
// non-positive shard count, a nil or empty corpus, more shards than
// documents (which would leave shards with no documents), or negative
// config fields — return an error wrapping ErrBadConfig instead of
// panicking.
func NewCluster(cfg Config, c *corpus.Corpus, shards int) (*Cluster, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	if shards <= 0 {
		return nil, fmt.Errorf("%w: need at least one shard, got %d", ErrBadConfig, shards)
	}
	if c == nil || c.Spec.NumDocs == 0 {
		return nil, fmt.Errorf("%w: corpus is nil or empty", ErrBadConfig)
	}
	if shards > c.Spec.NumDocs {
		return nil, fmt.Errorf("%w: %d shards over %d documents would leave empty shards",
			ErrBadConfig, shards, c.Spec.NumDocs)
	}
	gs := &index.GlobalStats{
		NumDocs:   c.Spec.NumDocs,
		AvgDocLen: c.AvgDocLen,
		DF:        make(map[string]int, len(c.Terms)),
	}
	for i := range c.Terms {
		gs.DF[c.Terms[i].Term] = len(c.Terms[i].Postings)
	}

	cl := &Cluster{
		cfg:   cfg,
		cache: cache.New(cfg.CacheBytes),
		// Retained for the lazy fetch-phase docstore build: document
		// payloads are synthesized from (Seed, global docID, DocLens), so
		// every shard layout packs byte-identical content.
		spec:    c.Spec,
		docLens: append([]uint32(nil), c.DocLens...),
	}
	per := (c.Spec.NumDocs + shards - 1) / shards
	for s := 0; s < shards; s++ {
		lo := s * per
		hi := lo + per
		if hi > c.Spec.NumDocs {
			hi = c.Spec.NumDocs
		}
		if lo >= hi {
			break
		}
		sc := shardCorpus(c, uint32(lo), uint32(hi))
		idx := index.Build(sc, index.BuildOptions{Scheme: compress.SchemeHybrid, Global: gs})
		cl.shards = append(cl.shards, idx)
		cl.offsets = append(cl.offsets, uint32(lo))
		// All shards and replicas share one cache: posting-list identities
		// are process-wide (replicas get fresh ones via ReplicaView), so
		// keys never collide across shards or copies, and a shared budget
		// follows the workload's skew instead of splitting it evenly.
		cl.accs = append(cl.accs, cl.buildReplicas(idx))
	}
	cl.present = make(map[string]struct{}, len(c.Terms))
	cl.shardTerms = make([]map[string]struct{}, len(cl.shards))
	for si, idx := range cl.shards {
		terms := make(map[string]struct{}, len(idx.Lists))
		for term := range idx.Lists {
			terms[term] = struct{}{}
			cl.present[term] = struct{}{}
		}
		cl.shardTerms[si] = terms
	}
	cl.initResilience(cfg.Resilience)
	return cl, nil
}

// buildReplicas constructs one shard's replica accelerators: replica 0
// over the base index, replicas 1..R-1 over fresh ReplicaViews, all
// sharing the cluster cache.
func (cl *Cluster) buildReplicas(idx *index.Index) []*core.Accelerator {
	reps := make([]*core.Accelerator, cl.Replicas())
	reps[0] = core.NewCached(idx, cl.cfg.Opts, cl.cache)
	for ri := 1; ri < len(reps); ri++ {
		reps[ri] = core.NewCached(idx.ReplicaView(), cl.cfg.Opts, cl.cache)
	}
	return reps
}

// Fresh returns a new cluster over the same built shard indexes with
// fresh serving state: its own decoded-block cache, accelerators,
// breaker/event state, no fault plan, and an unbuilt fetch phase. The
// expensive immutable artifacts — shard corpora, index builds, presence
// sets — are shared with the receiver, so sweeps that need per-point
// state isolation (the chaos harness) pay index construction once
// instead of once per sweep point. cfg may differ from the receiver's
// (a different cache budget, replica count, or resilience policy).
func (cl *Cluster) Fresh(cfg Config) (*Cluster, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	nc := &Cluster{
		cfg:        cfg,
		shards:     cl.shards,
		offsets:    cl.offsets,
		present:    cl.present,
		shardTerms: cl.shardTerms,
		cache:      cache.New(cfg.CacheBytes),
		spec:       cl.spec,
		docLens:    cl.docLens,
	}
	for _, idx := range nc.shards {
		nc.accs = append(nc.accs, nc.buildReplicas(idx))
	}
	nc.initResilience(cfg.Resilience)
	return nc, nil
}

// Replicas reports the number of independently-faultable copies each
// shard keeps (1 = single-copy serving).
func (cl *Cluster) Replicas() int {
	if cl.cfg.Replicas < 1 {
		return 1
	}
	return cl.cfg.Replicas
}

// ReplicaDevice maps (shard, replica) to its fault-plan device index:
// replica ri of shard si plays device si*Replicas+ri. With single-copy
// shards that is device si, the historical single-copy layout, so
// existing fault plans keep their meaning.
func (cl *Cluster) ReplicaDevice(si, ri int) int { return si*cl.Replicas() + ri }

// Cache returns the cluster's decoded-block cache, or nil when disabled.
func (cl *Cluster) Cache() *cache.Cache { return cl.cache }

// CacheStats snapshots the cluster cache's counters (zero value when the
// cache is disabled).
func (cl *Cluster) CacheStats() cache.Stats { return cl.cache.Stats() }

// SetCacheBytes replaces the cluster's decoded-block cache with one of the
// given budget (<= 0 disables caching). Not safe concurrently with queries;
// meant for setup time and benchmark toggling.
func (cl *Cluster) SetCacheBytes(budget int64) {
	cl.cfg.CacheBytes = budget
	cl.cache = cache.New(budget)
	for _, reps := range cl.accs {
		for _, acc := range reps {
			acc.SetCache(cl.cache)
		}
	}
	for _, reps := range cl.fetchers {
		for _, eng := range reps {
			eng.SetCache(cl.cache)
		}
	}
}

// shardCorpus extracts the docID interval [lo, hi) with docIDs remapped to
// shard-local space.
func shardCorpus(c *corpus.Corpus, lo, hi uint32) *corpus.Corpus {
	sc := &corpus.Corpus{
		Spec:      c.Spec,
		DocLens:   append([]uint32(nil), c.DocLens[lo:hi]...),
		AvgDocLen: c.AvgDocLen, // preserved; scoring uses global stats anyway
	}
	sc.Spec.NumDocs = int(hi - lo)
	for i := range c.Terms {
		tp := &c.Terms[i]
		start := sort.Search(len(tp.Postings), func(j int) bool { return tp.Postings[j].DocID >= lo })
		end := sort.Search(len(tp.Postings), func(j int) bool { return tp.Postings[j].DocID >= hi })
		if start == end {
			continue // term absent in this shard
		}
		local := make([]corpus.Posting, end-start)
		for j, p := range tp.Postings[start:end] {
			local[j] = corpus.Posting{DocID: p.DocID - lo, TF: p.TF}
		}
		sc.Terms = append(sc.Terms, corpus.TermPostings{Term: tp.Term, Postings: local})
		sc.TotalPostings += int64(len(local))
	}
	sc.Spec.NumTerms = len(sc.Terms)
	return sc
}

// Shards reports the number of populated memory nodes.
func (cl *Cluster) Shards() int { return len(cl.shards) }

// pruneForShard rewrites a query for a shard where some terms may be
// absent: a conjunction containing an absent term matches nothing; a
// disjunction drops absent branches. Returns nil when the shard cannot
// match anything. has is the shard's presence set from Cluster.shardTerms,
// built once at construction.
func pruneForShard(node *query.Node, has map[string]struct{}) *query.Node {
	switch node.Op {
	case query.OpTerm:
		if _, ok := has[node.Term]; ok {
			return node
		}
		return nil
	case query.OpAnd:
		kept := make([]*query.Node, 0, len(node.Children))
		changed := false
		for _, c := range node.Children {
			p := pruneForShard(c, has)
			if p == nil {
				return nil // one empty operand empties the conjunction
			}
			if p != c {
				changed = true
			}
			kept = append(kept, p)
		}
		if !changed {
			// Nothing pruned: hand back the original node so the caller can
			// recognize the query survived intact and reuse its shared DNF.
			return node
		}
		return query.And(kept...)
	case query.OpOr:
		kept := make([]*query.Node, 0, len(node.Children))
		changed := false
		for _, c := range node.Children {
			p := pruneForShard(c, has)
			if p == nil {
				changed = true
				continue
			}
			if p != c {
				changed = true
			}
			kept = append(kept, p)
		}
		if len(kept) == 0 {
			return nil
		}
		if !changed {
			return node
		}
		return query.Or(kept...)
	case query.OpSparse:
		// Sparse queries drop absent terms per shard (a missing term just
		// contributes no impact); a shard holding none of them cannot
		// match anything.
		kept := make([]*query.Node, 0, len(node.Children))
		changed := false
		for _, c := range node.Children {
			if _, ok := has[c.Term]; ok {
				kept = append(kept, c)
			} else {
				changed = true
			}
		}
		if len(kept) == 0 {
			return nil
		}
		if !changed {
			return node
		}
		return &query.Node{Op: query.OpSparse, Children: kept}
	default:
		return nil
	}
}

// ClusterResult is a fanned-out query's outcome.
type ClusterResult struct {
	// TopK is the root-merged global ranking.
	TopK []topk.Entry
	// PerShard holds each node's work metrics (nil for nodes the query
	// could not match).
	PerShard []*perf.Metrics
	// LinkBytes is the total result traffic all nodes pushed over the
	// shared interconnect for this query.
	LinkBytes int64
	// Degraded is a bitmask of shards whose results are missing from
	// TopK (bit si set = shard si failed). Zero means the result is
	// complete. Only the resilient paths (SearchCtx/SearchBatchCtx)
	// degrade; plain Search fails the query on any shard error.
	Degraded uint64
	// ShardErrs, non-nil only for degraded results, holds each failed
	// shard's error at its shard index.
	ShardErrs []error
	// Docs holds fetched document payloads (fetch.go): one entry per
	// requested docID for FetchBatch, one per TopK entry for the
	// search+fetch paths. Entries from degraded shards are zero-valued.
	Docs []FetchedDoc
	// Hedged counts backup replica attempts this query fired (hedged
	// requests past the cutoff); HedgeWins counts the backups whose
	// result was adopted over the primary's. Both stay zero with
	// hedging disabled or single-copy shards.
	Hedged    int
	HedgeWins int
	// ServedBy, non-nil only on replicated clusters (Replicas > 1),
	// records which replica produced each shard's contribution (-1 for
	// shards that failed or could not match). Single-copy clusters leave
	// it nil so the default serving path allocates nothing extra.
	ServedBy []int
}

// validate parses the expression and rejects terms entirely absent from the
// collection, matching the single-node engines. The presence set is built
// once in NewCluster, so validation is one map probe per term instead of a
// scan over every shard.
func (cl *Cluster) validate(expr string) (*query.Node, error) {
	node, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	if n := node.CountTerms(); n > core.MaxQueryTerms {
		return nil, fmt.Errorf("pool: query has %d terms; hardware handles up to %d", n, core.MaxQueryTerms)
	}
	for _, term := range node.Terms() {
		if _, ok := cl.present[term]; !ok {
			return nil, fmt.Errorf("pool: term %q not indexed on any shard", term)
		}
	}
	return node, nil
}

// prepare validates the expression and normalizes it to DNF once, so the
// per-shard runs share one normalization instead of re-deriving it.
// Sparse queries have no DNF; their shared normalization is the term
// list, re-extracted per shard only when pruning changed the query.
func (cl *Cluster) prepare(expr string) (*query.Node, [][]string, error) {
	node, err := cl.validate(expr)
	if err != nil {
		return nil, nil, err
	}
	if node.Op == query.OpSparse {
		return node, nil, nil
	}
	return node, node.DNF(), nil
}

// workers resolves the host-side fan-out width: cfg.Workers, capped at n,
// defaulting to GOMAXPROCS.
func (cl *Cluster) workers(n int) int {
	w := cl.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// shardOut is one node's contribution to a fanned-out query.
type shardOut struct {
	m    *perf.Metrics
	topk []topk.Entry
	err  error
	// ri is the replica that produced the result (resilient paths only;
	// the plain paths always run replica 0). hedged/hedgeWin count the
	// backup attempts fired and adopted while producing it.
	ri       int
	hedged   int
	hedgeWin bool
}

// runShard executes the query on one shard, pruning terms the shard does
// not hold. A nil-metrics result means the shard cannot match the query.
// dnf is the query's shared normalization; it applies whenever pruning left
// the query intact (the common case — hot terms exist on every shard).
func (cl *Cluster) runShard(node *query.Node, dnf [][]string, si, k int) shardOut {
	pruned := pruneForShard(node, cl.shardTerms[si])
	if pruned == nil {
		return shardOut{}
	}
	if pruned.Op == query.OpSparse {
		out, err := cl.accs[si][0].RunSparse(pruned.Terms(), k)
		if err != nil {
			return shardOut{err: fmt.Errorf("pool: shard %d: %w", si, err)}
		}
		return shardOut{m: out.M, topk: out.TopK}
	}
	if pruned != node {
		dnf = pruned.DNF()
	}
	out, err := cl.accs[si][0].RunDNF(dnf, k)
	if err != nil {
		return shardOut{err: fmt.Errorf("pool: shard %d: %w", si, err)}
	}
	return shardOut{m: out.M, topk: out.TopK}
}

// mergeShardOuts folds per-shard results into the root-merged ranking.
// Merging in ascending shard order keeps the result bit-identical to the
// serial path no matter how the shard runs were scheduled.
func (cl *Cluster) mergeShardOuts(outs []shardOut, k int) (*ClusterResult, error) {
	res := &ClusterResult{PerShard: make([]*perf.Metrics, len(outs))}
	merged := topk.NewHeap(k)
	for si, out := range outs {
		if out.err != nil {
			return nil, out.err
		}
		if out.m == nil {
			continue
		}
		res.PerShard[si] = out.m
		res.LinkBytes += out.m.HostBytes
		for _, e := range out.topk {
			merged.Insert(e.DocID+cl.offsets[si], e.Score)
		}
	}
	res.TopK = merged.Results()
	return res, nil
}

// Search fans a query out to every node and merges the local top-k lists.
// Shards run concurrently on a bounded worker pool (Config.Workers, default
// GOMAXPROCS); results are bit-identical to SearchSerial because per-shard
// execution is independent and the root merge preserves shard order.
func (cl *Cluster) Search(expr string, k int) (*ClusterResult, error) {
	node, dnf, err := cl.prepare(expr)
	if err != nil {
		return nil, err
	}
	outs := make([]shardOut, len(cl.shards))
	workers := cl.workers(len(cl.shards))
	if workers == 1 {
		for si := range cl.shards {
			outs[si] = cl.runShard(node, dnf, si, k)
		}
		return cl.mergeShardOuts(outs, k)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range next {
				outs[si] = cl.runShard(node, dnf, si, k)
			}
		}()
	}
	for si := range cl.shards {
		next <- si
	}
	close(next)
	wg.Wait()
	return cl.mergeShardOuts(outs, k)
}

// SearchSerial visits shards one at a time on the calling goroutine. It is
// the reference implementation the parallel path is tested against, and the
// baseline the wall-clock benchmarks compare to.
func (cl *Cluster) SearchSerial(expr string, k int) (*ClusterResult, error) {
	node, dnf, err := cl.prepare(expr)
	if err != nil {
		return nil, err
	}
	outs := make([]shardOut, len(cl.shards))
	for si := range cl.shards {
		outs[si] = cl.runShard(node, dnf, si, k)
		if outs[si].err != nil {
			break // match the parallel path: first shard error wins
		}
	}
	return cl.mergeShardOuts(outs, k)
}

// BatchResult is the outcome of a pipelined query batch.
type BatchResult struct {
	// Results holds one ClusterResult per input query, in input order; nil
	// where the matching Errs entry is non-nil.
	Results []*ClusterResult
	// Errs holds one entry per input query (nil for successes).
	Errs []error
	// Err is the first error in input order (remaining queries still run).
	Err error
}

// SearchBatch pipelines many queries across the cluster: each worker owns
// one in-flight query and sweeps it across all shards, so different queries
// occupy different nodes concurrently. Per-query results are bit-identical
// to Search.
func (cl *Cluster) SearchBatch(exprs []string, k int) *BatchResult {
	br := &BatchResult{
		Results: make([]*ClusterResult, len(exprs)),
		Errs:    make([]error, len(exprs)),
	}
	workers := cl.workers(len(exprs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Workers write only their own indices, so no lock is needed.
			for qi := range next {
				br.Results[qi], br.Errs[qi] = cl.SearchSerial(exprs[qi], k)
			}
		}()
	}
	for qi := range exprs {
		next <- qi
	}
	close(next)
	wg.Wait()
	for _, err := range br.Errs {
		if err != nil {
			br.Err = err
			break
		}
	}
	return br
}

// ClusterReport summarizes an event-driven batch run across all nodes.
type ClusterReport struct {
	// PerNode holds each node's device report.
	PerNode []*Report
	// QPS is the batch throughput gated by the slowest node (every query
	// fans out to every node, so the pool finishes when the last node
	// does).
	QPS float64
}

// RunBatch executes a query batch event-driven on every node's device:
// each query is submitted to all nodes at its arrival time, nodes schedule
// their own cores and contend on their own SCM channels, and the pool's
// completion is gated by the slowest node.
func (cl *Cluster) RunBatch(exprs []string, gap sim.Duration, cfg Config) (*ClusterReport, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	if cfg.Cores == 0 {
		// The event-driven Device needs a real core count; zero means
		// "default" everywhere else, so resolve it here instead of letting
		// pool.New panic.
		cfg.Cores = DefaultConfig().Cores
	}
	devices := make([]*Device, len(cl.shards))
	for i, idx := range cl.shards {
		devices[i] = New(cfg, idx)
		if !cfg.Faults.Empty() {
			devices[i].SetFault(cfg.Faults.InjectorFor(i))
		}
	}
	for qi, expr := range exprs {
		node, err := query.Parse(expr)
		if err != nil {
			return nil, err
		}
		at := sim.Time(qi) * gap
		for si, d := range devices {
			pruned := pruneForShard(node, cl.shardTerms[si])
			if pruned == nil {
				continue
			}
			if err := d.Submit(pruned.String(), at); err != nil {
				return nil, fmt.Errorf("pool: node %d: %w", si, err)
			}
		}
	}
	rep := &ClusterReport{}
	var slowest sim.Duration
	for _, d := range devices {
		r := d.Run()
		rep.PerNode = append(rep.PerNode, r)
		if r.Makespan > slowest {
			slowest = r.Makespan
		}
	}
	if slowest > 0 {
		rep.QPS = float64(len(exprs)) / sim.Seconds(slowest)
	}
	return rep, nil
}
