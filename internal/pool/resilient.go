package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"boss/internal/core"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/query"
	"boss/internal/topk"
)

// Resilience configures the cluster's fault-handling policy: per-shard
// deadlines, bounded retry with jittered exponential backoff, and a
// per-shard circuit breaker. The zero value is normalized to
// DefaultResilience by NewCluster.
type Resilience struct {
	// ShardTimeout bounds one shard attempt's wall-clock time
	// (0 disables the per-attempt deadline; the parent context still
	// applies).
	ShardTimeout time.Duration
	// MaxRetries is how many times a retryable shard failure is retried
	// (so a shard sees at most MaxRetries+1 attempts). Negative disables
	// retry entirely.
	MaxRetries int
	// BackoffBase is the pre-jitter delay before the first retry; it
	// doubles per attempt up to BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// Seed drives backoff jitter. Delays are a pure function of
	// (Seed, shard, attempt), so a replayed plan backs off identically.
	Seed int64
	// BreakerThreshold is the consecutive-failure count that opens a
	// shard's circuit breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects attempts
	// before letting a half-open probe through.
	BreakerCooldown time.Duration
	// HedgeEnabled arms hedged requests on replicated clusters
	// (Config.Replicas > 1): when the primary replica has not answered
	// HedgeCutoff after dispatch, a backup attempt fires on the next
	// healthy replica and the first result to arrive wins; the loser is
	// cancelled and never counts against any breaker. Requires a
	// positive HedgeCutoff (NewCluster rejects the combination
	// otherwise) and does nothing on single-copy shards.
	HedgeEnabled bool
	// HedgeCutoff is the backup-fire latency. Set it near the serving
	// path's p99 so only tail stragglers pay the duplicated work.
	HedgeCutoff time.Duration
}

// DefaultResilience is the serving default: two retries with 1–16 ms
// jittered backoff, a breaker that opens after 5 consecutive failures
// and probes again after 50 ms, and no per-attempt timeout (simulated
// devices answer in microseconds of host time; a wall-clock deadline
// would only add CI flakiness).
func DefaultResilience() Resilience {
	return Resilience{
		MaxRetries:       2,
		BackoffBase:      time.Millisecond,
		BackoffMax:       16 * time.Millisecond,
		BreakerThreshold: 5,
		BreakerCooldown:  50 * time.Millisecond,
	}
}

// normalize fills zero fields with their defaults.
func (r Resilience) normalize() Resilience {
	def := DefaultResilience()
	if r.BackoffBase <= 0 {
		r.BackoffBase = def.BackoffBase
	}
	if r.BackoffMax <= 0 {
		r.BackoffMax = def.BackoffMax
	}
	if r.BreakerThreshold <= 0 {
		r.BreakerThreshold = def.BreakerThreshold
	}
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = def.BreakerCooldown
	}
	return r
}

// ErrShardUnavailable reports that a shard's circuit breaker rejected
// the attempt without issuing it.
var ErrShardUnavailable = errors.New("pool: shard unavailable (breaker open)")

// ErrShardShed reports that a shard was excluded from a query by the
// front-door serving tier's degradation mask rather than by a fault: the
// query's result is a deliberate partial-shard answer. The shard's bit is
// set in ClusterResult.Degraded exactly like a failed shard's, but the
// breaker and retry machinery never engage.
var ErrShardShed = errors.New("pool: shard shed (front-door degradation)")

// EventKind labels one entry in a shard's resilience event log.
type EventKind uint8

const (
	EvAttempt EventKind = iota
	EvFailure
	EvBackoff
	EvBreakerOpen
	EvBreakerHalfOpen
	EvBreakerClose
	EvBreakerReject
	// EvHedge marks a hedged backup attempt fired on this replica after
	// the primary missed the cutoff.
	EvHedge
)

func (k EventKind) String() string {
	switch k {
	case EvAttempt:
		return "attempt"
	case EvFailure:
		return "failure"
	case EvBackoff:
		return "backoff"
	case EvBreakerOpen:
		return "breaker-open"
	case EvBreakerHalfOpen:
		return "breaker-half-open"
	case EvBreakerClose:
		return "breaker-close"
	case EvBreakerReject:
		return "breaker-reject"
	case EvHedge:
		return "hedge"
	}
	return "unknown"
}

// Event is one retry/breaker transition on one shard replica. The
// per-replica sequence is deterministic given a fault plan and a query
// order.
type Event struct {
	Shard   int
	Replica int
	Kind    EventKind
	Attempt int
	Backoff time.Duration
	Err     error
}

// breaker states.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

// shardState is one shard replica's breaker plus its resilience event
// log, under one mutex so log order matches breaker-transition order.
type shardState struct {
	si, ri   int // owning shard and replica, stamped on every event
	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
	probing  bool
	events   []Event
}

// record appends an event while holding s.mu.
func (s *shardState) record(kind EventKind, attempt int, backoff time.Duration, err error) {
	s.events = append(s.events, Event{Shard: s.si, Replica: s.ri, Kind: kind, Attempt: attempt, Backoff: backoff, Err: err})
}

// allow reports whether an attempt may be issued, applying the
// open → half-open transition after the cooldown.
func (s *shardState) allow(now time.Time, cooldown time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case brClosed:
		return true
	case brOpen:
		if now.Sub(s.openedAt) < cooldown {
			s.record(EvBreakerReject, 0, 0, nil)
			return false
		}
		s.state = brHalfOpen
		s.probing = true
		s.record(EvBreakerHalfOpen, 0, 0, nil)
		return true
	default: // half-open: one probe in flight at a time
		if s.probing {
			s.record(EvBreakerReject, 0, 0, nil)
			return false
		}
		s.probing = true
		return true
	}
}

// success closes the breaker.
func (s *shardState) success() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != brClosed {
		s.record(EvBreakerClose, 0, 0, nil)
	}
	s.state = brClosed
	s.fails = 0
	s.probing = false
}

// failure records a failed attempt and opens the breaker when the
// consecutive-failure threshold is reached (immediately in half-open).
func (s *shardState) failure(attempt int, now time.Time, threshold int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.record(EvFailure, attempt, 0, err)
	if s.state == brHalfOpen {
		s.state = brOpen
		s.openedAt = now
		s.probing = false
		s.record(EvBreakerOpen, attempt, 0, nil)
		return
	}
	s.fails++
	if s.state == brClosed && s.fails >= threshold {
		s.state = brOpen
		s.openedAt = now
		s.record(EvBreakerOpen, attempt, 0, nil)
	}
}

// abandon releases a hedge loser's claim on the breaker without
// recording an outcome: losers never count against breakers, but a
// half-open probe slot the loser claimed at selection time must be
// freed or the replica's breaker would wedge half-open forever.
func (s *shardState) abandon() {
	s.mu.Lock()
	s.probing = false
	s.mu.Unlock()
}

// Events snapshots one shard's resilience event log: every replica's
// events concatenated in replica order (identical to the lone replica's
// log on single-copy clusters). ReplicaEvents narrows to one copy.
func (cl *Cluster) Events(si int) []Event {
	var out []Event
	for _, s := range cl.states[si] {
		s.mu.Lock()
		out = append(out, s.events...)
		s.mu.Unlock()
	}
	return out
}

// ReplicaEvents snapshots one shard replica's resilience event log.
func (cl *Cluster) ReplicaEvents(si, ri int) []Event {
	s := cl.states[si][ri]
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// ResetEvents clears every replica's event log (test/benchmark setup).
func (cl *Cluster) ResetEvents() {
	for _, reps := range cl.states {
		for _, s := range reps {
			s.mu.Lock()
			s.events = nil
			s.mu.Unlock()
		}
	}
}

// initResilience wires the cluster's resilience machinery; called from
// NewCluster and Fresh.
func (cl *Cluster) initResilience(r Resilience) {
	cl.res = r.normalize()
	cl.states = make([][]*shardState, len(cl.shards))
	for si := range cl.states {
		reps := make([]*shardState, cl.Replicas())
		for ri := range reps {
			reps[ri] = &shardState{si: si, ri: ri}
		}
		cl.states[si] = reps
	}
	cl.now = time.Now
	cl.sleepFn = sleepCtx
	cl.timerFn = hedgeTimer
	cl.runFn = cl.runReplicaCtx
}

// hedgeTimer arms the production hedge-cutoff timer.
//
//boss:wallclock hedging claws back wall-clock tail latency by design.
func hedgeTimer(d time.Duration) (<-chan time.Time, func() bool) {
	t := time.NewTimer(d)
	return t.C, t.Stop
}

// sleepCtx waits d or until the context is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoffDelay computes the jittered exponential backoff before retry
// `attempt` (0-based). It is a pure function of (seed, shard, attempt):
// replays back off identically, and no two shards share a jitter stream.
//
//boss:hotpath one call per retried shard attempt.
func (r Resilience) backoffDelay(shard, attempt int) time.Duration {
	d := r.BackoffBase
	for i := 0; i < attempt && d < r.BackoffMax; i++ {
		d *= 2
	}
	if d > r.BackoffMax {
		d = r.BackoffMax
	}
	// Jitter in [d/2, d): splitmix64 over the decision coordinates.
	h := splitmix64(uint64(r.Seed) ^ (uint64(shard)+1)*0x9e3779b97f4a7c15 + uint64(attempt)*0xbf58476d1ce4e5b9)
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(h%uint64(half))
}

// splitmix64 is the standard 64-bit finalizer (same construction the
// fault injector uses; duplicated here because mem keeps its unexported).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SetFaultPlan applies a fault plan across the cluster: replica ri of
// shard si plays the role of device si*Replicas+ri (with single-copy
// shards that is device si, the historical layout, so existing plans
// keep their meaning). Replicas are independent fault domains — each
// draws from its own injector stream, so one copy's media errors never
// shadow another's. A nil or empty plan restores pristine shards. Not
// safe concurrently with queries; meant for setup time.
func (cl *Cluster) SetFaultPlan(plan *mem.FaultPlan) {
	cl.faultPlan = plan
	for si, reps := range cl.accs {
		for ri, acc := range reps {
			acc.SetFault(plan.InjectorFor(cl.ReplicaDevice(si, ri)))
		}
	}
	// Fetch engines are built lazily; wire the ones that exist and retain
	// the plan so EnsureDocs wires the rest at build time.
	for si, reps := range cl.fetchers {
		for ri, eng := range reps {
			eng.SetFault(plan.InjectorFor(cl.ReplicaDevice(si, ri)))
		}
	}
}

// retryable reports whether a shard failure is worth retrying on the
// same copy: transient read errors and per-attempt timeouts are;
// permanent media errors, dead devices, and parent-context cancellation
// are not.
func retryable(err error) bool {
	switch {
	case errors.Is(err, mem.ErrMediaUncorrectable):
		return false
	case errors.Is(err, mem.ErrDeviceDown):
		return false
	case errors.Is(err, context.Canceled):
		return false
	default:
		return true
	}
}

// retryableOn is retryable under replication: failures that are
// permanent for one copy (uncorrectable media, dead device) stay
// retryable on replicated shards, because the attempt rotation lands
// the retry on a different copy holding the same blocks. Context
// cancellation is never retryable.
func (cl *Cluster) retryableOn(err error, si int) bool {
	if retryable(err) {
		return true
	}
	return len(cl.states[si]) > 1 && !errors.Is(err, context.Canceled)
}

// runReplicaCtx issues one attempt on replica ri of shard si under the
// per-attempt deadline.
func (cl *Cluster) runReplicaCtx(ctx context.Context, node *query.Node, dnf [][]string, si, ri, k int) shardOut {
	pruned := pruneForShard(node, cl.shardTerms[si])
	if pruned == nil {
		return shardOut{}
	}
	if pruned.Op != query.OpSparse && pruned != node {
		dnf = pruned.DNF()
	}
	if cl.res.ShardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cl.res.ShardTimeout)
		defer cancel()
	}
	var out core.Result
	var err error
	if pruned.Op == query.OpSparse {
		out, err = cl.accs[si][ri].RunSparseCtx(ctx, pruned.Terms(), k)
	} else {
		out, err = cl.accs[si][ri].RunDNFCtx(ctx, dnf, k)
	}
	if err != nil {
		return shardOut{err: shardError(si, err)}
	}
	return shardOut{m: out.M, topk: out.TopK}
}

// shardError tags an error with its shard (outlined: the retry loop is a
// hot path and must not construct errors inline).
func shardError(si int, err error) error {
	return fmt.Errorf("pool: shard %d: %w", si, err)
}

// pickReplica chooses the replica serving (query, shard, attempt). The
// rotation start is a pure function of (Resilience.Seed, the query's
// stable key, the shard); the attempt index advances the rotation so
// consecutive attempts land on different copies; and replicas whose
// breakers reject are skipped at selection time, not after a failed
// attempt. ok is false only when every replica rejected — the
// all-copies-sick case, which degrades the query through the existing
// breaker error path.
//
//boss:hotpath one call per (query, shard, attempt).
func (cl *Cluster) pickReplica(si int, qkey uint64, attempt int) (*shardState, int, bool) {
	sts := cl.states[si]
	if len(sts) == 1 { // single copy: the breaker gate is the whole decision
		st := sts[0]
		if !st.allow(cl.now(), cl.res.BreakerCooldown) {
			return nil, 0, false
		}
		return st, 0, true
	}
	start := int(replicaDraw(uint64(cl.res.Seed), qkey, si) % uint64(len(sts)))
	for p := 0; p < len(sts); p++ {
		ri := (start + attempt + p) % len(sts)
		if sts[ri].allow(cl.now(), cl.res.BreakerCooldown) {
			return sts[ri], ri, true
		}
	}
	return nil, 0, false
}

// replicaDraw is the deterministic replica-selection hash: a pure
// function of (seed, query key, shard), so replays route identically
// and no two shards share a rotation stream.
func replicaDraw(seed, qkey uint64, si int) uint64 {
	return splitmix64(seed ^ qkey ^ (uint64(si)+1)*0x94d049bb133111eb)
}

// pickBackup selects a hedge's backup copy: the next replica after the
// primary in rotation order whose breaker admits an attempt.
func (cl *Cluster) pickBackup(si, primary int) (*shardState, int, bool) {
	sts := cl.states[si]
	for p := 1; p < len(sts); p++ {
		ri := (primary + p) % len(sts)
		if sts[ri].allow(cl.now(), cl.res.BreakerCooldown) {
			return sts[ri], ri, true
		}
	}
	return nil, 0, false
}

// runShardResilient drives one shard's attempt loop: breaker-aware
// replica selection, bounded retry with jittered backoff, hedged
// dispatch on replicated clusters, parent-context awareness.
//
// event recording and error construction are outlined.
//
//boss:hotpath one call per (query, shard).
func (cl *Cluster) runShardResilient(ctx context.Context, node *query.Node, dnf [][]string, si, k int, qkey uint64) shardOut {
	for attempt := 0; ; attempt++ {
		if cause := ctx.Err(); cause != nil {
			return shardOut{err: shardError(si, cause)} //boss:escape-ok cold cancellation error path
		}
		st, ri, ok := cl.pickReplica(si, qkey, attempt)
		if !ok {
			return shardOut{err: breakerError(si)} //boss:escape-ok cold breaker-open error path
		}
		recordAttempt(st, attempt)
		var out shardOut
		if cl.res.HedgeEnabled && len(cl.states[si]) > 1 {
			out = cl.runShardHedged(ctx, node, dnf, si, ri, k, attempt, st)
		} else {
			out = cl.runReplicaCtx(ctx, node, dnf, si, ri, k)
			out.ri = ri
			cl.settle(st, out.err, attempt)
		}
		if out.err == nil {
			return out
		}
		if attempt >= cl.res.MaxRetries || !cl.retryableOn(out.err, si) {
			return out
		}
		if cause := ctx.Err(); cause != nil {
			return out
		}
		d := cl.res.backoffDelay(si, attempt)
		recordBackoff(st, attempt, d)
		if cl.sleepFn(ctx, d) != nil {
			return out // context died during backoff: report the last failure
		}
	}
}

// settle records an attempt's adopted outcome against the replica that
// produced it (outlined from the retry loop).
func (cl *Cluster) settle(st *shardState, err error, attempt int) {
	if err == nil {
		st.success()
		return
	}
	st.failure(attempt, cl.now(), cl.res.BreakerThreshold, err)
}

// runShardHedged issues the attempt on the primary replica and arms the
// hedge timer: if the primary has not answered at the cutoff, a backup
// attempt fires on the next healthy replica and the first result to
// arrive wins (a first arrival carrying an error waits for the other
// runner before giving up). The loser is cancelled, its outcome never
// reaches any breaker — only the adopted result settles its replica —
// and its claim on a half-open probe slot is released. Both runners
// deliver into cap-1 buffered channels, so a cancelled loser's
// goroutine always exits.
func (cl *Cluster) runShardHedged(ctx context.Context, node *query.Node, dnf [][]string, si, primary, k, attempt int, st *shardState) shardOut {
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	pch := make(chan shardOut, 1)
	go cl.hedgeRun(pctx, node, dnf, si, primary, k, pch)
	fire, stop := cl.timerFn(cl.res.HedgeCutoff)
	var pout shardOut
	select {
	case pout = <-pch: // primary answered before the cutoff: no hedge
		stop()
		pout.ri = primary
		cl.settle(st, pout.err, attempt)
		return pout
	case <-fire:
	}
	bst, bri, ok := cl.pickBackup(si, primary)
	if !ok {
		// Every other copy is sick: ride the primary to completion.
		pout = <-pch
		pout.ri = primary
		cl.settle(st, pout.err, attempt)
		return pout
	}
	recordHedge(bst, attempt)
	bctx, bcancel := context.WithCancel(ctx)
	defer bcancel()
	bch := make(chan shardOut, 1)
	go cl.hedgeRun(bctx, node, dnf, si, bri, k, bch)
	var bout shardOut
	var pdone bool
	select {
	case pout = <-pch:
		pdone = true
	case bout = <-bch:
	}
	if pdone && pout.err != nil {
		bout = <-bch // primary lost its own race; let the backup finish
		pdone = false
	} else if !pdone && bout.err != nil {
		pout = <-pch // backup failed first; fall back to the primary
		pdone = true
	}
	if pdone {
		bcancel()
		bst.abandon()
		pout.ri, pout.hedged = primary, 1
		cl.settle(st, pout.err, attempt)
		return pout
	}
	pcancel()
	st.abandon()
	bout.ri, bout.hedged, bout.hedgeWin = bri, 1, bout.err == nil
	cl.settle(bst, bout.err, attempt)
	return bout
}

// hedgeRun executes one replica attempt and delivers its result on a
// cap-1 buffered channel: the send never blocks, so a cancelled loser's
// goroutine always exits.
func (cl *Cluster) hedgeRun(ctx context.Context, node *query.Node, dnf [][]string, si, ri, k int, ch chan<- shardOut) {
	ch <- cl.runFn(ctx, node, dnf, si, ri, k)
}

// recordAttempt / recordBackoff / recordHedge / breakerError are
// outlined from the retry loop so the hot path stays free of composite
// construction.
func recordAttempt(st *shardState, attempt int) {
	st.mu.Lock()
	st.record(EvAttempt, attempt, 0, nil)
	st.mu.Unlock()
}

func recordBackoff(st *shardState, attempt int, d time.Duration) {
	st.mu.Lock()
	st.record(EvBackoff, attempt, d, nil)
	st.mu.Unlock()
}

func recordHedge(st *shardState, attempt int) {
	st.mu.Lock()
	st.record(EvHedge, attempt, 0, nil)
	st.mu.Unlock()
}

func breakerError(si int) error {
	return fmt.Errorf("pool: shard %d: %w", si, ErrShardUnavailable)
}

// mergePartial folds per-shard results into the root-merged ranking,
// degrading gracefully: failed shards set their bit in Degraded and park
// their error in ShardErrs instead of failing the query. Only when every
// populated shard failed does the query itself error.
func (cl *Cluster) mergePartial(outs []shardOut, k int) (*ClusterResult, error) {
	res := &ClusterResult{PerShard: make([]*perf.Metrics, len(outs))}
	if cl.Replicas() > 1 {
		// Replica attribution is allocated only on replicated clusters so
		// single-copy serving pays nothing new.
		res.ServedBy = make([]int, len(outs))
	}
	merged := topk.NewHeap(k)
	failed := 0
	var firstErr error
	for si, out := range outs {
		res.Hedged += out.hedged
		if out.hedgeWin {
			res.HedgeWins++
		}
		if res.ServedBy != nil {
			if out.err != nil || out.m == nil {
				res.ServedBy[si] = -1
			} else {
				res.ServedBy[si] = out.ri
			}
		}
		if out.err != nil {
			failed++
			if firstErr == nil {
				firstErr = out.err
			}
			if si < 64 {
				res.Degraded |= 1 << uint(si)
			}
			if res.ShardErrs == nil {
				res.ShardErrs = make([]error, len(outs))
			}
			res.ShardErrs[si] = out.err
			continue
		}
		if out.m == nil {
			continue
		}
		res.PerShard[si] = out.m
		res.LinkBytes += out.m.HostBytes
		for _, e := range out.topk {
			merged.Insert(e.DocID+cl.offsets[si], e.Score)
		}
	}
	if failed == len(outs) && failed > 0 {
		return nil, firstErr
	}
	res.TopK = merged.Results()
	return res, nil
}

// SearchCtx is Search with deadlines, retries, circuit breaking, and
// graceful degradation: surviving shards' top-k merge into a partial
// result whose Degraded mask and ShardErrs name the missing shards. The
// query errors only when the context dies or every shard fails.
func (cl *Cluster) SearchCtx(ctx context.Context, expr string, k int) (*ClusterResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	node, dnf, err := cl.prepare(expr)
	if err != nil {
		return nil, err
	}
	qkey := mem.StableKey(expr)
	outs := make([]shardOut, len(cl.shards))
	workers := cl.workers(len(cl.shards))
	if workers == 1 {
		for si := range cl.shards {
			outs[si] = cl.runShardResilient(ctx, node, dnf, si, k, qkey)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for si := range next {
					outs[si] = cl.runShardResilient(ctx, node, dnf, si, k, qkey)
				}
			}()
		}
		dispatched := 0
	dispatch:
		for si := range cl.shards {
			select {
			case next <- si:
				dispatched++
			case <-ctx.Done():
				break dispatch
			}
		}
		close(next)
		wg.Wait()
		for si := dispatched; si < len(cl.shards); si++ {
			outs[si] = shardOut{err: shardError(si, ctx.Err())}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return cl.mergePartial(outs, k)
}

// maskHas reports whether shard si participates under a front-door shard
// mask. Mask zero means "no mask" (every shard participates), and shards
// beyond the mask's 64 bits always participate, mirroring the Degraded
// bitmask's range.
func maskHas(mask uint64, si int) bool {
	if mask == 0 || si >= 64 {
		return true
	}
	return mask&(1<<uint(si)) != 0
}

// shedShardError tags a deliberately-shed shard (outlined like shardError).
func shedShardError(si int) error {
	return fmt.Errorf("pool: shard %d: %w", si, ErrShardShed)
}

// searchSerialCtx sweeps one query across all shards on the calling
// goroutine with the full resilience machinery.
func (cl *Cluster) searchSerialCtx(ctx context.Context, expr string, k int) (*ClusterResult, error) {
	return cl.searchSerialCtxMask(ctx, expr, k, 0)
}

// searchSerialCtxMask is searchSerialCtx under a front-door shard mask:
// masked-out shards are skipped entirely (no attempt, no breaker or retry
// activity) and reported in the result's Degraded bitmask with ErrShardShed.
func (cl *Cluster) searchSerialCtxMask(ctx context.Context, expr string, k int, mask uint64) (*ClusterResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	node, dnf, err := cl.prepare(expr)
	if err != nil {
		return nil, err
	}
	qkey := mem.StableKey(expr)
	outs := make([]shardOut, len(cl.shards))
	for si := range cl.shards {
		if !maskHas(mask, si) {
			outs[si] = shardOut{err: shedShardError(si)}
			continue
		}
		outs[si] = cl.runShardResilient(ctx, node, dnf, si, k, qkey)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return cl.mergePartial(outs, k)
}

// batchDriver runs one resilient execution per query index on a bounded
// worker pool, honoring cancellation: a dead context fails the remaining
// queries promptly and no goroutines outlive the call. SearchBatchCtx and
// SearchBatchQueries share it.
func (cl *Cluster) batchDriver(ctx context.Context, n int, run func(qi int) (*ClusterResult, error)) *BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	br := &BatchResult{
		Results: make([]*ClusterResult, n),
		Errs:    make([]error, n),
	}
	if err := ctx.Err(); err != nil {
		for qi := 0; qi < n; qi++ {
			br.Errs[qi] = err
		}
		br.Err = err
		return br
	}
	workers := cl.workers(n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range next {
				br.Results[qi], br.Errs[qi] = run(qi)
			}
		}()
	}
	dispatched := 0
dispatch:
	for qi := 0; qi < n; qi++ {
		select {
		case next <- qi:
			dispatched++
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	for qi := dispatched; qi < n; qi++ {
		br.Errs[qi] = ctx.Err()
	}
	for _, err := range br.Errs {
		if err != nil {
			br.Err = err
			break
		}
	}
	return br
}

// SearchBatchCtx pipelines a batch with per-query resilience: each
// worker owns one in-flight query and sweeps it across all shards.
// Unlike SearchBatch, a shard failure degrades that query's result
// instead of failing it. A dead context fails the remaining queries
// promptly; no goroutines outlive the call.
func (cl *Cluster) SearchBatchCtx(ctx context.Context, exprs []string, k int) *BatchResult {
	return cl.batchDriver(ctx, len(exprs), func(qi int) (*ClusterResult, error) {
		return cl.searchSerialCtx(ctx, exprs[qi], k)
	})
}

// BatchQuery is one query of a heterogeneous resilient batch: either a
// search (Expr) or a document fetch (FetchIDs), with an optional
// front-door shard mask. Carrying both in one query is an error.
type BatchQuery struct {
	// Expr is the boolean query expression (search queries).
	Expr string
	// K is the query's top-k depth (<= 0 uses the cluster config's K).
	K int
	// ShardMask, when non-zero, restricts execution to the shards whose
	// bits are set; excluded shards appear in the result's Degraded mask
	// with ErrShardShed. Zero executes every shard.
	ShardMask uint64
	// FetchIDs, when non-empty, makes this query a document fetch: the
	// result's Docs holds the payloads of these global docIDs, in order.
	// Mutually exclusive with Expr.
	FetchIDs []uint32
}

// errExprAndFetch rejects a BatchQuery that is both a search and a fetch.
var errExprAndFetch = errors.New("pool: BatchQuery carries both Expr and FetchIDs")

// SearchBatchQueries is SearchBatchCtx for heterogeneous queries: per-query
// top-k depths, front-door shard masks, and document fetches. It is the
// execution surface the front-door serving tier flushes its coalesced
// batches into.
func (cl *Cluster) SearchBatchQueries(ctx context.Context, qs []BatchQuery) *BatchResult {
	return cl.batchDriver(ctx, len(qs), func(qi int) (*ClusterResult, error) {
		q := qs[qi]
		if len(q.FetchIDs) > 0 {
			if q.Expr != "" {
				return nil, errExprAndFetch
			}
			return cl.fetchBatchMask(ctx, q.FetchIDs, q.ShardMask)
		}
		k := q.K
		if k <= 0 {
			k = cl.cfg.K
		}
		return cl.searchSerialCtxMask(ctx, q.Expr, k, q.ShardMask)
	})
}
