package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"boss/internal/core"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/query"
	"boss/internal/topk"
)

// Resilience configures the cluster's fault-handling policy: per-shard
// deadlines, bounded retry with jittered exponential backoff, and a
// per-shard circuit breaker. The zero value is normalized to
// DefaultResilience by NewCluster.
type Resilience struct {
	// ShardTimeout bounds one shard attempt's wall-clock time
	// (0 disables the per-attempt deadline; the parent context still
	// applies).
	ShardTimeout time.Duration
	// MaxRetries is how many times a retryable shard failure is retried
	// (so a shard sees at most MaxRetries+1 attempts). Negative disables
	// retry entirely.
	MaxRetries int
	// BackoffBase is the pre-jitter delay before the first retry; it
	// doubles per attempt up to BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// Seed drives backoff jitter. Delays are a pure function of
	// (Seed, shard, attempt), so a replayed plan backs off identically.
	Seed int64
	// BreakerThreshold is the consecutive-failure count that opens a
	// shard's circuit breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects attempts
	// before letting a half-open probe through.
	BreakerCooldown time.Duration
}

// DefaultResilience is the serving default: two retries with 1–16 ms
// jittered backoff, a breaker that opens after 5 consecutive failures
// and probes again after 50 ms, and no per-attempt timeout (simulated
// devices answer in microseconds of host time; a wall-clock deadline
// would only add CI flakiness).
func DefaultResilience() Resilience {
	return Resilience{
		MaxRetries:       2,
		BackoffBase:      time.Millisecond,
		BackoffMax:       16 * time.Millisecond,
		BreakerThreshold: 5,
		BreakerCooldown:  50 * time.Millisecond,
	}
}

// normalize fills zero fields with their defaults.
func (r Resilience) normalize() Resilience {
	def := DefaultResilience()
	if r.BackoffBase <= 0 {
		r.BackoffBase = def.BackoffBase
	}
	if r.BackoffMax <= 0 {
		r.BackoffMax = def.BackoffMax
	}
	if r.BreakerThreshold <= 0 {
		r.BreakerThreshold = def.BreakerThreshold
	}
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = def.BreakerCooldown
	}
	return r
}

// ErrShardUnavailable reports that a shard's circuit breaker rejected
// the attempt without issuing it.
var ErrShardUnavailable = errors.New("pool: shard unavailable (breaker open)")

// ErrShardShed reports that a shard was excluded from a query by the
// front-door serving tier's degradation mask rather than by a fault: the
// query's result is a deliberate partial-shard answer. The shard's bit is
// set in ClusterResult.Degraded exactly like a failed shard's, but the
// breaker and retry machinery never engage.
var ErrShardShed = errors.New("pool: shard shed (front-door degradation)")

// EventKind labels one entry in a shard's resilience event log.
type EventKind uint8

const (
	EvAttempt EventKind = iota
	EvFailure
	EvBackoff
	EvBreakerOpen
	EvBreakerHalfOpen
	EvBreakerClose
	EvBreakerReject
)

func (k EventKind) String() string {
	switch k {
	case EvAttempt:
		return "attempt"
	case EvFailure:
		return "failure"
	case EvBackoff:
		return "backoff"
	case EvBreakerOpen:
		return "breaker-open"
	case EvBreakerHalfOpen:
		return "breaker-half-open"
	case EvBreakerClose:
		return "breaker-close"
	case EvBreakerReject:
		return "breaker-reject"
	}
	return "unknown"
}

// Event is one retry/breaker transition on one shard. The per-shard
// sequence is deterministic given a fault plan and a query order.
type Event struct {
	Shard   int
	Kind    EventKind
	Attempt int
	Backoff time.Duration
	Err     error
}

// breaker states.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

// shardState is one shard's breaker plus its resilience event log, under
// one mutex so log order matches breaker-transition order.
type shardState struct {
	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
	probing  bool
	events   []Event
}

// record appends an event while holding s.mu.
func (s *shardState) record(si int, kind EventKind, attempt int, backoff time.Duration, err error) {
	s.events = append(s.events, Event{Shard: si, Kind: kind, Attempt: attempt, Backoff: backoff, Err: err})
}

// allow reports whether an attempt may be issued, applying the
// open → half-open transition after the cooldown.
func (s *shardState) allow(si int, now time.Time, cooldown time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case brClosed:
		return true
	case brOpen:
		if now.Sub(s.openedAt) < cooldown {
			s.record(si, EvBreakerReject, 0, 0, nil)
			return false
		}
		s.state = brHalfOpen
		s.probing = true
		s.record(si, EvBreakerHalfOpen, 0, 0, nil)
		return true
	default: // half-open: one probe in flight at a time
		if s.probing {
			s.record(si, EvBreakerReject, 0, 0, nil)
			return false
		}
		s.probing = true
		return true
	}
}

// success closes the breaker.
func (s *shardState) success(si int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != brClosed {
		s.record(si, EvBreakerClose, 0, 0, nil)
	}
	s.state = brClosed
	s.fails = 0
	s.probing = false
}

// failure records a failed attempt and opens the breaker when the
// consecutive-failure threshold is reached (immediately in half-open).
func (s *shardState) failure(si, attempt int, now time.Time, threshold int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.record(si, EvFailure, attempt, 0, err)
	if s.state == brHalfOpen {
		s.state = brOpen
		s.openedAt = now
		s.probing = false
		s.record(si, EvBreakerOpen, attempt, 0, nil)
		return
	}
	s.fails++
	if s.state == brClosed && s.fails >= threshold {
		s.state = brOpen
		s.openedAt = now
		s.record(si, EvBreakerOpen, attempt, 0, nil)
	}
}

// Events snapshots one shard's resilience event log.
func (cl *Cluster) Events(si int) []Event {
	s := cl.states[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// ResetEvents clears every shard's event log (test/benchmark setup).
func (cl *Cluster) ResetEvents() {
	for _, s := range cl.states {
		s.mu.Lock()
		s.events = nil
		s.mu.Unlock()
	}
}

// initResilience wires the cluster's resilience machinery; called from
// NewCluster.
func (cl *Cluster) initResilience(r Resilience) {
	cl.res = r.normalize()
	cl.states = make([]*shardState, len(cl.shards))
	for i := range cl.states {
		cl.states[i] = &shardState{}
	}
	cl.now = time.Now
	cl.sleepFn = sleepCtx
}

// sleepCtx waits d or until the context is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoffDelay computes the jittered exponential backoff before retry
// `attempt` (0-based). It is a pure function of (seed, shard, attempt):
// replays back off identically, and no two shards share a jitter stream.
//
//boss:hotpath one call per retried shard attempt.
func (r Resilience) backoffDelay(shard, attempt int) time.Duration {
	d := r.BackoffBase
	for i := 0; i < attempt && d < r.BackoffMax; i++ {
		d *= 2
	}
	if d > r.BackoffMax {
		d = r.BackoffMax
	}
	// Jitter in [d/2, d): splitmix64 over the decision coordinates.
	h := splitmix64(uint64(r.Seed) ^ (uint64(shard)+1)*0x9e3779b97f4a7c15 + uint64(attempt)*0xbf58476d1ce4e5b9)
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(h%uint64(half))
}

// splitmix64 is the standard 64-bit finalizer (same construction the
// fault injector uses; duplicated here because mem keeps its unexported).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SetFaultPlan applies a fault plan across the cluster: shard si plays
// the role of device si. A nil or empty plan restores pristine shards.
// Not safe concurrently with queries; meant for setup time.
func (cl *Cluster) SetFaultPlan(plan *mem.FaultPlan) {
	cl.faultPlan = plan
	for si, acc := range cl.accs {
		acc.SetFault(plan.InjectorFor(si))
	}
	// Fetch engines are built lazily; wire the ones that exist and retain
	// the plan so EnsureDocs wires the rest at build time.
	for si, eng := range cl.fetchers {
		eng.SetFault(plan.InjectorFor(si))
	}
}

// retryable reports whether a shard failure is worth retrying:
// transient read errors and per-attempt timeouts are; permanent media
// errors, dead devices, and parent-context cancellation are not.
func retryable(err error) bool {
	switch {
	case errors.Is(err, mem.ErrMediaUncorrectable):
		return false
	case errors.Is(err, mem.ErrDeviceDown):
		return false
	case errors.Is(err, context.Canceled):
		return false
	default:
		return true
	}
}

// runShardCtx issues one shard attempt under the per-attempt deadline.
func (cl *Cluster) runShardCtx(ctx context.Context, node *query.Node, dnf [][]string, si, k int) shardOut {
	pruned := pruneForShard(node, cl.shardTerms[si])
	if pruned == nil {
		return shardOut{}
	}
	if pruned.Op != query.OpSparse && pruned != node {
		dnf = pruned.DNF()
	}
	if cl.res.ShardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cl.res.ShardTimeout)
		defer cancel()
	}
	var out core.Result
	var err error
	if pruned.Op == query.OpSparse {
		out, err = cl.accs[si].RunSparseCtx(ctx, pruned.Terms(), k)
	} else {
		out, err = cl.accs[si].RunDNFCtx(ctx, dnf, k)
	}
	if err != nil {
		return shardOut{err: shardError(si, err)}
	}
	return shardOut{m: out.M, topk: out.TopK}
}

// shardError tags an error with its shard (outlined: the retry loop is a
// hot path and must not construct errors inline).
func shardError(si int, err error) error {
	return fmt.Errorf("pool: shard %d: %w", si, err)
}

// runShardResilient drives one shard's attempt loop: breaker gate,
// bounded retry with jittered backoff, parent-context awareness.
//
// event recording is outlined.
//
//boss:hotpath one call per (query, shard); all error construction and
func (cl *Cluster) runShardResilient(ctx context.Context, node *query.Node, dnf [][]string, si, k int) shardOut {
	st := cl.states[si]
	for attempt := 0; ; attempt++ {
		if cause := ctx.Err(); cause != nil {
			return shardOut{err: shardError(si, cause)} //boss:escape-ok cold cancellation error path
		}
		if !st.allow(si, cl.now(), cl.res.BreakerCooldown) {
			return shardOut{err: breakerError(si)} //boss:escape-ok cold breaker-open error path
		}
		recordAttempt(st, si, attempt)
		out := cl.runShardCtx(ctx, node, dnf, si, k)
		if out.err == nil {
			st.success(si)
			return out
		}
		st.failure(si, attempt, cl.now(), cl.res.BreakerThreshold, out.err)
		if attempt >= cl.res.MaxRetries || !retryable(out.err) {
			return out
		}
		if cause := ctx.Err(); cause != nil {
			return out
		}
		d := cl.res.backoffDelay(si, attempt)
		recordBackoff(st, si, attempt, d)
		if cl.sleepFn(ctx, d) != nil {
			return out // context died during backoff: report the last failure
		}
	}
}

// recordAttempt / recordBackoff / breakerError are outlined from the
// retry loop so the hot path stays free of composite construction.
func recordAttempt(st *shardState, si, attempt int) {
	st.mu.Lock()
	st.record(si, EvAttempt, attempt, 0, nil)
	st.mu.Unlock()
}

func recordBackoff(st *shardState, si, attempt int, d time.Duration) {
	st.mu.Lock()
	st.record(si, EvBackoff, attempt, d, nil)
	st.mu.Unlock()
}

func breakerError(si int) error {
	return fmt.Errorf("pool: shard %d: %w", si, ErrShardUnavailable)
}

// mergePartial folds per-shard results into the root-merged ranking,
// degrading gracefully: failed shards set their bit in Degraded and park
// their error in ShardErrs instead of failing the query. Only when every
// populated shard failed does the query itself error.
func (cl *Cluster) mergePartial(outs []shardOut, k int) (*ClusterResult, error) {
	res := &ClusterResult{PerShard: make([]*perf.Metrics, len(outs))}
	merged := topk.NewHeap(k)
	failed := 0
	var firstErr error
	for si, out := range outs {
		if out.err != nil {
			failed++
			if firstErr == nil {
				firstErr = out.err
			}
			if si < 64 {
				res.Degraded |= 1 << uint(si)
			}
			if res.ShardErrs == nil {
				res.ShardErrs = make([]error, len(outs))
			}
			res.ShardErrs[si] = out.err
			continue
		}
		if out.m == nil {
			continue
		}
		res.PerShard[si] = out.m
		res.LinkBytes += out.m.HostBytes
		for _, e := range out.topk {
			merged.Insert(e.DocID+cl.offsets[si], e.Score)
		}
	}
	if failed == len(outs) && failed > 0 {
		return nil, firstErr
	}
	res.TopK = merged.Results()
	return res, nil
}

// SearchCtx is Search with deadlines, retries, circuit breaking, and
// graceful degradation: surviving shards' top-k merge into a partial
// result whose Degraded mask and ShardErrs name the missing shards. The
// query errors only when the context dies or every shard fails.
func (cl *Cluster) SearchCtx(ctx context.Context, expr string, k int) (*ClusterResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	node, dnf, err := cl.prepare(expr)
	if err != nil {
		return nil, err
	}
	outs := make([]shardOut, len(cl.shards))
	workers := cl.workers(len(cl.shards))
	if workers == 1 {
		for si := range cl.shards {
			outs[si] = cl.runShardResilient(ctx, node, dnf, si, k)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for si := range next {
					outs[si] = cl.runShardResilient(ctx, node, dnf, si, k)
				}
			}()
		}
		dispatched := 0
	dispatch:
		for si := range cl.shards {
			select {
			case next <- si:
				dispatched++
			case <-ctx.Done():
				break dispatch
			}
		}
		close(next)
		wg.Wait()
		for si := dispatched; si < len(cl.shards); si++ {
			outs[si] = shardOut{err: shardError(si, ctx.Err())}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return cl.mergePartial(outs, k)
}

// maskHas reports whether shard si participates under a front-door shard
// mask. Mask zero means "no mask" (every shard participates), and shards
// beyond the mask's 64 bits always participate, mirroring the Degraded
// bitmask's range.
func maskHas(mask uint64, si int) bool {
	if mask == 0 || si >= 64 {
		return true
	}
	return mask&(1<<uint(si)) != 0
}

// shedShardError tags a deliberately-shed shard (outlined like shardError).
func shedShardError(si int) error {
	return fmt.Errorf("pool: shard %d: %w", si, ErrShardShed)
}

// searchSerialCtx sweeps one query across all shards on the calling
// goroutine with the full resilience machinery.
func (cl *Cluster) searchSerialCtx(ctx context.Context, expr string, k int) (*ClusterResult, error) {
	return cl.searchSerialCtxMask(ctx, expr, k, 0)
}

// searchSerialCtxMask is searchSerialCtx under a front-door shard mask:
// masked-out shards are skipped entirely (no attempt, no breaker or retry
// activity) and reported in the result's Degraded bitmask with ErrShardShed.
func (cl *Cluster) searchSerialCtxMask(ctx context.Context, expr string, k int, mask uint64) (*ClusterResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	node, dnf, err := cl.prepare(expr)
	if err != nil {
		return nil, err
	}
	outs := make([]shardOut, len(cl.shards))
	for si := range cl.shards {
		if !maskHas(mask, si) {
			outs[si] = shardOut{err: shedShardError(si)}
			continue
		}
		outs[si] = cl.runShardResilient(ctx, node, dnf, si, k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return cl.mergePartial(outs, k)
}

// batchDriver runs one resilient execution per query index on a bounded
// worker pool, honoring cancellation: a dead context fails the remaining
// queries promptly and no goroutines outlive the call. SearchBatchCtx and
// SearchBatchQueries share it.
func (cl *Cluster) batchDriver(ctx context.Context, n int, run func(qi int) (*ClusterResult, error)) *BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	br := &BatchResult{
		Results: make([]*ClusterResult, n),
		Errs:    make([]error, n),
	}
	if err := ctx.Err(); err != nil {
		for qi := 0; qi < n; qi++ {
			br.Errs[qi] = err
		}
		br.Err = err
		return br
	}
	workers := cl.workers(n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range next {
				br.Results[qi], br.Errs[qi] = run(qi)
			}
		}()
	}
	dispatched := 0
dispatch:
	for qi := 0; qi < n; qi++ {
		select {
		case next <- qi:
			dispatched++
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	for qi := dispatched; qi < n; qi++ {
		br.Errs[qi] = ctx.Err()
	}
	for _, err := range br.Errs {
		if err != nil {
			br.Err = err
			break
		}
	}
	return br
}

// SearchBatchCtx pipelines a batch with per-query resilience: each
// worker owns one in-flight query and sweeps it across all shards.
// Unlike SearchBatch, a shard failure degrades that query's result
// instead of failing it. A dead context fails the remaining queries
// promptly; no goroutines outlive the call.
func (cl *Cluster) SearchBatchCtx(ctx context.Context, exprs []string, k int) *BatchResult {
	return cl.batchDriver(ctx, len(exprs), func(qi int) (*ClusterResult, error) {
		return cl.searchSerialCtx(ctx, exprs[qi], k)
	})
}

// BatchQuery is one query of a heterogeneous resilient batch: either a
// search (Expr) or a document fetch (FetchIDs), with an optional
// front-door shard mask. Carrying both in one query is an error.
type BatchQuery struct {
	// Expr is the boolean query expression (search queries).
	Expr string
	// K is the query's top-k depth (<= 0 uses the cluster config's K).
	K int
	// ShardMask, when non-zero, restricts execution to the shards whose
	// bits are set; excluded shards appear in the result's Degraded mask
	// with ErrShardShed. Zero executes every shard.
	ShardMask uint64
	// FetchIDs, when non-empty, makes this query a document fetch: the
	// result's Docs holds the payloads of these global docIDs, in order.
	// Mutually exclusive with Expr.
	FetchIDs []uint32
}

// errExprAndFetch rejects a BatchQuery that is both a search and a fetch.
var errExprAndFetch = errors.New("pool: BatchQuery carries both Expr and FetchIDs")

// SearchBatchQueries is SearchBatchCtx for heterogeneous queries: per-query
// top-k depths, front-door shard masks, and document fetches. It is the
// execution surface the front-door serving tier flushes its coalesced
// batches into.
func (cl *Cluster) SearchBatchQueries(ctx context.Context, qs []BatchQuery) *BatchResult {
	return cl.batchDriver(ctx, len(qs), func(qi int) (*ClusterResult, error) {
		q := qs[qi]
		if len(q.FetchIDs) > 0 {
			if q.Expr != "" {
				return nil, errExprAndFetch
			}
			return cl.fetchBatchMask(ctx, q.FetchIDs, q.ShardMask)
		}
		k := q.K
		if k <= 0 {
			k = cl.cfg.K
		}
		return cl.searchSerialCtxMask(ctx, q.Expr, k, q.ShardMask)
	})
}
