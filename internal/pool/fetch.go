package pool

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"boss/internal/core"
	"boss/internal/corpus"
	"boss/internal/docstore"
	"boss/internal/mem"
	"boss/internal/perf"
)

// Fetch phase of cluster serving: after the root merge ends at scored
// global docIDs, the documents themselves live on the shards that scored
// them. FetchBatch routes each requested docID to its owning shard's
// document store, fetches through the shard's fetch engine (charging the
// shard's simulated SCM under mem.CatLoadDoc), and copies the payloads
// out at the cluster boundary. The per-shard stores are synthesized
// lazily from the retained sampler statistics — payload bytes depend
// only on (Seed, global docID, DocLens), so every shard count packs
// byte-identical documents and fetch results are sharding-independent.
//
// Fetches ride the same resilience machinery as searches: per-shard
// circuit breakers, bounded retry with jittered backoff, per-attempt
// deadlines, and graceful degradation (a failed shard zeroes its
// documents and sets its Degraded bit instead of failing the batch).

// FetchedDoc is one fetched document at the cluster boundary. Fields are
// copies (one per DocFields entry, in order), so the caller owns them
// outright — no pins or aliases into shard caches escape the cluster.
type FetchedDoc struct {
	DocID  uint32
	Fields [][]byte
}

// DocFields returns the document stores' field names, in the order
// FetchedDoc.Fields uses. Builds the stores if they don't exist yet.
func (cl *Cluster) DocFields() ([]string, error) {
	if err := cl.EnsureDocs(); err != nil {
		return nil, err
	}
	return cl.docs[0].Fields, nil
}

// EnsureDocs builds the per-shard document stores and fetch engines if
// they have not been built yet. Safe for concurrent use; the build runs
// once. Search-only clusters never pay for it.
func (cl *Cluster) EnsureDocs() error {
	cl.docsOnce.Do(cl.buildDocs)
	return cl.docsErr
}

// buildDocs synthesizes one document store per shard over the shard's
// global docID interval, then one fetch engine per replica of the shard.
// Replica 0 serves the base store; higher replicas serve ReplicaViews
// (shared payload bytes, fresh cache identity) and draw faults from
// their own injector domain, mirroring buildReplicas. Runs under
// docsOnce.
func (cl *Cluster) buildDocs() {
	cl.docs = make([]*docstore.Store, len(cl.shards))
	cl.fetchers = make([][]*core.FetchEngine, len(cl.shards))
	var name, text []byte
	for si := range cl.shards {
		lo := cl.offsets[si]
		hi := uint32(cl.spec.NumDocs)
		if si+1 < len(cl.offsets) {
			hi = cl.offsets[si+1]
		}
		b := docstore.NewBuilder("name", "text")
		for g := lo; g < hi; g++ {
			name = corpus.DocName(name[:0], g)
			text = corpus.DocText(cl.spec.Seed, g, cl.docLens[g], cl.spec.NumTerms, text[:0])
			if err := b.Add(name, text); err != nil {
				cl.docsErr = err
				return
			}
		}
		cl.docs[si] = b.Build()
		reps := make([]*core.FetchEngine, cl.Replicas())
		for ri := range reps {
			store := cl.docs[si]
			if ri > 0 {
				store = store.ReplicaView()
			}
			eng := core.NewFetchEngine(store, cl.cache)
			if cl.faultPlan != nil {
				eng.SetFault(cl.faultPlan.InjectorFor(cl.ReplicaDevice(si, ri)))
			}
			reps[ri] = eng
		}
		cl.fetchers[si] = reps
	}
}

// shardOfDoc returns the shard owning global docID id (offsets are the
// sorted interval starts).
func (cl *Cluster) shardOfDoc(id uint32) int {
	return sort.Search(len(cl.offsets), func(i int) bool { return cl.offsets[i] > id }) - 1
}

// fetchRangeError reports a request for a docID the corpus doesn't hold.
func fetchRangeError(id uint32, n int) error {
	return fmt.Errorf("pool: fetch docID %d out of range (corpus holds %d documents)", id, n)
}

// FetchBatch fetches the documents with the given global docIDs. The
// result's Docs holds one entry per requested id, in input order; TopK
// stays empty. Shard failures degrade: the failed shard's documents are
// zero-valued, its Degraded bit is set, and its error lands in
// ShardErrs. The call errors only on invalid ids, a dead context, or
// when every involved shard failed.
func (cl *Cluster) FetchBatch(ctx context.Context, ids []uint32) (*ClusterResult, error) {
	return cl.fetchBatchMask(ctx, ids, 0)
}

// fetchBatchMask is FetchBatch under a front-door shard mask: masked-out
// shards are skipped entirely (no attempt, no breaker or retry activity)
// and reported with ErrShardShed, like searchSerialCtxMask.
func (cl *Cluster) fetchBatchMask(ctx context.Context, ids []uint32, mask uint64) (*ClusterResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cl.EnsureDocs(); err != nil {
		return nil, err
	}
	res := &ClusterResult{
		PerShard: make([]*perf.Metrics, len(cl.shards)),
		Docs:     make([]FetchedDoc, len(ids)),
	}
	if len(ids) == 0 {
		return res, nil
	}
	// Route each requested docID to its owning shard, remembering where in
	// the input it goes back.
	byShard := make([][]uint32, len(cl.shards))
	pos := make([][]int, len(cl.shards))
	for i, id := range ids {
		if int(id) >= cl.spec.NumDocs {
			return nil, fetchRangeError(id, cl.spec.NumDocs)
		}
		si := cl.shardOfDoc(id)
		byShard[si] = append(byShard[si], id)
		pos[si] = append(pos[si], i)
	}
	type fetchOut struct {
		m   *perf.Metrics
		err error
	}
	outs := make([]fetchOut, len(cl.shards))
	runOne := func(si int) {
		if len(byShard[si]) == 0 {
			return
		}
		if !maskHas(mask, si) {
			outs[si] = fetchOut{err: shedShardError(si)}
			return
		}
		m, err := cl.fetchShardResilient(ctx, si, byShard[si], pos[si], res.Docs)
		outs[si] = fetchOut{m: m, err: err}
	}
	if workers := cl.workers(len(cl.shards)); workers == 1 {
		for si := range cl.shards {
			runOne(si)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for si := range next {
					runOne(si)
				}
			}()
		}
		for si := range cl.shards {
			next <- si
		}
		close(next)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Fold per-shard outcomes, degrading failed shards like mergePartial.
	involved, failed := 0, 0
	var firstErr error
	for si, out := range outs {
		if len(byShard[si]) == 0 {
			continue
		}
		involved++
		if out.err != nil {
			failed++
			if firstErr == nil {
				firstErr = out.err
			}
			if si < 64 {
				res.Degraded |= 1 << uint(si)
			}
			if res.ShardErrs == nil {
				res.ShardErrs = make([]error, len(outs))
			}
			res.ShardErrs[si] = out.err
			// A failed attempt may have partially populated its documents;
			// zero them so degraded entries are unambiguous.
			for _, p := range pos[si] {
				res.Docs[p] = FetchedDoc{}
			}
			continue
		}
		res.PerShard[si] = out.m
		res.LinkBytes += out.m.HostBytes
	}
	if failed == involved && failed > 0 {
		return nil, firstErr
	}
	return res, nil
}

// fetchQueryKey folds a fetch's docID set into the stable query key the
// replica rotation hashes on, so a given fetch routes to the same copy
// across replays just like a search expression does.
func fetchQueryKey(ids []uint32) uint64 {
	var key uint64
	for _, id := range ids {
		key = splitmix64(key ^ uint64(id))
	}
	return key
}

// fetchShardResilient drives one shard's fetch attempt loop:
// breaker-aware replica selection, bounded retry with jittered backoff,
// parent-context awareness — the fetch twin of runShardResilient,
// sharing its per-replica breaker state so a copy that fails searches
// also sheds fetches. Fetches are never hedged: a fetch attempt writes
// payloads into the caller's docs slice in place, and two racing
// attempts would tear those writes.
func (cl *Cluster) fetchShardResilient(ctx context.Context, si int, ids []uint32, pos []int, docs []FetchedDoc) (*perf.Metrics, error) {
	qkey := fetchQueryKey(ids)
	for attempt := 0; ; attempt++ {
		if cause := ctx.Err(); cause != nil {
			return nil, shardError(si, cause)
		}
		st, ri, ok := cl.pickReplica(si, qkey, attempt)
		if !ok {
			return nil, breakerError(si)
		}
		recordAttempt(st, attempt)
		m, err := cl.fetchShardAttempt(ctx, si, ri, ids, pos, docs)
		cl.settle(st, err, attempt)
		if err == nil {
			return m, nil
		}
		if attempt >= cl.res.MaxRetries || !cl.retryableOn(err, si) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, err
		}
		d := cl.res.backoffDelay(si, attempt)
		recordBackoff(st, attempt, d)
		if cl.sleepFn(ctx, d) != nil {
			return nil, err // context died during backoff: report the last failure
		}
	}
}

// fetchShardAttempt issues one fetch attempt on replica ri of shard si
// under the per-attempt deadline: every requested document streams
// through the replica's fetch engine, and the payloads are copied into
// docs at their input positions. A fresh Metrics per attempt keeps
// retried attempts from double-charging the recorded shard work.
func (cl *Cluster) fetchShardAttempt(ctx context.Context, si, ri int, ids []uint32, pos []int, docs []FetchedDoc) (*perf.Metrics, error) {
	if cl.res.ShardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cl.res.ShardTimeout)
		defer cancel()
	}
	eng := cl.fetchers[si][ri]
	off := cl.offsets[si]
	m := perf.NewMetrics()
	var buf core.DocBuf
	defer buf.Release()
	for j, id := range ids {
		if err := eng.FetchInto(ctx, id-off, m, &buf); err != nil {
			return nil, shardError(si, err)
		}
		d := &docs[pos[j]]
		d.DocID = id
		d.Fields = copyFields(d.Fields, buf.Fields)
		var n int64
		for _, f := range buf.Fields {
			n += int64(len(f))
		}
		// The returned payload crosses the shared interconnect to the root.
		m.AddHost(n, mem.CatLoadDoc)
	}
	return m, nil
}

// copyFields replaces dst with copies of src's field slices, reusing
// dst's backing array across calls.
func copyFields(dst, src [][]byte) [][]byte {
	dst = dst[:0]
	for _, f := range src {
		dst = append(dst, append([]byte(nil), f...))
	}
	return dst
}

// attachDocs fetches a search result's top-k documents and folds the
// fetch work into the result: Docs holds one entry per TopK entry, the
// fetch shards' metrics merge into PerShard, and fetch degradation
// unions into the Degraded mask.
func (cl *Cluster) attachDocs(ctx context.Context, res *ClusterResult) (*ClusterResult, error) {
	ids := make([]uint32, len(res.TopK))
	for i, e := range res.TopK {
		ids[i] = e.DocID
	}
	fr, err := cl.FetchBatch(ctx, ids)
	if err != nil {
		return nil, err
	}
	res.Docs = fr.Docs
	res.LinkBytes += fr.LinkBytes
	res.Degraded |= fr.Degraded
	for si, m := range fr.PerShard {
		if m == nil {
			continue
		}
		if res.PerShard[si] == nil {
			res.PerShard[si] = m
		} else {
			res.PerShard[si].Merge(m)
		}
	}
	if fr.ShardErrs != nil {
		if res.ShardErrs == nil {
			res.ShardErrs = make([]error, len(res.PerShard))
		}
		for si, e := range fr.ShardErrs {
			if e != nil && res.ShardErrs[si] == nil {
				res.ShardErrs[si] = e
			}
		}
	}
	return res, nil
}

// SearchFetchCtx is SearchCtx plus the fetch phase: the merged top-k's
// documents come back in Docs (one entry per TopK entry, in rank order).
// Search and fetch degrade independently; both phases' failed shards
// appear in the Degraded mask.
func (cl *Cluster) SearchFetchCtx(ctx context.Context, expr string, k int) (*ClusterResult, error) {
	res, err := cl.SearchCtx(ctx, expr, k)
	if err != nil {
		return nil, err
	}
	return cl.attachDocs(ctx, res)
}

// SearchFetchBatch pipelines search+fetch over a query batch: each
// worker owns one in-flight query, sweeps it across all shards, then
// fetches its merged top-k documents. Per-query results match
// SearchFetchCtx.
func (cl *Cluster) SearchFetchBatch(ctx context.Context, exprs []string, k int) *BatchResult {
	return cl.batchDriver(ctx, len(exprs), func(qi int) (*ClusterResult, error) {
		res, err := cl.searchSerialCtx(ctx, exprs[qi], k)
		if err != nil {
			return nil, err
		}
		return cl.attachDocs(ctx, res)
	})
}
