package pool

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"boss/internal/corpus"
	"boss/internal/mem"
)

func TestNewClusterRejectsInvalidConfig(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.003))
	cases := []struct {
		name   string
		corpus *corpus.Corpus
		shards int
	}{
		{"zero shards", c, 0},
		{"negative shards", c, -3},
		{"nil corpus", nil, 2},
		{"empty corpus", &corpus.Corpus{}, 2},
		{"more shards than documents", c, c.Spec.NumDocs + 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cl, err := NewCluster(DefaultConfig(), tc.corpus, tc.shards)
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("error %v does not wrap ErrBadConfig", err)
			}
			if cl != nil {
				t.Fatal("non-nil cluster alongside error")
			}
		})
	}
}

// chaosExprs builds a mixed workload that revisits hot terms.
func chaosExprs(c *corpus.Corpus, n int) []string {
	var exprs []string
	for _, qt := range corpus.AllQueryTypes() {
		for _, q := range corpus.SampleZipfQueries(c, qt, 8, 0, 11) {
			exprs = append(exprs, q.Expr)
		}
	}
	for len(exprs) < n {
		exprs = append(exprs, exprs[len(exprs)%len(exprs)])
	}
	return exprs[:n]
}

// SearchCtx on a pristine cluster must be bit-identical to Search.
func TestSearchCtxMatchesSearchWhenClean(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	cl := mustCluster(t, DefaultConfig(), c, 4)
	for _, expr := range chaosExprs(c, 24) {
		want, err := cl.Search(expr, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.SearchCtx(context.Background(), expr, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got.Degraded != 0 || got.ShardErrs != nil {
			t.Fatalf("%s: clean cluster reported degradation %b", expr, got.Degraded)
		}
		if !reflect.DeepEqual(got.TopK, want.TopK) {
			t.Fatalf("%s: SearchCtx diverged from Search", expr)
		}
	}
}

// The chaos acceptance test: a 1000-query batch over 4 shards at a 1%
// transient fault rate. Every query must either succeed fully with
// results identical to a pristine twin cluster, or return partial
// results with an accurate Degraded mask — no panics, no goroutine
// leaks, no silently corrupt scores.
func TestChaosBatchTransient(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	cfg := DefaultConfig()
	cfg.CacheBytes = 0 // decode every block so every fetch draws a fault
	clean := mustCluster(t, cfg, c, 4)
	chaos := mustCluster(t, cfg, c, 4)
	chaos.SetFaultPlan(&mem.FaultPlan{Seed: 2026, TransientRate: 0.01})

	exprs := chaosExprs(c, 1000)
	before := runtime.NumGoroutine()
	br := chaos.SearchBatchCtx(context.Background(), exprs, 10)
	if br.Err != nil {
		t.Fatalf("batch error: %v", br.Err)
	}
	for qi, expr := range exprs {
		res := br.Results[qi]
		if res == nil {
			t.Fatalf("query %d: nil result without error", qi)
		}
		want, err := clean.Search(expr, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded == 0 {
			if !reflect.DeepEqual(res.TopK, want.TopK) {
				t.Fatalf("query %d (%s): full result differs from pristine cluster", qi, expr)
			}
			if res.ShardErrs != nil {
				t.Fatalf("query %d: ShardErrs set without Degraded bits", qi)
			}
			continue
		}
		// Degraded: the mask must exactly match the recorded shard errors.
		for si := 0; si < chaos.Shards(); si++ {
			bit := res.Degraded&(1<<uint(si)) != 0
			hasErr := res.ShardErrs != nil && res.ShardErrs[si] != nil
			if bit != hasErr {
				t.Fatalf("query %d shard %d: mask bit %v but error %v", qi, si, bit, res.ShardErrs[si])
			}
		}
	}
	// Goroutine hygiene: allow the runtime a moment to retire workers.
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

// Under permanent faults, degraded results must equal the pristine
// merge over the surviving shards only.
func TestChaosDegradedResultsAreAccurate(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	cfg := DefaultConfig()
	cfg.CacheBytes = 0
	clean := mustCluster(t, cfg, c, 4)
	chaos := mustCluster(t, cfg, c, 4)
	chaos.SetFaultPlan(&mem.FaultPlan{Seed: 9, DeadDevices: []int{2}})

	sawDegraded := false
	for _, expr := range chaosExprs(c, 40) {
		res, err := chaos.SearchCtx(context.Background(), expr, 10)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if res.Degraded == 0 {
			continue // shard 2 had nothing to contribute for this query
		}
		sawDegraded = true
		if res.Degraded != 1<<2 {
			t.Fatalf("%s: degraded mask %b, want shard 2 only", expr, res.Degraded)
		}
		// Early queries see the device error; once the breaker opens,
		// later ones are rejected without reaching the shard.
		if !errors.Is(res.ShardErrs[2], mem.ErrDeviceDown) && !errors.Is(res.ShardErrs[2], ErrShardUnavailable) {
			t.Fatalf("%s: shard 2 error %v is neither ErrDeviceDown nor ErrShardUnavailable", expr, res.ShardErrs[2])
		}
		// Rebuild the expected partial merge from the pristine cluster,
		// failing shard 2 the same way.
		node, dnf, err := clean.prepare(expr)
		if err != nil {
			t.Fatal(err)
		}
		outs := make([]shardOut, clean.Shards())
		for si := range outs {
			if si == 2 {
				outs[si] = shardOut{err: res.ShardErrs[2]}
				continue
			}
			outs[si] = clean.runShard(node, dnf, si, 10)
		}
		want, err := clean.mergePartial(outs, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.TopK, want.TopK) {
			t.Fatalf("%s: degraded merge differs from pristine partial merge", expr)
		}
	}
	if !sawDegraded {
		t.Fatal("dead shard never degraded a query")
	}
}

// When every shard is dead the query itself errors.
func TestSearchCtxAllShardsFailed(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.003))
	cl := mustCluster(t, DefaultConfig(), c, 2)
	cl.SetFaultPlan(&mem.FaultPlan{Seed: 1, DeadDevices: []int{0, 1}})
	_, err := cl.SearchCtx(context.Background(), `"t0"`, 5)
	if !errors.Is(err, mem.ErrDeviceDown) {
		t.Fatalf("all-dead cluster: got %v, want wrap of ErrDeviceDown", err)
	}
}

// A pre-cancelled context returns promptly with every query failed and
// leaks no goroutines, race-clean.
func TestSearchBatchCtxPreCancelled(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.003))
	cl := mustCluster(t, DefaultConfig(), c, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	exprs := chaosExprs(c, 64)
	before := runtime.NumGoroutine()
	start := time.Now()
	br := cl.SearchBatchCtx(ctx, exprs, 10)
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("cancelled batch took %v", took)
	}
	if br.Err == nil {
		t.Fatal("cancelled batch reported success")
	}
	for qi := range exprs {
		if !errors.Is(br.Errs[qi], context.Canceled) {
			t.Fatalf("query %d: %v does not wrap context.Canceled", qi, br.Errs[qi])
		}
		if br.Results[qi] != nil {
			t.Fatalf("query %d: result alongside cancellation", qi)
		}
	}
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

// Cancelling mid-batch stops promptly without losing accounting: every
// query either completed or carries a cancellation error.
func TestSearchBatchCtxCancelMidFlight(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	cl := mustCluster(t, DefaultConfig(), c, 3)
	ctx, cancel := context.WithCancel(context.Background())
	exprs := chaosExprs(c, 400)
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	before := runtime.NumGoroutine()
	br := cl.SearchBatchCtx(ctx, exprs, 10)
	for qi := range exprs {
		ok := br.Errs[qi] == nil && br.Results[qi] != nil
		cancelled := br.Errs[qi] != nil && errors.Is(br.Errs[qi], context.Canceled)
		if !ok && !cancelled {
			t.Fatalf("query %d: neither completed nor cancelled: res=%v err=%v",
				qi, br.Results[qi], br.Errs[qi])
		}
	}
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

// Replay determinism: the same fault plan over the same workload on two
// independently built clusters produces identical outcomes and identical
// per-shard resilience event logs, event for event.
func TestResilienceReplayDeterministic(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	plan := &mem.FaultPlan{Seed: 77, TransientRate: 0.05, UncorrectableRate: 0.01}
	exprs := chaosExprs(c, 60)

	type qOutcome struct {
		degraded uint64
		errText  string
	}
	type shardEvent struct {
		kind    EventKind
		attempt int
		backoff time.Duration
		errText string
	}
	runOnce := func() ([]qOutcome, [][]shardEvent) {
		cfg := DefaultConfig()
		cfg.Workers = 1    // serial sweep: event order is the query order
		cfg.CacheBytes = 0 // identical fetch sequences on both runs
		cl := mustCluster(t, cfg, c, 4)
		cl.SetFaultPlan(plan)
		cl.sleepFn = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
		outs := make([]qOutcome, 0, len(exprs))
		for _, expr := range exprs {
			res, err := cl.SearchCtx(context.Background(), expr, 10)
			o := qOutcome{}
			if err != nil {
				o.errText = err.Error()
			} else {
				o.degraded = res.Degraded
			}
			outs = append(outs, o)
		}
		logs := make([][]shardEvent, cl.Shards())
		for si := range logs {
			for _, ev := range cl.Events(si) {
				se := shardEvent{kind: ev.Kind, attempt: ev.Attempt, backoff: ev.Backoff}
				if ev.Err != nil {
					se.errText = ev.Err.Error()
				}
				logs[si] = append(logs[si], se)
			}
		}
		return outs, logs
	}

	outA, logA := runOnce()
	outB, logB := runOnce()
	if !reflect.DeepEqual(outA, outB) {
		t.Fatal("query outcomes diverged between identical replays")
	}
	for si := range logA {
		if len(logA[si]) != len(logB[si]) {
			t.Fatalf("shard %d: %d events vs %d", si, len(logA[si]), len(logB[si]))
		}
		for i := range logA[si] {
			if logA[si][i] != logB[si][i] {
				t.Fatalf("shard %d event %d: %+v vs %+v", si, i, logA[si][i], logB[si][i])
			}
		}
	}
}

// Breaker lifecycle on a fake clock: consecutive failures open it,
// rejections flow while open, the cooldown admits a half-open probe, a
// failed probe re-opens, and a successful probe closes it.
func TestBreakerTransitions(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.003))
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Resilience = Resilience{
		MaxRetries:       0, // isolate the breaker from retry
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
	}
	cl := mustCluster(t, cfg, c, 1)
	clock := time.Unix(1000, 0)
	cl.now = func() time.Time { return clock }
	cl.sleepFn = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	cl.SetFaultPlan(&mem.FaultPlan{Seed: 1, DeadDevices: []int{0}})

	ctx := context.Background()
	// Three failures open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := cl.SearchCtx(ctx, `"t0"`, 5); !errors.Is(err, mem.ErrDeviceDown) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	// Open: attempts are rejected without reaching the shard.
	if _, err := cl.SearchCtx(ctx, `"t0"`, 5); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("open breaker: got %v, want ErrShardUnavailable", err)
	}
	// After the cooldown a probe goes through; the shard is still dead,
	// so the breaker re-opens.
	clock = clock.Add(2 * time.Minute)
	if _, err := cl.SearchCtx(ctx, `"t0"`, 5); !errors.Is(err, mem.ErrDeviceDown) {
		t.Fatalf("half-open probe: %v", err)
	}
	if _, err := cl.SearchCtx(ctx, `"t0"`, 5); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("re-opened breaker: got %v, want ErrShardUnavailable", err)
	}
	// Heal the device; the next cooldown probe succeeds and closes it.
	cl.SetFaultPlan(nil)
	clock = clock.Add(2 * time.Minute)
	if _, err := cl.SearchCtx(ctx, `"t0"`, 5); err != nil {
		t.Fatalf("healing probe: %v", err)
	}
	if _, err := cl.SearchCtx(ctx, `"t0"`, 5); err != nil {
		t.Fatalf("closed breaker: %v", err)
	}
	// The event log shows the full lifecycle in order.
	var kinds []EventKind
	for _, ev := range cl.Events(0) {
		kinds = append(kinds, ev.Kind)
	}
	want := []EventKind{
		EvAttempt, EvFailure, // 1st failure
		EvAttempt, EvFailure, // 2nd
		EvAttempt, EvFailure, EvBreakerOpen, // 3rd opens
		EvBreakerReject,                                        // rejected while open
		EvBreakerHalfOpen, EvAttempt, EvFailure, EvBreakerOpen, // probe fails
		EvBreakerReject,                              // rejected again
		EvBreakerHalfOpen, EvAttempt, EvBreakerClose, // healing probe
		EvAttempt, // closed-state success
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("event kinds\n got %v\nwant %v", kinds, want)
	}
}

// Backoff delays are pure in (seed, shard, attempt), bounded by the cap,
// and at least half the exponential step.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	r := Resilience{BackoffBase: time.Millisecond, BackoffMax: 16 * time.Millisecond, Seed: 4}.normalize()
	for shard := 0; shard < 4; shard++ {
		for attempt := 0; attempt < 8; attempt++ {
			a := r.backoffDelay(shard, attempt)
			b := r.backoffDelay(shard, attempt)
			if a != b {
				t.Fatalf("shard %d attempt %d: %v != %v", shard, attempt, a, b)
			}
			if a > r.BackoffMax {
				t.Fatalf("shard %d attempt %d: %v exceeds cap", shard, attempt, a)
			}
			if a < r.BackoffBase/2 {
				t.Fatalf("shard %d attempt %d: %v below half the base", shard, attempt, a)
			}
		}
	}
	other := Resilience{BackoffBase: time.Millisecond, BackoffMax: 16 * time.Millisecond, Seed: 5}.normalize()
	same := 0
	for attempt := 0; attempt < 8; attempt++ {
		if r.backoffDelay(0, attempt) == other.backoffDelay(0, attempt) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

// RunBatch under a fault plan reports failed jobs and availability;
// a dead device fails everything, and the pristine path reports none.
func TestRunBatchFaultReporting(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	cfg := DefaultConfig()
	cl := mustCluster(t, cfg, c, 2)
	exprs := chaosExprs(c, 20)

	rep, err := cl.RunBatch(exprs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ni, r := range rep.PerNode {
		if r.Failed != 0 || r.Availability != 1 {
			t.Fatalf("pristine node %d: failed=%d avail=%v", ni, r.Failed, r.Availability)
		}
	}

	cfg.Faults = &mem.FaultPlan{Seed: 8, DeadDevices: []int{1}}
	rep, err = cl.RunBatch(exprs, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerNode[0].Failed != 0 {
		t.Fatalf("live node failed %d jobs", rep.PerNode[0].Failed)
	}
	dead := rep.PerNode[1]
	if dead.Jobs > 0 && (dead.Failed != dead.Jobs || dead.Availability != 0) {
		t.Fatalf("dead node: failed=%d/%d avail=%v", dead.Failed, dead.Jobs, dead.Availability)
	}
}
