package harness

import (
	"strings"
	"testing"

	"boss/internal/corpus"
	"boss/internal/mem"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	return Config{Scale: 0.008, PerType: 3, K: 30, Seed: 7}
}

func tinySetup(t testing.TB) *Setup {
	t.Helper()
	return NewSetup(corpus.CCNewsLike(0.008), tinyConfig())
}

func TestAvgIsCachedAndDeterministic(t *testing.T) {
	s := tinySetup(t)
	a := s.Avg(BOSS, corpus.Q3)
	b := s.Avg(BOSS, corpus.Q3)
	if a != b {
		t.Fatal("Avg should return the cached pointer")
	}
	s2 := NewSetup(corpus.CCNewsLike(0.008), tinyConfig())
	c := s2.Avg(BOSS, corpus.Q3)
	if a.SeqReadBytes != c.SeqReadBytes || a.ComputeTime != c.ComputeTime {
		t.Fatal("identical setups should yield identical metrics")
	}
}

func TestQPSOrderingHoldsOnUnions(t *testing.T) {
	// The central claim at 8 cores: BOSS > IIU > 0 and BOSS > Lucene on
	// union-heavy types.
	s := tinySetup(t)
	for _, qt := range []corpus.QueryType{corpus.Q3, corpus.Q5} {
		lucene := s.QPS(Lucene, qt, 8, "scm")
		boss := s.QPS(BOSS, qt, 8, "scm")
		if boss <= lucene {
			t.Fatalf("%s: BOSS (%f qps) should beat Lucene (%f qps) at 8 cores", qt, boss, lucene)
		}
	}
}

func TestIIUSaturatesBeforeBOSS(t *testing.T) {
	// IIU hits its bandwidth ceiling with fewer cores than BOSS (Fig 9).
	s := tinySetup(t)
	qt := corpus.Q3
	iiuGain := s.QPS(IIU, qt, 8, "scm") / s.QPS(IIU, qt, 1, "scm")
	bossGain := s.QPS(BOSS, qt, 8, "scm") / s.QPS(BOSS, qt, 1, "scm")
	if bossGain <= iiuGain {
		t.Fatalf("BOSS core scaling (%.2fx) should exceed IIU's (%.2fx)", bossGain, iiuGain)
	}
}

func TestSpeedupNormalization(t *testing.T) {
	s := tinySetup(t)
	if got := s.Speedup(Lucene, corpus.Q1, 8, "scm"); got < 0.99 || got > 1.01 {
		t.Fatalf("Lucene-8c speedup over itself = %v, want 1", got)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean(2,8) = %v", g)
	}
	if g := geomean([]float64{0, 4}); g != 4 {
		t.Fatalf("geomean skipping zero = %v", g)
	}
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"wide-cell", "1"}},
		Notes:  []string{"hello"},
	}
	out := tab.String()
	for _, want := range []string{"== x: demo ==", "long-header", "wide-cell", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	wantIDs := []string{"fig3", "table1", "table2", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "table3", "fig17", "headline",
		"ablation-et", "ablation-pipeline", "ablation-topk", "ablation-hybrid",
		"scaleout", "ablation-baseline"}
	if len(exps) != len(wantIDs) {
		t.Fatalf("%d experiments, want %d", len(exps), len(wantIDs))
	}
	for i, id := range wantIDs {
		if exps[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
		if _, ok := Find(id); !ok {
			t.Fatalf("Find(%s) failed", id)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find accepted unknown id")
	}
}

// TestAllExperimentsRun exercises every experiment end to end on a tiny
// workload, checking each produces non-empty well-formed tables.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is slow")
	}
	ctx := NewContext(tinyConfig())
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(ctx)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("table %s has no rows", tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Fatalf("table %s: row width %d != header width %d",
							tab.ID, len(row), len(tab.Header))
					}
				}
			}
		})
	}
}

func TestFig15BOSSHasNoInterTraffic(t *testing.T) {
	s := tinySetup(t)
	for _, qt := range []corpus.QueryType{corpus.Q4, corpus.Q6} {
		m := s.Avg(BOSS, qt)
		if m.CatAcc[mem.CatStoreInter] != 0 {
			t.Fatalf("%s: BOSS shows ST Inter accesses", qt)
		}
	}
}

func TestDeviceFor(t *testing.T) {
	if deviceFor(Lucene, "scm").Name != "host-scm" {
		t.Fatal("Lucene on SCM should use the host SCM config")
	}
	if deviceFor(Lucene, "dram").Name != "host-dram" {
		t.Fatal("Lucene on DRAM should use the host DRAM config")
	}
	if deviceFor(BOSS, "scm").Name != "scm" || deviceFor(IIU, "dram").Name != "dram" {
		t.Fatal("accelerators should use pool device configs")
	}
}
