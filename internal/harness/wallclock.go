package harness

import (
	"fmt"
	"runtime"
	"time"

	"boss/internal/cache"
	"boss/internal/core"
	"boss/internal/engine"
	"boss/internal/pool"
	"boss/internal/query"
)

// WallclockReport captures real host-side execution throughput, as opposed
// to the simulated-latency numbers every other experiment reports. The
// simulated figures tell us what the modeled hardware would do; these tell
// us how fast this repository actually evaluates queries on the machine it
// runs on, which is what the parallel execution layer optimizes. Future PRs
// compare -wallclock -json outputs to track the trajectory.
type WallclockReport struct {
	Schema     string `json:"schema"`
	PR         int    `json:"pr"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Corpus     string `json:"corpus"`
	Queries    int    `json:"queries"`
	K          int    `json:"k"`
	Shards     int    `json:"shards"`

	// Software engine (Lucene stand-in) over the monolithic index.
	EngineSerialQPS float64 `json:"engine_serial_qps"`
	EngineBatchQPS  float64 `json:"engine_batch_qps"`

	// Accelerator model over the monolithic index.
	AccelSerialQPS float64 `json:"accel_serial_qps"`
	AccelBatchQPS  float64 `json:"accel_batch_qps"`

	// Pooled-memory cluster: per-query shard fan-out (serial vs parallel)
	// and the pipelined query batch. The batch runs twice — once with the
	// cross-query decoded-block cache disabled and once with the default
	// budget — so the report tracks what cross-query block reuse buys.
	ClusterSerialQPS       float64 `json:"cluster_serial_qps"`
	ClusterParallelQPS     float64 `json:"cluster_parallel_qps"`
	ClusterBatchQPS        float64 `json:"cluster_batch_qps"`
	ClusterBatchNoCacheQPS float64 `json:"cluster_batch_nocache_qps"`

	// Cache snapshots the decoded-block cache counters after the cache-on
	// batch run: hit rate, bytes served from DRAM, decodes avoided.
	Cache cache.Stats `json:"cache"`
}

// wallclockMinDuration is how long each measured loop repeats; long enough
// to defeat timer noise, short enough for a CI smoke run.
const wallclockMinDuration = 200 * time.Millisecond

// measureQPS repeats f (which evaluates n queries) until the minimum
// duration elapses and reports queries per wall-clock second.
//
//boss:wallclock this report intentionally measures real host-side throughput.
func measureQPS(n int, f func()) float64 {
	start := time.Now()
	iters := 0
	for {
		f()
		iters++
		if time.Since(start) >= wallclockMinDuration {
			break
		}
	}
	return float64(n*iters) / time.Since(start).Seconds()
}

// Wallclock measures real query throughput of the software engine, the
// accelerator model, and the sharded cluster on the ClueWeb-like setup.
func Wallclock(ctx *Context, shards int) *WallclockReport {
	if shards <= 0 {
		shards = 4
	}
	s := ctx.ClueWeb()
	k := ctx.Cfg.K

	var exprs []string
	var nodes []*query.Node
	for _, qt := range sortedQueryTypes() {
		for _, q := range s.Workload[qt] {
			exprs = append(exprs, q.Expr)
			nodes = append(nodes, query.MustParse(q.Expr))
		}
	}

	rep := &WallclockReport{
		Schema:     BenchSchema,
		PR:         BenchPR,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Corpus:     s.Spec.Name,
		Queries:    len(exprs),
		K:          k,
		Shards:     shards,
	}

	eng := engine.New(s.Hybrid)
	rep.EngineSerialQPS = measureQPS(len(nodes), func() {
		for _, n := range nodes {
			if _, err := eng.Run(n, k); err != nil {
				panic(err)
			}
		}
	})
	rep.EngineBatchQPS = measureQPS(len(nodes), func() {
		if br := eng.RunBatch(nodes, k, 0); br.Err != nil {
			panic(br.Err)
		}
	})

	acc := core.New(s.Hybrid, core.DefaultOptions())
	rep.AccelSerialQPS = measureQPS(len(nodes), func() {
		for _, n := range nodes {
			if _, err := acc.Run(n, k); err != nil {
				panic(err)
			}
		}
	})
	rep.AccelBatchQPS = measureQPS(len(nodes), func() {
		if br := acc.RunBatch(nodes, k, 0); br.Err != nil {
			panic(br.Err)
		}
	})

	cl, err := pool.NewCluster(pool.DefaultConfig(), s.Corpus, shards)
	if err != nil {
		panic(err)
	}
	rep.ClusterSerialQPS = measureQPS(len(exprs), func() {
		for _, e := range exprs {
			if _, err := cl.SearchSerial(e, k); err != nil {
				panic(err)
			}
		}
	})
	rep.ClusterParallelQPS = measureQPS(len(exprs), func() {
		for _, e := range exprs {
			if _, err := cl.Search(e, k); err != nil {
				panic(err)
			}
		}
	})
	rep.ClusterBatchQPS = measureQPS(len(exprs), func() {
		if br := cl.SearchBatch(exprs, k); br.Err != nil {
			panic(br.Err)
		}
	})
	rep.Cache = cl.CacheStats()

	// Same batch with cross-query block reuse off: every query decodes its
	// own blocks, like the pre-cache serving path.
	cl.SetCacheBytes(0)
	rep.ClusterBatchNoCacheQPS = measureQPS(len(exprs), func() {
		if br := cl.SearchBatch(exprs, k); br.Err != nil {
			panic(br.Err)
		}
	})
	cl.SetCacheBytes(pool.DefaultCacheBytes)
	return rep
}

// Table renders the report in the harness's table format so -wallclock
// composes with the text output path too.
func (r *WallclockReport) Table() *Table {
	f0 := func(v float64) string { return fmt.Sprintf("%.0f", v) }
	return &Table{
		ID:    "wallclock",
		Title: fmt.Sprintf("Real QPS on %s (%d queries, k=%d, GOMAXPROCS=%d)", r.Corpus, r.Queries, r.K, r.GOMAXPROCS),
		Header: []string{
			"system", "serial-qps", "batch-qps",
		},
		Rows: [][]string{
			{"engine", f0(r.EngineSerialQPS), f0(r.EngineBatchQPS)},
			{"accelerator", f0(r.AccelSerialQPS), f0(r.AccelBatchQPS)},
			{fmt.Sprintf("cluster-%dnode", r.Shards), f0(r.ClusterSerialQPS), f0(r.ClusterBatchQPS)},
			{fmt.Sprintf("cluster-%dnode-fanout", r.Shards), f0(r.ClusterSerialQPS), f0(r.ClusterParallelQPS)},
			{fmt.Sprintf("cluster-%dnode-nocache", r.Shards), f0(r.ClusterSerialQPS), f0(r.ClusterBatchNoCacheQPS)},
		},
		Notes: []string{
			"wall-clock host throughput (not simulated device latency)",
			"cluster-fanout row: batch column is per-query parallel shard fan-out",
			"cluster-nocache row: batch with the decoded-block cache disabled",
			fmt.Sprintf("block cache: %.1f%% hit rate, %.1f MiB decoded bytes served, %d postings' decode avoided",
				100*r.Cache.HitRate(), float64(r.Cache.ServedBytes)/(1<<20), r.Cache.ServedPostings),
		},
	}
}
