package harness

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"boss/internal/cache"
	"boss/internal/core"
	"boss/internal/corpus"
	"boss/internal/docstore"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/pool"
)

// fetchZipfS is the skew of the re-fetch trace: head-heavy enough that a
// decoded-block cache pays (the serving claim under test), without being
// degenerate single-document traffic.
const fetchZipfS = 1.2

// fetchTraceLen is the sampled trace length. With 64-document blocks a
// few thousand Zipfian draws revisit the head blocks many times over.
const fetchTraceLen = 4096

// FetchReport is the -fetch benchmark: host-side decode throughput of
// the document fetch phase, cold (every fetch decodes its block) versus
// cached (repeats pin the already-decoded block), plus end-to-end
// search+fetch throughput on the sharded cluster. The Sim* fields are
// simulated-device charges and are deterministic in (corpus, seed):
// the replay invariant makes them identical with the cache on or off,
// so two runs of the same binary must report the same values.
type FetchReport struct {
	Schema     string `json:"schema"`
	PR         int    `json:"pr"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Corpus     string `json:"corpus"`
	NumDocs    int    `json:"num_docs"`
	Shards     int    `json:"shards"`
	Seed       int64  `json:"seed"`
	// ZipfS is the document-popularity exponent of the re-fetch trace.
	ZipfS float64 `json:"zipf_s"`
	// Trace is the number of fetches per measured pass.
	Trace int `json:"trace"`
	// ColdGBs is decoded payload throughput with no host cache: every
	// fetch CRC-checks and decompresses its block.
	ColdGBs float64 `json:"cold_gbs"`
	// CachedGBs is the same trace against a warm decoded-block cache:
	// block repeats serve zero-copy from the pinned cache entry.
	CachedGBs float64 `json:"cached_gbs"`
	// CacheSpeedup is CachedGBs / ColdGBs.
	CacheSpeedup float64 `json:"cache_speedup"`
	// DocHitRate and PostingHitRate split the shared cache's hit rates
	// by client class over the cached pass; doc traffic must not perturb
	// the posting class.
	DocHitRate     float64 `json:"doc_hit_rate"`
	PostingHitRate float64 `json:"posting_hit_rate"`
	// SimDocsFetched / SimDocBlocksFetched / SimLoadDocBytes are the
	// simulated charges of one trace pass (deterministic; cache-independent).
	SimDocsFetched      int64 `json:"sim_docs_fetched"`
	SimDocBlocksFetched int64 `json:"sim_doc_blocks_fetched"`
	SimLoadDocBytes     int64 `json:"sim_load_doc_bytes"`
	// Points is the end-to-end sweep: cluster QPS for search alone and
	// search+fetch at each top-k depth.
	Points  []FetchPoint `json:"points"`
	Created string       `json:"created,omitempty"`
}

// FetchPoint is one end-to-end operating point.
type FetchPoint struct {
	// K is the top-k depth (every hit's document is fetched).
	K int `json:"k"`
	// SearchQPS is batch search throughput without the fetch phase.
	SearchQPS float64 `json:"search_qps"`
	// SearchFetchQPS is the same batch with every hit's payload fetched.
	SearchFetchQPS float64 `json:"search_fetch_qps"`
	// FetchCostPct is the relative throughput cost of the fetch phase.
	FetchCostPct float64 `json:"fetch_cost_pct"`
}

// fetchKs are the sweep's top-k depths.
var fetchKs = []int{10, 100}

// buildFetchStore packs the synthetic corpus's documents the same way
// the cluster's lazy docstore synthesis does (global docID order).
func buildFetchStore(c *corpus.Corpus) *docstore.Store {
	b := docstore.NewBuilder("name", "text")
	var name, text []byte
	for id := uint32(0); int(id) < c.Spec.NumDocs; id++ {
		name = corpus.DocName(name[:0], id)
		text = corpus.DocText(c.Spec.Seed, id, c.DocLens[id], c.Spec.NumTerms, text[:0])
		if err := b.Add(name, text); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// fetchTrace samples a Zipfian document-id trace.
func fetchTrace(numDocs int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, fetchZipfS, 1, uint64(numDocs-1))
	ids := make([]uint32, fetchTraceLen)
	for i := range ids {
		ids[i] = uint32(z.Uint64())
	}
	return ids
}

// fetchPassGBs measures decoded-payload throughput of one engine over
// the trace, repeating passes until the wall-clock window is long enough
// to trust. It returns GB/s and the simulated charges of a single pass.
//
//boss:wallclock this report intentionally measures real host-side decode throughput.
func fetchPassGBs(eng *core.FetchEngine, ids []uint32) (float64, *perf.Metrics) {
	var buf core.DocBuf
	defer buf.Release()
	m := perf.NewMetrics()
	var bytes int64
	pass := func(m *perf.Metrics) {
		for _, id := range ids {
			if err := eng.FetchInto(context.Background(), id, m, &buf); err != nil {
				panic(err)
			}
			for _, f := range buf.Fields {
				bytes += int64(len(f))
			}
		}
	}
	pass(m) // warm pass also records the deterministic single-pass charges
	bytes = 0
	start := time.Now()
	for {
		pass(perf.NewMetrics())
		if time.Since(start) >= wallclockMinDuration {
			break
		}
	}
	elapsed := time.Since(start).Seconds()
	return float64(bytes) / elapsed / 1e9, m
}

// Fetch measures the document fetch phase: the host-side decode kernel
// cold versus cached, and the end-to-end cost of attaching the fetch
// phase to cluster search. Wall-clock reads live in fetchPassGBs and
// measureQPS; the simulated fields are deterministic.
func Fetch(ctx *Context, shards int) *FetchReport {
	if shards <= 0 {
		shards = 4
	}
	s := ctx.CCNews()
	c := s.Corpus
	ds := buildFetchStore(c)
	ids := fetchTrace(c.Spec.NumDocs, ctx.Cfg.Seed)

	rep := &FetchReport{
		Schema:     BenchSchema,
		PR:         BenchPR,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Corpus:     c.Spec.Name,
		NumDocs:    c.Spec.NumDocs,
		Shards:     shards,
		Seed:       ctx.Cfg.Seed,
		ZipfS:      fetchZipfS,
		Trace:      len(ids),
	}

	// Cold: no host cache, every fetch CRC-checks and decodes its block.
	cold, m := fetchPassGBs(core.NewFetchEngine(ds, nil), ids)
	rep.ColdGBs = cold
	rep.SimDocsFetched = m.DocsFetched
	rep.SimDocBlocksFetched = m.DocBlocksFetched
	rep.SimLoadDocBytes = m.Cat[mem.CatLoadDoc]

	// Cached: same trace against a cache big enough to hold the decoded
	// store; after the warm pass inside fetchPassGBs every block repeat
	// is a zero-copy pinned read. The replay invariant says the simulated
	// charges must match the cold pass exactly.
	ch := cache.New(int64(ds.NumDocs) * 4096)
	cachedEng := core.NewFetchEngine(ds, ch)
	cached, cm := fetchPassGBs(cachedEng, ids)
	rep.CachedGBs = cached
	if cold > 0 {
		rep.CacheSpeedup = cached / cold
	}
	if *m != *cm {
		panic(fmt.Sprintf("harness: fetch charges diverge with cache:\ncold:   %+v\ncached: %+v", m, cm))
	}
	st := ch.Stats()
	rep.DocHitRate = st.DocHitRate()
	rep.PostingHitRate = st.PostingHitRate()

	// End-to-end: cluster batch search with and without the fetch phase.
	cl, err := pool.NewCluster(pool.DefaultConfig(), c, shards)
	if err != nil {
		panic(err)
	}
	qs := corpus.SampleQueries(c, corpus.Q2, 32, ctx.Cfg.Seed)
	exprs := make([]string, len(qs))
	for i, q := range qs {
		exprs[i] = q.Expr
	}
	for _, k := range fetchKs {
		pt := FetchPoint{K: k}
		pt.SearchQPS = measureQPS(len(exprs), func() {
			if br := cl.SearchBatchCtx(context.Background(), exprs, k); br.Err != nil {
				panic(br.Err)
			}
		})
		pt.SearchFetchQPS = measureQPS(len(exprs), func() {
			if br := cl.SearchFetchBatch(context.Background(), exprs, k); br.Err != nil {
				panic(br.Err)
			}
		})
		if pt.SearchQPS > 0 {
			pt.FetchCostPct = 100 * (1 - pt.SearchFetchQPS/pt.SearchQPS)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep
}

// Table renders the report in the harness's table format so -fetch
// composes with the text output path too.
func (r *FetchReport) Table() *Table {
	rows := [][]string{
		{"decode-cold", "-", fmt.Sprintf("%.2f GB/s", r.ColdGBs), "-"},
		{"decode-cached", "-", fmt.Sprintf("%.2f GB/s", r.CachedGBs), fmt.Sprintf("%.1fx", r.CacheSpeedup)},
	}
	for _, p := range r.Points {
		rows = append(rows,
			[]string{"search", fmt.Sprintf("%d", p.K), f0(p.SearchQPS) + " qps", "-"},
			[]string{"search+fetch", fmt.Sprintf("%d", p.K), f0(p.SearchFetchQPS) + " qps", fmt.Sprintf("-%.1f%%", p.FetchCostPct)},
		)
	}
	return &Table{
		ID: "fetch",
		Title: fmt.Sprintf("Document fetch phase on %s (%d docs, %d shards, zipf %.1f, doc hit rate %.0f%%)",
			r.Corpus, r.NumDocs, r.Shards, r.ZipfS, 100*r.DocHitRate),
		Header: []string{"phase", "k", "throughput", "delta"},
		Rows:   rows,
		Notes: []string{
			"wall-clock host decode/search throughput (not simulated device latency)",
			"cold decodes every block; cached serves block repeats zero-copy from the decoded-block cache",
			"simulated charges are cache-independent (replay invariant) and deterministic in the seed",
		},
	}
}
