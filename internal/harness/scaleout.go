package harness

import (
	"fmt"

	"boss/internal/corpus"
	"boss/internal/engine"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/pool"
	"boss/internal/query"
)

// Scaleout regenerates the paper's Section III-A scale-out argument with
// the sharded cluster: the corpus is partitioned over an increasing number
// of memory nodes behind one shared link; with hardware top-k the per-query
// link traffic is shards × k × 8 B and the pool scales, while a host-side
// top-k design pushes every scored document across and the link throttles
// the pool almost immediately.
func Scaleout(ctx *Context) []*Table {
	s := ctx.ClueWeb()
	queries := s.Workload[corpus.Q5]
	k := ctx.Cfg.K

	t := &Table{
		ID:    "scaleout",
		Title: "Pool scale-out on Q5: aggregate throughput vs node count (shared link)",
		Header: []string{"nodes", "node QPS (min)", "link bytes/query",
			"system QPS (hw topk)", "system QPS (host topk)"},
	}
	for _, nodes := range []int{1, 2, 4, 8} {
		cl, err := pool.NewCluster(pool.DefaultConfig(), s.Corpus, nodes)
		if err != nil {
			panic(err)
		}
		perShard := make([]*perf.Metrics, cl.Shards())
		var linkBytes, hostTopkBytes float64
		n := 0
		for _, q := range queries {
			res, err := cl.Search(q.Expr, k)
			if err != nil {
				panic(err)
			}
			for si, m := range res.PerShard {
				if m == nil {
					continue
				}
				if perShard[si] == nil {
					perShard[si] = perf.NewMetrics()
				}
				perShard[si].Merge(m)
				hostTopkBytes += float64(m.DocsEvaluated * 8)
			}
			linkBytes += float64(res.LinkBytes)
			n++
		}
		// Every node processes every query; the slowest shard gates the
		// fan-out, and the shared link caps the pool.
		minNodeQPS := 0.0
		for _, m := range perShard {
			if m == nil {
				continue
			}
			m.Scale(int64(n))
			qps := m.Throughput(8, mem.SCM(), 0)
			if minNodeQPS == 0 || qps < minNodeQPS {
				minNodeQPS = qps
			}
		}
		linkPerQuery := linkBytes / float64(n)
		hostPerQuery := hostTopkBytes / float64(n)
		hwQPS := minFloat(minNodeQPS, mem.DefaultLinkGBs*1e9/linkPerQuery)
		swQPS := minFloat(minNodeQPS, mem.DefaultLinkGBs*1e9/hostPerQuery)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nodes),
			fmt.Sprintf("%.0f", minNodeQPS),
			fmt.Sprintf("%.0f", linkPerQuery),
			fmt.Sprintf("%.0f", hwQPS),
			fmt.Sprintf("%.0f", swQPS),
		})
	}
	t.Notes = append(t.Notes,
		"per-node throughput grows as shards shrink; hardware top-k keeps link traffic at shards x k x 8 B so the pool keeps scaling")
	return []*Table{t}
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// AblationBaseline hardens the software baseline with WAND (as modern
// Lucene releases do) and re-measures BOSS's union advantage: part of the
// paper's gap comes from Lucene's exhaustive scoring, the rest from the
// hardware itself.
func AblationBaseline(ctx *Context) []*Table {
	s := ctx.ClueWeb()
	t := &Table{
		ID:     "ablation-baseline",
		Title:  "Hardened baseline: 8-core throughput normalized to exhaustive Lucene",
		Header: []string{"query", "Lucene", "Lucene+WAND", "BOSS"},
	}
	for _, qt := range []corpus.QueryType{corpus.Q1, corpus.Q3, corpus.Q5} {
		base := s.QPS(Lucene, qt, 8, "scm")

		wandEng := engineWithWAND(s)
		sum := perf.NewMetrics()
		for _, q := range s.Workload[qt] {
			res, err := wandEng.Run(query.MustParse(q.Expr), s.Cfg.K)
			if err != nil {
				panic(err)
			}
			sum.Merge(res.M)
		}
		sum.Scale(int64(len(s.Workload[qt])))
		wandQPS := sum.Throughput(8, mem.HostSCM(), 0)

		t.Rows = append(t.Rows, []string{
			qt.String(),
			"1.00",
			f2(wandQPS / base),
			f2(s.QPS(BOSS, qt, 8, "scm") / base),
		})
	}
	t.Notes = append(t.Notes,
		"a WAND-enabled software baseline narrows the union gap; the residual factor is the hardware pipeline itself")
	return []*Table{t}
}

// engineWithWAND builds a WAND-enabled engine over the setup's index.
func engineWithWAND(s *Setup) *engine.Engine {
	e := engine.New(s.Hybrid)
	e.EnableWAND()
	return e
}
