package harness

import (
	"strings"
	"testing"
	"time"

	"boss/internal/corpus"
)

// TestOverloadExprsDeterministicAndSkewed verifies the sweep's traffic
// sampler: same seed gives the same schedule, and a head-heavier
// exponent concentrates more probability mass on the top terms (which is
// what makes the dedup-rate column meaningful).
func TestOverloadExprsDeterministicAndSkewed(t *testing.T) {
	c := corpus.Generate(corpus.ClueWebLike(0.01))
	a := overloadExprs(c, 500, 1.2, 42)
	b := overloadExprs(c, 500, 1.2, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("expr %d differs across runs with the same seed: %q vs %q", i, a[i], b[i])
		}
	}
	for _, e := range a {
		if !strings.Contains(e, " AND ") {
			t.Fatalf("sampled expr %q is not a conjunction", e)
		}
	}
	repeats := func(exprs []string) int {
		seen := map[string]bool{}
		n := 0
		for _, e := range exprs {
			if seen[e] {
				n++
			}
			seen[e] = true
		}
		return n
	}
	flat := repeats(overloadExprs(c, 500, 0.9, 42))
	head := repeats(a)
	if head <= flat {
		t.Fatalf("s=1.2 produced %d repeats, s=0.9 produced %d; higher skew must repeat more", head, flat)
	}
}

// TestOverloadReduce checks the fold from per-request slots to a point's
// rates and percentiles.
func TestOverloadReduce(t *testing.T) {
	slots := make([]overloadSlot, 10)
	for i := 0; i < 8; i++ {
		slots[i] = overloadSlot{lat: time.Duration(i+1) * time.Millisecond, done: true, good: true}
	}
	slots[7].degraded = true
	slots[8] = overloadSlot{shed: true}
	slots[9] = overloadSlot{lat: 50 * time.Millisecond, done: true} // late: counted, not goodput
	pt := overloadReduce(slots, 2, 1.2, 1000, time.Second)

	if pt.GoodputQPS != 8 {
		t.Fatalf("GoodputQPS = %v, want 8 (late completion must not count)", pt.GoodputQPS)
	}
	if pt.ShedRate != 0.1 {
		t.Fatalf("ShedRate = %v, want 0.1", pt.ShedRate)
	}
	if got, want := pt.DegradeRate, 1.0/9; got != want {
		t.Fatalf("DegradeRate = %v, want %v", got, want)
	}
	if pt.P50LatencyUS != 5000 {
		t.Fatalf("P50 = %vus, want 5000", pt.P50LatencyUS)
	}
	if pt.P999LatencyUS != 50000 {
		t.Fatalf("P99.9 = %vus, want the 50ms straggler", pt.P999LatencyUS)
	}
	if pt.Mult != 2 || pt.ZipfS != 1.2 || pt.OfferedQPS != 1000 || pt.Requests != 10 {
		t.Fatalf("point identity fields wrong: %+v", pt)
	}
}

// TestLatPercentileUS pins the percentile read on edge cases.
func TestLatPercentileUS(t *testing.T) {
	if got := latPercentileUS(nil, 0.99); got != 0 {
		t.Fatalf("empty slice: %v, want 0", got)
	}
	one := []time.Duration{3 * time.Microsecond}
	if got := latPercentileUS(one, 0.5); got != 3 {
		t.Fatalf("single element: %v, want 3", got)
	}
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Microsecond
	}
	if got := latPercentileUS(sorted, 0.99); got != 99 {
		t.Fatalf("p99 of 1..100us = %v, want 99", got)
	}
}

// TestOverloadReportSchema pins the versioned envelope every BENCH_*.json
// consumer keys on.
func TestOverloadReportSchema(t *testing.T) {
	if BenchSchema != "bossbench/v2" {
		t.Fatalf("BenchSchema = %q", BenchSchema)
	}
	if BenchPR < 7 {
		t.Fatalf("BenchPR = %d, want >= 7", BenchPR)
	}
}
