package harness

import (
	"bytes"
	"strings"
	"testing"

	"boss/internal/corpus"
)

// TestFetchTraceDeterministicAndSkewed: the re-fetch trace is a pure
// function of (numDocs, seed) and is genuinely head-heavy.
func TestFetchTraceDeterministicAndSkewed(t *testing.T) {
	a := fetchTrace(10000, 42)
	b := fetchTrace(10000, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if c := fetchTrace(10000, 43); bytesEqualU32(a, c) {
		t.Fatal("different seeds produced the same trace")
	}
	head := 0
	for _, id := range a {
		if id < 100 {
			head++
		}
	}
	if frac := float64(head) / float64(len(a)); frac < 0.5 {
		t.Fatalf("head fraction %.2f, want a head-heavy trace", frac)
	}
}

func bytesEqualU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBuildFetchStoreMatchesCorpus: the harness's store packs the same
// deterministic payloads the cluster synthesizes.
func TestBuildFetchStoreMatchesCorpus(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	ds := buildFetchStore(c)
	if ds.NumDocs != c.Spec.NumDocs {
		t.Fatalf("store holds %d docs, corpus %d", ds.NumDocs, c.Spec.NumDocs)
	}
	for _, id := range []uint32{0, uint32(c.Spec.NumDocs / 2), uint32(c.Spec.NumDocs - 1)} {
		bi := ds.BlockOf(id)
		raw := make([]byte, ds.Blocks[bi].RawLen)
		if err := ds.DecodeBlock(raw, ds.BlockPayload(bi)); err != nil {
			t.Fatal(err)
		}
		fields, err := ds.AppendDoc(nil, raw, int(id)-int(ds.Blocks[bi].FirstDoc))
		if err != nil {
			t.Fatal(err)
		}
		wantText := corpus.DocText(c.Spec.Seed, id, c.DocLens[id], c.Spec.NumTerms, nil)
		if !bytes.Equal(fields[1], wantText) {
			t.Fatalf("doc %d text mismatch", id)
		}
	}
}

// TestFetchReportTable: the text rendering carries the headline numbers.
func TestFetchReportTable(t *testing.T) {
	r := &FetchReport{
		Schema: BenchSchema, PR: BenchPR, Corpus: "ccnews",
		ColdGBs: 1, CachedGBs: 6, CacheSpeedup: 6, DocHitRate: 0.99,
		Points: []FetchPoint{{K: 10, SearchQPS: 100, SearchFetchQPS: 80, FetchCostPct: 20}},
	}
	s := r.Table().String()
	for _, want := range []string{"decode-cold", "decode-cached", "6.0x", "search+fetch", "-20.0%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}
