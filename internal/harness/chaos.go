package harness

import (
	"context"
	"fmt"
	"sort"
	"time"

	"boss/internal/corpus"
	"boss/internal/mem"
	"boss/internal/pool"
)

// ChaosPoint is one fault-rate operating point of the chaos sweep: the
// cluster serves the same Zipfian batch while the fault plan injects
// transient and uncorrectable media errors at the given per-access rate,
// and the point records how much of the workload survived and at what
// wall-clock cost.
type ChaosPoint struct {
	// FaultRate is the per-access probability applied to both transient
	// read errors (retried transparently by the device layer) and
	// uncorrectable media errors (non-retryable; these are what degrade
	// results).
	FaultRate float64 `json:"fault_rate"`
	// Replicas is how many copies of each shard served the point, and
	// DeadReplicas how many whole shard copies the fault plan killed
	// (replica-kill mode takes down copy 0 of every shard).
	Replicas     int `json:"replicas"`
	DeadReplicas int `json:"dead_replicas"`
	// Queries is how many query executions the point measured.
	Queries int `json:"queries"`
	// FullyOK counts executions whose every shard answered.
	FullyOK int `json:"fully_ok"`
	// Degraded counts executions that returned results with at least one
	// shard missing (ClusterResult.Degraded != 0).
	Degraded int `json:"degraded"`
	// Failed counts executions that returned no result at all.
	Failed int `json:"failed"`
	// Availability is the fraction of executions that returned a result,
	// degraded or not: (FullyOK + Degraded) / Queries.
	Availability float64 `json:"availability"`
	// TransientRetries counts device reads the accelerators retried
	// transparently (core-level, from the per-shard metrics).
	TransientRetries int64 `json:"transient_retries"`
	// ShardRetries counts pool-level shard re-attempts (backoff events),
	// and BreakerOpens counts circuit-breaker opens, both summed across
	// shard replicas from the resilience event logs.
	ShardRetries int `json:"shard_retries"`
	BreakerOpens int `json:"breaker_opens"`
	// Hedged counts shard attempts that fired a hedged backup replica
	// (always zero on single-copy sweeps, where hedging is off).
	Hedged int `json:"hedged"`
	// QPS is real host-side throughput over the measured executions.
	QPS float64 `json:"qps"`
	// P50LatencyUS / P99LatencyUS are per-query wall-clock latency
	// percentiles in microseconds.
	P50LatencyUS float64 `json:"p50_latency_us"`
	P99LatencyUS float64 `json:"p99_latency_us"`
}

// ChaosReport is the -chaos benchmark: availability and throughput of the
// resilient cluster serving path at increasing fault-injection rates. Rate
// zero is the control — it runs with a nil fault plan, i.e. the exact
// fault-free fast path every simulated figure uses. With Replicas > 1 the
// sweep serves from replicated shards (hedging armed); with ReplicaKill
// the fault plan additionally takes copy 0 of every shard down, so
// availability measures pure replica failover.
type ChaosReport struct {
	Schema      string       `json:"schema"`
	PR          int          `json:"pr"`
	Corpus      string       `json:"corpus"`
	Shards      int          `json:"shards"`
	Replicas    int          `json:"replicas"`
	ReplicaKill bool         `json:"replica_kill"`
	K           int          `json:"k"`
	Batch       int          `json:"batch"`
	Seed        int64        `json:"seed"`
	Points      []ChaosPoint `json:"points"`
	Created     string       `json:"created,omitempty"`
}

// chaosRates are the sweep's operating points: clean, 0.1%, 1%.
var chaosRates = []float64{0, 0.001, 0.01}

// chaosBatch is how many Zipfian queries each operating point serves per
// measurement pass.
const chaosBatch = 200

// chaosHedgeCutoff arms hedged requests on replicated sweeps: generous
// against simulated-device service times, so hedges fire only on real
// stragglers rather than doubling the whole workload.
const chaosHedgeCutoff = 2 * time.Millisecond

// chaosExprs samples the conjunctive Zipfian serving mix (Q2/Q4, the
// decode-bound shapes) cycled up to n queries.
func chaosExprs(c *corpus.Corpus, seed int64, n int) []string {
	types := []corpus.QueryType{corpus.Q2, corpus.Q4}
	per := (n + len(types) - 1) / len(types)
	exprs := make([]string, 0, n)
	for _, qt := range types {
		for _, q := range corpus.SampleZipfQueries(c, qt, per, 0, seed) {
			if len(exprs) == n {
				break
			}
			exprs = append(exprs, q.Expr)
		}
	}
	return exprs
}

// chaosConfig is the sweep's cluster configuration: cache off (faults are
// drawn on the decode path, so a warm decoded-block cache would absorb
// the fault plan after the first pass and every point would trivially
// report full availability), the requested replica count, and hedging
// armed on replicated sweeps.
func chaosConfig(replicas int) pool.Config {
	cfg := pool.DefaultConfig()
	cfg.CacheBytes = 0
	cfg.Replicas = replicas
	if replicas > 1 {
		// Replicated sweeps arm the full failover stack: retries (so a
		// failed attempt rotates onto another copy instead of degrading)
		// and hedged requests. Single-copy sweeps keep the historical
		// BENCH_pr5 configuration for comparability.
		cfg.Resilience = pool.DefaultResilience()
		cfg.Resilience.HedgeEnabled = true
		cfg.Resilience.HedgeCutoff = chaosHedgeCutoff
	}
	return cfg
}

// chaosPoint measures one fault rate on a fresh serving state derived
// from the base cluster (so breaker state and the decoded-block cache
// never leak across points, while the expensive shard corpora and index
// builds are shared), the rate's fault plan, and repeated serial passes
// over the batch until the minimum duration elapses.
//
//boss:wallclock this report intentionally measures real host-side latency.
func chaosPoint(base *pool.Cluster, seed int64, exprs []string, k int, rate float64, replicaKill bool) ChaosPoint {
	cl, err := base.Fresh(chaosConfig(base.Replicas()))
	if err != nil {
		panic(err)
	}
	pt := ChaosPoint{FaultRate: rate, Replicas: cl.Replicas()}
	if rate > 0 || replicaKill {
		plan := &mem.FaultPlan{Seed: seed}
		if rate > 0 {
			plan.TransientRate = rate
			plan.UncorrectableRate = rate
		}
		if replicaKill {
			// Whole-replica kill: copy 0 of every shard never answers, so
			// every query must fail over to a surviving copy.
			for si := 0; si < cl.Shards(); si++ {
				plan.DeadDevices = append(plan.DeadDevices, cl.ReplicaDevice(si, 0))
			}
			pt.DeadReplicas = cl.Shards()
		}
		cl.SetFaultPlan(plan)
	}

	var lat []time.Duration
	start := time.Now()
	for {
		for _, expr := range exprs {
			q0 := time.Now()
			res, err := cl.SearchCtx(context.Background(), expr, k)
			lat = append(lat, time.Since(q0))
			pt.Queries++
			switch {
			case err != nil:
				pt.Failed++
			case res.Degraded != 0:
				pt.Degraded++
			default:
				pt.FullyOK++
			}
			if err == nil {
				pt.Hedged += res.Hedged
				for _, m := range res.PerShard {
					if m != nil {
						pt.TransientRetries += m.TransientRetries
					}
				}
			}
		}
		if time.Since(start) >= wallclockMinDuration {
			break
		}
	}
	elapsed := time.Since(start)

	pt.Availability = float64(pt.FullyOK+pt.Degraded) / float64(pt.Queries)
	pt.QPS = float64(pt.Queries) / elapsed.Seconds()
	for si := 0; si < cl.Shards(); si++ {
		for _, ev := range cl.Events(si) {
			switch ev.Kind {
			case pool.EvBackoff:
				pt.ShardRetries++
			case pool.EvBreakerOpen:
				pt.BreakerOpens++
			}
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pt.P50LatencyUS = float64(lat[percentileIdx(len(lat), 50)]) / float64(time.Microsecond)
	pt.P99LatencyUS = float64(lat[percentileIdx(len(lat), 99)]) / float64(time.Microsecond)
	return pt
}

// percentileIdx maps a percentile to a sorted-slice index (nearest-rank).
func percentileIdx(n, pct int) int {
	i := n*pct/100 - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Chaos sweeps the resilient serving path across fault-injection rates and
// reports availability, retry/breaker activity, and wall-clock throughput
// at each point. Rate zero serves as the control: it must report full
// availability and zero resilience events. replicas > 1 serves every
// point from replicated shards with hedging armed; replicaKill
// additionally takes copy 0 of every shard down at every point (requires
// replicas >= 2 — with one copy a whole-replica kill is just an outage).
// The shard corpora and index builds are constructed once and shared
// across points; only serving state (cache, breakers, fault plan) is
// rebuilt per point.
func Chaos(ctx *Context, shards, replicas int, replicaKill bool) *ChaosReport {
	if shards <= 0 {
		shards = 4
	}
	if replicas <= 0 {
		replicas = 1
	}
	if replicaKill && replicas < 2 {
		panic("harness: -replicakill requires at least 2 replicas")
	}
	s := ctx.ClueWeb()
	k := ctx.Cfg.K
	seed := ctx.Cfg.Seed
	exprs := chaosExprs(s.Corpus, seed, chaosBatch)

	base, err := pool.NewCluster(chaosConfig(replicas), s.Corpus, shards)
	if err != nil {
		panic(err)
	}

	rep := &ChaosReport{
		Schema:      BenchSchema,
		PR:          BenchPR,
		Corpus:      s.Spec.Name,
		Shards:      shards,
		Replicas:    replicas,
		ReplicaKill: replicaKill,
		K:           k,
		Batch:       len(exprs),
		Seed:        seed,
	}
	for _, rate := range chaosRates {
		rep.Points = append(rep.Points, chaosPoint(base, seed, exprs, k, rate, replicaKill))
	}
	return rep
}

// Table renders the report in the harness table format so -chaos composes
// with the text output path too.
func (r *ChaosReport) Table() *Table {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f%%", 100*p.FaultRate),
			fmt.Sprintf("%d", p.Replicas),
			fmt.Sprintf("%d", p.DeadReplicas),
			fmt.Sprintf("%d", p.Queries),
			fmt.Sprintf("%d", p.FullyOK),
			fmt.Sprintf("%d", p.Degraded),
			fmt.Sprintf("%d", p.Failed),
			fmt.Sprintf("%.4f", p.Availability),
			fmt.Sprintf("%d", p.TransientRetries),
			fmt.Sprintf("%d", p.ShardRetries),
			fmt.Sprintf("%d", p.BreakerOpens),
			fmt.Sprintf("%d", p.Hedged),
			fmt.Sprintf("%.0f", p.QPS),
			fmt.Sprintf("%.0f", p.P99LatencyUS),
		})
	}
	return &Table{
		ID:    "chaos",
		Title: fmt.Sprintf("Availability under fault injection on %s (%d shards x %d replicas, %d-query batch, k=%d)", r.Corpus, r.Shards, r.Replicas, r.Batch, r.K),
		Header: []string{
			"fault-rate", "replicas", "dead", "queries", "ok", "degraded", "failed",
			"availability", "dev-retries", "shard-retries", "breaker-opens",
			"hedged", "qps", "p99-us",
		},
		Rows: rows,
		Notes: []string{
			"fault-rate is the per-access probability of both transient and uncorrectable errors",
			"availability counts degraded (partial) results as available",
			"dead is whole shard copies killed by the plan (replica-kill mode: copy 0 of every shard)",
			"wall-clock host throughput/latency (not simulated device latency)",
		},
	}
}
