package harness

import (
	"context"
	"fmt"
	"sort"
	"time"

	"boss/internal/corpus"
	"boss/internal/mem"
	"boss/internal/pool"
)

// ChaosPoint is one fault-rate operating point of the chaos sweep: the
// cluster serves the same Zipfian batch while the fault plan injects
// transient and uncorrectable media errors at the given per-access rate,
// and the point records how much of the workload survived and at what
// wall-clock cost.
type ChaosPoint struct {
	// FaultRate is the per-access probability applied to both transient
	// read errors (retried transparently by the device layer) and
	// uncorrectable media errors (non-retryable; these are what degrade
	// results).
	FaultRate float64 `json:"fault_rate"`
	// Queries is how many query executions the point measured.
	Queries int `json:"queries"`
	// FullyOK counts executions whose every shard answered.
	FullyOK int `json:"fully_ok"`
	// Degraded counts executions that returned results with at least one
	// shard missing (ClusterResult.Degraded != 0).
	Degraded int `json:"degraded"`
	// Failed counts executions that returned no result at all.
	Failed int `json:"failed"`
	// Availability is the fraction of executions that returned a result,
	// degraded or not: (FullyOK + Degraded) / Queries.
	Availability float64 `json:"availability"`
	// TransientRetries counts device reads the accelerators retried
	// transparently (core-level, from the per-shard metrics).
	TransientRetries int64 `json:"transient_retries"`
	// ShardRetries counts pool-level shard re-attempts (backoff events),
	// and BreakerOpens counts circuit-breaker opens, both summed across
	// shards from the resilience event logs.
	ShardRetries int `json:"shard_retries"`
	BreakerOpens int `json:"breaker_opens"`
	// QPS is real host-side throughput over the measured executions.
	QPS float64 `json:"qps"`
	// P50LatencyUS / P99LatencyUS are per-query wall-clock latency
	// percentiles in microseconds.
	P50LatencyUS float64 `json:"p50_latency_us"`
	P99LatencyUS float64 `json:"p99_latency_us"`
}

// ChaosReport is the -chaos benchmark: availability and throughput of the
// resilient cluster serving path at increasing fault-injection rates. Rate
// zero is the control — it runs with a nil fault plan, i.e. the exact
// fault-free fast path every simulated figure uses.
type ChaosReport struct {
	Schema  string       `json:"schema"`
	PR      int          `json:"pr"`
	Corpus  string       `json:"corpus"`
	Shards  int          `json:"shards"`
	K       int          `json:"k"`
	Batch   int          `json:"batch"`
	Seed    int64        `json:"seed"`
	Points  []ChaosPoint `json:"points"`
	Created string       `json:"created,omitempty"`
}

// chaosRates are the sweep's operating points: clean, 0.1%, 1%.
var chaosRates = []float64{0, 0.001, 0.01}

// chaosBatch is how many Zipfian queries each operating point serves per
// measurement pass.
const chaosBatch = 200

// chaosExprs samples the conjunctive Zipfian serving mix (Q2/Q4, the
// decode-bound shapes) cycled up to n queries.
func chaosExprs(c *corpus.Corpus, seed int64, n int) []string {
	types := []corpus.QueryType{corpus.Q2, corpus.Q4}
	per := (n + len(types) - 1) / len(types)
	exprs := make([]string, 0, n)
	for _, qt := range types {
		for _, q := range corpus.SampleZipfQueries(c, qt, per, 0, seed) {
			if len(exprs) == n {
				break
			}
			exprs = append(exprs, q.Expr)
		}
	}
	return exprs
}

// chaosPoint measures one fault rate: a fresh cluster (so breaker state
// and the decoded-block cache never leak across points), the rate's fault
// plan, and repeated serial passes over the batch until the minimum
// duration elapses.
//
//boss:wallclock this report intentionally measures real host-side latency.
func chaosPoint(ctx *Context, shards int, seed int64, exprs []string, k int, rate float64) ChaosPoint {
	s := ctx.ClueWeb()
	cfg := pool.DefaultConfig()
	// Cache off: faults are drawn on the decode path, so a warm decoded-block
	// cache would absorb the fault plan after the first pass and every point
	// would trivially report full availability.
	cfg.CacheBytes = 0
	cl, err := pool.NewCluster(cfg, s.Corpus, shards)
	if err != nil {
		panic(err)
	}
	if rate > 0 {
		cl.SetFaultPlan(&mem.FaultPlan{
			Seed:              seed,
			TransientRate:     rate,
			UncorrectableRate: rate,
		})
	}

	pt := ChaosPoint{FaultRate: rate}
	var lat []time.Duration
	start := time.Now()
	for {
		for _, expr := range exprs {
			q0 := time.Now()
			res, err := cl.SearchCtx(context.Background(), expr, k)
			lat = append(lat, time.Since(q0))
			pt.Queries++
			switch {
			case err != nil:
				pt.Failed++
			case res.Degraded != 0:
				pt.Degraded++
			default:
				pt.FullyOK++
			}
			if err == nil {
				for _, m := range res.PerShard {
					if m != nil {
						pt.TransientRetries += m.TransientRetries
					}
				}
			}
		}
		if time.Since(start) >= wallclockMinDuration {
			break
		}
	}
	elapsed := time.Since(start)

	pt.Availability = float64(pt.FullyOK+pt.Degraded) / float64(pt.Queries)
	pt.QPS = float64(pt.Queries) / elapsed.Seconds()
	for si := 0; si < shards; si++ {
		for _, ev := range cl.Events(si) {
			switch ev.Kind {
			case pool.EvBackoff:
				pt.ShardRetries++
			case pool.EvBreakerOpen:
				pt.BreakerOpens++
			}
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pt.P50LatencyUS = float64(lat[percentileIdx(len(lat), 50)]) / float64(time.Microsecond)
	pt.P99LatencyUS = float64(lat[percentileIdx(len(lat), 99)]) / float64(time.Microsecond)
	return pt
}

// percentileIdx maps a percentile to a sorted-slice index (nearest-rank).
func percentileIdx(n, pct int) int {
	i := n*pct/100 - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Chaos sweeps the resilient serving path across fault-injection rates and
// reports availability, retry/breaker activity, and wall-clock throughput
// at each point. Rate zero serves as the control: it must report full
// availability and zero resilience events.
func Chaos(ctx *Context, shards int) *ChaosReport {
	if shards <= 0 {
		shards = 4
	}
	s := ctx.ClueWeb()
	k := ctx.Cfg.K
	seed := ctx.Cfg.Seed
	exprs := chaosExprs(s.Corpus, seed, chaosBatch)

	rep := &ChaosReport{
		Schema: BenchSchema,
		PR:     BenchPR,
		Corpus: s.Spec.Name,
		Shards: shards,
		K:      k,
		Batch:  len(exprs),
		Seed:   seed,
	}
	for _, rate := range chaosRates {
		rep.Points = append(rep.Points, chaosPoint(ctx, shards, seed, exprs, k, rate))
	}
	return rep
}

// Table renders the report in the harness table format so -chaos composes
// with the text output path too.
func (r *ChaosReport) Table() *Table {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f%%", 100*p.FaultRate),
			fmt.Sprintf("%d", p.Queries),
			fmt.Sprintf("%d", p.FullyOK),
			fmt.Sprintf("%d", p.Degraded),
			fmt.Sprintf("%d", p.Failed),
			fmt.Sprintf("%.4f", p.Availability),
			fmt.Sprintf("%d", p.TransientRetries),
			fmt.Sprintf("%d", p.ShardRetries),
			fmt.Sprintf("%d", p.BreakerOpens),
			fmt.Sprintf("%.0f", p.QPS),
			fmt.Sprintf("%.0f", p.P99LatencyUS),
		})
	}
	return &Table{
		ID:    "chaos",
		Title: fmt.Sprintf("Availability under fault injection on %s (%d shards, %d-query batch, k=%d)", r.Corpus, r.Shards, r.Batch, r.K),
		Header: []string{
			"fault-rate", "queries", "ok", "degraded", "failed",
			"availability", "dev-retries", "shard-retries", "breaker-opens",
			"qps", "p99-us",
		},
		Rows: rows,
		Notes: []string{
			"fault-rate is the per-access probability of both transient and uncorrectable errors",
			"availability counts degraded (partial) results as available",
			"wall-clock host throughput/latency (not simulated device latency)",
		},
	}
}
