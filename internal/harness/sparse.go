package harness

import (
	"fmt"
	"runtime"

	"boss/internal/compress"
	"boss/internal/core"
	"boss/internal/corpus"
	"boss/internal/index"
	"boss/internal/topk"
)

// sparseZipfS is the term-popularity exponent of the sparse trace: queries
// hit terms with the corpus's own Zipf frequency, which is what makes the
// MaxScore skip opportunity representative rather than adversarial.
const sparseZipfS = 1.07

// sparseK is the sparse trace's top-k depth. The paper-family figures run
// deep heaps; sparse-dot serving is a k=10 workload (first results page),
// and shallow heaps are exactly where MaxScore's threshold bites.
const sparseK = 10

// SparseReport is the -sparse benchmark: the Q7 impact-ordered family on
// an impact-quantized index, MaxScore-pruned versus exhaustive. The
// posting counts are simulated charges and deterministic in (corpus,
// seed); the QPS fields are wall-clock.
type SparseReport struct {
	Schema     string  `json:"schema"`
	PR         int     `json:"pr"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Corpus     string  `json:"corpus"`
	NumDocs    int     `json:"num_docs"`
	Queries    int     `json:"queries"`
	K          int     `json:"k"`
	Seed       int64   `json:"seed"`
	ZipfS      float64 `json:"zipf_s"`
	// ExhaustivePostings / PrunedPostings are total postings evaluated
	// (decoded from fetched blocks) across the trace without and with
	// MaxScore pruning.
	ExhaustivePostings int64 `json:"exhaustive_postings"`
	PrunedPostings     int64 `json:"pruned_postings"`
	// ReductionPct is the pruned saving: 100*(1 - pruned/exhaustive).
	ReductionPct float64 `json:"reduction_pct"`
	// BlocksSkipped counts blocks the pruned run passed over on per-block
	// max-impact alone, never fetching them.
	BlocksSkipped int64 `json:"blocks_skipped"`
	// ByteIdentical reports whether every pruned top-k matched its
	// exhaustive twin exactly (docIDs and scores).
	ByteIdentical bool `json:"byte_identical"`
	// SparseQPS is wall-clock Q7 throughput with pruning on.
	SparseQPS float64 `json:"sparse_qps"`
	// ConjunctiveQPS is the Q4 (4-term AND) baseline on the same index,
	// for scale: how the new family's cost compares to the boolean one.
	ConjunctiveQPS float64 `json:"conjunctive_qps"`
	Created        string  `json:"created,omitempty"`
}

// sameTopK reports exact equality of two result lists.
func sameTopK(a, b []topk.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Sparse measures the Q7 sparse-dot family: a seeded Zipfian trace at
// k=10 run exhaustively and MaxScore-pruned on an impact-quantized index.
// The pruned pass must return byte-identical top-k lists while evaluating
// fewer postings; both counts are deterministic in (corpus, seed).
func Sparse(ctx *Context) *SparseReport {
	spec := corpus.ClueWebLike(ctx.Cfg.Scale)
	c := corpus.Generate(spec)
	// The figure Setup's indexes stay impact-free (their serialized bytes
	// are pinned by the archived figures); the sparse bench builds its
	// own hybrid index with quantized impacts in the posting payloads.
	idx := index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid, Impacts: true})

	n := 16 * ctx.Cfg.PerType
	qs := corpus.SampleZipfQueries(c, corpus.Q7, n, sparseZipfS, ctx.Cfg.Seed)

	rep := &SparseReport{
		Schema:     BenchSchema,
		PR:         BenchPR,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Corpus:     spec.Name,
		NumDocs:    spec.NumDocs,
		Queries:    len(qs),
		K:          sparseK,
		Seed:       ctx.Cfg.Seed,
		ZipfS:      sparseZipfS,
	}

	pruned := core.New(idx, core.DefaultOptions())
	exh := core.New(idx, core.ExhaustiveOptions())
	rep.ByteIdentical = true
	for _, q := range qs {
		po, err := pruned.RunSparse(q.Terms, sparseK)
		if err != nil {
			panic(err)
		}
		eo, err := exh.RunSparse(q.Terms, sparseK)
		if err != nil {
			panic(err)
		}
		rep.PrunedPostings += po.M.PostingsDecoded
		rep.ExhaustivePostings += eo.M.PostingsDecoded
		rep.BlocksSkipped += po.M.BlocksSkipped
		if !sameTopK(po.TopK, eo.TopK) {
			rep.ByteIdentical = false
		}
	}
	if rep.ExhaustivePostings > 0 {
		rep.ReductionPct = 100 * (1 - float64(rep.PrunedPostings)/float64(rep.ExhaustivePostings))
	}

	// Wall-clock throughput of the pruned sparse family, with the Q4
	// conjunctive family on the same impact-carrying index for scale.
	rep.SparseQPS = measureQPS(len(qs), func() {
		for _, q := range qs {
			if _, err := pruned.RunSparse(q.Terms, sparseK); err != nil {
				panic(err)
			}
		}
	})
	conj := corpus.SampleZipfQueries(c, corpus.Q4, n, sparseZipfS, ctx.Cfg.Seed)
	dnfs := make([][][]string, len(conj))
	for i, q := range conj {
		dnfs[i] = [][]string{q.Terms}
	}
	rep.ConjunctiveQPS = measureQPS(len(conj), func() {
		for _, d := range dnfs {
			if _, err := pruned.RunDNF(d, sparseK); err != nil {
				panic(err)
			}
		}
	})
	return rep
}

// Table renders the report in the harness's table format so -sparse
// composes with the text output path too.
func (r *SparseReport) Table() *Table {
	ident := "IDENTICAL"
	if !r.ByteIdentical {
		ident = "DIVERGED"
	}
	return &Table{
		ID: "sparse",
		Title: fmt.Sprintf("Sparse-dot (Q7) MaxScore pruning on %s (%d docs, %d queries, k=%d, zipf %.2f)",
			r.Corpus, r.NumDocs, r.Queries, r.K, r.ZipfS),
		Header: []string{"metric", "exhaustive", "pruned", "delta"},
		Rows: [][]string{
			{"postings evaluated", fmt.Sprintf("%d", r.ExhaustivePostings), fmt.Sprintf("%d", r.PrunedPostings),
				fmt.Sprintf("-%.1f%%", r.ReductionPct)},
			{"blocks skipped unfetched", "0", fmt.Sprintf("%d", r.BlocksSkipped), "-"},
			{"top-k vs exhaustive", "-", ident, "-"},
			{"Q7 QPS (pruned)", "-", f0(r.SparseQPS), "-"},
			{"Q4 AND QPS (baseline)", "-", f0(r.ConjunctiveQPS), "-"},
		},
		Notes: []string{
			"posting counts are simulated charges, deterministic in (corpus, seed)",
			"pruned top-k must be byte-identical: strict-< pruning never drops a threshold tie",
			"QPS rows are wall-clock host throughput (single accelerator, serial)",
		},
	}
}
