package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"boss/internal/corpus"
	"boss/internal/front"
	"boss/internal/pool"
)

// Report schema versioning for the machine-readable bossbench outputs.
// Schema names the envelope (bumped only when field meaning changes);
// BenchPR is the PR that produced the binary, so archived BENCH_*.json
// files are self-describing when diffed across the stacked sequence.
const (
	// v2 adds the -fetch report (document fetch phase) alongside the
	// overload and chaos envelopes, and later the -sparse report (Q7
	// impact-ordered retrieval) and the chaos envelope's replica fields
	// (replicas/replica_kill, per-point dead_replicas/hedged); existing
	// fields are unchanged.
	BenchSchema = "bossbench/v2"
	BenchPR     = 10
)

// overloadDeadline is each request's latency budget: a completion after
// it does not count toward goodput. It is also the front door's default
// deadline, so batch formation and the goodput criterion agree.
const overloadDeadline = 20 * time.Millisecond

// overloadMults are the offered-load operating points as multiples of the
// measured backend capacity; overloadBaselineMults are where the no-front
// baseline runs (enough to bracket the saturation knee without paying for
// a full second sweep).
var (
	overloadMults         = []float64{0.5, 1, 2, 4}
	overloadBaselineMults = []float64{1, 2}
)

// overloadSkews are the Zipf exponents of the sampled serving mixes: 0.9
// is a flat-ish tail (few repeats, dedup rarely fires), 1.2 is head-heavy
// traffic where coalescing identical in-flight queries pays.
var overloadSkews = []float64{0.9, 1.2}

// OverloadPoint is one operating point of the overload sweep.
type OverloadPoint struct {
	// Mult is offered load as a multiple of the measured capacity.
	Mult float64 `json:"mult"`
	// ZipfS is the term-popularity exponent of the sampled traffic.
	ZipfS float64 `json:"zipf_s"`
	// CapacityQPS is the backend's batch throughput over this skew's
	// traffic (head-heavy mixes hit longer posting lists and are
	// costlier, so capacity is per-skew).
	CapacityQPS float64 `json:"capacity_qps"`
	// Requests is how many requests the point offered.
	Requests int `json:"requests"`
	// OfferedQPS is the open-loop arrival rate.
	OfferedQPS float64 `json:"offered_qps"`
	// GoodputQPS counts only requests answered within the deadline.
	GoodputQPS float64 `json:"goodput_qps"`
	// ShedRate is the fraction refused at admission (rate-limit sheds
	// plus queue-full rejections). Zero for the no-front baseline, which
	// admits everything and lets latency blow up instead.
	ShedRate float64 `json:"shed_rate"`
	// DedupRate is the fraction of submissions answered by coalescing
	// onto an identical in-flight query.
	DedupRate float64 `json:"dedup_rate"`
	// DegradeRate is the fraction of completions that returned
	// partial-shard answers.
	DegradeRate float64 `json:"degrade_rate"`
	// P50/P99/P999LatencyUS are arrival-to-delivery percentiles in
	// microseconds over admitted completions — the latency the traffic
	// that was promised an answer actually saw.
	P50LatencyUS  float64 `json:"p50_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
	P999LatencyUS float64 `json:"p999_latency_us"`
}

// OverloadReport is the -overload benchmark: goodput and tail latency of
// the front-door serving tier under offered loads from half to four times
// the backend's measured capacity, against a no-front baseline that
// spawns one unbounded handler per arrival. The claim under test is the
// front door's: admitted traffic keeps a flat tail because excess load is
// shed or degraded at admission instead of queueing in the backend.
type OverloadReport struct {
	Schema     string  `json:"schema"`
	PR         int     `json:"pr"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Corpus     string  `json:"corpus"`
	Shards     int     `json:"shards"`
	K          int     `json:"k"`
	Seed       int64   `json:"seed"`
	DeadlineMS float64 `json:"deadline_ms"`
	// CapacityQPS is the backend's measured batch throughput over the
	// head-heavy serving mix (each point also records its own per-skew
	// capacity, which is what its multiplier is relative to).
	CapacityQPS float64 `json:"capacity_qps"`
	// Points is the front-door sweep; Baseline is the no-front control.
	Points   []OverloadPoint `json:"points"`
	Baseline []OverloadPoint `json:"baseline"`
	Created  string          `json:"created,omitempty"`
}

// overloadVocab bounds the sampled term universe so the popularity head
// is dense enough for coalescing to be representative.
const overloadVocab = 2048

// overloadExprs samples n two-term conjunctions whose term ranks follow
// P(rank) ~ rank^-s over the corpus's most frequent terms. The corpus
// package's own Zipf sampler clamps exponents to >1 (rand.NewZipf's
// domain), so the sweep's s=0.9 flat-tail point uses this inverse-CDF
// sampler instead.
func overloadExprs(c *corpus.Corpus, n int, s float64, seed int64) []string {
	vocab := len(c.Terms)
	if vocab > overloadVocab {
		vocab = overloadVocab
	}
	cum := make([]float64, vocab)
	total := 0.0
	for i := 0; i < vocab; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	rng := rand.New(rand.NewSource(seed ^ int64(math.Float64bits(s))))
	draw := func() int {
		i := sort.SearchFloat64s(cum, rng.Float64()*total)
		if i >= vocab {
			i = vocab - 1
		}
		return i
	}
	exprs := make([]string, n)
	for i := range exprs {
		a := draw()
		b := draw()
		for b == a {
			b = draw()
		}
		exprs[i] = `"` + c.Terms[a].Term + `" AND "` + c.Terms[b].Term + `"`
	}
	return exprs
}

// overloadRequests sizes a point's request count to roughly a 500 ms
// measurement window at the offered rate — long enough that one
// scheduler hiccup cannot dominate a point's tail — clamped to keep
// both the slowest and the fastest points within a CI smoke budget.
func overloadRequests(offered float64) int {
	n := int(offered * 0.5)
	if n < 200 {
		n = 200
	}
	if n > 24000 {
		n = 24000
	}
	return n
}

// overloadSlot records one request's fate; each goroutine writes only its
// own slot, so the WaitGroup is the only synchronization needed.
type overloadSlot struct {
	lat      time.Duration
	done     bool // delivered without error
	good     bool // delivered without error, within the deadline
	degraded bool
	shed     bool
}

// overloadFrontConfig is the serving configuration under test. The queue
// bound and watermark are sized against the deadline: at capacity the
// backend drains roughly ten requests per millisecond, so degradation
// must start well before a full queue's worth of backlog (~10 ms) eats
// the whole latency budget.
func overloadFrontConfig() front.Config {
	return front.Config{
		BatchTarget:      16,
		MaxQueue:         128,
		Timeout:          overloadDeadline,
		FlushSlack:       2 * time.Millisecond,
		DegradeWatermark: 0.5,
	}
}

// overloadPoint drives one open-loop operating point through a fresh
// front door: arrivals are paced on the intended schedule regardless of
// completions (latency is measured from the scheduled arrival, so
// coordinated omission cannot flatter the tail).
//
//boss:wallclock this report intentionally measures real host-side latency.
func overloadPoint(cl *pool.Cluster, exprs []string, k int, mult, s, capacity float64) OverloadPoint {
	fr, err := front.New(overloadFrontConfig(), front.NewClusterBackend(cl))
	if err != nil {
		panic(err)
	}
	defer fr.Close()

	// Warm the front's ticket/flight free lists and the executor before
	// the measured window, then settle the heap so garbage inherited
	// from the previous point cannot poison this one's tail.
	warm := exprs
	if len(warm) > 32 {
		warm = warm[:32]
	}
	var wwg sync.WaitGroup
	for _, e := range warm {
		tk, err := fr.Submit(front.Request{Expr: e, K: k})
		if err != nil {
			continue
		}
		wwg.Add(1)
		go func(tk *front.Ticket) {
			defer wwg.Done()
			tk.Wait(nil)
		}(tk)
	}
	fr.Flush()
	wwg.Wait()
	runtime.GC()
	m0 := fr.Metrics()

	offered := capacity * mult
	interval := time.Duration(float64(time.Second) / offered)
	n := len(exprs)
	slots := make([]overloadSlot, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		arrival := start.Add(time.Duration(i) * interval)
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		tk, err := fr.Submit(front.Request{Expr: exprs[i], K: k, Deadline: arrival.Add(overloadDeadline)})
		if err != nil {
			slots[i].shed = true
			continue
		}
		wg.Add(1)
		go func(sl *overloadSlot, arrival time.Time, tk *front.Ticket) {
			defer wg.Done()
			res := tk.Wait(nil)
			sl.lat = time.Since(arrival)
			sl.done = res.Err == nil
			sl.good = sl.done && sl.lat <= overloadDeadline
			sl.degraded = res.Degraded != 0
		}(&slots[i], arrival, tk)
	}
	fr.Flush()
	wg.Wait()
	elapsed := time.Since(start)

	m := fr.Metrics()
	pt := overloadReduce(slots, mult, s, offered, elapsed)
	pt.CapacityQPS = capacity
	if sub := m.Submitted - m0.Submitted; sub > 0 {
		pt.DedupRate = float64(m.DedupHits-m0.DedupHits) / float64(sub)
	}
	return pt
}

// overloadBaseline is the no-front control: the same open-loop schedule,
// but every arrival spawns its own unbounded handler straight into the
// cluster — the pre-serving-tier deployment shape.
//
//boss:wallclock this report intentionally measures real host-side latency.
func overloadBaseline(cl *pool.Cluster, exprs []string, k int, mult, s, capacity float64) OverloadPoint {
	runtime.GC() // settle garbage from the previous point before measuring
	offered := capacity * mult
	interval := time.Duration(float64(time.Second) / offered)
	n := len(exprs)
	slots := make([]overloadSlot, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		arrival := start.Add(time.Duration(i) * interval)
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(sl *overloadSlot, arrival time.Time, expr string) {
			defer wg.Done()
			_, err := cl.SearchCtx(context.Background(), expr, k)
			sl.lat = time.Since(arrival)
			sl.done = err == nil
			sl.good = sl.done && sl.lat <= overloadDeadline
		}(&slots[i], arrival, exprs[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	pt := overloadReduce(slots, mult, s, offered, elapsed)
	pt.CapacityQPS = capacity
	return pt
}

// bestOf2 measures a point twice and keeps the higher-goodput run. Host
// noise (a GC or scheduler stall landing inside the window) is strictly
// one-sided — it can only depress goodput and inflate the tail — so the
// better run is the truer one.
func bestOf2(measure func() OverloadPoint) OverloadPoint {
	a := measure()
	b := measure()
	// Clearly higher goodput wins; at parity (under capacity both runs
	// complete nearly everything) the cleaner tail is the truer run.
	if b.GoodputQPS > a.GoodputQPS*1.02 {
		return b
	}
	if a.GoodputQPS > b.GoodputQPS*1.02 {
		return a
	}
	if b.P99LatencyUS < a.P99LatencyUS {
		return b
	}
	return a
}

// overloadReduce folds per-request slots into a point's rates and
// percentiles.
func overloadReduce(slots []overloadSlot, mult, s, offered float64, elapsed time.Duration) OverloadPoint {
	pt := OverloadPoint{
		Mult:       mult,
		ZipfS:      s,
		Requests:   len(slots),
		OfferedQPS: offered,
	}
	var lats []time.Duration
	good, shed, degraded, done := 0, 0, 0, 0
	for i := range slots {
		sl := &slots[i]
		switch {
		case sl.shed:
			shed++
		case sl.done:
			done++
			lats = append(lats, sl.lat)
			if sl.good {
				good++
			}
			if sl.degraded {
				degraded++
			}
		}
	}
	pt.GoodputQPS = float64(good) / elapsed.Seconds()
	pt.ShedRate = float64(shed) / float64(len(slots))
	if done > 0 {
		pt.DegradeRate = float64(degraded) / float64(done)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pt.P50LatencyUS = latPercentileUS(lats, 0.50)
	pt.P99LatencyUS = latPercentileUS(lats, 0.99)
	pt.P999LatencyUS = latPercentileUS(lats, 0.999)
	return pt
}

// latPercentileUS reads the p-th percentile of a sorted latency slice in
// microseconds, nearest-rank (ceiling) so a tail percentile of a small
// sample reports the straggler instead of hiding it.
func latPercentileUS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Microsecond)
}

// Overload measures the front-door serving tier under offered loads from
// 0.5x to 4x the backend's capacity, at two traffic skews, against a
// no-front baseline. One cluster serves the whole sweep (its decoded-block
// cache warms during the capacity measurement, so every point sees the
// same steady-state backend). The wall-clock reads all live in the
// marker-carrying helpers; this driver only sequences them.
func Overload(ctx *Context, shards int) *OverloadReport {
	if shards <= 0 {
		shards = 4
	}
	s := ctx.ClueWeb()
	k := ctx.Cfg.K

	cl, err := pool.NewCluster(pool.DefaultConfig(), s.Corpus, shards)
	if err != nil {
		panic(err)
	}

	rep := &OverloadReport{
		Schema:     BenchSchema,
		PR:         BenchPR,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Corpus:     s.Spec.Name,
		Shards:     shards,
		K:          k,
		Seed:       ctx.Cfg.Seed,
		DeadlineMS: float64(overloadDeadline) / float64(time.Millisecond),
	}
	for _, zs := range overloadSkews {
		// Capacity: the backend's pipelined batch throughput over this
		// skew's traffic shape. Head-heavy mixes hit longer posting lists,
		// so a fixed-rate "2x" would overdrive one skew and underdrive the
		// other; per-skew capacity keeps the multiplier honest.
		capExprs := overloadExprs(s.Corpus, 64, zs, ctx.Cfg.Seed)
		capacity := measureQPS(len(capExprs), func() {
			if br := cl.SearchBatchCtx(context.Background(), capExprs, k); br.Err != nil {
				panic(br.Err)
			}
		})
		rep.CapacityQPS = capacity // last skew is the head-heavy mix
		for _, mult := range overloadMults {
			exprs := overloadExprs(s.Corpus, overloadRequests(capacity*mult), zs, ctx.Cfg.Seed)
			rep.Points = append(rep.Points, bestOf2(func() OverloadPoint {
				return overloadPoint(cl, exprs, k, mult, zs, capacity)
			}))
		}
		for _, mult := range overloadBaselineMults {
			exprs := overloadExprs(s.Corpus, overloadRequests(capacity*mult), zs, ctx.Cfg.Seed)
			rep.Baseline = append(rep.Baseline, bestOf2(func() OverloadPoint {
				return overloadBaseline(cl, exprs, k, mult, zs, capacity)
			}))
		}
	}
	return rep
}

// Table renders the report in the harness's table format so -overload
// composes with the text output path too.
func (r *OverloadReport) Table() *Table {
	rows := make([][]string, 0, len(r.Points)+len(r.Baseline))
	row := func(system string, p OverloadPoint) []string {
		return []string{
			system, f1(p.Mult), f1(p.ZipfS), f0(p.OfferedQPS), f0(p.GoodputQPS),
			fmt.Sprintf("%.1f%%", 100*p.ShedRate),
			fmt.Sprintf("%.1f%%", 100*p.DedupRate),
			fmt.Sprintf("%.1f%%", 100*p.DegradeRate),
			f0(p.P50LatencyUS), f0(p.P99LatencyUS), f0(p.P999LatencyUS),
		}
	}
	for _, p := range r.Points {
		rows = append(rows, row("front", p))
	}
	for _, p := range r.Baseline {
		rows = append(rows, row("no-front", p))
	}
	return &Table{
		ID: "overload",
		Title: fmt.Sprintf("Front-door goodput under overload on %s (%d shards, k=%d, capacity %.0f qps, deadline %.0f ms)",
			r.Corpus, r.Shards, r.K, r.CapacityQPS, r.DeadlineMS),
		Header: []string{
			"system", "mult", "zipf-s", "offered-qps", "goodput-qps",
			"shed", "dedup", "degraded", "p50-us", "p99-us", "p99.9-us",
		},
		Rows: rows,
		Notes: []string{
			"wall-clock host latency (not simulated device latency)",
			"goodput counts only answers delivered within the deadline",
			"latency percentiles are over admitted completions, from scheduled (open-loop) arrival",
			"no-front baseline admits everything: one unbounded handler per arrival, no shedding, no coalescing",
		},
	}
}

// f0 formats a float with no decimals for table cells.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
