// Package harness regenerates every table and figure of the paper's
// evaluation (plus the Figure 3 compression study and several extra
// ablations) from the models in this repository. Each experiment produces
// text tables whose rows/series correspond to the paper's; cmd/bossbench is
// the CLI front end.
package harness

import (
	"fmt"
	"math"
	"strings"

	"boss/internal/compress"
	"boss/internal/core"
	"boss/internal/corpus"
	"boss/internal/engine"
	"boss/internal/iiu"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/query"
)

// Config scopes an experiment run.
type Config struct {
	// Scale shrinks the corpora relative to the paper's full datasets
	// (which do not fit a laptop-scale run); posting-list statistics keep
	// their shape.
	Scale float64
	// PerType is the number of queries sampled per Table II type (the
	// paper uses 100).
	PerType int
	// K is the top-k depth (the paper defaults to 1000).
	K int
	// Seed drives all workload sampling.
	Seed int64
}

// QuickConfig runs in seconds; used by tests and the default CLI mode.
func QuickConfig() Config {
	return Config{Scale: 0.02, PerType: 6, K: 100, Seed: 42}
}

// FullConfig is the larger sweep behind EXPERIMENTS.md.
func FullConfig() Config {
	return Config{Scale: 0.06, PerType: 15, K: 400, Seed: 42}
}

// System names the engines under comparison.
type System string

// The five systems the figures compare.
const (
	Lucene    System = "Lucene"
	IIU       System = "IIU"
	BOSS      System = "BOSS"
	BOSSExh   System = "BOSS-exhaustive"
	BOSSBlock System = "BOSS-block-only"
)

// CoreCounts is the paper's multi-core sweep.
var CoreCounts = []int{1, 2, 4, 8}

// Setup holds one corpus, the per-system indexes, and a metrics cache.
type Setup struct {
	Cfg      Config
	Spec     corpus.Spec
	Corpus   *corpus.Corpus
	Hybrid   *index.Index // hybrid-compressed index (Lucene + BOSS)
	Fixed    *index.Index // single-scheme index (IIU's hardware-tied codec)
	Workload map[corpus.QueryType][]corpus.Query

	cache map[System]map[corpus.QueryType]*perf.Metrics
}

// NewSetup generates the corpus, builds both indexes and samples the
// workload.
func NewSetup(spec corpus.Spec, cfg Config) *Setup {
	c := corpus.Generate(spec)
	return &Setup{
		Cfg:      cfg,
		Spec:     spec,
		Corpus:   c,
		Hybrid:   index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid}),
		Fixed:    index.Build(c, index.BuildOptions{Scheme: compress.BP}),
		Workload: corpus.SampleWorkload(c, cfg.PerType, cfg.Seed),
		cache:    make(map[System]map[corpus.QueryType]*perf.Metrics),
	}
}

// runOne executes a single query on a system and returns its metrics.
func (s *Setup) runOne(sys System, q corpus.Query) *perf.Metrics {
	node := query.MustParse(q.Expr)
	switch sys {
	case Lucene:
		res, err := engine.New(s.Hybrid).Run(node, s.Cfg.K)
		if err != nil {
			panic(err)
		}
		return res.M
	case IIU:
		res, err := iiu.New(s.Fixed).Run(node, s.Cfg.K)
		if err != nil {
			panic(err)
		}
		return res.M
	case BOSS, BOSSExh, BOSSBlock:
		opts := core.DefaultOptions()
		if sys == BOSSExh {
			opts = core.ExhaustiveOptions()
		}
		if sys == BOSSBlock {
			opts = core.BlockOnlyOptions()
		}
		res, err := core.New(s.Hybrid, opts).Run(node, s.Cfg.K)
		if err != nil {
			panic(err)
		}
		return res.M
	default:
		panic("harness: unknown system " + string(sys))
	}
}

// RunQuery executes one query on a system, returning its work metrics.
func (s *Setup) RunQuery(sys System, q corpus.Query) *perf.Metrics {
	return s.runOne(sys, q)
}

// Avg returns the average per-query metrics of a system on a query type,
// computed once and cached.
func (s *Setup) Avg(sys System, qt corpus.QueryType) *perf.Metrics {
	byType, ok := s.cache[sys]
	if !ok {
		byType = make(map[corpus.QueryType]*perf.Metrics)
		s.cache[sys] = byType
	}
	if m, ok := byType[qt]; ok {
		return m
	}
	sum := perf.NewMetrics()
	queries := s.Workload[qt]
	for _, q := range queries {
		sum.Merge(s.runOne(sys, q))
	}
	sum.Scale(int64(len(queries)))
	byType[qt] = sum
	return sum
}

// deviceFor maps a system to its memory-device configuration in a given
// scenario ("scm" or "dram"): the accelerators sit on the 4-channel pool
// node, the software baseline on the 6-channel host system.
func deviceFor(sys System, scenario string) mem.Config {
	switch {
	case sys == Lucene && scenario == "scm":
		return mem.HostSCM()
	case sys == Lucene && scenario == "dram":
		return mem.HostDRAM()
	case scenario == "dram":
		return mem.DRAM()
	default:
		return mem.SCM()
	}
}

// QPS computes a system's query throughput at a core count under a
// scenario. The software baseline's memory is direct-attached (no shared
// link ceiling); the accelerators ship results over the pool interconnect.
func (s *Setup) QPS(sys System, qt corpus.QueryType, cores int, scenario string) float64 {
	m := s.Avg(sys, qt)
	link := mem.DefaultLinkGBs
	if sys == Lucene {
		link = 0
	}
	return m.Throughput(cores, deviceFor(sys, scenario), link)
}

// Speedup reports QPS(sys, cores) / QPS(Lucene, 8) in a scenario — the
// normalization every throughput figure uses.
func (s *Setup) Speedup(sys System, qt corpus.QueryType, cores int, scenario string) float64 {
	base := s.QPS(Lucene, qt, 8, "scm")
	if base == 0 {
		return 0
	}
	return s.QPS(sys, qt, cores, scenario) / base
}

// Bandwidth reports the device bandwidth (GB/s) a system consumes at a
// core count (Figures 11/12).
func (s *Setup) Bandwidth(sys System, qt corpus.QueryType, cores int) float64 {
	m := s.Avg(sys, qt)
	return m.Bandwidth(s.QPS(sys, qt, cores, "scm"))
}

// geomean of positive values (zeroes skipped).
func geomean(vals []float64) float64 {
	var sum float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Table is a rendered experiment output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	out := fmt.Sprintf("== %s: %s ==\n", t.ID, t.Title)
	line := ""
	for i, h := range t.Header {
		line += pad(h, widths[i]) + "  "
	}
	out += line + "\n"
	for _, row := range t.Rows {
		line = ""
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			line += pad(cell, w) + "  "
		}
		out += line + "\n"
	}
	for _, n := range t.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// CSV renders the table as RFC-4180-ish CSV (quotes only where needed),
// for piping into plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// Context carries lazily-built setups shared across experiments.
type Context struct {
	Cfg Config
	cw  *Setup
	cc  *Setup
}

// NewContext returns a context; setups are built on first use.
func NewContext(cfg Config) *Context { return &Context{Cfg: cfg} }

// ClueWeb returns the ClueWeb12-like setup, building it on first use.
func (ctx *Context) ClueWeb() *Setup {
	if ctx.cw == nil {
		ctx.cw = NewSetup(corpus.ClueWebLike(ctx.Cfg.Scale), ctx.Cfg)
	}
	return ctx.cw
}

// CCNews returns the CC-News-like setup, building it on first use.
func (ctx *Context) CCNews() *Setup {
	if ctx.cc == nil {
		ctx.cc = NewSetup(corpus.CCNewsLike(ctx.Cfg.Scale), ctx.Cfg)
	}
	return ctx.cc
}

// Experiment is one regenerable table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx *Context) []*Table
}

// Experiments lists every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig3", "Compression ratio by scheme and dataset", Fig3},
		{"table1", "Hardware methodology", Table1},
		{"table2", "Query types", Table2},
		{"fig9", "Multi-core throughput (ClueWeb12-like)", Fig9},
		{"fig10", "Multi-core throughput (CC-News-like)", Fig10},
		{"fig11", "Bandwidth utilization (ClueWeb12-like)", Fig11},
		{"fig12", "Bandwidth utilization (CC-News-like)", Fig12},
		{"fig13", "Single-core throughput analysis", Fig13},
		{"fig14", "Normalized number of evaluated documents", Fig14},
		{"fig15", "Normalized memory access count", Fig15},
		{"fig16", "DRAM vs SCM comparison", Fig16},
		{"table3", "Area and power of BOSS", Table3},
		{"fig17", "Energy consumption", Fig17},
		{"headline", "Geomean speedup and energy summary", Headline},
		{"ablation-et", "Early-termination ablation", AblationET},
		{"ablation-pipeline", "Pipelined vs spilled multi-term intersection", AblationPipeline},
		{"ablation-topk", "Hardware vs host-side top-k", AblationTopK},
		{"ablation-hybrid", "Hybrid vs single-scheme compression", AblationHybrid},
		{"scaleout", "Pool scale-out: nodes vs aggregate throughput", Scaleout},
		{"ablation-baseline", "BOSS vs WAND-hardened software baseline", AblationBaseline},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// sortedQueryTypes is a convenience alias.
func sortedQueryTypes() []corpus.QueryType { return corpus.AllQueryTypes() }
