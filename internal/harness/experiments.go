package harness

import (
	"fmt"

	"boss/internal/compress"
	"boss/internal/core"
	"boss/internal/corpus"
	"boss/internal/hw"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/query"
	"boss/internal/sim"
)

// fig3Schemes are the schemes Figure 3 plots (PFD is subsumed by OptPFD in
// the paper).
var fig3Schemes = []compress.Scheme{compress.BP, compress.VB, compress.OptPFD, compress.S16, compress.S8b}

// fig3StreamLen scales the paper's 10M-integer streams down.
const fig3StreamLen = 200_000

// Fig3 regenerates the compression-ratio comparison: seven synthetic
// streams plus the two corpora with per-list hybrid selection.
func Fig3(ctx *Context) []*Table {
	header := []string{"dataset"}
	for _, s := range fig3Schemes {
		header = append(header, s.String())
	}
	header = append(header, "Hybrid", "best")

	t := &Table{ID: "fig3", Title: "Compression ratio (higher is better)", Header: header}
	for _, kind := range corpus.AllStreamKinds() {
		stream := corpus.GenerateStream(kind, fig3StreamLen, ctx.Cfg.Seed)
		row := []string{kind.String()}
		best, bestRatio := "", 0.0
		var hybridSize int
		for _, s := range fig3Schemes {
			size, ok := blockEncodedSize(s, stream)
			if !ok {
				row = append(row, "n/a")
				continue
			}
			ratio := compress.CompressionRatio(len(stream), size)
			row = append(row, f2(ratio))
			if ratio > bestRatio {
				best, bestRatio = s.String(), ratio
			}
			if hybridSize == 0 || size < hybridSize {
				hybridSize = size
			}
		}
		row = append(row, f2(compress.CompressionRatio(len(stream), hybridSize)), best)
		t.Rows = append(t.Rows, row)
	}

	// Real-corpus rows: per-posting-list hybrid over docID delta streams.
	for _, setup := range []*Setup{ctx.ClueWeb(), ctx.CCNews()} {
		row := []string{setup.Spec.Name}
		var totals [len64]int64
		var hybridTotal, rawTotal int64
		for _, tp := range setup.Corpus.Terms {
			deltas := make([]uint32, len(tp.Postings))
			prev := uint32(0)
			for i, p := range tp.Postings {
				deltas[i] = p.DocID - prev
				prev = p.DocID
			}
			rawTotal += int64(4 * len(deltas))
			bestSize := int64(0)
			for si, s := range fig3Schemes {
				sz, ok := blockEncodedSize(s, deltas)
				if !ok {
					totals[si] = -1 // scheme unusable on this corpus
					continue
				}
				size := int64(sz)
				if totals[si] >= 0 {
					totals[si] += size
				}
				if bestSize == 0 || size < bestSize {
					bestSize = size
				}
			}
			hybridTotal += bestSize
		}
		best, bestRatio := "", 0.0
		for si := range fig3Schemes {
			if totals[si] < 0 {
				row = append(row, "n/a")
				continue
			}
			ratio := float64(rawTotal) / float64(totals[si])
			row = append(row, f2(ratio))
			if ratio > bestRatio {
				best, bestRatio = fig3Schemes[si].String(), ratio
			}
		}
		hybridRatio := float64(rawTotal) / float64(hybridTotal)
		if hybridRatio > bestRatio {
			best = "Hybrid"
		}
		row = append(row, f2(hybridRatio), best)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: the best scheme differs per dataset; hybrid matches or beats every single scheme on the corpora")
	return []*Table{t}
}

// len64 is the fig3 scheme count (fixed-size accumulator array).
const len64 = 5

// blockEncodedSize encodes values in 128-value blocks — how the index
// actually applies these codecs (PFD is inherently block-based) — and
// reports the total size, or ok=false if the scheme cannot represent the
// values.
func blockEncodedSize(s compress.Scheme, values []uint32) (int, bool) {
	c := compress.ForScheme(s)
	total := 0
	for start := 0; start < len(values); start += 128 {
		end := start + 128
		if end > len(values) {
			end = len(values)
		}
		blk := values[start:end]
		if !c.Supports(blk) {
			return 0, false
		}
		total += compress.EncodedSize(s, blk)
	}
	return total, true
}

// Table1 prints the hardware methodology constants.
func Table1(ctx *Context) []*Table {
	scm, dram, hscm, hdram := mem.SCM(), mem.DRAM(), mem.HostSCM(), mem.HostDRAM()
	t := &Table{
		ID:     "table1",
		Title:  "Hardware methodology",
		Header: []string{"component", "configuration"},
		Rows: [][]string{
			{"BOSS", "8 BOSS cores @ 1.0 GHz"},
			{"BOSS core", "1 block fetch, 4 decompression, 1 intersection, 1 union, 4 scoring, 1 top-k"},
			{"BOSS memory", fmt.Sprintf("SCM, %d channels, %.1f GB/s seq read, %.1f GB/s random, %.1f GB/s write",
				scm.Channels, scm.SeqReadGBs, scm.RandReadGBs, scm.WriteGBs)},
			{"pool DRAM (fig16)", fmt.Sprintf("DDR4-2666, %d channels, %.1f GB/s", dram.Channels, dram.SeqReadGBs)},
			{"host SCM", fmt.Sprintf("%d channels, %.1f GB/s seq read", hscm.Channels, hscm.SeqReadGBs)},
			{"host DRAM", fmt.Sprintf("DDR4-2666 ECC, %d channels, %.2f GB/s", hdram.Channels, hdram.SeqReadGBs)},
			{"host link", fmt.Sprintf("%.0f GB/s shared (CXL-like)", mem.DefaultLinkGBs)},
			{"top-k", fmt.Sprintf("k=%d (paper default %d)", ctx.Cfg.K, core.DefaultK)},
		},
	}
	return []*Table{t}
}

// Table2 prints the query-type workload definition.
func Table2(ctx *Context) []*Table {
	t := &Table{
		ID:     "table2",
		Title:  "Query types",
		Header: []string{"type", "#terms", "operation"},
	}
	for _, qt := range sortedQueryTypes() {
		t.Rows = append(t.Rows, []string{qt.String(), fmt.Sprint(qt.NumTerms()), qt.Operation()})
	}
	return []*Table{t}
}

// throughputTable builds the Figure 9/10 layout for one corpus.
func throughputTable(id string, s *Setup) *Table {
	header := []string{"query"}
	for _, sys := range []System{IIU, BOSS} {
		for _, c := range CoreCounts {
			header = append(header, fmt.Sprintf("%s-%dc", sys, c))
		}
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Query throughput on %s, normalized to Lucene with 8 cores", s.Spec.Name),
		Header: header,
	}
	perSys := map[System][]float64{}
	for _, qt := range sortedQueryTypes() {
		row := []string{qt.String()}
		for _, sys := range []System{IIU, BOSS} {
			for _, c := range CoreCounts {
				v := s.Speedup(sys, qt, c, "scm")
				row = append(row, f2(v))
				if c == 8 {
					perSys[sys] = append(perSys[sys], v)
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("geomean at 8 cores: IIU %.2fx, BOSS %.2fx (paper: ~1.7x and ~7.5-8.7x)",
		geomean(perSys[IIU]), geomean(perSys[BOSS])))
	return t
}

// Fig9 regenerates the ClueWeb multi-core throughput figure.
func Fig9(ctx *Context) []*Table { return []*Table{throughputTable("fig9", ctx.ClueWeb())} }

// Fig10 regenerates the CC-News multi-core throughput figure.
func Fig10(ctx *Context) []*Table { return []*Table{throughputTable("fig10", ctx.CCNews())} }

// bandwidthTable builds the Figure 11/12 layout.
func bandwidthTable(id string, s *Setup) *Table {
	header := []string{"query"}
	for _, sys := range []System{IIU, BOSS} {
		for _, c := range CoreCounts {
			header = append(header, fmt.Sprintf("%s-%dc", sys, c))
		}
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("SCM bandwidth utilization on %s (GB/s)", s.Spec.Name),
		Header: header,
	}
	for _, qt := range sortedQueryTypes() {
		row := []string{qt.String()}
		for _, sys := range []System{IIU, BOSS} {
			for _, c := range CoreCounts {
				row = append(row, f2(s.Bandwidth(sys, qt, c)))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: BOSS consumes less bandwidth than IIU at higher throughput; IIU saturates at fewer cores")
	return t
}

// Fig11 regenerates ClueWeb bandwidth utilization.
func Fig11(ctx *Context) []*Table { return []*Table{bandwidthTable("fig11", ctx.ClueWeb())} }

// Fig12 regenerates CC-News bandwidth utilization.
func Fig12(ctx *Context) []*Table { return []*Table{bandwidthTable("fig12", ctx.CCNews())} }

// Fig13 regenerates the single-core analysis including BOSS-exhaustive.
func Fig13(ctx *Context) []*Table {
	s := ctx.ClueWeb()
	t := &Table{
		ID:     "fig13",
		Title:  "Single-core throughput, normalized to Lucene with 1 core",
		Header: []string{"query", "Lucene", "IIU", "BOSS-exhaustive", "BOSS"},
	}
	for _, qt := range sortedQueryTypes() {
		base := s.QPS(Lucene, qt, 1, "scm")
		row := []string{qt.String()}
		for _, sys := range []System{Lucene, IIU, BOSSExh, BOSS} {
			row = append(row, f2(s.QPS(sys, qt, 1, "scm")/base))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: ET gain over BOSS-exhaustive shrinks with more OR terms; intersection gain grows with more AND terms; IIU can beat BOSS-exhaustive on Q1 (intra-query parallelism)")
	return []*Table{t}
}

// Fig14 regenerates the evaluated-documents figure for union queries.
func Fig14(ctx *Context) []*Table {
	s := ctx.ClueWeb()
	t := &Table{
		ID:     "fig14",
		Title:  "Evaluated (scored) documents, normalized to IIU",
		Header: []string{"query", "IIU", "BOSS-block-only", "BOSS"},
	}
	for _, qt := range []corpus.QueryType{corpus.Q1, corpus.Q3, corpus.Q5} {
		base := float64(s.Avg(IIU, qt).DocsEvaluated)
		row := []string{qt.String(), "1.00"}
		for _, sys := range []System{BOSSBlock, BOSS} {
			row = append(row, f2(float64(s.Avg(sys, qt).DocsEvaluated)/base))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: block-level skipping weakens as terms increase; WAND recovers the reduction")
	return []*Table{t}
}

// Fig15 regenerates the memory-access breakdown.
func Fig15(ctx *Context) []*Table {
	s := ctx.ClueWeb()
	header := []string{"query", "system"}
	for _, cat := range mem.Categories() {
		header = append(header, cat.String())
	}
	header = append(header, "total")
	t := &Table{
		ID:     "fig15",
		Title:  "Memory access count by category, normalized to IIU total per query type",
		Header: header,
	}
	for _, qt := range sortedQueryTypes() {
		iiuM := s.Avg(IIU, qt)
		var iiuTotal int64
		for _, cat := range mem.Categories() {
			iiuTotal += iiuM.CatAcc[cat]
		}
		if iiuTotal == 0 {
			iiuTotal = 1
		}
		for _, sys := range []System{IIU, BOSS} {
			m := s.Avg(sys, qt)
			row := []string{qt.String(), string(sys)}
			var total int64
			for _, cat := range mem.Categories() {
				row = append(row, f2(float64(m.CatAcc[cat])/float64(iiuTotal)))
				total += m.CatAcc[cat]
			}
			row = append(row, f2(float64(total)/float64(iiuTotal)))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: BOSS eliminates LD/ST Inter and shrinks ST Result to k entries; LD List and LD Score drop via skipping")
	return []*Table{t}
}

// Fig16 regenerates the DRAM-vs-SCM comparison.
func Fig16(ctx *Context) []*Table {
	s := ctx.ClueWeb()
	t := &Table{
		ID:     "fig16",
		Title:  "8-core throughput on DRAM vs SCM, normalized to Lucene-SCM with 8 cores",
		Header: []string{"query", "Lucene-DRAM", "IIU-SCM", "IIU-DRAM", "BOSS-SCM", "BOSS-DRAM"},
	}
	var iiuGain, bossGain, lucGain []float64
	for _, qt := range sortedQueryTypes() {
		row := []string{qt.String()}
		lDram := s.Speedup(Lucene, qt, 8, "dram")
		row = append(row, f2(lDram))
		lucGain = append(lucGain, lDram)
		for _, sys := range []System{IIU, BOSS} {
			scm := s.Speedup(sys, qt, 8, "scm")
			dram := s.Speedup(sys, qt, 8, "dram")
			row = append(row, f2(scm), f2(dram))
			if scm > 0 {
				if sys == IIU {
					iiuGain = append(iiuGain, dram/scm)
				} else {
					bossGain = append(bossGain, dram/scm)
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("DRAM gain: Lucene %.2fx, IIU %.2fx, BOSS %.2fx (paper: <=1.15x, 3.29x, 2.31x)",
			geomean(lucGain), geomean(iiuGain), geomean(bossGain)))
	return []*Table{t}
}

// Table3 prints the area/power database.
func Table3(ctx *Context) []*Table {
	t := &Table{
		ID:     "table3",
		Title:  "Area and power of BOSS (TSMC 40nm, from the paper's synthesis)",
		Header: []string{"component", "count", "area (mm^2)", "power (mW)"},
	}
	for _, c := range hw.CoreComponents() {
		t.Rows = append(t.Rows, []string{c.Name, fmt.Sprint(c.Count), fmt.Sprintf("%.3f", c.AreaMM2), f2(c.PowerMW)})
	}
	t.Rows = append(t.Rows, []string{"BOSS core total", "1", fmt.Sprintf("%.3f", hw.CoreArea()), f1(hw.CorePower())})
	for _, c := range hw.PeripheralComponents() {
		t.Rows = append(t.Rows, []string{c.Name, fmt.Sprint(c.Count), fmt.Sprintf("%.3f", c.AreaMM2), fmt.Sprintf("%.3f", c.PowerMW)})
	}
	t.Rows = append(t.Rows, []string{"BOSS device (8 cores)", "", f2(hw.DeviceArea(8)), f1(hw.DevicePower(8))})
	t.Notes = append(t.Notes, fmt.Sprintf("CPU package power for Lucene: %.1f W; BOSS power advantage %.1fx",
		hw.CPUPackagePowerW, hw.CPUPackagePowerW/(hw.DevicePower(8)/1000)))
	return []*Table{t}
}

// Fig17 regenerates the energy comparison.
func Fig17(ctx *Context) []*Table {
	s := ctx.ClueWeb()
	t := &Table{
		ID:     "fig17",
		Title:  "Energy per query: Lucene / BOSS ratio (8 cores each)",
		Header: []string{"query", "Lucene (mJ)", "BOSS (mJ)", "ratio"},
	}
	var ratios []float64
	for _, qt := range sortedQueryTypes() {
		lQPS := s.QPS(Lucene, qt, 8, "scm")
		bQPS := s.QPS(BOSS, qt, 8, "scm")
		if lQPS == 0 || bQPS == 0 {
			continue
		}
		lE := hw.LuceneEnergyJ(sim.FromSeconds(1/lQPS)) * 1000
		bE := hw.BOSSEnergyJ(8, sim.FromSeconds(1/bQPS)) * 1000
		ratio := lE / bE
		ratios = append(ratios, ratio)
		t.Rows = append(t.Rows, []string{qt.String(), fmt.Sprintf("%.3f", lE), fmt.Sprintf("%.4f", bE), f1(ratio)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("geomean energy reduction %.0fx (paper: 189x average)", geomean(ratios)))
	return []*Table{t}
}

// Headline reports the paper's summary numbers across both corpora.
func Headline(ctx *Context) []*Table {
	t := &Table{
		ID:     "headline",
		Title:  "Summary: BOSS vs Lucene-8core",
		Header: []string{"corpus", "geomean speedup (8c)", "IIU geomean (8c)"},
	}
	var all []float64
	for _, s := range []*Setup{ctx.ClueWeb(), ctx.CCNews()} {
		var boss, iiuV []float64
		for _, qt := range sortedQueryTypes() {
			boss = append(boss, s.Speedup(BOSS, qt, 8, "scm"))
			iiuV = append(iiuV, s.Speedup(IIU, qt, 8, "scm"))
		}
		all = append(all, boss...)
		t.Rows = append(t.Rows, []string{s.Spec.Name, f2(geomean(boss)), f2(geomean(iiuV))})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("overall geomean speedup %.2fx (paper: 8.1x)", geomean(all)))
	return []*Table{t}
}

// AblationET sweeps both ET switches independently.
func AblationET(ctx *Context) []*Table {
	s := ctx.ClueWeb()
	variants := []struct {
		name string
		opts core.Options
	}{
		{"none (exhaustive)", core.ExhaustiveOptions()},
		{"block only", core.BlockOnlyOptions()},
		{"doc only (WAND)", core.Options{DocET: true}},
		{"both (BOSS)", core.DefaultOptions()},
	}
	t := &Table{
		ID:     "ablation-et",
		Title:  "ET ablation on union queries: evaluated docs / fetched blocks / device bytes (normalized to exhaustive)",
		Header: []string{"query", "variant", "docs", "blocks", "bytes"},
	}
	for _, qt := range []corpus.QueryType{corpus.Q1, corpus.Q3, corpus.Q5} {
		var baseDocs, baseBlocks, baseBytes float64
		for vi, v := range variants {
			sum := newZeroMetrics()
			for _, q := range s.Workload[qt] {
				res, err := core.New(s.Hybrid, v.opts).Run(query.MustParse(q.Expr), s.Cfg.K)
				if err != nil {
					panic(err)
				}
				sum.docs += float64(res.M.DocsEvaluated)
				sum.blocks += float64(res.M.BlocksFetched)
				sum.bytes += float64(res.M.DeviceBytes())
			}
			if vi == 0 {
				baseDocs, baseBlocks, baseBytes = sum.docs, sum.blocks, sum.bytes
			}
			t.Rows = append(t.Rows, []string{
				qt.String(), v.name,
				f2(sum.docs / baseDocs), f2(sum.blocks / baseBlocks), f2(sum.bytes / baseBytes),
			})
		}
	}
	return []*Table{t}
}

type zeroMetrics struct{ docs, blocks, bytes float64 }

func newZeroMetrics() *zeroMetrics { return &zeroMetrics{} }

// AblationPipeline compares pipelined multi-term intersection against the
// spill-to-memory alternative.
func AblationPipeline(ctx *Context) []*Table {
	s := ctx.ClueWeb()
	t := &Table{
		ID:     "ablation-pipeline",
		Title:  "Multi-term intersection: pipelined vs spilled intermediates (Q4)",
		Header: []string{"variant", "device bytes", "Inter bytes", "latency (us)", "8c QPS"},
	}
	// Q4 queries over common terms, so the conjunction passes carry
	// non-trivial intermediate lists.
	exprs := []string{
		`"t0" AND "t1" AND "t2" AND "t3"`,
		`"t0" AND "t2" AND "t4" AND "t6"`,
		`"t1" AND "t3" AND "t5" AND "t7"`,
	}
	for _, v := range []struct {
		name  string
		spill bool
	}{{"pipelined (BOSS)", false}, {"spilled (IIU-style)", true}} {
		var bytes, inter, qps float64
		var lat sim.Duration
		opts := core.DefaultOptions()
		opts.SpillIntermediates = v.spill
		n := 0
		for _, expr := range exprs {
			res, err := core.New(s.Hybrid, opts).Run(query.MustParse(expr), s.Cfg.K)
			if err != nil {
				panic(err)
			}
			bytes += float64(res.M.DeviceBytes())
			inter += float64(res.M.Cat[mem.CatStoreInter] + res.M.Cat[mem.CatLoadInter])
			lat += res.M.Latency(mem.SCM())
			qps += res.M.Throughput(8, mem.SCM(), mem.DefaultLinkGBs)
			n++
		}
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprintf("%.0f", bytes/float64(n)),
			fmt.Sprintf("%.0f", inter/float64(n)),
			f2(sim.Seconds(lat/sim.Duration(n)) * 1e6),
			fmt.Sprintf("%.0f", qps/float64(n)),
		})
	}
	return []*Table{t}
}

// AblationTopK compares hardware top-k against host-side selection on the
// shared interconnect.
func AblationTopK(ctx *Context) []*Table {
	s := ctx.ClueWeb()
	t := &Table{
		ID:     "ablation-topk",
		Title:  "Top-k placement: host-interconnect bytes per query and pool scalability (Q5)",
		Header: []string{"variant", "host bytes", "max nodes before link saturates"},
	}
	for _, v := range []struct {
		name string
		host bool
	}{{"hardware top-k (BOSS)", false}, {"host-side top-k", true}} {
		opts := core.DefaultOptions()
		opts.HostTopK = v.host
		var hostBytes float64
		var qps float64
		n := 0
		for _, q := range s.Workload[corpus.Q5] {
			res, err := core.New(s.Hybrid, opts).Run(query.MustParse(q.Expr), s.Cfg.K)
			if err != nil {
				panic(err)
			}
			hostBytes += float64(res.M.HostBytes)
			qps = res.M.Throughput(8, mem.SCM(), 0) // node-local ceiling, no link
			n++
		}
		avgHost := hostBytes / float64(n)
		// Each node at full throughput pushes qps*avgHost bytes/s into the
		// shared link; the link supports this many nodes.
		nodes := mem.DefaultLinkGBs * 1e9 / (qps * avgHost)
		t.Rows = append(t.Rows, []string{v.name, fmt.Sprintf("%.0f", avgHost), f1(nodes)})
	}
	t.Notes = append(t.Notes, "hardware top-k lets the pool scale out by orders of magnitude more nodes per link")
	return []*Table{t}
}

// AblationHybrid compares hybrid compression against each single scheme
// end to end.
func AblationHybrid(ctx *Context) []*Table {
	s := ctx.ClueWeb()
	t := &Table{
		ID:     "ablation-hybrid",
		Title:  "Compression scheme vs index size and BOSS Q3 throughput",
		Header: []string{"scheme", "payload bytes", "ratio", "Q3 QPS (8c, normalized to hybrid)"},
	}
	run := func(idx *index.Index) float64 {
		sum := 0.0
		n := 0
		for _, q := range s.Workload[corpus.Q3] {
			res, err := core.New(idx, core.DefaultOptions()).Run(query.MustParse(q.Expr), s.Cfg.K)
			if err != nil {
				panic(err)
			}
			sum += res.M.Throughput(8, mem.SCM(), mem.DefaultLinkGBs)
			n++
		}
		return sum / float64(n)
	}
	hybridStats := s.Hybrid.ComputeStats()
	hybridQPS := run(s.Hybrid)
	t.Rows = append(t.Rows, []string{"Hybrid", fmt.Sprint(hybridStats.PayloadBytes), f2(hybridStats.CompressionRatio()), "1.00"})
	for _, sc := range []compress.Scheme{compress.BP, compress.VB, compress.OptPFD, compress.S8b} {
		idx := index.Build(s.Corpus, index.BuildOptions{Scheme: sc})
		st := idx.ComputeStats()
		t.Rows = append(t.Rows, []string{
			sc.String(), fmt.Sprint(st.PayloadBytes), f2(st.CompressionRatio()), f2(run(idx) / hybridQPS),
		})
	}
	return []*Table{t}
}
