package compress

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// roundTrip encodes values with codec c and decodes them back, failing the
// test on any mismatch. It also verifies that Decode reports the exact
// payload length.
func roundTrip(t *testing.T, c Codec, values []uint32) {
	t.Helper()
	enc := c.Encode(nil, values)
	got, used := c.Decode(nil, enc, len(values))
	if used != len(enc) {
		t.Fatalf("%s: decode consumed %d bytes, payload is %d", c.Scheme(), used, len(enc))
	}
	if len(values) == 0 {
		if len(got) != 0 {
			t.Fatalf("%s: decoded %d values from empty input", c.Scheme(), len(got))
		}
		return
	}
	if !reflect.DeepEqual(got, values) {
		t.Fatalf("%s: round trip mismatch\n in: %v\nout: %v", c.Scheme(), values, got)
	}
}

// testStreams returns a variety of value distributions, all within maxV.
func testStreams(rng *rand.Rand, maxV uint32) map[string][]uint32 {
	clip := func(v uint32) uint32 {
		if v > maxV {
			return maxV
		}
		return v
	}
	streams := map[string][]uint32{
		"empty":     {},
		"single":    {clip(42)},
		"zeros":     make([]uint32, 128),
		"ones":      nil,
		"ramp":      nil,
		"smallrand": nil,
		"widerand":  nil,
		"outliers":  nil,
		"maxvals":   nil,
	}
	for i := 0; i < 128; i++ {
		streams["ones"] = append(streams["ones"], 1)
		streams["ramp"] = append(streams["ramp"], clip(uint32(i)))
		streams["smallrand"] = append(streams["smallrand"], clip(uint32(rng.Intn(64))))
		streams["widerand"] = append(streams["widerand"], clip(rng.Uint32()))
		v := uint32(rng.Intn(16))
		if rng.Intn(10) == 0 {
			v = clip(uint32(rng.Intn(1 << 20)))
		}
		streams["outliers"] = append(streams["outliers"], v)
		streams["maxvals"] = append(streams["maxvals"], maxV)
	}
	return streams
}

func TestRoundTripAllCodecs(t *testing.T) {
	for _, s := range AllSchemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			c := ForScheme(s)
			rng := rand.New(rand.NewSource(1))
			for name, stream := range testStreams(rng, c.MaxValue()) {
				if !c.Supports(stream) {
					t.Fatalf("stream %s unexpectedly unsupported", name)
				}
				roundTrip(t, c, stream)
			}
		})
	}
}

func TestRoundTripQuick(t *testing.T) {
	for _, s := range AllSchemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			c := ForScheme(s)
			f := func(raw []uint32, widthSeed uint8) bool {
				// Constrain width so exotic distributions are exercised,
				// and clamp to the codec's range.
				w := uint(widthSeed%29) + 1
				values := make([]uint32, len(raw))
				if len(values) > 255 {
					values = values[:255] // PFD block limit
				}
				for i := range values {
					values[i] = raw[i] & (1<<w - 1)
					if values[i] > c.MaxValue() {
						values[i] = c.MaxValue()
					}
				}
				enc := c.Encode(nil, values)
				got, used := c.Decode(nil, enc, len(values))
				if used != len(enc) {
					return false
				}
				if len(values) == 0 {
					return len(got) == 0
				}
				return reflect.DeepEqual(got, values)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDecodeAppendsToDst(t *testing.T) {
	c := ForScheme(VB)
	enc := c.Encode(nil, []uint32{7, 8})
	prefix := []uint32{1, 2, 3}
	got, _ := c.Decode(prefix, enc, 2)
	want := []uint32{1, 2, 3, 7, 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Decode did not append: %v", got)
	}
}

func TestVBEncodingSizes(t *testing.T) {
	cases := []struct {
		v    uint32
		size int
	}{
		{0, 1}, {127, 1}, {128, 2}, {1<<14 - 1, 2}, {1 << 14, 3},
		{1<<21 - 1, 3}, {1 << 21, 4}, {1<<28 - 1, 4}, {1 << 28, 5}, {^uint32(0), 5},
	}
	for _, tc := range cases {
		if got := len(appendVB(nil, tc.v)); got != tc.size {
			t.Errorf("VB size of %d = %d, want %d", tc.v, got, tc.size)
		}
	}
}

func TestBPWidthZero(t *testing.T) {
	c := ForScheme(BP)
	values := make([]uint32, 100)
	enc := c.Encode(nil, values)
	if len(enc) != 1 {
		t.Fatalf("all-zero BP block is %d bytes, want 1 (header only)", len(enc))
	}
	roundTrip(t, c, values)
}

func TestBPUsesMaxWidth(t *testing.T) {
	c := ForScheme(BP)
	values := []uint32{1, 1, 1, 1<<20 - 1}
	enc := c.Encode(nil, values)
	want := 1 + packedLen(4, 20)
	if len(enc) != want {
		t.Fatalf("BP size = %d, want %d", len(enc), want)
	}
}

func TestPFDHandlesOutliers(t *testing.T) {
	// 90% small values, 10% huge: PFD should pick a small b and treat huge
	// values as exceptions, beating BP comfortably.
	rng := rand.New(rand.NewSource(7))
	values := make([]uint32, 128)
	for i := range values {
		if i%10 == 0 {
			values[i] = uint32(rng.Intn(1 << 27))
		} else {
			values[i] = uint32(rng.Intn(32))
		}
	}
	pfd := EncodedSize(PFD, values)
	bp := EncodedSize(BP, values)
	if pfd >= bp {
		t.Fatalf("PFD (%dB) should beat BP (%dB) on outlier data", pfd, bp)
	}
	roundTrip(t, ForScheme(PFD), values)
	roundTrip(t, ForScheme(OptPFD), values)
}

func TestOptPFDNoWorseThanPFD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(128)
		values := make([]uint32, n)
		w := uint(rng.Intn(28)) + 1
		for i := range values {
			values[i] = rng.Uint32() & (1<<w - 1)
			if rng.Intn(8) == 0 {
				values[i] = rng.Uint32() >> 4
			}
		}
		opt := EncodedSize(OptPFD, values)
		plain := EncodedSize(PFD, values)
		if opt > plain {
			t.Fatalf("trial %d: OptPFD (%dB) worse than PFD (%dB) on %v", trial, opt, plain, values)
		}
	}
}

func TestS16RejectsWideValues(t *testing.T) {
	c := ForScheme(S16)
	if c.Supports([]uint32{1 << 28}) {
		t.Fatal("S16 must not support values >= 2^28")
	}
	if !c.Supports([]uint32{1<<28 - 1}) {
		t.Fatal("S16 must support 2^28-1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("encoding an unsupported value should panic")
		}
	}()
	c.Encode(nil, []uint32{1 << 28})
}

func TestS16ModesSumTo28(t *testing.T) {
	for m, widths := range s16Modes {
		sum := 0
		for _, w := range widths {
			sum += w
		}
		if sum != 28 {
			t.Errorf("S16 mode %d sums to %d bits, want 28", m, sum)
		}
	}
}

func TestS16PacksDenseOnes(t *testing.T) {
	// 280 one-bit values should take exactly 10 words (28 per word).
	values := make([]uint32, 280)
	for i := range values {
		values[i] = uint32(i % 2)
	}
	enc := ForScheme(S16).Encode(nil, values)
	if len(enc) != 40 {
		t.Fatalf("S16 encoded 280 1-bit values in %d bytes, want 40", len(enc))
	}
}

func TestS8bModes(t *testing.T) {
	for sel, m := range s8bModes {
		if m.width*m.count > 60 {
			t.Errorf("S8b selector %d overflows 60 data bits", sel)
		}
	}
}

func TestS8bZeroRun(t *testing.T) {
	values := make([]uint32, 240)
	enc := ForScheme(S8b).Encode(nil, values)
	if len(enc) != 8 {
		t.Fatalf("240 zeros should take one 8-byte word, got %d bytes", len(enc))
	}
	roundTrip(t, ForScheme(S8b), values)

	// 360 zeros: one word of 240 + one word of 120.
	values = make([]uint32, 360)
	enc = ForScheme(S8b).Encode(nil, values)
	if len(enc) != 16 {
		t.Fatalf("360 zeros should take two words, got %d bytes", len(enc))
	}
	roundTrip(t, ForScheme(S8b), values)
}

func TestChooseBestPrefersCompactScheme(t *testing.T) {
	// Dense small values: bit packing family should win over VB.
	values := make([]uint32, 128)
	for i := range values {
		values[i] = uint32(i % 4)
	}
	best, size := ChooseBest(values, nil)
	if size >= EncodedSize(VB, values) {
		t.Fatalf("best scheme %s (%dB) not better than VB (%dB)", best, size, EncodedSize(VB, values))
	}
	// And the reported size must match the actual encoding.
	if size != EncodedSize(best, values) {
		t.Fatalf("ChooseBest size %d != actual %d", size, EncodedSize(best, values))
	}
}

func TestChooseBestExcludesUnsupported(t *testing.T) {
	values := []uint32{1 << 30} // too wide for S16
	best, _ := ChooseBest(values, []Scheme{S16, VB})
	if best != VB {
		t.Fatalf("ChooseBest picked %s, want VB", best)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	values := []uint32{3, 7, 7, 20, 100}
	orig := append([]uint32(nil), values...)
	DeltaEncode(values, 0)
	if !reflect.DeepEqual(values, []uint32{3, 4, 0, 13, 80}) {
		t.Fatalf("deltas = %v", values)
	}
	DeltaDecode(values, 0)
	if !reflect.DeepEqual(values, orig) {
		t.Fatalf("delta round trip = %v, want %v", values, orig)
	}
}

func TestDeltaEncodeWithBase(t *testing.T) {
	values := []uint32{10, 12}
	DeltaEncode(values, 10)
	if !reflect.DeepEqual(values, []uint32{0, 2}) {
		t.Fatalf("deltas with base = %v", values)
	}
	DeltaDecode(values, 10)
	if !reflect.DeepEqual(values, []uint32{10, 12}) {
		t.Fatal("base round trip failed")
	}
}

func TestDeltaEncodeUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DeltaEncode on unsorted input should panic")
		}
	}()
	DeltaEncode([]uint32{5, 3}, 0)
}

func TestPackBitsRoundTripQuick(t *testing.T) {
	f := func(raw []uint32, widthSeed uint8) bool {
		w := int(widthSeed%32) + 1
		values := make([]uint32, len(raw))
		for i := range raw {
			values[i] = raw[i] & uint32(1<<uint(w)-1)
		}
		packed := packBits(nil, values, w)
		if len(packed) != packedLen(len(values), w) {
			return false
		}
		got, used := unpackBits(nil, packed, len(values), w)
		if used != len(packed) {
			return false
		}
		if len(values) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		BP: "BP", VB: "VB", PFD: "PFD", OptPFD: "OptPFD",
		S16: "S16", S8b: "S8b", SchemeHybrid: "Hybrid",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("Scheme(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if Scheme(200).String() != "Scheme(200)" {
		t.Errorf("unknown scheme string: %q", Scheme(200).String())
	}
}

func TestCompressionRatio(t *testing.T) {
	if r := CompressionRatio(128, 128); r != 4.0 {
		t.Fatalf("ratio = %v, want 4", r)
	}
	if r := CompressionRatio(10, 0); r != 0 {
		t.Fatalf("ratio with zero size = %v", r)
	}
}

func BenchmarkDecode128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	values := make([]uint32, 128)
	for i := range values {
		values[i] = uint32(rng.Intn(256))
	}
	for _, s := range AllSchemes() {
		c := ForScheme(s)
		enc := c.Encode(nil, values)
		b.Run(s.String(), func(b *testing.B) {
			buf := make([]uint32, 0, 128)
			b.SetBytes(int64(4 * len(values)))
			for i := 0; i < b.N; i++ {
				buf, _ = c.Decode(buf[:0], enc, len(values))
			}
		})
	}
}
