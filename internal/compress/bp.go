package compress

// bpCodec implements Bit-Packing (BP): every value in the block is stored at
// the bit width of the block's largest value. The payload is a 1-byte width
// header followed by the packed values.
type bpCodec struct{}

func (bpCodec) Scheme() Scheme                { return BP }
func (bpCodec) Supports(values []uint32) bool { return true }
func (bpCodec) MaxValue() uint32              { return ^uint32(0) }

func (bpCodec) Encode(dst []byte, values []uint32) []byte {
	w := maxBitWidth(values)
	dst = append(dst, byte(w))
	return packBits(dst, values, w)
}

func (bpCodec) Decode(dst []uint32, src []byte, n int) ([]uint32, int) {
	w := int(src[0])
	out, used := unpackBits(dst, src[1:], n, w)
	return out, 1 + used
}
