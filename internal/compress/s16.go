package compress

import "encoding/binary"

// s16Codec implements Simple16 (Zhang, Long & Suel): values are packed into
// 32-bit words, each carrying a 4-bit mode selector and 28 data bits split
// into a mode-specific pattern of field widths. Values must be < 2^28.
type s16Codec struct{}

// s16Modes lists, for each selector, the sequence of field widths (bits).
// Every row sums to 28 bits.
var s16Modes = [16][]int{
	repeatWidths(1, 28),
	concatWidths(repeatWidths(2, 7), repeatWidths(1, 14)),
	concatWidths(repeatWidths(1, 7), repeatWidths(2, 7), repeatWidths(1, 7)),
	concatWidths(repeatWidths(1, 14), repeatWidths(2, 7)),
	repeatWidths(2, 14),
	concatWidths(repeatWidths(4, 1), repeatWidths(3, 8)),
	concatWidths(repeatWidths(3, 1), repeatWidths(4, 4), repeatWidths(3, 3)),
	repeatWidths(4, 7),
	concatWidths(repeatWidths(5, 4), repeatWidths(4, 2)),
	concatWidths(repeatWidths(4, 2), repeatWidths(5, 4)),
	concatWidths(repeatWidths(6, 3), repeatWidths(5, 2)),
	concatWidths(repeatWidths(5, 2), repeatWidths(6, 3)),
	repeatWidths(7, 4),
	concatWidths(repeatWidths(10, 1), repeatWidths(9, 2)),
	repeatWidths(14, 2),
	repeatWidths(28, 1),
}

func repeatWidths(width, count int) []int {
	ws := make([]int, count)
	for i := range ws {
		ws[i] = width
	}
	return ws
}

func concatWidths(parts ...[]int) []int {
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

const s16MaxValue = 1<<28 - 1

func (s16Codec) Scheme() Scheme   { return S16 }
func (s16Codec) MaxValue() uint32 { return s16MaxValue }

func (s16Codec) Supports(values []uint32) bool {
	for _, v := range values {
		if v > s16MaxValue {
			return false
		}
	}
	return true
}

// s16Fit reports how many of the pending values fit mode m (greedy, in
// order). A mode "fits" k values when k = min(len(mode), len(pending)) and
// each of the first k values fits its field. Modes that cannot take all
// their slots are still usable at the end of a stream (remaining fields are
// zero-padded).
func s16Fit(mode []int, pending []uint32) int {
	k := len(mode)
	if len(pending) < k {
		k = len(pending)
	}
	for i := 0; i < k; i++ {
		if bitWidth(pending[i]) > mode[i] {
			return -1
		}
	}
	return k
}

func (s16Codec) Encode(dst []byte, values []uint32) []byte {
	pending := values
	for len(pending) > 0 {
		// Pick the mode packing the most values into this word.
		bestMode, bestK := -1, -1
		for m, widths := range s16Modes {
			if k := s16Fit(widths, pending); k > bestK {
				bestMode, bestK = m, k
			}
		}
		if bestK <= 0 {
			panic("compress: S16 value out of range")
		}
		var word uint32 = uint32(bestMode) << 28
		shift := 0
		widths := s16Modes[bestMode]
		for i := 0; i < bestK; i++ {
			word |= pending[i] << uint(shift)
			shift += widths[i]
		}
		dst = binary.LittleEndian.AppendUint32(dst, word)
		pending = pending[bestK:]
	}
	return dst
}

func (s16Codec) Decode(dst []uint32, src []byte, n int) ([]uint32, int) {
	pos := 0
	remaining := n
	for remaining > 0 {
		word := binary.LittleEndian.Uint32(src[pos:])
		pos += 4
		widths := s16Modes[word>>28]
		shift := 0
		for _, w := range widths {
			if remaining == 0 {
				break
			}
			dst = append(dst, (word>>uint(shift))&(1<<uint(w)-1))
			shift += w
			remaining--
		}
	}
	return dst, pos
}
