package compress

// S16FieldWidths returns a copy of the Simple16 selector table: for each of
// the 16 modes, the sequence of field widths within the 28 data bits. The
// programmable decompression module (internal/decomp) uses this table to
// configure its selector-word extractor.
func S16FieldWidths() [][]int {
	out := make([][]int, len(s16Modes))
	for i, widths := range s16Modes {
		out[i] = append([]int(nil), widths...)
	}
	return out
}

// S8bModeInfo describes one Simple8b selector: how many values at what
// width (width 0 encodes a run of zeros).
type S8bModeInfo struct {
	Count int
	Width int
}

// S8bModeTable returns a copy of the Simple8b selector table.
func S8bModeTable() []S8bModeInfo {
	out := make([]S8bModeInfo, len(s8bModes))
	for i, m := range s8bModes {
		out[i] = S8bModeInfo{Count: m.count, Width: m.width}
	}
	return out
}
