package compress

import (
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzRoundTrip drives every codec with arbitrary byte-derived value
// streams; any mismatch between Encode and Decode, or any panic, fails.
// Runs its seed corpus under plain `go test`; explore with
// `go test -fuzz=FuzzRoundTrip ./internal/compress`.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(0))
	f.Add([]byte{255, 255, 255, 255}, uint8(3))
	f.Add([]byte{}, uint8(5))
	f.Add([]byte{1, 0, 0, 0, 255, 255, 3, 9, 9, 9, 9, 9, 9, 9, 1}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, schemeSeed uint8) {
		scheme := AllSchemes()[int(schemeSeed)%len(AllSchemes())]
		codec := ForScheme(scheme)
		// Derive a bounded value stream from the fuzz input.
		n := len(raw) / 4
		if n > 255 {
			n = 255 // PFD block limit
		}
		values := make([]uint32, n)
		for i := range values {
			values[i] = binary.LittleEndian.Uint32(raw[i*4:])
			if values[i] > codec.MaxValue() {
				values[i] %= codec.MaxValue() + 1
			}
		}
		enc := codec.Encode(nil, values)
		got, used := codec.Decode(nil, enc, len(values))
		if used != len(enc) {
			t.Fatalf("%s: consumed %d of %d bytes", scheme, used, len(enc))
		}
		if len(values) == 0 {
			if len(got) != 0 {
				t.Fatalf("%s: decoded %d values from empty input", scheme, len(got))
			}
			return
		}
		if !reflect.DeepEqual(got, values) {
			t.Fatalf("%s: round trip mismatch", scheme)
		}
	})
}

// FuzzDeltaCodec checks DeltaEncode/DeltaDecode inverses on sorted streams.
func FuzzDeltaCodec(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint32(0))
	f.Fuzz(func(t *testing.T, raw []byte, base uint32) {
		base %= 1 << 20
		values := make([]uint32, len(raw)/2)
		acc := base
		for i := range values {
			acc += uint32(raw[i*2]) | uint32(raw[i*2+1])<<8
			values[i] = acc
		}
		orig := append([]uint32(nil), values...)
		DeltaEncode(values, base)
		DeltaDecode(values, base)
		if !reflect.DeepEqual(values, orig) {
			t.Fatal("delta round trip mismatch")
		}
	})
}
