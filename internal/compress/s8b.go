package compress

import "encoding/binary"

// s8bCodec implements Simple8b (Anh & Moffat, "Index compression using
// 64-bit words"): values are packed into 64-bit words, each with a 4-bit
// selector and 60 data bits. Two special selectors encode runs of 240 and
// 120 zeros in a single word.
type s8bCodec struct{}

// s8bMode describes one selector: how many values and at what width.
type s8bMode struct {
	count int
	width int
}

var s8bModes = [16]s8bMode{
	{240, 0},
	{120, 0},
	{60, 1},
	{30, 2},
	{20, 3},
	{15, 4},
	{12, 5},
	{10, 6},
	{8, 7},
	{7, 8},
	{6, 10},
	{5, 12},
	{4, 15},
	{3, 20},
	{2, 30},
	{1, 60},
}

func (s8bCodec) Scheme() Scheme   { return S8b }
func (s8bCodec) MaxValue() uint32 { return ^uint32(0) }

func (s8bCodec) Supports(values []uint32) bool { return true } // uint32 < 2^60 always

// s8bFit reports how many pending values selector sel can take (greedy).
// Returns -1 if the first min(count, len(pending)) values do not all fit.
func s8bFit(sel int, pending []uint32) int {
	m := s8bModes[sel]
	k := m.count
	if len(pending) < k {
		k = len(pending)
	}
	for i := 0; i < k; i++ {
		if bitWidth(pending[i]) > m.width {
			return -1
		}
	}
	return k
}

func (s8bCodec) Encode(dst []byte, values []uint32) []byte {
	pending := values
	for len(pending) > 0 {
		bestSel, bestK := -1, -1
		for sel := range s8bModes {
			if k := s8bFit(sel, pending); k > bestK {
				bestSel, bestK = sel, k
			}
		}
		if bestK <= 0 {
			panic("compress: S8b value out of range")
		}
		m := s8bModes[bestSel]
		word := uint64(bestSel) << 60
		shift := 0
		for i := 0; i < bestK && m.width > 0; i++ {
			word |= uint64(pending[i]) << uint(shift)
			shift += m.width
		}
		dst = binary.LittleEndian.AppendUint64(dst, word)
		pending = pending[bestK:]
	}
	return dst
}

func (s8bCodec) Decode(dst []uint32, src []byte, n int) ([]uint32, int) {
	pos := 0
	remaining := n
	for remaining > 0 {
		word := binary.LittleEndian.Uint64(src[pos:])
		pos += 8
		m := s8bModes[word>>60]
		if m.width == 0 {
			k := m.count
			if k > remaining {
				k = remaining
			}
			for i := 0; i < k; i++ {
				dst = append(dst, 0)
			}
			remaining -= k
			continue
		}
		mask := uint64(1)<<uint(m.width) - 1
		shift := 0
		for i := 0; i < m.count && remaining > 0; i++ {
			dst = append(dst, uint32((word>>uint(shift))&mask))
			shift += m.width
			remaining--
		}
	}
	return dst, pos
}
