package compress

import "sync"

// pfdScratch holds the per-call encode scratch (low-bits area and exception
// staging). Index builds encode every block through ChooseBest and the
// selected codec, so this path runs hot; pooling keeps it allocation-free.
type pfdScratch struct {
	low    []uint32
	excPos []byte
	excVal []uint32
}

var pfdScratchPool = sync.Pool{New: func() any { return new(pfdScratch) }}

// pfdCodec implements PForDelta (PFD) and its OptPFD variant.
//
// Layout:
//
//	[b:1][nExc:1][exc positions: nExc bytes][packed low b bits of all n
//	values][exception high bits, VB-encoded]
//
// The main area stores the low b bits of every value. Values wider than b
// bits are exceptions: their position (block-relative, < 256 since blocks
// hold at most 128 values) is listed in the header and the bits above b are
// VB-encoded in the tail.
//
// PFD picks the smallest b covering at least 90% of the values (the classic
// heuristic from Zukowski et al.); OptPFD picks the b that minimizes the
// exact encoded size (Yan, Ding & Suel).
type pfdCodec struct {
	opt bool
}

func (c pfdCodec) Scheme() Scheme {
	if c.opt {
		return OptPFD
	}
	return PFD
}

func (pfdCodec) Supports(values []uint32) bool { return len(values) <= 255 }
func (pfdCodec) MaxValue() uint32              { return ^uint32(0) }

// pfdSize reports the exact encoded size for width b, and the exception
// count.
func pfdSize(values []uint32, b int) (size, nExc int) {
	size = 2 + packedLen(len(values), b)
	for _, v := range values {
		if bitWidth(v) > b {
			nExc++
			size++ // position byte
			size += vbLen(v >> uint(b))
		}
	}
	return size, nExc
}

// chooseB selects the bit width according to the codec's policy.
func (c pfdCodec) chooseB(values []uint32) int {
	maxW := maxBitWidth(values)
	if len(values) == 0 {
		return 0
	}
	if c.opt {
		bestB, bestSize := maxW, -1
		for b := 0; b <= maxW; b++ {
			size, nExc := pfdSize(values, b)
			if nExc > 255 {
				continue
			}
			if bestSize < 0 || size < bestSize {
				bestB, bestSize = b, size
			}
		}
		return bestB
	}
	// Classic PFD: smallest b such that >= 90% of values fit.
	// Count values per bit width.
	var byWidth [33]int
	for _, v := range values {
		byWidth[bitWidth(v)]++
	}
	need := (len(values)*9 + 9) / 10 // ceil(0.9 * n)
	covered := 0
	for b := 0; b <= 32; b++ {
		covered += byWidth[b]
		if covered >= need {
			if _, nExc := pfdSize(values, b); nExc <= 255 {
				return b
			}
		}
	}
	return maxW
}

func (c pfdCodec) Encode(dst []byte, values []uint32) []byte {
	if len(values) > 255 {
		panic("compress: PFD block larger than 255 values")
	}
	b := c.chooseB(values)
	mask := uint32(0)
	if b > 0 {
		mask = 1<<uint(b) - 1
	}
	sc := pfdScratchPool.Get().(*pfdScratch)
	low := sc.low[:0]
	excPos := sc.excPos[:0]
	excVal := sc.excVal[:0]
	for i, v := range values {
		low = append(low, v&mask)
		if bitWidth(v) > b {
			excPos = append(excPos, byte(i))
			excVal = append(excVal, v>>uint(b))
		}
	}
	dst = append(dst, byte(b), byte(len(excPos)))
	dst = append(dst, excPos...)
	dst = packBits(dst, low, b)
	for _, hv := range excVal {
		dst = appendVB(dst, hv)
	}
	sc.low, sc.excPos, sc.excVal = low, excPos, excVal
	pfdScratchPool.Put(sc)
	return dst
}

func (c pfdCodec) Decode(dst []uint32, src []byte, n int) ([]uint32, int) {
	b := int(src[0])
	nExc := int(src[1])
	pos := 2
	excPos := src[pos : pos+nExc]
	pos += nExc
	start := len(dst)
	dst, used := unpackBits(dst, src[pos:], n, b)
	pos += used
	for _, ep := range excPos {
		var hv uint32
		for {
			by := src[pos]
			pos++
			hv = hv<<7 | uint32(by&0x7F)
			if by&0x80 != 0 {
				break
			}
		}
		dst[start+int(ep)] |= hv << uint(b)
	}
	return dst, pos
}
