package compress

// vbCodec implements VariableByte (VB): each value is split into 7-bit
// groups, most-significant group first; the final byte of a value has its
// high bit set. This matches the accumulate-then-terminate datapath the
// BOSS decompression module is configured with in the paper's Figure 8
// (payload = byte & 0x7F accumulated as reg<<7 + payload; the MSB marks the
// value boundary).
type vbCodec struct{}

func (vbCodec) Scheme() Scheme                { return VB }
func (vbCodec) Supports(values []uint32) bool { return true }
func (vbCodec) MaxValue() uint32              { return ^uint32(0) }

func (vbCodec) Encode(dst []byte, values []uint32) []byte {
	for _, v := range values {
		dst = appendVB(dst, v)
	}
	return dst
}

// appendVB appends one VB-encoded value.
func appendVB(dst []byte, v uint32) []byte {
	// Emit most-significant groups first.
	switch {
	case v < 1<<7:
		return append(dst, byte(v)|0x80)
	case v < 1<<14:
		return append(dst, byte(v>>7), byte(v&0x7F)|0x80)
	case v < 1<<21:
		return append(dst, byte(v>>14), byte(v>>7)&0x7F, byte(v&0x7F)|0x80)
	case v < 1<<28:
		return append(dst, byte(v>>21), byte(v>>14)&0x7F, byte(v>>7)&0x7F, byte(v&0x7F)|0x80)
	default:
		return append(dst, byte(v>>28), byte(v>>21)&0x7F, byte(v>>14)&0x7F, byte(v>>7)&0x7F, byte(v&0x7F)|0x80)
	}
}

// vbLen reports the encoded length of one value without encoding it.
func vbLen(v uint32) int {
	switch {
	case v < 1<<7:
		return 1
	case v < 1<<14:
		return 2
	case v < 1<<21:
		return 3
	case v < 1<<28:
		return 4
	default:
		return 5
	}
}

func (vbCodec) Decode(dst []uint32, src []byte, n int) ([]uint32, int) {
	pos := 0
	for i := 0; i < n; i++ {
		var v uint32
		for {
			b := src[pos]
			pos++
			v = v<<7 | uint32(b&0x7F)
			if b&0x80 != 0 {
				break
			}
		}
		dst = append(dst, v)
	}
	return dst, pos
}
