// Package compress implements the inverted-index compression schemes
// evaluated by the BOSS paper: Bit-Packing (BP), VariableByte (VB),
// PForDelta (PFD), OptPForDelta (OptPFD), Simple16 (S16) and Simple8b (S8b),
// plus the "hybrid" strategy that picks the best scheme per posting list.
//
// All codecs encode small non-negative integers (typically docID deltas, also
// called d-gaps). Encoding operates on a slice of uint32 values and produces
// a self-contained byte payload; decoding requires the value count, which the
// index stores in per-block metadata exactly as the paper's hardware does.
package compress

import (
	"fmt"
	"math/bits"
	"sync"
)

// Scheme identifies a compression scheme.
type Scheme uint8

// The supported schemes. SchemeHybrid is a meta-scheme: the index picks the
// best concrete scheme per posting list and records the choice.
const (
	BP Scheme = iota
	VB
	PFD
	OptPFD
	S16
	S8b
	numSchemes

	SchemeHybrid Scheme = 0xFF
)

// String returns the scheme's conventional short name.
func (s Scheme) String() string {
	switch s {
	case BP:
		return "BP"
	case VB:
		return "VB"
	case PFD:
		return "PFD"
	case OptPFD:
		return "OptPFD"
	case S16:
		return "S16"
	case S8b:
		return "S8b"
	case SchemeHybrid:
		return "Hybrid"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// Codec encodes and decodes a block of integers.
type Codec interface {
	// Scheme reports which scheme this codec implements.
	Scheme() Scheme
	// Encode appends the encoded form of values to dst and returns the
	// extended slice. Encode panics if a value cannot be represented
	// (use Supports to check first).
	Encode(dst []byte, values []uint32) []byte
	// Decode reads n values from src, appending them to dst. It returns the
	// extended slice and the number of bytes consumed.
	Decode(dst []uint32, src []byte, n int) ([]uint32, int)
	// Supports reports whether every value in values is representable.
	Supports(values []uint32) bool
	// MaxValue reports the largest representable value.
	MaxValue() uint32
}

// ForScheme returns the codec implementing scheme. It panics on
// SchemeHybrid (hybrid is a selection policy, not a codec) and on unknown
// schemes.
func ForScheme(s Scheme) Codec {
	switch s {
	case BP:
		return bpCodec{}
	case VB:
		return vbCodec{}
	case PFD:
		return pfdCodec{opt: false}
	case OptPFD:
		return pfdCodec{opt: true}
	case S16:
		return s16Codec{}
	case S8b:
		return s8bCodec{}
	default:
		panic("compress: no codec for scheme " + s.String())
	}
}

// AllSchemes lists every concrete scheme in a stable order.
func AllSchemes() []Scheme {
	return []Scheme{BP, VB, PFD, OptPFD, S16, S8b}
}

// sizingBufPool recycles the throwaway byte buffers EncodedSize and
// ChooseBest encode into. Hybrid index builds size every block under every
// candidate scheme, so these buffers otherwise dominate build allocations.
var sizingBufPool = sync.Pool{New: func() any { return new([]byte) }}

// EncodedSize reports the number of bytes scheme uses for values.
func EncodedSize(s Scheme, values []uint32) int {
	bufp := sizingBufPool.Get().(*[]byte)
	buf := ForScheme(s).Encode((*bufp)[:0], values)
	n := len(buf)
	*bufp = buf
	sizingBufPool.Put(bufp)
	return n
}

// ChooseBest returns the concrete scheme with the smallest encoding for
// values, considering only schemes that can represent every value. Ties go to
// the earlier scheme in AllSchemes order. candidates may be nil, meaning all
// schemes.
func ChooseBest(values []uint32, candidates []Scheme) (Scheme, int) {
	if candidates == nil {
		candidates = AllSchemes()
	}
	best := Scheme(0xFE)
	bestSize := -1
	bufp := sizingBufPool.Get().(*[]byte)
	for _, s := range candidates {
		c := ForScheme(s)
		if !c.Supports(values) {
			continue
		}
		buf := c.Encode((*bufp)[:0], values)
		size := len(buf)
		*bufp = buf
		if bestSize < 0 || size < bestSize {
			best, bestSize = s, size
		}
	}
	sizingBufPool.Put(bufp)
	if bestSize < 0 {
		// Every value fits VB (full uint32 range), so this cannot happen
		// unless candidates excluded all viable schemes.
		panic("compress: no candidate scheme supports the values")
	}
	return best, bestSize
}

// CompressionRatio reports raw size (4 bytes per value) divided by encoded
// size. Larger is better. A zero encodedSize reports 0.
func CompressionRatio(valueCount, encodedSize int) float64 {
	if encodedSize <= 0 {
		return 0
	}
	return float64(4*valueCount) / float64(encodedSize)
}

// DeltaEncode rewrites sorted values in place as d-gaps: out[0] = in[0]-base,
// out[i] = in[i]-in[i-1]. It panics if the input is not non-decreasing from
// base (inverted-index docIDs are strictly increasing, but ties are
// tolerated here so the function is usable for tf streams too).
func DeltaEncode(values []uint32, base uint32) {
	prev := base
	for i, v := range values {
		if v < prev {
			panic(fmt.Sprintf("compress: DeltaEncode input not sorted at %d: %d < %d", i, v, prev))
		}
		values[i] = v - prev
		prev = v
	}
}

// DeltaDecode is the inverse of DeltaEncode.
func DeltaDecode(deltas []uint32, base uint32) {
	prev := base
	for i, d := range deltas {
		prev += d
		deltas[i] = prev
	}
}

// bitWidth reports the number of bits needed to represent v (0 for v==0).
func bitWidth(v uint32) int {
	return bits.Len32(v)
}

// maxBitWidth reports the widest bitWidth over values.
func maxBitWidth(values []uint32) int {
	w := 0
	for _, v := range values {
		if bw := bitWidth(v); bw > w {
			w = bw
		}
	}
	return w
}

// packBits appends values packed at width bits each (LSB-first within a
// little-endian bit stream) to dst. width may be 0 (nothing appended).
func packBits(dst []byte, values []uint32, width int) []byte {
	if width == 0 {
		return dst
	}
	var acc uint64
	accBits := 0
	for _, v := range values {
		acc |= uint64(v&((1<<uint(width))-1)) << uint(accBits)
		accBits += width
		for accBits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			accBits -= 8
		}
	}
	if accBits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// unpackBits reads n values of width bits from src, appending to dst. It
// returns the extended slice and bytes consumed. width may be 0, producing n
// zeros and consuming nothing.
func unpackBits(dst []uint32, src []byte, n, width int) ([]uint32, int) {
	if width == 0 {
		for i := 0; i < n; i++ {
			dst = append(dst, 0)
		}
		return dst, 0
	}
	mask := uint64(1)<<uint(width) - 1
	var acc uint64
	accBits := 0
	pos := 0
	for i := 0; i < n; i++ {
		for accBits < width {
			acc |= uint64(src[pos]) << uint(accBits)
			pos++
			accBits += 8
		}
		dst = append(dst, uint32(acc&mask))
		acc >>= uint(width)
		accBits -= width
	}
	return dst, pos
}

// packedLen reports the byte length of n values packed at width bits.
func packedLen(n, width int) int {
	return (n*width + 7) / 8
}
