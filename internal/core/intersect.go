package core

import (
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/sim"
)

// Spill-stall bandwidths for the SpillIntermediates ablation (the paper's
// Table I SCM figures; the ablation models an IIU-style design point on the
// same device).
const (
	scmWriteGBs   = 9.2
	scmSeqReadGBs = 25.6
)

// intersect runs the pipelined intersection path over a conjunction of
// posting lists: Small-versus-Small ordering, mutual block-overlap checking
// in the block-fetch module, and iterative passes whose intermediate
// results stay on-chip (no memory spills — the paper's key difference from
// IIU). Returns the matched documents with per-term postings, sorted by
// docID.
func (r *run) intersect(pls []*index.PostingList) []match {
	if cap(r.ordScratch) < len(pls) {
		r.ordScratch = make([]*index.PostingList, len(pls))
	}
	ordered := r.ordScratch[:0]
	ordered = append(ordered, pls...)
	// Stable insertion sort by DF: conjuncts hold at most MaxQueryTerms
	// lists, and — unlike sort.SliceStable — this never allocates.
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].DF < ordered[j-1].DF; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}

	if len(ordered) == 1 {
		return r.scanList(ordered[0])
	}
	out := r.firstPass(ordered[0], ordered[1])
	for _, pl := range ordered[2:] {
		if len(out) == 0 || r.err != nil {
			return out
		}
		if r.acc.opts.SpillIntermediates {
			// Ablation: round-trip the intermediate through memory instead
			// of feeding it back through the on-chip pipeline. The spill
			// serializes the passes — the next pass cannot start until the
			// store completes and the reload returns — so the round trip
			// is charged as non-overlapped time on top of the traffic.
			bytes := int64(len(out)) * resultEntryBytes
			r.m.AddWrite(bytes, mem.CatStoreInter)
			r.m.AddSeqRead(bytes, mem.CatLoadInter)
			r.m.SerialFetchHops += 2 // store drain + reload latency
			stall := sim.FromSeconds(float64(bytes)/(scmWriteGBs*1e9) +
				float64(bytes)/(scmSeqReadGBs*1e9))
			r.m.AddCompute(stall)
		}
		out = r.nextPass(out, pl)
	}
	return out
}

// scanList streams one whole posting list (a single-term conjunct inside a
// mixed query).
func (r *run) scanList(pl *index.PostingList) []match {
	bi, out := r.grabMatchBuf()
	ls := r.stateFor(pl)
	var mc int64
	for b := range pl.Blocks {
		bd := r.fetchBlock(ls, pl, b)
		if bd == nil {
			break // r.err latched; unwind with what we have
		}
		for i := range bd.docs {
			mc++
			terms := r.allocTerms(1)
			terms = append(terms, termTF{pl: pl, tf: bd.tfs[i]})
			out = append(out, match{doc: bd.docs[i], terms: terms})
		}
	}
	r.mergeCycles += float64(mc)
	r.putMatchBuf(bi, out)
	return out
}

// firstPass intersects two posting lists with mutual block-overlap
// checking: a block loads only if its docID range overlaps the other
// list's current block (Figure 5(a)).
func (r *run) firstPass(a, b *index.PostingList) []match {
	bufI, out := r.grabMatchBuf()
	lsA, lsB := r.stateFor(a), r.stateFor(b)
	i, j := 0, 0
	var A, B *blockData
	posA, posB := 0, 0
	metaA, metaB := -1, -1 // last block charged per list (chargeMeta memo)
	var mc int64
	for i < len(a.Blocks) && j < len(b.Blocks) {
		am, bm := &a.Blocks[i], &b.Blocks[j]
		if i != metaA {
			r.chargeMeta(lsA, i)
			metaA = i
		}
		if j != metaB {
			r.chargeMeta(lsB, j)
			metaB = j
		}
		if am.LastDoc < bm.FirstDoc {
			if A == nil {
				r.m.BlocksSkipped++
			}
			i++
			A, posA = nil, 0
			continue
		}
		if bm.LastDoc < am.FirstDoc {
			if B == nil {
				r.m.BlocksSkipped++
			}
			j++
			B, posB = nil, 0
			continue
		}
		if A == nil {
			if A = r.fetchBlock(lsA, a, i); A == nil {
				break // r.err latched
			}
		}
		if B == nil {
			if B = r.fetchBlock(lsB, b, j); B == nil {
				break // r.err latched
			}
		}
		for posA < len(A.docs) && posB < len(B.docs) {
			mc++
			da, db := A.docs[posA], B.docs[posB]
			switch {
			case da < db:
				posA++
			case da > db:
				posB++
			default:
				terms := r.allocTerms(2)
				terms = append(terms, termTF{pl: a, tf: A.tfs[posA]}, termTF{pl: b, tf: B.tfs[posB]})
				out = append(out, match{doc: da, terms: terms})
				posA++
				posB++
			}
		}
		if posA >= len(A.docs) {
			i++
			A, posA = nil, 0
		}
		if posB >= len(B.docs) {
			j++
			B, posB = nil, 0
		}
	}
	r.mergeCycles += float64(mc)
	r.putMatchBuf(bufI, out)
	return out
}

// nextPass intersects the on-chip intermediate result with the next posting
// list: intermediate docIDs feed the block-fetch module, which loads only
// blocks containing at least one candidate (Figure 5(b)).
func (r *run) nextPass(candidates []match, c *index.PostingList) []match {
	// Surviving matches compact in place over the candidate slice: at most
	// one match is written per candidate consumed, and the range loop copies
	// each candidate out before the write can land on it.
	out := candidates[:0]
	lsC := r.stateFor(c)
	ci := 0
	var C *blockData
	posC := 0
	metaC := -1 // last block charged (chargeMeta memo)
	var mc int64
	for _, cand := range candidates {
		for ci < len(c.Blocks) {
			if ci != metaC {
				r.chargeMeta(lsC, ci)
				metaC = ci
			}
			if c.Blocks[ci].LastDoc >= cand.doc {
				break
			}
			if C == nil {
				r.m.BlocksSkipped++
			}
			ci++
			C, posC = nil, 0
		}
		if ci >= len(c.Blocks) {
			break
		}
		if c.Blocks[ci].FirstDoc > cand.doc {
			continue // candidate falls in a gap: not in the list
		}
		if C == nil {
			if C = r.fetchBlock(lsC, c, ci); C == nil {
				break // r.err latched
			}
		}
		for posC < len(C.docs) && C.docs[posC] < cand.doc {
			posC++
			mc++
		}
		mc++
		if posC < len(C.docs) && C.docs[posC] == cand.doc {
			terms := r.allocTerms(len(cand.terms) + 1)
			terms = append(terms, cand.terms...)
			terms = append(terms, termTF{pl: c, tf: C.tfs[posC]})
			out = append(out, match{doc: cand.doc, terms: terms})
		}
	}
	r.mergeCycles += float64(mc)
	return out
}

// mixed executes a mixed query as the paper prescribes: intersections
// first (one pipelined intersection per DNF conjunct, all sharing the block
// cache so common terms load once), then an on-chip union of the conjunct
// outputs with per-term de-duplication, then scoring and top-k.
func (r *run) mixed(conjuncts [][]*index.PostingList) {
	lists := make([][]match, 0, len(conjuncts))
	var maxMerge float64
	for _, conj := range conjuncts {
		before := r.mergeCycles
		lists = append(lists, r.intersect(conj))
		// The intersection module's three units run conjuncts
		// concurrently: the slowest one bounds the stage.
		delta := r.mergeCycles - before
		r.mergeCycles = before
		if delta > maxMerge {
			maxMerge = delta
		}
		if r.err != nil {
			return // failed query: skip the union of partial outputs
		}
	}
	r.mergeCycles += maxMerge
	r.mergeConjuncts(lists)
}

// mergeConjuncts merges sorted conjunct outputs by docID, de-duplicating
// term contributions so a document matched by several conjuncts is scored
// once with each distinct term. Merged documents are scored as they emerge
// (docID order, same as a materialize-then-scoreAll pass) so the merge
// never allocates a combined match list.
func (r *run) mergeConjuncts(lists [][]match) {
	if cap(r.mergePos) < len(lists) {
		r.mergePos = make([]int, len(lists))
	}
	pos := r.mergePos[:len(lists)]
	for i := range pos {
		pos[i] = 0
	}
	var mc int64
	for {
		best := -1
		var bestDoc uint32
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if d := l[pos[i]].doc; best < 0 || d < bestDoc {
				best, bestDoc = i, d
			}
		}
		if best < 0 {
			r.mergeCycles += float64(mc)
			return
		}
		terms := r.terms[:0]
		for i, l := range lists {
			if pos[i] < len(l) && l[pos[i]].doc == bestDoc {
				for _, tt := range l[pos[i]].terms {
					if !hasTerm(terms, tt.pl) {
						terms = append(terms, tt)
					}
				}
				pos[i]++
				mc++
			}
		}
		r.terms = terms
		r.scoreDoc(bestDoc, terms)
	}
}

func hasTerm(terms []termTF, pl *index.PostingList) bool {
	for _, t := range terms {
		if t.pl == pl {
			return true
		}
	}
	return false
}
