package core

import (
	"context"
	"fmt"

	"boss/internal/cache"
	"boss/internal/docstore"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/sim"
)

// This file is the fetch phase of serving: after ranking ends at scored
// docIDs, the fetch engine loads, integrity-checks, and decodes the
// document-store blocks holding those documents, charging the simulated
// SCM exactly as the posting path charges posting blocks — sequential
// streams under mem.CatLoadDoc, one exposed device round trip per
// fetch-queue window, decode cycles on the pipeline. Decoded doc blocks
// are published to the shared block cache under cache.ClassDoc; a cache
// hit replays the recorded charges, so modeled figures are byte-identical
// with or without the host-side cache (only host work is saved), the
// same invariant the posting path maintains.

// docDecodeBytesPerCycle prices the byte-oriented LZ decode on the
// modeled pipeline: 8 decoded bytes per cycle (8 GB/s at the 1 GHz
// clock). Deterministic in the block's raw length, so hit-path replay
// and fresh decodes charge identically by construction.
const docDecodeBytesPerCycle = 8

// docDecodeCycles returns the modeled decode cost of one raw block.
func docDecodeCycles(rawLen int64) int64 {
	return (rawLen + docDecodeBytesPerCycle - 1) / docDecodeBytesPerCycle
}

// cyclesDuration converts pipeline cycles to simulated time at the
// accelerator clock.
func cyclesDuration(cyc int64) sim.Duration {
	return sim.Duration(float64(cyc) / clockGHz * float64(sim.Nanosecond))
}

// FetchEngine fetches documents from a block-compressed docstore.Store,
// optionally through the shared decoded-block cache. A FetchEngine is
// safe for concurrent use: all mutable per-fetch state lives in the
// caller's DocBuf and Metrics.
type FetchEngine struct {
	ds     *docstore.Store
	cache  *cache.Cache
	fault  *mem.Injector
	faultK uint64 // fault-injection namespace for this store's blocks
}

// NewFetchEngine returns a fetch engine over ds, publishing decoded
// blocks to c (nil c disables caching).
func NewFetchEngine(ds *docstore.Store, c *cache.Cache) *FetchEngine {
	return &FetchEngine{ds: ds, cache: c, faultK: mem.StableKey("docstore")}
}

// SetFault attaches a fault injector; doc-block reads then go through the
// same seeded fault model as posting-block reads.
func (e *FetchEngine) SetFault(inj *mem.Injector) { e.fault = inj }

// SetCache replaces the engine's decoded-block cache (nil disables
// caching). Not safe concurrently with fetches; setup-time only.
func (e *FetchEngine) SetCache(c *cache.Cache) { e.cache = c }

// Store returns the underlying document store.
func (e *FetchEngine) Store() *docstore.Store { return e.ds }

// Cache returns the attached cache (nil when uncached).
func (e *FetchEngine) Cache() *cache.Cache { return e.cache }

// DocBuf is a reusable, zero-copy view of one fetched document. Fields
// alias either a pinned cache entry or the buffer's own scratch; they are
// valid until the next FetchInto with this buffer or Release, whichever
// comes first. Release must be called when done (releasing the pin); a
// DocBuf must not be shared across goroutines.
type DocBuf struct {
	DocID  uint32
	Fields [][]byte // one slice per store field, in field order

	ent     *cache.Entry
	c       *cache.Cache
	scratch []byte // decode destination when the block isn't cache-resident
}

// Release drops the buffer's pin on the underlying cache entry, if any.
// The Fields slices must not be used afterwards. Safe to call repeatedly.
func (b *DocBuf) Release() {
	if b.ent != nil {
		b.c.Release(b.ent)
		b.ent = nil
	}
	b.Fields = b.Fields[:0]
}

// FetchInto fetches one document into buf, charging m with the simulated
// SCM fetch and decode work. On success buf.Fields holds one zero-copy
// slice per store field. Any prior pin held by buf is released first, so
// a loop reusing one buffer holds at most one block pinned.
//
//boss:hotpath the per-document fetch loop; the cache-hit arm allocates nothing.
func (e *FetchEngine) FetchInto(ctx context.Context, docID uint32, m *perf.Metrics, buf *DocBuf) error {
	if buf.ent != nil {
		buf.c.Release(buf.ent)
		buf.ent = nil
	}
	if ctx != nil {
		if cause := ctx.Err(); cause != nil {
			return ctxError(cause)
		}
	}
	ds := e.ds
	if int64(docID) >= int64(ds.NumDocs) {
		return failDocRange(docID, ds.NumDocs) //boss:escape-ok cold out-of-range error path
	}
	bi := ds.BlockOf(docID)
	meta := &ds.Blocks[bi]
	m.DocsFetched++

	ch := e.cache
	var ent *cache.Entry
	if ch != nil {
		ent = ch.Get(cache.Key{List: ds.ID(), Block: uint32(bi), Class: cache.ClassDoc})
	}

	// From here on every simulated charge is identical whether the decoded
	// block comes from the cache or from a fresh decode: the modeled device
	// has no DRAM block cache, so a host-side hit must replay the SCM
	// stream, the queue hop, and the decode cycles. Only host work — the
	// actual decompression — is saved.
	if inj := e.fault; inj != nil {
		if err := e.chargeFaultyDocRead(inj, meta, bi, m); err != nil {
			if ent != nil {
				ch.Release(ent)
			}
			return err
		}
	} else {
		m.AddSeqRead(int64(meta.CompLen), mem.CatLoadDoc)
	}
	m.DocBlocksFetched++
	// The fetch module keeps a bounded number of block requests in flight;
	// each windowful exposes one device read latency on the pipeline.
	if m.DocBlocksFetched%fetchQueueDepth == 0 {
		m.SerialFetchHops++
	}

	var raw []byte
	if ent != nil {
		m.AddCompute(cyclesDuration(ent.Cycles()))
		raw = ent.Data()
		buf.ent, buf.c = ent, ch
	} else {
		payload := ds.BlockPayload(bi)
		// Integrity gate: verify the payload CRC before decoding so media
		// corruption is detected and typed instead of silently served (and
		// never published to the shared cache).
		if docstore.ChecksumPayload(payload) != meta.Checksum {
			m.IntegrityFailures++
			return failDocCorrupt(bi) //boss:escape-ok cold corruption error path
		}
		cyc := docDecodeCycles(int64(meta.RawLen))
		n := int(meta.RawLen)
		if ch != nil {
			// Miss with a cache attached: decode straight into a cache-owned
			// byte slab and publish so the next fetch hits. A failed decode
			// releases the reserved (never published) entry.
			ce := ch.ReserveBytes(n)
			dst := ce.ByteBuf(n)
			if err := ds.DecodeBlock(dst, payload); err != nil {
				ch.Release(ce)
				return failDocDecode(bi, err) //boss:escape-ok cold decode-failure error path
			}
			ce = ch.PublishBytes(cache.Key{List: ds.ID(), Block: uint32(bi), Class: cache.ClassDoc}, ce, dst, cyc)
			raw = ce.Data()
			buf.ent, buf.c = ce, ch
		} else {
			if cap(buf.scratch) < n {
				buf.scratch = make([]byte, n) //boss:escape-ok scratch growth, amortized across fetches through one DocBuf
			}
			dst := buf.scratch[:n]
			if err := ds.DecodeBlock(dst, payload); err != nil {
				return failDocDecode(bi, err) //boss:escape-ok cold decode-failure error path
			}
			raw = dst
		}
		m.AddCompute(cyclesDuration(cyc))
	}

	fields, err := ds.AppendDoc(buf.Fields[:0], raw, int(docID)-int(meta.FirstDoc))
	if err != nil {
		buf.Release()
		return err
	}
	buf.DocID = docID
	buf.Fields = fields
	return nil
}

// chargeFaultyDocRead streams one doc block from the device under the
// fault injector, retrying transient faults inline exactly as the
// posting path's chargeFaultyRead does.
//
//boss:hotpath the fault-aware arm of the per-block doc fetch.
func (e *FetchEngine) chargeFaultyDocRead(inj *mem.Injector, meta *docstore.BlockMeta, b int, m *perf.Metrics) error {
	if inj.Dead() {
		return failDocDown(b) //boss:escape-ok cold device-down error path
	}
	for attempt := uint32(0); ; attempt++ {
		m.AddSeqRead(int64(meta.CompLen), mem.CatLoadDoc)
		switch inj.BlockFault(e.faultK, uint32(b), attempt) {
		case mem.FaultNone:
			return nil
		case mem.FaultUncorrectable:
			m.IntegrityFailures++
			return failDocMedia(b) //boss:escape-ok cold media-fault error path
		case mem.FaultDeviceDown:
			return failDocDown(b) //boss:escape-ok cold device-down error path
		default: // mem.FaultTransient
			m.TransientRetries++
			if attempt+1 >= maxFetchAttempts {
				return failDocTransient(b) //boss:escape-ok cold transient-exhausted error path
			}
		}
	}
}

// The failDoc* helpers build wrapped, typed errors. Outlined from the hot
// fetch path so it carries no fmt calls (hotpathalloc); they only run
// when a fetch is already failing.

func failDocRange(docID uint32, n int) error {
	return fmt.Errorf("core: fetch docID %d out of range (store holds %d documents)", docID, n)
}

func failDocCorrupt(b int) error {
	return fmt.Errorf("core: doc block %d: checksum mismatch: %w (%w)", b, docstore.ErrCorrupt, mem.ErrMediaUncorrectable)
}

func failDocDecode(b int, err error) error {
	return fmt.Errorf("core: doc block %d decode failed: %w (%w)", b, err, mem.ErrMediaUncorrectable)
}

func failDocMedia(b int) error {
	return fmt.Errorf("core: doc block %d: %w", b, mem.ErrMediaUncorrectable)
}

func failDocDown(b int) error {
	return fmt.Errorf("core: doc block %d: %w", b, mem.ErrDeviceDown)
}

func failDocTransient(b int) error {
	return fmt.Errorf("core: doc block %d: retries exhausted: %w", b, mem.ErrTransientRead)
}
