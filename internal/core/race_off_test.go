//go:build !race

package core

// raceEnabled reports whether the race detector instruments this build.
// Under -race the runtime intentionally randomizes sync.Pool reuse to
// surface races, so allocation-envelope pins are skipped there.
const raceEnabled = false
