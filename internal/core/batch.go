package core

import (
	"runtime"
	"sync"

	"boss/internal/perf"
	"boss/internal/query"
)

// BatchResult is the outcome of a concurrently executed query batch,
// mirroring engine.BatchResult so the software baseline and the accelerator
// model expose the same batch surface.
type BatchResult struct {
	// Results holds one Result per input query, in input order. A failed
	// query leaves a zero-value Result; consult Errs to distinguish it from
	// an empty result.
	Results []Result
	// Errs holds one entry per input query (nil for successes).
	Errs []error
	// Err is the first error in input order (remaining queries still run).
	Err error
	// Aggregate merges every successful query's work metrics.
	Aggregate *perf.Metrics
}

// RunBatch executes queries concurrently on the given number of worker
// goroutines (0 = GOMAXPROCS), modeling a device whose cores each own one
// in-flight query. Results preserve input order and are bit-identical to
// running each query serially: the accelerator is stateless, so concurrent
// runs cannot observe each other.
func (a *Accelerator) RunBatch(nodes []*query.Node, k, workers int) *BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers < 1 {
		workers = 1
	}
	br := &BatchResult{
		Results:   make([]Result, len(nodes)),
		Errs:      make([]error, len(nodes)),
		Aggregate: perf.NewMetrics(),
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Workers write only their own indices, so no lock is needed.
			for i := range next {
				br.Results[i], br.Errs[i] = a.Run(nodes[i], k)
			}
		}()
	}
	for i := range nodes {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, r := range br.Results {
		if br.Errs[i] == nil && r.M != nil {
			br.Aggregate.Merge(r.M)
		}
		if br.Errs[i] != nil && br.Err == nil {
			br.Err = br.Errs[i]
		}
	}
	return br
}
