package core

import (
	"context"
	"fmt"
	"math"

	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/score"
)

// The sparse-dot (Q7) family executes with the MaxScore pruning operator:
// posting lists are ordered by their dequantized list-wide maximum impact
// and split, against the running top-k threshold, into an essential set
// (streamed document-at-a-time; these drive candidate selection) and a
// non-essential set (probed per candidate, skipping via block metadata
// and per-block maximum impacts, often without fetching a single block).
// A document appearing only in non-essential lists can never beat the
// threshold, so candidates come from essential lists alone — that is the
// operator's entire savings, and it is exact: a candidate is abandoned
// only when a strict upper bound on its total score is below the cutoff,
// so the produced top-k is byte-identical to exhaustive evaluation.

// sstream is one term's posting-list stream inside the sparse path.
type sstream struct {
	pl      *index.PostingList
	ls      *listState // the run's bookkeeping record for pl
	ub      float64    // dequantized list-wide maximum impact
	bi      int        // current block index
	bd      *blockData // decoded block, nil when not (yet) loaded
	imps    []byte     // current block's impact codes (aliases pl.Data)
	pos     int        // cursor within bd
	charged int        // last block index charged via chargeMeta (memo)
}

// SparsePlan describes the essential/non-essential partition the MaxScore
// operator would choose for a sparse query at a given top-k threshold —
// the introspection cmd/bossquery prints. Terms are sorted by ascending
// list bound, the operator's working order.
type SparsePlan struct {
	Terms     []SparseTermInfo
	Essential int // Terms[Essential:] are essential at the given threshold
}

// SparseTermInfo is one term's entry in a SparsePlan.
type SparseTermInfo struct {
	Term      string
	MaxImpact float64 // dequantized list-wide maximum impact
	Prefix    float64 // cumulative bound of this and all lower-bound terms
}

// PlanSparse resolves a sparse query's terms and reports the MaxScore
// partition at the given threshold (use 0 for a cold top-k). Terms
// missing impacts or not indexed fail exactly like RunSparse.
func (a *Accelerator) PlanSparse(terms []string, threshold float64) (*SparsePlan, error) {
	lists, err := a.planSparse(terms)
	if err != nil {
		return nil, err
	}
	infos := make([]SparseTermInfo, len(lists))
	for i, pl := range lists {
		infos[i] = SparseTermInfo{
			Term:      pl.Term,
			MaxImpact: score.Impact(pl.MaxImpact, pl.ImpactStep).Float(),
		}
	}
	sort := func(s []SparseTermInfo) {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j].MaxImpact < s[j-1].MaxImpact; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
	}
	sort(infos)
	acc := 0.0
	ess := 0
	for i := range infos {
		acc += infos[i].MaxImpact
		infos[i].Prefix = acc
		if infos[i].Prefix < threshold {
			ess = i + 1
		}
	}
	return &SparsePlan{Terms: infos, Essential: ess}, nil
}

// planSparse resolves sparse-query terms to impact-enabled posting lists.
func (a *Accelerator) planSparse(terms []string) ([]*index.PostingList, error) {
	lists := make([]*index.PostingList, len(terms))
	for i, t := range terms {
		pl := a.idx.List(t)
		if pl == nil {
			return nil, fmt.Errorf("core: term %q not indexed", t)
		}
		if !pl.HasImpacts() {
			return nil, fmt.Errorf("core: term %q: %w", t, ErrNoImpacts)
		}
		lists[i] = pl
	}
	return lists, nil
}

// runSparse executes a sparse-dot query: resolve lists, swap in the
// impact-read scorer, and drive the MaxScore operator. The result-traffic
// and compute charges mirror runDNF's.
func (a *Accelerator) runSparse(ctx context.Context, terms []string, k int) (Result, error) {
	if ctx != nil {
		if cause := ctx.Err(); cause != nil {
			return Result{}, ctxError(cause)
		}
	}
	lists, err := a.planSparse(terms)
	if err != nil {
		return Result{}, err
	}
	r := a.newRun(k, len(lists))
	defer a.releaseRun(r)
	r.ctx = ctx
	r.scorer = &r.impact

	r.sparse(lists)
	if r.err != nil {
		return Result{}, r.err
	}

	results := r.sel.Results()
	outBytes := int64(len(results)) * resultEntryBytes
	if a.opts.HostTopK {
		outBytes = r.m.DocsEvaluated * resultEntryBytes
	}
	r.m.AddHostWrite(outBytes, mem.CatStoreResult)
	r.m.AddCompute(r.computeTime())
	return Result{TopK: results, M: r.m}, nil
}

// sparse runs the MaxScore driver loop over the query's posting lists.
// With DocET off (the exhaustive ablation) every list stays essential and
// the loop degenerates to a full scoring merge — the comparison baseline
// for the pruning bench.
//
//boss:hotpath the sparse-path driver loop; scratch lives on the run record.
func (r *run) sparse(pls []*index.PostingList) {
	n := len(pls)
	if cap(r.sstreams) < n {
		r.sstreams = make([]sstream, n) //boss:escape-ok stream-scratch growth, amortized across queries on one run
	}
	if cap(r.sorder) < n {
		r.sorder = make([]*sstream, 0, n) //boss:escape-ok stream-scratch growth, amortized across queries on one run
	}
	if cap(r.sprefix) < n {
		r.sprefix = make([]float64, 0, n) //boss:escape-ok bound-scratch growth, amortized across queries on one run
	}
	r.sstreams = r.sstreams[:n]
	order := r.sorder[:0]
	for i, pl := range pls {
		r.sstreams[i] = sstream{pl: pl, ls: r.stateFor(pl), ub: score.Impact(pl.MaxImpact, pl.ImpactStep).Float(), charged: -1} //boss:escape-ok free-list miss inside inlined stateFor, recycled via lsFree
		order = append(order, &r.sstreams[i])
	}
	sortByBound(order)
	r.sorder = order
	// prefix[i] bounds the total contribution of order[:i+1]: the largest
	// score a document matching only those lists could reach. All bounds
	// are dequantized Q16.16 values (dyadic rationals far below 2^53), so
	// the float sums and comparisons below are exact.
	prefix := r.sprefix[:n]
	acc := 0.0
	for i, s := range order {
		acc += s.ub
		prefix[i] = acc
	}

	for {
		// Partition against the current threshold: lists whose cumulative
		// bound cannot reach the cutoff are non-essential. Strict <, so
		// cutoff ties are never pruned (they are scored and lose the
		// top-k tie-break exactly as in exhaustive order).
		cut := math.Inf(-1)
		ess := 0
		if r.acc.opts.DocET && r.sel.Full() {
			cut = r.cutoff()
			for ess < n && prefix[ess] < cut {
				ess++
			}
			if ess == n {
				return // even all lists together cannot beat the cutoff
			}
		}

		// The next candidate is the smallest upcoming docID across the
		// essential streams; loading their current blocks is what keeps
		// candidate selection exact.
		d := uint32(math.MaxUint32)
		live := false
		for _, s := range order[ess:] {
			if !r.sparseLoad(s) {
				if r.err != nil {
					return
				}
				continue
			}
			if nd := s.bd.docs[s.pos]; !live || nd < d {
				d = nd
				live = true
			}
		}
		if !live {
			return // essential streams exhausted; no remaining doc can win
		}
		r.mergeCycles += 1.5 // one selector decision per candidate

		// Essential contributions at d (integer accumulation).
		terms := r.terms[:0]
		var sum score.Fixed
		for _, s := range order[ess:] {
			if s.bd != nil && s.pos < len(s.bd.docs) && s.bd.docs[s.pos] == d {
				code := s.imps[s.pos]
				sum += score.Impact(code, s.pl.ImpactStep)
				terms = append(terms, termTF{pl: s.pl, tf: s.bd.tfs[s.pos], imp: code})
				s.pos++
			}
		}

		// Non-essential probes in descending-bound order: before each,
		// check whether even perfect matches in every remaining list
		// could reach the cutoff; abandon the candidate the moment they
		// cannot.
		abandoned := false
		for j := ess - 1; j >= 0; j-- {
			if r.sel.Full() && sum.Float()+prefix[j] < cut {
				abandoned = true
				break
			}
			s := order[j]
			rem := 0.0
			if j > 0 {
				rem = prefix[j-1]
			}
			code, abandon := r.sparseProbe(s, d, sum, rem, cut)
			if r.err != nil {
				return
			}
			if abandon {
				abandoned = true
				break
			}
			if code != 0 {
				sum += score.Impact(code, s.pl.ImpactStep)
				terms = append(terms, termTF{pl: s.pl, tf: s.bd.tfs[s.pos], imp: code})
			}
		}
		r.terms = terms
		if !abandoned {
			r.scoreDoc(d, terms)
		}
	}
}

// sparseLoad positions an essential stream on its next posting, fetching
// and decoding the current block if needed. Returns false when the stream
// is exhausted or the fetch failed (r.err latched).
//
//boss:hotpath once per essential stream per candidate selection.
func (r *run) sparseLoad(s *sstream) bool {
	for {
		if s.bi >= len(s.pl.Blocks) {
			return false
		}
		if s.bi != s.charged {
			r.chargeMeta(s.ls, s.bi)
			s.charged = s.bi
		}
		if s.bd == nil {
			s.bd = r.fetchBlock(s.ls, s.pl, s.bi)
			if s.bd == nil {
				return false // r.err latched; sparse loop unwinds
			}
			s.imps = s.pl.BlockImpacts(s.bi)
			s.pos = 0
		}
		if s.pos >= len(s.bd.docs) {
			s.bi++
			s.bd = nil
			s.pos = 0
			continue
		}
		return true
	}
}

// sparseProbe seeks a non-essential stream to candidate d and reads its
// impact code. Blocks wholly before d pass on metadata alone (counted
// skipped when never loaded); when d falls inside a block's range, the
// per-block maximum impact is checked first — if even it cannot lift the
// candidate to the cutoff the probe reports abandon without fetching.
// Returns (code, abandon); code 0 means d is absent from the list.
//
//boss:hotpath once per non-essential stream per surviving candidate.
func (r *run) sparseProbe(s *sstream, d uint32, sum score.Fixed, rem, cut float64) (uint8, bool) {
	for {
		if s.bi >= len(s.pl.Blocks) {
			return 0, false
		}
		if s.bi != s.charged {
			r.chargeMeta(s.ls, s.bi)
			s.charged = s.bi
		}
		blk := &s.pl.Blocks[s.bi]
		if blk.LastDoc < d {
			if s.bd == nil {
				r.m.BlocksSkipped++
			}
			s.bi++
			s.bd = nil
			s.pos = 0
			continue
		}
		if blk.FirstDoc > d {
			return 0, false // d sits in the gap before this block
		}
		if s.bd == nil {
			if r.acc.opts.BlockET && r.sel.Full() &&
				sum.Float()+score.Impact(blk.MaxImpact, s.pl.ImpactStep).Float()+rem < cut {
				// Even this block's best impact plus every remaining
				// list's bound cannot reach the cutoff: abandon the
				// candidate without fetching the block.
				return 0, true
			}
			s.bd = r.fetchBlock(s.ls, s.pl, s.bi)
			if s.bd == nil {
				return 0, false // r.err latched; sparse loop unwinds
			}
			s.imps = s.pl.BlockImpacts(s.bi)
			s.pos = 0
		}
		var mc int64
		for s.pos < len(s.bd.docs) && s.bd.docs[s.pos] < d {
			s.pos++
			mc++
		}
		r.mergeCycles += float64(mc)
		if s.pos < len(s.bd.docs) && s.bd.docs[s.pos] == d {
			return s.imps[s.pos], false
		}
		return 0, false
	}
}

// sortByBound insertion-sorts streams by ascending list bound. Stable, so
// equal-bound terms keep query order and runs are deterministic; like the
// union module's sorter it stays O(small²) and alloc-free.
//
//boss:hotpath called once per sparse query.
func sortByBound(ss []*sstream) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].ub < ss[j-1].ub; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
