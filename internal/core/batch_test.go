package core

import (
	"reflect"
	"sync"
	"testing"

	"boss/internal/corpus"
	"boss/internal/perf"
	"boss/internal/query"
)

// TestAcceleratorParallelDeterminism is the concurrency contract the
// Accelerator doc comment promises: N goroutines hammering Run on one
// shared Accelerator must each observe exactly the serial result — same
// top-k, same metrics — because Run keeps all mutable state on its own
// stack. Run under -race this also proves the absence of data races.
func TestAcceleratorParallelDeterminism(t *testing.T) {
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())

	var nodes []*query.Node
	for _, qt := range corpus.AllQueryTypes() {
		for _, q := range corpus.SampleQueries(f.c, qt, 4, 99) {
			nodes = append(nodes, query.MustParse(q.Expr))
		}
	}
	const k = 25

	// Serial baseline, computed once up front.
	want := make([]Result, len(nodes))
	for i, n := range nodes {
		r, err := acc.Run(n, k)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Stagger start offsets so goroutines interleave on different
			// queries rather than marching in lockstep.
			for off := 0; off < len(nodes); off++ {
				i := (off + g*3) % len(nodes)
				r, err := acc.Run(nodes[i], k)
				if err != nil {
					errs[g] = err
					return
				}
				if !reflect.DeepEqual(r.TopK, want[i].TopK) {
					t.Errorf("goroutine %d query %d: parallel top-k differs from serial", g, i)
					return
				}
				if !reflect.DeepEqual(r.M, want[i].M) {
					t.Errorf("goroutine %d query %d: parallel metrics differ from serial", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

func TestAcceleratorRunBatchMatchesSerial(t *testing.T) {
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())

	var nodes []*query.Node
	for _, qt := range corpus.AllQueryTypes() {
		for _, q := range corpus.SampleQueries(f.c, qt, 3, 7) {
			nodes = append(nodes, query.MustParse(q.Expr))
		}
	}
	const k = 30

	wantAgg := perf.NewMetrics()
	want := make([]Result, len(nodes))
	for i, n := range nodes {
		r, err := acc.Run(n, k)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
		wantAgg.Merge(r.M)
	}

	for _, workers := range []int{0, 1, 3, 16} {
		br := acc.RunBatch(nodes, k, workers)
		if br.Err != nil {
			t.Fatalf("workers=%d: %v", workers, br.Err)
		}
		if len(br.Results) != len(nodes) || len(br.Errs) != len(nodes) {
			t.Fatalf("workers=%d: result/err count mismatch", workers)
		}
		for i := range nodes {
			if br.Errs[i] != nil {
				t.Fatalf("workers=%d query %d: %v", workers, i, br.Errs[i])
			}
			if !reflect.DeepEqual(br.Results[i].TopK, want[i].TopK) {
				t.Fatalf("workers=%d query %d: batch top-k differs from serial", workers, i)
			}
			if !reflect.DeepEqual(br.Results[i].M, want[i].M) {
				t.Fatalf("workers=%d query %d: batch metrics differ from serial", workers, i)
			}
		}
		if !reflect.DeepEqual(br.Aggregate, wantAgg) {
			t.Fatalf("workers=%d: aggregate metrics differ from serial merge", workers)
		}
	}
}

func TestAcceleratorRunBatchErrors(t *testing.T) {
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())

	good := query.MustParse(`"t0"`)
	bad := query.MustParse(`"nosuchtermzz"`)
	br := acc.RunBatch([]*query.Node{good, bad, good}, 10, 2)
	if br.Err == nil {
		t.Fatal("batch with an unknown term should surface an error")
	}
	if br.Errs[0] != nil || br.Errs[2] != nil {
		t.Fatal("good queries must not be poisoned by a failing neighbor")
	}
	if br.Errs[1] == nil || br.Err != br.Errs[1] {
		t.Fatal("Err should be the first failing query's error")
	}
	if len(br.Results[0].TopK) == 0 || len(br.Results[2].TopK) == 0 {
		t.Fatal("good queries should still produce results")
	}
	if br.Aggregate == nil || br.Aggregate.SeqReadBytes == 0 {
		t.Fatal("aggregate should cover the successful queries")
	}

	empty := acc.RunBatch(nil, 10, 4)
	if empty.Err != nil || len(empty.Results) != 0 {
		t.Fatal("empty batch should succeed vacuously")
	}
}
