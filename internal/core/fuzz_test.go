package core

import (
	"strings"
	"testing"
)

// FuzzParseConfigFile hammers the offloading API's config-file parser
// (Section IV-D's init() input) with arbitrary text. The parser must never
// panic: it either returns a config map or an error. On success, the
// round-trip property must hold for the sections it accepted.
func FuzzParseConfigFile(f *testing.F) {
	f.Add(DefaultConfigFile())
	f.Add("")
	f.Add("[scheme vb]\n")
	f.Add("[scheme vb]\nload 4\nshift 7\nadd\n")
	f.Add("[scheme nope]\nload 1\n")
	f.Add("no header at all\nload 1\n")
	f.Add("[scheme vb]\n# comment only\n")
	f.Add("[scheme vb]\n[scheme pfd]\n[scheme vb]\n")
	f.Add("[scheme vb\nload 1\n")
	f.Add(strings.Repeat("[scheme vb]\nload 1\n", 20))

	f.Fuzz(func(t *testing.T, text string) {
		configs, err := ParseConfigFile(text)
		if err != nil {
			if configs != nil {
				t.Fatal("non-nil configs alongside an error")
			}
			return
		}
		for scheme, cfg := range configs {
			if cfg == nil {
				t.Fatalf("scheme %v parsed to a nil config", scheme)
			}
		}
	})
}
