package core

import (
	"bytes"
	"strings"
	"testing"

	"boss/internal/compress"
	"boss/internal/engine"
	"boss/internal/index"
	"boss/internal/query"
)

func TestInitAndSearchRoundTrip(t *testing.T) {
	f := newFixture(t)
	var buf bytes.Buffer
	if _, err := f.idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dev, err := Init(bytes.NewReader(buf.Bytes()), DefaultConfigFile())
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	expr := `"t0" AND ("t1" OR "t2")`
	got, err := dev.Search(expr, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the built-in decode path and the software engine over
	// the SAME deserialized index (serialization rounds norms to float32,
	// so the on-disk index is the common reference).
	reread, err := index.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(reread, DefaultOptions()).Run(query.MustParse(expr), 15)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(got, want.TopK) {
		t.Fatal("config-file decode path changed results")
	}
	eng, err := engine.New(reread).Run(query.MustParse(expr), 15)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(got, eng.TopK) {
		t.Fatal("device disagrees with the software engine")
	}
	if dev.Index() == nil {
		t.Fatal("device index not exposed")
	}
}

func TestSearchDefaultsK(t *testing.T) {
	f := newFixture(t)
	dev, err := InitFromIndex(f.idx, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := dev.Search(`"t0"`, 0)
	if err != nil {
		t.Fatal(err)
	}
	df := f.idx.MustList("t0").DF
	wantLen := DefaultK
	if df < wantLen {
		wantLen = df
	}
	if len(got) != wantLen {
		t.Fatalf("k=0 returned %d results, want %d (DefaultK capped by df)", len(got), wantLen)
	}
}

func TestSearchErrors(t *testing.T) {
	f := newFixture(t)
	dev, err := InitFromIndex(f.idx, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Search(`unquoted`, 5); err == nil {
		t.Fatal("malformed expression accepted")
	}
	if _, err := dev.Search(`"missingterm"`, 5); err == nil {
		t.Fatal("unknown term accepted")
	}
}

func TestParseConfigFileErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"no header", "UseDelta = 1"},
		{"unknown scheme", "[scheme Snappy]\nOutput := Input\nOutput.valid := 1"},
		{"bad program", "[scheme VB]\nnot a program"},
	}
	for _, tc := range cases {
		if _, err := ParseConfigFile(tc.text); err == nil {
			t.Errorf("%s: accepted invalid config file", tc.name)
		}
	}
}

func TestDefaultConfigFileCoversAllSchemes(t *testing.T) {
	text := DefaultConfigFile()
	configs, err := ParseConfigFile(text)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range compress.AllSchemes() {
		if _, ok := configs[s]; !ok {
			t.Errorf("default config file misses scheme %s", s)
		}
		if !strings.Contains(text, "[scheme "+s.String()+"]") {
			t.Errorf("default config file misses header for %s", s)
		}
	}
}

func TestInitRejectsIncompleteConfig(t *testing.T) {
	f := newFixture(t) // hybrid index uses several schemes
	onlyVB, err := ParseConfigFile("[scheme VB]\n" + strings.TrimSpace(vbOnlyProgram()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InitFromIndex(f.idx, onlyVB, DefaultOptions()); err == nil {
		t.Fatal("device accepted a config file missing schemes the index uses")
	}
}

func vbOnlyProgram() string {
	// Reuse the built-in VB program text through the decomp package's
	// canonical config.
	full := DefaultConfigFile()
	start := strings.Index(full, "[scheme VB]")
	end := strings.Index(full[start+1:], "[scheme ")
	return full[start+len("[scheme VB]") : start+1+end]
}

func TestInitRejectsBadIndexBytes(t *testing.T) {
	if _, err := Init(bytes.NewReader([]byte("garbage")), DefaultConfigFile()); err == nil {
		t.Fatal("Init accepted a corrupt index")
	}
}
