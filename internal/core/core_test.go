package core

import (
	"math"
	"testing"

	"boss/internal/compress"
	"boss/internal/corpus"
	"boss/internal/engine"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/query"
	"boss/internal/topk"
)

type fixture struct {
	c   *corpus.Corpus
	idx *index.Index
	eng *engine.Engine
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	idx := index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid})
	return &fixture{c: c, idx: idx, eng: engine.New(idx)}
}

// sameResults compares two top-k lists, tolerating permutations among
// entries whose scores are equal to within floating-point drift (different
// engines sum term scores in different orders for mixed queries).
func sameResults(a, b []topk.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			return false
		}
		if a[i].DocID != b[i].DocID {
			// Accept a tie swap: the other list must contain this doc at
			// an equal score.
			found := false
			for j := range b {
				if b[j].DocID == a[i].DocID && math.Abs(a[i].Score-b[j].Score) <= 1e-9 {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

func allVariants(idx *index.Index) map[string]*Accelerator {
	return map[string]*Accelerator{
		"boss":       New(idx, DefaultOptions()),
		"exhaustive": New(idx, ExhaustiveOptions()),
		"block-only": New(idx, BlockOnlyOptions()),
	}
}

func TestBOSSMatchesSoftwareEngine(t *testing.T) {
	f := newFixture(t)
	for name, acc := range allVariants(f.idx) {
		name, acc := name, acc
		t.Run(name, func(t *testing.T) {
			for _, qt := range corpus.AllQueryTypes() {
				for _, q := range corpus.SampleQueries(f.c, qt, 6, 1234) {
					node := query.MustParse(q.Expr)
					got, err := acc.Run(node, 20)
					if err != nil {
						t.Fatalf("%s: %v", q.Expr, err)
					}
					want, err := f.eng.Run(node, 20)
					if err != nil {
						t.Fatal(err)
					}
					if !sameResults(got.TopK, want.TopK) {
						t.Fatalf("%s (%s): BOSS disagrees with engine\n got %v\nwant %v",
							qt, q.Expr, got.TopK, want.TopK)
					}
				}
			}
		})
	}
}

func TestETIsSafeAcrossKValues(t *testing.T) {
	// Early termination must be lossless for every k, including tiny k
	// where the cutoff bites hardest.
	f := newFixture(t)
	boss := New(f.idx, DefaultOptions())
	exh := New(f.idx, ExhaustiveOptions())
	exprs := []string{
		`"t0" OR "t1"`,
		`"t0" OR "t3" OR "t9" OR "t20"`,
		`"t2"`,
	}
	for _, expr := range exprs {
		node := query.MustParse(expr)
		for _, k := range []int{1, 3, 10, 100} {
			a, err := boss.Run(node, k)
			if err != nil {
				t.Fatal(err)
			}
			b, err := exh.Run(node, k)
			if err != nil {
				t.Fatal(err)
			}
			if !sameResults(a.TopK, b.TopK) {
				t.Fatalf("%s k=%d: ET changed the result set", expr, k)
			}
		}
	}
}

func TestUnknownTermErrors(t *testing.T) {
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())
	if _, err := acc.Run(query.MustParse(`"zzz"`), 10); err == nil {
		t.Fatal("expected error for unknown term")
	}
}

func TestBlockETSkipsBlocks(t *testing.T) {
	// A single-term query with small k: the cutoff rises to the best few
	// scores quickly, and blocks whose maximum term-score falls below it
	// are skipped without loading (the Figure 14 Q1 effect).
	f := newFixture(t)
	boss := New(f.idx, DefaultOptions())
	exh := New(f.idx, ExhaustiveOptions())
	node := query.MustParse(`"t0"`)
	a, err := boss.Run(node, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exh.Run(node, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.M.BlocksFetched >= b.M.BlocksFetched {
		t.Fatalf("BOSS fetched %d blocks, exhaustive %d — block ET saved nothing",
			a.M.BlocksFetched, b.M.BlocksFetched)
	}
	if a.M.BlocksSkipped == 0 {
		t.Fatal("no blocks counted as skipped")
	}
	if a.M.Cat[mem.CatLoadList] >= b.M.Cat[mem.CatLoadList] {
		t.Fatal("block ET should reduce LD List bytes")
	}
}

func TestWANDReducesEvaluatedDocs(t *testing.T) {
	f := newFixture(t)
	blockOnly := New(f.idx, BlockOnlyOptions())
	full := New(f.idx, DefaultOptions())
	node := query.MustParse(`"t0" OR "t1" OR "t2" OR "t3"`)
	a, err := blockOnly.Run(node, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := full.Run(node, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.M.DocsEvaluated >= a.M.DocsEvaluated {
		t.Fatalf("WAND evaluated %d docs, block-only %d — no doc-level saving",
			b.M.DocsEvaluated, a.M.DocsEvaluated)
	}
}

func TestExhaustiveEvaluatesUnionFully(t *testing.T) {
	f := newFixture(t)
	exh := New(f.idx, ExhaustiveOptions())
	node := query.MustParse(`"t4" OR "t7"`)
	res, err := exh.Run(node, 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.eng.Run(node, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The software engine is also exhaustive for unions, so the evaluated
	// doc counts must agree exactly.
	if res.M.DocsEvaluated != want.M.DocsEvaluated {
		t.Fatalf("exhaustive BOSS evaluated %d docs, engine %d",
			res.M.DocsEvaluated, want.M.DocsEvaluated)
	}
}

func TestIntersectionSkipsNonOverlappingBlocks(t *testing.T) {
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())
	rare := f.c.Terms[len(f.c.Terms)-1].Term
	common := f.c.Terms[0].Term
	res, err := acc.Run(query.MustParse(`"`+common+`" AND "`+rare+`"`), 10)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(f.idx.MustList(common).Blocks) + len(f.idx.MustList(rare).Blocks))
	if res.M.BlocksFetched >= total {
		t.Fatalf("fetched %d of %d blocks; overlap check saved nothing", res.M.BlocksFetched, total)
	}
}

func TestNoIntermediateSpills(t *testing.T) {
	// BOSS's pipelined multi-term execution never touches memory for
	// intermediates — the key contrast with IIU (Figure 15).
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())
	exprs := []string{
		`"t0" AND "t1" AND "t2" AND "t3"`,
		`"t0" AND ("t1" OR "t2" OR "t3")`,
	}
	for _, expr := range exprs {
		res, err := acc.Run(query.MustParse(expr), 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.M.Cat[mem.CatStoreInter] != 0 || res.M.Cat[mem.CatLoadInter] != 0 {
			t.Fatalf("%s: BOSS spilled intermediates", expr)
		}
	}
}

func TestHardwareTopKLimitsHostTraffic(t *testing.T) {
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())
	k := 25
	res, err := acc.Run(query.MustParse(`"t0" OR "t1"`), k)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.HostBytes != int64(k)*resultEntryBytes {
		t.Fatalf("host traffic = %d bytes, want %d (k×8)", res.M.HostBytes, k*resultEntryBytes)
	}
	if res.M.Cat[mem.CatStoreResult] != int64(k)*resultEntryBytes {
		t.Fatalf("ST Result = %d bytes", res.M.Cat[mem.CatStoreResult])
	}
}

func TestSharedTermChargedOnceInMixedQuery(t *testing.T) {
	// Q6's DNF repeats term A in every conjunct; the block cache must
	// charge its loads once.
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())
	a := f.c.Terms[5].Term
	res, err := acc.Run(query.MustParse(`"`+a+`" AND ("t1" OR "t2" OR "t3")`), 10)
	if err != nil {
		t.Fatal(err)
	}
	aBlocks := int64(len(f.idx.MustList(a).Blocks))
	bcd := int64(len(f.idx.MustList("t1").Blocks) + len(f.idx.MustList("t2").Blocks) + len(f.idx.MustList("t3").Blocks))
	if res.M.BlocksFetched > aBlocks+bcd {
		t.Fatalf("fetched %d blocks > %d distinct blocks; shared term double-charged",
			res.M.BlocksFetched, aBlocks+bcd)
	}
}

func TestFixedPointApproximatesFloat(t *testing.T) {
	f := newFixture(t)
	fp := New(f.idx, Options{BlockET: true, DocET: true, FixedPoint: true})
	fl := New(f.idx, DefaultOptions())
	node := query.MustParse(`"t1" OR "t4"`)
	a, err := fp.Run(node, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fl.Run(node, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Q16.16 quantization may permute near-ties; demand ≥90% overlap.
	set := make(map[uint32]bool, len(b.TopK))
	for _, e := range b.TopK {
		set[e.DocID] = true
	}
	common := 0
	for _, e := range a.TopK {
		if set[e.DocID] {
			common++
		}
	}
	if common < len(b.TopK)*9/10 {
		t.Fatalf("fixed-point top-k overlaps float top-k on only %d/%d docs", common, len(b.TopK))
	}
}

func TestComputeTimePositiveAndDeterministic(t *testing.T) {
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())
	node := query.MustParse(`"t2" AND ("t5" OR "t6" OR "t8")`)
	r1, err := acc.Run(node, 10)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := acc.Run(node, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r1.M.ComputeTime <= 0 {
		t.Fatal("no compute time")
	}
	if r1.M.ComputeTime != r2.M.ComputeTime || r1.M.SeqReadBytes != r2.M.SeqReadBytes {
		t.Fatal("runs not deterministic")
	}
}

func TestBOSSBeatsEngineOnLatency(t *testing.T) {
	// The headline claim, in miniature: on SCM, BOSS's single-core query
	// latency should beat the software engine's on union queries over
	// substantial posting lists (the paper's TREC terms are common words;
	// tiny lists are dominated by fixed overheads on both sides).
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())
	exprs := []string{
		`"t0" OR "t1" OR "t2" OR "t3"`,
		`"t1" OR "t2" OR "t4" OR "t6"`,
		`"t0" OR "t5" OR "t7" OR "t9"`,
	}
	for _, expr := range exprs {
		node := query.MustParse(expr)
		b, err := acc.Run(node, 100)
		if err != nil {
			t.Fatal(err)
		}
		e, err := f.eng.Run(node, 100)
		if err != nil {
			t.Fatal(err)
		}
		bossLat := b.M.Latency(mem.SCM())
		engLat := e.M.Latency(mem.HostSCM())
		if bossLat >= engLat {
			t.Fatalf("%s: BOSS latency %v >= engine latency %v", expr, bossLat, engLat)
		}
	}
}

func TestBOSSMoreBandwidthEfficientThanExhaustive(t *testing.T) {
	f := newFixture(t)
	boss := New(f.idx, DefaultOptions())
	exh := New(f.idx, ExhaustiveOptions())
	node := query.MustParse(`"t0" OR "t1" OR "t4" OR "t6"`)
	a, err := boss.Run(node, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exh.Run(node, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.M.DeviceBytes() >= b.M.DeviceBytes() {
		t.Fatalf("BOSS moved %d bytes, exhaustive %d", a.M.DeviceBytes(), b.M.DeviceBytes())
	}
}

func BenchmarkBOSSQ5(b *testing.B) {
	f := newFixture(b)
	acc := New(f.idx, DefaultOptions())
	node := query.MustParse(`"t0" OR "t1" OR "t2" OR "t3"`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.Run(node, 100); err != nil {
			b.Fatal(err)
		}
	}
}
