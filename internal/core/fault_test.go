package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"boss/internal/corpus"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/query"
)

// sampleNodes returns a handful of parsed queries spanning all types.
func sampleNodes(t *testing.T, f *fixture) []*query.Node {
	t.Helper()
	var nodes []*query.Node
	for _, qt := range corpus.AllQueryTypes() {
		for _, q := range corpus.SampleQueries(f.c, qt, 4, 99) {
			nodes = append(nodes, query.MustParse(q.Expr))
		}
	}
	if len(nodes) == 0 {
		t.Fatal("no sample queries")
	}
	return nodes
}

func TestRunCtxCancelled(t *testing.T) {
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, node := range sampleNodes(t, f) {
		_, err := acc.RunCtx(ctx, node, 10)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled ctx: got %v, want context.Canceled", err)
		}
	}
}

func TestRunCtxDeadlineExceeded(t *testing.T) {
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	node := sampleNodes(t, f)[0]
	_, err := acc.RunCtx(ctx, node, 10)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: got %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: %v must also wrap context.DeadlineExceeded", err)
	}
}

// A nil context must behave exactly like Run.
func TestRunCtxNilContext(t *testing.T) {
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())
	for _, node := range sampleNodes(t, f) {
		a, err := acc.RunCtx(nil, node, 10) //nolint:staticcheck // nil ctx is part of the contract
		if err != nil {
			t.Fatalf("RunCtx(nil): %v", err)
		}
		b, err := acc.Run(node, 10)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !sameResults(a.TopK, b.TopK) {
			t.Fatal("RunCtx(nil) diverged from Run")
		}
	}
}

// A block whose payload no longer matches its build-time CRC must surface
// a typed media error, never a silently wrong score.
func TestCorruptBlockReturnsTypedError(t *testing.T) {
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())

	// Pick a term and corrupt its first block in place.
	var pl *index.PostingList
	var term string
	for _, tm := range f.idx.Terms() {
		if len(f.idx.Lists[tm].Blocks) >= 1 {
			term, pl = tm, f.idx.Lists[tm]
			break
		}
	}
	pl.Data[pl.Blocks[0].Offset] ^= 0x5a

	_, err := acc.RunDNF([][]string{{term}}, 10)
	if err == nil {
		t.Fatal("query over corrupt block succeeded")
	}
	if !errors.Is(err, mem.ErrMediaUncorrectable) {
		t.Fatalf("corrupt block: got %v, want wrap of mem.ErrMediaUncorrectable", err)
	}

	// Restore and confirm the accelerator recovers fully.
	pl.Data[pl.Blocks[0].Offset] ^= 0x5a
	if _, err := acc.RunDNF([][]string{{term}}, 10); err != nil {
		t.Fatalf("after restore: %v", err)
	}
}

// Transient faults at realistic rates must be absorbed by bounded retry:
// queries succeed, metrics record the retries, and results match the
// fault-free run exactly.
func TestTransientFaultsRetriedTransparently(t *testing.T) {
	f := newFixture(t)
	clean := New(f.idx, DefaultOptions())
	faulty := New(f.idx, DefaultOptions())
	plan := &mem.FaultPlan{Seed: 7, TransientRate: 0.01}
	faulty.SetFault(plan.InjectorFor(0))

	var retries int64
	for _, node := range sampleNodes(t, f) {
		want, err := clean.RunCtx(nil, node, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := faulty.RunCtx(nil, node, 10)
		if err != nil {
			t.Fatalf("transient plan must be survivable: %v", err)
		}
		if !sameResults(got.TopK, want.TopK) {
			t.Fatal("results diverged under transient faults")
		}
		retries += got.M.TransientRetries
		if got.M.IntegrityFailures != 0 {
			t.Fatalf("transient-only plan recorded %d integrity failures", got.M.IntegrityFailures)
		}
	}
	if retries == 0 {
		t.Fatal("1% transient rate produced zero retries across the sample set")
	}
}

// An uncorrectable media error is permanent: retries must not mask it and
// the query fails with the typed error.
func TestUncorrectableFaultReturnsTypedError(t *testing.T) {
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())
	plan := &mem.FaultPlan{Seed: 3, UncorrectableRate: 0.5}
	acc.SetFault(plan.InjectorFor(0))

	sawTyped := false
	for _, node := range sampleNodes(t, f) {
		_, err := acc.RunCtx(nil, node, 10)
		if err != nil {
			if !errors.Is(err, mem.ErrMediaUncorrectable) {
				t.Fatalf("failure is not typed: %v", err)
			}
			sawTyped = true
		}
	}
	if !sawTyped {
		t.Fatal("50% uncorrectable rate never failed a query")
	}
}

func TestDeadDeviceReturnsErrDeviceDown(t *testing.T) {
	f := newFixture(t)
	acc := New(f.idx, DefaultOptions())
	plan := &mem.FaultPlan{Seed: 1, DeadDevices: []int{0}}
	acc.SetFault(plan.InjectorFor(0))
	node := sampleNodes(t, f)[0]
	_, err := acc.RunCtx(nil, node, 10)
	if !errors.Is(err, mem.ErrDeviceDown) {
		t.Fatalf("dead device: got %v, want wrap of mem.ErrDeviceDown", err)
	}
}

// Fault decisions are a pure function of the plan: the same plan over the
// same queries yields identical errors and identical retry counts.
func TestFaultReplayDeterministic(t *testing.T) {
	f := newFixture(t)
	plan := &mem.FaultPlan{Seed: 42, TransientRate: 0.05, UncorrectableRate: 0.002}
	nodes := sampleNodes(t, f)

	type outcome struct {
		errText string
		retries int64
	}
	runOnce := func() []outcome {
		acc := New(f.idx, DefaultOptions())
		acc.SetFault(plan.InjectorFor(0))
		out := make([]outcome, 0, len(nodes))
		for _, node := range nodes {
			res, err := acc.RunCtx(nil, node, 10)
			o := outcome{}
			if err != nil {
				o.errText = err.Error()
			} else {
				o.retries = res.M.TransientRetries
			}
			out = append(out, o)
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d: replay diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}
