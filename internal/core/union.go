package core

import (
	"math"

	"boss/internal/index"
)

// ustream is one term's posting-list stream inside the union path.
type ustream struct {
	pl      *index.PostingList
	ls      *listState // the run's bookkeeping record for pl
	ord     int        // position in the query (keeps score-sum order stable)
	bi      int        // current block index
	bd      *blockData // decoded block, nil when not (yet) loaded
	pos     int        // cursor within bd
	floor   uint32     // docIDs below floor were pruned by interval skipping
	charged int        // last block index charged via chargeMeta (memo)
}

// curBlock returns the stream's current block metadata, or nil at the end.
func (s *ustream) curBlock() *index.BlockMeta {
	if s.bi >= len(s.pl.Blocks) {
		return nil
	}
	return &s.pl.Blocks[s.bi]
}

// advanceBlock moves to the next block, counting a skip if the current one
// was never loaded.
func (r *run) advanceBlock(s *ustream) {
	if s.bd == nil {
		r.m.BlocksSkipped++
	}
	s.bi++
	s.bd = nil
	s.pos = 0
}

// normalize discards blocks wholly below the stream's floor and positions
// the cursor at the first un-pruned posting. Returns false when exhausted.
//
//boss:hotpath called once per stream per interval.
func (r *run) normalize(s *ustream) bool {
	for {
		blk := s.curBlock()
		if blk == nil {
			return false
		}
		if s.bi != s.charged {
			r.chargeMeta(s.ls, s.bi)
			s.charged = s.bi
		}
		if s.floor > blk.LastDoc {
			r.advanceBlock(s)
			continue
		}
		if s.bd != nil {
			for s.pos < len(s.bd.docs) && s.bd.docs[s.pos] < s.floor {
				s.pos++
			}
			if s.pos >= len(s.bd.docs) {
				r.advanceBlock(s)
				continue
			}
		}
		return true
	}
}

// nextDoc reports the smallest docID the stream might produce next.
func (s *ustream) nextDoc() uint32 {
	if s.bd != nil {
		return s.bd.docs[s.pos]
	}
	first := s.curBlock().FirstDoc
	if s.floor > first {
		return s.floor
	}
	return first
}

// union runs the union path: an interval sweep with block-level early
// termination (the block-fetch module's score-estimation unit) feeding the
// WAND union module, scoring, and top-k.
//
//boss:hotpath the union-path driver loop; scratch lives on the run record.
func (r *run) union(pls []*index.PostingList) {
	// Stream records live in run-owned scratch; the pointer slice resizes
	// only here, so the &r.ustreams[i] pointers below stay valid throughout.
	if cap(r.ustreams) < len(pls) {
		r.ustreams = make([]ustream, len(pls)) //boss:escape-ok stream-scratch growth, amortized across queries on one run
	}
	if cap(r.streams) < len(pls) {
		r.streams = make([]*ustream, 0, len(pls)) //boss:escape-ok stream-scratch growth, amortized across queries on one run
	}
	r.ustreams = r.ustreams[:len(pls)]
	streams := r.streams[:0]
	for i, pl := range pls {
		r.ustreams[i] = ustream{pl: pl, ls: r.stateFor(pl), ord: i, charged: -1} //boss:escape-ok free-list miss inside inlined stateFor, recycled via lsFree
		streams = append(streams, &r.ustreams[i])
	}
	for {
		// Keep only live streams, positioned past their floors.
		live := streams[:0]
		for _, s := range streams {
			if r.normalize(s) {
				live = append(live, s)
			}
		}
		streams = live
		if len(streams) == 0 {
			return
		}

		// The interval starts at the smallest upcoming docID.
		lo := streams[0].nextDoc()
		for _, s := range streams[1:] {
			if d := s.nextDoc(); d < lo {
				lo = d
			}
		}
		// It ends where the covering-block set changes.
		hi := uint32(math.MaxUint32)
		covering := r.covering[:0]
		var ub float64
		for _, s := range streams {
			blk := s.curBlock()
			if blk.FirstDoc <= lo {
				covering = append(covering, s)
				ub += blk.MaxScore
				if blk.LastDoc < hi {
					hi = blk.LastDoc
				}
			} else if blk.FirstDoc-1 < hi {
				hi = blk.FirstDoc - 1
			}
		}
		r.covering = covering // keep the grown capacity for the next interval

		// Block-level ET: if even the sum of the covering blocks' maximum
		// term-scores cannot beat the cutoff, no document in the interval
		// can enter the top-k — skip without loading. The comparison is
		// strict so score ties (resolved toward smaller docIDs by the
		// top-k module) are never pruned.
		if r.acc.opts.BlockET && r.sel.Full() && ub < r.cutoff() {
			for _, s := range covering {
				if s.curBlock().LastDoc <= hi {
					r.advanceBlock(s)
				} else {
					s.floor = hi + 1
				}
			}
			continue
		}

		r.scanInterval(covering, lo, hi)
		if r.err != nil {
			return
		}

		// Streams whose block ended inside the interval move on.
		for _, s := range covering {
			if s.bd != nil && s.pos >= len(s.bd.docs) {
				r.advanceBlock(s)
			}
		}
	}
}

// scanInterval loads the covering blocks and runs the union module's
// document loop over [lo, hi]: WAND pivoting when DocET is enabled, a plain
// k-way merge otherwise.
//
//boss:hotpath one call per interval; loops once per union-module decision.
func (r *run) scanInterval(covering []*ustream, lo, hi uint32) {
	for _, s := range covering {
		if s.bd == nil {
			s.bd = r.fetchBlock(s.ls, s.pl, s.bi)
			if s.bd == nil {
				return // r.err latched; union loop unwinds
			}
			s.pos = 0
			for s.pos < len(s.bd.docs) && s.bd.docs[s.pos] < s.floor {
				s.pos++
			}
		}
	}

	for {
		active := r.active[:0]
		for _, s := range covering {
			if s.pos < len(s.bd.docs) && s.bd.docs[s.pos] <= hi {
				active = append(active, s)
			}
		}
		r.active = active
		if len(active) == 0 {
			return
		}
		// One union-module decision per iteration: the sorter orders sIDs,
		// then the pivot selector / merger issues its verdict.
		r.mergeCycles += 1.5

		if r.acc.opts.DocET && r.sel.Full() {
			if !r.wandStep(active, hi) {
				return
			}
			continue
		}
		r.mergeStep(active)
	}
}

// mergeStep performs one plain k-way merge step: score the smallest
// document across active streams.
//
//boss:hotpath one call per merged document.
func (r *run) mergeStep(active []*ustream) {
	minDoc := active[0].bd.docs[active[0].pos]
	for _, s := range active[1:] {
		if d := s.bd.docs[s.pos]; d < minDoc {
			minDoc = d
		}
	}
	terms := r.terms[:0]
	for _, s := range active {
		if s.bd.docs[s.pos] == minDoc {
			terms = append(terms, termTF{pl: s.pl, tf: s.bd.tfs[s.pos]})
			s.pos++
		}
	}
	r.terms = terms
	r.scoreDoc(minDoc, terms)
}

// wandStep performs one WAND decision: pick the pivot by accumulating
// list-level maximum scores in docID order; documents before the pivot
// cannot beat the cutoff and are popped without scoring. Returns false when
// the whole remaining interval is hopeless.
//
//boss:hotpath one call per WAND decision.
func (r *run) wandStep(active []*ustream, hi uint32) bool {
	sortByDoc(active)
	cutoff := r.cutoff()
	acc := 0.0
	pivot := -1
	for i, s := range active {
		acc += s.pl.MaxScore
		// >= rather than >: documents tying the cutoff must still be
		// scored so tie-breaking stays identical to exhaustive execution.
		if acc >= cutoff {
			pivot = i
			break
		}
	}
	if pivot < 0 {
		// Even all lists together cannot beat the cutoff: drain the
		// interval without scoring anything.
		var mc int64
		for _, s := range active {
			for s.pos < len(s.bd.docs) && s.bd.docs[s.pos] <= hi {
				s.pos++
				mc++
			}
		}
		r.mergeCycles += float64(mc)
		return false
	}
	pivotDoc := active[pivot].bd.docs[active[pivot].pos]
	if active[0].bd.docs[active[0].pos] == pivotDoc {
		// Every stream before the pivot sits on the pivot document: score
		// it with all matching streams. Matching streams are collected in
		// query order so floating-point summation matches the exhaustive
		// path bit for bit.
		matched := r.matched[:0]
		for _, s := range active {
			if s.pos < len(s.bd.docs) && s.bd.docs[s.pos] == pivotDoc {
				matched = append(matched, s)
			}
		}
		r.matched = matched
		sortByOrd(matched)
		terms := r.terms[:0]
		for _, s := range matched {
			terms = append(terms, termTF{pl: s.pl, tf: s.bd.tfs[s.pos]})
			s.pos++
		}
		r.terms = terms
		r.scoreDoc(pivotDoc, terms)
		return true
	}
	// Otherwise pop documents below the pivot — they cannot win.
	var mc int64
	for _, s := range active[:pivot] {
		for s.pos < len(s.bd.docs) && s.bd.docs[s.pos] < pivotDoc {
			s.pos++
			mc++
		}
	}
	r.mergeCycles += float64(mc)
	return true
}

// sortByDoc insertion-sorts streams by current docID. Hardware queries hold
// at most MaxQueryTerms streams, and the union module's sorter runs every
// WAND step, so this stays O(small²) and — unlike sort.Slice — alloc-free.
//
//boss:hotpath called once per WAND step.
func sortByDoc(ss []*ustream) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].bd.docs[ss[j].pos] < ss[j-1].bd.docs[ss[j-1].pos]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// sortByOrd insertion-sorts streams by query position (see sortByDoc).
//
//boss:hotpath called once per scored pivot document.
func sortByOrd(ss []*ustream) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].ord < ss[j-1].ord; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
