package core

import (
	"fmt"
	"io"
	"strings"

	"boss/internal/compress"
	"boss/internal/decomp"
	"boss/internal/index"
	"boss/internal/query"
	"boss/internal/topk"
)

// This file models the paper's offloading API (Section IV-D):
//
//	void init(file indexFile, file configFile)
//	val  search(string qExpression, ...)
//
// Init loads a serialized index into the (simulated) SCM pool and parses
// the decompression-module configuration file, whose per-scheme programs —
// written in the Figure 8 language — are what the device's decompression
// modules actually execute at query time. Search parses a query expression
// and runs it on the device.

// Device is an initialized BOSS device: the paper's init() output.
type Device struct {
	idx     *index.Index
	opts    Options
	configs map[compress.Scheme]*decomp.Config
}

// DefaultConfigFile renders the configuration file a deployment would ship:
// one `[scheme X]` section per supported compression scheme, each holding
// that scheme's Figure 8 program.
func DefaultConfigFile() string {
	var b strings.Builder
	for _, s := range compress.AllSchemes() {
		fmt.Fprintf(&b, "[scheme %s]\n%s\n", s, strings.TrimSpace(decomp.ConfigText(s)))
	}
	return b.String()
}

// ParseConfigFile parses a sectioned decompression configuration file:
// `[scheme <name>]` headers, each followed by a Figure 8-style program.
func ParseConfigFile(text string) (map[compress.Scheme]*decomp.Config, error) {
	byName := map[string]compress.Scheme{}
	for _, s := range compress.AllSchemes() {
		byName[s.String()] = s
	}
	configs := make(map[compress.Scheme]*decomp.Config)
	var cur string
	var body []string
	flush := func() error {
		if cur == "" {
			return nil
		}
		scheme, ok := byName[cur]
		if !ok {
			return fmt.Errorf("core: unknown scheme %q in config file", cur)
		}
		cfg, err := decomp.ParseConfig(strings.Join(body, "\n"))
		if err != nil {
			return fmt.Errorf("core: scheme %s: %w", cur, err)
		}
		configs[scheme] = cfg
		return nil
	}
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "[scheme ") && strings.HasSuffix(trimmed, "]") {
			if err := flush(); err != nil {
				return nil, err
			}
			cur = strings.TrimSuffix(strings.TrimPrefix(trimmed, "[scheme "), "]")
			body = body[:0]
			continue
		}
		if cur == "" && trimmed != "" {
			return nil, fmt.Errorf("core: config content before any [scheme] header: %q", trimmed)
		}
		body = append(body, line)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("core: config file defines no schemes")
	}
	return configs, nil
}

// Init models the paper's init() intrinsic: it loads the inverted index
// from indexFile into the SCM pool's address space and programs the
// decompression modules from configFile.
func Init(indexFile io.Reader, configFile string) (*Device, error) {
	idx, err := index.Read(indexFile)
	if err != nil {
		return nil, err
	}
	configs, err := ParseConfigFile(configFile)
	if err != nil {
		return nil, err
	}
	return InitFromIndex(idx, configs, DefaultOptions())
}

// InitFromIndex builds a device over an already-loaded index. configs may
// be nil, meaning the built-in per-scheme programs; when given, every
// compression scheme the index uses must be programmed.
func InitFromIndex(idx *index.Index, configs map[compress.Scheme]*decomp.Config, opts Options) (*Device, error) {
	if configs != nil {
		// Iterate terms in sorted order, not the Lists map: with several
		// schemes unprogrammed, the reported one must not depend on map
		// iteration order (bosslint simdeterminism finding).
		for _, term := range idx.Terms() {
			if pl := idx.Lists[term]; pl != nil {
				if _, ok := configs[pl.Scheme]; !ok {
					return nil, fmt.Errorf("core: index uses scheme %s but the configuration file does not program it", pl.Scheme)
				}
			}
		}
		opts.decompConfigs = configs
	}
	return &Device{idx: idx, opts: opts, configs: configs}, nil
}

// Search models the paper's search() intrinsic: qExpression uses the
// quoted-term AND/OR syntax; k bounds the result list (resultSize in the
// paper's signature).
func (d *Device) Search(qExpression string, k int) ([]topk.Entry, error) {
	node, err := query.Parse(qExpression)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = DefaultK
	}
	res, err := New(d.idx, d.opts).Run(node, k)
	if err != nil {
		return nil, err
	}
	return res.TopK, nil
}

// Index exposes the device's loaded index (for inspection tools).
func (d *Device) Index() *index.Index { return d.idx }
