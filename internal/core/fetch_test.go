package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"boss/internal/cache"
	"boss/internal/docstore"
	"boss/internal/mem"
	"boss/internal/perf"
)

// buildDocs builds a store of n two-field documents and the expected
// payloads.
func buildDocs(t testing.TB, n int, seed int64) (*docstore.Store, [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	words := []string{"bandwidth", "optimized", "search", "accelerator", "storage", "class", "memory"}
	b := docstore.NewBuilder("name", "text")
	texts := make([][]byte, n)
	for i := 0; i < n; i++ {
		var text []byte
		for w := 0; w < 10+rng.Intn(60); w++ {
			text = append(text, words[rng.Intn(len(words))]...)
			text = append(text, ' ')
		}
		texts[i] = text
		if err := b.Add([]byte(fmt.Sprintf("doc%05d", i)), text); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(), texts
}

func TestFetchEngineRoundTrip(t *testing.T) {
	const n = 500
	ds, texts := buildDocs(t, n, 3)
	for _, cached := range []bool{false, true} {
		var c *cache.Cache
		if cached {
			c = cache.NewSharded(16<<20, 1)
		}
		eng := NewFetchEngine(ds, c)
		m := perf.NewMetrics()
		var buf DocBuf
		for i := 0; i < n; i++ {
			if err := eng.FetchInto(context.Background(), uint32(i), m, &buf); err != nil {
				t.Fatalf("cached=%v doc %d: %v", cached, i, err)
			}
			if buf.DocID != uint32(i) || len(buf.Fields) != 2 {
				t.Fatalf("cached=%v doc %d: buf %+v", cached, i, buf)
			}
			if !bytes.Equal(buf.Fields[1], texts[i]) {
				t.Fatalf("cached=%v doc %d: text mismatch", cached, i)
			}
		}
		buf.Release()
		if m.DocsFetched != n {
			t.Fatalf("cached=%v DocsFetched = %d, want %d", cached, m.DocsFetched, n)
		}
		if cached {
			st := c.Stats()
			if st.DocMisses != int64(ds.NumBlocks()) {
				t.Fatalf("doc misses %d, want one per block %d", st.DocMisses, ds.NumBlocks())
			}
			if st.DocHits != int64(n-ds.NumBlocks()) {
				t.Fatalf("doc hits %d, want %d", st.DocHits, n-ds.NumBlocks())
			}
			if st.PostingHits != 0 || st.PostingMisses != 0 {
				t.Fatalf("posting counters moved on doc traffic: %+v", st)
			}
		}
	}
	// Out-of-range docID is a typed failure, not a panic.
	eng := NewFetchEngine(ds, nil)
	var buf DocBuf
	if err := eng.FetchInto(context.Background(), n, perf.NewMetrics(), &buf); err == nil {
		t.Fatal("out-of-range fetch succeeded")
	}
}

// TestFetchChargeReplayIdentical is the figure-identity invariant for the
// fetch phase: the simulated charges of a fetch sequence are byte-equal
// with and without the host-side cache — hits replay the recorded SCM
// stream, queue hops, and decode cycles.
func TestFetchChargeReplayIdentical(t *testing.T) {
	const n = 300
	ds, _ := buildDocs(t, n, 5)
	seq := make([]uint32, 0, 2000)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		seq = append(seq, uint32(rng.Intn(n)))
	}
	run := func(c *cache.Cache) *perf.Metrics {
		eng := NewFetchEngine(ds, c)
		m := perf.NewMetrics()
		var buf DocBuf
		for _, id := range seq {
			if err := eng.FetchInto(context.Background(), id, m, &buf); err != nil {
				t.Fatal(err)
			}
		}
		buf.Release()
		return m
	}
	plain := run(nil)
	cached := run(cache.NewSharded(32<<20, 2))
	if *plain != *cached {
		t.Fatalf("simulated charges diverge with cache:\nplain:  %+v\ncached: %+v", plain, cached)
	}
	// And across repeated runs (determinism).
	again := run(cache.NewSharded(32<<20, 2))
	if *cached != *again {
		t.Fatalf("simulated charges nondeterministic:\n%+v\n%+v", cached, again)
	}
}

// TestFetchHitPathAllocs pins the doc-block cache-hit fetch path at zero
// allocations per fetched document.
func TestFetchHitPathAllocs(t *testing.T) {
	ds, _ := buildDocs(t, 4*docstore.BlockDocs, 7)
	c := cache.NewSharded(16<<20, 1)
	eng := NewFetchEngine(ds, c)
	m := perf.NewMetrics()
	var buf DocBuf
	// Warm every block and the buffer's field capacity.
	for i := 0; i < ds.NumDocs; i++ {
		if err := eng.FetchInto(context.Background(), uint32(i), m, &buf); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(11))
	ids := make([]uint32, 256)
	for i := range ids {
		ids[i] = uint32(rng.Intn(ds.NumDocs))
	}
	var j int
	avg := testing.AllocsPerRun(400, func() {
		if err := eng.FetchInto(nil, ids[j&255], m, &buf); err != nil {
			t.Fatal(err)
		}
		j++
	})
	buf.Release()
	if avg != 0 {
		t.Fatalf("doc fetch hit path allocates %.2f allocs/op, want 0", avg)
	}
	if st := c.Stats(); st.DocHitRate() == 0 {
		t.Fatalf("hit-path test never hit: %+v", st)
	}
}

// TestFetchCorruptBlock: media corruption after load is caught by the
// per-block CRC gate and typed docstore.ErrCorrupt.
func TestFetchCorruptBlock(t *testing.T) {
	ds, _ := buildDocs(t, docstore.BlockDocs, 13)
	ds.Data[len(ds.Data)/2] ^= 0x20
	eng := NewFetchEngine(ds, cache.NewSharded(1<<20, 1))
	m := perf.NewMetrics()
	var buf DocBuf
	err := eng.FetchInto(context.Background(), 0, m, &buf)
	if !errors.Is(err, docstore.ErrCorrupt) {
		t.Fatalf("err = %v, want docstore.ErrCorrupt", err)
	}
	if !errors.Is(err, mem.ErrMediaUncorrectable) {
		t.Fatalf("err = %v, want mem.ErrMediaUncorrectable for breaker classification", err)
	}
	if m.IntegrityFailures != 1 {
		t.Fatalf("IntegrityFailures = %d, want 1", m.IntegrityFailures)
	}
	if eng.Cache().Stats().ResidentEntries != 0 {
		t.Fatal("corrupt block was published to the cache")
	}
}

// TestFetchFaults exercises the seeded fault injector on the doc path.
func TestFetchFaults(t *testing.T) {
	ds, _ := buildDocs(t, 10*docstore.BlockDocs, 17)

	t.Run("transient retries", func(t *testing.T) {
		plan := &mem.FaultPlan{Seed: 7, TransientRate: 0.2}
		eng := NewFetchEngine(ds, nil)
		eng.SetFault(plan.InjectorFor(0))
		m := perf.NewMetrics()
		var buf DocBuf
		for i := 0; i < ds.NumDocs; i++ {
			if err := eng.FetchInto(context.Background(), uint32(i), m, &buf); err != nil {
				if errors.Is(err, mem.ErrTransientRead) {
					continue // retries exhausted: typed, acceptable at this rate
				}
				t.Fatal(err)
			}
		}
		buf.Release()
		if m.TransientRetries == 0 {
			t.Fatal("no transient retries recorded at 20% rate")
		}
	})

	t.Run("uncorrectable", func(t *testing.T) {
		plan := &mem.FaultPlan{Seed: 3, UncorrectableRate: 0.9}
		eng := NewFetchEngine(ds, nil)
		eng.SetFault(plan.InjectorFor(0))
		m := perf.NewMetrics()
		var buf DocBuf
		sawMedia := false
		for i := 0; i < ds.NumDocs && !sawMedia; i += docstore.BlockDocs {
			if err := eng.FetchInto(context.Background(), uint32(i), m, &buf); err != nil {
				if !errors.Is(err, mem.ErrMediaUncorrectable) {
					t.Fatalf("err = %v, want media error", err)
				}
				sawMedia = true
			}
		}
		if !sawMedia || m.IntegrityFailures == 0 {
			t.Fatalf("no media faults at 90%% rate (failures=%d)", m.IntegrityFailures)
		}
	})

	t.Run("device down", func(t *testing.T) {
		plan := &mem.FaultPlan{Seed: 1, DeadDevices: []int{0}}
		eng := NewFetchEngine(ds, nil)
		eng.SetFault(plan.InjectorFor(0))
		var buf DocBuf
		if err := eng.FetchInto(context.Background(), 0, perf.NewMetrics(), &buf); !errors.Is(err, mem.ErrDeviceDown) {
			t.Fatalf("err = %v, want ErrDeviceDown", err)
		}
	})

	t.Run("deterministic", func(t *testing.T) {
		plan := &mem.FaultPlan{Seed: 42, TransientRate: 0.05}
		run := func() *perf.Metrics {
			eng := NewFetchEngine(ds, nil)
			eng.SetFault(plan.InjectorFor(0))
			m := perf.NewMetrics()
			var buf DocBuf
			for i := 0; i < ds.NumDocs; i++ {
				_ = eng.FetchInto(context.Background(), uint32(i), m, &buf)
			}
			buf.Release()
			return m
		}
		a, b := run(), run()
		if *a != *b {
			t.Fatalf("faulty fetch nondeterministic:\n%+v\n%+v", a, b)
		}
	})
}

// TestFetchCtx: context errors are typed and fetched before any charge.
func TestFetchCtx(t *testing.T) {
	ds, _ := buildDocs(t, docstore.BlockDocs, 19)
	eng := NewFetchEngine(ds, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := perf.NewMetrics()
	var buf DocBuf
	if err := eng.FetchInto(ctx, 0, m, &buf); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m.SeqReadBytes != 0 {
		t.Fatal("cancelled fetch still charged the device")
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if err := eng.FetchInto(dctx, 0, m, &buf); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
}

// TestFetchEpochInvalidation: BumpEpoch forces re-decodes but leaves the
// simulated charges untouched (replay invariant holds across epochs).
func TestFetchEpochInvalidation(t *testing.T) {
	ds, texts := buildDocs(t, docstore.BlockDocs, 23)
	c := cache.NewSharded(16<<20, 1)
	eng := NewFetchEngine(ds, c)
	m := perf.NewMetrics()
	var buf DocBuf
	if err := eng.FetchInto(context.Background(), 1, m, &buf); err != nil {
		t.Fatal(err)
	}
	c.BumpEpoch()
	if err := eng.FetchInto(context.Background(), 1, m, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Fields[1], texts[1]) {
		t.Fatal("payload mismatch after epoch bump")
	}
	buf.Release()
	if st := c.Stats(); st.DocMisses != 2 || st.DocHits != 0 {
		t.Fatalf("stats after bump: %+v", st)
	}
}
