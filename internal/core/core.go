// Package core implements the paper's primary contribution: the BOSS
// accelerator model. A BOSS core executes the full first-stage search
// pipeline — block fetch with query-condition and score-based skipping,
// programmable decompression, pipelined multi-term intersection, a WAND
// union module, BM25 scoring, and a hardware top-k queue — while charging
// every byte of memory traffic and every pipeline cycle to the query's
// metrics. The decode path runs through internal/decomp's programmable
// decompression module, i.e. the same configurable datapath the paper
// synthesizes.
//
// Three early-termination configurations reproduce the paper's ablations:
// BOSS (block-level ET + WAND), BOSS-block-only (Figure 14), and
// BOSS-exhaustive (Figure 13).
package core

import (
	"fmt"
	"math"
	"sync"

	"boss/internal/compress"
	"boss/internal/decomp"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/query"
	"boss/internal/score"
	"boss/internal/sim"
	"boss/internal/topk"
)

// Hardware parameters of a BOSS core (Table I: 1 GHz, 4 decompression
// modules, 1 intersection module with 3 units, 1 union module, 4 scoring
// modules, 1 top-k module).
const (
	clockGHz         = 1.0
	decompUnits      = 4
	scoringUnits     = 4
	blockFetchCycles = 2  // metadata inspection per examined block
	fetchQueueDepth  = 16 // outstanding block requests per block-fetch module
	// metaChunkEntries is how many 19 B block-metadata records the block
	// fetch module prefetches per memory access (metadata is contiguous,
	// so skip records stream in chunks rather than one record at a time).
	metaChunkEntries = 32
	resultEntryBytes = 8
	pipelineDrain    = 64 // cycles to flush the pipeline per query
)

// DefaultK is the paper's default top-k depth.
const DefaultK = 1000

// MaxQueryTerms is the largest term count the device handles in hardware
// (four BOSS cores with chained mergers, Section IV-D); wider queries are
// split into subqueries by the host.
const MaxQueryTerms = 16

// Options selects the early-termination features, reproducing the paper's
// ablation variants.
type Options struct {
	// BlockET enables the block-fetch module's score-estimation unit
	// (BlockMaxWAND/interval-style per-block skipping for unions).
	BlockET bool
	// DocET enables the union module's WAND document-level skipping.
	DocET bool
	// FixedPoint scores in Q16.16 as the synthesized hardware does
	// (default float64 for bit-exact parity with the software engines).
	FixedPoint bool
	// SpillIntermediates disables the pipelined multi-term optimization:
	// each intersection pass round-trips its intermediate result through
	// memory, IIU-style (the ablation for DESIGN.md's pipeline choice).
	SpillIntermediates bool
	// HostTopK disables the hardware top-k module: the full scored result
	// list crosses the interconnect for host-side selection (the ablation
	// for the top-k design choice).
	HostTopK bool

	// decompConfigs, when non-nil, programs the decompression modules from
	// a parsed configuration file instead of the built-in per-scheme
	// programs (set via InitFromIndex).
	decompConfigs map[compress.Scheme]*decomp.Config
}

// DefaultOptions is full BOSS: both ET mechanisms on.
func DefaultOptions() Options { return Options{BlockET: true, DocET: true} }

// ExhaustiveOptions is the paper's BOSS-exhaustive ablation: multi-term
// pipelining and hardware top-k, but no early termination.
func ExhaustiveOptions() Options { return Options{} }

// BlockOnlyOptions is the paper's BOSS-block-only ablation (Figure 14).
func BlockOnlyOptions() Options { return Options{BlockET: true} }

// Accelerator is a BOSS device model over one index shard.
//
// An Accelerator is stateless after construction: Run takes all mutable
// per-query state from a run record it owns exclusively for the duration of
// the query and only reads the (immutable) index and options. It is
// therefore safe — and deterministic — to call Run concurrently from many
// goroutines, which is how the pool's parallel shard fan-out and RunBatch
// drive it. TestAcceleratorParallelDeterminism enforces this contract under
// the race detector.
//
// Run records (and their decoded-block buffers) recycle through sync.Pools;
// every slice and counter in a pooled record is reset or fully overwritten
// before reuse, so recycling changes allocation behaviour only, never
// results.
type Accelerator struct {
	idx  *index.Index
	opts Options
	runs sync.Pool // of *run
}

// New returns a BOSS accelerator with the given options.
func New(idx *index.Index, opts Options) *Accelerator {
	return &Accelerator{idx: idx, opts: opts}
}

// Result is the outcome of one query.
type Result struct {
	TopK []topk.Entry
	M    *perf.Metrics
}

// blockData caches one decoded block so conjuncts sharing a term are
// charged once. Decoded buffers recycle through blockDataPool; nothing that
// escapes a run references them (matches copy termTF values, results copy
// topk entries).
type blockData struct {
	docs []uint32
	tfs  []uint32
}

var blockDataPool = sync.Pool{New: func() any { return new(blockData) }}

// run tracks the state of one query execution on a BOSS core.
type run struct {
	acc *Accelerator
	m   *perf.Metrics
	sel *topk.ShiftRegisterQueue

	decoders  map[compress.Scheme]*decomp.Module
	loaded    map[*index.PostingList]map[int]*blockData
	metaSeen  map[*index.PostingList]map[int]bool
	metaCount map[*index.PostingList]int

	// Per-stream decode cycle totals; each posting-list stream owns a
	// decompression unit (the paper's intra-query limitation).
	decodeCycles map[*index.PostingList]float64

	fetchCycles float64
	mergeCycles float64
	scoreOps    float64
	topkInserts float64

	nTerms int

	// Union-path scratch, reused across intervals and across pooled runs
	// (union.go). Nothing retained beyond a call references these.
	ustreams []ustream
	streams  []*ustream
	covering []*ustream
	active   []*ustream
	matched  []*ustream
	terms    []termTF
}

// newRun takes a recycled run record (or builds a first one) and readies it
// for a query.
//
//boss:pool-escapes releaseRun returns the run to a.runs via Run's defer.
func (a *Accelerator) newRun(k, nTerms int) *run {
	r, ok := a.runs.Get().(*run)
	if !ok {
		r = &run{
			acc:          a,
			sel:          topk.NewShiftRegister(k),
			decoders:     make(map[compress.Scheme]*decomp.Module),
			loaded:       make(map[*index.PostingList]map[int]*blockData),
			metaSeen:     make(map[*index.PostingList]map[int]bool),
			metaCount:    make(map[*index.PostingList]int),
			decodeCycles: make(map[*index.PostingList]float64),
		}
	}
	// Metrics escape in the Result, so every run gets a fresh record.
	r.m = perf.NewMetrics()
	r.sel.Reset(k)
	r.nTerms = nTerms
	return r
}

// releaseRun returns a finished run's decoded blocks and the record itself
// to their pools. The decoder modules stay attached: they are configured
// per-Accelerator, and reusing a warm module is exactly what keeps decode at
// zero allocations.
func (a *Accelerator) releaseRun(r *run) {
	for _, blocks := range r.loaded {
		for _, bd := range blocks {
			// Truncate before pooling: DecodeInto overwrites via [:0] on
			// reuse, but a recycled block must never expose the previous
			// query's postings to a future code path that forgets to.
			bd.docs, bd.tfs = bd.docs[:0], bd.tfs[:0]
			blockDataPool.Put(bd)
		}
	}
	clear(r.loaded)
	clear(r.metaSeen)
	clear(r.metaCount)
	clear(r.decodeCycles)
	r.m = nil
	r.fetchCycles, r.mergeCycles, r.scoreOps, r.topkInserts = 0, 0, 0, 0
	a.runs.Put(r)
}

// Run executes a query with the given top-k depth.
func (a *Accelerator) Run(node *query.Node, k int) (Result, error) {
	conjuncts, lists, err := a.plan(node)
	if err != nil {
		return Result{}, err
	}
	r := a.newRun(k, len(lists))
	defer a.releaseRun(r)

	switch {
	case allSingleTerm(conjuncts):
		// Pure union (or a single term): the union module path with both
		// ET levels.
		streams := make([]*index.PostingList, len(conjuncts))
		for i, c := range conjuncts {
			streams[i] = c[0]
		}
		r.union(streams)
	case len(conjuncts) == 1:
		// Pure conjunction: the pipelined intersection path.
		r.scoreAll(r.intersect(conjuncts[0]))
	default:
		// Mixed query: intersections first (the paper's execution order),
		// then an on-chip union of the conjunct outputs.
		r.mixed(conjuncts)
	}

	// The hardware top-k module hands exactly k entries to the host over
	// the shared interconnect; nothing is staged in SCM. With the module
	// ablated (HostTopK), every scored document crosses instead.
	results := r.sel.Results()
	outBytes := int64(len(results)) * resultEntryBytes
	if a.opts.HostTopK {
		outBytes = r.m.DocsEvaluated * resultEntryBytes
	}
	r.m.AddHostWrite(outBytes, mem.CatStoreResult)

	r.m.AddCompute(r.computeTime())
	return Result{TopK: results, M: r.m}, nil
}

// plan converts the AST to DNF over posting lists, checking terms exist.
func (a *Accelerator) plan(node *query.Node) ([][]*index.PostingList, []*index.PostingList, error) {
	if n := node.NumTerms(); n > MaxQueryTerms {
		return nil, nil, fmt.Errorf("core: query has %d terms; hardware handles up to %d (split into subqueries on the host, Section IV-D)", n, MaxQueryTerms)
	}
	dnf := node.DNF()
	var conjuncts [][]*index.PostingList
	seen := make(map[string]*index.PostingList)
	var lists []*index.PostingList
	for _, conj := range dnf {
		pls := make([]*index.PostingList, 0, len(conj))
		for _, term := range conj {
			pl, ok := seen[term]
			if !ok {
				pl = a.idx.List(term)
				if pl == nil {
					return nil, nil, fmt.Errorf("core: term %q not indexed", term)
				}
				seen[term] = pl
				lists = append(lists, pl)
			}
			pls = append(pls, pl)
		}
		conjuncts = append(conjuncts, pls)
	}
	return conjuncts, lists, nil
}

func allSingleTerm(conjuncts [][]*index.PostingList) bool {
	for _, c := range conjuncts {
		if len(c) != 1 {
			return false
		}
	}
	return true
}

// computeTime assembles the pipeline-stage roofline: the busiest stage
// bounds throughput because all stages overlap.
func (r *run) computeTime() sim.Duration {
	// Decompression: one unit per stream, at most decompUnits concurrent.
	var decode float64
	if len(r.decodeCycles) <= decompUnits {
		for _, c := range r.decodeCycles {
			if c > decode {
				decode = c
			}
		}
	} else {
		var total, max float64
		for _, c := range r.decodeCycles {
			total += c
			if c > max {
				max = c
			}
		}
		decode = math.Max(max, total/decompUnits)
	}
	units := r.nTerms
	if units > scoringUnits {
		units = scoringUnits
	}
	if units < 1 {
		units = 1
	}
	scoreStage := r.scoreOps / float64(units)
	stage := math.Max(decode, math.Max(r.fetchCycles, math.Max(r.mergeCycles, math.Max(scoreStage, r.topkInserts))))
	return sim.Duration((stage + pipelineDrain) / clockGHz * float64(sim.Nanosecond))
}

// chargeMeta accounts the sequential metadata read of one examined block
// (once per block per query).
//
//boss:hotpath one call per examined block, skipped or fetched.
func (r *run) chargeMeta(pl *index.PostingList, b int) {
	seen := r.metaSeen[pl]
	if seen == nil {
		seen = make(map[int]bool)
		r.metaSeen[pl] = seen
	}
	if seen[b] {
		return
	}
	seen[b] = true
	// The first record of each chunk triggers one streaming prefetch of
	// metaChunkEntries records.
	if r.metaCount[pl]%metaChunkEntries == 0 {
		r.m.AddSeqRead(metaChunkEntries*index.BlockMetaBytes, mem.CatLoadList)
	}
	r.metaCount[pl]++
	r.fetchCycles += blockFetchCycles
}

// decoder returns the programmable decompression module configured for a
// scheme (one per scheme per query, modeling reconfiguration at init()).
func (r *run) decoder(s compress.Scheme) *decomp.Module {
	d, ok := r.decoders[s]
	if !ok {
		if cfgs := r.acc.opts.decompConfigs; cfgs != nil {
			cfg, ok := cfgs[s]
			if !ok {
				panic(fmt.Sprintf("core: configuration file programs no decoder for scheme %s", s))
			}
			var err error
			d, err = decomp.NewModule(cfg)
			if err != nil {
				panic(fmt.Sprintf("core: bad decoder configuration for %s: %v", s, err))
			}
		} else {
			d = decomp.NewModuleFor(s)
		}
		r.decoders[s] = d
	}
	return d
}

// fetchBlock loads and decodes a block through the programmable
// decompression module, charging traffic and cycles once per query.
//
//boss:hotpath one call per block examined; the per-block decode loop.
//boss:pool-escapes decoded blocks live in r.loaded until releaseRun pools them.
func (r *run) fetchBlock(pl *index.PostingList, b int) *blockData {
	blocks := r.loaded[pl]
	if blocks == nil {
		blocks = make(map[int]*blockData)
		r.loaded[pl] = blocks
	}
	if bd, ok := blocks[b]; ok {
		return bd
	}
	meta := pl.Blocks[b]
	r.chargeMeta(pl, b)
	// BOSS fetches blocks in ascending docID order with look-ahead from
	// the metadata scan, so even post-skip fetches stream at sequential
	// bandwidth (Section V-B contrasts this with IIU's random access).
	r.m.AddSeqRead(int64(meta.Length), mem.CatLoadList)
	r.m.BlocksFetched++
	// The block-fetch module keeps a bounded number of requests in flight;
	// each windowful exposes one device read latency on the pipeline.
	if r.m.BlocksFetched%fetchQueueDepth == 0 {
		r.m.SerialFetchHops++
	}
	r.m.PostingsDecoded += int64(meta.Count)

	payload := pl.Data[meta.Offset : meta.Offset+meta.Length]
	mod := r.decoder(pl.Scheme)
	bd := blockDataPool.Get().(*blockData)
	docs, used, cyc1, err := mod.DecodeInto(bd.docs[:0], payload, int(meta.Count), meta.FirstDoc, true)
	if err != nil {
		panic(decodeFailure("decompression", err))
	}
	tfs, _, cyc2, err := mod.DecodeInto(bd.tfs[:0], payload[used:], int(meta.Count), 0, false)
	if err != nil {
		panic(decodeFailure("tf decompression", err))
	}
	r.decodeCycles[pl] += float64(cyc1 + cyc2)
	bd.docs, bd.tfs = docs, tfs
	blocks[b] = bd
	return bd
}

// decodeFailure formats the message for a corrupt-block panic. Outlined
// from fetchBlock so the hot path carries no fmt call (hotpathalloc).
func decodeFailure(what string, err error) string {
	return fmt.Sprintf("core: %s failed: %v", what, err)
}

// cutoff returns the current top-k threshold (-Inf while not full).
func (r *run) cutoff() float64 { return r.sel.Threshold() }

// scoreDoc scores one document given its matched term postings, charges
// norm traffic and scoring work, and offers it to the top-k module.
//
//boss:hotpath one call per evaluated document.
func (r *run) scoreDoc(doc uint32, terms []termTF) {
	r.m.DocsEvaluated++
	// One per-document scoring-metadata access (the paper's +4 B/doc BM25
	// normalizer). Scored docIDs ascend within a query, so the access
	// stream is prefetch-friendly: charged at sequential bandwidth.
	r.m.AddSeqRead(index.DocNormBytes, mem.CatLoadScore)
	var s float64
	for _, tt := range terms {
		if r.acc.opts.FixedPoint {
			p := r.acc.idx.Params
			fs := p.FixedTermScore(
				score.ToFixed(tt.pl.IDF),
				tt.tf,
				score.ToFixed(r.acc.idx.DocNorms[doc]),
			)
			s += fs.Float()
		} else {
			s += r.acc.idx.TermScore(tt.pl, doc, tt.tf)
		}
		r.scoreOps++
	}
	r.topkInserts++
	r.sel.Insert(doc, s)
}

// termTF is one matched term's posting data for a document.
type termTF struct {
	pl *index.PostingList
	tf uint32
}

// match is a matched document with all its term postings.
type match struct {
	doc   uint32
	terms []termTF
}

// scoreAll scores a sorted match list.
func (r *run) scoreAll(matches []match) {
	for _, m := range matches {
		r.scoreDoc(m.doc, m.terms)
	}
}
