// Package core implements the paper's primary contribution: the BOSS
// accelerator model. A BOSS core executes the full first-stage search
// pipeline — block fetch with query-condition and score-based skipping,
// programmable decompression, pipelined multi-term intersection, a WAND
// union module, BM25 scoring, and a hardware top-k queue — while charging
// every byte of memory traffic and every pipeline cycle to the query's
// metrics. The decode path runs through internal/decomp's programmable
// decompression module, i.e. the same configurable datapath the paper
// synthesizes.
//
// Three early-termination configurations reproduce the paper's ablations:
// BOSS (block-level ET + WAND), BOSS-block-only (Figure 14), and
// BOSS-exhaustive (Figure 13).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"boss/internal/cache"
	"boss/internal/compress"
	"boss/internal/decomp"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/query"
	"boss/internal/score"
	"boss/internal/sim"
	"boss/internal/topk"
)

// Hardware parameters of a BOSS core (Table I: 1 GHz, 4 decompression
// modules, 1 intersection module with 3 units, 1 union module, 4 scoring
// modules, 1 top-k module).
const (
	clockGHz         = 1.0
	decompUnits      = 4
	scoringUnits     = 4
	blockFetchCycles = 2  // metadata inspection per examined block
	fetchQueueDepth  = 16 // outstanding block requests per block-fetch module
	// metaChunkEntries is how many 19 B block-metadata records the block
	// fetch module prefetches per memory access (metadata is contiguous,
	// so skip records stream in chunks rather than one record at a time).
	metaChunkEntries = 32
	resultEntryBytes = 8
	pipelineDrain    = 64 // cycles to flush the pipeline per query
)

// DefaultK is the paper's default top-k depth.
const DefaultK = 1000

// ErrDeadlineExceeded reports that a query's context expired while the
// pipeline was still fetching blocks. It wraps the causing
// context.DeadlineExceeded, so both errors.Is targets match.
var ErrDeadlineExceeded = errors.New("core: query deadline exceeded")

// ErrNoImpacts reports a sparse-dot (Q7) query against a posting list
// built without impact payloads (index.BuildOptions.Impacts).
var ErrNoImpacts = errors.New("core: posting list carries no quantized impacts (index built without Impacts)")

// maxFetchAttempts bounds inline re-reads of a block after injected
// transient faults before the run gives up (device firmware retry
// budget).
const maxFetchAttempts = 4

// MaxQueryTerms is the largest term count the device handles in hardware
// (four BOSS cores with chained mergers, Section IV-D); wider queries are
// split into subqueries by the host.
const MaxQueryTerms = 16

// Options selects the early-termination features, reproducing the paper's
// ablation variants.
type Options struct {
	// BlockET enables the block-fetch module's score-estimation unit
	// (BlockMaxWAND/interval-style per-block skipping for unions).
	BlockET bool
	// DocET enables the union module's WAND document-level skipping.
	DocET bool
	// FixedPoint scores in Q16.16 as the synthesized hardware does
	// (default float64 for bit-exact parity with the software engines).
	FixedPoint bool
	// SpillIntermediates disables the pipelined multi-term optimization:
	// each intersection pass round-trips its intermediate result through
	// memory, IIU-style (the ablation for DESIGN.md's pipeline choice).
	SpillIntermediates bool
	// HostTopK disables the hardware top-k module: the full scored result
	// list crosses the interconnect for host-side selection (the ablation
	// for the top-k design choice).
	HostTopK bool

	// ModelDRAMCache makes the *simulated* pipeline aware of the decoded-
	// block cache: a hit is charged as a DRAM sequential read of the
	// decoded block (no SCM traffic, no decompression cycles, no fetch-
	// queue hop) instead of replaying the SCM fetch + decode. Default off,
	// which keeps every modeled figure bit-identical to a cache-free run —
	// the cache then only removes host-side work. This is a paper-style
	// what-if: "what would BOSS gain from a DRAM-resident block cache?"
	ModelDRAMCache bool

	// decompConfigs, when non-nil, programs the decompression modules from
	// a parsed configuration file instead of the built-in per-scheme
	// programs (set via InitFromIndex).
	decompConfigs map[compress.Scheme]*decomp.Config
}

// DefaultOptions is full BOSS: both ET mechanisms on.
func DefaultOptions() Options { return Options{BlockET: true, DocET: true} }

// ExhaustiveOptions is the paper's BOSS-exhaustive ablation: multi-term
// pipelining and hardware top-k, but no early termination.
func ExhaustiveOptions() Options { return Options{} }

// BlockOnlyOptions is the paper's BOSS-block-only ablation (Figure 14).
func BlockOnlyOptions() Options { return Options{BlockET: true} }

// Accelerator is a BOSS device model over one index shard.
//
// An Accelerator is stateless after construction: Run takes all mutable
// per-query state from a run record it owns exclusively for the duration of
// the query and only reads the (immutable) index and options. It is
// therefore safe — and deterministic — to call Run concurrently from many
// goroutines, which is how the pool's parallel shard fan-out and RunBatch
// drive it. TestAcceleratorParallelDeterminism enforces this contract under
// the race detector.
//
// Run records (and their decoded-block buffers) recycle through sync.Pools;
// every slice and counter in a pooled record is reset or fully overwritten
// before reuse, so recycling changes allocation behaviour only, never
// results.
type Accelerator struct {
	idx  *index.Index
	opts Options
	runs sync.Pool // of *run

	// cache, when non-nil, is the cross-query decoded-block cache shared by
	// every run (and, in a cluster, by every shard's accelerator).
	cache *cache.Cache

	// fault, when non-nil, injects the attached FaultPlan's read errors
	// into every block fetch. Nil keeps the fetch path byte-identical
	// to the fault-free model.
	fault *mem.Injector
}

// New returns a BOSS accelerator with the given options.
func New(idx *index.Index, opts Options) *Accelerator {
	return &Accelerator{idx: idx, opts: opts}
}

// NewCached returns an accelerator that serves decoded blocks from the
// given cross-query cache (nil behaves exactly like New).
func NewCached(idx *index.Index, opts Options, c *cache.Cache) *Accelerator {
	return &Accelerator{idx: idx, opts: opts, cache: c}
}

// SetCache attaches (or, with nil, detaches) the decoded-block cache. Not
// safe concurrently with Run; meant for setup time and benchmarks.
func (a *Accelerator) SetCache(c *cache.Cache) { a.cache = c }

// Cache returns the attached decoded-block cache, or nil.
func (a *Accelerator) Cache() *cache.Cache { return a.cache }

// SetFault attaches a fault injector (nil restores the pristine model).
// Not safe concurrently with Run; meant for setup time and chaos tests.
func (a *Accelerator) SetFault(inj *mem.Injector) { a.fault = inj }

// Fault returns the attached injector, or nil.
func (a *Accelerator) Fault() *mem.Injector { return a.fault }

// Result is the outcome of one query.
type Result struct {
	TopK []topk.Entry
	M    *perf.Metrics
}

// blockData caches one decoded block so conjuncts sharing a term are
// charged once. Decoded buffers recycle through blockDataPool; nothing that
// escapes a run references them (matches copy termTF values, results copy
// topk entries). When the block came from the cross-query cache, docs/tfs
// alias the pinned entry ent (released by releaseRun) and the record's own
// buffers are unused.
type blockData struct {
	docs []uint32
	tfs  []uint32
	ent  *cache.Entry
}

var blockDataPool = sync.Pool{New: func() any { return new(blockData) }}

// listState gathers all per-(run, posting-list) bookkeeping behind a single
// map probe: decoded blocks, metadata-prefetch accounting, and the stream's
// decode-cycle total (each posting-list stream owns a decompression unit —
// the paper's intra-query limitation).
type listState struct {
	blocks    map[int]*blockData
	metaSeen  map[int]bool
	metaCount int
	cycles    float64
	decoded   bool // the stream ran its decompression unit at least once
}

// run tracks the state of one query execution on a BOSS core.
type run struct {
	acc *Accelerator
	m   *perf.Metrics
	sel *topk.ShiftRegisterQueue

	decoders map[compress.Scheme]*decomp.Module
	lists    map[*index.PostingList]*listState
	lsFree   []*listState // cleared listState records awaiting reuse

	fetchCycles float64
	mergeCycles float64
	scoreOps    float64
	topkInserts float64

	nTerms int

	// ctx, when non-nil, is the query's deadline/cancellation context,
	// checked once per block fetch. err latches the first failure on
	// any execution path; once set, the paths unwind without further
	// fetches and RunDNF returns it instead of a Result.
	ctx context.Context
	err error

	// Union-path scratch, reused across intervals and across pooled runs
	// (union.go). Nothing retained beyond a call references these.
	ustreams []ustream
	streams  []*ustream
	covering []*ustream
	active   []*ustream
	matched  []*ustream
	terms    []termTF

	// Intersection-path scratch (intersect.go). Match records carve their
	// term slices out of termArena instead of allocating one tiny []termTF
	// per matched document; filled chunks retire to termRetired until the
	// run ends. matchBufs holds one reusable []match per conjunct.
	termArena   []termTF
	termRetired [][]termTF
	matchBufs   [][]match
	matchBufN   int
	ordScratch  []*index.PostingList
	mergePos    []int

	// Per-family scoring strategy, resolved once per run: the boolean
	// families (Q1–Q6) recompute BM25 through bm25, the sparse family
	// (Q7) reads precomputed impacts through impact. Both live on the
	// record so resolving the interface never allocates.
	scorer Scorer
	bm25   bm25Scorer
	impact impactScorer

	// Sparse-path scratch (sparse.go), reused like the union scratch.
	sstreams []sstream
	sorder   []*sstream
	sprefix  []float64
}

// allocTerms carves a zero-length termTF slice with capacity n out of the
// run's arena. Appending up to n elements writes into the arena; the carved
// slice stays valid until releaseRun.
func (r *run) allocTerms(n int) []termTF {
	if len(r.termArena)+n > cap(r.termArena) {
		if cap(r.termArena) > 0 {
			r.termRetired = append(r.termRetired, r.termArena)
		}
		c := 2 * cap(r.termArena)
		if c < 1024 {
			c = 1024
		}
		if c < n {
			c = n
		}
		r.termArena = make([]termTF, 0, c)
	}
	base := len(r.termArena)
	r.termArena = r.termArena[:base+n]
	return r.termArena[base : base : base+n]
}

// grabMatchBuf hands out the next reusable match buffer; the caller stores
// the grown slice back with putMatchBuf so the capacity survives the query.
func (r *run) grabMatchBuf() (int, []match) {
	i := r.matchBufN
	r.matchBufN++
	if i >= len(r.matchBufs) {
		r.matchBufs = append(r.matchBufs, nil)
	}
	return i, r.matchBufs[i][:0]
}

func (r *run) putMatchBuf(i int, m []match) { r.matchBufs[i] = m }

// newRun takes a recycled run record (or builds a first one) and readies it
// for a query.
//
//boss:pool-escapes releaseRun returns the run to a.runs via Run's defer.
func (a *Accelerator) newRun(k, nTerms int) *run {
	r, ok := a.runs.Get().(*run)
	if !ok {
		r = &run{
			acc:      a,
			sel:      topk.NewShiftRegister(k),
			decoders: make(map[compress.Scheme]*decomp.Module),
			lists:    make(map[*index.PostingList]*listState),
		}
	}
	// Metrics escape in the Result, so every run gets a fresh record.
	r.m = perf.NewMetrics()
	r.sel.Reset(k)
	r.nTerms = nTerms
	r.ctx = nil
	r.err = nil
	// Default to the BM25-recompute scorer; the sparse path swaps in the
	// impact reader before executing.
	r.bm25.idx = a.idx
	r.bm25.fixedPoint = a.opts.FixedPoint
	r.scorer = &r.bm25
	return r
}

// releaseRun returns a finished run's decoded blocks and the record itself
// to their pools. The decoder modules stay attached: they are configured
// per-Accelerator, and reusing a warm module is exactly what keeps decode at
// zero allocations.
func (a *Accelerator) releaseRun(r *run) {
	for _, ls := range r.lists {
		for _, bd := range ls.blocks {
			if bd.ent != nil {
				// Cache-backed block: unpin the entry and drop the aliases —
				// the slab belongs to the cache, never to the pooled record.
				a.cache.Release(bd.ent)
				bd.ent = nil
				bd.docs, bd.tfs = nil, nil
			} else {
				// Truncate before pooling: DecodeInto overwrites via [:0] on
				// reuse, but a recycled block must never expose the previous
				// query's postings to a future code path that forgets to.
				bd.docs, bd.tfs = bd.docs[:0], bd.tfs[:0]
			}
			blockDataPool.Put(bd)
		}
		clear(ls.blocks)
		clear(ls.metaSeen)
		ls.metaCount = 0
		ls.cycles = 0
		ls.decoded = false
		r.lsFree = append(r.lsFree, ls)
	}
	clear(r.lists)
	// Reset the term arena (keeping the newest, largest chunk) and clear the
	// match buffers so stale match records cannot pin retired arena chunks
	// or posting lists across queries.
	r.termArena = r.termArena[:0]
	clear(r.termRetired)
	r.termRetired = r.termRetired[:0]
	for i := range r.matchBufs {
		b := r.matchBufs[i]
		clear(b[:cap(b)])
	}
	r.matchBufN = 0
	r.m = nil
	r.ctx = nil
	r.err = nil
	r.scorer = nil
	// Sparse scratch holds posting-list pointers; clear so a pooled run
	// never pins a previous query's lists.
	clear(r.sstreams)
	r.sstreams = r.sstreams[:0]
	clear(r.sorder)
	r.sorder = r.sorder[:0]
	r.sprefix = r.sprefix[:0]
	r.fetchCycles, r.mergeCycles, r.scoreOps, r.topkInserts = 0, 0, 0, 0
	a.runs.Put(r)
}

// Run executes a query with the given top-k depth.
func (a *Accelerator) Run(node *query.Node, k int) (Result, error) {
	return a.RunCtx(nil, node, k)
}

// RunCtx executes a query under a context: the pipeline checks for
// cancellation once per block fetch and returns an error wrapping
// ErrDeadlineExceeded (deadline) or context.Canceled (cancellation)
// instead of a result. A nil context behaves exactly like Run.
func (a *Accelerator) RunCtx(ctx context.Context, node *query.Node, k int) (Result, error) {
	if n := node.CountTerms(); n > MaxQueryTerms {
		return Result{}, fmt.Errorf("core: query has %d terms; hardware handles up to %d (split into subqueries on the host, Section IV-D)", n, MaxQueryTerms)
	}
	if node.Op == query.OpSparse {
		return a.runSparse(ctx, node.Terms(), k)
	}
	return a.runDNF(ctx, node.DNF(), k)
}

// RunDNF executes a query already normalized to disjunctive normal form.
// Callers that fan one query out to several accelerators (pool.Cluster)
// normalize once and share the DNF; the term-count limit is the caller's to
// enforce (Run checks it against the AST).
func (a *Accelerator) RunDNF(dnf [][]string, k int) (Result, error) {
	return a.runDNF(nil, dnf, k)
}

// RunDNFCtx is RunDNF under a deadline/cancellation context.
func (a *Accelerator) RunDNFCtx(ctx context.Context, dnf [][]string, k int) (Result, error) {
	return a.runDNF(ctx, dnf, k)
}

// RunSparse executes a sparse-dot (Q7) query over the given terms.
// Callers that fan one sparse query out to several accelerators
// (pool.Cluster) extract the term list once and share it; the term-count
// limit is the caller's to enforce (Run checks it against the AST).
func (a *Accelerator) RunSparse(terms []string, k int) (Result, error) {
	return a.runSparse(nil, terms, k)
}

// RunSparseCtx is RunSparse under a deadline/cancellation context.
func (a *Accelerator) RunSparseCtx(ctx context.Context, terms []string, k int) (Result, error) {
	return a.runSparse(ctx, terms, k)
}

func (a *Accelerator) runDNF(ctx context.Context, dnf [][]string, k int) (Result, error) {
	if ctx != nil {
		if cause := ctx.Err(); cause != nil {
			return Result{}, ctxError(cause)
		}
	}
	conjuncts, lists, err := a.plan(dnf)
	if err != nil {
		return Result{}, err
	}
	r := a.newRun(k, len(lists))
	defer a.releaseRun(r)
	r.ctx = ctx

	switch {
	case allSingleTerm(conjuncts):
		// Pure union (or a single term): the union module path with both
		// ET levels.
		streams := make([]*index.PostingList, len(conjuncts))
		for i, c := range conjuncts {
			streams[i] = c[0]
		}
		r.union(streams)
	case len(conjuncts) == 1:
		// Pure conjunction: the pipelined intersection path.
		if ms := r.intersect(conjuncts[0]); r.err == nil {
			r.scoreAll(ms)
		}
	default:
		// Mixed query: intersections first (the paper's execution order),
		// then an on-chip union of the conjunct outputs.
		r.mixed(conjuncts)
	}
	if r.err != nil {
		return Result{}, r.err
	}

	// The hardware top-k module hands exactly k entries to the host over
	// the shared interconnect; nothing is staged in SCM. With the module
	// ablated (HostTopK), every scored document crosses instead.
	results := r.sel.Results()
	outBytes := int64(len(results)) * resultEntryBytes
	if a.opts.HostTopK {
		outBytes = r.m.DocsEvaluated * resultEntryBytes
	}
	r.m.AddHostWrite(outBytes, mem.CatStoreResult)

	r.m.AddCompute(r.computeTime())
	return Result{TopK: results, M: r.m}, nil
}

// plan resolves a DNF's terms to posting lists, checking they exist.
func (a *Accelerator) plan(dnf [][]string) ([][]*index.PostingList, []*index.PostingList, error) {
	var conjuncts [][]*index.PostingList
	seen := make(map[string]*index.PostingList)
	var lists []*index.PostingList
	for _, conj := range dnf {
		pls := make([]*index.PostingList, 0, len(conj))
		for _, term := range conj {
			pl, ok := seen[term]
			if !ok {
				pl = a.idx.List(term)
				if pl == nil {
					return nil, nil, fmt.Errorf("core: term %q not indexed", term)
				}
				seen[term] = pl
				lists = append(lists, pl)
			}
			pls = append(pls, pl)
		}
		conjuncts = append(conjuncts, pls)
	}
	return conjuncts, lists, nil
}

func allSingleTerm(conjuncts [][]*index.PostingList) bool {
	for _, c := range conjuncts {
		if len(c) != 1 {
			return false
		}
	}
	return true
}

// computeTime assembles the pipeline-stage roofline: the busiest stage
// bounds throughput because all stages overlap.
func (r *run) computeTime() sim.Duration {
	// Decompression: one unit per stream, at most decompUnits concurrent.
	// Only streams that actually decoded count toward unit contention (a
	// list that was examined but never fetched holds no unit).
	var decode float64
	var total, max float64
	streams := 0
	for _, ls := range r.lists {
		if !ls.decoded {
			continue
		}
		streams++
		total += ls.cycles
		if ls.cycles > max {
			max = ls.cycles
		}
	}
	if streams <= decompUnits {
		decode = max
	} else {
		decode = math.Max(max, total/decompUnits)
	}
	units := r.nTerms
	if units > scoringUnits {
		units = scoringUnits
	}
	if units < 1 {
		units = 1
	}
	scoreStage := r.scoreOps / float64(units)
	stage := math.Max(decode, math.Max(r.fetchCycles, math.Max(r.mergeCycles, math.Max(scoreStage, r.topkInserts))))
	return sim.Duration((stage + pipelineDrain) / clockGHz * float64(sim.Nanosecond))
}

// stateFor returns (creating on first touch) the run's bookkeeping record
// for a posting list. Cleared records recycle through lsFree so steady-state
// queries probe one map and allocate nothing.
//
//boss:hotpath one call per (list, pass) on each execution path.
func (r *run) stateFor(pl *index.PostingList) *listState {
	ls := r.lists[pl]
	if ls == nil {
		if n := len(r.lsFree); n > 0 {
			ls = r.lsFree[n-1]
			r.lsFree = r.lsFree[:n-1]
		} else {
			ls = &listState{blocks: make(map[int]*blockData), metaSeen: make(map[int]bool)} //boss:escape-ok free-list miss: one listState per first-touched list, recycled via lsFree
		}
		r.lists[pl] = ls
	}
	return ls
}

// chargeMeta accounts the sequential metadata read of one examined block
// (once per block per query).
//
//boss:hotpath one call per examined block, skipped or fetched.
func (r *run) chargeMeta(ls *listState, b int) {
	if ls.metaSeen[b] {
		return
	}
	ls.metaSeen[b] = true
	// The first record of each chunk triggers one streaming prefetch of
	// metaChunkEntries records.
	if ls.metaCount%metaChunkEntries == 0 {
		r.m.AddSeqRead(metaChunkEntries*index.BlockMetaBytes, mem.CatLoadList)
	}
	ls.metaCount++
	r.fetchCycles += blockFetchCycles
}

// decoder returns the programmable decompression module configured for a
// scheme (one per scheme per query, modeling reconfiguration at init()).
// On a misconfiguration it latches a typed error on the run and returns
// nil instead of panicking.
func (r *run) decoder(s compress.Scheme) *decomp.Module {
	d, ok := r.decoders[s]
	if !ok {
		if cfgs := r.acc.opts.decompConfigs; cfgs != nil {
			cfg, ok := cfgs[s]
			if !ok {
				r.fail(fmt.Errorf("core: configuration file programs no decoder for scheme %s", s))
				return nil
			}
			var err error
			d, err = decomp.NewModule(cfg)
			if err != nil {
				r.fail(fmt.Errorf("core: bad decoder configuration for %s: %w", s, err))
				return nil
			}
		} else {
			d = decomp.NewModuleFor(s)
		}
		r.decoders[s] = d
	}
	return d
}

// fetchBlock loads and decodes a block through the programmable
// decompression module, charging traffic and cycles once per query.
//
// On any failure — expired context, injected device fault, checksum
// mismatch, decode error — it latches a typed error on the run (r.err)
// and returns nil; callers unwind on nil and RunDNF surfaces the error.
//
//boss:hotpath one call per block examined; the per-block decode loop.
//boss:pool-escapes decoded blocks live in r.lists until releaseRun pools them.
func (r *run) fetchBlock(ls *listState, pl *index.PostingList, b int) *blockData {
	if bd, ok := ls.blocks[b]; ok {
		return bd
	}
	if r.ctx != nil {
		if cause := r.ctx.Err(); cause != nil {
			r.failCtx(cause)
			return nil
		}
	}
	meta := pl.Blocks[b]
	r.chargeMeta(ls, b)

	ch := r.acc.cache
	var ent *cache.Entry
	if ch != nil {
		ent = ch.Get(cache.Key{List: pl.ID(), Block: uint32(b)})
	}
	if ent != nil && r.acc.opts.ModelDRAMCache {
		// What-if mode: the modeled device holds decoded hot blocks in its
		// DRAM tier, so a hit costs one DRAM sequential read of the decoded
		// form — no SCM traffic, no decompression cycles, and no fetch-
		// queue hop (the DRAM read hides under the pipeline).
		r.m.CacheHits++
		r.m.AddCacheRead(int64(len(ent.Docs())+len(ent.Tfs())) * 4)
		bd := blockDataPool.Get().(*blockData)
		bd.ent = ent
		bd.docs, bd.tfs = ent.Docs(), ent.Tfs()
		ls.blocks[b] = bd
		return bd
	}

	// From here on every simulated charge is identical whether the decoded
	// form comes from the cache or from a fresh decode: the modeled device
	// has no DRAM block cache (unless ModelDRAMCache above), so a host-side
	// hit must replay the SCM fetch, the queue hop, and the decode cycles
	// the entry recorded at publish time. Only host work is saved.
	//
	// BOSS fetches blocks in ascending docID order with look-ahead from
	// the metadata scan, so even post-skip fetches stream at sequential
	// bandwidth (Section V-B contrasts this with IIU's random access).
	// With a fault injector attached, the stream charge goes through the
	// fault-aware path (which may retry or fail the run); the nil branch
	// is the byte-identical pristine model.
	if inj := r.acc.fault; inj != nil {
		if !r.chargeFaultyRead(inj, pl, meta, b) {
			if ent != nil {
				ch.Release(ent)
			}
			return nil
		}
	} else {
		r.m.AddSeqRead(int64(meta.Length), mem.CatLoadList)
	}
	r.m.BlocksFetched++
	// The block-fetch module keeps a bounded number of requests in flight;
	// each windowful exposes one device read latency on the pipeline.
	if r.m.BlocksFetched%fetchQueueDepth == 0 {
		r.m.SerialFetchHops++
	}
	r.m.PostingsDecoded += int64(meta.Count)

	if ent != nil {
		ls.cycles += float64(ent.Cycles())
		ls.decoded = true
		bd := blockDataPool.Get().(*blockData)
		bd.ent = ent
		bd.docs, bd.tfs = ent.Docs(), ent.Tfs()
		ls.blocks[b] = bd
		return bd
	}

	payload := pl.Data[meta.Offset : meta.Offset+meta.Length]
	// Integrity gate: verify the payload CRC before decoding so real
	// corruption is detected and typed instead of silently scored (and
	// never published to the shared cache). Zero means unchecksummed.
	if meta.Checksum != 0 && index.ChecksumPayload(payload) != meta.Checksum {
		r.m.IntegrityFailures++
		r.failCorrupt(pl, b) //boss:escape-ok cold corrupt-block error path
		return nil
	}
	mod := r.decoder(pl.Scheme)
	if mod == nil {
		return nil // r.err latched by decoder
	}
	bd := blockDataPool.Get().(*blockData)
	if ch != nil {
		// Miss with a cache attached: decode straight into a cache-owned
		// slab and publish so the next query hits. A failed decode
		// releases the reserved (never published) entry.
		n := int(meta.Count)
		e := ch.Reserve(n)
		docs, used, cyc1, err := mod.DecodeInto(e.DocsBuf(n), payload, n, meta.FirstDoc, true)
		if err != nil {
			ch.Release(e)
			bd.docs, bd.tfs = bd.docs[:0], bd.tfs[:0]
			blockDataPool.Put(bd)
			r.failDecode("decompression", pl, b, err)
			return nil
		}
		tfs, _, cyc2, err := mod.DecodeInto(e.TfsBuf(n), payload[used:], n, 0, false)
		if err != nil {
			ch.Release(e)
			bd.docs, bd.tfs = bd.docs[:0], bd.tfs[:0]
			blockDataPool.Put(bd)
			r.failDecode("tf decompression", pl, b, err)
			return nil
		}
		cyc := cyc1 + cyc2
		ls.cycles += float64(cyc)
		ls.decoded = true
		e = ch.Publish(cache.Key{List: pl.ID(), Block: uint32(b)}, e, docs, tfs, int64(cyc))
		bd.ent = e
		bd.docs, bd.tfs = e.Docs(), e.Tfs()
		ls.blocks[b] = bd
		return bd
	}
	docs, used, cyc1, err := mod.DecodeInto(bd.docs[:0], payload, int(meta.Count), meta.FirstDoc, true)
	if err != nil {
		blockDataPool.Put(bd)
		r.failDecode("decompression", pl, b, err)
		return nil
	}
	tfs, _, cyc2, err := mod.DecodeInto(bd.tfs[:0], payload[used:], int(meta.Count), 0, false)
	if err != nil {
		bd.docs = docs
		blockDataPool.Put(bd)
		r.failDecode("tf decompression", pl, b, err)
		return nil
	}
	ls.cycles += float64(cyc1 + cyc2)
	ls.decoded = true
	bd.docs, bd.tfs = docs, tfs
	ls.blocks[b] = bd
	return bd
}

// chargeFaultyRead streams one block from the device under the fault
// injector, retrying transient faults inline: the device firmware
// re-reads the block (each attempt re-charges its traffic) up to
// maxFetchAttempts times. Returns false after latching a typed error on
// an unrecoverable fault.
//
//boss:hotpath the fault-aware arm of the per-block fetch loop.
func (r *run) chargeFaultyRead(inj *mem.Injector, pl *index.PostingList, meta index.BlockMeta, b int) bool {
	if inj.Dead() {
		r.failDown(pl, b) //boss:escape-ok cold device-down error path
		return false
	}
	key := mem.StableKey(pl.Term)
	for attempt := uint32(0); ; attempt++ {
		r.m.AddSeqRead(int64(meta.Length), mem.CatLoadList)
		switch inj.BlockFault(key, uint32(b), attempt) {
		case mem.FaultNone:
			return true
		case mem.FaultUncorrectable:
			// The device's own ECC/CRC detected an unrecoverable media
			// error — same detection path as a host-side checksum miss.
			r.m.IntegrityFailures++
			r.failMedia(pl, b) //boss:escape-ok cold media-fault error path
			return false
		case mem.FaultDeviceDown:
			r.failDown(pl, b) //boss:escape-ok cold device-down error path
			return false
		default: // mem.FaultTransient
			r.m.TransientRetries++
			if attempt+1 >= maxFetchAttempts {
				r.failTransient(pl, b) //boss:escape-ok cold transient-exhausted error path
				return false
			}
		}
	}
}

// fail latches the first error of the run; later paths unwind on it.
//
//boss:hotpath called from the per-block fetch loop.
func (r *run) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// The fail* helpers build wrapped, typed errors. Outlined from the hot
// fetch path so it carries no fmt calls (hotpathalloc); they only run
// when a query is already failing.

func (r *run) failCtx(cause error) { r.fail(ctxError(cause)) }

// ctxError types a context failure: deadline expiries additionally wrap
// ErrDeadlineExceeded; plain cancellations propagate context.Canceled.
func ctxError(cause error) error {
	if errors.Is(cause, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, cause)
	}
	return cause
}

func (r *run) failCorrupt(pl *index.PostingList, b int) {
	r.fail(fmt.Errorf("core: list %q block %d: checksum mismatch: %w", pl.Term, b, mem.ErrMediaUncorrectable))
}

func (r *run) failMedia(pl *index.PostingList, b int) {
	r.fail(fmt.Errorf("core: list %q block %d: %w", pl.Term, b, mem.ErrMediaUncorrectable))
}

func (r *run) failDown(pl *index.PostingList, b int) {
	r.fail(fmt.Errorf("core: list %q block %d: %w", pl.Term, b, mem.ErrDeviceDown))
}

func (r *run) failTransient(pl *index.PostingList, b int) {
	r.fail(fmt.Errorf("core: list %q block %d: retries exhausted: %w", pl.Term, b, mem.ErrTransientRead))
}

func (r *run) failDecode(what string, pl *index.PostingList, b int, err error) {
	r.fail(fmt.Errorf("core: %s of list %q block %d failed: %w", what, pl.Term, b, err))
}

// cutoff returns the current top-k threshold (-Inf while not full).
func (r *run) cutoff() float64 { return r.sel.Threshold() }

// Scorer is the per-family scoring strategy: how one document's score is
// assembled from its matched postings, and what per-document scoring
// metadata the family reads. It is resolved exactly once per run (both
// implementations live on the run record, so the resolution allocates
// nothing) and every scored document goes through it, which is what lets
// new query families plug in without touching the execution operators.
type Scorer interface {
	// ScoreTerms computes one document's total score from its matched
	// term postings.
	ScoreTerms(doc uint32, terms []termTF) float64
	// NormBytes is the per-document scoring-metadata traffic the family
	// charges (BM25's 4 B document normalizer; 0 for impact-read, whose
	// weights are precomputed into the posting payload).
	NormBytes() int64
}

// bm25Scorer recomputes BM25 per posting — the Q1–Q6 strategy, float64
// by default or Q16.16 like the synthesized hardware.
type bm25Scorer struct {
	idx        *index.Index
	fixedPoint bool
}

// ScoreTerms sums the matched terms' BM25 contributions in query order,
// bit-identical to the pre-Scorer inline loop.
//
//boss:hotpath one call per evaluated document on the boolean paths.
func (s *bm25Scorer) ScoreTerms(doc uint32, terms []termTF) float64 {
	var sum float64
	for _, tt := range terms {
		if s.fixedPoint {
			p := s.idx.Params
			fs := p.FixedTermScore(
				score.ToFixed(tt.pl.IDF),
				tt.tf,
				score.ToFixed(s.idx.DocNorms[doc]),
			)
			sum += fs.Float()
		} else {
			sum += s.idx.TermScore(tt.pl, doc, tt.tf)
		}
	}
	return sum
}

func (s *bm25Scorer) NormBytes() int64 { return index.DocNormBytes }

// impactScorer reads the 8-bit quantized impacts decoded with each block
// — the Q7 strategy. Summation is pure integer arithmetic in Q16.16
// (code × per-list step per posting), with a single exact float
// conversion per document for the top-k module; no per-posting float
// math and no per-document norm access.
type impactScorer struct{}

// ScoreTerms sums the matched terms' dequantized impacts. Fixed-point
// addition is associative, so the result is independent of term order.
//
//boss:hotpath one call per evaluated document on the sparse path.
func (impactScorer) ScoreTerms(doc uint32, terms []termTF) float64 {
	var sum score.Fixed
	for _, tt := range terms {
		sum += score.Impact(tt.imp, tt.pl.ImpactStep)
	}
	return sum.Float()
}

func (impactScorer) NormBytes() int64 { return 0 }

// scoreDoc scores one document given its matched term postings, charges
// metadata traffic and scoring work per the run's Scorer, and offers it
// to the top-k module.
//
//boss:hotpath one call per evaluated document.
func (r *run) scoreDoc(doc uint32, terms []termTF) {
	r.m.DocsEvaluated++
	// One per-document scoring-metadata access (the paper's +4 B/doc BM25
	// normalizer; nothing for impact-read). Scored docIDs ascend within a
	// query, so the access stream is prefetch-friendly: charged at
	// sequential bandwidth.
	if nb := r.scorer.NormBytes(); nb != 0 {
		r.m.AddSeqRead(nb, mem.CatLoadScore)
	}
	s := r.scorer.ScoreTerms(doc, terms)
	r.scoreOps += float64(len(terms))
	r.topkInserts++
	r.sel.Insert(doc, s)
}

// termTF is one matched term's posting data for a document. imp is the
// 8-bit quantized impact code, read only by the sparse family.
type termTF struct {
	pl  *index.PostingList
	tf  uint32
	imp uint8
}

// match is a matched document with all its term postings.
type match struct {
	doc   uint32
	terms []termTF
}

// scoreAll scores a sorted match list.
func (r *run) scoreAll(matches []match) {
	for _, m := range matches {
		r.scoreDoc(m.doc, m.terms)
	}
}
