package core

import (
	"errors"
	"testing"

	"boss/internal/cache"
	"boss/internal/compress"
	"boss/internal/corpus"
	"boss/internal/engine"
	"boss/internal/index"
	"boss/internal/perf"
	"boss/internal/query"
)

// sparseFixture builds a corpus plus an impact-quantized hybrid index.
func sparseFixture(t testing.TB, scale float64) (*corpus.Corpus, *index.Index) {
	t.Helper()
	c := corpus.Generate(corpus.CCNewsLike(scale))
	idx := index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid, Impacts: true})
	return c, idx
}

// TestSparseOverlapWithFloatBM25: the quantized impact ranking must agree
// with exact float BM25 (the software engine's exhaustive union over the
// same terms) on at least 99% of top-10 slots across a seeded Q7 workload.
// Byte equality is not expected — 8-bit quantization may swap near-ties —
// but the overlap bound pins the quantization error budget.
func TestSparseOverlapWithFloatBM25(t *testing.T) {
	const k = 10
	c, idx := sparseFixture(t, 0.008)
	acc := New(idx, DefaultOptions())
	eng := engine.New(idx)
	qs := corpus.SampleQueries(c, corpus.Q7, 200, 4321)
	var common, total int
	for _, q := range qs {
		node := query.MustParse(q.Expr)
		got, err := acc.Run(node, k)
		if err != nil {
			t.Fatalf("%s: %v", q.Expr, err)
		}
		want, err := eng.Run(node, k)
		if err != nil {
			t.Fatal(err)
		}
		ref := make(map[uint32]bool, len(want.TopK))
		for _, e := range want.TopK {
			ref[e.DocID] = true
		}
		for _, e := range got.TopK {
			if ref[e.DocID] {
				common++
			}
		}
		total += len(want.TopK)
	}
	if total == 0 {
		t.Fatal("empty workload")
	}
	overlap := float64(common) / float64(total)
	if overlap < 0.99 {
		t.Fatalf("top-%d overlap with float BM25 = %.4f (%d/%d), want >= 0.99",
			k, overlap, common, total)
	}
}

// TestSparsePrunedByteIdentical: MaxScore pruning is an optimization, not
// an approximation. Across a seeded 1000-query sweep the pruned top-k must
// equal the exhaustive top-k exactly — same docIDs, same scores, same
// order. (Strict-< pruning never abandons a cutoff tie, and both runs
// visit candidates in ascending docID with the same tie-break.)
func TestSparsePrunedByteIdentical(t *testing.T) {
	const k = 10
	c, idx := sparseFixture(t, 0.004)
	pruned := New(idx, DefaultOptions())
	exh := New(idx, ExhaustiveOptions())
	qs := corpus.SampleQueries(c, corpus.Q7, 1000, 99)
	var skipped int64
	for _, q := range qs {
		po, err := pruned.RunSparse(q.Terms, k)
		if err != nil {
			t.Fatalf("%v: %v", q.Terms, err)
		}
		eo, err := exh.RunSparse(q.Terms, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(po.TopK) != len(eo.TopK) {
			t.Fatalf("%v: pruned %d results, exhaustive %d", q.Terms, len(po.TopK), len(eo.TopK))
		}
		for i := range po.TopK {
			if po.TopK[i] != eo.TopK[i] {
				t.Fatalf("%v: rank %d diverged: pruned %+v exhaustive %+v",
					q.Terms, i, po.TopK[i], eo.TopK[i])
			}
		}
		if po.M.PostingsDecoded > eo.M.PostingsDecoded {
			t.Fatalf("%v: pruned decoded more postings (%d) than exhaustive (%d)",
				q.Terms, po.M.PostingsDecoded, eo.M.PostingsDecoded)
		}
		skipped += po.M.BlocksSkipped
	}
	if skipped == 0 {
		t.Fatal("pruning never skipped a block across 1000 queries; MaxScore is not engaging")
	}
}

// TestSparseChargesCacheIndependent: the impact-read scorer's cache-hit
// arm must replay the same simulated charges the cold path records — the
// decoded-block cache is a host-side optimization invisible to the model.
func TestSparseChargesCacheIndependent(t *testing.T) {
	c, idx := sparseFixture(t, 0.004)
	qs := corpus.SampleQueries(c, corpus.Q7, 20, 7)
	run := func(ch *cache.Cache) *perf.Metrics {
		acc := NewCached(idx, DefaultOptions(), ch)
		total := perf.NewMetrics()
		for pass := 0; pass < 2; pass++ { // second pass hits the warm cache
			for _, q := range qs {
				out, err := acc.RunSparse(q.Terms, 10)
				if err != nil {
					t.Fatal(err)
				}
				total.Merge(out.M)
			}
		}
		return total
	}
	plain := run(nil)
	cached := run(cache.NewSharded(32<<20, 2))
	if *plain != *cached {
		t.Fatalf("sparse charges diverge with cache:\nplain:  %+v\ncached: %+v", plain, cached)
	}
}

// TestSparseHitPathAllocs pins the Q7 cache-hit path's allocation budget:
// a warm RunSparse performs exactly the constant per-query envelope
// (metrics record, selector results, Result copy) and the per-posting /
// per-block hot path contributes zero — the count must not move when the
// query processes an order of magnitude more postings.
func TestSparseHitPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("-race randomizes sync.Pool reuse, defeating the warm envelope")
	}
	_, idx := sparseFixture(t, 0.01)
	acc := NewCached(idx, DefaultOptions(), cache.NewSharded(64<<20, 2))
	short := []string{"t300"}
	long := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	for i := 0; i < 3; i++ { // warm the cache and every pooled scratch buffer
		if _, err := acc.RunSparse(short, 10); err != nil {
			t.Fatal(err)
		}
		if _, err := acc.RunSparse(long, 10); err != nil {
			t.Fatal(err)
		}
	}
	a := testing.AllocsPerRun(400, func() {
		if _, err := acc.RunSparse(short, 10); err != nil {
			t.Fatal(err)
		}
	})
	b := testing.AllocsPerRun(400, func() {
		if _, err := acc.RunSparse(long, 10); err != nil {
			t.Fatal(err)
		}
	})
	const envelope = 3
	if a > envelope || b > envelope {
		t.Fatalf("warm RunSparse allocates %.2f (1 term) / %.2f (8 terms) allocs/op, want <= %d", a, b, envelope)
	}
	if b != a {
		t.Fatalf("allocs scale with postings processed (%.2f vs %.2f); hot path must contribute 0", a, b)
	}
}

// TestSparseErrNoImpacts: running Q7 against an index built without
// quantized impacts fails with the typed error, naming the build option.
func TestSparseErrNoImpacts(t *testing.T) {
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	idx := index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid}) // no Impacts
	acc := New(idx, DefaultOptions())
	if _, err := acc.RunSparse([]string{"t1", "t2"}, 10); !errors.Is(err, ErrNoImpacts) {
		t.Fatalf("err = %v, want ErrNoImpacts", err)
	}
	if _, err := acc.RunSparse([]string{"zzz-missing"}, 10); err == nil {
		t.Fatal("expected error for unknown term")
	}
}

// TestPlanSparse: the introspection API reports lists sorted ascending by
// dequantized bound, cumulative prefix bounds, and a partition that moves
// as the threshold rises.
func TestPlanSparse(t *testing.T) {
	_, idx := sparseFixture(t, 0.004)
	acc := New(idx, DefaultOptions())
	terms := []string{"t1", "t5", "t20", "t100"}
	cold, err := acc.PlanSparse(terms, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Essential != 0 {
		t.Fatalf("cold plan (threshold 0) pruned %d lists; all must be essential", cold.Essential)
	}
	var prev, sum float64
	for i, ti := range cold.Terms {
		if ti.MaxImpact < prev {
			t.Fatalf("plan not sorted ascending by bound at %d: %+v", i, cold.Terms)
		}
		prev = ti.MaxImpact
		sum += ti.MaxImpact
		if ti.Prefix != sum {
			t.Fatalf("prefix[%d] = %v, want cumulative %v", i, ti.Prefix, sum)
		}
	}
	hot, err := acc.PlanSparse(terms, cold.Terms[0].MaxImpact+1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Essential == 0 {
		t.Fatal("raising the threshold above the weakest list's bound must demote it")
	}
}
