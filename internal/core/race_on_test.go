//go:build race

package core

const raceEnabled = true
