package mem

import (
	"errors"
	"math"
	"testing"

	"boss/internal/sim"
)

func TestFaultPlanEmpty(t *testing.T) {
	var p *FaultPlan
	if !p.Empty() {
		t.Fatal("nil plan should be empty")
	}
	if p.InjectorFor(0) != nil {
		t.Fatal("nil plan must yield nil injector")
	}
	zero := &FaultPlan{Seed: 42}
	if !zero.Empty() || zero.InjectorFor(3) != nil {
		t.Fatal("zero-rate plan must be empty and yield nil injector")
	}
	live := &FaultPlan{Seed: 42, TransientRate: 0.01}
	if live.Empty() || live.InjectorFor(0) == nil {
		t.Fatal("plan with a rate must yield an injector")
	}
}

func TestBlockFaultDeterministic(t *testing.T) {
	p := &FaultPlan{Seed: 7, TransientRate: 0.05, UncorrectableRate: 0.01}
	a := p.InjectorFor(2)
	b := p.InjectorFor(2)
	for key := uint64(0); key < 64; key++ {
		for blk := uint32(0); blk < 16; blk++ {
			for att := uint32(0); att < 4; att++ {
				if got, want := a.BlockFault(key, blk, att), b.BlockFault(key, blk, att); got != want {
					t.Fatalf("nondeterministic decision key=%d blk=%d att=%d: %v vs %v", key, blk, att, got, want)
				}
			}
		}
	}
	other := p.InjectorFor(3)
	same := 0
	total := 0
	for key := uint64(0); key < 256; key++ {
		total++
		if a.BlockFault(key, 0, 0) == other.BlockFault(key, 0, 0) &&
			a.BlockFault(key, 0, 0) != FaultNone {
			same++
		}
	}
	if same == total {
		t.Fatal("different devices should not share fault patterns")
	}
}

func TestBlockFaultRates(t *testing.T) {
	p := &FaultPlan{Seed: 99, TransientRate: 0.10, UncorrectableRate: 0.02}
	in := p.InjectorFor(0)
	const n = 200000
	var transient, uncorrectable int
	for i := 0; i < n; i++ {
		switch in.BlockFault(uint64(i), uint32(i%7), 0) {
		case FaultTransient:
			transient++
		case FaultUncorrectable:
			uncorrectable++
		}
	}
	if got := float64(transient) / n; math.Abs(got-0.10) > 0.01 {
		t.Errorf("transient rate %.4f, want ~0.10", got)
	}
	if got := float64(uncorrectable) / n; math.Abs(got-0.02) > 0.005 {
		t.Errorf("uncorrectable rate %.4f, want ~0.02", got)
	}
}

// A block the plan declares uncorrectable must stay uncorrectable on
// every re-read: retrying media errors must not clear them.
func TestUncorrectablePersistsAcrossAttempts(t *testing.T) {
	p := &FaultPlan{Seed: 5, UncorrectableRate: 0.05}
	in := p.InjectorFor(1)
	checked := 0
	for key := uint64(0); key < 5000 && checked < 25; key++ {
		if in.BlockFault(key, 3, 0) != FaultUncorrectable {
			continue
		}
		checked++
		for att := uint32(1); att < 8; att++ {
			if got := in.BlockFault(key, 3, att); got != FaultUncorrectable {
				t.Fatalf("key %d attempt %d: uncorrectable block returned %v", key, att, got)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no uncorrectable blocks sampled")
	}
}

// Transient faults must usually clear on retry (attempt-salted draw).
func TestTransientClearsOnRetry(t *testing.T) {
	p := &FaultPlan{Seed: 11, TransientRate: 0.05}
	in := p.InjectorFor(0)
	cleared, hit := 0, 0
	for key := uint64(0); key < 20000; key++ {
		if in.BlockFault(key, 0, 0) != FaultTransient {
			continue
		}
		hit++
		for att := uint32(1); att < 4; att++ {
			if in.BlockFault(key, 0, att) == FaultNone {
				cleared++
				break
			}
		}
	}
	if hit == 0 {
		t.Fatal("no transient faults sampled")
	}
	if float64(cleared)/float64(hit) < 0.8 {
		t.Errorf("only %d/%d transient faults cleared within 3 retries", cleared, hit)
	}
}

func TestDeadDevice(t *testing.T) {
	p := &FaultPlan{Seed: 1, DeadDevices: []int{2}}
	if in := p.InjectorFor(2); !in.Dead() || in.BlockFault(1, 1, 0) != FaultDeviceDown {
		t.Fatal("device 2 should be dead")
	}
	if in := p.InjectorFor(0); in.Dead() {
		t.Fatal("device 0 should be alive")
	}
	node := NewNode(SCM())
	node.SetFault(p.InjectorFor(2))
	if _, err := node.ReadChecked(0, 0, 4096, Sequential, CatLoadList, 0); !errors.Is(err, ErrDeviceDown) {
		t.Fatalf("read on dead device: err=%v, want ErrDeviceDown", err)
	}
}

func TestChannelDegradationSlowsReads(t *testing.T) {
	clean := NewNode(SCM())
	slow := NewNode(SCM())
	p := &FaultPlan{Seed: 1, Degraded: []ChannelDegradation{
		{Device: 0, Channel: -1, BandwidthMult: 0.5, LatencyMult: 2},
	}}
	slow.SetFault(p.InjectorFor(0))

	const size = 64 << 10
	tClean := clean.Read(0, 0, size, Sequential, CatLoadList)
	tSlow := slow.Read(0, 0, size, Sequential, CatLoadList)
	if tSlow <= tClean {
		t.Fatalf("degraded read (%v) should be slower than clean (%v)", tSlow, tClean)
	}
	// Occupancy doubles (bw x0.5) and latency doubles: with both
	// components scaled by exactly 2 the total must double.
	if tSlow != 2*tClean {
		t.Fatalf("degraded read %v, want exactly 2x clean %v", tSlow, tClean)
	}

	// A degradation scoped to channel 1 must not touch channel 0.
	scoped := NewNode(SCM())
	ps := &FaultPlan{Seed: 1, Degraded: []ChannelDegradation{
		{Device: 0, Channel: 1, BandwidthMult: 0.25},
	}}
	scoped.SetFault(ps.InjectorFor(0))
	if got := scoped.Read(0, 0, size, Sequential, CatLoadList); got != tClean {
		t.Fatalf("channel-0 read %v changed by channel-1 degradation (clean %v)", got, tClean)
	}
}

// With an injector attached but nothing degraded and zero rates the plan
// is Empty, so InjectorFor returns nil and timings cannot drift. Guard
// the next-closest case too: live injector, but clean channel.
func TestNilInjectorIdentical(t *testing.T) {
	a := NewNode(SCM())
	b := NewNode(SCM())
	b.SetFault(nil)
	var addr uint64
	for i := 0; i < 100; i++ {
		ta := a.Read(sim.Time(i), addr, 300, Random, CatLoadScore)
		tb := b.Read(sim.Time(i), addr, 300, Random, CatLoadScore)
		if ta != tb {
			t.Fatalf("nil-injector read diverged at %d: %v vs %v", i, ta, tb)
		}
		addr += 8192
	}
}

func TestReadCheckedInjectsTypedErrors(t *testing.T) {
	p := &FaultPlan{Seed: 3, TransientRate: 0.2, UncorrectableRate: 0.05}
	node := NewNode(SCM())
	node.SetFault(p.InjectorFor(0))
	var transient, uncorrectable, ok int
	for i := uint64(0); i < 2000; i++ {
		_, err := node.ReadChecked(0, i*4096, 512, Sequential, CatLoadList, i)
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrTransientRead):
			transient++
		case errors.Is(err, ErrMediaUncorrectable):
			uncorrectable++
		default:
			t.Fatalf("unexpected error type: %v", err)
		}
	}
	if transient == 0 || uncorrectable == 0 || ok == 0 {
		t.Fatalf("want a mix of outcomes, got ok=%d transient=%d uncorrectable=%d", ok, transient, uncorrectable)
	}
}

func TestStableKeyDeterministic(t *testing.T) {
	if StableKey("retrieval") != StableKey("retrieval") {
		t.Fatal("StableKey must be deterministic")
	}
	if StableKey("a") == StableKey("b") {
		t.Fatal("distinct terms should hash apart")
	}
}
