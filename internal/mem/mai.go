package mem

import "boss/internal/sim"

// TLB models the local translation buffer inside BOSS's Memory Access
// Interface. With 2 GB huge pages and 1 K entries it covers the node's
// entire 2 TB physical space (Section IV-D), so after warm-up every lookup
// hits; the model still counts lookups and charges a walk penalty on the
// rare cold miss.
type TLB struct {
	pageBits uint
	entries  map[uint64]struct{}
	// order records insertion order for FIFO eviction. Evicting `for k :=
	// range entries` picked a map-order-dependent victim, which made the
	// post-eviction hit/miss sequence — and therefore simulated time —
	// nondeterministic across runs (bosslint simdeterminism finding).
	order    []uint64
	head     int
	capacity int
	hits     int64
	misses   int64
}

// DefaultTLBEntries and DefaultPageBits reproduce the paper's configuration
// (1 K entries, 2 GB pages).
const (
	DefaultTLBEntries = 1024
	DefaultPageBits   = 31 // 2 GB
)

// TLBMissPenalty is the page-walk latency charged on a miss.
const TLBMissPenalty = 120 * sim.Nanosecond

// NewTLB returns a TLB with the given capacity and page size.
func NewTLB(capacity int, pageBits uint) *TLB {
	return &TLB{
		pageBits: pageBits,
		entries:  make(map[uint64]struct{}, capacity),
		capacity: capacity,
	}
}

// Lookup translates addr, returning the added latency (zero on a hit).
func (t *TLB) Lookup(addr uint64) sim.Duration {
	page := addr >> t.pageBits
	if _, ok := t.entries[page]; ok {
		t.hits++
		return 0
	}
	t.misses++
	if len(t.entries) >= t.capacity {
		// Evict the oldest entry (FIFO); with 2 GB pages this effectively
		// never happens for a 2 TB node, but when it does the victim must
		// not depend on map iteration order.
		delete(t.entries, t.order[t.head])
		t.head++
		if t.head >= len(t.order)/2 && t.head > 0 {
			t.order = append(t.order[:0], t.order[t.head:]...)
			t.head = 0
		}
	}
	t.entries[page] = struct{}{}
	t.order = append(t.order, page)
	return TLBMissPenalty
}

// Hits and Misses report lookup outcomes.
func (t *TLB) Hits() int64   { return t.hits }
func (t *TLB) Misses() int64 { return t.misses }

// MAI is BOSS's Memory Access Interface: every memory request from the
// cores flows through it, getting translated by the local TLB and issued to
// the node's channels.
type MAI struct {
	node *Node
	tlb  *TLB
}

// NewMAI wraps a node with a default-configured TLB.
func NewMAI(node *Node) *MAI {
	return &MAI{node: node, tlb: NewTLB(DefaultTLBEntries, DefaultPageBits)}
}

// Node returns the underlying memory node.
func (m *MAI) Node() *Node { return m.node }

// TLB returns the interface's translation buffer.
func (m *MAI) TLB() *TLB { return m.tlb }

// Read translates and issues a read, returning completion time.
func (m *MAI) Read(at sim.Time, addr uint64, size int, pattern Pattern, category Category) sim.Time {
	at += m.tlb.Lookup(addr)
	return m.node.Read(at, addr, size, pattern, category)
}

// ReadChecked translates and issues a read under the node's fault
// injector, returning completion time and any injected error.
func (m *MAI) ReadChecked(at sim.Time, addr uint64, size int, pattern Pattern, category Category, ordinal uint64) (sim.Time, error) {
	at += m.tlb.Lookup(addr)
	return m.node.ReadChecked(at, addr, size, pattern, category, ordinal)
}

// Write translates and issues a write, returning completion time.
func (m *MAI) Write(at sim.Time, addr uint64, size int, category Category) sim.Time {
	at += m.tlb.Lookup(addr)
	return m.node.Write(at, addr, size, category)
}
