package mem

import (
	"math"
	"testing"

	"boss/internal/sim"
)

func TestSequentialReadBandwidth(t *testing.T) {
	n := NewNode(SCM())
	// Read 1 MB sequentially from one channel's address range.
	size := 1 << 20
	done := n.Read(0, 0, size, Sequential, CatLoadList)
	// Per-channel sequential bandwidth is 25.6/4 = 6.4 GB/s.
	wantTransfer := sim.FromSeconds(float64(size) / (6.4 * 1e9))
	want := wantTransfer + SCM().ReadLatency
	if done != want {
		t.Fatalf("seq read completion = %d, want %d", done, want)
	}
}

func TestRandomReadSlowerThanSequential(t *testing.T) {
	a := NewNode(SCM())
	b := NewNode(SCM())
	size := 1 << 16
	seqDone := a.Read(0, 0, size, Sequential, CatLoadList)
	randDone := b.Read(0, 0, size, Random, CatLoadList)
	if randDone <= seqDone {
		t.Fatalf("random read (%d) should be slower than sequential (%d)", randDone, seqDone)
	}
	// Roughly the bandwidth ratio 25.6/6.6.
	ratio := float64(randDone-SCM().ReadLatency) / float64(seqDone-SCM().ReadLatency)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("random/seq time ratio %.2f, expected near 25.6/6.6", ratio)
	}
}

func TestRandomReadRoundsToGranularity(t *testing.T) {
	n := NewNode(SCM())
	// A 4-byte random read still occupies the channel for a full 256 B line.
	done4 := n.Read(0, 0, 4, Random, CatLoadScore)
	m := NewNode(SCM())
	done256 := m.Read(0, 0, 256, Random, CatLoadScore)
	if done4 != done256 {
		t.Fatalf("4B random read (%d) should cost the same as 256B (%d)", done4, done256)
	}
	// But accounting records the requested 4 bytes.
	if n.Stats().Get(CatLoadScore.String()+" bytes") != 4 {
		t.Fatalf("accounted %d bytes", n.Stats().Get(CatLoadScore.String()+" bytes"))
	}
}

func TestWritesAreSlowestOnSCM(t *testing.T) {
	n := NewNode(SCM())
	size := 1 << 16
	rEnd := n.Read(0, 0, size, Sequential, CatLoadList)
	m := NewNode(SCM())
	wEnd := m.Write(0, 0, size, CatStoreInter)
	rTime := rEnd - SCM().ReadLatency
	wTime := wEnd - SCM().WriteLatency
	if float64(wTime)/float64(rTime) < 25.6/9.2*0.9 {
		t.Fatalf("write/read time ratio %.1f too small for SCM asymmetry", float64(wTime)/float64(rTime))
	}
}

func TestDRAMFasterThanSCM(t *testing.T) {
	scm := NewNode(SCM())
	dram := NewNode(DRAM())
	size := 1 << 20
	if dram.Read(0, 0, size, Sequential, CatLoadList) >= scm.Read(0, 0, size, Sequential, CatLoadList) {
		t.Fatal("DRAM sequential read should beat SCM")
	}
	scm.Reset()
	dram.Reset()
	if dram.Read(0, 0, size, Random, CatLoadList) >= scm.Read(0, 0, size, Random, CatLoadList) {
		t.Fatal("DRAM random read should beat SCM")
	}
}

func TestChannelStriping(t *testing.T) {
	n := NewNode(SCM())
	size := 64 << 10
	// Two concurrent reads to different stripes should overlap (different
	// channels), so the max completion is about one transfer, not two.
	d1 := n.Read(0, 0, size, Sequential, CatLoadList)
	d2 := n.Read(0, stripeBytes, size, Sequential, CatLoadList)
	if d2 != d1 {
		t.Fatalf("reads on different channels should complete together: %d vs %d", d1, d2)
	}
	// Same stripe: the second queues behind the first.
	m := NewNode(SCM())
	e1 := m.Read(0, 0, size, Sequential, CatLoadList)
	e2 := m.Read(0, 0, size, Sequential, CatLoadList)
	if e2 <= e1 {
		t.Fatal("reads on the same channel must serialize")
	}
}

func TestQueueingUnderContention(t *testing.T) {
	n := NewNode(SCM())
	size := 1 << 20
	// 8 cores all streaming: total time should scale with total bytes over
	// node bandwidth.
	var last sim.Time
	for i := 0; i < 8; i++ {
		addr := uint64(i) * stripeBytes
		done := n.Read(0, addr, size, Sequential, CatLoadList)
		if done > last {
			last = done
		}
	}
	// 8 MB over 25.6 GB/s = ~312 µs (8 streams over 4 channels = 2 per
	// channel serialized).
	totalSecs := sim.Seconds(last)
	want := 8 * float64(size) / (25.6 * 1e9)
	if math.Abs(totalSecs-want)/want > 0.2 {
		t.Fatalf("contended completion %.3gs, want about %.3gs", totalSecs, want)
	}
}

func TestNodeAccounting(t *testing.T) {
	n := NewNode(SCM())
	n.Read(0, 0, 1000, Sequential, CatLoadList)
	n.Read(0, 0, 500, Random, CatLoadScore)
	n.Write(0, 0, 200, CatStoreResult)
	if got := n.Stats().Get(CatLoadList.String() + " bytes"); got != 1000 {
		t.Fatalf("LD List bytes = %d", got)
	}
	if got := n.Stats().Get(CatLoadScore.String() + " accesses"); got != 1 {
		t.Fatalf("LD Score accesses = %d", got)
	}
	if got := n.TotalBytes(); got != 1700 {
		t.Fatalf("total bytes = %d", got)
	}
	if n.Bandwidth(sim.Second) != 1700.0/1e9 {
		t.Fatalf("bandwidth = %v", n.Bandwidth(sim.Second))
	}
	n.Reset()
	if n.TotalBytes() != 0 || n.BusyTime() != 0 {
		t.Fatal("reset failed")
	}
}

func TestZeroSizeAccessesAreFree(t *testing.T) {
	n := NewNode(SCM())
	if n.Read(100, 0, 0, Sequential, CatLoadList) != 100 {
		t.Fatal("zero-size read should be instantaneous")
	}
	if n.Write(100, 0, 0, CatStoreInter) != 100 {
		t.Fatal("zero-size write should be instantaneous")
	}
	if n.TotalBytes() != 0 {
		t.Fatal("zero-size access should not be accounted")
	}
}

func TestLinkTransfer(t *testing.T) {
	l := NewLink(64)
	size := 64_000_000 // 64 MB over 64 GB/s = 1 ms
	done := l.Transfer(0, size, CatStoreResult)
	want := sim.Millisecond
	if math.Abs(float64(done-want))/float64(want) > 0.01 {
		t.Fatalf("link transfer = %d, want ~%d", done, want)
	}
	if l.Bytes() != int64(size) {
		t.Fatalf("link bytes = %d", l.Bytes())
	}
	// Transfers serialize on the shared link.
	d2 := l.Transfer(0, size, CatStoreResult)
	if d2 <= done {
		t.Fatal("link transfers must serialize")
	}
	if u := l.Utilization(d2); u < 0.99 {
		t.Fatalf("fully queued link utilization = %v", u)
	}
	l.Reset()
	if l.Bytes() != 0 {
		t.Fatal("link reset failed")
	}
}

func TestTLBCoversNodeWithHugePages(t *testing.T) {
	tlb := NewTLB(DefaultTLBEntries, DefaultPageBits)
	// Touch every 2 GB page of a 2 TB node: 1024 pages, all fit.
	for p := uint64(0); p < 1024; p++ {
		tlb.Lookup(p << DefaultPageBits)
	}
	if tlb.Misses() != 1024 {
		t.Fatalf("cold misses = %d, want 1024", tlb.Misses())
	}
	// Second pass: all hits.
	for p := uint64(0); p < 1024; p++ {
		if d := tlb.Lookup(p << DefaultPageBits); d != 0 {
			t.Fatal("warm lookup should be free")
		}
	}
	if tlb.Hits() != 1024 {
		t.Fatalf("hits = %d", tlb.Hits())
	}
}

func TestTLBEviction(t *testing.T) {
	tlb := NewTLB(2, DefaultPageBits)
	tlb.Lookup(0 << DefaultPageBits)
	tlb.Lookup(1 << DefaultPageBits)
	tlb.Lookup(2 << DefaultPageBits) // evicts something
	if tlb.Misses() != 3 {
		t.Fatalf("misses = %d", tlb.Misses())
	}
}

func TestMAIChargesTLBAndMemory(t *testing.T) {
	node := NewNode(SCM())
	mai := NewMAI(node)
	// First access: cold TLB miss penalty applies.
	done := mai.Read(0, 0, 256, Sequential, CatLoadList)
	wantMin := TLBMissPenalty + SCM().ReadLatency
	if done < wantMin {
		t.Fatalf("cold MAI read = %d, want >= %d", done, wantMin)
	}
	// Warm access to the same page: no TLB penalty.
	warm := mai.Read(done, 0, 256, Sequential, CatLoadList)
	if warm-done >= wantMin {
		t.Fatal("warm MAI read should skip the TLB penalty")
	}
	if mai.TLB().Hits() != 1 || mai.TLB().Misses() != 1 {
		t.Fatalf("tlb hits=%d misses=%d", mai.TLB().Hits(), mai.TLB().Misses())
	}
	// Writes also flow through the MAI.
	mai.Write(warm, 0, 64, CatStoreResult)
	if node.Stats().Get(CatStoreResult.String()+" bytes") != 64 {
		t.Fatal("MAI write not accounted")
	}
}

func TestConfigPresets(t *testing.T) {
	for _, cfg := range []Config{SCM(), DRAM(), HostSCM(), HostDRAM()} {
		if cfg.Channels <= 0 || cfg.SeqReadGBs <= 0 || cfg.WriteGBs <= 0 {
			t.Errorf("config %s has zero fields: %+v", cfg.Name, cfg)
		}
		if cfg.RandReadGBs > cfg.SeqReadGBs {
			t.Errorf("config %s: random faster than sequential", cfg.Name)
		}
	}
	if SCM().SeqReadGBs != 25.6 || SCM().RandReadGBs != 6.6 || SCM().WriteGBs != 9.2 {
		t.Error("SCM preset does not match Table I")
	}
	if DRAM().SeqReadGBs != 85.2 {
		t.Error("DRAM preset does not match Figure 16 text")
	}
	if HostDRAM().SeqReadGBs != 140.76 {
		t.Error("host DRAM preset does not match Table I")
	}
}

func TestPatternString(t *testing.T) {
	if Sequential.String() != "seq" || Random.String() != "rand" {
		t.Fatal("pattern strings wrong")
	}
}

func TestCategories(t *testing.T) {
	cats := Categories()
	if len(cats) != 5 || cats[0] != CatLoadList || cats[4] != CatStoreResult {
		t.Fatalf("categories = %v", cats)
	}
}
