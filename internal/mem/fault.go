package mem

import (
	"errors"

	"boss/internal/sim"
)

// Fault injection for the memory substrate.
//
// Real SCM pool nodes degrade: channels slow down as media wears, reads
// fail transiently under thermal stress, blocks go uncorrectable past the
// device's ECC budget, and whole nodes drop off the fabric. A FaultPlan
// describes such a regime; an Injector applies it to one device (shard).
//
// Every decision is a pure function of (plan seed, device, access
// identity, attempt) via splitmix64 mixing — never of wall-clock time,
// goroutine scheduling, or global counters — so a chaos run replays
// event-for-event under any concurrency, and `go test -race` schedules
// cannot change outcomes. With a nil Injector every code path is
// byte-identical to the fault-free model.

// Typed fault errors. Layers above wrap these with fmt.Errorf("...: %w",
// err) so callers match with errors.Is across the whole stack.
var (
	// ErrTransientRead is a retryable read failure (e.g. a thermal or
	// disturb error that a re-read usually clears).
	ErrTransientRead = errors.New("mem: transient read error")
	// ErrMediaUncorrectable is a permanent media error: the block's
	// on-device ECC/CRC check failed and re-reads will not help.
	ErrMediaUncorrectable = errors.New("mem: uncorrectable media error")
	// ErrDeviceDown reports that the whole device (node/shard) is dead.
	ErrDeviceDown = errors.New("mem: device down")
)

// Fault classifies the outcome of one injected access decision.
type Fault uint8

// Fault kinds, in increasing severity.
const (
	FaultNone Fault = iota
	FaultTransient
	FaultUncorrectable
	FaultDeviceDown
)

// String names the fault kind.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultTransient:
		return "transient"
	case FaultUncorrectable:
		return "uncorrectable"
	case FaultDeviceDown:
		return "device-down"
	default:
		return "?"
	}
}

// ChannelDegradation slows one channel (or all) of one device.
type ChannelDegradation struct {
	// Device is the shard/device index the degradation applies to.
	Device int
	// Channel is the channel index; -1 degrades every channel.
	Channel int
	// BandwidthMult scales effective channel bandwidth (0 < m <= 1
	// slows transfers; 0 or 1 means unchanged).
	BandwidthMult float64
	// LatencyMult scales fixed per-access latency (m >= 1 inflates it;
	// 0 or 1 means unchanged).
	LatencyMult float64
}

// FaultPlan is a deterministic, seeded description of the faults to
// inject across a cluster of devices. The zero value injects nothing.
type FaultPlan struct {
	// Seed drives every probabilistic decision. Two runs with the same
	// plan see the same faults at the same accesses.
	Seed int64
	// TransientRate is the per-access probability of a retryable read
	// error in [0, 1).
	TransientRate float64
	// UncorrectableRate is the per-access probability of a permanent
	// media error in [0, 1).
	UncorrectableRate float64
	// Degraded lists channel slowdowns.
	Degraded []ChannelDegradation
	// DeadDevices lists device indices that never answer.
	DeadDevices []int
}

// Empty reports whether the plan injects nothing at all.
func (p *FaultPlan) Empty() bool {
	return p == nil ||
		(p.TransientRate == 0 && p.UncorrectableRate == 0 &&
			len(p.Degraded) == 0 && len(p.DeadDevices) == 0)
}

// InjectorFor builds the injector applying this plan to one device.
// Returns nil for an empty plan so callers keep the exact fault-free
// fast path.
func (p *FaultPlan) InjectorFor(device int) *Injector {
	if p.Empty() {
		return nil
	}
	in := &Injector{
		seed:          mix64(uint64(p.Seed) ^ 0x9e3779b97f4a7c15*uint64(device+1)),
		transient:     p.TransientRate,
		uncorrectable: p.UncorrectableRate,
	}
	for _, d := range p.DeadDevices {
		if d == device {
			in.dead = true
		}
	}
	for _, d := range p.Degraded {
		if d.Device != device {
			continue
		}
		in.degraded = append(in.degraded, d)
	}
	return in
}

// Injector applies a FaultPlan to one device. Safe for concurrent use:
// it is immutable after construction and every decision method is pure.
type Injector struct {
	seed          uint64
	transient     float64
	uncorrectable float64
	dead          bool
	degraded      []ChannelDegradation
}

// Dead reports whether the whole device is down.
func (in *Injector) Dead() bool { return in != nil && in.dead }

// BlockFault decides the outcome of reading one identified block on its
// attempt'th (re-)read. key identifies the data being read (a stable
// hash of the posting-list term, so decisions survive process restarts
// and index rebuilds); attempt varies the draw so retries of a transient
// fault can succeed while media errors stay media errors.
//
//boss:hotpath
func (in *Injector) BlockFault(key uint64, block uint32, attempt uint32) Fault {
	if in.dead {
		return FaultDeviceDown
	}
	if in.transient == 0 && in.uncorrectable == 0 {
		return FaultNone
	}
	// The uncorrectable draw ignores the attempt: a truly bad block is
	// bad on every re-read. The transient draw is attempt-salted so
	// retries usually clear it.
	base := mix64(in.seed ^ mix64(key^uint64(block)<<32))
	if uniform01(base) < in.uncorrectable {
		return FaultUncorrectable
	}
	h := mix64(base + uint64(attempt)*0xbf58476d1ce4e5b9)
	if uniform01(h) < in.transient {
		return FaultTransient
	}
	return FaultNone
}

// AccessFault decides the outcome of the n'th access on the device —
// the identity is the caller-maintained access ordinal, for replay
// paths that are single-threaded in simulated time.
func (in *Injector) AccessFault(ordinal uint64) Fault {
	if in.dead {
		return FaultDeviceDown
	}
	if in.transient == 0 && in.uncorrectable == 0 {
		return FaultNone
	}
	u := uniform01(mix64(in.seed + ordinal*0x94d049bb133111eb))
	if u < in.uncorrectable {
		return FaultUncorrectable
	}
	if u < in.uncorrectable+in.transient {
		return FaultTransient
	}
	return FaultNone
}

// ChannelScale returns the bandwidth and latency multipliers for channel
// ch (1, 1 when undegraded).
func (in *Injector) ChannelScale(ch int) (bw, lat float64) {
	bw, lat = 1, 1
	for _, d := range in.degraded {
		if d.Channel != ch && d.Channel != -1 {
			continue
		}
		if d.BandwidthMult > 0 && d.BandwidthMult != 1 {
			bw *= d.BandwidthMult
		}
		if d.LatencyMult > 0 && d.LatencyMult != 1 {
			lat *= d.LatencyMult
		}
	}
	return bw, lat
}

// degrade applies channel ch's degradation to an access's channel
// occupancy and fixed latency: halved bandwidth doubles occupancy,
// latency scales directly.
func (in *Injector) degrade(ch int, occupancy, latency sim.Duration) (sim.Duration, sim.Duration) {
	if len(in.degraded) == 0 {
		return occupancy, latency
	}
	bw, lat := in.ChannelScale(ch)
	if bw != 1 && bw > 0 {
		occupancy = sim.Duration(float64(occupancy) / bw)
	}
	if lat != 1 {
		latency = sim.Duration(float64(latency) * lat)
	}
	return occupancy, latency
}

// StableKey hashes an identifying string (e.g. a posting-list term) to
// the 64-bit key BlockFault expects. FNV-1a: deterministic across
// processes, unlike runtime map hashing or pointer identity.
func StableKey(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection
// used to turn structured identities into uniform draws.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// uniform01 maps a hash to [0, 1) using the top 53 bits.
func uniform01(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}
