// Package mem models the memory substrate of the paper's system: SCM
// devices with asymmetric sequential/random read bandwidth and slow writes
// (calibrated to Table I's Optane DCPMM figures), DRAM devices for the
// Figure 16 comparison, multi-channel memory nodes, the shared
// memory-semantic host interconnect (CXL-like), and BOSS's Memory Access
// Interface (MAI) with its huge-page TLB.
//
// The model is transaction-level: an access occupies its channel for
// size/bandwidth and completes after an additional device latency. This
// captures exactly the properties the paper's results depend on — bandwidth
// ceilings, sequential-vs-random asymmetry, and queueing when many cores
// share few channels — without simulating DRAM command timing.
package mem

import (
	"fmt"

	"boss/internal/sim"
)

// Pattern classifies an access for bandwidth purposes.
type Pattern int

// Access patterns.
const (
	Sequential Pattern = iota // streaming reads of consecutive addresses
	Random                    // pointer-chasing / scattered reads
)

// String returns "seq" or "rand".
func (p Pattern) String() string {
	if p == Sequential {
		return "seq"
	}
	return "rand"
}

// Category tags device traffic for Figure 15's memory-access breakdown. A
// small integer (not a string) so the per-block/per-document charging in
// the engines indexes a fixed array instead of hashing into a map — the
// accounting is on every model's hottest path.
type Category uint8

// Traffic categories, matching Figure 15's memory-access breakdown.
const (
	CatLoadList    Category = iota // posting-list block loads
	CatLoadInter                   // intermediate-result loads
	CatStoreInter                  // intermediate-result stores
	CatLoadScore                   // per-document scoring metadata loads
	CatStoreResult                 // result stores (to host-visible memory)
	CatLoadMeta                    // block metadata loads
	CatLoadDoc                     // document-store block loads (fetch phase)

	// NumCategories sizes per-category accounting arrays.
	NumCategories
)

// String returns the paper's display name for the category.
func (c Category) String() string {
	switch c {
	case CatLoadList:
		return "LD List"
	case CatLoadInter:
		return "LD Inter"
	case CatStoreInter:
		return "ST Inter"
	case CatLoadScore:
		return "LD Score"
	case CatStoreResult:
		return "ST Result"
	case CatLoadMeta:
		return "LD Meta"
	case CatLoadDoc:
		return "LD Doc"
	default:
		return "?"
	}
}

// Categories lists the Figure 15 categories in display order.
func Categories() []Category {
	return []Category{CatLoadList, CatLoadInter, CatStoreInter, CatLoadScore, CatStoreResult}
}

// Config describes one memory device type attached to a node.
type Config struct {
	// Name labels the device ("scm", "dram").
	Name string
	// Channels is the number of independent channels on the node.
	Channels int
	// SeqReadGBs, RandReadGBs, WriteGBs are aggregate node bandwidths in
	// GB/s for sequential reads, random reads, and writes. (Table I quotes
	// the Optane write figure per channel: 2.3 GB/s x 4 channels.)
	SeqReadGBs  float64
	RandReadGBs float64
	WriteGBs    float64
	// ReadLatency and WriteLatency are fixed per-access device latencies.
	ReadLatency  sim.Duration
	WriteLatency sim.Duration
	// Granularity is the device's internal access unit in bytes; random
	// accesses are rounded up to it (256 B for Optane's XPLine, 64 B for
	// DRAM).
	Granularity int
}

// SCM returns the paper's BOSS memory-node configuration (Table I): 4 SCM
// channels, 25.6 GB/s sequential read, 6.6 GB/s random read, 2.3 GB/s
// write, with Optane-like latency and 256 B internal granularity.
func SCM() Config {
	return Config{
		Name:         "scm",
		Channels:     4,
		SeqReadGBs:   25.6,
		RandReadGBs:  6.6,
		WriteGBs:     9.2, // 2.3 GB/s per channel (Table I) x 4
		ReadLatency:  300 * sim.Nanosecond,
		WriteLatency: 100 * sim.Nanosecond,
		Granularity:  256,
	}
}

// DRAM returns the Figure 16 DRAM configuration: DDR4-2666 with 4 channels
// (85.2 GB/s), uniform read bandwidth and DRAM-class latency.
func DRAM() Config {
	return Config{
		Name:         "dram",
		Channels:     4,
		SeqReadGBs:   85.2,
		RandReadGBs:  42.6, // row-miss-dominated scattered reads
		WriteGBs:     85.2,
		ReadLatency:  100 * sim.Nanosecond,
		WriteLatency: 50 * sim.Nanosecond,
		Granularity:  64,
	}
}

// HostSCM returns the host-side SCM memory system of Table I (6 channels,
// 39.6 GB/s), used when the Lucene baseline runs against SCM.
func HostSCM() Config {
	c := SCM()
	c.Name = "host-scm"
	c.Channels = 6
	c.SeqReadGBs = 39.6
	c.RandReadGBs = 9.9
	c.WriteGBs = 13.8 // 2.3 GB/s per channel x 6
	return c
}

// HostDRAM returns the host-side DRAM system of Table I (DDR4-2666, 6
// channels, 140.76 GB/s).
func HostDRAM() Config {
	c := DRAM()
	c.Name = "host-dram"
	c.Channels = 6
	c.SeqReadGBs = 140.76
	c.RandReadGBs = 70.4
	c.WriteGBs = 140.76
	return c
}

// stripeBytes is the address-interleaving granularity across channels.
const stripeBytes = 4096

// Node is one memory node: a set of channels sharing a device config.
type Node struct {
	cfg      Config
	channels []*sim.Resource
	stats    *sim.Stats
	// fault, when non-nil, degrades channels and injects read errors.
	// Nil keeps every timing computation byte-identical to the
	// fault-free model.
	fault *Injector
}

// NewNode builds a memory node from cfg.
func NewNode(cfg Config) *Node {
	if cfg.Channels <= 0 {
		panic("mem: node needs at least one channel")
	}
	n := &Node{cfg: cfg, stats: sim.NewStats()}
	for i := 0; i < cfg.Channels; i++ {
		n.channels = append(n.channels, sim.NewResource(fmt.Sprintf("%s-ch%d", cfg.Name, i)))
	}
	return n
}

// Config returns the node's device configuration.
func (n *Node) Config() Config { return n.cfg }

// SetFault attaches a fault injector (nil restores the pristine model).
func (n *Node) SetFault(inj *Injector) { n.fault = inj }

// Fault returns the attached injector, nil when none.
func (n *Node) Fault() *Injector { return n.fault }

// Stats returns the node's traffic counters. Byte counts are kept per
// category under "<cat> bytes" and per direction under "read bytes" /
// "write bytes"; access counts under "<cat> accesses".
func (n *Node) Stats() *sim.Stats { return n.stats }

// channelIndex picks the channel serving addr (page-stripe interleaving).
func (n *Node) channelIndex(addr uint64) int {
	return int((addr / stripeBytes) % uint64(len(n.channels)))
}

// channelFor picks the channel serving addr (page-stripe interleaving).
func (n *Node) channelFor(addr uint64) *sim.Resource {
	return n.channels[n.channelIndex(addr)]
}

// transferTime computes channel occupancy for size bytes at an aggregate
// bandwidth of gbs GB/s split evenly over the node's channels.
func (n *Node) transferTime(size int, gbs float64) sim.Duration {
	perChannel := gbs / float64(n.cfg.Channels)
	secs := float64(size) / (perChannel * 1e9)
	return sim.FromSeconds(secs)
}

// Read performs a read of size bytes at addr starting no earlier than `at`,
// returning the completion time. pattern selects the bandwidth class;
// category attributes the traffic for Figure 15-style breakdowns.
func (n *Node) Read(at sim.Time, addr uint64, size int, pattern Pattern, category Category) sim.Time {
	if size <= 0 {
		return at
	}
	effective := size
	bw := n.cfg.SeqReadGBs
	if pattern == Random {
		bw = n.cfg.RandReadGBs
		if rem := size % n.cfg.Granularity; rem != 0 {
			effective = size + n.cfg.Granularity - rem
		}
	}
	ci := n.channelIndex(addr)
	occupancy := n.transferTime(effective, bw)
	latency := n.cfg.ReadLatency
	if n.fault != nil {
		occupancy, latency = n.fault.degrade(ci, occupancy, latency)
	}
	done := n.channels[ci].Acquire(at, occupancy)
	n.account(category, size, true)
	return done + latency
}

// ReadChecked is Read plus fault-plan error injection: the channel time
// for the access is still charged (a failed read occupies the bus), and
// the injected outcome for the access ordinal decides the error. Callers
// that retry should re-issue with a fresh ordinal.
func (n *Node) ReadChecked(at sim.Time, addr uint64, size int, pattern Pattern, category Category, ordinal uint64) (sim.Time, error) {
	if n.fault != nil {
		switch n.fault.AccessFault(ordinal) {
		case FaultDeviceDown:
			// A dead device does not answer: no traffic moves.
			return at, ErrDeviceDown
		case FaultTransient:
			return n.Read(at, addr, size, pattern, category), ErrTransientRead
		case FaultUncorrectable:
			return n.Read(at, addr, size, pattern, category), ErrMediaUncorrectable
		}
	}
	return n.Read(at, addr, size, pattern, category), nil
}

// Write performs a write of size bytes at addr, returning completion time.
func (n *Node) Write(at sim.Time, addr uint64, size int, category Category) sim.Time {
	if size <= 0 {
		return at
	}
	ci := n.channelIndex(addr)
	occupancy := n.transferTime(size, n.cfg.WriteGBs)
	latency := n.cfg.WriteLatency
	if n.fault != nil {
		occupancy, latency = n.fault.degrade(ci, occupancy, latency)
	}
	done := n.channels[ci].Acquire(at, occupancy)
	n.account(category, size, false)
	return done + latency
}

func (n *Node) account(category Category, size int, read bool) {
	n.stats.Add(category.String()+" bytes", int64(size))
	n.stats.Add(category.String()+" accesses", 1)
	if read {
		n.stats.Add("read bytes", int64(size))
	} else {
		n.stats.Add("write bytes", int64(size))
	}
}

// TotalBytes reports all bytes moved (reads + writes).
func (n *Node) TotalBytes() int64 {
	return n.stats.Get("read bytes") + n.stats.Get("write bytes")
}

// BusyTime reports the maximum busy time over channels — the node's
// bandwidth-limiting critical path.
func (n *Node) BusyTime() sim.Duration {
	var max sim.Duration
	for _, ch := range n.channels {
		if b := ch.BusyTime(); b > max {
			max = b
		}
	}
	return max
}

// Bandwidth reports achieved bandwidth in GB/s over an elapsed duration.
func (n *Node) Bandwidth(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n.TotalBytes()) / sim.Seconds(elapsed) / 1e9
}

// Reset clears channel state and counters.
func (n *Node) Reset() {
	for _, ch := range n.channels {
		ch.Reset()
	}
	n.stats.Reset()
}

// Link models the shared byte-addressable interconnect between the memory
// pool and the host CPU (e.g. one CXL link, 64 GB/s).
type Link struct {
	res   *sim.Resource
	gbs   float64
	stats *sim.Stats
}

// DefaultLinkGBs is the paper's single-CXL-link bandwidth.
const DefaultLinkGBs = 64.0

// NewLink returns a shared link with the given bandwidth in GB/s.
func NewLink(gbs float64) *Link {
	return &Link{res: sim.NewResource("host-link"), gbs: gbs, stats: sim.NewStats()}
}

// Transfer moves size bytes across the link starting no earlier than `at`,
// returning the completion time.
func (l *Link) Transfer(at sim.Time, size int, category Category) sim.Time {
	if size <= 0 {
		return at
	}
	d := sim.FromSeconds(float64(size) / (l.gbs * 1e9))
	done := l.res.Acquire(at, d)
	l.stats.Add(category.String()+" bytes", int64(size))
	l.stats.Add("bytes", int64(size))
	return done
}

// Stats returns the link's traffic counters.
func (l *Link) Stats() *sim.Stats { return l.stats }

// Bytes reports total bytes moved over the link.
func (l *Link) Bytes() int64 { return l.stats.Get("bytes") }

// Utilization reports link busy fraction over elapsed.
func (l *Link) Utilization(elapsed sim.Duration) float64 {
	return l.res.Utilization(elapsed)
}

// Reset clears link state and counters.
func (l *Link) Reset() {
	l.res.Reset()
	l.stats.Reset()
}
