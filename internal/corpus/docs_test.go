package corpus

import (
	"bytes"
	"testing"
)

func TestDocTextDeterministic(t *testing.T) {
	a := DocText(42, 7, 100, 1000, nil)
	b := DocText(42, 7, 100, 1000, nil)
	if !bytes.Equal(a, b) {
		t.Fatal("DocText not deterministic")
	}
	c := DocText(42, 8, 100, 1000, nil)
	if bytes.Equal(a, c) {
		t.Fatal("different docIDs produced identical payloads")
	}
	d := DocText(43, 7, 100, 1000, nil)
	if bytes.Equal(a, d) {
		t.Fatal("different seeds produced identical payloads")
	}
}

func TestDocTextSizedFromStats(t *testing.T) {
	short := DocText(1, 0, 10, 1000, nil)
	long := DocText(1, 0, 1000, 1000, nil)
	if len(long) <= len(short) {
		t.Fatalf("docLen ignored: %d vs %d bytes", len(short), len(long))
	}
	capped := DocText(1, 0, 1<<20, 1000, nil)
	if len(capped) > docTextTokenCap*12 {
		t.Fatalf("token cap not applied: %d bytes", len(capped))
	}
	if len(DocText(1, 0, 0, 0, nil)) == 0 {
		t.Fatal("degenerate args produced empty payload")
	}
}

func TestDocName(t *testing.T) {
	if got := string(DocName(nil, 0)); got != "doc0" {
		t.Fatalf("DocName(0) = %q", got)
	}
	if got := string(DocName(nil, 123456)); got != "doc123456" {
		t.Fatalf("DocName = %q", got)
	}
}
