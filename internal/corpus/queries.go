package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// QueryType identifies one of the six query shapes of Table II.
type QueryType int

// Query types per Table II of the paper, plus the Q7 sparse-dot family
// (impact-ordered retrieval; not part of Table II, so AllQueryTypes and
// the figure harness exclude it).
const (
	Q1 QueryType = iota + 1 // 1 term:  A
	Q2                      // 2 terms: A AND B
	Q3                      // 2 terms: A OR B
	Q4                      // 4 terms: A AND B AND C AND D
	Q5                      // 4 terms: A OR B OR C OR D
	Q6                      // 4 terms: A AND (B OR C OR D)
	Q7                      // 8 terms: SPARSE(A, ..., H)
)

// String returns "Q1".."Q7".
func (q QueryType) String() string { return fmt.Sprintf("Q%d", int(q)) }

// NumTerms reports the term count of the query type.
func (q QueryType) NumTerms() int {
	switch q {
	case Q1:
		return 1
	case Q2, Q3:
		return 2
	case Q4, Q5, Q6:
		return 4
	case Q7:
		return 8
	default:
		return 0
	}
}

// Operation returns the Table II operation pattern with the placeholder
// letters A..D.
func (q QueryType) Operation() string {
	switch q {
	case Q1:
		return "A"
	case Q2:
		return "A AND B"
	case Q3:
		return "A OR B"
	case Q4:
		return "A AND B AND C AND D"
	case Q5:
		return "A OR B OR C OR D"
	case Q6:
		return "A AND (B OR C OR D)"
	case Q7:
		return "SPARSE(A, ..., H)"
	default:
		return "?"
	}
}

// AllQueryTypes lists Q1..Q6 in order — the Table II families. Q7 is
// deliberately excluded: the figure harness iterates this list, and the
// sparse family has its own bench (harness.Sparse).
func AllQueryTypes() []QueryType {
	return []QueryType{Q1, Q2, Q3, Q4, Q5, Q6}
}

// Query is a typed query over concrete corpus terms.
type Query struct {
	Type  QueryType
	Terms []string
	// Expr is the query in the paper's offloading-API expression syntax,
	// e.g. `"t3" AND ("t17" OR "t42" OR "t9")`.
	Expr string
}

// buildExpr renders the type's operation pattern over concrete terms.
func buildExpr(t QueryType, terms []string) string {
	quoted := make([]string, len(terms))
	for i, term := range terms {
		quoted[i] = `"` + term + `"`
	}
	switch t {
	case Q1:
		return quoted[0]
	case Q2:
		return quoted[0] + " AND " + quoted[1]
	case Q3:
		return quoted[0] + " OR " + quoted[1]
	case Q4:
		return strings.Join(quoted, " AND ")
	case Q5:
		return strings.Join(quoted, " OR ")
	case Q6:
		return quoted[0] + " AND (" + strings.Join(quoted[1:], " OR ") + ")"
	case Q7:
		return "SPARSE(" + strings.Join(quoted, ", ") + ")"
	default:
		panic("corpus: unknown query type")
	}
}

// SampleQueries draws n queries of the given type from the corpus
// vocabulary. Term ranks are sampled log-uniformly so the mix spans common
// and rare terms, like the TREC Terabyte-Track terms the paper samples; terms
// within one query are distinct.
func SampleQueries(c *Corpus, t QueryType, n int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed ^ int64(t)<<32))
	if len(c.Terms) == 0 {
		panic("corpus: empty corpus")
	}
	// TREC topic terms are ordinary words: bias sampling toward the common
	// quarter of the vocabulary (still log-uniform across its decades).
	maxRank := len(c.Terms) / 4
	if maxRank < 8 {
		maxRank = len(c.Terms)
	}
	queries := make([]Query, n)
	for i := range queries {
		k := t.NumTerms()
		terms := make([]string, 0, k)
		used := make(map[int]struct{}, k)
		for len(terms) < k {
			rank := logUniformInt(rng, maxRank) - 1
			if _, dup := used[rank]; dup {
				continue
			}
			used[rank] = struct{}{}
			terms = append(terms, c.Terms[rank].Term)
		}
		queries[i] = Query{Type: t, Terms: terms, Expr: buildExpr(t, terms)}
	}
	return queries
}

// SampleZipfQueries draws n queries of the given type with term ranks
// following the corpus's own Zipf popularity (P(rank) ~ rank^-s): the
// queries hit terms with the frequency real traffic hits them, which is
// what makes cross-query block reuse representative. Terms within one
// query are distinct.
func SampleZipfQueries(c *Corpus, t QueryType, n int, s float64, seed int64) []Query {
	if len(c.Terms) == 0 {
		panic("corpus: empty corpus")
	}
	if s <= 1 {
		s = 1.07 // the corpus generator's default term-popularity exponent
	}
	rng := rand.New(rand.NewSource(seed ^ int64(t)<<32))
	zipf := rand.NewZipf(rng, s, 1, uint64(len(c.Terms)-1))
	queries := make([]Query, n)
	for i := range queries {
		k := t.NumTerms()
		terms := make([]string, 0, k)
		used := make(map[int]struct{}, k)
		for len(terms) < k {
			rank := int(zipf.Uint64())
			if _, dup := used[rank]; dup {
				continue
			}
			used[rank] = struct{}{}
			terms = append(terms, c.Terms[rank].Term)
		}
		queries[i] = Query{Type: t, Terms: terms, Expr: buildExpr(t, terms)}
	}
	return queries
}

// SampleWorkload draws n queries of each of the six types, mirroring the
// paper's 100-per-shape TREC sample.
func SampleWorkload(c *Corpus, perType int, seed int64) map[QueryType][]Query {
	w := make(map[QueryType][]Query, 6)
	for _, t := range AllQueryTypes() {
		w[t] = SampleQueries(c, t, perType, seed)
	}
	return w
}
