package corpus

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateStreamKinds(t *testing.T) {
	for _, kind := range AllStreamKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s := GenerateStream(kind, 5000, 1)
			if len(s) != 5000 {
				t.Fatalf("got %d values, want 5000", len(s))
			}
		})
	}
}

func TestGenerateStreamDeterministic(t *testing.T) {
	a := GenerateStream(ZipfStream, 1000, 42)
	b := GenerateStream(ZipfStream, 1000, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	c := GenerateStream(ZipfStream, 1000, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestUniformStreamStatistics(t *testing.T) {
	// n uniform values over [0, 2^26): mean delta should be near 2^26/n.
	n := 20000
	s := GenerateStream(UniformDense, n, 7)
	var sum float64
	for _, d := range s {
		sum += float64(d)
	}
	mean := sum / float64(n)
	expected := float64(1<<26) / float64(n)
	if mean < expected/2 || mean > expected*2 {
		t.Fatalf("uniform-dense mean delta %.1f, expected around %.1f", mean, expected)
	}
}

func TestSparseDeltasLargerThanDense(t *testing.T) {
	n := 20000
	sparse := GenerateStream(UniformSparse, n, 7)
	dense := GenerateStream(UniformDense, n, 7)
	var ss, sd float64
	for i := 0; i < n; i++ {
		ss += float64(sparse[i])
		sd += float64(dense[i])
	}
	if ss <= sd {
		t.Fatal("sparse stream deltas should be larger on average than dense")
	}
}

func TestClusteredStreamHasSmallMedianDelta(t *testing.T) {
	// Clustering concentrates docIDs, so the median delta must be far below
	// the uniform stream's mean delta.
	n := 20000
	s := GenerateStream(ClusterSparse, n, 3)
	small := 0
	uniformMean := float64(1<<28) / float64(n)
	for _, d := range s {
		if float64(d) < uniformMean/4 {
			small++
		}
	}
	if small < n/2 {
		t.Fatalf("only %d/%d clustered deltas are small; clustering not effective", small, n)
	}
}

func TestOutlierStreams(t *testing.T) {
	n := 20000
	s10 := GenerateStream(Outlier10, n, 5)
	s30 := GenerateStream(Outlier30, n, 5)
	count := func(s []uint32) int {
		c := 0
		for _, v := range s {
			if v > 1000 { // far beyond normal(32,20)
				c++
			}
		}
		return c
	}
	c10, c30 := count(s10), count(s30)
	if c10 < n*5/100 || c10 > n*15/100 {
		t.Fatalf("outlier-10%% stream has %d/%d outliers", c10, n)
	}
	if c30 < n*25/100 || c30 > n*35/100 {
		t.Fatalf("outlier-30%% stream has %d/%d outliers", c30, n)
	}
}

func TestGenerateCorpus(t *testing.T) {
	spec := CCNewsLike(0.01)
	c := Generate(spec)
	if len(c.Terms) != spec.NumTerms {
		t.Fatalf("got %d terms, want %d", len(c.Terms), spec.NumTerms)
	}
	if len(c.DocLens) != spec.NumDocs {
		t.Fatalf("got %d doc lens, want %d", len(c.DocLens), spec.NumDocs)
	}
	if c.AvgDocLen <= 0 {
		t.Fatal("average document length must be positive")
	}

	// Document frequencies must be non-increasing-ish with rank (Zipf).
	if c.DF(0) < c.DF(len(c.Terms)-1) {
		t.Fatal("df should broadly decrease with rank")
	}
	if c.DF(0) < spec.NumDocs/10 {
		t.Fatalf("top term df %d too small for %d docs", c.DF(0), spec.NumDocs)
	}

	// Posting lists are sorted, distinct, in range, with tf in [1, MaxTF].
	for _, tp := range c.Terms[:50] {
		prev := int64(-1)
		for _, p := range tp.Postings {
			if int64(p.DocID) <= prev {
				t.Fatalf("term %s postings not strictly increasing", tp.Term)
			}
			prev = int64(p.DocID)
			if int(p.DocID) >= spec.NumDocs {
				t.Fatalf("docID %d out of range", p.DocID)
			}
			if p.TF < 1 || int(p.TF) > spec.MaxTF {
				t.Fatalf("tf %d out of range", p.TF)
			}
		}
	}

	// Doc lengths cover at least the tf mass charged to each doc (they are
	// padded upward by the region-correlated length model).
	perDoc := make([]uint64, spec.NumDocs)
	for _, tp := range c.Terms {
		for _, p := range tp.Postings {
			perDoc[p.DocID] += uint64(p.TF)
		}
	}
	for d, l := range c.DocLens {
		if uint64(l) < perDoc[d] {
			t.Fatalf("doc %d length %d below its tf mass %d", d, l, perDoc[d])
		}
	}
}

func TestCorpusTermLookup(t *testing.T) {
	c := Generate(CCNewsLike(0.005))
	if got := c.Term("t0"); len(got) != c.DF(0) {
		t.Fatalf("Term(t0) returned %d postings, DF(0)=%d", len(got), c.DF(0))
	}
	if c.Term("nosuchterm") != nil {
		t.Fatal("missing term should return nil")
	}
}

func TestQueryTypes(t *testing.T) {
	wantTerms := map[QueryType]int{Q1: 1, Q2: 2, Q3: 2, Q4: 4, Q5: 4, Q6: 4}
	for qt, n := range wantTerms {
		if qt.NumTerms() != n {
			t.Errorf("%s.NumTerms() = %d, want %d", qt, qt.NumTerms(), n)
		}
	}
	if Q6.Operation() != "A AND (B OR C OR D)" {
		t.Errorf("Q6 operation = %q", Q6.Operation())
	}
	if Q3.String() != "Q3" {
		t.Errorf("String() = %q", Q3.String())
	}
}

func TestSampleQueries(t *testing.T) {
	c := Generate(CCNewsLike(0.005))
	for _, qt := range AllQueryTypes() {
		qs := SampleQueries(c, qt, 20, 99)
		if len(qs) != 20 {
			t.Fatalf("%s: got %d queries", qt, len(qs))
		}
		for _, q := range qs {
			if len(q.Terms) != qt.NumTerms() {
				t.Fatalf("%s query has %d terms", qt, len(q.Terms))
			}
			seen := map[string]bool{}
			for _, term := range q.Terms {
				if seen[term] {
					t.Fatalf("%s query repeats term %s", qt, term)
				}
				seen[term] = true
				if c.Term(term) == nil {
					t.Fatalf("query term %s not in corpus", term)
				}
				if !strings.Contains(q.Expr, `"`+term+`"`) {
					t.Fatalf("expr %q missing term %s", q.Expr, term)
				}
			}
		}
	}
}

func TestSampleQueriesDeterministic(t *testing.T) {
	c := Generate(CCNewsLike(0.005))
	a := SampleQueries(c, Q4, 10, 1)
	b := SampleQueries(c, Q4, 10, 1)
	for i := range a {
		if a[i].Expr != b[i].Expr {
			t.Fatal("same seed produced different queries")
		}
	}
}

func TestSampleWorkload(t *testing.T) {
	c := Generate(CCNewsLike(0.005))
	w := SampleWorkload(c, 5, 1)
	if len(w) != 6 {
		t.Fatalf("workload has %d types", len(w))
	}
	for qt, qs := range w {
		if len(qs) != 5 {
			t.Fatalf("%s has %d queries", qt, len(qs))
		}
	}
}

func TestBuildExprQ6(t *testing.T) {
	got := buildExpr(Q6, []string{"w", "x", "y", "z"})
	want := `"w" AND ("x" OR "y" OR "z")`
	if got != want {
		t.Fatalf("buildExpr = %q, want %q", got, want)
	}
}

func TestLogUniformIntProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(maxSeed uint16) bool {
		max := int(maxSeed)%1000 + 1
		v := logUniformInt(rng, max)
		return v >= 1 && v <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltasOfProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		// Build a sorted distinct slice from raw.
		seen := map[uint32]bool{}
		var vals []uint32
		for _, v := range raw {
			if !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		d := deltasOf(vals)
		// Reconstruct.
		acc := uint32(0)
		for i, g := range d {
			acc += g
			if acc != vals[i] {
				return false
			}
		}
		return len(d) == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
