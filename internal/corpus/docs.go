package corpus

// Synthetic document payloads for the fetch phase. The posting sampler
// generates term statistics but no document bytes; DocText synthesizes
// them on demand — deterministically from (seed, docID) so every shard,
// replica, and rerun packs byte-identical stores — with the document
// sized from the same per-document length statistics (DocLens) that
// drive BM25 normalization. Tokens are drawn Zipf-ish from the term-rank
// space, so payloads have the vocabulary skew of real text and compress
// like it.

// docTextTokenCap bounds the token count of one synthetic document so a
// lognormal-tail docLen cannot make a single payload dominate a packed
// block.
const docTextTokenCap = 2048

// splitmix64 is the same seeded mixer the resilience layer uses for
// deterministic per-item randomness without shared state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DocText appends docID's synthetic payload to dst and returns the
// extended slice. docLen is the document's token count from the sampler
// (Corpus.DocLens[docID]); vocab is the corpus vocabulary size
// (Spec.NumTerms). The bytes depend only on (seed, docID, docLen,
// vocab): sharding, fetch order, and caching cannot change them.
func DocText(seed int64, docID uint32, docLen uint32, vocab int, dst []byte) []byte {
	if vocab < 1 {
		vocab = 1
	}
	tokens := int(docLen)
	if tokens > docTextTokenCap {
		tokens = docTextTokenCap
	}
	if tokens < 1 {
		tokens = 1
	}
	state := splitmix64(uint64(seed) ^ uint64(docID)*0x9E3779B97F4A7C15)
	for i := 0; i < tokens; i++ {
		state = splitmix64(state)
		// Squared-uniform rank: low ranks (frequent terms) dominate, an
		// inexpensive stand-in for the sampler's Zipf document frequencies.
		u := float64(state>>11) / (1 << 53)
		rank := int(u * u * float64(vocab))
		if rank >= vocab {
			rank = vocab - 1
		}
		dst = append(dst, 't')
		dst = appendUint(dst, uint32(rank))
		dst = append(dst, ' ')
	}
	return dst
}

// DocName appends the canonical synthetic name for docID ("doc<id>").
func DocName(dst []byte, docID uint32) []byte {
	dst = append(dst, 'd', 'o', 'c')
	return appendUint(dst, docID)
}

// appendUint appends the decimal form of v without strconv allocation.
func appendUint(dst []byte, v uint32) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	var tmp [10]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, tmp[i:]...)
}
