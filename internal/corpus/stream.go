// Package corpus generates the synthetic workloads used throughout the
// reproduction: the seven integer streams of Figure 3, document corpora that
// stand in for ClueWeb12 and CC-News (the real corpora act on the results
// only through their posting-list statistics, which we model directly), and
// TREC-style query workloads typed per Table II.
package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// StreamKind identifies one of the Figure 3 synthetic integer streams.
type StreamKind int

// The seven synthetic stream kinds of Figure 3.
const (
	UniformSparse StreamKind = iota // uniform docIDs over [0, 2^28)
	UniformDense                    // uniform docIDs over [0, 2^26)
	ClusterSparse                   // clustered docIDs over [0, 2^28)
	ClusterDense                    // clustered docIDs over [0, 2^26)
	Outlier10                       // normal(32, 20) deltas with 10% outliers
	Outlier30                       // normal(32, 20) deltas with 30% outliers
	ZipfStream                      // Zipf-distributed deltas
)

// String returns the stream kind's display name (as used in Figure 3).
func (k StreamKind) String() string {
	switch k {
	case UniformSparse:
		return "uniform-sparse"
	case UniformDense:
		return "uniform-dense"
	case ClusterSparse:
		return "cluster-sparse"
	case ClusterDense:
		return "cluster-dense"
	case Outlier10:
		return "outlier-10%"
	case Outlier30:
		return "outlier-30%"
	case ZipfStream:
		return "zipf"
	default:
		return fmt.Sprintf("StreamKind(%d)", int(k))
	}
}

// AllStreamKinds lists the Figure 3 streams in display order.
func AllStreamKinds() []StreamKind {
	return []StreamKind{
		UniformSparse, UniformDense, ClusterSparse, ClusterDense,
		Outlier10, Outlier30, ZipfStream,
	}
}

// GenerateStream produces n delta values (d-gaps) of the given kind. For the
// docID-style kinds (uniform, cluster) it generates sorted distinct IDs over
// the kind's range and returns consecutive differences, exactly the values an
// inverted index compresses. For the delta-style kinds (outlier, zipf) the
// values are the deltas themselves.
func GenerateStream(kind StreamKind, n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case UniformSparse:
		return deltasOf(sortedDistinct(rng, n, 1<<28))
	case UniformDense:
		return deltasOf(sortedDistinct(rng, n, 1<<26))
	case ClusterSparse:
		return deltasOf(clusteredDistinct(rng, n, 1<<28))
	case ClusterDense:
		return deltasOf(clusteredDistinct(rng, n, 1<<26))
	case Outlier10:
		return outlierDeltas(rng, n, 0.10)
	case Outlier30:
		return outlierDeltas(rng, n, 0.30)
	case ZipfStream:
		return zipfDeltas(rng, n)
	default:
		panic("corpus: unknown stream kind")
	}
}

// sortedDistinct returns n distinct sorted uint32 values uniform over
// [0, max). It requires n <= max/2 to terminate quickly.
func sortedDistinct(rng *rand.Rand, n int, max int64) []uint32 {
	if int64(n) > max/2 {
		panic("corpus: stream too dense for range")
	}
	seen := make(map[uint32]struct{}, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		v := uint32(rng.Int63n(max))
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// clusteredDistinct returns n distinct sorted values drawn from randomly
// placed clusters within [0, max), mimicking docID locality.
func clusteredDistinct(rng *rand.Rand, n int, max int64) []uint32 {
	numClusters := n / 256
	if numClusters < 1 {
		numClusters = 1
	}
	centers := make([]int64, numClusters)
	for i := range centers {
		centers[i] = rng.Int63n(max)
	}
	width := float64(max) / float64(numClusters) / 16
	if width < 4 {
		width = 4
	}
	seen := make(map[uint32]struct{}, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		c := centers[rng.Intn(numClusters)]
		v := c + int64(rng.NormFloat64()*width)
		if v < 0 || v >= max {
			continue
		}
		u := uint32(v)
		if _, dup := seen[u]; dup {
			continue
		}
		seen[u] = struct{}{}
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// deltasOf converts sorted distinct values to d-gaps (first value kept
// as-is relative to zero).
func deltasOf(sorted []uint32) []uint32 {
	prev := uint32(0)
	out := make([]uint32, len(sorted))
	for i, v := range sorted {
		out[i] = v - prev
		prev = v
	}
	return out
}

// outlierDeltas draws deltas from |normal(mean=32, sd=20)| with the given
// fraction replaced by large uniform outliers, matching the paper's outlier
// streams.
func outlierDeltas(rng *rand.Rand, n int, outlierFrac float64) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		if rng.Float64() < outlierFrac {
			out[i] = uint32(rng.Int63n(1 << 27))
			continue
		}
		v := rng.NormFloat64()*20 + 32
		if v < 0 {
			v = -v
		}
		out[i] = uint32(v)
	}
	return out
}

// zipfDeltas draws deltas from a Zipf distribution (s=1.2), producing the
// heavy-tailed gap pattern of the paper's zipf stream.
func zipfDeltas(rng *rand.Rand, n int) []uint32 {
	z := rand.NewZipf(rng, 1.2, 1, 1<<24)
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(z.Uint64())
	}
	return out
}

// logUniformInt returns an integer in [1, max] distributed log-uniformly,
// used for sampling query-term ranks across frequency decades.
func logUniformInt(rng *rand.Rand, max int) int {
	if max <= 1 {
		return 1
	}
	v := math.Exp(rng.Float64() * math.Log(float64(max)))
	r := int(v)
	if r < 1 {
		r = 1
	}
	if r > max {
		r = max
	}
	return r
}
