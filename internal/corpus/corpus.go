package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Spec parameterizes a synthetic document corpus. The defaults produced by
// ClueWebLike and CCNewsLike mimic the statistics that matter to the paper's
// results: Zipf-distributed document frequencies, docID clustering, and the
// ratio of posting-list volume to document count.
type Spec struct {
	// Name labels the corpus in reports ("clueweb", "ccnews", ...).
	Name string
	// NumDocs is the document count D.
	NumDocs int
	// NumTerms is the vocabulary size V.
	NumTerms int
	// TopDF is the document frequency of the most common term, as a
	// fraction of NumDocs.
	TopDF float64
	// ZipfS is the Zipf exponent of the document-frequency distribution.
	ZipfS float64
	// MaxTF caps per-document term frequency.
	MaxTF int
	// Clustering in [0,1] controls docID locality within posting lists
	// (0 = uniform, 1 = strongly clustered).
	Clustering float64
	// Seed seeds all generation randomness.
	Seed int64
}

// ClueWebLike returns a spec mimicking ClueWeb12's statistics, scaled by
// scale in (0, 1]. At scale 1 the corpus holds ~1M documents; tests and
// benches use much smaller scales.
func ClueWebLike(scale float64) Spec {
	return Spec{
		Name:       "clueweb",
		NumDocs:    scaled(1_000_000, scale),
		NumTerms:   scaled(120_000, scale),
		TopDF:      0.55,
		ZipfS:      1.07,
		MaxTF:      64,
		Clustering: 0.6,
		Seed:       0xC1EB,
	}
}

// CCNewsLike returns a spec mimicking CC-News (shorter articles, smaller
// vocabulary, slightly flatter df distribution), scaled by scale in (0, 1].
func CCNewsLike(scale float64) Spec {
	return Spec{
		Name:       "ccnews",
		NumDocs:    scaled(600_000, scale),
		NumTerms:   scaled(80_000, scale),
		TopDF:      0.45,
		ZipfS:      1.12,
		MaxTF:      32,
		Clustering: 0.3,
		Seed:       0xCC4E,
	}
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 64 {
		n = 64
	}
	return n
}

// Posting is one (docID, term frequency) pair.
type Posting struct {
	DocID uint32
	TF    uint32
}

// TermPostings is a term with its sorted posting list.
type TermPostings struct {
	Term     string
	Postings []Posting
}

// Corpus is a generated document collection in posting-list form, plus the
// per-document lengths BM25 needs.
type Corpus struct {
	Spec          Spec
	Terms         []TermPostings
	DocLens       []uint32
	AvgDocLen     float64
	TotalPostings int64
}

// Generate builds a corpus from spec. Terms are ordered by descending
// document frequency (rank order), named "t<rank>".
func Generate(spec Spec) *Corpus {
	if spec.NumDocs <= 0 || spec.NumTerms <= 0 {
		panic("corpus: spec must have positive NumDocs and NumTerms")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	c := &Corpus{
		Spec:    spec,
		Terms:   make([]TermPostings, spec.NumTerms),
		DocLens: make([]uint32, spec.NumDocs),
	}
	topDF := float64(spec.NumDocs) * spec.TopDF
	for rank := 0; rank < spec.NumTerms; rank++ {
		df := int(topDF / math.Pow(float64(rank+1), spec.ZipfS))
		if df < 1 {
			df = 1
		}
		if df > spec.NumDocs {
			df = spec.NumDocs
		}
		postings := c.samplePostings(rng, df)
		c.Terms[rank] = TermPostings{
			Term:     fmt.Sprintf("t%d", rank),
			Postings: postings,
		}
		c.TotalPostings += int64(len(postings))
	}
	// Real crawls order documents by site/time, so document style — and
	// with it document length — correlates with docID region. Pad each
	// document's length by a region-correlated lognormal factor (the pad
	// stands for the many terms outside the modeled vocabulary). This is
	// what gives posting blocks heterogeneous maximum term-scores, the
	// property block-level early termination exploits.
	const regionDocs = 512
	regionRng := rand.New(rand.NewSource(spec.Seed ^ 0x9E3779B9))
	var regionMult []float64
	for d := range c.DocLens {
		region := d / regionDocs
		for len(regionMult) <= region {
			regionMult = append(regionMult, math.Exp(regionRng.NormFloat64()*0.8))
		}
		grown := uint32(float64(c.DocLens[d]) * regionMult[region])
		if grown > c.DocLens[d] {
			c.DocLens[d] = grown
		}
	}
	var total uint64
	for _, l := range c.DocLens {
		total += uint64(l)
	}
	if spec.NumDocs > 0 {
		c.AvgDocLen = float64(total) / float64(spec.NumDocs)
	}
	if c.AvgDocLen == 0 {
		c.AvgDocLen = 1
	}
	return c
}

// samplePostings draws df distinct docIDs (uniform or clustered per the
// spec), assigns term frequencies, and charges each posting's tf to the
// document's length.
func (c *Corpus) samplePostings(rng *rand.Rand, df int) []Posting {
	d := c.Spec.NumDocs
	if df > d {
		df = d
	}
	var ids []uint32
	if df*2 >= d {
		// Dense list: Bernoulli per doc keeps things exact and fast enough.
		p := float64(df) / float64(d)
		ids = make([]uint32, 0, df)
		for doc := 0; doc < d; doc++ {
			if rng.Float64() < p {
				ids = append(ids, uint32(doc))
			}
		}
		if len(ids) == 0 {
			ids = append(ids, uint32(rng.Intn(d)))
		}
	} else {
		ids = c.sampleSparse(rng, df)
	}
	postings := make([]Posting, len(ids))
	for i, id := range ids {
		tf := sampleTF(rng, c.Spec.MaxTF)
		postings[i] = Posting{DocID: id, TF: tf}
		c.DocLens[id] += tf
	}
	return postings
}

// sampleSparse draws df distinct docIDs with the spec's clustering.
func (c *Corpus) sampleSparse(rng *rand.Rand, df int) []uint32 {
	d := int64(c.Spec.NumDocs)
	seen := make(map[uint32]struct{}, df)
	ids := make([]uint32, 0, df)

	clustered := int(float64(df) * c.Spec.Clustering)
	numClusters := clustered/128 + 1
	centers := make([]int64, numClusters)
	for i := range centers {
		centers[i] = rng.Int63n(d)
	}
	width := float64(d) / float64(numClusters) / 32
	if width < 2 {
		width = 2
	}

	add := func(v int64) bool {
		if v < 0 || v >= d {
			return false
		}
		u := uint32(v)
		if _, dup := seen[u]; dup {
			return false
		}
		seen[u] = struct{}{}
		ids = append(ids, u)
		return true
	}
	attempts := 0
	for len(ids) < clustered && attempts < df*64 {
		attempts++
		ctr := centers[rng.Intn(numClusters)]
		add(ctr + int64(rng.NormFloat64()*width))
	}
	for len(ids) < df {
		add(rng.Int63n(d))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sampleTF draws a term frequency: mostly 1-2 with a heavy tail, capped.
func sampleTF(rng *rand.Rand, maxTF int) uint32 {
	tf := 1
	for tf < maxTF && rng.Float64() < 0.35 {
		tf++
	}
	return uint32(tf)
}

// Term returns the postings for a term name, or nil if absent.
func (c *Corpus) Term(name string) []Posting {
	for i := range c.Terms {
		if c.Terms[i].Term == name {
			return c.Terms[i].Postings
		}
	}
	return nil
}

// DF reports the document frequency of the term at the given rank.
func (c *Corpus) DF(rank int) int { return len(c.Terms[rank].Postings) }
