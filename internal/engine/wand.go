package engine

import (
	"fmt"
	"sort"

	"boss/internal/perf"
	"boss/internal/query"
	"boss/internal/topk"
)

// EnableWAND switches the engine's pure-union evaluation from exhaustive
// DAAT to the WAND algorithm (Broder et al.), as modern Lucene versions do.
// The paper's Lucene baseline is exhaustive; this mode supports the
// "hardened baseline" ablation — how much of BOSS's union advantage
// survives when the software side also early-terminates.
func (e *Engine) EnableWAND() { e.wand = true }

// runWAND evaluates a pure disjunction of terms with document-level WAND.
// The caller guarantees every child of node is a term. Results are
// identical to exhaustive evaluation (ET is lossless, with the same
// tie-safe >= pivoting the hardware model uses).
func (e *Engine) runWAND(node *query.Node, k int, m *perf.Metrics, ta *tally) (Result, error) {
	children := make([]*termIter, len(node.Children))
	for i, c := range node.Children {
		pl := e.idx.List(c.Term)
		if pl == nil {
			return Result{}, fmt.Errorf("engine: term %q not indexed", c.Term)
		}
		children[i] = e.newTermIter(pl, m, ta)
		children[i].ord = i
	}
	all := append([]*termIter(nil), children...)
	defer func() {
		for _, c := range all {
			c.close()
		}
	}()
	sel := topk.NewHeap(k)
	for {
		// Live iterators sorted by current doc.
		live := children[:0]
		for _, c := range children {
			if c.valid() {
				live = append(live, c)
			}
		}
		children = live
		if len(children) == 0 {
			break
		}
		sort.SliceStable(children, func(i, j int) bool { return children[i].doc() < children[j].doc() })

		cutoff := sel.Threshold()
		acc := 0.0
		pivot := -1
		for i, c := range children {
			ta.mergeOps++
			acc += c.pl.MaxScore
			if acc >= cutoff {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			break // nothing left can beat the cutoff
		}
		pivotDoc := children[pivot].doc()
		if children[0].doc() == pivotDoc {
			// Every list before the pivot sits on the pivot document:
			// score it with all matching lists, summed in expression order
			// so floating-point results match the exhaustive path exactly.
			matched := make([]*termIter, 0, len(children))
			for _, c := range children {
				if c.valid() && c.doc() == pivotDoc {
					matched = append(matched, c)
				}
			}
			sort.Slice(matched, func(i, j int) bool { return matched[i].ord < matched[j].ord })
			var s float64
			m.DocsEvaluated++
			for _, c := range matched {
				s += c.score()
			}
			ta.heapInserts++
			sel.Insert(pivotDoc, s)
			for _, c := range matched {
				c.next()
			}
			continue
		}
		// Advance the lists below the pivot up to the pivot document.
		for _, c := range children[:pivot] {
			if c.valid() && c.doc() < pivotDoc {
				c.seekGEQ(pivotDoc)
			}
		}
	}
	ta.flush(e.cost, m)
	return Result{TopK: sel.Results(), M: m}, nil
}
