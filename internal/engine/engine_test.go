package engine

import (
	"math"
	"sort"
	"testing"

	"boss/internal/compress"
	"boss/internal/corpus"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/query"
	"boss/internal/topk"
)

// testFixture builds a small corpus + index shared across tests.
type testFixture struct {
	c   *corpus.Corpus
	idx *index.Index
	eng *Engine
}

func newFixture(t testing.TB) *testFixture {
	t.Helper()
	c := corpus.Generate(corpus.CCNewsLike(0.004))
	idx := index.Build(c, index.BuildOptions{Scheme: compress.SchemeHybrid})
	return &testFixture{c: c, idx: idx, eng: New(idx)}
}

// refEval evaluates a query AST by brute force directly over the corpus
// postings, returning the exact top-k. This is the ground truth every
// engine model in the repository is tested against.
func refEval(c *corpus.Corpus, idx *index.Index, node *query.Node, k int) []topk.Entry {
	scores := refScores(c, idx, node)
	entries := make([]topk.Entry, 0, len(scores))
	for doc, s := range scores {
		entries = append(entries, topk.Entry{DocID: doc, Score: s})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		return entries[i].DocID < entries[j].DocID
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	return entries
}

// refScores returns docID -> query score for all matching documents.
func refScores(c *corpus.Corpus, idx *index.Index, node *query.Node) map[uint32]float64 {
	switch node.Op {
	case query.OpTerm:
		pl := idx.MustList(node.Term)
		out := make(map[uint32]float64)
		for _, p := range c.Term(node.Term) {
			out[p.DocID] = idx.TermScore(pl, p.DocID, p.TF)
		}
		return out
	case query.OpAnd:
		result := refScores(c, idx, node.Children[0])
		for _, child := range node.Children[1:] {
			cs := refScores(c, idx, child)
			for doc := range result {
				if add, ok := cs[doc]; ok {
					result[doc] += add
				} else {
					delete(result, doc)
				}
			}
		}
		return result
	case query.OpOr:
		result := make(map[uint32]float64)
		for _, child := range node.Children {
			for doc, s := range refScores(c, idx, child) {
				result[doc] += s
			}
		}
		return result
	default:
		panic("unknown op")
	}
}

// sameEntries compares two top-k lists allowing tiny float drift.
func sameEntries(a, b []topk.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].DocID != b[i].DocID {
			return false
		}
		if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			return false
		}
	}
	return true
}

func queryExprsForTests(c *corpus.Corpus) []string {
	var exprs []string
	for _, qt := range corpus.AllQueryTypes() {
		for _, q := range corpus.SampleQueries(c, qt, 6, 31) {
			exprs = append(exprs, q.Expr)
		}
	}
	return exprs
}

func TestEngineMatchesBruteForce(t *testing.T) {
	f := newFixture(t)
	for _, expr := range queryExprsForTests(f.c) {
		node := query.MustParse(expr)
		res, err := f.eng.Run(node, 50)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		want := refEval(f.c, f.idx, node, 50)
		if !sameEntries(res.TopK, want) {
			t.Fatalf("query %s: engine disagrees with brute force\n got %v\nwant %v",
				expr, res.TopK[:min(5, len(res.TopK))], want[:min(5, len(want))])
		}
	}
}

func TestEngineUnknownTerm(t *testing.T) {
	f := newFixture(t)
	if _, err := f.eng.Run(query.MustParse(`"nosuchterm"`), 10); err == nil {
		t.Fatal("unknown term should error")
	}
}

func TestUnionEvaluatesEveryMatchingDoc(t *testing.T) {
	// The software baseline is exhaustive for unions: DocsEvaluated equals
	// the exact union size.
	f := newFixture(t)
	node := query.MustParse(`"t3" OR "t15"`)
	res, err := f.eng.Run(node, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := len(refScores(f.c, f.idx, node))
	if res.M.DocsEvaluated != int64(want) {
		t.Fatalf("evaluated %d docs, union has %d", res.M.DocsEvaluated, want)
	}
}

func TestIntersectionSkipsBlocks(t *testing.T) {
	f := newFixture(t)
	// Intersect a huge list with a rare one: the engine must not decode
	// every block of the huge list.
	rare := f.c.Terms[len(f.c.Terms)-1].Term
	common := f.c.Terms[0].Term
	node := query.MustParse(`"` + common + `" AND "` + rare + `"`)
	res, err := f.eng.Run(node, 10)
	if err != nil {
		t.Fatal(err)
	}
	commonBlocks := int64(len(f.idx.MustList(common).Blocks))
	if res.M.BlocksFetched >= commonBlocks {
		t.Fatalf("fetched %d blocks; SvS skipping should beat the %d-block full scan",
			res.M.BlocksFetched, commonBlocks)
	}
}

func TestIntersectionCheaperThanUnion(t *testing.T) {
	// Use lists of very different sizes: SvS drives from the rare list, so
	// the conjunction does far less work than the exhaustive union.
	f := newFixture(t)
	a, b := f.c.Terms[1].Term, f.c.Terms[40].Term
	and, err := f.eng.Run(query.MustParse(`"`+a+`" AND "`+b+`"`), 10)
	if err != nil {
		t.Fatal(err)
	}
	or, err := f.eng.Run(query.MustParse(`"`+a+`" OR "`+b+`"`), 10)
	if err != nil {
		t.Fatal(err)
	}
	if and.M.DocsEvaluated >= or.M.DocsEvaluated {
		t.Fatal("AND must evaluate fewer docs than OR on the same terms")
	}
	if and.M.ComputeTime >= or.M.ComputeTime {
		t.Fatal("AND should be cheaper in compute than OR on the same terms")
	}
}

func TestMetricsAccounting(t *testing.T) {
	f := newFixture(t)
	res, err := f.eng.Run(query.MustParse(`"t5"`), 10)
	if err != nil {
		t.Fatal(err)
	}
	pl := f.idx.MustList("t5")
	wantBlocks := int64(len(pl.Blocks))
	if res.M.BlocksFetched != wantBlocks {
		t.Fatalf("single-term scan fetched %d blocks, list has %d", res.M.BlocksFetched, wantBlocks)
	}
	if res.M.PostingsDecoded != int64(pl.DF) {
		t.Fatalf("decoded %d postings, df is %d", res.M.PostingsDecoded, pl.DF)
	}
	wantBytes := int64(len(pl.Data)) + wantBlocks*index.BlockMetaBytes
	if res.M.Cat[mem.CatLoadList] != wantBytes {
		t.Fatalf("LD List = %d bytes, want %d", res.M.Cat[mem.CatLoadList], wantBytes)
	}
	if res.M.ComputeTime <= 0 {
		t.Fatal("no compute time charged")
	}
	// The software baseline materializes nothing.
	if res.M.Cat[mem.CatStoreInter] != 0 || res.M.Cat[mem.CatLoadInter] != 0 {
		t.Fatal("software DAAT should not spill intermediates")
	}
}

func TestEngineIsComputeBound(t *testing.T) {
	// The defining property of the baseline (Figure 16): latency barely
	// changes between SCM and DRAM because compute dominates.
	f := newFixture(t)
	var exprs = queryExprsForTests(f.c)
	for _, expr := range exprs[:12] {
		res, err := f.eng.Run(query.MustParse(expr), 100)
		if err != nil {
			t.Fatal(err)
		}
		scm := res.M.Latency(mem.HostSCM())
		dram := res.M.Latency(mem.HostDRAM())
		gain := float64(scm) / float64(dram)
		if gain > 1.2 {
			t.Fatalf("query %s: DRAM speeds the software baseline by %.2fx; it should be compute-bound", expr, gain)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	f := newFixture(t)
	node := query.MustParse(`"t2" AND ("t7" OR "t9" OR "t11")`)
	r1, err := f.eng.Run(node, 25)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.eng.Run(node, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(r1.TopK, r2.TopK) {
		t.Fatal("same query produced different results")
	}
	if r1.M.ComputeTime != r2.M.ComputeTime || r1.M.SeqReadBytes != r2.M.SeqReadBytes {
		t.Fatal("same query produced different metrics")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkEngineQ3(b *testing.B) {
	f := newFixture(b)
	node := query.MustParse(`"t1" OR "t4"`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.eng.Run(node, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWANDEngineMatchesExhaustive(t *testing.T) {
	f := newFixture(t)
	wand := New(f.idx)
	wand.EnableWAND()
	for _, qt := range []corpus.QueryType{corpus.Q1, corpus.Q3, corpus.Q5} {
		for _, q := range corpus.SampleQueries(f.c, qt, 8, 55) {
			node := query.MustParse(q.Expr)
			for _, k := range []int{1, 5, 40} {
				a, err := wand.Run(node, k)
				if err != nil {
					t.Fatal(err)
				}
				b, err := f.eng.Run(node, k)
				if err != nil {
					t.Fatal(err)
				}
				if !sameEntries(a.TopK, b.TopK) {
					t.Fatalf("%s k=%d: WAND engine changed the result set", q.Expr, k)
				}
			}
		}
	}
}

func TestWANDEngineEvaluatesFewerDocs(t *testing.T) {
	f := newFixture(t)
	wand := New(f.idx)
	wand.EnableWAND()
	node := query.MustParse(`"t0" OR "t1" OR "t2" OR "t3"`)
	a, err := wand.Run(node, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.eng.Run(node, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.M.DocsEvaluated >= b.M.DocsEvaluated {
		t.Fatalf("WAND evaluated %d docs, exhaustive %d", a.M.DocsEvaluated, b.M.DocsEvaluated)
	}
}

func TestWANDEngineFallsBackOnNonUnions(t *testing.T) {
	f := newFixture(t)
	wand := New(f.idx)
	wand.EnableWAND()
	for _, expr := range []string{`"t0" AND "t1"`, `"t0" AND ("t1" OR "t2")`} {
		node := query.MustParse(expr)
		a, err := wand.Run(node, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := f.eng.Run(node, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !sameEntries(a.TopK, b.TopK) {
			t.Fatalf("%s: WAND mode changed non-union results", expr)
		}
	}
}

func TestWANDEngineUnknownTerm(t *testing.T) {
	f := newFixture(t)
	wand := New(f.idx)
	wand.EnableWAND()
	if _, err := wand.Run(query.MustParse(`"t0" OR "missing"`), 5); err == nil {
		t.Fatal("unknown term should error in WAND mode")
	}
}
