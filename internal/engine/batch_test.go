package engine

import (
	"testing"

	"boss/internal/corpus"
	"boss/internal/query"
)

func batchNodes(f *testFixture) []*query.Node {
	var nodes []*query.Node
	for _, qt := range corpus.AllQueryTypes() {
		for _, q := range corpus.SampleQueries(f.c, qt, 4, 9) {
			nodes = append(nodes, query.MustParse(q.Expr))
		}
	}
	return nodes
}

func TestRunBatchMatchesSequential(t *testing.T) {
	f := newFixture(t)
	nodes := batchNodes(f)
	br := f.eng.RunBatch(nodes, 25, 8)
	if br.Err != nil {
		t.Fatal(br.Err)
	}
	if len(br.Results) != len(nodes) {
		t.Fatalf("got %d results for %d queries", len(br.Results), len(nodes))
	}
	for i, node := range nodes {
		want, err := f.eng.Run(node, 25)
		if err != nil {
			t.Fatal(err)
		}
		if !sameEntries(br.Results[i].TopK, want.TopK) {
			t.Fatalf("query %d: batch result differs from sequential", i)
		}
		if br.Results[i].M.ComputeTime != want.M.ComputeTime {
			t.Fatalf("query %d: batch metrics differ from sequential", i)
		}
	}
}

func TestRunBatchAggregates(t *testing.T) {
	f := newFixture(t)
	nodes := batchNodes(f)[:6]
	br := f.eng.RunBatch(nodes, 10, 3)
	if br.Err != nil {
		t.Fatal(br.Err)
	}
	var wantDocs int64
	for _, r := range br.Results {
		wantDocs += r.M.DocsEvaluated
	}
	if br.Aggregate.DocsEvaluated != wantDocs {
		t.Fatalf("aggregate docs = %d, sum = %d", br.Aggregate.DocsEvaluated, wantDocs)
	}
}

func TestRunBatchPropagatesErrors(t *testing.T) {
	f := newFixture(t)
	nodes := []*query.Node{
		query.MustParse(`"t0"`),
		query.MustParse(`"notaterm"`),
		query.MustParse(`"t1"`),
	}
	br := f.eng.RunBatch(nodes, 10, 2)
	if br.Err == nil {
		t.Fatal("batch should report the unknown-term error")
	}
	// Per-query attribution: exactly the failing query has an Errs entry,
	// and Err is that entry (first failure in input order).
	if len(br.Errs) != len(nodes) {
		t.Fatalf("Errs has %d entries for %d queries", len(br.Errs), len(nodes))
	}
	if br.Errs[0] != nil || br.Errs[2] != nil {
		t.Fatal("valid queries must have nil Errs entries")
	}
	if br.Errs[1] == nil || br.Err != br.Errs[1] {
		t.Fatal("Err should be the failing query's own error")
	}
	// The valid queries still produced results.
	if len(br.Results[0].TopK) == 0 || len(br.Results[2].TopK) == 0 {
		t.Fatal("valid queries in a failing batch should still complete")
	}
}

func TestRunBatchWorkerClamping(t *testing.T) {
	f := newFixture(t)
	nodes := batchNodes(f)[:2]
	for _, workers := range []int{0, 1, 100} {
		br := f.eng.RunBatch(nodes, 5, workers)
		if br.Err != nil || len(br.Results) != 2 {
			t.Fatalf("workers=%d: batch failed", workers)
		}
	}
}
