package engine

import (
	"runtime"
	"sync"

	"boss/internal/perf"
	"boss/internal/query"
)

// BatchResult is the outcome of a concurrently executed query batch.
type BatchResult struct {
	// Results holds one Result per input query, in input order.
	Results []Result
	// Err is the first error encountered (remaining queries still run).
	Err error
	// Aggregate merges every query's work metrics.
	Aggregate *perf.Metrics
}

// RunBatch executes queries concurrently on the given number of worker
// goroutines (0 = GOMAXPROCS), modeling the paper's 8-thread Lucene
// deployment where each in-flight query owns one core. Results preserve
// input order and are deterministic: each query's execution is independent
// and the engine itself is stateless.
func (e *Engine) RunBatch(nodes []*query.Node, k, workers int) *BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers < 1 {
		workers = 1
	}
	br := &BatchResult{Results: make([]Result, len(nodes)), Aggregate: perf.NewMetrics()}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := e.Run(nodes[i], k)
				mu.Lock()
				if err != nil && br.Err == nil {
					br.Err = err
				}
				br.Results[i] = res
				mu.Unlock()
			}
		}()
	}
	for i := range nodes {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, r := range br.Results {
		if r.M != nil {
			br.Aggregate.Merge(r.M)
		}
	}
	return br
}
