// Package engine implements the software search-engine baseline standing in
// for Apache Lucene in the paper's evaluation: document-at-a-time (DAAT)
// evaluation with exhaustive scoring for unions, Small-versus-Small (SvS)
// conjunction with skip-based seeking for intersections, and a software heap
// for top-k. A calibrated CPU cost model charges nanoseconds per decode,
// compare, score and heap operation, which keeps the baseline compute-bound
// exactly as the paper observes (Lucene gains at most ~15% from DRAM over
// SCM in Figure 16).
package engine

import (
	"fmt"
	"math"
	"sort"

	"boss/internal/cache"
	"boss/internal/index"
	"boss/internal/mem"
	"boss/internal/perf"
	"boss/internal/query"
	"boss/internal/sim"
	"boss/internal/topk"
)

// CostModel holds the per-operation CPU costs in nanoseconds. The defaults
// are calibrated so an 8-core software baseline lands where the paper's
// Lucene does relative to the accelerator models.
type CostModel struct {
	DecodeNSPerValue float64 // posting decompression, per value
	ScoreNSPerOp     float64 // one BM25 term-score evaluation
	MergeNSPerOp     float64 // one comparison/advance in merge or probe
	SeekNSPerBlock   float64 // skip-pointer traversal per block level
	HeapNSPerInsert  float64 // one top-k heap offer
}

// DefaultCostModel returns the calibrated software cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		DecodeNSPerValue: 1.8,
		ScoreNSPerOp:     4.2,
		MergeNSPerOp:     2.0,
		SeekNSPerBlock:   28.0, // skip-list traversal + iterator dispatch
		HeapNSPerInsert:  4.0,
	}
}

// Engine is a software query engine over one index shard.
type Engine struct {
	idx  *index.Index
	cost CostModel
	wand bool

	// cache, when non-nil, serves decoded blocks across queries via cached
	// cursors. It changes only host-side work: OnBlock fires on hits too,
	// so the engine's simulated cost model charges identically either way.
	cache *cache.Cache
}

// New returns an engine with the default cost model.
func New(idx *index.Index) *Engine {
	return &Engine{idx: idx, cost: DefaultCostModel()}
}

// SetCache attaches (or, with nil, detaches) a decoded-block cache. Not
// safe concurrently with Run; meant for setup time.
func (e *Engine) SetCache(c *cache.Cache) { e.cache = c }

// NewWithCost returns an engine with an explicit cost model.
func NewWithCost(idx *index.Index, cost CostModel) *Engine {
	return &Engine{idx: idx, cost: cost}
}

// Result is the outcome of one query.
type Result struct {
	TopK []topk.Entry
	M    *perf.Metrics
}

// tally counts hot-loop operations for one query. The iterators bump plain
// integer counters on every posting touched; the cost model is applied once
// per query in flush. Charging perf.Metrics per posting (a float multiply,
// a Duration conversion and a method call per next()/score()/probe) used to
// dominate real wall-clock time on union-heavy queries.
type tally struct {
	decoded     int64 // postings decompressed
	scoreOps    int64 // BM25 term-score evaluations
	mergeOps    int64 // merge/advance comparisons
	seeks       int64 // skip-based seekGEQ dispatches
	heapInserts int64 // top-k offers
}

// flush converts the accumulated counts to compute time on m and zeroes the
// tally. Applying each per-operation cost to its whole count keeps the
// result deterministic regardless of iteration interleaving.
func (ta *tally) flush(cost CostModel, m *perf.Metrics) {
	ns := cost.DecodeNSPerValue*float64(ta.decoded) +
		cost.ScoreNSPerOp*float64(ta.scoreOps) +
		cost.MergeNSPerOp*float64(ta.mergeOps) +
		cost.SeekNSPerBlock*float64(ta.seeks) +
		cost.HeapNSPerInsert*float64(ta.heapInserts)
	m.AddCompute(sim.Duration(ns * float64(sim.Nanosecond)))
	*ta = tally{}
}

// Run evaluates the query and returns the top-k documents plus the work
// metrics the run accumulated. Run is safe for concurrent use from multiple
// goroutines: the engine itself is stateless and all per-query state lives
// in the iterator tree built here.
func (e *Engine) Run(node *query.Node, k int) (Result, error) {
	m := perf.NewMetrics()
	ta := &tally{}
	if e.wand && node.Op == query.OpOr && node.IsPureOr() {
		return e.runWAND(node, k, m, ta)
	}
	it, err := e.build(node, m, ta)
	if err != nil {
		return Result{}, err
	}
	sel := topk.NewHeap(k)
	for it.valid() {
		doc := it.doc()
		s := it.score()
		m.DocsEvaluated++
		ta.heapInserts++
		sel.Insert(doc, s)
		it.next()
	}
	it.close()
	ta.flush(e.cost, m)
	return Result{TopK: sel.Results(), M: m}, nil
}

// iter is a DAAT document iterator. score() may only be called when
// valid(), and charges the scoring cost for the current document. close()
// releases decode buffers back to the shared pool; the iterator must not be
// used afterwards.
type iter interface {
	valid() bool
	doc() uint32
	score() float64
	next()
	seekGEQ(target uint32) bool
	estDF() int
	close()
}

// build compiles a query AST into an iterator tree.
func (e *Engine) build(node *query.Node, m *perf.Metrics, ta *tally) (iter, error) {
	switch node.Op {
	case query.OpTerm:
		pl := e.idx.List(node.Term)
		if pl == nil {
			return nil, fmt.Errorf("engine: term %q not indexed", node.Term)
		}
		return e.newTermIter(pl, m, ta), nil
	case query.OpAnd:
		children := make([]iter, len(node.Children))
		for i, c := range node.Children {
			it, err := e.build(c, m, ta)
			if err != nil {
				return nil, err
			}
			children[i] = it
		}
		return e.newAndIter(children, m, ta), nil
	case query.OpOr:
		children := make([]iter, len(node.Children))
		for i, c := range node.Children {
			it, err := e.build(c, m, ta)
			if err != nil {
				return nil, err
			}
			children[i] = it
		}
		return e.newOrIter(children, ta), nil
	case query.OpSparse:
		// The software baseline has no impact payloads: it evaluates the
		// sparse family as an exhaustive union with exact float BM25 —
		// the reference the quantized accelerator ranking is compared
		// against (top-k overlap, not byte equality).
		children := make([]iter, len(node.Children))
		for i, c := range node.Children {
			it, err := e.build(c, m, ta)
			if err != nil {
				return nil, err
			}
			children[i] = it
		}
		return e.newOrIter(children, ta), nil
	default:
		return nil, fmt.Errorf("engine: unknown query op %d", node.Op)
	}
}

// --- term iterator ---

type termIter struct {
	e   *Engine
	cur *index.Cursor
	pl  *index.PostingList
	ta  *tally
	ord int // position in the query expression (WAND summation order)
}

func (e *Engine) newTermIter(pl *index.PostingList, m *perf.Metrics, ta *tally) *termIter {
	t := &termIter{e: e, pl: pl, ta: ta}
	cur := index.NewCursorCached(e.idx, pl, e.cache)
	cur.OnBlock = func(b int) {
		meta := pl.Blocks[b]
		size := int64(meta.Length) + index.BlockMetaBytes
		m.AddSeqRead(size, mem.CatLoadList)
		m.BlocksFetched++
		m.PostingsDecoded += int64(meta.Count)
		ta.decoded += int64(meta.Count)
	}
	t.cur = cur
	// The cursor decoded its first block during construction, before
	// OnBlock was attached; charge it now.
	if len(pl.Blocks) > 0 {
		cur.OnBlock(0)
	}
	return t
}

func (t *termIter) valid() bool { return t.cur.Valid() }
func (t *termIter) doc() uint32 { return t.cur.Doc() }
func (t *termIter) estDF() int  { return t.pl.DF }
func (t *termIter) close()      { t.cur.Release() }

func (t *termIter) score() float64 {
	t.ta.scoreOps++
	return t.cur.Score()
}

func (t *termIter) next() {
	t.ta.mergeOps++
	t.cur.Next()
}

func (t *termIter) seekGEQ(target uint32) bool {
	t.ta.seeks++
	return t.cur.SeekGEQ(target)
}

// --- conjunction (SvS document-at-a-time) ---

type andIter struct {
	children []iter // sorted by ascending estimated df
	m        *perf.Metrics
	ta       *tally
	cur      uint32
	ok       bool
}

func (e *Engine) newAndIter(children []iter, m *perf.Metrics, ta *tally) *andIter {
	sort.SliceStable(children, func(i, j int) bool {
		return children[i].estDF() < children[j].estDF()
	})
	a := &andIter{children: children, m: m, ta: ta}
	a.align(0)
	return a
}

// align advances all children to the smallest common docID >= target.
func (a *andIter) align(target uint32) {
	lead := a.children[0]
	if !lead.seekGEQ(target) {
		a.ok = false
		return
	}
	candidate := lead.doc()
outer:
	for {
		for _, c := range a.children[1:] {
			a.m.MembershipProbes++
			a.ta.mergeOps++
			if !c.seekGEQ(candidate) {
				a.ok = false
				return
			}
			if d := c.doc(); d != candidate {
				if !lead.seekGEQ(d) {
					a.ok = false
					return
				}
				candidate = lead.doc()
				continue outer
			}
		}
		a.cur = candidate
		a.ok = true
		return
	}
}

func (a *andIter) valid() bool { return a.ok }
func (a *andIter) doc() uint32 { return a.cur }

func (a *andIter) close() {
	for _, c := range a.children {
		c.close()
	}
}

func (a *andIter) estDF() int {
	// The conjunction is at most as long as its rarest child.
	return a.children[0].estDF()
}

func (a *andIter) score() float64 {
	var s float64
	for _, c := range a.children {
		s += c.score()
	}
	return s
}

func (a *andIter) next() {
	if !a.ok {
		return
	}
	a.align(a.cur + 1)
}

func (a *andIter) seekGEQ(target uint32) bool {
	if a.ok && a.cur >= target {
		return true
	}
	a.align(target)
	return a.ok
}

// --- disjunction (exhaustive DAAT union) ---

type orIter struct {
	children []iter
	ta       *tally
	cur      uint32
	ok       bool
}

func (e *Engine) newOrIter(children []iter, ta *tally) *orIter {
	o := &orIter{children: children, ta: ta}
	o.settle()
	return o
}

// settle finds the minimum document among children.
func (o *orIter) settle() {
	min := uint32(math.MaxUint32)
	o.ok = false
	for _, c := range o.children {
		o.ta.mergeOps++
		if c.valid() {
			if d := c.doc(); !o.ok || d < min {
				min = d
				o.ok = true
			}
		}
	}
	o.cur = min
}

func (o *orIter) valid() bool { return o.ok }
func (o *orIter) doc() uint32 { return o.cur }

func (o *orIter) close() {
	for _, c := range o.children {
		c.close()
	}
}

func (o *orIter) estDF() int {
	df := 0
	for _, c := range o.children {
		df += c.estDF()
	}
	return df
}

func (o *orIter) score() float64 {
	var s float64
	for _, c := range o.children {
		if c.valid() && c.doc() == o.cur {
			s += c.score()
		}
	}
	return s
}

func (o *orIter) next() {
	if !o.ok {
		return
	}
	for _, c := range o.children {
		if c.valid() && c.doc() == o.cur {
			c.next()
		}
	}
	o.settle()
}

func (o *orIter) seekGEQ(target uint32) bool {
	for _, c := range o.children {
		if c.valid() && c.doc() < target {
			c.seekGEQ(target)
		}
	}
	o.settle()
	return o.ok
}
