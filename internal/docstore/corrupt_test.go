package docstore

import (
	"bytes"
	"errors"
	"testing"
)

// TestCorruptFileSweep is the logpack-style bit-flip sweep over the
// serialized store: every single-bit corruption of the file must be
// detected at load (the footer CRC covers every preceding byte), or —
// were one ever to slip through — still decode to the original payloads.
// Silent wrong payloads and panics both fail the test.
func TestCorruptFileSweep(t *testing.T) {
	s, want := buildCorpus(t, 200, 37)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	stride := 1
	if len(orig) > 1<<14 {
		stride = len(orig) / (1 << 13) // sample ~8K positions on big files
	}
	mut := make([]byte, len(orig))
	for pos := 0; pos < len(orig); pos += stride {
		for _, bit := range []byte{0x01, 0x10, 0x80} {
			copy(mut, orig)
			mut[pos] ^= bit
			got, err := Read(bytes.NewReader(mut))
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("flip at %d/%#x: err = %v, want ErrCorrupt", pos, bit, err)
				}
				continue
			}
			// Load survived (cannot happen while the footer CRC covers the
			// whole stream, but the contract is payload fidelity, so check it).
			for i := 0; i < got.NumDocs; i++ {
				fields := fetchDoc(t, got, uint32(i))
				if !bytes.Equal(fields[0], want[i][0]) || !bytes.Equal(fields[1], want[i][1]) {
					t.Fatalf("flip at %d/%#x: loaded cleanly but doc %d differs", pos, bit, i)
				}
			}
		}
	}
}

// TestCorruptTruncations: every prefix of the file must fail with
// ErrCorrupt — truncation can never produce a usable store.
func TestCorruptTruncations(t *testing.T) {
	s, _ := buildCorpus(t, 100, 41)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	stride := 1
	if len(orig) > 1<<13 {
		stride = len(orig) / (1 << 12)
	}
	for n := 0; n < len(orig); n += stride {
		if _, err := Read(bytes.NewReader(orig[:n])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorrupt", n, err)
		}
	}
}

// TestCorruptBlockAfterLoad models media corruption after a clean load:
// flip bits in a resident compressed payload and verify the per-block
// CRC32-C gate catches it at fetch time.
func TestCorruptBlockAfterLoad(t *testing.T) {
	s, _ := buildCorpus(t, 3*BlockDocs, 43)
	for bi := 0; bi < s.NumBlocks(); bi++ {
		m := &s.Blocks[bi]
		for _, bit := range []byte{0x01, 0x80} {
			pos := m.Offset + uint32(bi*7)%m.CompLen
			s.Data[pos] ^= bit
			payload := s.BlockPayload(bi)
			if ChecksumPayload(payload) == m.Checksum {
				t.Fatalf("block %d: checksum unchanged after bit flip", bi)
			}
			// The decoder itself must stay memory-safe on the corrupt
			// payload even if a caller skips the CRC gate.
			raw := make([]byte, m.RawLen)
			_ = s.DecodeBlock(raw, payload)
			s.Data[pos] ^= bit // restore
		}
	}
}
