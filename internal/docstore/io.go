package docstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary document-store format (version 1):
//
//	magic "BOSSDOC1"
//	numDocs u32 | numFields u16
//	per field: nameLen u16 | name bytes
//	numBlocks u32
//	per block: firstDoc u32 | count u32 | offset u32 | compLen u32 |
//	           rawLen u32 | checksum u32
//	dataLen u32 | data bytes
//	footer: magic "BOSSDEND" | crc u32 (CRC32-C of every preceding byte)
//
// The footer CRC turns every truncation or bit-flip anywhere in the file
// into a typed ErrCorrupt at load time; the per-block payload checksums
// additionally catch media corruption at fetch time after a clean load —
// the same two-tier integrity scheme as the v2 index format.
const (
	docMagic  = "BOSSDOC1"
	docFooter = "BOSSDEND"
)

// Structural sanity bounds: a corrupt length field must produce
// ErrCorrupt, not a multi-gigabyte allocation.
const (
	maxDocs      = 1 << 30
	maxBlocks    = 1 << 26
	maxDataBytes = 1 << 30
	maxFields    = 1 << 8
	maxFieldName = 1 << 10
)

// WriteTo serializes the store. It implements io.WriterTo.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v interface{}) {
		if cw.err == nil {
			cw.err = binary.Write(cw, binary.LittleEndian, v)
		}
	}
	cw.writeString(docMagic)
	write(uint32(s.NumDocs))
	write(uint16(len(s.Fields)))
	for _, f := range s.Fields {
		write(uint16(len(f)))
		cw.writeString(f)
	}
	write(uint32(len(s.Blocks)))
	for _, b := range s.Blocks {
		write(b.FirstDoc)
		write(b.Count)
		write(b.Offset)
		write(b.CompLen)
		write(b.RawLen)
		write(b.Checksum)
	}
	write(uint32(len(s.Data)))
	_, _ = cw.Write(s.Data) // countingWriter latches the first error in cw.err
	// Footer: seal everything written so far under the stream CRC. The
	// footer magic itself is covered by nothing (it is the seal).
	sum := cw.crc
	cw.writeString(docFooter)
	write(sum)
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// Read deserializes a store written by WriteTo. Any truncation, bad
// length field, or checksum mismatch yields an error wrapping
// ErrCorrupt.
func Read(r io.Reader) (*Store, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(docMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %w", ErrCorrupt, err)
	}
	if string(magic) != docMagic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, magic, docMagic)
	}
	var err error
	read := func(v interface{}) {
		if err == nil {
			err = binary.Read(cr, binary.LittleEndian, v)
		}
	}
	s := &Store{}
	var numDocs, numBlocks, dataLen uint32
	var numFields uint16
	read(&numDocs)
	read(&numFields)
	if err != nil {
		return nil, fmt.Errorf("%w: reading header: %w", ErrCorrupt, err)
	}
	if numDocs > maxDocs || int(numFields) > maxFields || numFields == 0 {
		return nil, fmt.Errorf("%w: implausible header (docs=%d fields=%d)", ErrCorrupt, numDocs, numFields)
	}
	s.NumDocs = int(numDocs)
	s.Fields = make([]string, numFields)
	for i := range s.Fields {
		var nameLen uint16
		read(&nameLen)
		if err != nil {
			return nil, fmt.Errorf("%w: field %d: %w", ErrCorrupt, i, err)
		}
		if int(nameLen) > maxFieldName {
			return nil, fmt.Errorf("%w: field %d: implausible name length %d", ErrCorrupt, i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err = io.ReadFull(cr, name); err != nil {
			return nil, fmt.Errorf("%w: field %d name: %w", ErrCorrupt, i, err)
		}
		s.Fields[i] = string(name)
	}
	read(&numBlocks)
	if err != nil {
		return nil, fmt.Errorf("%w: reading block count: %w", ErrCorrupt, err)
	}
	if numBlocks > maxBlocks {
		return nil, fmt.Errorf("%w: implausible block count %d", ErrCorrupt, numBlocks)
	}
	s.Blocks = make([]BlockMeta, numBlocks)
	for bi := range s.Blocks {
		b := &s.Blocks[bi]
		read(&b.FirstDoc)
		read(&b.Count)
		read(&b.Offset)
		read(&b.CompLen)
		read(&b.RawLen)
		read(&b.Checksum)
	}
	read(&dataLen)
	if err != nil {
		return nil, fmt.Errorf("%w: reading blocks: %w", ErrCorrupt, err)
	}
	if dataLen > maxDataBytes {
		return nil, fmt.Errorf("%w: implausible data length %d", ErrCorrupt, dataLen)
	}
	s.Data = make([]byte, dataLen)
	if _, err = io.ReadFull(cr, s.Data); err != nil {
		return nil, fmt.Errorf("%w: reading data: %w", ErrCorrupt, err)
	}
	var docs uint64
	for bi := range s.Blocks {
		b := &s.Blocks[bi]
		if uint64(b.Offset)+uint64(b.CompLen) > uint64(dataLen) {
			return nil, fmt.Errorf("%w: block %d exceeds payload", ErrCorrupt, bi)
		}
		if b.Count == 0 || b.Count > BlockDocs || b.RawLen > maxDataBytes {
			return nil, fmt.Errorf("%w: block %d implausible (count=%d raw=%d)", ErrCorrupt, bi, b.Count, b.RawLen)
		}
		if uint64(b.FirstDoc) != uint64(bi)*BlockDocs {
			return nil, fmt.Errorf("%w: block %d firstDoc %d (want %d)", ErrCorrupt, bi, b.FirstDoc, bi*BlockDocs)
		}
		docs += uint64(b.Count)
		s.RawBytes += int64(b.RawLen)
	}
	if docs != uint64(numDocs) {
		return nil, fmt.Errorf("%w: block doc counts sum to %d, header says %d", ErrCorrupt, docs, numDocs)
	}
	// Footer: the stream CRC accumulated so far must match the sealed
	// value. Read the footer outside the CRC accounting.
	sum := cr.crc
	footer := make([]byte, len(docFooter))
	if _, err := io.ReadFull(cr, footer); err != nil {
		return nil, fmt.Errorf("%w: reading footer: %w", ErrCorrupt, err)
	}
	if string(footer) != docFooter {
		return nil, fmt.Errorf("%w: bad footer magic %q (truncated file?)", ErrCorrupt, footer)
	}
	var sealed uint32
	if err := binary.Read(cr, binary.LittleEndian, &sealed); err != nil {
		return nil, fmt.Errorf("%w: reading footer checksum: %w", ErrCorrupt, err)
	}
	if sealed != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrCorrupt, sealed, sum)
	}
	return s, nil
}

// countingWriter tracks bytes written, the running stream CRC, and the
// first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	crc uint32
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	cw.err = err
	return n, err
}

func (cw *countingWriter) writeString(s string) {
	_, _ = cw.Write([]byte(s)) // error latched in cw.err
}

// crcReader accumulates the CRC32-C of everything read through it.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, castagnoli, p[:n])
	return n, err
}
