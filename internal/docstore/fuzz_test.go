package docstore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// FuzzLZRoundTrip compresses arbitrary inputs and requires an exact
// decode; it also feeds the raw input to the decoder directly, where any
// outcome but a typed error or clean decode (panic, hang, OOB) fails.
func FuzzLZRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("a"))
	f.Add([]byte("aaaaaaaaaaaaaaaa"))
	f.Add(bytes.Repeat([]byte{1, 2, 3}, 100))
	f.Add([]byte("the quick brown fox jumps over the lazy dog the quick brown fox"))
	rng := rand.New(rand.NewSource(47))
	f.Add(textish(rng, 1000))
	rnd := make([]byte, 500)
	rng.Read(rnd)
	f.Add(rnd)

	f.Fuzz(func(t *testing.T, src []byte) {
		comp := lzCompress(nil, src)
		dst := make([]byte, len(src))
		if err := lzDecompress(dst, comp); err != nil {
			t.Fatalf("decode of own output failed: %v", err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatal("round trip mismatch")
		}
		// Arbitrary bytes as a compressed stream: must not panic, and on a
		// clean decode the output length contract must hold (it trivially
		// does — the decoder enforces it — so just exercise the path).
		scratch := make([]byte, 256)
		_ = lzDecompress(scratch, src)
	})
}

// FuzzDocstoreOpen feeds arbitrary bytes to Read. A valid store must
// load and serve every document; anything else must fail with a typed
// ErrCorrupt — never a panic or a runaway allocation.
func FuzzDocstoreOpen(f *testing.F) {
	// Seed corpus: a well-formed store, its empty-ish variants, and a few
	// deliberate corruptions so the fuzzer starts near the format.
	s, _ := buildCorpus(f, 70, 53)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte(docMagic))
	trunc := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(trunc)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-typed load error: %v", err)
			}
			return
		}
		// Load succeeded: walking every document must stay memory-safe.
		// A coverage-guided mutant can reseal the footer CRC over a bad
		// block, so per-block failures (checksum gate, decode error, bad
		// framing) are acceptable detections — panics are not.
		for i := 0; i < got.NumDocs; i++ {
			bi := got.BlockOf(uint32(i))
			if bi >= got.NumBlocks() {
				t.Fatalf("loaded store: doc %d maps to block %d of %d", i, bi, got.NumBlocks())
			}
			m := &got.Blocks[bi]
			payload := got.BlockPayload(bi)
			if ChecksumPayload(payload) != m.Checksum {
				continue // detected at fetch time, as the CRC gate would
			}
			raw := make([]byte, m.RawLen)
			if err := got.DecodeBlock(raw, payload); err != nil {
				continue
			}
			_, _ = got.AppendDoc(nil, raw, i-int(m.FirstDoc))
		}
	})
}
