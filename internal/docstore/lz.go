package docstore

// LZ-family byte codec for packed document blocks.
//
// The format is an LZ4-style sequence stream: each sequence is a token
// byte whose high nibble is the literal length and low nibble the match
// length minus minMatch (15 in either nibble continues into 0xFF
// run-length extension bytes), the literals themselves, then a 2-byte
// little-endian match distance. A stream always ends after the literals
// of its final sequence — the final sequence carries no match, so a
// well-formed stream is never empty (an empty input compresses to the
// single token 0x00).
//
// Matches may overlap their output (distance < match length), which is
// how runs compress; the decoder therefore copies matches byte by byte.
// The decoder is the fetch phase's wall-clock inner loop: it is
// annotated //boss:hotpath, performs no allocation, and turns every
// framing violation into a typed ErrCorrupt instead of a panic or an
// out-of-bounds write.

const (
	// lzMinMatch is the shortest encodable match; shorter repeats are
	// emitted as literals.
	lzMinMatch = 4
	// lzMaxDist is the farthest back a match may reach (2-byte distance).
	lzMaxDist = 65535
	// lzHashLog sizes the compressor's chaining table.
	lzHashLog  = 13
	lzHashSize = 1 << lzHashLog
)

// Outlined corrupt-stream errors: the hot decoder returns preconstructed
// values so the failure paths cost nothing on the happy path.
var (
	errLZTruncated = corruptf("truncated compressed stream")
	errLZOverflow  = corruptf("compressed stream overflows output")
	errLZShort     = corruptf("compressed stream ends before output is full")
	errLZDistance  = corruptf("match distance outside decoded window")
)

// lzHash mixes a 4-byte little-endian window into a table index.
func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashLog)
}

func le32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// lzCompress appends the compressed form of src to dst and returns the
// extended slice. Compression is greedy with a single-probe hash table —
// build-time code, so it may allocate (the table lives on the stack).
func lzCompress(dst, src []byte) []byte {
	var table [lzHashSize]int32 // position+1; 0 means empty
	n := len(src)
	anchor, i := 0, 0
	if n >= lzMinMatch {
		limit := n - lzMinMatch
		for i <= limit {
			h := lzHash(le32(src, i))
			cand := int(table[h]) - 1
			table[h] = int32(i + 1)
			if cand < 0 || i-cand > lzMaxDist || le32(src, cand) != le32(src, i) {
				i++
				continue
			}
			m, c := i+lzMinMatch, cand+lzMinMatch
			for m < n && src[m] == src[c] {
				m++
				c++
			}
			dst = lzEmit(dst, src[anchor:i], i-cand, m-i)
			i, anchor = m, m
		}
	}
	return lzEmit(dst, src[anchor:], 0, 0)
}

// lzEmit appends one sequence: literals lit, then (when dist > 0) a
// match of mlen bytes at distance dist. dist == 0 marks the final,
// match-free sequence.
func lzEmit(dst, lit []byte, dist, mlen int) []byte {
	ll := len(lit)
	tok := byte(0)
	if ll >= 15 {
		tok = 0xF0
	} else {
		tok = byte(ll) << 4
	}
	ml := 0
	if dist > 0 {
		ml = mlen - lzMinMatch
		if ml >= 15 {
			tok |= 0x0F
		} else {
			tok |= byte(ml)
		}
	}
	dst = append(dst, tok)
	if ll >= 15 {
		dst = lzEmitExt(dst, ll-15)
	}
	dst = append(dst, lit...)
	if dist > 0 {
		dst = append(dst, byte(dist), byte(dist>>8))
		if ml >= 15 {
			dst = lzEmitExt(dst, ml-15)
		}
	}
	return dst
}

func lzEmitExt(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 0xFF)
		v -= 255
	}
	return append(dst, byte(v))
}

// lzDecompress decompresses src into dst, which must be exactly the
// original length. Every read and write is bounds-checked against the
// declared lengths: a corrupt stream yields an error wrapping
// ErrCorrupt, never a panic, an out-of-bounds access, or a silently
// short output.
//
//boss:hotpath the fetch phase's decode inner loop; byte-oriented copy loops, no allocation.
func lzDecompress(dst, src []byte) error {
	d, s := 0, 0
	nd, ns := len(dst), len(src)
	for {
		if s >= ns {
			return errLZTruncated
		}
		tok := src[s]
		s++
		ll := int(tok >> 4)
		if ll == 15 {
			for {
				if s >= ns {
					return errLZTruncated
				}
				b := src[s]
				s++
				ll += int(b)
				if b != 0xFF {
					break
				}
			}
		}
		if ll > ns-s || ll > nd-d {
			return errLZOverflow
		}
		for i := 0; i < ll; i++ {
			dst[d] = src[s]
			d++
			s++
		}
		if s == ns {
			// Final sequence: the stream ends after its literals.
			if d != nd {
				return errLZShort
			}
			return nil
		}
		if ns-s < 2 {
			return errLZTruncated
		}
		dist := int(src[s]) | int(src[s+1])<<8
		s += 2
		if dist == 0 || dist > d {
			return errLZDistance
		}
		ml := int(tok & 0x0F)
		if ml == 15 {
			for {
				if s >= ns {
					return errLZTruncated
				}
				b := src[s]
				s++
				ml += int(b)
				if b != 0xFF {
					break
				}
			}
		}
		ml += lzMinMatch
		if ml > nd-d {
			return errLZOverflow
		}
		// Byte-by-byte: matches may overlap their own output.
		ref := d - dist
		for i := 0; i < ml; i++ {
			dst[d] = dst[ref]
			d++
			ref++
		}
	}
}
