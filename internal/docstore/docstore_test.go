package docstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// buildCorpus builds a store of n two-field documents plus the expected
// field values for later comparison.
func buildCorpus(t testing.TB, n int, seed int64) (*Store, [][2][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("name", "text")
	want := make([][2][]byte, n)
	for i := 0; i < n; i++ {
		name := []byte(fmt.Sprintf("doc%06d", i))
		text := textish(rng, 50+rng.Intn(400))
		want[i] = [2][]byte{name, text}
		if err := b.Add(name, text); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(), want
}

// fetchDoc decodes the block holding docID and returns its field slices.
func fetchDoc(t testing.TB, s *Store, docID uint32) [][]byte {
	t.Helper()
	bi := s.BlockOf(docID)
	m := &s.Blocks[bi]
	payload := s.BlockPayload(bi)
	if ChecksumPayload(payload) != m.Checksum {
		t.Fatalf("doc %d: block %d checksum mismatch", docID, bi)
	}
	raw := make([]byte, m.RawLen)
	if err := s.DecodeBlock(raw, payload); err != nil {
		t.Fatalf("doc %d: decode block %d: %v", docID, bi, err)
	}
	fields, err := s.AppendDoc(nil, raw, int(docID)-int(m.FirstDoc))
	if err != nil {
		t.Fatalf("doc %d: locate: %v", docID, err)
	}
	return fields
}

func TestStoreRoundTrip(t *testing.T) {
	const n = 1000 // several full blocks plus a partial tail
	s, want := buildCorpus(t, n, 23)
	if s.NumDocs != n {
		t.Fatalf("NumDocs = %d, want %d", s.NumDocs, n)
	}
	if got, wantB := s.NumBlocks(), (n+BlockDocs-1)/BlockDocs; got != wantB {
		t.Fatalf("NumBlocks = %d, want %d", got, wantB)
	}
	if s.RawBytes <= int64(len(s.Data)) {
		t.Fatalf("store did not compress: raw %d vs data %d", s.RawBytes, len(s.Data))
	}
	for i := 0; i < n; i++ {
		fields := fetchDoc(t, s, uint32(i))
		if len(fields) != 2 {
			t.Fatalf("doc %d: %d fields", i, len(fields))
		}
		if !bytes.Equal(fields[0], want[i][0]) || !bytes.Equal(fields[1], want[i][1]) {
			t.Fatalf("doc %d: payload mismatch", i)
		}
	}
}

func TestStoreIORoundTrip(t *testing.T) {
	s, want := buildCorpus(t, 300, 29)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs != s.NumDocs || got.NumBlocks() != s.NumBlocks() || got.RawBytes != s.RawBytes {
		t.Fatalf("reloaded store shape mismatch: %+v vs %+v", got, s)
	}
	if len(got.Fields) != 2 || got.Fields[0] != "name" || got.Fields[1] != "text" {
		t.Fatalf("reloaded fields %v", got.Fields)
	}
	for i := 0; i < got.NumDocs; i++ {
		fields := fetchDoc(t, got, uint32(i))
		if !bytes.Equal(fields[0], want[i][0]) || !bytes.Equal(fields[1], want[i][1]) {
			t.Fatalf("doc %d: payload mismatch after reload", i)
		}
	}
}

func TestStoreIDsDistinct(t *testing.T) {
	a, _ := buildCorpus(t, 10, 1)
	b, _ := buildCorpus(t, 10, 2)
	if a.ID() == 0 || b.ID() == 0 || a.ID() == b.ID() {
		t.Fatalf("store IDs not distinct: %d %d", a.ID(), b.ID())
	}
	if a.ID() != a.ID() {
		t.Fatal("ID not stable")
	}
}

func TestAppendDocFraming(t *testing.T) {
	s, _ := buildCorpus(t, BlockDocs, 31)
	m := &s.Blocks[0]
	raw := make([]byte, m.RawLen)
	if err := s.DecodeBlock(raw, s.BlockPayload(0)); err != nil {
		t.Fatal(err)
	}
	// Out-of-range doc index inside a valid block.
	if _, err := s.AppendDoc(nil, raw, BlockDocs); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-range doc index: err = %v, want ErrCorrupt", err)
	}
	// Truncated raw blocks must never panic; whether they error depends on
	// how much of doc 0's columns the prefix still covers.
	for cut := 0; cut < len(raw); cut += 11 {
		_, _ = s.AppendDoc(nil, raw[:cut], 0)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":    {},
		"badMagic": []byte("NOTABOSS"),
		"truncMagic": func() []byte {
			return []byte(docMagic)[:4]
		}(),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}
