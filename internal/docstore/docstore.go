// Package docstore implements a block-compressed document/snippet store
// for the fetch phase of serving: after ranking ends at scored docIDs, a
// real response returns the documents themselves, and on storage-class
// memory that second phase is bandwidth-bound exactly like the first.
//
// Records are packed field-aware: documents are grouped into fixed-size
// blocks, and within a block each field is a column — a run of varint
// lengths followed by the concatenated field bytes. Columnar packing
// keeps like bytes together (names next to names, bodies next to
// bodies), which is what gives the LZ codec its ratio. Each packed block
// is compressed independently with the byte-oriented codec in lz.go and
// carries a CRC32-C of its compressed payload, so media corruption is
// detected at fetch time and surfaces as a typed ErrCorrupt — the same
// integrity discipline as the posting-block path.
//
// The store is append-build / read-only: a Builder accumulates
// documents, Build seals the store, and readers locate any document with
// O(1) block arithmetic plus an allocation-free varint scan of its
// block. Serialization (io.go) seals the whole file under a checksummed
// footer mirroring the v2 index format.
package docstore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync/atomic"
)

// BlockDocs is the number of documents packed per block. Fixed-size
// blocks make doc→block location pure arithmetic; 64 documents is large
// enough for the columnar packing to expose redundancy to the codec and
// small enough that a single fetch decodes in microseconds.
const BlockDocs = 64

// ErrCorrupt reports a structurally invalid, truncated, or
// checksum-mismatched document store. All integrity failures wrap it, so
// callers test with errors.Is(err, docstore.ErrCorrupt).
var ErrCorrupt = errors.New("docstore: corrupt or truncated document store")

// corruptf wraps ErrCorrupt with context. Cold path only.
func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: "+format, append([]interface{}{ErrCorrupt}, args...)...)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumPayload returns the CRC32-C of a compressed block payload, the
// same polynomial the index uses for posting blocks.
func ChecksumPayload(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

var errBlockFraming = corruptf("packed block framing invalid")

// BlockMeta describes one compressed block of packed documents.
type BlockMeta struct {
	FirstDoc uint32 // docID of the block's first document
	Count    uint32 // documents packed in this block
	Offset   uint32 // byte offset of the compressed payload in Data
	CompLen  uint32 // compressed payload length
	RawLen   uint32 // decompressed (packed) length
	Checksum uint32 // CRC32-C of the compressed payload
}

// Store is a sealed, read-only document store.
type Store struct {
	Fields  []string // field names, in packing order
	NumDocs int
	Blocks  []BlockMeta
	Data    []byte // concatenated compressed block payloads

	// RawBytes is the total uncompressed packed size — the numerator of
	// decode-throughput (GB/s) reporting.
	RawBytes int64

	id atomic.Uint64
}

// nextStoreID hands out process-wide store identities for cache keying,
// in the same way index.nextListID identifies posting lists.
var nextStoreID atomic.Uint64

// ID returns the store's process-wide identity, assigning it on first
// use. Together with cache.ClassDoc it keys decoded doc blocks in the
// shared block cache without colliding with posting lists.
func (s *Store) ID() uint64 {
	if id := s.id.Load(); id != 0 {
		return id
	}
	s.id.CompareAndSwap(0, nextStoreID.Add(1))
	return s.id.Load()
}

// ReplicaView returns a replica of the store for R-way replicated
// serving: block metadata and payload bytes are shared with the
// receiver, but the view carries a fresh process-wide identity so
// replicas key a shared decoded-block cache disjointly (one replica's
// clean decode never masks another replica's fault draws).
func (s *Store) ReplicaView() *Store {
	v := &Store{
		Fields:   s.Fields,
		NumDocs:  s.NumDocs,
		Blocks:   s.Blocks,
		Data:     s.Data,
		RawBytes: s.RawBytes,
	}
	v.id.Store(nextStoreID.Add(1))
	return v
}

// NumBlocks returns the number of packed blocks.
func (s *Store) NumBlocks() int { return len(s.Blocks) }

// BlockOf returns the block holding docID. Blocks are fixed-size, so
// this is pure arithmetic.
func (s *Store) BlockOf(docID uint32) int { return int(docID) / BlockDocs }

// BlockPayload returns the compressed payload of block bi as a view into
// Data. Offsets were bounds-checked at build/load time.
func (s *Store) BlockPayload(bi int) []byte {
	m := &s.Blocks[bi]
	return s.Data[m.Offset : m.Offset+m.CompLen]
}

// MaxRawLen returns the largest decompressed block size — the scratch
// capacity a reader needs to decode any block of this store.
func (s *Store) MaxRawLen() int {
	max := 0
	for i := range s.Blocks {
		if n := int(s.Blocks[i].RawLen); n > max {
			max = n
		}
	}
	return max
}

// DecodeBlock decompresses the compressed payload src into dst, which
// must be exactly the block's RawLen. A corrupt payload yields an error
// wrapping ErrCorrupt; dst is never written past its length.
//
//boss:hotpath thin wrapper over the codec's decode loop.
func (s *Store) DecodeBlock(dst, src []byte) error {
	return lzDecompress(dst, src)
}

// AppendDoc appends document di's field slices (one per store field, in
// field order) to dst and returns the extended slice. raw is the decoded
// packed block holding the document and di its index within the block.
// The returned slices alias raw — zero-copy, valid as long as raw is.
// Framing violations yield ErrCorrupt, never a panic.
//
//boss:hotpath the cache-hit fetch path locates documents with this varint scan; no allocation once dst has capacity.
func (s *Store) AppendDoc(dst [][]byte, raw []byte, di int) ([][]byte, error) {
	cnt, p, ok := uvarint(raw, 0)
	if !ok || uint64(di) >= cnt || cnt > BlockDocs {
		return dst, errBlockFraming
	}
	nf := len(s.Fields)
	for f := 0; f < nf; f++ {
		var start, total, flen uint64
		for i := 0; i < int(cnt); i++ {
			l, np, ok2 := uvarint(raw, p)
			if !ok2 || l > uint64(len(raw)) {
				return dst, errBlockFraming
			}
			p = np
			if i < di {
				start += l
			} else if i == di {
				flen = l
			}
			total += l
		}
		if total > uint64(len(raw)-p) {
			return dst, errBlockFraming
		}
		fs := p + int(start)
		fe := fs + int(flen)
		dst = append(dst, raw[fs:fe:fe])
		p += int(total)
	}
	return dst, nil
}

// uvarint decodes an unsigned varint at offset p, returning the value,
// the offset past it, and whether decoding succeeded within bounds.
func uvarint(b []byte, p int) (uint64, int, bool) {
	var v uint64
	var shift uint
	for p < len(b) {
		c := b[p]
		p++
		if shift >= 64 {
			return 0, 0, false
		}
		v |= uint64(c&0x7F) << shift
		if c < 0x80 {
			return v, p, true
		}
		shift += 7
	}
	return 0, 0, false
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Builder accumulates documents and seals them into a Store. Build-time
// code: it allocates freely.
type Builder struct {
	fields []string
	pend   [][]byte // len(fields) slices per pending doc, flushed per block
	ndocs  int

	raw    []byte // packed-block scratch, reused across flushes
	blocks []BlockMeta
	data   []byte
	rawSum int64
}

// NewBuilder returns a builder for documents with the given fields.
func NewBuilder(fields ...string) *Builder {
	if len(fields) == 0 {
		panic("docstore: NewBuilder requires at least one field")
	}
	fs := make([]string, len(fields))
	copy(fs, fields)
	return &Builder{fields: fs}
}

// Add appends one document. vals must carry one value per field, in the
// order given to NewBuilder; the bytes are copied.
func (b *Builder) Add(vals ...[]byte) error {
	if len(vals) != len(b.fields) {
		return fmt.Errorf("docstore: Add got %d values for %d fields", len(vals), len(b.fields))
	}
	for _, v := range vals {
		b.pend = append(b.pend, append([]byte(nil), v...))
	}
	b.ndocs++
	if b.ndocs%BlockDocs == 0 {
		b.flush()
	}
	return nil
}

// AddStrings is Add for string-valued fields.
func (b *Builder) AddStrings(vals ...string) error {
	if len(vals) != len(b.fields) {
		return fmt.Errorf("docstore: AddStrings got %d values for %d fields", len(vals), len(b.fields))
	}
	for _, v := range vals {
		b.pend = append(b.pend, []byte(v))
	}
	b.ndocs++
	if b.ndocs%BlockDocs == 0 {
		b.flush()
	}
	return nil
}

// flush packs the pending documents into one block: a varint doc count,
// then per field a column of varint lengths followed by the concatenated
// bytes; the packed block is LZ-compressed and checksummed.
func (b *Builder) flush() {
	nf := len(b.fields)
	cnt := len(b.pend) / nf
	if cnt == 0 {
		return
	}
	raw := b.raw[:0]
	raw = appendUvarint(raw, uint64(cnt))
	for f := 0; f < nf; f++ {
		for i := 0; i < cnt; i++ {
			raw = appendUvarint(raw, uint64(len(b.pend[i*nf+f])))
		}
		for i := 0; i < cnt; i++ {
			raw = append(raw, b.pend[i*nf+f]...)
		}
	}
	b.raw = raw[:0]
	off := len(b.data)
	b.data = lzCompress(b.data, raw)
	payload := b.data[off:]
	b.blocks = append(b.blocks, BlockMeta{
		FirstDoc: uint32(b.ndocs - cnt),
		Count:    uint32(cnt),
		Offset:   uint32(off),
		CompLen:  uint32(len(payload)),
		RawLen:   uint32(len(raw)),
		Checksum: ChecksumPayload(payload),
	})
	b.rawSum += int64(len(raw))
	b.pend = b.pend[:0]
}

// Build flushes any partial block and seals the store.
func (b *Builder) Build() *Store {
	b.flush()
	return &Store{
		Fields:   b.fields,
		NumDocs:  b.ndocs,
		Blocks:   b.blocks,
		Data:     b.data,
		RawBytes: b.rawSum,
	}
}
