package docstore

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// textish synthesizes compressible text-like bytes: words drawn from a
// small vocabulary, which is what real document payloads look like to a
// byte codec.
func textish(rng *rand.Rand, n int) []byte {
	vocab := []string{"the", "of", "bandwidth", "storage", "search", "accelerator",
		"block", "posting", "memory", "fetch", "decode", "document", "scm"}
	var b []byte
	for len(b) < n {
		b = append(b, vocab[rng.Intn(len(vocab))]...)
		b = append(b, ' ')
	}
	return b[:n]
}

func roundTrip(t *testing.T, name string, src []byte) {
	t.Helper()
	comp := lzCompress(nil, src)
	dst := make([]byte, len(src))
	if err := lzDecompress(dst, comp); err != nil {
		t.Fatalf("%s: decompress: %v", name, err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("%s: round trip mismatch (%d bytes)", name, len(src))
	}
}

func TestLZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string][]byte{
		"empty":      {},
		"one":        {0x42},
		"shortRun":   []byte("aaaa"),
		"longRun":    bytes.Repeat([]byte{0xAB}, 10000),
		"text":       textish(rng, 64<<10),
		"alternets":  bytes.Repeat([]byte{1, 2, 3}, 5000),
		"literalEnd": append(bytes.Repeat([]byte("abcd"), 100), []byte("xyz")...),
	}
	// Incompressible: uniform random bytes.
	rnd := make([]byte, 32<<10)
	rng.Read(rnd)
	cases["random"] = rnd
	// Long-distance matches near the 64K window edge.
	far := make([]byte, 0, 200<<10)
	far = append(far, textish(rng, 60<<10)...)
	far = append(far, far[:40<<10]...)
	cases["farMatch"] = far

	for name, src := range cases {
		roundTrip(t, name, src)
	}
	// Random lengths shake out boundary conditions in the extension runs.
	for i := 0; i < 200; i++ {
		n := rng.Intn(4096)
		src := textish(rng, n)
		roundTrip(t, "sized", src)
	}
}

// TestLZRatio checks that text-like payloads actually compress — the
// store's whole reason to pay a decode on fetch.
func TestLZRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := textish(rng, 256<<10)
	comp := lzCompress(nil, src)
	if len(comp) >= len(src)/2 {
		t.Fatalf("text compressed %d -> %d, want at least 2x", len(src), len(comp))
	}
}

// TestLZSpeed reports corpus compress/decompress throughput, in the
// go-lzo speed-test idiom: not an assertion, a logged figure.
func TestLZSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("speed report skipped in -short")
	}
	rng := rand.New(rand.NewSource(13))
	src := textish(rng, 1<<20)
	comp := lzCompress(nil, src)
	dst := make([]byte, len(src))

	const iters = 20
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := lzDecompress(dst, comp); err != nil {
			t.Fatal(err)
		}
	}
	el := time.Since(start)
	mbs := float64(len(src)) * iters / el.Seconds() / (1 << 20)
	t.Logf("decode: %d bytes (%.2fx ratio) %d iters in %v = %.0f MB/s",
		len(src), float64(len(src))/float64(len(comp)), iters, el, mbs)
}

// TestLZDecompressCorrupt drives the decoder over mutated streams: every
// outcome must be a typed error or a clean decode, never a panic or an
// out-of-bounds access (the race/asan build would catch the latter).
func TestLZDecompressCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	src := textish(rng, 8<<10)
	comp := lzCompress(nil, src)
	dst := make([]byte, len(src))
	for i := range comp {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), comp...)
			mut[i] ^= bit
			_ = lzDecompress(dst, mut) // must not panic; error or clean decode both fine
		}
	}
	// Truncations.
	for n := 0; n < len(comp); n += 7 {
		_ = lzDecompress(dst, comp[:n])
	}
	// Wrong declared output length.
	if err := lzDecompress(make([]byte, len(src)+1), comp); err == nil {
		t.Fatal("decode into oversized dst succeeded")
	}
	if err := lzDecompress(make([]byte, len(src)-1), comp); err == nil {
		t.Fatal("decode into undersized dst succeeded")
	}
}

func BenchmarkLZDecompress(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	src := textish(rng, 256<<10)
	comp := lzCompress(nil, src)
	dst := make([]byte, len(src))
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lzDecompress(dst, comp); err != nil {
			b.Fatal(err)
		}
	}
}
