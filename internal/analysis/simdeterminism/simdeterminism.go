// Package simdeterminism enforces DESIGN.md §7: simulated time must be
// byte-identical across runs. Inside the model packages it forbids the three
// classic ways replay determinism breaks in Go:
//
//  1. wall-clock reads (time.Now, time.Since, ...) — allowed only in
//     functions or files carrying a //boss:wallclock marker, and the marker
//     itself is verified (a stale waiver is a finding too);
//  2. the unseeded global math/rand source (rand.Intn, rand.Float64, ...);
//     explicitly seeded rand.New(rand.NewSource(seed)) generators are fine;
//  3. order-sensitive iteration over a map: a `range m` whose body exits
//     early (break/return — which iteration runs depends on map order), or
//     calls builtin delete (arbitrary-eviction shape), or feeds
//     simulated-time / metrics / event-queue state through a method on one
//     of the state-holding packages with an iteration-independent receiver
//     or argument. Order-insensitive uses — collecting keys for a later
//     sort, folding a commutative max/sum into a local — pass.
//
// The map rule is a heuristic: it recognizes the three shapes that have
// produced real nondeterminism in simulators of this style rather than
// proving order-independence. The deterministic rewrite is always available:
// iterate a sorted key slice.
package simdeterminism

import (
	"go/ast"
	"go/token"
	"go/types"

	"boss/internal/analysis"
)

// ScopePackages are the package path segments the analyzer applies to: the
// event-driven simulation kernel, the memory system, the accelerator model,
// the programmable decompressor, and the experiment harness that reports
// simulated figures.
var ScopePackages = []string{
	"internal/sim",
	"internal/mem",
	"internal/core",
	"internal/decomp",
	"internal/harness",
}

// StatePackages hold simulated-time, metrics, or event-queue state; calling
// into them from inside a map iteration is what the map rule flags.
var StatePackages = []string{
	"internal/sim",
	"internal/mem",
	"internal/perf",
	"internal/topk",
	"internal/pool",
	"internal/hw",
}

// wallClockFuncs are the time-package functions that observe or depend on
// the host clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// seededRandFuncs are the math/rand constructors that produce explicitly
// seeded generators; every other package-level rand function draws from the
// global (randomly seeded) source.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// Analyzer is the simdeterminism check.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock reads, unseeded global rand, and order-sensitive map iteration in the simulation model packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathHasAny(pass.Pkg.Path(), ScopePackages) {
		return nil
	}
	for _, file := range pass.Files {
		fileWaived := analysis.FileHasMarker(file, analysis.MarkerWallclock)
		fileUsesClock := false
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			funcWaived := analysis.FuncHasMarker(fn, analysis.MarkerWallclock)
			usesClock := checkFunc(pass, fn, fileWaived || funcWaived)
			fileUsesClock = fileUsesClock || usesClock
			if funcWaived && !usesClock {
				pass.Reportf(fn.Pos(), "stale //boss:wallclock marker: %s does not use the wall clock", fn.Name.Name)
			}
		}
		if fileWaived && !fileUsesClock {
			pass.Reportf(file.Pos(), "stale //boss:wallclock marker: file does not use the wall clock")
		}
	}
	return nil
}

// checkFunc walks one function, reporting violations; it returns whether the
// function references the wall clock (for stale-marker verification).
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, clockWaived bool) bool {
	usesClock := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if obj, ok := pass.TypesInfo.Uses[x.Sel].(*types.Func); ok && obj.Pkg() != nil &&
				obj.Type().(*types.Signature).Recv() == nil {
				// Package-level functions only: methods on an explicitly
				// seeded *rand.Rand (or a time.Timer) are deterministic.
				switch obj.Pkg().Path() {
				case "time":
					if wallClockFuncs[obj.Name()] {
						usesClock = true
						if !clockWaived {
							pass.Reportf(x.Pos(), "wall-clock call time.%s in simulation code (waive with //boss:wallclock if this is a host-side measurement)", obj.Name())
						}
					}
				case "math/rand", "math/rand/v2":
					if !seededRandFuncs[obj.Name()] {
						pass.Reportf(x.Pos(), "unseeded global rand.%s; use an explicitly seeded rand.New(rand.NewSource(seed))", obj.Name())
					}
				}
			}
		case *ast.RangeStmt:
			checkMapRange(pass, x)
		}
		return true
	})
	return usesClock
}

// checkMapRange flags order-sensitive bodies of map-typed range loops.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	report := func(pos token.Pos, why string) {
		pass.Reportf(pos, "map iteration order is nondeterministic: %s; iterate a sorted key slice instead", why)
	}

	// Returns and state-feeding calls are order-sensitive at any nesting
	// depth inside the body; a return exits the range loop no matter how
	// deeply it sits.
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			report(x.Pos(), "loop returns after an order-dependent prefix of iterations")
		case *ast.CallExpr:
			checkMapRangeCall(pass, rng, x, report)
		}
		return true
	})
	// Breaks bind to the innermost for/range/switch/select, so only walk
	// the parts of the body where an unlabeled break targets this loop.
	// (A labeled break from a nested loop is not tracked — a heuristic gap
	// on the strict side of never, the lenient side of rarely.)
	reportBreaks(rng.Body, report)
}

// reportBreaks flags unlabeled break statements that target the map-range
// loop whose body is given, skipping subtrees where break rebinds.
func reportBreaks(n ast.Node, report func(token.Pos, string)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false
		case *ast.BranchStmt:
			if x.Tok == token.BREAK && x.Label == nil {
				report(x.Pos(), "loop breaks after an order-dependent prefix of iterations")
			}
		}
		return true
	})
}

// checkMapRangeCall flags calls inside a map-range body that feed state held
// by one of the StatePackages through an iteration-independent receiver or
// argument, plus the builtin delete (the arbitrary-eviction shape).
func checkMapRangeCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr, report func(token.Pos, string)) {
	obj := analysis.CalleeObj(pass.TypesInfo, call)
	if b, ok := obj.(*types.Builtin); ok {
		if b.Name() == "delete" {
			report(call.Pos(), "delete inside the iteration evicts an arbitrary entry")
		}
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !analysis.PkgPathHasAny(fn.Pkg().Path(), StatePackages) {
		return
	}
	// The call targets a state package. It is order-sensitive when the
	// state it touches outlives the iteration: receiver or any argument
	// rooted at a binding declared outside the loop.
	var exprs []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		exprs = append(exprs, sel.X)
	}
	exprs = append(exprs, call.Args...)
	for _, e := range exprs {
		o := analysis.RootObj(pass.TypesInfo, e)
		if o == nil || o.Pos() == token.NoPos {
			continue
		}
		if o.Pos() < rng.Pos() || o.Pos() > rng.End() {
			report(call.Pos(), "call to "+fn.Pkg().Name()+"."+fn.Name()+" feeds state that outlives the iteration")
			return
		}
	}
}
