package simdeterminism_test

import (
	"testing"

	"boss/internal/analysis/analysistest"
	"boss/internal/analysis/simdeterminism"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/src", simdeterminism.Analyzer)
}
