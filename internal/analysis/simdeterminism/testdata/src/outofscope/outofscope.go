// Package outofscope proves scoping: the same constructs the analyzer flags
// in the model packages draw nothing here.
package outofscope

import (
	"math/rand"
	"time"
)

// Now is fine: outofscope is not a simulation package.
func Now() time.Time { return time.Now() }

// Roll is fine here too.
func Roll() int { return rand.Intn(6) }
