//boss:wallclock stale: nothing in this file touches the clock.
package harness // want `stale //boss:wallclock marker: file does not use the wall clock`

// Helper is clock-free, which makes the file waiver above stale.
func Helper() int { return 2 }
