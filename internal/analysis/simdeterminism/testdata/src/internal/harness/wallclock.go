// Package harness mirrors the repository's host-side measurement code: the
// file-level waiver covers every function in this file.
//
//boss:wallclock fixture: the whole file measures host time.
package harness

import "time"

// QPS measures wall time and is covered by the file waiver above.
func QPS(n int) float64 {
	start := time.Now()
	return float64(n) / time.Since(start).Seconds()
}
