// Package core exercises every simdeterminism rule from inside an in-scope
// package path.
package core

import (
	"math/rand"
	"sort"
	"time"

	"fixtures/internal/sim"
)

// --- wall clock ---

func wallClock() time.Time {
	return time.Now() // want `wall-clock call time\.Now`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock call time\.Since`
}

// measure is a legitimate host-side measurement: the waiver silences the
// clock rule for this function only.
//
//boss:wallclock fixture: waived measurement helper.
func measure() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// stale carries a waiver it no longer needs.
//
//boss:wallclock
func stale() int { return 1 } // want `stale //boss:wallclock marker: stale does not use the wall clock`

// --- rand ---

func unseeded() int {
	return rand.Intn(4) // want `unseeded global rand\.Intn`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(4) // methods on an explicitly seeded *rand.Rand are fine
}

// --- map iteration ---

// sumLatency folds commutatively into a local: order-insensitive.
func sumLatency(byQuery map[string]float64) float64 {
	var total float64
	for _, v := range byQuery {
		total += v
	}
	return total
}

// names collects keys for a later sort: the canonical deterministic rewrite.
func names(byQuery map[string]float64) []string {
	out := make([]string, 0, len(byQuery))
	for name := range byQuery {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// firstOver returns mid-iteration: which entry wins depends on map order.
func firstOver(byQuery map[string]float64, lim float64) string {
	for name, v := range byQuery {
		if v > lim {
			return name // want `loop returns after an order-dependent prefix`
		}
	}
	return ""
}

func stopEarly(byQuery map[string]float64) int {
	n := 0
	for range byQuery {
		n++
		if n == 3 {
			break // want `loop breaks after an order-dependent prefix`
		}
	}
	return n
}

// nestedBreak's break binds to the inner slice loop, not the map range.
func nestedBreak(byQuery map[string][]float64) float64 {
	var total float64
	for _, vs := range byQuery {
		for _, v := range vs {
			if v < 0 {
				break
			}
			total += v
		}
	}
	return total
}

// evictOne is the arbitrary-eviction shape the TLB model used to have.
func evictOne(cache map[uint64]struct{}) {
	for k := range cache {
		delete(cache, k) // want `delete inside the iteration evicts an arbitrary entry`
		break            // want `loop breaks after an order-dependent prefix`
	}
}

// drainIntoQueue feeds an event queue from a map range: arrival order
// becomes simulated-event order, so the whole run inherits map order.
func drainIntoQueue(eng *sim.Engine, pending map[uint64]uint64) {
	for _, at := range pending {
		eng.Schedule(at) // want `call to sim\.Schedule feeds state that outlives the iteration`
	}
}

// mergeAll is the shape the real Stats.Merge had before it switched to a
// sorted key slice.
func mergeAll(dst *sim.Stats, parts map[string]float64) {
	for name, v := range parts {
		dst.Add(name, v) // want `call to sim\.Add feeds state that outlives the iteration`
	}
}

// resetEach calls into the state package only through the loop variable:
// per-entry state, so iteration order is invisible.
func resetEach(byShard map[int]*sim.Stats) {
	for _, st := range byShard {
		st.Reset()
	}
}
