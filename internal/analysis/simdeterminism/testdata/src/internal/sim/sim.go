// Package sim is a fixture stand-in for the repository's event-driven
// simulation kernel: just enough surface for the map-iteration rule to see
// calls that feed event-queue and metrics state. Its own path sits inside
// the analyzer's scope, so the code here must itself be clean.
package sim

// Engine is a fake simulation engine with an event queue.
type Engine struct {
	events []uint64
}

// Schedule enqueues an event; on timestamp ties, insertion order decides
// which event pops first — which is exactly why feeding it from a map range
// is a determinism bug.
func (e *Engine) Schedule(at uint64) {
	e.events = append(e.events, at)
}

// Stats is a fake metrics sink.
type Stats struct {
	n map[string]float64
}

// Add accumulates a metric.
func (s *Stats) Add(name string, v float64) {
	if s.n == nil {
		s.n = map[string]float64{}
	}
	s.n[name] += v
}

// Reset clears a stats sink.
func (s *Stats) Reset() { s.n = nil }
