package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Marker comments form the annotation contract between the code and the
// analyzer suite (documented in DESIGN.md "Enforced invariants"):
//
//	//boss:hotpath       — hotpathalloc + hotpathescape enforce
//	                       allocation-free code (syntactic bans and the
//	                       compiler's escape analysis, respectively)
//	//boss:wallclock     — waives simdeterminism's wall-clock ban
//	//boss:pool-escapes  — waives poolhygiene's Get/Put pairing
//	//boss:ctx-root      — waives ctxflow's context.Background/TODO ban
//	                       (the function is a deliberate context root)
//	//boss:daemon        — waives goroutineleak for a goroutine that is
//	                       meant to live for the process lifetime
//	//boss:escape-ok     — line-level waiver for one compiler-reported
//	                       escape inside a //boss:hotpath function (the
//	                       escape is on a cold branch)
//
// A marker applies to a function when it appears in the function's doc
// comment, and to a whole file when it appears in the file's header (any
// comment group that starts before the first non-import declaration).
// //boss:daemon additionally applies to a single go statement when it
// appears on the line directly above it, and //boss:escape-ok to a single
// source line. Markers may carry a trailing justification:
// "//boss:wallclock QPS is a host-side measurement".
//
// Every waiver is verified: a marker whose referent no longer exists, or
// that no longer suppresses anything (the analyzer it waives would not
// fire without it), is itself a finding, so waivers cannot rot in place.
const (
	MarkerHotPath     = "//boss:hotpath"
	MarkerWallclock   = "//boss:wallclock"
	MarkerPoolEscapes = "//boss:pool-escapes"
	MarkerCtxRoot     = "//boss:ctx-root"
	MarkerDaemon      = "//boss:daemon"
	MarkerEscapeOK    = "//boss:escape-ok"
)

// commentHasMarker reports whether any line of the group is the marker,
// optionally followed by a justification.
func commentHasMarker(g *ast.CommentGroup, marker string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		text := strings.TrimSpace(c.Text)
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// FuncHasMarker reports whether fn's doc comment carries the marker.
func FuncHasMarker(fn *ast.FuncDecl, marker string) bool {
	return commentHasMarker(fn.Doc, marker)
}

// FileHasMarker reports whether the file's header carries the marker. The
// header is every comment group positioned before the first declaration
// that is not an import.
func FileHasMarker(f *ast.File, marker string) bool {
	end := token.Pos(0)
	for _, d := range f.Decls {
		if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			continue
		}
		end = d.Pos()
		break
	}
	for _, g := range f.Comments {
		if end.IsValid() && end != token.NoPos && g.Pos() >= end {
			break
		}
		if commentHasMarker(g, marker) {
			return true
		}
	}
	return false
}

// markerLine reports whether a single comment line is the marker.
func markerLine(c *ast.Comment, marker string) bool {
	text := strings.TrimSpace(c.Text)
	return text == marker || strings.HasPrefix(text, marker+" ")
}

// DanglingMarkers returns the positions of marker comments in f that are
// attached to nothing the analyzers look at: not a function's doc comment
// and not the file header. These are markers whose referent declaration
// was refactored away (or that sit on a var/type declaration, which no
// analyzer consults) — stale by construction.
func DanglingMarkers(f *ast.File, marker string) []token.Pos {
	attached := make(map[*ast.CommentGroup]bool)
	var headerEnd token.Pos
	for _, d := range f.Decls {
		if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			continue
		}
		if headerEnd == token.NoPos {
			headerEnd = d.Pos()
		}
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Doc != nil {
			attached[fn.Doc] = true
		}
	}
	var out []token.Pos
	for _, g := range f.Comments {
		if attached[g] {
			continue
		}
		if headerEnd == token.NoPos || g.Pos() < headerEnd {
			continue // file header: a legal whole-file marker position
		}
		for _, c := range g.List {
			if markerLine(c, marker) {
				out = append(out, c.Pos())
			}
		}
	}
	return out
}

// LineMarkers returns the positions of every marker comment line in f,
// wherever it appears (doc comment, header, inline, floating).
func LineMarkers(f *ast.File, marker string) []token.Pos {
	var out []token.Pos
	for _, g := range f.Comments {
		for _, c := range g.List {
			if markerLine(c, marker) {
				out = append(out, c.Pos())
			}
		}
	}
	return out
}

// HasLineMarker reports whether a marker comment sits on the given line
// or on the line directly above it — the attachment rule for statement-
// level markers (//boss:daemon above a go statement, //boss:escape-ok on
// an escaping line).
func HasLineMarker(fset *token.FileSet, f *ast.File, line int, marker string) bool {
	for _, g := range f.Comments {
		for _, c := range g.List {
			if !markerLine(c, marker) {
				continue
			}
			cl := fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// RootIdent peels selectors, indexing, slicing, dereferences, parentheses,
// and type assertions off an expression and returns the identifier at its
// root, or nil when the expression is not rooted in an identifier (e.g. a
// call result or a literal).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// RootObj resolves the root identifier of e to its types.Object, or nil.
func RootObj(info *types.Info, e ast.Expr) types.Object {
	id := RootIdent(e)
	if id == nil {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// PkgPathHas reports whether path contains seg as a whole slash-separated
// segment run (so "internal/sim" matches "boss/internal/sim" and
// "fixtures/internal/sim/sub" but not "boss/internal/simx").
func PkgPathHas(path, seg string) bool {
	return path == seg ||
		strings.HasSuffix(path, "/"+seg) ||
		strings.HasPrefix(path, seg+"/") ||
		strings.Contains(path, "/"+seg+"/")
}

// PkgPathHasAny reports whether path matches any segment run in segs.
func PkgPathHasAny(path string, segs []string) bool {
	for _, s := range segs {
		if PkgPathHas(path, s) {
			return true
		}
	}
	return false
}

// CalleeObj resolves the object a call expression invokes: a *types.Func for
// ordinary function and method calls, a *types.Builtin for builtins, nil for
// indirect calls through function values and for type conversions.
func CalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // qualified identifier: pkg.Func
	}
	return nil
}

// CalleeIsPkgFunc reports whether the call invokes the named package-level
// function (or method) from the package with the given path.
func CalleeIsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := CalleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}
