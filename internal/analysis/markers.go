package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Marker comments form the annotation contract between the code and the
// analyzer suite (documented in DESIGN.md "Enforced invariants"):
//
//	//boss:hotpath       — hotpathalloc enforces allocation-free constructs
//	//boss:wallclock     — waives simdeterminism's wall-clock ban
//	//boss:pool-escapes  — waives poolhygiene's Get/Put pairing
//
// A marker applies to a function when it appears in the function's doc
// comment, and to a whole file when it appears in the file's header (any
// comment group that starts before the first non-import declaration).
// Markers may carry a trailing justification: "//boss:wallclock QPS is a
// host-side measurement".
const (
	MarkerHotPath     = "//boss:hotpath"
	MarkerWallclock   = "//boss:wallclock"
	MarkerPoolEscapes = "//boss:pool-escapes"
)

// commentHasMarker reports whether any line of the group is the marker,
// optionally followed by a justification.
func commentHasMarker(g *ast.CommentGroup, marker string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		text := strings.TrimSpace(c.Text)
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// FuncHasMarker reports whether fn's doc comment carries the marker.
func FuncHasMarker(fn *ast.FuncDecl, marker string) bool {
	return commentHasMarker(fn.Doc, marker)
}

// FileHasMarker reports whether the file's header carries the marker. The
// header is every comment group positioned before the first declaration
// that is not an import.
func FileHasMarker(f *ast.File, marker string) bool {
	end := token.Pos(0)
	for _, d := range f.Decls {
		if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			continue
		}
		end = d.Pos()
		break
	}
	for _, g := range f.Comments {
		if end.IsValid() && end != token.NoPos && g.Pos() >= end {
			break
		}
		if commentHasMarker(g, marker) {
			return true
		}
	}
	return false
}

// RootIdent peels selectors, indexing, slicing, dereferences, parentheses,
// and type assertions off an expression and returns the identifier at its
// root, or nil when the expression is not rooted in an identifier (e.g. a
// call result or a literal).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// RootObj resolves the root identifier of e to its types.Object, or nil.
func RootObj(info *types.Info, e ast.Expr) types.Object {
	id := RootIdent(e)
	if id == nil {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// PkgPathHas reports whether path contains seg as a whole slash-separated
// segment run (so "internal/sim" matches "boss/internal/sim" and
// "fixtures/internal/sim/sub" but not "boss/internal/simx").
func PkgPathHas(path, seg string) bool {
	return path == seg ||
		strings.HasSuffix(path, "/"+seg) ||
		strings.HasPrefix(path, seg+"/") ||
		strings.Contains(path, "/"+seg+"/")
}

// PkgPathHasAny reports whether path matches any segment run in segs.
func PkgPathHasAny(path string, segs []string) bool {
	for _, s := range segs {
		if PkgPathHas(path, s) {
			return true
		}
	}
	return false
}

// CalleeObj resolves the object a call expression invokes: a *types.Func for
// ordinary function and method calls, a *types.Builtin for builtins, nil for
// indirect calls through function values and for type conversions.
func CalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // qualified identifier: pkg.Func
	}
	return nil
}

// CalleeIsPkgFunc reports whether the call invokes the named package-level
// function (or method) from the package with the given path.
func CalleeIsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := CalleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}
