package errpropagation_test

import (
	"testing"

	"boss/internal/analysis/analysistest"
	"boss/internal/analysis/errpropagation"
)

func TestErrPropagation(t *testing.T) {
	analysistest.Run(t, "testdata/src", errpropagation.Analyzer)
}
