// Package errpropagation forbids silently discarded error returns outside
// test files: a call statement (plain, deferred, or go'd) whose callee
// returns an error must either consume the error or discard it explicitly
// with `_ =` / `v, _ :=`, which keeps the decision visible at the call site.
//
// A small allowlist covers callees that cannot meaningfully fail:
//
//   - fmt.Print/Printf/Println (stdout; nothing actionable on failure);
//   - fmt.Fprint* when the writer is os.Stdout, os.Stderr, a
//     *strings.Builder, or a *bytes.Buffer (the builders never error);
//   - methods on strings.Builder and bytes.Buffer themselves.
//
// Everything else — file Close, Flush, binary.Write, and friends — must be
// handled or visibly dropped.
//
// The analyzer also forbids matching errors by their rendered text: comparing
// err.Error() against a string with == / !=, or passing it to
// strings.Contains / HasPrefix / HasSuffix, breaks the moment a message is
// reworded and silently ignores wrapping. Typed sentinel errors exist for
// exactly this (mem.ErrMediaUncorrectable, core.ErrDeadlineExceeded, ...);
// identity checks must go through errors.Is / errors.As.
package errpropagation

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"boss/internal/analysis"
)

// Analyzer is the errpropagation check.
var Analyzer = &analysis.Analyzer{
	Name: "errpropagation",
	Doc:  "forbid silently discarded error returns and err.Error() string matching outside _test.go files",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					check(pass, call, "")
				}
			case *ast.DeferStmt:
				check(pass, x.Call, "deferred ")
			case *ast.GoStmt:
				check(pass, x.Call, "spawned ")
			case *ast.BinaryExpr:
				checkTextCompare(pass, x)
			case *ast.CallExpr:
				checkTextMatch(pass, x)
			}
			return true
		})
	}
	return nil
}

// check reports the call if it drops an error result.
func check(pass *analysis.Pass, call *ast.CallExpr, how string) {
	info := pass.TypesInfo
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return
	}
	if !returnsError(tv.Type) {
		return
	}
	if allowlisted(info, call) {
		return
	}
	name := calleeName(info, call)
	pass.Reportf(call.Pos(), "%scall to %s discards its error result; handle it or make the discard explicit with _ =", how, name)
}

// checkTextCompare flags `err.Error() == "..."` and its != twin: error
// identity must use errors.Is / errors.As, not the rendered message.
func checkTextCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if errorTextCall(pass.TypesInfo, b.X) || errorTextCall(pass.TypesInfo, b.Y) {
		pass.Reportf(b.Pos(), "comparing err.Error() text with %s; match errors with errors.Is or errors.As", b.Op)
	}
}

// checkTextMatch flags strings.Contains/HasPrefix/HasSuffix over an
// err.Error() operand — substring matching on error text is the same
// fragility as direct comparison.
func checkTextMatch(pass *analysis.Pass, call *ast.CallExpr) {
	fn, ok := analysis.CalleeObj(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	switch fn.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index":
	default:
		return
	}
	for _, arg := range call.Args {
		if errorTextCall(pass.TypesInfo, arg) {
			pass.Reportf(call.Pos(), "matching err.Error() text with strings.%s; match errors with errors.Is or errors.As", fn.Name())
			return
		}
	}
}

// errorTextCall reports whether e is a call of the Error() string method on
// an error value.
func errorTextCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	return types.AssignableTo(tv.Type, errorType)
}

// returnsError reports whether t (a call's result type) includes an error.
func returnsError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isError(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isError(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isError(t types.Type) bool {
	return types.Identical(t, errorType)
}

// allowlisted reports whether the callee is one of the cannot-fail cases.
func allowlisted(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := analysis.CalleeObj(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && infallibleWriter(info, call.Args[0])
		}
	case "strings", "bytes":
		// Methods on strings.Builder / bytes.Buffer document err == nil.
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			return builderType(recv.Type())
		}
	}
	return false
}

// infallibleWriter reports whether the writer expression is os.Stdout,
// os.Stderr, a *strings.Builder, or a *bytes.Buffer.
func infallibleWriter(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil && v.Pkg().Path() == "os" {
			if v.Name() == "Stdout" || v.Name() == "Stderr" {
				return true
			}
		}
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return builderType(tv.Type)
}

// builderType reports whether t is (a pointer to) strings.Builder or
// bytes.Buffer.
func builderType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// calleeName renders a readable callee for the diagnostic.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return "(...)." + fun.Sel.Name
	}
	return "function value"
}
