// Package errfix exercises errpropagation: discarded error returns in
// plain, deferred, and spawned calls; the explicit `_ =` escape hatch; and
// the cannot-fail allowlist.
package errfix

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

var errBoom = errors.New("boom")

func fail() error { return errBoom }

func pair() (int, error) { return 0, errBoom }

func dropped() {
	fail() // want `call to fail discards its error result`
	pair() // want `call to pair discards its error result`
}

func explicit() {
	_ = fail()
	n, _ := pair()
	_ = n
}

func handled() error {
	if err := fail(); err != nil {
		return err
	}
	return nil
}

func deferred() {
	defer fail() // want `deferred call to fail discards its error result`
}

func spawned() {
	go fail() // want `spawned call to fail discards its error result`
}

func indirect(f func() error) {
	f() // want `call to f discards its error result`
}

func printing(w io.Writer, b *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("ok")
	fmt.Fprintf(os.Stderr, "ok %d\n", 1)
	fmt.Fprintf(b, "ok")
	fmt.Fprintf(buf, "ok")
	b.WriteString("ok")
	buf.WriteByte('x')
	fmt.Fprintf(w, "ok") // want `call to fmt\.Fprintf discards its error result`
}
