// Package errfix exercises errpropagation: discarded error returns in
// plain, deferred, and spawned calls; the explicit `_ =` escape hatch; and
// the cannot-fail allowlist.
package errfix

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

var errBoom = errors.New("boom")

func fail() error { return errBoom }

func pair() (int, error) { return 0, errBoom }

func dropped() {
	fail() // want `call to fail discards its error result`
	pair() // want `call to pair discards its error result`
}

func explicit() {
	_ = fail()
	n, _ := pair()
	_ = n
}

func handled() error {
	if err := fail(); err != nil {
		return err
	}
	return nil
}

func deferred() {
	defer fail() // want `deferred call to fail discards its error result`
}

func spawned() {
	go fail() // want `spawned call to fail discards its error result`
}

func indirect(f func() error) {
	f() // want `call to f discards its error result`
}

// result/cluster mimic the resilient serving API shape: SearchCtx returns
// (*result, error), and the error must not be dropped on the floor.
type result struct{ degraded uint64 }

type cluster struct{}

func (*cluster) SearchCtx(expr string, k int) (*result, error) { return nil, errBoom }

func servingPath(cl *cluster) {
	cl.SearchCtx("a AND b", 10) // want `call to cl\.SearchCtx discards its error result`
	res, _ := cl.SearchCtx("a AND b", 10)
	_ = res
}

var errSentinel = errors.New("pool: shard unavailable")

func textMatching(err error) bool {
	if err.Error() == "pool: shard unavailable" { // want `comparing err\.Error\(\) text with ==`
		return true
	}
	if "boom" != err.Error() { // want `comparing err\.Error\(\) text with !=`
		return false
	}
	if strings.Contains(err.Error(), "unavailable") { // want `matching err\.Error\(\) text with strings\.Contains`
		return true
	}
	if strings.HasPrefix(err.Error(), "pool:") { // want `matching err\.Error\(\) text with strings\.HasPrefix`
		return true
	}
	return errors.Is(err, errSentinel) // the typed check this rule steers toward
}

// textUses shows the legal uses: rendering the message, comparing other
// strings, and method names that merely look like Error.
type misnamed struct{}

func (misnamed) Error() int { return 0 } // not an error: wrong signature

func textUses(err error, m misnamed, s string) {
	msg := err.Error()
	_ = msg
	if s == "pool: shard unavailable" {
		return
	}
	if m.Error() == 0 {
		return
	}
	_ = strings.Contains(s, "unavailable")
}

func printing(w io.Writer, b *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("ok")
	fmt.Fprintf(os.Stderr, "ok %d\n", 1)
	fmt.Fprintf(b, "ok")
	fmt.Fprintf(buf, "ok")
	b.WriteString("ok")
	buf.WriteByte('x')
	fmt.Fprintf(w, "ok") // want `call to fmt\.Fprintf discards its error result`
}
